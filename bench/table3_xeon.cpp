// Reproduces paper Table 3: execution times (ms) of all six benchmarks under
// H-manual, H-auto, PolyMage-A, and PolyMageDP schedules at 1 and 16
// threads, with the Intel Xeon (Haswell) machine model driving every cost
// model, and the speedups of PolyMageDP over the three baselines.
#include "table_runtime_common.hpp"

using namespace fusedp;
using namespace fusedp::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg =
      BenchConfig::from_cli(cli, MachineModel::xeon_haswell());
  cfg.print_header(
      "Table 3: execution times on the Intel Xeon Haswell machine model");
  const std::vector<BenchmarkResult> results = run_all_benchmarks(cfg);
  print_execution_table(results, cfg);
  write_benchmark_results_json(
      bench_out_path(cli, "BENCH_table3_xeon.json"), "table3_xeon", results,
      cfg);
  return 0;
}
