// A/B benchmark for the vectorized row-kernel backend: times all seven
// registered pipelines under the PolyMageDP schedule with the compiled
// executor, once with ExecOptions::vector_backend off (the plain
// one-row-per-op program — the prior executor's shape) and once with it on
// (superop fusion + row-register allocation + SIMD kernels + zero-copy load
// forwarding).  Writes BENCH_vector.json with per-pipeline ns/pixel for
// both variants and the geomean speedup.  Outputs of the two variants are
// bit-identical (asserted continuously by tests/test_compile.cpp); this
// bench only measures the execution-strategy difference.
//
//   --scale/--samples/--runs/--threads   as bench_smoke
//   --fma=1          additionally contract fused mul-adds into real FMA
//                    (changes rounding; pair with -DFUSEDP_NATIVE=ON)
//   --out=PATH       artifact path (default: <repo root>/BENCH_vector.json)
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fusion/incremental.hpp"
#include "model/cost.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

using namespace fusedp;

namespace {

struct Row {
  std::string name;
  std::int64_t output_pixels = 0;
  double scalar_ns = 0.0;  // vector_backend = false
  double vector_ns = 0.0;  // vector_backend = true
  double speedup() const { return scalar_ns / vector_ns; }
};

std::int64_t output_pixels_of(const Pipeline& pl) {
  std::int64_t px = 0;
  for (int s : pl.outputs()) px += pl.stage(s).domain.volume();
  return px;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t scale = cli.get_int_env("scale", 2);
  const int samples = static_cast<int>(cli.get_int_env("samples", 3));
  const int runs = static_cast<int>(cli.get_int_env("runs", 3));
  const MachineModel machine = MachineModel::host();
  const int threads =
      static_cast<int>(cli.get_int_env("threads", machine.cores));
  const bool allow_fma = cli.get_int_env("fma", 0) != 0;
  const std::string only = cli.get_env("only", "");
  const std::string out_path =
      bench::bench_out_path(cli, "BENCH_vector.json");

  ExecOptions base;
  base.num_threads = threads;
  base.mode = EvalMode::kRow;
  base.compiled = true;
  base.tile_schedule = TileSchedule::kDynamic;

  ExecOptions scalar_opts = base;
  scalar_opts.vector_backend = false;
  ExecOptions vector_opts = base;
  vector_opts.vector_backend = true;
  vector_opts.allow_fma = allow_fma;

  std::fprintf(stderr,
               "bench_vector: scale=%lld threads=%d samples=%d runs=%d "
               "fma=%d\n",
               static_cast<long long>(scale), threads, samples, runs,
               allow_fma ? 1 : 0);

  const char* keys[] = {"blur",        "unsharp", "harris", "bilateral",
                        "interpolate", "campipe", "pyramid"};
  std::vector<Row> rows;
  double log_speedup = 0.0;
  for (const char* key : keys) {
    if (!only.empty() && only != key) continue;
    const PipelineSpec spec = make_benchmark(key, scale);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, machine);
    IncFusion inc(pl, model);
    const Grouping g = inc.run();
    const std::vector<Buffer> inputs = spec.make_inputs();

    Row r;
    r.name = key;
    r.output_pixels = output_pixels_of(pl);
    const double px = static_cast<double>(
        std::max<std::int64_t>(r.output_pixels, 1));
    r.scalar_ns = bench::time_grouping_ms(pl, g, inputs, threads, samples,
                                          runs, scalar_opts) *
                  1e6 / px;
    r.vector_ns = bench::time_grouping_ms(pl, g, inputs, threads, samples,
                                          runs, vector_opts) *
                  1e6 / px;
    log_speedup += std::log(r.speedup());
    rows.push_back(r);
    std::fprintf(stderr,
                 "  %-12s scalar-compiled %8.3f ns/px   vector %8.3f ns/px "
                 "  %.2fx\n",
                 key, r.scalar_ns, r.vector_ns, r.speedup());
  }
  if (rows.empty()) {
    std::fprintf(stderr, "bench_vector: no pipeline matched --only=%s\n",
                 only.c_str());
    return 1;
  }
  const double geo_speedup =
      std::exp(log_speedup / static_cast<double>(rows.size()));
  std::fprintf(stderr, "  geomean speedup: %.2fx\n", geo_speedup);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_vector: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"vector\",\n"
      << bench::provenance_json(machine, &vector_opts, "  ")
      << "  \"schedule_source\": \"PolyMageDP\",\n"
      << "  \"baseline\": \"scalar-compiled\",\n"
      << "  \"variant\": \"" << (allow_fma ? "vector+fma" : "vector")
      << "\",\n"
      << bench::exec_options_json(vector_opts, "  ")
      << "  \"scale\": " << scale << ",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"runs\": " << runs << ",\n"
      << "  \"machine\": {\n"
      << "    \"name\": \"" << machine.name << "\",\n"
      << "    \"cores\": " << machine.cores << ",\n"
      << "    \"vector_width_floats\": " << machine.vector_width_floats
      << "\n"
      << "  },\n"
      << "  \"pipelines\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"name\": \"" << r.name
        << "\", \"output_pixels\": " << r.output_pixels
        << ", \"scalar_compiled_ns_per_pixel\": " << r.scalar_ns
        << ", \"vector_ns_per_pixel\": " << r.vector_ns
        << ", \"speedup\": " << r.speedup() << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"geomean_speedup\": " << geo_speedup << "\n"
      << "}\n";
  std::fprintf(stderr, "bench_vector: wrote %s\n", out_path.c_str());
  return 0;
}
