// A/B benchmark for the vectorized row-kernel backend: times all seven
// registered pipelines under the PolyMageDP schedule with the compiled
// executor, once with ExecOptions::vector_backend off (the plain
// one-row-per-op program — the prior executor's shape) and once with it on
// (superop fusion + row-register allocation + SIMD kernels + zero-copy load
// forwarding).  Writes BENCH_vector.json with per-pipeline ns/pixel for
// both variants and the geomean speedup.  Outputs of the two variants are
// bit-identical (asserted continuously by tests/test_compile.cpp); this
// bench only measures the execution-strategy difference.
//
// Besides the whole-pipeline numbers, the artifact carries a per-group
// breakdown (observer-measured wall time per fused group, min over
// `samples` observed runs) so a regression like campipe's vector slowdown
// is attributable to the specific group that causes it instead of hiding
// in the pipeline total.
//
// Groups that measure slower under the vector backend additionally land in
// a machine-readable `regressions` array with a suspected cause
// (libm-fallback / gather-bound / fusion-pessimized) from the
// never-pessimize benefit model, so CI and tools/bench_compare.py can gate
// on them without re-deriving the attribution.
//
//   --scale/--samples/--runs/--threads   as bench_smoke
//   --fma=1          additionally contract fused mul-adds into real FMA
//                    (changes rounding; pair with -DFUSEDP_NATIVE=ON)
//   --fastmath=1     enable ExecOptions::fast_transcendentals (approximate
//                    exp/log/pow; not bit-exact against libm)
//   --out=PATH       artifact path (default: <repo root>/BENCH_vector.json)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "fusion/incremental.hpp"
#include "model/cost.hpp"
#include "observe/observe.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/benefit.hpp"
#include "runtime/executor.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

using namespace fusedp;

namespace {

struct GroupDelta {
  std::string stages;      // comma-joined member stage names
  double scalar_ms = 0.0;  // min observed group wall time, scalar-compiled
  double vector_ms = 0.0;  // min observed group wall time, vector backend
  double speedup() const { return scalar_ms / vector_ms; }
};

// One entry of the machine-readable `regressions` array: a group that
// measured slower under the vector backend, attributed to a suspected
// cause so the artifact names the mechanism, not just the number.
struct Regression {
  std::string pipeline;
  std::string stages;
  double speedup = 0.0;
  double delta_ms = 0.0;  // vector_ms - scalar_ms (positive = loss)
  BenefitCause cause = BenefitCause::kNone;
  bool gate_measured = false;  // never-pessimize micro-measured this group
  bool gate_demoted = false;   // ...and demoted it to the plain form
};

struct Row {
  std::string name;
  std::int64_t output_pixels = 0;
  double scalar_ns = 0.0;  // vector_backend = false
  double vector_ns = 0.0;  // vector_backend = true
  double speedup() const { return scalar_ns / vector_ns; }
  std::vector<GroupDelta> groups;  // per-group attribution of the delta
};

// Per-group wall time (ms) of one executor configuration: min over
// `samples` observed runs, in the plan's group execution order.  Observed
// separately from the timed runs above so observation cost never pollutes
// the headline numbers.
std::vector<std::pair<std::string, double>> observed_group_ms(
    const Pipeline& pl, const Grouping& g, const std::vector<Buffer>& inputs,
    const ExecOptions& opts, int samples) {
  Executor ex(pl, g, opts);
  Workspace ws;
  ex.run(inputs, ws);  // warm-up
  std::vector<std::pair<std::string, double>> best;
  observe::TraceCollector tc(/*keep_tiles=*/false);
  for (int s = 0; s < samples; ++s) {
    tc.clear();
    ex.run(inputs, ws, &tc, nullptr);
    const observe::RunTrace* tr = tc.last();
    if (tr == nullptr) continue;
    if (best.empty())
      for (const observe::GroupRecord& gr : tr->groups)
        best.emplace_back(gr.stages, gr.seconds * 1e3);
    else
      for (std::size_t i = 0; i < tr->groups.size() && i < best.size(); ++i)
        best[i].second = std::min(best[i].second, tr->groups[i].seconds * 1e3);
  }
  return best;
}

std::int64_t output_pixels_of(const Pipeline& pl) {
  std::int64_t px = 0;
  for (int s : pl.outputs()) px += pl.stage(s).domain.volume();
  return px;
}

std::string joined_names(const Pipeline& pl, const GroupPlan& g) {
  std::string names;
  for (int s : g.stage_order) {
    if (!names.empty()) names += ",";
    names += pl.stage(s).name;
  }
  return names;
}

// Attributes a regressed group: the never-pessimize verdict's cause when
// the gate flagged it, else a fresh static profile, else (measured slower
// with no static excuse) fusion-pessimized.
Regression attribute(const Pipeline& pl, const ExecutablePlan& plan,
                     const char* pipeline, const GroupDelta& d,
                     bool fastmath) {
  Regression reg;
  reg.pipeline = pipeline;
  reg.stages = d.stages;
  reg.speedup = d.speedup();
  reg.delta_ms = d.vector_ms - d.scalar_ms;
  reg.cause = BenefitCause::kFusionPessimized;
  for (const GroupPlan& g : plan.groups) {
    if (joined_names(pl, g) != d.stages) continue;
    reg.gate_measured = g.verdict.measured;
    reg.gate_demoted = g.verdict.demoted;
    BenefitCause c = g.verdict.cause;
    if (c == BenefitCause::kNone)
      c = analyze_group_benefit(plan, g, fastmath).cause;
    if (c != BenefitCause::kNone) reg.cause = c;
    break;
  }
  return reg;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t scale = cli.get_int_env("scale", 2);
  const int samples = static_cast<int>(cli.get_int_env("samples", 3));
  const int runs = static_cast<int>(cli.get_int_env("runs", 3));
  const MachineModel machine = MachineModel::host();
  const int threads =
      static_cast<int>(cli.get_int_env("threads", machine.cores));
  const bool allow_fma = cli.get_int_env("fma", 0) != 0;
  const bool fastmath = cli.get_int_env("fastmath", 0) != 0;
  const std::string only = cli.get_env("only", "");
  const std::string out_path =
      bench::bench_out_path(cli, "BENCH_vector.json");

  ExecOptions base;
  base.num_threads = threads;
  base.mode = EvalMode::kRow;
  base.compiled = true;
  base.tile_schedule = TileSchedule::kDynamic;

  ExecOptions scalar_opts = base;
  scalar_opts.vector_backend = false;
  ExecOptions vector_opts = base;
  vector_opts.vector_backend = true;
  vector_opts.allow_fma = allow_fma;
  vector_opts.fast_transcendentals = fastmath;

  std::fprintf(stderr,
               "bench_vector: scale=%lld threads=%d samples=%d runs=%d "
               "fma=%d fastmath=%d\n",
               static_cast<long long>(scale), threads, samples, runs,
               allow_fma ? 1 : 0, fastmath ? 1 : 0);

  const char* keys[] = {"blur",        "unsharp", "harris", "bilateral",
                        "interpolate", "campipe", "pyramid"};
  std::vector<Row> rows;
  std::vector<Regression> regressions;
  double log_speedup = 0.0;
  for (const char* key : keys) {
    if (!only.empty() && only != key) continue;
    const PipelineSpec spec = make_benchmark(key, scale);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, machine);
    IncFusion inc(pl, model);
    const Grouping g = inc.run();
    const std::vector<Buffer> inputs = spec.make_inputs();

    Row r;
    r.name = key;
    r.output_pixels = output_pixels_of(pl);
    const double px = static_cast<double>(
        std::max<std::int64_t>(r.output_pixels, 1));
    r.scalar_ns = bench::time_grouping_ms(pl, g, inputs, threads, samples,
                                          runs, scalar_opts) *
                  1e6 / px;
    r.vector_ns = bench::time_grouping_ms(pl, g, inputs, threads, samples,
                                          runs, vector_opts) *
                  1e6 / px;
    log_speedup += std::log(r.speedup());

    // Per-group attribution: the same grouping's fused groups, timed under
    // both backends (min of `samples` observed runs each).
    ExecOptions so = scalar_opts;
    so.num_threads = threads;
    ExecOptions vo = vector_opts;
    vo.num_threads = threads;
    const auto sg = observed_group_ms(pl, g, inputs, so, samples);
    const auto vg = observed_group_ms(pl, g, inputs, vo, samples);
    for (std::size_t i = 0; i < sg.size() && i < vg.size(); ++i) {
      GroupDelta d;
      d.stages = sg[i].first;
      d.scalar_ms = sg[i].second;
      d.vector_ms = vg[i].second;
      r.groups.push_back(std::move(d));
    }

    rows.push_back(r);
    std::fprintf(stderr,
                 "  %-12s scalar-compiled %8.3f ns/px   vector %8.3f ns/px "
                 "  %.2fx\n",
                 key, r.scalar_ns, r.vector_ns, r.speedup());
    // Regression attribution reads the vector executor's plan: the
    // never-pessimize verdicts plus the static benefit profile name a
    // suspected cause for every group that measured slower.
    const Executor vex(pl, g, vo);
    for (const GroupDelta& d : r.groups) {
      if (d.speedup() >= 1.0) continue;
      Regression reg = attribute(pl, vex.plan(), key, d, fastmath);
      std::fprintf(stderr,
                   "    regressed group [%s]: scalar %8.3f ms  vector "
                   "%8.3f ms  %.2fx  (%s%s)\n",
                   d.stages.c_str(), d.scalar_ms, d.vector_ms, d.speedup(),
                   benefit_cause_name(reg.cause),
                   reg.gate_demoted ? ", gate-demoted" : "");
      regressions.push_back(std::move(reg));
    }
  }
  if (rows.empty()) {
    std::fprintf(stderr, "bench_vector: no pipeline matched --only=%s\n",
                 only.c_str());
    return 1;
  }
  const double geo_speedup =
      std::exp(log_speedup / static_cast<double>(rows.size()));
  std::fprintf(stderr, "  geomean speedup: %.2fx\n", geo_speedup);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_vector: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"vector\",\n"
      << bench::provenance_json(machine, &vector_opts, "  ")
      << "  \"schedule_source\": \"PolyMageDP\",\n"
      << "  \"baseline\": \"scalar-compiled\",\n"
      << "  \"variant\": \"" << (allow_fma ? "vector+fma" : "vector")
      << "\",\n"
      << bench::exec_options_json(vector_opts, "  ")
      << "  \"scale\": " << scale << ",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"runs\": " << runs << ",\n"
      << "  \"machine\": {\n"
      << "    \"name\": \"" << machine.name << "\",\n"
      << "    \"cores\": " << machine.cores << ",\n"
      << "    \"vector_width_floats\": " << machine.vector_width_floats
      << "\n"
      << "  },\n"
      << "  \"pipelines\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"name\": \"" << r.name
        << "\", \"output_pixels\": " << r.output_pixels
        << ", \"scalar_compiled_ns_per_pixel\": " << r.scalar_ns
        << ", \"vector_ns_per_pixel\": " << r.vector_ns
        << ", \"speedup\": " << r.speedup() << ", \"groups\": [\n";
    for (std::size_t j = 0; j < r.groups.size(); ++j) {
      const GroupDelta& d = r.groups[j];
      out << "      {\"stages\": \"" << d.stages
          << "\", \"scalar_ms\": " << d.scalar_ms
          << ", \"vector_ms\": " << d.vector_ms
          << ", \"speedup\": " << d.speedup() << "}"
          << (j + 1 < r.groups.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"regressions\": [\n";
  for (std::size_t i = 0; i < regressions.size(); ++i) {
    const Regression& reg = regressions[i];
    out << "    {\"pipeline\": \"" << reg.pipeline << "\", \"stages\": \""
        << reg.stages << "\", \"speedup\": " << reg.speedup
        << ", \"delta_ms\": " << reg.delta_ms << ", \"cause\": \""
        << benefit_cause_name(reg.cause) << "\", \"gate_measured\": "
        << (reg.gate_measured ? "true" : "false") << ", \"gate_demoted\": "
        << (reg.gate_demoted ? "true" : "false") << "}"
        << (i + 1 < regressions.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"geomean_speedup\": " << geo_speedup << "\n"
      << "}\n";
  std::fprintf(stderr, "bench_vector: wrote %s\n", out_path.c_str());
  return 0;
}
