// Extension bench: memory-footprint effect of liveness-based storage
// pooling (the PolyMage storage optimization referenced in paper §6.2) on
// top of each scheduler's grouping, plus its runtime impact.
#include <cstdio>

#include "bench_common.hpp"
#include "runtime/executor.hpp"
#include "storage/liveness.hpp"
#include "support/stats.hpp"

using namespace fusedp;
using namespace fusedp::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg =
      BenchConfig::from_cli(cli, MachineModel::xeon_haswell());
  cfg.print_header("Storage pooling: intermediate footprint and runtime");

  std::printf("%-20s %10s | %12s %12s %6s | %10s %10s\n", "Benchmark",
              "scheduler", "plain MB", "pooled MB", "slots", "plain ms",
              "pooled ms");
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, cfg.scale);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, cfg.machine);
    const std::vector<Buffer> inputs = spec.make_inputs();

    struct Variant {
      const char* name;
      Scheduler s;
    };
    for (const Variant v : {Variant{"PolyMageDP", Scheduler::kPolyMageDp},
                            Variant{"singletons", Scheduler::kPolyMageDp}}) {
      Grouping g;
      if (std::string(v.name) == "singletons")
        g = singleton_grouping(pl, model);
      else
        g = schedule(v.s, spec, model, cfg, 1);

      ExecOptions plain, pooled;
      plain.num_threads = pooled.num_threads = 1;
      pooled.pooled_storage = true;
      Executor ep(pl, g, plain), eq(pl, g, pooled);
      Workspace wp, wq;
      ep.run(inputs, wp);
      eq.run(inputs, wq);
      const double pms = time_grouping_ms(pl, g, inputs, 1, 1, cfg.runs);
      ExecOptions topts = pooled;
      Executor et(pl, g, topts);
      Workspace wt;
      et.run(inputs, wt);
      const double t0 = pms;
      // Time the pooled executor directly.
      double t1;
      {
        const RunStats st = measure_min_of_averages(
            [&] { et.run(inputs, wt); }, 1, cfg.runs);
        t1 = st.min_avg_ms;
      }
      std::printf("%-20s %10s | %12.1f %12.1f %6d | %10.2f %10.2f\n",
                  info.title.c_str(), v.name,
                  static_cast<double>(wp.allocated_floats()) * 4.0 / 1e6,
                  static_cast<double>(wq.allocated_floats()) * 4.0 / 1e6,
                  eq.storage().num_slots, t0, t1);
    }
  }
  std::printf(
      "\n# 'plain' allocates one buffer per materialized intermediate;\n"
      "# 'pooled' shares allocations between disjoint live ranges.\n"
      "# Fused schedules already keep intermediates in per-tile scratch,\n"
      "# so pooling matters most for lightly-fused schedules.\n");
  return 0;
}
