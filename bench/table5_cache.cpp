// Reproduces paper Table 5: cache hit/miss fractions (and measured runtime)
// for several L1/L2 tile-size choices on Unsharp Mask, demonstrating why
// the model's L1-tiling choice (5x256) wins.
//
// The paper reads hardware counters; we have no PMU access here, so the
// fractions come from replaying the executor's exact access streams through
// a simulated Haswell-like hierarchy (32 KB 8-way L1, 256 KB 8-way L2) —
// see DESIGN.md "Hardware substitution".
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "cachesim/trace.hpp"
#include "fusion/dp.hpp"
#include "runtime/executor.hpp"

using namespace fusedp;
using namespace fusedp::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg =
      BenchConfig::from_cli(cli, MachineModel::xeon_haswell());
  cfg.print_header("Table 5: cache behaviour of tile-size choices (Unsharp)");

  const PipelineSpec spec = make_benchmark("unsharp", cfg.scale);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, cfg.machine);
  const std::vector<Buffer> inputs = spec.make_inputs();

  // The paper's four tile-size rows, plus the model's own choice.
  struct Row {
    const char* label;
    std::int64_t t1, t2;
  };
  const Row rows[] = {
      {"128x256 (L2, spills)", 128, 256},
      {"16x256  (L2, under)", 16, 256},
      {"8x416   (best L2)", 8, 416},
      {"5x256   (L1, model)", 5, 256},
  };

  struct Measured {
    const Row* row;
    double l1_hit, l2_hit, l2_miss, ms;
  };
  std::vector<Measured> measured;
  std::printf("%-22s %8s %8s %8s %12s\n", "Tile size", "L1 HIT%", "L2 HIT%",
              "L2 MISS%", "runtime(ms)");
  for (const Row& row : rows) {
    Grouping g;
    GroupSchedule gs;
    for (int i = 0; i < pl.num_stages(); ++i) gs.stages = gs.stages.with(i);
    gs.tile_sizes = {3, row.t1, row.t2};
    g.groups.push_back(gs);

    CacheHierarchy hier(Cache(cfg.machine.l1_bytes, 8),
                        Cache(cfg.machine.l2_bytes, 8));
    TraceOptions topts;
    topts.max_tiles_per_group = 8;
    const HierarchyStats st = simulate_grouping(pl, g, hier, topts);
    const double ms = time_grouping_ms(pl, g, inputs, 1, cfg.samples,
                                       cfg.runs, cfg.exec);
    std::printf("%-22s %8.2f %8.2f %8.2f %12.2f\n", row.label,
                100.0 * st.l1_hit_frac(), 100.0 * st.l2_hit_frac(),
                100.0 * st.l2_miss_frac(), ms);
    measured.push_back({&row, 100.0 * st.l1_hit_frac(),
                        100.0 * st.l2_hit_frac(), 100.0 * st.l2_miss_frac(),
                        ms});
  }

  // What the model actually picks for the fused group.
  NodeSet all;
  for (int i = 0; i < pl.num_stages(); ++i) all = all.with(i);
  const GroupCost gc = model.cost(all);
  std::printf("\nmodel's own tile choice for the fused group: [");
  for (std::size_t i = 0; i < gc.tile_sizes.size(); ++i)
    std::printf("%s%lld", i ? "x" : "",
                static_cast<long long>(gc.tile_sizes[i]));
  std::printf("] (%s-sized)\n", gc.used_l2 ? "L2" : "L1");

  const std::string out_path =
      bench_out_path(cli, "BENCH_table5_cache.json");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "table5_cache: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"table5_cache\",\n"
      << provenance_json(cfg.machine, &cfg.exec, "  ")
      << exec_options_json(cfg.exec, "  ")
      << "  \"scale\": " << cfg.scale << ",\n"
      << "  \"machine\": \"" << cfg.machine.name << "\",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const Measured& m = measured[i];
    out << "    {\"tile\": \"" << m.row->t1 << "x" << m.row->t2
        << "\", \"l1_hit_pct\": " << m.l1_hit
        << ", \"l2_hit_pct\": " << m.l2_hit
        << ", \"l2_miss_pct\": " << m.l2_miss << ", \"ms\": " << m.ms << "}"
        << (i + 1 < measured.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "table5_cache: wrote %s\n", out_path.c_str());
  return 0;
}
