// google-benchmark micro-benchmarks of the substrates: partition
// enumeration, reachability, region propagation, cost evaluation, the DP
// grouper, and the row evaluator.  Not tied to a paper table; useful for
// tracking substrate regressions.
#include <benchmark/benchmark.h>

#include "analysis/regions.hpp"
#include "fusion/dp.hpp"
#include "graph/partitions.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"

namespace fusedp {
namespace {

void BM_PartitionEnumeration(benchmark::State& state) {
  NodeSet s;
  for (int i = 0; i < state.range(0); ++i) s = s.with(i);
  for (auto _ : state) {
    std::uint64_t count = 0;
    for_each_partition(s, [&](const std::vector<NodeSet>& parts) {
      count += parts.size();
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PartitionEnumeration)->Arg(4)->Arg(6)->Arg(8);

void BM_ReachabilityClosure(benchmark::State& state) {
  const PipelineSpec spec = make_benchmark("interpolate", 16);
  const Pipeline& base = *spec.pipeline;
  for (auto _ : state) {
    Digraph g(base.num_stages());
    for (int i = 0; i < base.num_stages(); ++i)
      base.graph().successors(i).for_each([&](int t) { g.add_edge(i, t); });
    g.finalize();
    benchmark::DoNotOptimize(g.reachable_from(0).bits());
  }
}
BENCHMARK(BM_ReachabilityClosure);

void BM_RegionPropagation(benchmark::State& state) {
  const PipelineSpec spec = make_benchmark("harris", 8);
  const Pipeline& pl = *spec.pipeline;
  NodeSet group;
  for (int i = 0; i < pl.num_stages(); ++i) group = group.with(i);
  const AlignResult align = solve_alignment(pl, group);
  Box tile;
  tile.rank = align.num_classes;
  for (int d = 0; d < tile.rank; ++d) {
    tile.lo[d] = 32;
    tile.hi[d] = 95;
  }
  for (auto _ : state) {
    const GroupRegions r =
        compute_group_regions(pl, group, align, tile, true);
    benchmark::DoNotOptimize(r.overlap_volume);
  }
}
BENCHMARK(BM_RegionPropagation);

void BM_CostEvaluation(benchmark::State& state) {
  const PipelineSpec spec = make_benchmark("harris", 8);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  NodeSet group;
  for (int i = 0; i < pl.num_stages(); ++i) group = group.with(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.cost(group).cost);
  }
}
BENCHMARK(BM_CostEvaluation);

void BM_DpGrouping(benchmark::State& state) {
  const PipelineSpec spec = make_benchmark("harris", 8);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  for (auto _ : state) {
    DpFusion dp(*spec.pipeline, model);
    benchmark::DoNotOptimize(dp.run().total_cost);
  }
}
BENCHMARK(BM_DpGrouping);

void BM_RowEvaluatorThroughput(benchmark::State& state) {
  const PipelineSpec spec = make_blur(512, 512);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  DpFusion dp(pl, model);
  const Grouping g = dp.run();
  const std::vector<Buffer> inputs = spec.make_inputs();
  ExecOptions opts;
  opts.num_threads = 1;
  Executor ex(pl, g, opts);
  Workspace ws;
  ex.run(inputs, ws);
  for (auto _ : state) ex.run(inputs, ws);
  state.SetItemsProcessed(state.iterations() * pl.total_volume());
}
BENCHMARK(BM_RowEvaluatorThroughput);

}  // namespace
}  // namespace fusedp

BENCHMARK_MAIN();
