// Reproduces paper Figure 7: per benchmark and scheduler, the speedup over
// the PolyMageDP *sequential* run at 1 and 16 threads (Xeon machine model).
#include "table_runtime_common.hpp"

using namespace fusedp;
using namespace fusedp::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg =
      BenchConfig::from_cli(cli, MachineModel::xeon_haswell());
  cfg.print_header(
      "Figure 7: speedup over PolyMageDP sequential, 1 and N threads");
  const std::vector<BenchmarkResult> results = run_all_benchmarks(cfg);

  std::printf("%-20s %6s | %9s %9s %9s %9s\n", "Benchmark", "thr", "H-manual",
              "H-auto", "PolyMage-A", "PolyMageDP");
  for (const BenchmarkResult& r : results) {
    const double base = r.t1.at(Scheduler::kPolyMageDp);
    std::printf("%-20s %6d | %9.2f %9.2f %9.2f %9.2f\n", r.title.c_str(), 1,
                base / r.t1.at(Scheduler::kHManual),
                base / r.t1.at(Scheduler::kHAuto),
                base / r.t1.at(Scheduler::kPolyMageA),
                base / r.t1.at(Scheduler::kPolyMageDp));
    std::printf("%-20s %6d | %9.2f %9.2f %9.2f %9.2f\n", "", cfg.threads,
                base / r.tn.at(Scheduler::kHManual),
                base / r.tn.at(Scheduler::kHAuto),
                base / r.tn.at(Scheduler::kPolyMageA),
                base / r.tn.at(Scheduler::kPolyMageDp));
  }
  std::printf(
      "\n# values are speedups over the PolyMageDP 1-thread run (bars of\n"
      "# paper Figure 7); N-thread scaling is oversubscribed on this\n"
      "# single-core container.\n");
  write_benchmark_results_json(
      bench_out_path(cli, "BENCH_figure7_scaling.json"), "figure7_scaling",
      results, cfg);
  return 0;
}
