// Reproduces paper Table 2: per benchmark, the number of stages, image
// size, max |SUCC(G)|, the number of groupings (DP states) enumerated for
// group limits l = inf / 32 / 16 / 8, and grouping time.
//
// Notes vs. the paper: counts are implementation-specific (our DAGs match
// the paper's stage counts but not every internal edge; our DP adds the
// readiness discipline and complete cycle validity — see DESIGN.md).
// Pyramid Blending's raw DP is intractable at any l on our wider DAG and is
// reported through the bounded *incremental* driver (Algorithm 3), which is
// also what the paper prescribes for large graphs.
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "fusion/dp.hpp"
#include "fusion/incremental.hpp"

using namespace fusedp;
using namespace fusedp::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchConfig cfg = BenchConfig::from_cli(cli, MachineModel::xeon_haswell());
  cfg.print_header("Table 2: fusion choices enumerated and grouping time");

  const std::uint64_t budget =
      static_cast<std::uint64_t>(cli.get_int_env("dp_budget", 20'000'000));

  std::printf("%-22s %6s %-14s %9s | %37s | %31s\n", "Benchmark", "Stages",
              "Image size", "maxSucc", "groupings enumerated", "time (s)");
  std::printf("%-22s %6s %-14s %9s | %8s %8s %8s %8s | %7s %7s %7s %7s\n", "",
              "", "", "", "l=inf", "l=32", "l=16", "l=8", "l=inf", "l=32",
              "l=16", "l=8");

  struct JsonRow {
    std::string name;
    int stages = 0, max_succ = 0;
    std::uint64_t counts[4];
    double secs[4];
    bool blown[4];
  };
  std::vector<JsonRow> json_rows;
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, cfg.scale);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, cfg.machine);

    std::printf("%-22s %6d %-14s", info.title.c_str(), pl.num_stages(),
                info.paper_size.c_str());
    std::fflush(stdout);

    std::uint64_t counts[4] = {0, 0, 0, 0};
    double secs[4] = {0, 0, 0, 0};
    bool blown[4] = {false, false, false, false};
    int max_succ = 0;
    const int limits[4] = {0, 32, 16, 8};
    for (int i = 0; i < 4; ++i) {
      DpOptions opts;
      opts.group_limit = limits[i];
      opts.max_states = budget;
      DpFusion dp(pl, model, opts);
      try {
        dp.run();
        counts[i] = dp.stats().groupings_enumerated;
        secs[i] = dp.stats().seconds;
        max_succ = std::max(max_succ, dp.stats().max_succ);
      } catch (const Error&) {
        // Raw DP intractable: fall back to the incremental driver
        // (Algorithm 3) with this limit as its final bound.
        IncOptions iopts;
        iopts.max_states = budget;
        IncFusion inc(pl, model, iopts);
        inc.run();
        counts[i] = inc.stats().groupings_enumerated;
        secs[i] = inc.stats().seconds;
        max_succ = std::max(max_succ, inc.stats().max_succ);
        blown[i] = true;
      }
    }
    std::printf(" %9d |", max_succ);
    for (int i = 0; i < 4; ++i)
      std::printf(" %7llu%s", static_cast<unsigned long long>(counts[i]),
                  blown[i] ? "*" : " ");
    std::printf(" |");
    for (int i = 0; i < 4; ++i) std::printf(" %7.3f", secs[i]);
    std::printf("\n");
    JsonRow jr;
    jr.name = info.title;
    jr.stages = pl.num_stages();
    jr.max_succ = max_succ;
    for (int i = 0; i < 4; ++i) {
      jr.counts[i] = counts[i];
      jr.secs[i] = secs[i];
      jr.blown[i] = blown[i];
    }
    json_rows.push_back(std::move(jr));
  }
  std::printf(
      "\n(*) raw DP exceeded the state budget; value is from the bounded\n"
      "    incremental driver (paper Algorithm 3) instead.\n");

  // Scheduling-only bench: no executor runs, so the artifact records
  // "executor": null instead of an ExecOptions block.
  const std::string out_path =
      bench_out_path(cli, "BENCH_table2_grouping.json");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "table2_grouping: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  const char* limit_keys[4] = {"inf", "32", "16", "8"};
  out << "{\n"
      << "  \"bench\": \"table2_grouping\",\n"
      << provenance_json(cfg.machine, nullptr, "  ")
      << "  \"executor\": null,\n"
      << "  \"scale\": " << cfg.scale << ",\n"
      << "  \"machine\": \"" << cfg.machine.name << "\",\n"
      << "  \"dp_budget\": " << budget << ",\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < json_rows.size(); ++i) {
    const JsonRow& r = json_rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"stages\": " << r.stages
        << ", \"max_succ\": " << r.max_succ;
    for (int k = 0; k < 4; ++k)
      out << ", \"groupings_l" << limit_keys[k] << "\": " << r.counts[k]
          << ", \"seconds_l" << limit_keys[k] << "\": " << r.secs[k]
          << ", \"fallback_l" << limit_keys[k]
          << "\": " << (r.blown[k] ? "true" : "false");
    out << "}" << (i + 1 < json_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "table2_grouping: wrote %s\n", out_path.c_str());
  return 0;
}
