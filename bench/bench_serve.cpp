// Serving-scale traffic generator for the PipelineService front door: the
// first bench that measures the system as a multi-tenant server rather than
// a single-run executor.  Four phases; 1-3 land in BENCH_serve.json, 0 in
// its own BENCH_warmstart.json:
//
//  0. Warm-start A/B (gates the exit code): cold Session::open (empty
//     schedule cache, full kAuto search under a deadline) vs. warm open
//     (schedule served from the persistent find-db).  Asserts every warm
//     open actually skipped the search (warm_start(), zero ladder
//     attempts) and that warm-open p50 is under --warm-tolerance (default
//     10%) of cold-open p50 per pipeline.
//
//  1. Overhead A/B (gates the exit code): each pipeline timed at ONE thread
//     on the OpenMP executor vs. the work-stealing pool backend — the pool's
//     serial fast path must stay within --tolerance (default 2%) geomean of
//     the per-run parallel region it replaces for serving.
//
//  2. Closed loop: N client threads issue back-to-back synchronous call()s
//     against one shared service, per worker count (1/2/4/8) and per
//     execution mode — coalesced (each frame a single-lane pool task; many
//     frames concurrent) and sharded (each frame fanned across all lanes).
//     Reports p50/p99 client-observed latency, requests/sec and pixels/sec.
//
//  3. Open loop: requests submitted asynchronously at a fixed arrival rate
//     (1.25x the best closed-loop throughput, so the service is driven just
//     past saturation) against a deliberately small admission bound —
//     exercising the kResourceExhausted shed path.  Latency here is the
//     sojourn approximation queue_wait + execution from the reply itself.
//
// On this container every worker count above `hardware_cores` is
// oversubscription; the artifact records the core count so throughput
// numbers read as what they are (scheduling behaviour, not parallel
// speedup).
//
//   --scale=N            image-size divisor (default 4: serving-sized frames)
//   --clients=N          closed-loop client threads (default 8)
//   --requests=N         closed-loop requests per client per cell (default 12)
//   --max-workers=N      clip the 1/2/4/8 worker ladder (default 8)
//   --open-requests=N    open-loop submissions per pipeline (default 120)
//   --samples/--runs     overhead A/B timing (defaults 3/3)
//   --tolerance=F        overhead A/B gate (default 0.02)
//   --only=KEY           serve a single pipeline
//   --out=PATH           default: <repo root>/BENCH_serve.json
//   --warm-out=PATH      default: <repo root>/BENCH_warmstart.json
//   --warm-cold-reps=N   cold opens per pipeline (default 5)
//   --warm-reps=N        warm opens per pipeline (default 15)
//   --warm-tolerance=F   warm/cold open-latency gate (default 0.10)
//   --warm-deadline=F    cold-open schedule-search deadline, s (default 1.0)
//   --warmstart-only     run phase 0 alone (CI's warm-start leg)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <cstdlib>
#include <unistd.h>

#include "api/serve.hpp"
#include "api/session.hpp"
#include "bench_common.hpp"
#include "fusion/incremental.hpp"
#include "model/cost.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"

using namespace fusedp;

namespace {

std::int64_t output_pixels_of(const Pipeline& pl) {
  std::int64_t px = 0;
  for (int s : pl.outputs()) px += pl.stage(s).domain.volume();
  return px;
}

// p-th percentile of a latency sample (sorts in place, nearest-rank).
double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

struct AbPair {
  std::string name;
  double openmp_ms = 0.0;
  double pool_ms = 0.0;
  double ratio() const { return pool_ms / openmp_ms; }
};

struct ClosedCell {
  std::string pipeline;
  std::string mode;  // "coalesced" | "sharded"
  int workers = 0;
  int clients = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  double wall_seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_queue_wait_ms = 0.0;
  double requests_per_sec = 0.0;
  double pixels_per_sec = 0.0;
};

struct OpenCell {
  std::string pipeline;
  int workers = 0;
  double offered_rps = 0.0;
  std::int64_t submitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct WarmCell {
  std::string pipeline;
  double cold_p50_ms = 0.0;
  double cold_p99_ms = 0.0;
  double warm_p50_ms = 0.0;
  double warm_p99_ms = 0.0;
  int warm_hits = 0;   // warm opens that actually served from the cache
  int warm_reps = 0;
  bool zero_search = true;  // every warm open had no ladder attempts/states
  double ratio() const {
    return cold_p50_ms > 0.0 ? warm_p50_ms / cold_p50_ms : 1.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t scale = cli.get_int_env("scale", 4);
  const int clients = static_cast<int>(cli.get_int_env("clients", 8));
  const int requests = static_cast<int>(cli.get_int_env("requests", 12));
  const int max_workers = static_cast<int>(cli.get_int_env("max-workers", 8));
  const int open_requests =
      static_cast<int>(cli.get_int_env("open-requests", 120));
  const int samples = static_cast<int>(cli.get_int_env("samples", 3));
  const int runs = static_cast<int>(cli.get_int_env("runs", 3));
  const double tolerance = cli.get_double("tolerance", 0.02);
  const std::string only = cli.get_env("only", "");
  const std::string out_path = bench::bench_out_path(cli, "BENCH_serve.json");
  const MachineModel machine = MachineModel::host();
  const int hw_cores = static_cast<int>(std::thread::hardware_concurrency());

  const int warm_cold_reps =
      static_cast<int>(cli.get_int("warm-cold-reps", 5));
  const int warm_reps = static_cast<int>(cli.get_int("warm-reps", 15));
  const double warm_tolerance = cli.get_double("warm-tolerance", 0.10);
  const double warm_deadline = cli.get_double("warm-deadline", 1.0);
  const bool warmstart_only = cli.has("warmstart-only");
#ifdef FUSEDP_REPO_ROOT
  const std::string warm_out_path = cli.get(
      "warm-out", std::string(FUSEDP_REPO_ROOT) + "/BENCH_warmstart.json");
#else
  const std::string warm_out_path =
      cli.get("warm-out", "BENCH_warmstart.json");
#endif

  std::fprintf(stderr,
               "bench_serve: scale=%lld clients=%d requests=%d "
               "max-workers=%d (hardware cores: %d)\n",
               static_cast<long long>(scale), clients, requests, max_workers,
               hw_cores);

  // ---- Phase 0: cold-open vs warm-open A/B through the schedule cache. ----
  // Cold = empty cache directory, full kAuto ladder under --warm-deadline.
  // Warm = the very same Options against the record the cold open stored.
  // The memory tier is off so warm opens measure the cross-process path
  // (shared lock + disk read + re-validation), not the in-process LRU.
  std::vector<WarmCell> warm_cells;
  bool warm_pass = true;
  {
    char dirbuf[] = "/tmp/fusedp_warmstart_XXXXXX";
    const char* cache_dir = ::mkdtemp(dirbuf);
    if (cache_dir == nullptr) {
      std::fprintf(stderr, "bench_serve: mkdtemp failed\n");
      return 1;
    }
    const char* warm_keys[] = {"harris", "campipe", "pyramid"};
    for (const char* key : warm_keys) {
      const PipelineSpec spec = make_benchmark(key, scale);
      const Pipeline& pl = *spec.pipeline;
      Options o;
      o.scheduler = fusedp::Scheduler::kAuto;
      o.deadline_seconds = warm_deadline;
      o.cache_mode = findb::CacheMode::kReadWrite;
      o.cache_dir = cache_dir;
      o.cache_memory_entries = 0;

      WarmCell cell;
      cell.pipeline = key;
      cell.warm_reps = warm_reps;
      std::vector<double> cold_ms, warm_ms;
      for (int rep = 0; rep < warm_cold_reps; ++rep) {
        {
          findb::FindDb db(o.findb_options());
          (void)db.evict_all();
        }
        findb::FindDb::clear_memory_tier();
        WallTimer t;
        auto s = Session::open(pl, o);
        const double ms = t.millis();
        if (!s.ok()) {
          std::fprintf(stderr, "bench_serve: cold open %s failed: %s\n", key,
                       s.error().what());
          warm_pass = false;
          break;
        }
        if (s.value().warm_start()) warm_pass = false;  // cache was not empty
        cold_ms.push_back(ms);
      }
      // The last cold open left its schedule in the cache; time warm opens
      // against it and assert each one truly skipped the search.
      for (int rep = 0; rep < warm_reps && warm_pass; ++rep) {
        findb::FindDb::clear_memory_tier();
        WallTimer t;
        auto s = Session::open(pl, o);
        const double ms = t.millis();
        if (!s.ok()) {
          std::fprintf(stderr, "bench_serve: warm open %s failed: %s\n", key,
                       s.error().what());
          warm_pass = false;
          break;
        }
        if (s.value().warm_start()) ++cell.warm_hits;
        if (!s.value().diagnostics().attempts.empty() ||
            s.value().diagnostics().total_states != 0)
          cell.zero_search = false;
        warm_ms.push_back(ms);
      }
      cell.cold_p50_ms = percentile(cold_ms, 0.50);
      cell.cold_p99_ms = percentile(cold_ms, 0.99);
      cell.warm_p50_ms = percentile(warm_ms, 0.50);
      cell.warm_p99_ms = percentile(warm_ms, 0.99);
      const bool cell_pass = cell.warm_hits == warm_reps && cell.zero_search &&
                             cell.ratio() < warm_tolerance;
      if (!cell_pass) warm_pass = false;
      std::fprintf(stderr,
                   "  warmstart %-8s cold p50 %9.2f ms  warm p50 %7.3f ms  "
                   "ratio %.4f  hits %d/%d%s -> %s\n",
                   key, cell.cold_p50_ms, cell.warm_p50_ms, cell.ratio(),
                   cell.warm_hits, warm_reps,
                   cell.zero_search ? "" : "  (SEARCH RAN ON WARM OPEN)",
                   cell_pass ? "PASS" : "FAIL");
      warm_cells.push_back(std::move(cell));
    }
    const std::string cleanup = std::string("rm -rf '") + cache_dir + "'";
    [[maybe_unused]] int rc = std::system(cleanup.c_str());
  }

  {
    std::ofstream wout(warm_out_path);
    if (!wout) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   warm_out_path.c_str());
      return 1;
    }
    wout << "{\n"
         << "  \"bench\": \"warmstart\",\n"
         << bench::provenance_json(machine, nullptr, "  ")
         << "  \"scale\": " << scale << ",\n"
         << "  \"cold_reps\": " << warm_cold_reps << ",\n"
         << "  \"warm_reps\": " << warm_reps << ",\n"
         << "  \"tolerance\": " << warm_tolerance << ",\n"
         << "  \"cold_deadline_seconds\": " << warm_deadline << ",\n"
         << "  \"note\": \"cold = Session::open with an empty schedule "
            "cache (full kAuto ladder under the deadline); warm = same "
            "options against the stored record, memory tier off so the "
            "number is the cross-process disk path; hit counts require "
            "warm_start() with zero ladder attempts and zero DP states\",\n"
         << "  \"pipelines\": [\n";
    for (std::size_t i = 0; i < warm_cells.size(); ++i) {
      const WarmCell& c = warm_cells[i];
      wout << "    {\"name\": \"" << c.pipeline
           << "\", \"cold_open_p50_ms\": " << c.cold_p50_ms
           << ", \"cold_open_p99_ms\": " << c.cold_p99_ms
           << ", \"warm_open_p50_ms\": " << c.warm_p50_ms
           << ", \"warm_open_p99_ms\": " << c.warm_p99_ms
           << ", \"warm_cold_ratio\": " << c.ratio()
           << ", \"warm_hits\": " << c.warm_hits
           << ", \"warm_reps\": " << c.warm_reps << ", \"hit_rate\": "
           << (c.warm_reps > 0
                   ? static_cast<double>(c.warm_hits) /
                         static_cast<double>(c.warm_reps)
                   : 0.0)
           << ", \"zero_search\": " << (c.zero_search ? "true" : "false")
           << "}" << (i + 1 < warm_cells.size() ? "," : "") << "\n";
    }
    wout << "  ],\n"
         << "  \"pass\": " << (warm_pass ? "true" : "false") << "\n"
         << "}\n";
    std::fprintf(stderr, "bench_serve: wrote %s (%s)\n",
                 warm_out_path.c_str(), warm_pass ? "PASS" : "FAIL");
  }
  if (warmstart_only) return warm_pass ? 0 : 1;

  // ---- Phase 1: single-thread pool-vs-OpenMP overhead A/B. ----------------
  ExecOptions openmp_opts;
  openmp_opts.num_threads = 1;
  openmp_opts.mode = EvalMode::kRow;
  openmp_opts.compiled = true;
  openmp_opts.vector_backend = true;
  openmp_opts.tile_schedule = TileSchedule::kDynamic;
  ExecOptions pool_opts = openmp_opts;
  pool_opts.pool_backend = true;

  std::vector<AbPair> ab;
  double ab_log_sum = 0.0;
  const char* ab_keys[] = {"unsharp", "harris", "campipe"};
  for (const char* key : ab_keys) {
    const PipelineSpec spec = make_benchmark(key, scale);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, machine);
    IncFusion inc(pl, model);
    const Grouping g = inc.run();
    const std::vector<Buffer> inputs = spec.make_inputs();
    AbPair p;
    p.name = key;
    p.openmp_ms =
        bench::time_grouping_ms(pl, g, inputs, 1, samples, runs, openmp_opts);
    p.pool_ms =
        bench::time_grouping_ms(pl, g, inputs, 1, samples, runs, pool_opts);
    ab_log_sum += std::log(p.ratio());
    std::fprintf(stderr,
                 "  ab %-12s openmp %9.3f ms  pool %9.3f ms  x%.4f\n", key,
                 p.openmp_ms, p.pool_ms, p.ratio());
    ab.push_back(std::move(p));
  }
  const double ab_geomean =
      std::exp(ab_log_sum / static_cast<double>(ab.size()));
  const bool ab_pass = ab_geomean <= 1.0 + tolerance;
  std::fprintf(stderr,
               "  1-thread pool overhead geomean: x%.4f (tolerance x%.4f) -> "
               "%s\n",
               ab_geomean, 1.0 + tolerance, ab_pass ? "PASS" : "FAIL");

  // ---- Phase 2: closed-loop client sweep. ---------------------------------
  const char* serve_keys[] = {"unsharp", "campipe"};
  std::vector<ClosedCell> closed;
  std::vector<OpenCell> open;

  for (const char* key : serve_keys) {
    if (!only.empty() && only != key) continue;
    const PipelineSpec spec = make_benchmark(key, scale);
    const Pipeline& pl = *spec.pipeline;
    const std::vector<Buffer> inputs = spec.make_inputs();
    const std::int64_t out_px = output_pixels_of(pl);
    double best_rps = 0.0;  // best coalesced throughput, feeds the open loop

    for (int workers = 1; workers <= max_workers; workers *= 2) {
      for (const bool shard : {false, true}) {
        if (shard && workers == 1) continue;  // sharding needs >1 lane
        ServeOptions so;
        so.workers = workers;
        so.max_queue = 2 * clients + 4;  // closed loop never bounces
        // Force the mode rather than relying on frame size vs. the default
        // threshold, so both serve paths are measured at every width.
        so.shard_threshold_pixels =
            shard ? 1 : std::numeric_limits<std::int64_t>::max();
        auto svc_r = PipelineService::create(pl, so);
        if (!svc_r.ok()) {
          std::fprintf(stderr, "bench_serve: create failed: %s\n",
                       svc_r.error().what());
          return 1;
        }
        auto svc = std::move(svc_r).value();

        // Warm-up: plan touch + workspace allocations.
        for (int i = 0; i < 2; ++i) {
          ServeRequest req;
          req.inputs = inputs;
          (void)svc->call(std::move(req));
        }

        std::vector<std::vector<double>> lat_ms(
            static_cast<std::size_t>(clients));
        std::vector<std::vector<double>> qw_ms(
            static_cast<std::size_t>(clients));
        std::vector<std::int64_t> ok(static_cast<std::size_t>(clients), 0);
        std::vector<std::int64_t> bad(static_cast<std::size_t>(clients), 0);
        WallTimer wall;
        std::vector<std::thread> threads;
        for (int c = 0; c < clients; ++c) {
          threads.emplace_back([&, c] {
            const std::size_t ci = static_cast<std::size_t>(c);
            for (int r = 0; r < requests; ++r) {
              ServeRequest req;
              req.inputs = inputs;  // copy outside the timed window
              WallTimer t;
              Result<ServeReply> reply = svc->call(std::move(req));
              const double ms = t.millis();
              if (reply.ok()) {
                ++ok[ci];
                lat_ms[ci].push_back(ms);
                qw_ms[ci].push_back(reply.value().queue_wait_seconds * 1e3);
              } else {
                ++bad[ci];
              }
            }
          });
        }
        for (std::thread& t : threads) t.join();

        ClosedCell cell;
        cell.pipeline = key;
        cell.mode = shard ? "sharded" : "coalesced";
        cell.workers = workers;
        cell.clients = clients;
        cell.wall_seconds = wall.seconds();
        std::vector<double> all_lat;
        double qw_sum = 0.0;
        std::int64_t qw_n = 0;
        for (int c = 0; c < clients; ++c) {
          const std::size_t ci = static_cast<std::size_t>(c);
          cell.completed += ok[ci];
          cell.failed += bad[ci];
          all_lat.insert(all_lat.end(), lat_ms[ci].begin(), lat_ms[ci].end());
          for (double q : qw_ms[ci]) qw_sum += q;
          qw_n += static_cast<std::int64_t>(qw_ms[ci].size());
        }
        cell.p50_ms = percentile(all_lat, 0.50);
        cell.p99_ms = percentile(all_lat, 0.99);
        cell.mean_queue_wait_ms =
            qw_n > 0 ? qw_sum / static_cast<double>(qw_n) : 0.0;
        cell.requests_per_sec =
            static_cast<double>(cell.completed) / cell.wall_seconds;
        cell.pixels_per_sec =
            static_cast<double>(cell.completed * out_px) / cell.wall_seconds;
        if (!shard) best_rps = std::max(best_rps, cell.requests_per_sec);
        std::fprintf(stderr,
                     "  %-8s %-9s %d workers  p50 %8.2f ms  p99 %8.2f ms  "
                     "%7.1f req/s  %.3g px/s  (%lld ok, %lld failed)\n",
                     key, cell.mode.c_str(), workers, cell.p50_ms, cell.p99_ms,
                     cell.requests_per_sec, cell.pixels_per_sec,
                     static_cast<long long>(cell.completed),
                     static_cast<long long>(cell.failed));
        closed.push_back(std::move(cell));
      }
    }

    // ---- Phase 3: open loop just past saturation, small admission bound. --
    {
      ServeOptions so;
      so.workers = max_workers;
      so.max_queue = 2 * max_workers + 2;  // small on purpose: shed under load
      so.shard_threshold_pixels = std::numeric_limits<std::int64_t>::max();
      auto svc_r = PipelineService::create(pl, so);
      if (!svc_r.ok()) {
        std::fprintf(stderr, "bench_serve: create failed: %s\n",
                     svc_r.error().what());
        return 1;
      }
      auto svc = std::move(svc_r).value();
      for (int i = 0; i < 2; ++i) {
        ServeRequest req;
        req.inputs = inputs;
        (void)svc->call(std::move(req));
      }

      OpenCell cell;
      cell.pipeline = key;
      cell.workers = max_workers;
      cell.offered_rps = std::max(1.0, 1.25 * best_rps);
      const auto interarrival = std::chrono::duration<double>(
          1.0 / cell.offered_rps);
      std::vector<PipelineService::Ticket> tickets;
      tickets.reserve(static_cast<std::size_t>(open_requests));
      for (int i = 0; i < open_requests; ++i) {
        ServeRequest req;
        req.inputs = inputs;
        Result<PipelineService::Ticket> t = svc->submit(std::move(req));
        ++cell.submitted;
        if (t.ok())
          tickets.push_back(std::move(t).value());
        else if (t.code() == ErrorCode::kResourceExhausted)
          ++cell.rejected;
        else
          ++cell.failed;
        std::this_thread::sleep_for(interarrival);
      }
      // Sojourn = queue wait + execution, from the reply itself (the
      // submitter cannot clock each completion without a waiter per ticket).
      std::vector<double> sojourn_ms;
      for (PipelineService::Ticket& t : tickets) {
        Result<ServeReply> reply = t.wait();
        if (reply.ok()) {
          ++cell.completed;
          sojourn_ms.push_back(
              (reply.value().queue_wait_seconds + reply.value().seconds) * 1e3);
        } else {
          ++cell.failed;
        }
      }
      cell.p50_ms = percentile(sojourn_ms, 0.50);
      cell.p99_ms = percentile(sojourn_ms, 0.99);
      std::fprintf(stderr,
                   "  %-8s open loop @ %.1f req/s: %lld submitted, %lld "
                   "rejected, %lld ok, %lld failed; sojourn p50 %8.2f ms "
                   "p99 %8.2f ms\n",
                   key, cell.offered_rps,
                   static_cast<long long>(cell.submitted),
                   static_cast<long long>(cell.rejected),
                   static_cast<long long>(cell.completed),
                   static_cast<long long>(cell.failed), cell.p50_ms,
                   cell.p99_ms);
      open.push_back(std::move(cell));
    }
  }
  if (closed.empty()) {
    std::fprintf(stderr, "bench_serve: no pipeline matched --only=%s\n",
                 only.c_str());
    return 1;
  }

  // ---- Artifact. ----------------------------------------------------------
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"serve\",\n"
      << bench::provenance_json(machine, &pool_opts, "  ")
      << "  \"scale\": " << scale << ",\n"
      << "  \"clients\": " << clients << ",\n"
      << "  \"requests_per_client\": " << requests << ",\n"
      << "  \"hardware_cores\": " << hw_cores << ",\n"
      << "  \"note\": \"worker counts above hardware_cores are "
         "oversubscribed: throughput there measures pool scheduling under "
         "contention, not parallel speedup; open-loop latency is the "
         "queue_wait+execution sojourn reported by the reply\",\n"
      << "  \"overhead_ab\": {\n"
      << "    \"threads\": 1,\n"
      << "    \"samples\": " << samples << ",\n"
      << "    \"runs\": " << runs << ",\n"
      << "    \"tolerance\": " << tolerance << ",\n"
      << "    \"pipelines\": [\n";
  for (std::size_t i = 0; i < ab.size(); ++i) {
    out << "      {\"name\": \"" << ab[i].name
        << "\", \"openmp_ms\": " << ab[i].openmp_ms
        << ", \"pool_ms\": " << ab[i].pool_ms
        << ", \"ratio\": " << ab[i].ratio() << "}"
        << (i + 1 < ab.size() ? "," : "") << "\n";
  }
  out << "    ],\n"
      << "    \"geomean_ratio\": " << ab_geomean << ",\n"
      << "    \"pass\": " << (ab_pass ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"closed_loop\": [\n";
  for (std::size_t i = 0; i < closed.size(); ++i) {
    const ClosedCell& c = closed[i];
    out << "    {\"pipeline\": \"" << c.pipeline << "\", \"mode\": \""
        << c.mode << "\", \"workers\": " << c.workers
        << ", \"clients\": " << c.clients
        << ", \"completed\": " << c.completed << ", \"failed\": " << c.failed
        << ", \"wall_seconds\": " << c.wall_seconds
        << ", \"p50_ms\": " << c.p50_ms << ", \"p99_ms\": " << c.p99_ms
        << ", \"mean_queue_wait_ms\": " << c.mean_queue_wait_ms
        << ", \"requests_per_sec\": " << c.requests_per_sec
        << ", \"pixels_per_sec\": " << c.pixels_per_sec << "}"
        << (i + 1 < closed.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"open_loop\": [\n";
  for (std::size_t i = 0; i < open.size(); ++i) {
    const OpenCell& c = open[i];
    out << "    {\"pipeline\": \"" << c.pipeline
        << "\", \"workers\": " << c.workers
        << ", \"offered_rps\": " << c.offered_rps
        << ", \"submitted\": " << c.submitted
        << ", \"rejected\": " << c.rejected
        << ", \"completed\": " << c.completed << ", \"failed\": " << c.failed
        << ", \"sojourn_p50_ms\": " << c.p50_ms
        << ", \"sojourn_p99_ms\": " << c.p99_ms << "}"
        << (i + 1 < open.size() ? "," : "") << "\n";
  }
  out << "  ]\n"
      << "}\n";
  std::fprintf(stderr, "bench_serve: wrote %s\n", out_path.c_str());
  return (ab_pass && warm_pass) ? 0 : 1;
}
