// Reproduces paper Table 4: as Table 3, but with the AMD Opteron machine
// model (16 KB L1, 1 MB effective L2, IMTS=128, Opteron weight set) driving
// the schedulers' cost models.
#include "table_runtime_common.hpp"

using namespace fusedp;
using namespace fusedp::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg =
      BenchConfig::from_cli(cli, MachineModel::amd_opteron());
  cfg.print_header(
      "Table 4: execution times on the AMD Opteron machine model");
  const std::vector<BenchmarkResult> results = run_all_benchmarks(cfg);
  print_execution_table(results, cfg);
  write_benchmark_results_json(
      bench_out_path(cli, "BENCH_table4_opteron.json"), "table4_opteron",
      results, cfg);
  return 0;
}
