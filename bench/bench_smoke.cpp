// Smoke benchmark for the executor: times all seven registered pipelines
// under the PolyMageDP schedule and writes a machine-readable
// BENCH_smoke.json (ns/pixel per pipeline + machine parameters).  CI runs
// this in Release and uploads the JSON as an artifact; no gating.
//
// A/B levers for the compiled-executor work:
//   --compiled=0            interpreted per-tile path (pre-compilation
//                           executor)
//   --schedule=static       schedule(static) tile worksharing
//   --mode=scalar           per-point interpreter instead of row kernels
//
// The ≥1.5x kRow geomean claim in docs/performance.md is
//   bench_smoke --compiled=1 --schedule=dynamic   vs
//   bench_smoke --compiled=0 --schedule=static
// at the same scale/threads.
//
// --overhead-ab runs the request-governance overhead A/B instead: each
// pipeline timed ungoverned (no deadline, unlimited budget) and governed
// (far-future deadline armed + large finite budget — the full bookkeeping
// path with nothing ever tripping), writing BENCH_overhead.json and
// asserting the governed/ungoverned geomean ratio stays within
// --tolerance (default 1%).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fusion/incremental.hpp"
#include "model/cost.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "runtime/governor.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"

using namespace fusedp;

namespace {

struct PipelineResult {
  std::string name;
  double ms = 0.0;
  std::int64_t output_pixels = 0;
  double ns_per_pixel = 0.0;
};

std::int64_t output_pixels_of(const Pipeline& pl) {
  std::int64_t px = 0;
  for (int s : pl.outputs()) px += pl.stage(s).domain.volume();
  return px;
}

// In-process governance-overhead A/B.  Both arms run the identical executor
// configuration; the governed arm adds exactly what a real governed request
// pays when nothing trips: one armed (but far-future) deadline sampled per
// tile, plus governor bookkeeping on every workspace/arena growth under a
// budget that always admits.
int run_overhead_ab(const Cli& cli, const ExecOptions& opts,
                    std::int64_t scale, int samples, int runs,
                    const MachineModel& machine) {
  const double tolerance = cli.get_double("tolerance", 0.01);
  const std::string out_path =
      bench::bench_out_path(cli, "BENCH_overhead.json");

  struct AbResult {
    std::string name;
    double base_ms = 0.0;
    double governed_ms = 0.0;
    double ratio = 0.0;
  };
  std::vector<AbResult> results;
  double log_sum = 0.0;

  const char* keys[] = {"blur", "unsharp", "harris", "pyramid"};
  ResourceGovernor& gov = ResourceGovernor::instance();
  for (const char* key : keys) {
    const PipelineSpec spec = make_benchmark(key, scale);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, machine);
    IncFusion inc(pl, model);
    const Grouping g = inc.run();
    const std::vector<Buffer> inputs = spec.make_inputs();
    Executor ex(pl, g, opts);
    Workspace ws;

    // Ungoverned arm: no deadline pointer, unlimited budget.
    gov.set_budget(0);
    ex.run(inputs, ws);  // warm-up
    const RunStats base = measure_min_of_averages(
        [&] { ex.run(inputs, ws); }, samples, runs);

    // Governed arm: far-future deadline + a budget that always admits.
    gov.set_budget(std::int64_t{1} << 40);
    const Deadline dl = Deadline::after(3600.0);
    ex.run(inputs, ws, nullptr, &dl);  // warm-up
    const RunStats governed = measure_min_of_averages(
        [&] { ex.run(inputs, ws, nullptr, &dl); }, samples, runs);
    gov.set_budget(0);

    AbResult r;
    r.name = key;
    r.base_ms = base.min_avg_ms;
    r.governed_ms = governed.min_avg_ms;
    r.ratio = r.governed_ms / r.base_ms;
    log_sum += std::log(r.ratio);
    results.push_back(r);
    std::fprintf(stderr, "  %-12s base %9.3f ms  governed %9.3f ms  x%.4f\n",
                 key, r.base_ms, r.governed_ms, r.ratio);
  }
  const double geomean =
      std::exp(log_sum / static_cast<double>(results.size()));
  const bool pass = geomean <= 1.0 + tolerance;
  std::fprintf(stderr,
               "  governance overhead geomean: x%.4f (tolerance x%.4f) -> "
               "%s\n",
               geomean, 1.0 + tolerance, pass ? "PASS" : "FAIL");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_smoke: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"governance_overhead_ab\",\n"
      << bench::provenance_json(machine, &opts, "  ")
      << "  \"scale\": " << scale << ",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"runs\": " << runs << ",\n"
      << "  \"tolerance\": " << tolerance << ",\n"
      << "  \"pipelines\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const AbResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"base_ms\": " << r.base_ms
        << ", \"governed_ms\": " << r.governed_ms
        << ", \"ratio\": " << r.ratio << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"geomean_ratio\": " << geomean << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  std::fprintf(stderr, "bench_smoke: wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t scale = cli.get_int_env("scale", 2);
  const int samples = static_cast<int>(cli.get_int_env("samples", 3));
  const int runs = static_cast<int>(cli.get_int_env("runs", 3));
  const MachineModel machine = MachineModel::host();
  const int threads =
      static_cast<int>(cli.get_int_env("threads", machine.cores));
  const std::string out_path =
      bench::bench_out_path(cli, "BENCH_smoke.json");
  const std::string mode_str = cli.get_env("mode", "row");
  const std::string only = cli.get_env("only", "");
  const bool compiled = cli.get_int_env("compiled", 1) != 0;
  const bool vector_backend = cli.get_int_env("vector", 1) != 0;
  const bool allow_fma = cli.get_int_env("fma", 0) != 0;
  const std::string sched_str = cli.get_env("schedule", "dynamic");

  ExecOptions opts;
  opts.num_threads = threads;
  opts.mode = mode_str == "scalar" ? EvalMode::kScalar : EvalMode::kRow;
  opts.compiled = compiled;
  opts.vector_backend = vector_backend;
  opts.allow_fma = allow_fma;
  opts.tile_schedule =
      sched_str == "static" ? TileSchedule::kStatic : TileSchedule::kDynamic;

  std::fprintf(stderr,
               "bench_smoke: scale=%lld threads=%d samples=%d runs=%d "
               "mode=%s compiled=%d vector=%d fma=%d schedule=%s\n",
               static_cast<long long>(scale), threads, samples, runs,
               mode_str.c_str(), compiled ? 1 : 0, vector_backend ? 1 : 0,
               allow_fma ? 1 : 0, sched_str.c_str());

  if (cli.has("overhead-ab"))
    return run_overhead_ab(cli, opts, scale, samples, runs, machine);

  const char* keys[] = {"blur",        "unsharp", "harris", "bilateral",
                        "interpolate", "campipe", "pyramid"};
  std::vector<PipelineResult> results;
  double log_sum = 0.0;
  for (const char* key : keys) {
    if (!only.empty() && only != key) continue;
    const PipelineSpec spec = make_benchmark(key, scale);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, machine);
    IncFusion inc(pl, model);
    const Grouping g = inc.run();
    const std::vector<Buffer> inputs = spec.make_inputs();
    Executor ex(pl, g, opts);
    Workspace ws;
    ex.run(inputs, ws);  // warm-up (allocations, page faults)
    const RunStats stats = measure_min_of_averages(
        [&] { ex.run(inputs, ws); }, samples, runs);

    PipelineResult r;
    r.name = key;
    r.ms = stats.min_avg_ms;
    r.output_pixels = output_pixels_of(pl);
    r.ns_per_pixel =
        r.ms * 1e6 / static_cast<double>(std::max<std::int64_t>(r.output_pixels, 1));
    log_sum += std::log(r.ns_per_pixel);
    results.push_back(r);
    std::fprintf(stderr, "  %-12s %10.3f ms  %8.3f ns/px\n", key, r.ms,
                 r.ns_per_pixel);
  }
  if (results.empty()) {
    std::fprintf(stderr, "bench_smoke: no pipeline matched --only=%s\n",
                 only.c_str());
    return 1;
  }
  const double geomean =
      std::exp(log_sum / static_cast<double>(results.size()));
  std::fprintf(stderr, "  geomean: %.3f ns/px\n", geomean);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_smoke: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"smoke\",\n"
      << bench::provenance_json(machine, &opts, "  ")
      << "  \"schedule_source\": \"PolyMageDP\",\n"
      << "  \"backend\": \""
      << (!compiled ? "interpreted"
                    : (vector_backend ? "vector" : "scalar-compiled"))
      << "\",\n"
      << bench::exec_options_json(opts, "  ")
      << "  \"scale\": " << scale << ",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"runs\": " << runs << ",\n"
      << "  \"machine\": {\n"
      << "    \"name\": \"" << machine.name << "\",\n"
      << "    \"cores\": " << machine.cores << ",\n"
      << "    \"l1_bytes\": " << machine.l1_bytes << ",\n"
      << "    \"l2_bytes\": " << machine.l2_bytes << ",\n"
      << "    \"vector_width_floats\": " << machine.vector_width_floats
      << ",\n"
      << "    \"innermost_tile\": " << machine.innermost_tile << "\n"
      << "  },\n"
      << "  \"pipelines\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PipelineResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"ms\": " << r.ms
        << ", \"output_pixels\": " << r.output_pixels
        << ", \"ns_per_pixel\": " << r.ns_per_pixel << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"geomean_ns_per_pixel\": " << geomean << "\n"
      << "}\n";
  std::fprintf(stderr, "bench_smoke: wrote %s\n", out_path.c_str());
  return 0;
}
