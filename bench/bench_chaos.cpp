// bench_chaos: the standard chaos-soak configuration as a committed
// artifact (BENCH_chaos.json).
//
// Runs the ISSUE-6 acceptance soak — 8 concurrent Sessions, 5000 requests,
// ~30% fault injection, random per-request deadlines, constrained memory
// budget — and records every terminal-state counter plus the clean/dirty
// verdict with full provenance.  Exit code 0 iff the soak was clean.
//
//   bench_chaos [--sessions=8] [--requests=5000] [--fault-rate=0.3]
//               [--deadline-rate=0.3] [--budget-kb=192] [--seconds=0]
//               [--seed=1] [--out=BENCH_chaos.json]
//
// The default budget is 192 KB — deliberately *below* the soak's
// unconstrained high-water mark (~380 KB across 8 workers), so the
// governor genuinely queues and rejects during the acceptance run rather
// than idling under a budget nothing ever reaches.
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "verify/chaos.hpp"

int main(int argc, char** argv) {
  using namespace fusedp;
  Cli cli(argc, argv);

  verify::ChaosOptions opts;
  opts.sessions = static_cast<int>(cli.get_int("sessions", 8));
  opts.requests = static_cast<int>(cli.get_int("requests", 5000));
  opts.fault_rate = cli.get_double("fault-rate", 0.3);
  opts.deadline_rate = cli.get_double("deadline-rate", 0.3);
  opts.memory_budget_bytes = cli.has("budget-mb")
                                 ? cli.get_int("budget-mb", 0) * (1 << 20)
                                 : cli.get_int("budget-kb", 192) * 1024;
  opts.max_seconds = cli.get_double("seconds", 0.0);
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::printf(
      "bench_chaos: %d sessions x %d requests, fault-rate %.2f, "
      "deadline-rate %.2f, budget %lld KB\n",
      opts.sessions, opts.requests, opts.fault_rate, opts.deadline_rate,
      static_cast<long long>(opts.memory_budget_bytes >> 10));

  verify::ChaosStats stats = verify::run_chaos(opts);
  std::printf("%s\n", stats.summary().c_str());

  const std::string path = bench::bench_out_path(cli, "BENCH_chaos.json");
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_chaos: cannot write %s\n", path.c_str());
    return 2;
  }
  f << "{\n";
  f << "  \"bench\": \"chaos_soak\",\n";
  f << bench::provenance_json(MachineModel::host(), nullptr, "  ");
  f << "  \"config\": {\n";
  f << "    \"sessions\": " << opts.sessions << ",\n";
  f << "    \"requests\": " << opts.requests << ",\n";
  f << "    \"fault_rate\": " << opts.fault_rate << ",\n";
  f << "    \"deadline_rate\": " << opts.deadline_rate << ",\n";
  f << "    \"memory_budget_bytes\": " << opts.memory_budget_bytes << ",\n";
  f << "    \"pipeline_pool\": " << opts.pipeline_pool << ",\n";
  f << "    \"max_attempts\": " << opts.max_attempts << ",\n";
  f << "    \"seed\": " << opts.seed << "\n";
  f << "  },\n";
  f << "  \"result\": " << stats.to_json(4) << "\n";
  f << "}\n";
  std::printf("wrote %s\n", path.c_str());
  return stats.clean() ? 0 : 1;
}
