// Shared infrastructure for the table/figure reproduction benches.
//
// Environment knobs (also settable as --flags on each bench binary):
//   FUSEDP_SCALE    image-size divisor vs. the paper's sizes (default 2)
//   FUSEDP_SAMPLES  timing samples (paper: 5, default 2)
//   FUSEDP_RUNS     runs per sample (paper: 500, default 2)
//   FUSEDP_THREADS  the "16 cores" column's thread count (default 16)
//   FUSEDP_TUNE     PolyMage-A tuner grid: "small" (default) or "paper"
// `--pool-backend=1` routes timed runs through the persistent work-stealing
// pool instead of the OpenMP region (same outputs, different executor).
#pragma once

#include <string>
#include <vector>

#include "fusion/grouping.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "support/cli.hpp"

namespace fusedp::bench {

struct BenchConfig {
  std::int64_t scale = 2;
  int samples = 2;
  int runs = 2;
  int threads = 16;
  std::string tune = "small";
  MachineModel machine;
  // The executor configuration every timed run uses, set explicitly (and
  // recorded in each bench's JSON artifact) so table numbers are never at
  // the mercy of drifting ExecOptions defaults.  --mode/--compiled/
  // --vector/--fma/--schedule override the defaults.
  ExecOptions exec;

  static BenchConfig from_cli(const Cli& cli, MachineModel machine);
  void print_header(const char* what) const;
};

// The paper's four compared schedulers.
enum class Scheduler { kPolyMageDp, kPolyMageA, kHAuto, kHManual };
const char* scheduler_name(Scheduler s);

// Builds the grouping a scheduler chooses for this pipeline/machine.
// PolyMage-A runs its auto-tuning loop (timing real executions with
// `tune_threads` threads).
Grouping schedule(Scheduler which, const PipelineSpec& spec,
                  const CostModel& model, const BenchConfig& cfg,
                  int tune_threads);

// min-of-averages execution time (ms) of `g` at `threads`.  `base` fixes
// the executor configuration being measured (mode, compiled, backend, ...);
// `threads` overrides base.num_threads.
double time_grouping_ms(const Pipeline& pl, const Grouping& g,
                        const std::vector<Buffer>& inputs, int threads,
                        int samples, int runs, ExecOptions base = {});

// Resolves the `--out` flag (FUSEDP_OUT env fallback).  Unset, BENCH_*.json
// artifacts land in the repository root — the canonical home of trajectory
// files — rather than wherever the binary happens to run.
std::string bench_out_path(const Cli& cli, const char* default_filename);

// The ExecOptions fields as JSON members (no surrounding braces), one
// per line prefixed with `indent`, trailing comma included — ready to
// splice into a bench's result object so every artifact records exactly
// which executor configuration produced its numbers.
std::string exec_options_json(const ExecOptions& opts, const char* indent);

// A complete `"provenance": {...},` JSON member (prefixed with `indent`,
// trailing comma included) recording where the artifact's numbers came
// from: the git commit the build was configured at, the full MachineModel
// (cache sizes, IMTS, cost weights), and the resolved executor options
// (`"executor": null` when `exec` is null — scheduling-only benches).
// Every BENCH_*.json carries this block so a number can always be traced
// back to the code and configuration that produced it.
std::string provenance_json(const MachineModel& machine,
                            const ExecOptions* exec, const char* indent);

}  // namespace fusedp::bench
