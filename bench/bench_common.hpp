// Shared infrastructure for the table/figure reproduction benches.
//
// Environment knobs (also settable as --flags on each bench binary):
//   FUSEDP_SCALE    image-size divisor vs. the paper's sizes (default 2)
//   FUSEDP_SAMPLES  timing samples (paper: 5, default 2)
//   FUSEDP_RUNS     runs per sample (paper: 500, default 2)
//   FUSEDP_THREADS  the "16 cores" column's thread count (default 16)
//   FUSEDP_TUNE     PolyMage-A tuner grid: "small" (default) or "paper"
#pragma once

#include <string>
#include <vector>

#include "fusion/grouping.hpp"
#include "pipelines/pipelines.hpp"
#include "support/cli.hpp"

namespace fusedp::bench {

struct BenchConfig {
  std::int64_t scale = 2;
  int samples = 2;
  int runs = 2;
  int threads = 16;
  std::string tune = "small";
  MachineModel machine;

  static BenchConfig from_cli(const Cli& cli, MachineModel machine);
  void print_header(const char* what) const;
};

// The paper's four compared schedulers.
enum class Scheduler { kPolyMageDp, kPolyMageA, kHAuto, kHManual };
const char* scheduler_name(Scheduler s);

// Builds the grouping a scheduler chooses for this pipeline/machine.
// PolyMage-A runs its auto-tuning loop (timing real executions with
// `tune_threads` threads).
Grouping schedule(Scheduler which, const PipelineSpec& spec,
                  const CostModel& model, const BenchConfig& cfg,
                  int tune_threads);

// min-of-averages execution time (ms) of `g` at `threads`.
double time_grouping_ms(const Pipeline& pl, const Grouping& g,
                        const std::vector<Buffer>& inputs, int threads,
                        int samples, int runs);

}  // namespace fusedp::bench
