// Shared driver for Tables 3/4 and Figure 7: runs all four schedulers on
// all six benchmarks at 1 and N threads.
#pragma once

#include <cstdio>
#include <fstream>
#include <map>

#include "bench_common.hpp"
#include "runtime/executor.hpp"

namespace fusedp::bench {

struct BenchmarkResult {
  std::string title;
  // ms, indexed by scheduler then {0: 1 thread, 1: N threads}.
  std::map<Scheduler, double> t1;
  std::map<Scheduler, double> tn;
};

inline std::vector<BenchmarkResult> run_all_benchmarks(const BenchConfig& cfg) {
  std::vector<BenchmarkResult> results;
  const Scheduler schedulers[] = {Scheduler::kHManual, Scheduler::kHAuto,
                                  Scheduler::kPolyMageA,
                                  Scheduler::kPolyMageDp};
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, cfg.scale);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, cfg.machine);
    const std::vector<Buffer> inputs = spec.make_inputs();
    BenchmarkResult r;
    r.title = info.title;
    for (Scheduler s : schedulers) {
      const Grouping g = schedule(s, spec, model, cfg, cfg.threads);
      r.t1[s] = time_grouping_ms(pl, g, inputs, 1, cfg.samples, cfg.runs,
                                 cfg.exec);
      r.tn[s] = time_grouping_ms(pl, g, inputs, cfg.threads, cfg.samples,
                                 cfg.runs, cfg.exec);
      std::fprintf(stderr, "  %-18s %-12s 1T %8.2f ms   %dT %8.2f ms\n",
                   info.title.c_str(), scheduler_name(s), r.t1[s],
                   cfg.threads, r.tn[s]);
    }
    results.push_back(std::move(r));
  }
  return results;
}

inline void print_execution_table(const std::vector<BenchmarkResult>& results,
                                  const BenchConfig& cfg) {
  std::printf("%-20s | %8s %8s | %8s %8s | %8s %8s | %8s %8s | %s\n",
              "Benchmark", "Hman-1", "Hman-N", "Haut-1", "Haut-N", "PMA-1",
              "PMA-N", "PMDP-1", "PMDP-N",
              "speedup of PolyMageDP-N over (Hman, Haut, PMA)");
  for (const BenchmarkResult& r : results) {
    const double dp = r.tn.at(Scheduler::kPolyMageDp);
    std::printf(
        "%-20s | %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f | "
        "%.2fx %.2fx %.2fx\n",
        r.title.c_str(), r.t1.at(Scheduler::kHManual),
        r.tn.at(Scheduler::kHManual), r.t1.at(Scheduler::kHAuto),
        r.tn.at(Scheduler::kHAuto), r.t1.at(Scheduler::kPolyMageA),
        r.tn.at(Scheduler::kPolyMageA), r.t1.at(Scheduler::kPolyMageDp), dp,
        r.tn.at(Scheduler::kHManual) / dp, r.tn.at(Scheduler::kHAuto) / dp,
        r.tn.at(Scheduler::kPolyMageA) / dp);
  }
  std::printf(
      "\n# times in ms at 1 and N=%d threads; this container has a single\n"
      "# hardware core, so N-thread rows measure oversubscribed execution\n"
      "# (see EXPERIMENTS.md for interpretation).\n",
      cfg.threads);
}

// JSON artifact for a scheduler-comparison bench: per pipeline, the 1- and
// N-thread times of every scheduler, plus the machine model and the exact
// ExecOptions the runs used.
inline void write_benchmark_results_json(
    const std::string& path, const char* bench_name,
    const std::vector<BenchmarkResult>& results, const BenchConfig& cfg) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "%s: cannot write %s\n", bench_name, path.c_str());
    return;
  }
  const Scheduler schedulers[] = {Scheduler::kHManual, Scheduler::kHAuto,
                                  Scheduler::kPolyMageA,
                                  Scheduler::kPolyMageDp};
  out << "{\n"
      << "  \"bench\": \"" << bench_name << "\",\n"
      << provenance_json(cfg.machine, &cfg.exec, "  ")
      << exec_options_json(cfg.exec, "  ")
      << "  \"scale\": " << cfg.scale << ",\n"
      << "  \"samples\": " << cfg.samples << ",\n"
      << "  \"runs\": " << cfg.runs << ",\n"
      << "  \"machine\": \"" << cfg.machine.name << "\",\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchmarkResult& r = results[i];
    out << "    {\"name\": \"" << r.title << "\"";
    for (Scheduler s : schedulers)
      out << ", \"" << scheduler_name(s) << "_ms_1t\": " << r.t1.at(s)
          << ", \"" << scheduler_name(s) << "_ms_nt\": " << r.tn.at(s);
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "%s: wrote %s\n", bench_name, path.c_str());
}

}  // namespace fusedp::bench
