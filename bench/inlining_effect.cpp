// Extension bench: effect of the pointwise-inlining pre-pass (the feature
// paper §6.2 credits for H-manual's camera-pipeline edge) when combined
// with PolyMageDP scheduling.
#include <cstdio>

#include "bench_common.hpp"
#include "fusion/incremental.hpp"
#include "fusion/inlining.hpp"
#include "runtime/executor.hpp"

using namespace fusedp;
using namespace fusedp::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg =
      BenchConfig::from_cli(cli, MachineModel::xeon_haswell());
  cfg.print_header("Inlining pre-pass: PolyMageDP with and without");

  std::printf("%-20s %7s %9s | %12s %12s %9s\n", "Benchmark", "stages",
              "inlined", "plain ms", "inlined ms", "speedup");
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, cfg.scale);
    const Pipeline& pl = *spec.pipeline;
    const std::vector<Buffer> inputs = spec.make_inputs();

    const CostModel model(pl, cfg.machine);
    IncFusion inc(pl, model);
    const double plain = time_grouping_ms(pl, inc.run(), inputs, 1,
                                          cfg.samples, cfg.runs);

    const InlineResult il = inline_pointwise(pl);
    const CostModel model2(*il.pipeline, cfg.machine);
    IncFusion inc2(*il.pipeline, model2);
    const double inl = time_grouping_ms(*il.pipeline, inc2.run(), inputs, 1,
                                        cfg.samples, cfg.runs);

    std::printf("%-20s %7d %9d | %12.2f %12.2f %8.2fx\n", info.title.c_str(),
                pl.num_stages(), il.stages_inlined, plain, inl, plain / inl);
    std::fflush(stdout);
  }
  std::printf(
      "\n# 'inlined' = stages substituted into consumers before scheduling;\n"
      "# outputs remain bit-identical (tests/test_inlining.cpp).\n");
  return 0;
}
