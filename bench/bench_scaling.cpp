// Thread-scaling sweep through the persistent work-stealing pool: the six
// paper benchmarks (Table 2) under the PolyMageDP schedule, timed at 1, 2,
// 4 and 8 threads on BOTH executors — the per-run OpenMP parallel region
// (the baseline every other bench uses) and the process-wide WorkPool
// (ExecOptions::pool_backend).  Outputs of the two are bit-identical
// (tests/test_pool.cpp, the differ's vector-pool rung); this bench measures
// only the execution-strategy difference, per thread count.
//
// Writes BENCH_scaling.json: per pipeline and thread count, ms for both
// backends, each backend's self-relative speedup over its own 1-thread run,
// and the pool/OpenMP ratio, plus the pool's cross-lane steal counters.
// Numbers above the hardware core count are oversubscription, not scaling —
// the artifact records `hardware_cores` so readers can tell which is which.
//
//   --scale/--samples/--runs     as bench_smoke (defaults 2/2/2)
//   --only=KEY                   run a single pipeline
//   --max-threads=N              clip the 1/2/4/8 ladder (default 8)
//   --out=PATH                   default: <repo root>/BENCH_scaling.json
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fusion/incremental.hpp"
#include "model/cost.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "runtime/pool.hpp"
#include "support/cli.hpp"

using namespace fusedp;

namespace {

struct Cell {
  int threads = 0;
  double openmp_ms = 0.0;
  double pool_ms = 0.0;
  std::uint64_t pool_steals = 0;  // cross-lane steal events during the pool runs
};

struct Row {
  std::string key;
  std::string title;
  std::int64_t output_pixels = 0;
  std::vector<Cell> cells;  // one per thread count, ascending
};

std::int64_t output_pixels_of(const Pipeline& pl) {
  std::int64_t px = 0;
  for (int s : pl.outputs()) px += pl.stage(s).domain.volume();
  return px;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t scale = cli.get_int_env("scale", 2);
  const int samples = static_cast<int>(cli.get_int_env("samples", 2));
  const int runs = static_cast<int>(cli.get_int_env("runs", 2));
  const int max_threads = static_cast<int>(cli.get_int_env("max-threads", 8));
  const std::string only = cli.get_env("only", "");
  const std::string out_path = bench::bench_out_path(cli, "BENCH_scaling.json");
  const MachineModel machine = MachineModel::host();
  const int hw_cores =
      static_cast<int>(std::thread::hardware_concurrency());

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  ExecOptions openmp_opts;
  openmp_opts.mode = EvalMode::kRow;
  openmp_opts.compiled = true;
  openmp_opts.vector_backend = true;
  openmp_opts.tile_schedule = TileSchedule::kDynamic;
  ExecOptions pool_opts = openmp_opts;
  pool_opts.pool_backend = true;

  std::fprintf(stderr,
               "bench_scaling: scale=%lld samples=%d runs=%d threads up to "
               "%d (hardware cores: %d)\n",
               static_cast<long long>(scale), samples, runs, max_threads,
               hw_cores);
  if (hw_cores < max_threads)
    std::fprintf(stderr,
                 "# thread counts above %d are oversubscribed on this "
                 "machine; their numbers measure scheduling overhead, not "
                 "parallel speedup\n",
                 hw_cores);

  std::vector<Row> rows;
  for (const BenchmarkInfo& info : benchmark_list()) {
    if (!only.empty() && only != info.key) continue;
    const PipelineSpec spec = make_benchmark(info.key, scale);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, machine);
    IncFusion inc(pl, model);
    const Grouping g = inc.run();
    const std::vector<Buffer> inputs = spec.make_inputs();

    Row r;
    r.key = info.key;
    r.title = info.title;
    r.output_pixels = output_pixels_of(pl);
    for (int t : thread_counts) {
      Cell c;
      c.threads = t;
      c.openmp_ms = bench::time_grouping_ms(pl, g, inputs, t, samples, runs,
                                            openmp_opts);
      const PoolStats before = WorkPool::instance().stats();
      c.pool_ms =
          bench::time_grouping_ms(pl, g, inputs, t, samples, runs, pool_opts);
      c.pool_steals =
          WorkPool::instance().stats().steal_events - before.steal_events;
      r.cells.push_back(c);
      std::fprintf(stderr,
                   "  %-12s %d thr  openmp %9.3f ms  pool %9.3f ms  "
                   "(ratio %.3f, %llu steals)\n",
                   info.key.c_str(), t, c.openmp_ms, c.pool_ms,
                   c.openmp_ms / c.pool_ms,
                   static_cast<unsigned long long>(c.pool_steals));
    }
    rows.push_back(std::move(r));
  }
  if (rows.empty()) {
    std::fprintf(stderr, "bench_scaling: no pipeline matched --only=%s\n",
                 only.c_str());
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_scaling: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"scaling\",\n"
      << bench::provenance_json(machine, &pool_opts, "  ")
      << "  \"schedule_source\": \"PolyMageDP\",\n"
      << "  \"backends\": [\"openmp\", \"pool\"],\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"runs\": " << runs << ",\n"
      << "  \"hardware_cores\": " << hw_cores << ",\n"
      << "  \"note\": \"speedups are self-relative (each backend vs its own "
         "1-thread run); thread counts above hardware_cores are "
         "oversubscribed and measure overhead, not parallelism\",\n"
      << "  \"pipelines\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double o1 = r.cells.front().openmp_ms;
    const double p1 = r.cells.front().pool_ms;
    out << "    {\"name\": \"" << r.key
        << "\", \"output_pixels\": " << r.output_pixels << ", \"cells\": [\n";
    for (std::size_t j = 0; j < r.cells.size(); ++j) {
      const Cell& c = r.cells[j];
      out << "      {\"threads\": " << c.threads
          << ", \"openmp_ms\": " << c.openmp_ms
          << ", \"pool_ms\": " << c.pool_ms
          << ", \"openmp_speedup\": " << (o1 / c.openmp_ms)
          << ", \"pool_speedup\": " << (p1 / c.pool_ms)
          << ", \"pool_vs_openmp\": " << (c.openmp_ms / c.pool_ms)
          << ", \"pool_steals\": " << c.pool_steals << "}"
          << (j + 1 < r.cells.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n"
      << "}\n";
  std::fprintf(stderr, "bench_scaling: wrote %s\n", out_path.c_str());
  return 0;
}
