// Ablation of the cost model's design choices (DESIGN.md §6): executes each
// benchmark under PolyMageDP schedules produced by deliberately weakened
// models and compares against the full model.
//
// Variants:
//   full        the complete model
//   no-overlap  w3 = 0 (ignore redundant recomputation)
//   no-locality w1 = 0 (ignore live-in/out traffic)
//   no-dimdiff  w4 = 0 (ignore extent mismatch)
//   pow2-tiles  tile sizes rounded down to powers of two (the restriction
//               the paper lifts; quantifies what free tile sizes buy)
#include <cstdio>

#include "bench_common.hpp"
#include "fusion/incremental.hpp"
#include "runtime/executor.hpp"

using namespace fusedp;
using namespace fusedp::bench;

namespace {

std::int64_t round_down_pow2(std::int64_t v) {
  std::int64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg =
      BenchConfig::from_cli(cli, MachineModel::xeon_haswell());
  cfg.print_header("Ablation: cost-model components (PolyMageDP, 1 thread)");

  std::printf("%-20s %9s %11s %12s %11s %11s\n", "Benchmark", "full",
              "no-overlap", "no-locality", "no-dimdiff", "pow2-tiles");
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, cfg.scale);
    const Pipeline& pl = *spec.pipeline;
    const std::vector<Buffer> inputs = spec.make_inputs();

    // Weakened models can wreck the DP's pruning too (that is part of the
    // finding): bound the state budget and report n/a when it blows.
    auto run_variant = [&](CostWeights w, bool pow2) -> double {
      MachineModel m = cfg.machine;
      m.weights = w;
      const CostModel model(pl, m);
      IncOptions iopts;
      iopts.max_states = 2'000'000;
      IncFusion inc(pl, model, iopts);
      Grouping g;
      try {
        g = inc.run();
      } catch (const Error&) {
        return -1.0;  // state budget exhausted under this ablation
      }
      if (pow2) {
        for (GroupSchedule& gs : g.groups)
          for (std::int64_t& t : gs.tile_sizes) t = round_down_pow2(t);
      }
      return time_grouping_ms(pl, g, inputs, 1, cfg.samples, cfg.runs);
    };
    auto fmt = [](double v) {
      static thread_local char buf[32];
      if (v < 0)
        std::snprintf(buf, sizeof buf, "%s", "n/a");
      else
        std::snprintf(buf, sizeof buf, "%.2f", v);
      return buf;
    };

    const CostWeights full = cfg.machine.weights;
    CostWeights no_overlap = full;
    no_overlap.w3 = 0.0;
    CostWeights no_locality = full;
    no_locality.w1 = 0.0;
    CostWeights no_dimdiff = full;
    no_dimdiff.w4 = 0.0;

    std::printf("%-20s %9s", info.title.c_str(), fmt(run_variant(full, false)));
    std::printf(" %11s", fmt(run_variant(no_overlap, false)));
    std::printf(" %12s", fmt(run_variant(no_locality, false)));
    std::printf(" %11s", fmt(run_variant(no_dimdiff, false)));
    std::printf(" %11s\n", fmt(run_variant(full, true)));
    std::fflush(stdout);
  }
  std::printf("\n# times in ms; larger values than `full` show the ablated\n"
              "# component was load-bearing for that benchmark.\n");
  return 0;
}
