// Supports the paper's Section 3.3 complexity claim: on a linear n-stage
// pipeline the DP evaluates exactly n(n+1)/2 states — effectively covering
// all 2^(n-1) groupings — in O(n^2) time.  Prints states and wall time as n
// grows, plus the greedy baselines' times for contrast.
#include <cstdio>

#include "bench_common.hpp"
#include "fusion/dp.hpp"
#include "fusion/halide_auto.hpp"
#include "fusion/polymage_greedy.hpp"
#include "support/timing.hpp"

using namespace fusedp;
using namespace fusedp::bench;

namespace {

std::unique_ptr<Pipeline> linear_pipeline(int n, std::int64_t hw) {
  auto pl = std::make_unique<Pipeline>("linear" + std::to_string(n));
  const int img = pl->add_input("img", {hw, hw});
  const Stage* prev = nullptr;
  for (int i = 0; i < n; ++i) {
    StageBuilder b(*pl, pl->add_stage("s" + std::to_string(i), {hw, hw}));
    b.define((prev == nullptr
                  ? b.in(img, {0, -1}) + b.in(img, {0, 1})
                  : b.at(*prev, {0, -1}) + b.at(*prev, {0, 1})) *
             0.5f);
    prev = &b.stage();
  }
  pl->finalize();
  return pl;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchConfig cfg =
      BenchConfig::from_cli(cli, MachineModel::xeon_haswell());
  cfg.print_header(
      "Section 3.3: DP state count / time on linear n-stage pipelines");

  std::printf("%6s %12s %12s %12s | %10s %10s %10s\n", "n", "states",
              "n(n+1)/2", "groupings", "DP ms", "greedy ms", "H-auto ms");
  for (int n : {4, 8, 16, 24, 32, 48, 63}) {
    const auto pl = linear_pipeline(n, 512);
    const CostModel model(*pl, cfg.machine);
    DpFusion dp(*pl, model);
    WallTimer t;
    dp.run();
    const double dp_ms = t.millis();

    t.restart();
    const PolyMageGreedy greedy(*pl, model);
    greedy.run(64, 128, 0.4);
    const double greedy_ms = t.millis();

    t.restart();
    const HalideAuto hauto(*pl, model);
    hauto.run();
    const double hauto_ms = t.millis();

    const std::string coverage =
        n <= 40 ? std::to_string(1ull << (n - 1)) : ">=2^40";
    std::printf("%6d %12llu %12d %12s | %10.2f %10.2f %10.2f\n", n,
                static_cast<unsigned long long>(
                    dp.stats().groupings_enumerated),
                n * (n + 1) / 2, coverage.c_str(), dp_ms, greedy_ms,
                hauto_ms);
  }
  std::printf(
      "\n# 'groupings' = 2^(n-1) valid groupings the DP effectively covers\n"
      "# with only n(n+1)/2 memoized states (paper Section 2.4/3.3).\n");
  return 0;
}
