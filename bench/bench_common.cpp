#include "bench_common.hpp"

#include <cstdio>

#include "fusion/halide_auto.hpp"
#include "fusion/incremental.hpp"
#include "fusion/polymage_greedy.hpp"
#include "runtime/executor.hpp"
#include "support/fingerprint.hpp"
#include "support/stats.hpp"

namespace fusedp::bench {

BenchConfig BenchConfig::from_cli(const Cli& cli, MachineModel machine) {
  BenchConfig cfg;
  cfg.scale = cli.get_int_env("scale", 2);
  cfg.samples = static_cast<int>(cli.get_int_env("samples", 2));
  cfg.runs = static_cast<int>(cli.get_int_env("runs", 2));
  cfg.threads = static_cast<int>(cli.get_int_env("threads", 16));
  cfg.tune = cli.get_env("tune", "small");
  cfg.machine = std::move(machine);
  cfg.exec.num_threads = cfg.threads;
  cfg.exec.mode = cli.get_env("mode", "row") == "scalar" ? EvalMode::kScalar
                                                         : EvalMode::kRow;
  cfg.exec.compiled = cli.get_int_env("compiled", 1) != 0;
  cfg.exec.vector_backend = cli.get_int_env("vector", 1) != 0;
  cfg.exec.allow_fma = cli.get_int_env("fma", 0) != 0;
  cfg.exec.tile_schedule = cli.get_env("schedule", "dynamic") == "static"
                               ? TileSchedule::kStatic
                               : TileSchedule::kDynamic;
  cfg.exec.pool_backend = cli.get_int_env("pool-backend", 0) != 0;
  return cfg;
}

void BenchConfig::print_header(const char* what) const {
  std::printf("# %s\n", what);
  std::printf(
      "# machine model: %s (L1 %lld KB, L2 %lld KB, %d cores, IMTS %lld, "
      "weights w1=%g w2=%g w3=%g w4=%g)\n",
      machine.name.c_str(), static_cast<long long>(machine.l1_bytes / 1024),
      static_cast<long long>(machine.l2_bytes / 1024), machine.cores,
      static_cast<long long>(machine.innermost_tile), machine.weights.w1,
      machine.weights.w2, machine.weights.w3, machine.weights.w4);
  std::printf(
      "# images: paper sizes / %lld; timing: min of %d sample averages, %d "
      "runs each (paper: 5 x 500 at full size)\n",
      static_cast<long long>(scale), samples, runs);
  std::printf("# PolyMage-A tuner grid: %s\n", tune.c_str());
  std::printf("# executor: %s %s backend, %s tiles%s\n\n",
              exec.compiled ? "compiled" : "interpreted",
              !exec.compiled ? "row"
                             : (exec.vector_backend ? "vector"
                                                    : "scalar-compiled"),
              exec.tile_schedule == TileSchedule::kDynamic ? "dynamic"
                                                           : "static",
              exec.allow_fma ? ", fma" : "");
}

const char* scheduler_name(Scheduler s) {
  switch (s) {
    case Scheduler::kPolyMageDp: return "PolyMageDP";
    case Scheduler::kPolyMageA: return "PolyMage-A";
    case Scheduler::kHAuto: return "H-auto";
    case Scheduler::kHManual: return "H-manual";
  }
  return "?";
}

double time_grouping_ms(const Pipeline& pl, const Grouping& g,
                        const std::vector<Buffer>& inputs, int threads,
                        int samples, int runs, ExecOptions base) {
  base.num_threads = threads;
  Executor ex(pl, g, base);
  Workspace ws;
  ex.run(inputs, ws);  // warm-up (allocations, page faults)
  const RunStats st =
      measure_min_of_averages([&] { ex.run(inputs, ws); }, samples, runs);
  return st.min_avg_ms;
}

std::string bench_out_path(const Cli& cli, const char* default_filename) {
#ifdef FUSEDP_REPO_ROOT
  const std::string def = std::string(FUSEDP_REPO_ROOT) + "/" + default_filename;
#else
  const std::string def = default_filename;
#endif
  return cli.get_env("out", def);
}

std::string exec_options_json(const ExecOptions& opts, const char* indent) {
  std::string s;
  auto field = [&](const char* key, const std::string& val) {
    s += indent;
    s += "\"";
    s += key;
    s += "\": ";
    s += val;
    s += ",\n";
  };
  field("threads", std::to_string(opts.num_threads));
  field("eval_mode",
        opts.mode == EvalMode::kRow ? "\"row\"" : "\"scalar\"");
  field("compiled", opts.compiled ? "true" : "false");
  field("vector_backend", opts.vector_backend ? "true" : "false");
  field("allow_fma", opts.allow_fma ? "true" : "false");
  field("fast_transcendentals",
        opts.fast_transcendentals ? "true" : "false");
  field("never_pessimize", opts.never_pessimize ? "true" : "false");
  field("tile_schedule", opts.tile_schedule == TileSchedule::kDynamic
                             ? "\"dynamic\""
                             : "\"static\"");
  field("pooled_storage", opts.pooled_storage ? "true" : "false");
  field("pool_backend", opts.pool_backend ? "true" : "false");
  return s;
}

std::string provenance_json(const MachineModel& machine,
                            const ExecOptions* exec, const char* indent) {
  // Same source of truth as the persistent schedule cache's records:
  // build_git_sha() and the machine fingerprint come from
  // support/fingerprint, so an artifact and a cache entry produced by the
  // same build are directly comparable.
  std::string in(indent);
  std::string s;
  s += in + "\"provenance\": {\n";
  s += in + "  \"git_sha\": \"" + std::string(build_git_sha()) + "\",\n";
  s += in + "  \"machine_fingerprint\": \"" + hex64(fingerprint(machine)) +
       "\",\n";
  s += in + "  \"machine\": {\n";
  s += in + "    \"name\": \"" + machine.name + "\",\n";
  s += in + "    \"l1_bytes\": " + std::to_string(machine.l1_bytes) + ",\n";
  s += in + "    \"l2_bytes\": " + std::to_string(machine.l2_bytes) + ",\n";
  s += in + "    \"l3_bytes\": " + std::to_string(machine.l3_bytes) + ",\n";
  s += in + "    \"cores\": " + std::to_string(machine.cores) + ",\n";
  s += in + "    \"vector_width_floats\": " +
       std::to_string(machine.vector_width_floats) + ",\n";
  s += in + "    \"innermost_tile\": " +
       std::to_string(machine.innermost_tile) + ",\n";
  s += in + "    \"weights\": [" + std::to_string(machine.weights.w1) + ", " +
       std::to_string(machine.weights.w2) + ", " +
       std::to_string(machine.weights.w3) + ", " +
       std::to_string(machine.weights.w4) + "]\n";
  s += in + "  },\n";
  if (exec != nullptr) {
    s += in + "  \"executor\": {\n";
    std::string eo = exec_options_json(*exec, (in + "    ").c_str());
    // exec_options_json ends every member with ",\n"; the last member of
    // the nested object must not have the trailing comma.
    if (eo.size() >= 2 && eo[eo.size() - 2] == ',')
      eo.erase(eo.size() - 2, 1);
    s += eo;
    s += in + "  }\n";
  } else {
    s += in + "  \"executor\": null\n";
  }
  s += in + "},\n";
  return s;
}

Grouping schedule(Scheduler which, const PipelineSpec& spec,
                  const CostModel& model, const BenchConfig& cfg,
                  int tune_threads) {
  const Pipeline& pl = *spec.pipeline;
  switch (which) {
    case Scheduler::kPolyMageDp: {
      IncFusion inc(pl, model);
      return inc.run();
    }
    case Scheduler::kPolyMageA: {
      PolyMageOptions opts;
      if (cfg.tune == "paper") {
        opts.tile_candidates = {8, 16, 32, 64, 128, 256};
        opts.tolerances = {0.2, 0.4, 0.5};
      } else {
        opts.tile_candidates = {32, 64, 128, 256};
        opts.tolerances = {0.2, 0.5};
      }
      const PolyMageGreedy greedy(pl, model, opts);
      const std::vector<Buffer> inputs = spec.make_inputs();
      return greedy.tune([&](const Grouping& g) {
        return time_grouping_ms(pl, g, inputs, tune_threads, 1, 1, cfg.exec);
      });
    }
    case Scheduler::kHAuto: {
      HalideAutoOptions opts;
      opts.cache_bytes = cfg.machine.l2_bytes;
      opts.parallelism_threshold = cfg.machine.cores;
      // Paper Section 6.2: VECTOR_WIDTH = 16 = 2x the native f32 width.
      opts.vector_width = 2 * cfg.machine.vector_width_floats;
      opts.load_cost = 40.0;
      const HalideAuto h(pl, model, opts);
      return h.run();
    }
    case Scheduler::kHManual:
      return spec.manual_grouping(model);
  }
  FUSEDP_CHECK(false, "unknown scheduler");
  return {};
}

}  // namespace fusedp::bench
