// Multi-band (Laplacian pyramid) blending of two synthetic images along a
// soft seam, scheduled by the DP fusion model; writes inputs and result as
// PPM files.
//
//   ./pyramid_blend_app [--height=540] [--width=960] [--threads=4]
//                       [--out=blend.ppm]
#include <cstdio>

#include "api/session.hpp"
#include "fusion/incremental.hpp"
#include "pipelines/pipelines.hpp"
#include "support/cli.hpp"

using namespace fusedp;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t h = cli.get_int("height", 540);
  const std::int64_t w = cli.get_int("width", 960);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const std::string out_path = cli.get("out", "blend.ppm");

  const PipelineSpec spec = make_pyramid_blend(h, w);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::host());

  IncFusion inc(pl, model);
  const Grouping grouping = inc.run();
  std::printf("DP grouping: %zu groups (from %d stages), %llu states, %.1f ms\n",
              grouping.groups.size(), pl.num_stages(),
              static_cast<unsigned long long>(
                  inc.stats().groupings_enumerated),
              inc.stats().seconds * 1e3);

  // Hand the DP grouping to a Session: it validates the schedule, compiles
  // the plan once, and keeps the workspace warm between execute() calls.
  const std::vector<Buffer> inputs = spec.make_inputs();
  Options opts;
  opts.num_threads = threads;
  Result<Session> opened = Session::open(pl, grouping, opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "Session::open failed: %s\n", opened.error().what());
    return 1;
  }
  Session session = std::move(opened).value();
  session.execute(inputs);  // warm-up
  Result<double> seconds = session.execute(inputs);
  if (!seconds.ok()) {
    std::fprintf(stderr, "execute failed: %s\n", seconds.error().what());
    return 1;
  }
  std::printf("pyramid blend on %lldx%lld: %.2f ms (%d threads)\n",
              static_cast<long long>(h), static_cast<long long>(w),
              seconds.value() * 1e3, threads);

  write_ppm("blend_input_a.ppm", inputs[0]);
  write_ppm("blend_input_b.ppm", inputs[1]);
  write_ppm(out_path, session.output(0));
  std::printf("wrote blend_input_a.ppm, blend_input_b.ppm, %s\n",
              out_path.c_str());
  return 0;
}
