// Multi-band (Laplacian pyramid) blending of two synthetic images along a
// soft seam, scheduled by the DP fusion model; writes inputs and result as
// PPM files.
//
//   ./pyramid_blend_app [--height=540] [--width=960] [--threads=4]
//                       [--out=blend.ppm]
#include <cstdio>

#include "fusion/incremental.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "support/cli.hpp"
#include "support/timing.hpp"

using namespace fusedp;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t h = cli.get_int("height", 540);
  const std::int64_t w = cli.get_int("width", 960);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const std::string out_path = cli.get("out", "blend.ppm");

  const PipelineSpec spec = make_pyramid_blend(h, w);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::host());

  IncFusion inc(pl, model);
  const Grouping grouping = inc.run();
  std::printf("DP grouping: %zu groups (from %d stages), %llu states, %.1f ms\n",
              grouping.groups.size(), pl.num_stages(),
              static_cast<unsigned long long>(
                  inc.stats().groupings_enumerated),
              inc.stats().seconds * 1e3);

  const std::vector<Buffer> inputs = spec.make_inputs();
  ExecOptions opts;
  opts.num_threads = threads;
  Executor ex(pl, grouping, opts);
  Workspace ws;
  ex.run(inputs, ws);
  WallTimer t;
  ex.run(inputs, ws);
  std::printf("pyramid blend on %lldx%lld: %.2f ms (%d threads)\n",
              static_cast<long long>(h), static_cast<long long>(w),
              t.millis(), threads);

  write_ppm("blend_input_a.ppm", inputs[0]);
  write_ppm("blend_input_b.ppm", inputs[1]);
  write_ppm(out_path, ws.stage_buffer(pl.outputs()[0]));
  std::printf("wrote blend_input_a.ppm, blend_input_b.ppm, %s\n",
              out_path.c_str());
  return 0;
}
