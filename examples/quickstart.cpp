// Quickstart: the blur pipeline from the paper's Figure 1, scheduled with
// the DP fusion model and executed with overlapped tiling.
//
//   ./quickstart [--height=1024] [--width=1024] [--threads=4]
#include <cstdio>

#include "fusedp.hpp"
#include "support/cli.hpp"
#include "support/timing.hpp"

using namespace fusedp;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t h = cli.get_int("height", 1024);
  const std::int64_t w = cli.get_int("width", 1024);
  const int threads = static_cast<int>(cli.get_int("threads", 4));

  // 1. Build the pipeline (the C++ analogue of paper Figure 1).
  const PipelineSpec spec = make_blur(h, w);
  const Pipeline& pl = *spec.pipeline;
  std::printf("%s", pipeline_to_string(pl).c_str());

  // 2. Schedule it: DP grouping + model-driven tile sizes.
  const CostModel model(pl, MachineModel::host());
  DpFusion dp(pl, model);
  const Grouping grouping = dp.run();
  std::printf("\n%s", grouping.to_string(pl).c_str());
  std::printf("DP evaluated %llu states in %.2f ms\n\n",
              static_cast<unsigned long long>(dp.stats().groupings_enumerated),
              dp.stats().seconds * 1e3);

  // 3. Show the lowered loop structure (the analogue of paper Figure 3).
  std::printf("%s\n", plan_to_string(lower(pl, grouping)).c_str());

  // 4. Execute and verify against the unfused scalar reference.
  const std::vector<Buffer> inputs = spec.make_inputs();
  ExecOptions opts;
  opts.num_threads = threads;
  WallTimer timer;
  const std::vector<Buffer> outs = run_pipeline(pl, grouping, inputs, opts);
  std::printf("fused+tiled run: %.2f ms on %d threads\n", timer.millis(),
              threads);

  const std::vector<Buffer> ref = run_reference(pl, inputs);
  const Buffer& expect = ref[static_cast<std::size_t>(pl.outputs()[0])];
  const Buffer& got = outs[0];
  for (std::int64_t i = 0; i < got.volume(); ++i)
    if (got.data()[i] != expect.data()[i]) {
      std::printf("MISMATCH at %lld: %f vs %f\n",
                  static_cast<long long>(i), got.data()[i],
                  expect.data()[i]);
      return 1;
    }
  std::printf("output matches the scalar reference bit-for-bit\n");
  return 0;
}
