// Quickstart: the blur pipeline from the paper's Figure 1, scheduled and
// executed through the fusedp::Session facade.
//
//   ./quickstart [--height=1024] [--width=1024] [--threads=4]
//                [--trace=blur_trace.json]
//
// Session::open owns the whole schedule -> plan -> execute lifecycle: it
// validates the Options struct, runs the deadline-bounded scheduler ladder
// (full DP first), compiles the stage programs, and hands back a coded
// Result instead of throwing.  --trace additionally exports the measured
// run as Chrome trace_event JSON (chrome://tracing, Perfetto).
#include <cstdio>

#include "fusedp.hpp"
#include "support/cli.hpp"

using namespace fusedp;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t h = cli.get_int("height", 1024);
  const std::int64_t w = cli.get_int("width", 1024);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const std::string trace_path = cli.get("trace", "");

  // 1. Build the pipeline (the C++ analogue of paper Figure 1).
  const PipelineSpec spec = make_blur(h, w);
  const Pipeline& pl = *spec.pipeline;
  std::printf("%s", pipeline_to_string(pl).c_str());

  // 2. Open a session: one validated Options struct covers scheduling,
  //    execution and observability.
  //
  //    (Deprecated equivalent — wiring the steps by hand:
  //       CostModel model(pl, MachineModel::host());
  //       Grouping g = DpFusion(pl, model).run();
  //       auto outs = run_pipeline(pl, g, inputs, ExecOptions{...});
  //     still supported, but Session validates the options, reports which
  //     scheduler tier won, and keeps the compiled plan warm across runs.)
  Options opts;
  opts.num_threads = threads;
  opts.collect_trace = true;  // enables trace()/report() below
  Result<Session> opened = Session::open(pl, opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "Session::open failed [%s]: %s\n",
                 error_code_name(opened.error().code()),
                 opened.error().what());
    return 1;
  }
  Session session = std::move(opened).value();
  std::printf("\n%s", session.grouping().to_string(pl).c_str());
  std::printf("%s\n", session.diagnostics().summary().c_str());

  // 3. Show the lowered loop structure (the analogue of paper Figure 3).
  std::printf("%s\n", plan_to_string(session.plan()).c_str());

  // 4. Execute and verify against the unfused scalar reference.
  const std::vector<Buffer> inputs = spec.make_inputs();
  Result<double> seconds = session.execute(inputs);
  if (!seconds.ok()) {
    std::fprintf(stderr, "execute failed: %s\n", seconds.error().what());
    return 1;
  }
  std::printf("fused+tiled run: %.2f ms on %d threads\n",
              seconds.value() * 1e3, threads);

  const std::vector<Buffer> ref = run_reference(pl, inputs);
  const Buffer& expect = ref[static_cast<std::size_t>(pl.outputs()[0])];
  const Buffer& got = session.output(0);
  for (std::int64_t i = 0; i < got.volume(); ++i)
    if (got.data()[i] != expect.data()[i]) {
      std::printf("MISMATCH at %lld: %f vs %f\n",
                  static_cast<long long>(i), got.data()[i],
                  expect.data()[i]);
      return 1;
    }
  std::printf("output matches the scalar reference bit-for-bit\n");

  // 5. Observability: predicted-vs-measured per group, optional trace file.
  Result<observe::Report> rep = session.report();
  if (rep.ok()) std::printf("\n%s", observe::report_to_string(rep.value()).c_str());
  if (!trace_path.empty()) {
    Result<int> wrote = session.write_trace(trace_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", wrote.error().what());
      return 1;
    }
    std::printf("wrote %d trace events to %s\n", wrote.value(),
                trace_path.c_str());
  }
  return 0;
}
