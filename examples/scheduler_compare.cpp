// Compares the four schedulers of the paper on one benchmark:
//   PolyMageDP (this paper), PolyMage-A (greedy + auto-tuning),
//   H-auto (Halide auto-scheduler model), H-manual (expert schedule).
//
//   ./scheduler_compare [--bench=harris] [--scale=8] [--threads=4]
//                       [--machine=xeon|opteron|host]
#include <cstdio>

#include "api/session.hpp"
#include "fusion/dp.hpp"
#include "fusion/halide_auto.hpp"
#include "fusion/incremental.hpp"
#include "fusion/polymage_greedy.hpp"
#include "pipelines/pipelines.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

using namespace fusedp;

namespace {

MachineModel machine_by_name(const std::string& name) {
  if (name == "xeon") return MachineModel::xeon_haswell();
  if (name == "opteron") return MachineModel::amd_opteron();
  return MachineModel::host();
}

// Each candidate grouping is timed through its own Session (warm plan +
// workspace, repeated execute()).
double time_grouping(const Pipeline& pl, const Grouping& g,
                     const std::vector<Buffer>& inputs, int threads,
                     int runs) {
  Options opts;
  opts.num_threads = threads;
  Result<Session> opened = Session::open(pl, g, opts);
  FUSEDP_CHECK(opened.ok(), "Session::open failed in time_grouping");
  Session session = std::move(opened).value();
  session.execute(inputs);  // warmup + allocation
  const RunStats st = measure_min_of_averages(
      [&] { session.execute(inputs); }, /*samples=*/1, runs);
  return st.min_avg_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string bench = cli.get("bench", "harris");
  const std::int64_t scale = cli.get_int("scale", 8);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const MachineModel machine = machine_by_name(cli.get("machine", "host"));

  const PipelineSpec spec = make_benchmark(bench, scale);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, machine);
  const std::vector<Buffer> inputs = spec.make_inputs();

  std::printf("benchmark %s (%d stages), machine model %s, %d threads\n\n",
              pl.name().c_str(), pl.num_stages(), machine.name.c_str(),
              threads);

  struct Row {
    const char* name;
    Grouping g;
  };
  std::vector<Row> rows;

  // PolyMageDP: bounded incremental DP (Algorithm 3).
  IncFusion inc(pl, model);
  rows.push_back({"PolyMageDP", inc.run()});
  std::printf("PolyMageDP: %llu states, %d iterations, %.1f ms grouping\n",
              static_cast<unsigned long long>(inc.stats().groupings_enumerated),
              inc.stats().iterations, inc.stats().seconds * 1e3);

  // PolyMage-A: greedy + auto-tuned (reduced grid for the example).
  PolyMageOptions popt;
  popt.tile_candidates = {32, 64, 128};
  PolyMageGreedy greedy(pl, model, popt);
  PolyMageTuneResult tuned;
  rows.push_back({"PolyMage-A", greedy.tune(
                                    [&](const Grouping& g) {
                                      return time_grouping(pl, g, inputs,
                                                           threads, 1);
                                    },
                                    &tuned)});
  std::printf("PolyMage-A: %d configs tried, best %lldx%lld tol %.1f\n",
              tuned.configs_tried, static_cast<long long>(tuned.best_t1),
              static_cast<long long>(tuned.best_t2), tuned.best_tolerance);

  // H-auto.
  HalideAutoOptions hopt;
  hopt.cache_bytes = machine.l2_bytes;
  hopt.parallelism_threshold = machine.cores;
  hopt.vector_width = 2 * machine.vector_width_floats;
  HalideAuto hauto(pl, model, hopt);
  rows.push_back({"H-auto", hauto.run()});

  // H-manual.
  rows.push_back({"H-manual", spec.manual_grouping(model)});

  // Correctness: all schedules must match the scalar reference bit-for-bit.
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  for (const Row& row : rows) {
    Options opts;
    opts.num_threads = 1;
    Result<Session> opened = Session::open(pl, row.g, opts);
    FUSEDP_CHECK(opened.ok(),
                 std::string(row.name) + ": Session::open failed");
    Session session = std::move(opened).value();
    Result<std::vector<Buffer>> got = session.run(inputs);
    FUSEDP_CHECK(got.ok(), std::string(row.name) + ": execute failed");
    const std::vector<Buffer>& outs = got.value();
    for (std::size_t o = 0; o < outs.size(); ++o) {
      const Buffer& expect =
          ref[static_cast<std::size_t>(pl.outputs()[o])];
      for (std::int64_t i = 0; i < outs[o].volume(); ++i)
        FUSEDP_CHECK(outs[o].data()[i] == expect.data()[i],
                     std::string(row.name) + " output mismatch");
    }
  }
  std::printf("\nall schedules verified against the scalar reference\n\n");

  std::printf("%-12s %8s %10s   grouping\n", "scheduler", "groups",
              "time(ms)");
  for (const Row& row : rows) {
    const double ms = time_grouping(pl, row.g, inputs, threads, runs);
    std::printf("%-12s %8zu %10.2f   ", row.name, row.g.groups.size(), ms);
    for (const GroupSchedule& gs : row.g.groups)
      if (gs.stages.size() > 1) std::printf("%s", gs.stages.to_string().c_str());
    std::printf("\n");
  }
  return 0;
}
