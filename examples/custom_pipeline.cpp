// End-to-end walkthrough of the library on a hand-built pipeline: an
// edge-enhancement filter with mirror borders, pointwise inlining, DP
// scheduling, schedule save/load, pooled storage, and PPM output.
//
//   ./custom_pipeline [--height=512] [--width=768] [--threads=4]
#include <cstdio>

#include "fusedp.hpp"
#include "fusion/inlining.hpp"
#include "fusion/serialize.hpp"
#include "support/cli.hpp"

using namespace fusedp;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t h = cli.get_int("height", 512);
  const std::int64_t w = cli.get_int("width", 768);
  const int threads = static_cast<int>(cli.get_int("threads", 4));

  // --- 1. Describe the pipeline ------------------------------------------
  Pipeline pl("edges");
  const int img = pl.add_input("img", {3, h, w});

  StageBuilder gray(pl, pl.add_stage("gray", {h, w}));
  {
    auto chan = [&](std::int64_t c) {
      return gray.load({true, img}, {AxisMap::constant(c), AxisMap::affine(0),
                                     AxisMap::affine(1)});
    };
    gray.define(0.299f * chan(0) + 0.587f * chan(1) + 0.114f * chan(2));
  }

  StageBuilder gx(pl, pl.add_stage("gradx", {h, w}));
  gx.set_border(Border::kMirror);  // no edge darkening
  gx.define(gx.at(gray.stage(), {0, 1}) - gx.at(gray.stage(), {0, -1}));

  StageBuilder gy(pl, pl.add_stage("grady", {h, w}));
  gy.set_border(Border::kMirror);
  gy.define(gy.at(gray.stage(), {1, 0}) - gy.at(gray.stage(), {-1, 0}));

  StageBuilder mag(pl, pl.add_stage("magnitude", {h, w}));
  mag.define(sqrt(mag.at(gx.stage(), {0, 0}) * mag.at(gx.stage(), {0, 0}) +
                  mag.at(gy.stage(), {0, 0}) * mag.at(gy.stage(), {0, 0})));

  StageBuilder out(pl, pl.add_stage("enhanced", {3, h, w}));
  out.define(clamp(out.in(img, {0, 0, 0}) +
                       1.5f * out.at(mag.stage(), {0, 0}),
                   0.0f, 1.0f));
  pl.finalize();

  // --- 2. Inline trivial stages, then schedule with the DP model ----------
  const InlineResult inlined = inline_pointwise(pl);
  const Pipeline& opt = *inlined.pipeline;
  std::printf("inlined %d of %d stages\n", inlined.stages_inlined,
              pl.num_stages());

  const CostModel model(opt, MachineModel::host());
  IncFusion fusion(opt, model);
  const Grouping schedule = fusion.run();
  std::printf("%s\n", schedule.to_string(opt).c_str());

  // --- 3. Schedules are plain text: save, reload, and use the copy --------
  const std::string sched_file = "edges.sched";
  save_grouping(opt, schedule, sched_file);
  const Grouping loaded = load_grouping(opt, sched_file);
  std::printf("schedule round-tripped through %s\n", sched_file.c_str());

  // --- 4. Execute the loaded schedule through a Session and verify --------
  // Session::open(pl, grouping, opts) takes a caller-provided schedule
  // as-is (validated, tile sizes untouched) and compiles it once; repeated
  // execute() calls reuse the warm plan and workspace.
  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image({3, h, w}, 41));
  Options opts;
  opts.num_threads = threads;
  opts.pooled_storage = true;
  Result<Session> opened = Session::open(opt, loaded, opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "Session::open failed: %s\n", opened.error().what());
    return 1;
  }
  Session session = std::move(opened).value();
  session.execute(inputs);  // warm-up
  Result<double> seconds = session.execute(inputs);
  if (!seconds.ok()) {
    std::fprintf(stderr, "execute failed: %s\n", seconds.error().what());
    return 1;
  }
  std::printf("run: %.2f ms on %d threads\n", seconds.value() * 1e3, threads);

  const std::vector<Buffer> ref = run_reference(opt, inputs);
  const Buffer& got = session.output(0);
  const Buffer& want = ref[static_cast<std::size_t>(opt.outputs()[0])];
  for (std::int64_t i = 0; i < got.volume(); ++i)
    FUSEDP_CHECK(got.data()[i] == want.data()[i], "verification failed");
  std::printf("verified against the scalar reference\n");

  write_ppm("edges.ppm", got);
  std::printf("wrote edges.ppm\n");
  return 0;
}
