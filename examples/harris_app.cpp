// Harris corner detection on a synthetic scene, scheduled and executed
// through the fusedp::Session facade (the auto-schedule ladder runs the DP
// fusion model first), with a corner-overlay image written as PPM.
//
//   ./harris_app [--height=708] [--width=1064] [--threads=4]
//                [--out=harris.ppm] [--machine=xeon|opteron|host]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/session.hpp"
#include "pipelines/pipelines.hpp"
#include "support/cli.hpp"

using namespace fusedp;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t h = cli.get_int("height", 708);
  const std::int64_t w = cli.get_int("width", 1064);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const std::string out_path = cli.get("out", "harris.ppm");
  const std::string mname = cli.get("machine", "host");
  const MachineModel machine = mname == "xeon"      ? MachineModel::xeon_haswell()
                               : mname == "opteron" ? MachineModel::amd_opteron()
                                                    : MachineModel::host();

  const PipelineSpec spec = make_harris(h, w);
  const Pipeline& pl = *spec.pipeline;

  // One Session call replaces the model + scheduler + executor wiring: the
  // auto-schedule ladder (full DP first) picks the grouping, and the
  // compiled plan stays warm across execute() calls.
  Options opts;
  opts.num_threads = threads;
  opts.machine = machine;
  Result<Session> opened = Session::open(pl, opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "Session::open failed: %s\n", opened.error().what());
    return 1;
  }
  Session session = std::move(opened).value();
  std::printf("schedule (%zu groups):\n%s\n",
              session.grouping().groups.size(),
              session.grouping().to_string(pl).c_str());

  const std::vector<Buffer> inputs = spec.make_inputs();
  session.execute(inputs);  // warm-up
  Result<double> seconds = session.execute(inputs);
  if (!seconds.ok()) {
    std::fprintf(stderr, "execute failed: %s\n", seconds.error().what());
    return 1;
  }
  std::printf("harris on %lldx%lld: %.2f ms (%d threads)\n",
              static_cast<long long>(h), static_cast<long long>(w),
              seconds.value() * 1e3, threads);

  // Overlay strong responses on the input image.
  const Buffer& resp = session.output(0);
  float max_resp = 0.0f;
  for (std::int64_t i = 0; i < resp.volume(); ++i)
    max_resp = std::max(max_resp, resp.data()[i]);
  const float threshold = 0.1f * max_resp;
  Buffer overlay({3, h, w});
  int corners = 0;
  for (std::int64_t x = 0; x < h; ++x) {
    for (std::int64_t y = 0; y < w; ++y) {
      for (int c = 0; c < 3; ++c)
        overlay.at({c, x, y}) = inputs[0].at({c, x, y});
      if (resp.at({x, y}) > threshold) {
        overlay.at({0, x, y}) = 1.0f;  // red dot
        overlay.at({1, x, y}) = 0.0f;
        overlay.at({2, x, y}) = 0.0f;
        ++corners;
      }
    }
  }
  write_ppm(out_path, overlay);
  std::printf("marked %d corner pixels (threshold %.4g); wrote %s\n", corners,
              threshold, out_path.c_str());
  return 0;
}
