// Process-wide resource admission control.
//
// The ResourceGovernor meters the bytes held by every Workspace and
// ScratchArena in the process (via the support-layer memhooks) against a
// configurable budget.  With no budget set (the default) it is pure
// bookkeeping: an atomic add per arena growth, plus used/high-water stats.
// With a budget armed, a charge that would overshoot first waits up to
// `max_queue_wait_seconds` for concurrent requests to release memory —
// bounded backoff, so a saturated process degrades into short queueing
// rather than thrashing — and then throws a coded
// Error(kResourceExhausted) naming used/budget/requested bytes.  Callers
// (Workspace::prepare, ScratchArena::ensure) charge *before* allocating, so
// a rejection leaves their state intact and the Session's degradation
// ladder can retry with a leaner configuration.
//
// The governor is a leaky singleton: first use installs the memhooks and it
// lives for the rest of the process (arenas may uncharge during static
// destruction).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

namespace fusedp {

class ResourceGovernor {
 public:
  // The process-wide instance; first call installs the memhooks.
  static ResourceGovernor& instance();

  // Sets the byte budget (0 = unlimited) and how long an over-budget charge
  // may wait for memory to be released before it is rejected.  Does not
  // evict existing charges: a budget below current usage simply rejects new
  // growth until enough is released.
  void set_budget(std::int64_t bytes, double max_queue_wait_seconds = 0.05);
  std::int64_t budget() const;

  // Admits `bytes` (charging them) or throws Error(kResourceExhausted).
  // No-op for bytes <= 0.
  void charge(std::int64_t bytes);
  // Returns `bytes` to the pool and wakes queued charges.  Never throws.
  void uncharge(std::int64_t bytes) noexcept;

  std::int64_t used() const;
  std::int64_t high_water() const;
  std::uint64_t rejections() const;
  std::uint64_t waits() const;  // charges that queued before admission

  // Test hook: clears budget and stats.  Usage is NOT cleared — live arenas
  // still hold their charges and will uncharge them on release.
  void reset_for_test();

 private:
  ResourceGovernor();

  mutable std::mutex mu_;
  std::condition_variable released_;
  std::int64_t budget_ = 0;  // 0 = unlimited
  std::chrono::nanoseconds max_wait_{std::chrono::milliseconds(50)};
  std::int64_t used_ = 0;
  std::int64_t high_water_ = 0;
  std::uint64_t rejections_ = 0;
  std::uint64_t waits_ = 0;
};

// RAII charge used by Workspace: holds a single adjustable charge at the
// governor and releases it on destruction.  adjust_to() charges the delta
// up-front (admission before allocation) when growing and releases the
// delta when shrinking; on a rejected grow the previous charge is kept.
class GovernedCharge {
 public:
  GovernedCharge() = default;
  GovernedCharge(GovernedCharge&& other) noexcept : bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  GovernedCharge& operator=(GovernedCharge&& other) noexcept {
    if (this != &other) {
      release();
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }
  GovernedCharge(const GovernedCharge&) = delete;
  GovernedCharge& operator=(const GovernedCharge&) = delete;
  ~GovernedCharge() { release(); }

  // Re-targets the held charge to `target_bytes`; throws kResourceExhausted
  // (holding the old charge unchanged) if the growth is not admitted.
  void adjust_to(std::int64_t target_bytes);
  void release() noexcept;
  std::int64_t bytes() const { return bytes_; }

 private:
  std::int64_t bytes_ = 0;
};

}  // namespace fusedp
