// Lowering: Grouping -> ExecutablePlan.
//
// The plan fixes everything the executor needs per group: stage order, the
// reference-space tile grid (tile sizes rounded to the alignment
// granularity), which stages write global buffers (live-outs), and how each
// load resolves (in-group scratch vs. materialized global buffer vs. input
// image).  The lowered loop structure matches PolyMage's generated code
// (paper Figure 3): parallel fused tile-space loops; per-tile, the member
// stages run one after another into per-thread scratch buffers.
#pragma once

#include "analysis/regions.hpp"
#include "fusion/grouping.hpp"
#include "runtime/compile.hpp"

namespace fusedp {

// Why a group's vector-backend benefit is (or was) in doubt.  Shared by the
// never-pessimize gate (runtime/benefit.hpp) and bench_vector's regression
// attribution, so the cost feedback loop speaks one vocabulary.
enum class BenefitCause : std::uint8_t {
  kNone = 0,          // no static reason to doubt the vector compilation
  kLibmFallback,      // transcendentals run as scalar libm calls inside the
                      // vector backend (fast_transcendentals off)
  kGatherBound,       // dominated by dynamic / upsampled gathers
  kFusionPessimized,  // measured slower with no static excuse
};

const char* benefit_cause_name(BenefitCause c);

// Outcome of the plan-time never-pessimize micro-measurement for one group
// (see ExecOptions::never_pessimize and runtime/benefit.hpp).  Persisted on
// the plan so the printer, benches and tests can read the decision back.
struct GroupVerdict {
  bool measured = false;   // the gate micro-measured this group
  bool demoted = false;    // vector form lost; group recompiled plain
  double vector_ms = 0.0;  // micro-measure wall time, vector compilation
  double scalar_ms = 0.0;  // micro-measure wall time, plain compilation
  BenefitCause cause = BenefitCause::kNone;
};

struct GroupPlan {
  NodeSet stages;
  AlignResult align;
  std::vector<int> stage_order;           // topological within the group
  std::vector<std::int64_t> tile_sizes;   // per reference dim, final
  std::vector<std::int64_t> tiles_per_dim;
  std::int64_t total_tiles = 1;
  bool is_reduction = false;  // single reduction stage, runs untiled
  // The cost model's score for this group (GroupSchedule::cost), carried
  // into the plan so the observability layer can join predicted cost
  // against measured wall time; 0.0 when the schedule never scored it.
  double model_cost = 0.0;
  // Plan-time regions of the nominal full tile; when translatable, the
  // executor shifts these per tile instead of re-deriving them.
  RegionTemplate region_template;
  // Never-pessimize gate verdict (default: not measured, not demoted).
  GroupVerdict verdict;
};

struct ExecutablePlan {
  const Pipeline* pipeline = nullptr;
  std::vector<GroupPlan> groups;  // in executable (topological) order
  // liveout[stage] — stage output is materialized in a full-size buffer
  // (live-out of its group or consumed by a later group).
  std::vector<bool> materialized;
  // Indexed by stage id; invalid() for reductions.  Lowered once here so
  // every tile executes the optimized linear program.
  std::vector<CompiledStage> compiled;
};

// Validates the grouping (throws on invalid) and lowers it.  `copts`
// selects the compiled-stage backend (superop fusion + register allocation
// by default; see CompileOptions).
ExecutablePlan lower(const Pipeline& pl, const Grouping& grouping,
                     const CompileOptions& copts = {});

}  // namespace fusedp
