#include "runtime/compile.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <map>
#include <tuple>

#include "ir/box.hpp"

namespace fusedp {

namespace {

std::int64_t clamp_i64(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

// Incremental floor_div(y * num + pre, den) + offset for y = y0, y0+1, ...
// Each step is one add plus a carry test instead of an integer division;
// the running value is exactly the closed form at every step (den > 0, any
// sign of num), so scaled gathers stay bit-identical to the direct formula.
class AffineStepper {
 public:
  AffineStepper(std::int64_t y0, std::int64_t num, std::int64_t den,
                std::int64_t pre, std::int64_t offset)
      : den_(den), dq_(floor_div(num, den)), dr_(num - dq_ * den) {
    const std::int64_t nmr = y0 * num + pre;
    const std::int64_t q = floor_div(nmr, den);
    r_ = nmr - q * den;  // in [0, den)
    q_ = q + offset;
  }
  std::int64_t value() const { return q_; }
  void step() {
    q_ += dq_;
    r_ += dr_;  // dr_ in [0, den): at most one carry
    if (r_ >= den_) {
      r_ -= den_;
      ++q_;
    }
  }

 private:
  std::int64_t den_, dq_, dr_, q_ = 0, r_ = 0;
};

// Value-numbering key: op + operand slots + the op-specific payload.  Two
// ops with equal keys compute identical rows, so the second one is
// eliminated.  Constants key on their bit pattern (so +0.0f and -0.0f stay
// distinct and bit-identity is preserved).
using VnKey = std::tuple<int, std::int32_t, std::int32_t, std::int32_t,
                         std::int32_t, std::int32_t, std::uint32_t>;

class StageCompiler {
 public:
  explicit StageCompiler(const Stage& s) : s_(s) {
    cs_.stage_id = s.id;
    cs_.source_nodes = static_cast<std::int32_t>(s.nodes.size());
    cs_.loads.resize(s.loads.size());
    slot_.assign(s.nodes.size(), -1);
  }

  CompiledStage run() {
    if (s_.kind != StageKind::kMap || s_.body == kNoExpr) return std::move(cs_);
    lower(s_.body);
    cs_.root = slot_[static_cast<std::size_t>(s_.body)];
    compact();
    return std::move(cs_);
  }

 private:
  // Children of `n` in evaluation order (dynamic axis exprs for loads).
  int children(const ExprNode& n, ExprRef* out) const {
    switch (n.op) {
      case Op::kConst:
      case Op::kCoord:
        return 0;
      case Op::kLoad: {
        int cnt = 0;
        const Access& a = s_.loads[static_cast<std::size_t>(n.load_id)];
        for (const AxisMap& m : a.axes)
          if (m.kind == AxisMap::Kind::kDynamic && m.dyn != kNoExpr)
            out[cnt++] = m.dyn;
        return cnt;
      }
      case Op::kSelect:
        out[0] = n.a;
        out[1] = n.b;
        out[2] = n.c;
        return 3;
      default:
        out[0] = n.a;
        if (op_is_unary(n.op)) return 1;
        out[1] = n.b;
        return 2;
    }
  }

  // Iterative post-order DFS: children lowered before their parent.
  void lower(ExprRef root) {
    struct Frame {
      ExprRef r;
      int next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({root});
    ExprRef kids[kMaxDims];
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (slot_[static_cast<std::size_t>(f.r)] >= 0) {
        stack.pop_back();
        continue;
      }
      const ExprNode& n = s_.nodes[static_cast<std::size_t>(f.r)];
      const int nkids = children(n, kids);
      if (f.next < nkids) {
        const ExprRef child = kids[f.next++];
        if (slot_[static_cast<std::size_t>(child)] < 0)
          stack.push_back({child});
        continue;
      }
      slot_[static_cast<std::size_t>(f.r)] = emit(n);
      stack.pop_back();
    }
  }

  std::int32_t intern(const VnKey& key, const CompiledOp& op) {
    auto [it, inserted] = vn_.try_emplace(key, -1);
    if (!inserted) {
      ++cs_.cse_hits;
      return it->second;
    }
    cs_.ops.push_back(op);
    it->second = static_cast<std::int32_t>(cs_.ops.size()) - 1;
    return it->second;
  }

  std::int32_t emit_const(float v) {
    CompiledOp op;
    op.op = Op::kConst;
    op.imm = v;
    return intern({static_cast<int>(Op::kConst), -1, -1, -1, -1, -1,
                   std::bit_cast<std::uint32_t>(v)},
                  op);
  }

  bool is_const(std::int32_t slot) const {
    return cs_.ops[static_cast<std::size_t>(slot)].op == Op::kConst;
  }
  float const_of(std::int32_t slot) const {
    return cs_.ops[static_cast<std::size_t>(slot)].imm;
  }

  std::int32_t emit(const ExprNode& n) {
    switch (n.op) {
      case Op::kConst:
        return emit_const(n.imm);
      case Op::kCoord: {
        CompiledOp op;
        op.op = Op::kCoord;
        op.dim = n.dim;
        return intern(
            {static_cast<int>(Op::kCoord), -1, -1, -1, n.dim, -1, 0}, op);
      }
      case Op::kLoad: {
        CompiledOp op;
        op.op = Op::kLoad;
        op.load_id = n.load_id;
        const std::int32_t slot = intern(
            {static_cast<int>(Op::kLoad), -1, -1, -1, -1, n.load_id, 0}, op);
        fill_load(n.load_id);
        return slot;
      }
      case Op::kSelect: {
        const std::int32_t a = slot_[static_cast<std::size_t>(n.a)];
        const std::int32_t b = slot_[static_cast<std::size_t>(n.b)];
        const std::int32_t c = slot_[static_cast<std::size_t>(n.c)];
        // A constant condition picks one arm; both arms are pure, so
        // skipping the dead one is unobservable.
        if (is_const(a)) {
          ++cs_.folded;
          return const_of(a) != 0.0f ? b : c;
        }
        CompiledOp op;
        op.op = Op::kSelect;
        op.a = a;
        op.b = b;
        op.c = c;
        return intern({static_cast<int>(Op::kSelect), a, b, c, -1, -1, 0}, op);
      }
      default: {
        const std::int32_t a = slot_[static_cast<std::size_t>(n.a)];
        if (op_is_unary(n.op)) {
          if (is_const(a)) {
            ++cs_.folded;
            return emit_const(apply_unary(n.op, const_of(a)));
          }
          CompiledOp op;
          op.op = n.op;
          op.a = a;
          return intern({static_cast<int>(n.op), a, -1, -1, -1, -1, 0}, op);
        }
        const std::int32_t b = slot_[static_cast<std::size_t>(n.b)];
        if (is_const(a) && is_const(b)) {
          ++cs_.folded;
          return emit_const(apply_binary(n.op, const_of(a), const_of(b)));
        }
        CompiledOp op;
        op.op = n.op;
        if (is_const(b)) {  // dst = a op imm
          op.a = a;
          op.imm = const_of(b);
          op.imm_side = 1;
          return intern({static_cast<int>(n.op), a, -1, -1, 1, -1,
                         std::bit_cast<std::uint32_t>(op.imm)},
                        op);
        }
        if (is_const(a)) {  // dst = imm op b
          op.a = b;
          op.imm = const_of(a);
          op.imm_side = 2;
          return intern({static_cast<int>(n.op), b, -1, -1, 2, -1,
                         std::bit_cast<std::uint32_t>(op.imm)},
                        op);
        }
        op.a = a;
        op.b = b;
        return intern({static_cast<int>(n.op), a, b, -1, -1, -1, 0}, op);
      }
    }
  }

  // Drops ops unreachable from the root (folding interns operand slots
  // before the parent collapses, leaving dead constants behind) and
  // renumbers the survivors.  Ops only reference smaller slots, so one
  // decreasing marking pass suffices.
  void compact() {
    const std::size_t n = cs_.ops.size();
    std::vector<char> live(n, 0);
    live[static_cast<std::size_t>(cs_.root)] = 1;
    for (std::int32_t i = static_cast<std::int32_t>(n) - 1; i >= 0; --i) {
      if (!live[static_cast<std::size_t>(i)]) continue;
      const CompiledOp& op = cs_.ops[static_cast<std::size_t>(i)];
      if (op.a >= 0) live[static_cast<std::size_t>(op.a)] = 1;
      if (op.b >= 0) live[static_cast<std::size_t>(op.b)] = 1;
      if (op.c >= 0) live[static_cast<std::size_t>(op.c)] = 1;
      if (op.op == Op::kLoad) {
        const CompiledLoad& cl = cs_.loads[static_cast<std::size_t>(op.load_id)];
        for (std::int32_t k = 0; k < cl.prank; ++k)
          if (cl.axes[static_cast<std::size_t>(k)].dyn_slot >= 0)
            live[static_cast<std::size_t>(
                cl.axes[static_cast<std::size_t>(k)].dyn_slot)] = 1;
      }
    }
    std::vector<std::int32_t> remap(n, -1);
    std::vector<CompiledOp> kept;
    kept.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!live[i]) continue;
      remap[i] = static_cast<std::int32_t>(kept.size());
      kept.push_back(cs_.ops[i]);
    }
    if (kept.size() == n) return;
    for (CompiledOp& op : kept) {
      if (op.a >= 0) op.a = remap[static_cast<std::size_t>(op.a)];
      if (op.b >= 0) op.b = remap[static_cast<std::size_t>(op.b)];
      if (op.c >= 0) op.c = remap[static_cast<std::size_t>(op.c)];
    }
    for (CompiledLoad& cl : cs_.loads)
      for (std::int32_t k = 0; k < cl.prank; ++k) {
        std::int32_t& ds = cl.axes[static_cast<std::size_t>(k)].dyn_slot;
        if (ds >= 0) ds = remap[static_cast<std::size_t>(ds)];
      }
    cs_.ops = std::move(kept);
    cs_.root = remap[static_cast<std::size_t>(cs_.root)];
  }

  void fill_load(std::int32_t load_id) {
    CompiledLoad& cl = cs_.loads[static_cast<std::size_t>(load_id)];
    if (cl.prank > 0) return;  // a CSE'd duplicate already filled it
    const Access& a = s_.loads[static_cast<std::size_t>(load_id)];
    const int last = s_.rank() - 1;
    cl.prank = static_cast<std::int32_t>(a.axes.size());
    cl.border = a.border;
    for (int k = 0; k < cl.prank; ++k) {
      const AxisMap& m = a.axes[static_cast<std::size_t>(k)];
      CompiledAxis& ca = cl.axes[static_cast<std::size_t>(k)];
      ca.kind = m.kind;
      ca.src_dim = m.src_dim;
      ca.num = m.num;
      ca.den = m.den;
      ca.pre = m.pre;
      ca.offset = m.offset;
      if (m.kind == AxisMap::Kind::kDynamic) {
        ca.dyn_slot = slot_[static_cast<std::size_t>(m.dyn)];
        cl.any_dynamic = true;
      } else if (m.kind == AxisMap::Kind::kAffine && m.num != 0 &&
                 m.src_dim == last) {
        ca.varies_row = true;
        cl.vary_axis = k;  // last one wins, matching RowEvaluator
      }
    }
    if (cl.vary_axis >= 0) {
      const CompiledAxis& vm = cl.axes[static_cast<std::size_t>(cl.vary_axis)];
      cl.vary_identity = vm.num == 1 && vm.den == 1 && vm.pre == 0;
    }
  }

  const Stage& s_;
  CompiledStage cs_;
  std::vector<std::int32_t> slot_;
  std::map<VnKey, std::int32_t> vn_;
};

}  // namespace

CompiledStage compile_stage(const Stage& s) { return StageCompiler(s).run(); }

namespace {

// Stage-coordinate step of (stage, dim) for one grid step `step[cls]`;
// false when the step does not land on an integer coordinate (the group is
// then not translatable).
bool delta_of(const AlignResult& align, const std::int64_t* step, int ncls,
              int stage_id, int d, std::int64_t* out) {
  const DimAlign& da =
      align.stages[static_cast<std::size_t>(stage_id)].dim[static_cast<std::size_t>(d)];
  if (da.cls < 0 || da.cls >= ncls || step[da.cls] == 0) {
    *out = 0;
    return true;
  }
  const std::int64_t scaled = step[da.cls] * da.sd;
  if (scaled % da.sn != 0) return false;
  *out = scaled / da.sn;
  return true;
}

}  // namespace

RegionTemplate build_region_template(
    const Pipeline& pl, NodeSet stages, const AlignResult& align,
    const std::vector<int>& order, const std::vector<std::int64_t>& tile_sizes,
    const std::vector<std::int64_t>& tiles_per_dim) {
  RegionTemplate t;
  t.stages.assign(static_cast<std::size_t>(pl.num_stages()), StageRegions{});
  const int ncls = align.num_classes;
  if (order.empty() || ncls <= 0 || ncls > kMaxDims) return t;

  // Template regions of the nominal full tile at the grid origin,
  // unclamped: boundary effects are the executor's per-tile concern.
  Box t0;
  t0.rank = ncls;
  for (int d = 0; d < ncls; ++d) {
    t0.lo[d] = 0;
    t0.hi[d] = tile_sizes[static_cast<std::size_t>(d)] - 1;
  }
  compute_region_boxes(pl, stages, align, t0, /*clamp_to_domain=*/false, order,
                       t.stages.data());

  // Classes the grid never steps along (a single tile) translate by zero.
  std::int64_t step[kMaxDims] = {0, 0, 0, 0};
  for (int d = 0; d < ncls; ++d)
    if (tiles_per_dim[static_cast<std::size_t>(d)] > 1)
      step[d] = tile_sizes[static_cast<std::size_t>(d)];

  // Every member dimension must advance by an integral stage-coordinate
  // step per grid step...
  for (int s : order) {
    const Stage& st = pl.stage(s);
    for (int d = 0; d < st.rank(); ++d) {
      std::int64_t delta;
      if (!delta_of(align, step, ncls, s, d, &delta)) return t;
    }
  }

  // ...and every in-group access map must commute with that translation:
  // consumer step maps exactly onto the producer step (affine axes), and
  // axes whose footprint does not follow the tile (broadcast planes,
  // constant indices, data-dependent gathers spanning the full extent) may
  // only read producer dimensions that do not move.
  for (int c : order) {
    const Stage& cs = pl.stage(c);
    for (const Access& a : cs.loads) {
      if (a.producer.is_input || !stages.contains(a.producer.id)) continue;
      for (int k = 0; k < static_cast<int>(a.axes.size()); ++k) {
        const AxisMap& m = a.axes[static_cast<std::size_t>(k)];
        std::int64_t dp;
        if (!delta_of(align, step, ncls, a.producer.id, k, &dp)) return t;
        if (m.kind == AxisMap::Kind::kAffine && m.num != 0) {
          std::int64_t dc;
          if (!delta_of(align, step, ncls, c, m.src_dim, &dc)) return t;
          if ((dc * m.num) % m.den != 0 || dc * m.num / m.den != dp) return t;
        } else if (dp != 0) {
          return t;
        }
      }
    }
  }

  t.translatable = true;
  return t;
}

void CompiledRowEvaluator::eval_load(const CompiledLoad& cl,
                                     const LoadSrc& src, bool clamped,
                                     float* out) {
  const int prank = cl.prank;

  if (!clamped) {
    // Interior kernel: every coordinate is provably inside src.domain and
    // the backing view, so border folding is skipped entirely.
    std::int64_t c[kMaxDims] = {0, 0, 0, 0};
    for (int k = 0; k < prank; ++k) {
      const CompiledAxis& m = cl.axes[static_cast<std::size_t>(k)];
      if (m.varies_row) continue;
      c[k] = (m.kind == AxisMap::Kind::kConstant || m.num == 0)
                 ? m.offset
                 : floor_div(base_[m.src_dim] * m.num + m.pre, m.den) +
                       m.offset;
    }
    if (cl.vary_axis < 0) {
      const float v = src.view.at(c);
      for (std::size_t i = 0; i < n_; ++i) out[i] = v;
      return;
    }
    const CompiledAxis& vm = cl.axes[static_cast<std::size_t>(cl.vary_axis)];
    const std::int64_t stride = src.view.stride[cl.vary_axis];
    if (cl.vary_identity) {
      c[cl.vary_axis] = y0_ + vm.offset;
      const float* p = src.view.data + src.view.offset_of(c);
      if (stride == 1) {
        std::memcpy(out, p, n_ * sizeof(float));
      } else {
        for (std::size_t i = 0; i < n_; ++i)
          out[i] = p[static_cast<std::int64_t>(i) * stride];
      }
      return;
    }
    // Scaled gather: the varying coordinate is factored out of the flat
    // offset and advanced without per-element division.
    c[cl.vary_axis] = 0;
    const float* p0 = src.view.data + src.view.offset_of(c);
    AffineStepper coord(y0_, vm.num, vm.den, vm.pre, vm.offset);
    for (std::size_t i = 0; i < n_; ++i, coord.step())
      out[i] = p0[coord.value() * stride];
    return;
  }

  if (cl.border != Border::kClamp) {
    // Non-clamp borders take a fully general gather (they are rare and only
    // differ near domain edges).
    const float* dyn[kMaxDims] = {nullptr, nullptr, nullptr, nullptr};
    for (int k = 0; k < prank; ++k)
      if (cl.axes[static_cast<std::size_t>(k)].kind == AxisMap::Kind::kDynamic)
        dyn[k] = slot_row(cl.axes[static_cast<std::size_t>(k)].dyn_slot);
    std::int64_t c[kMaxDims];
    for (std::size_t i = 0; i < n_; ++i) {
      const std::int64_t y = y0_ + static_cast<std::int64_t>(i);
      bool zero = false;
      for (int k = 0; k < prank && !zero; ++k) {
        const CompiledAxis& m = cl.axes[static_cast<std::size_t>(k)];
        std::int64_t v;
        if (m.kind == AxisMap::Kind::kConstant || m.num == 0)
          v = m.offset;
        else if (m.kind == AxisMap::Kind::kDynamic)
          v = static_cast<std::int64_t>(std::floor(dyn[k][i]));
        else
          v = floor_div((m.varies_row ? y : base_[m.src_dim]) * m.num + m.pre,
                        m.den) +
              m.offset;
        if (cl.border == Border::kZero &&
            (v < src.domain.lo[k] || v > src.domain.hi[k])) {
          zero = true;
          break;
        }
        c[k] = fold_coord(v, src.domain.lo[k], src.domain.hi[k], cl.border);
      }
      out[i] = zero ? 0.0f : src.view.at(c);
    }
    return;
  }

  // Clamp-to-edge: fixed coordinates once per row, then the varying /
  // dynamic axes per element (mirrors RowEvaluator::eval_load).
  std::int64_t fixed[kMaxDims] = {0, 0, 0, 0};
  const float* dyn_rows[kMaxDims] = {nullptr, nullptr, nullptr, nullptr};
  for (int k = 0; k < prank; ++k) {
    const CompiledAxis& m = cl.axes[static_cast<std::size_t>(k)];
    switch (m.kind) {
      case AxisMap::Kind::kConstant:
        fixed[k] = clamp_i64(m.offset, src.domain.lo[k], src.domain.hi[k]);
        break;
      case AxisMap::Kind::kDynamic:
        dyn_rows[k] = slot_row(m.dyn_slot);
        break;
      case AxisMap::Kind::kAffine:
        if (!m.varies_row) {
          const std::int64_t v =
              m.num == 0
                  ? m.offset
                  : floor_div(base_[m.src_dim] * m.num + m.pre, m.den) +
                        m.offset;
          fixed[k] = clamp_i64(v, src.domain.lo[k], src.domain.hi[k]);
        }
        break;
    }
  }

  if (!cl.any_dynamic && cl.vary_axis >= 0) {
    const CompiledAxis& vm = cl.axes[static_cast<std::size_t>(cl.vary_axis)];
    if (cl.vary_identity) {
      // Contiguous-in-producer along the row, clamped at the edges.
      std::int64_t c[kMaxDims];
      for (int k = 0; k < prank; ++k) c[k] = fixed[k];
      const std::int64_t plo = src.domain.lo[cl.vary_axis];
      const std::int64_t phi = src.domain.hi[cl.vary_axis];
      const std::int64_t stride = src.view.stride[cl.vary_axis];
      const std::int64_t first = y0_ + vm.offset;
      const std::int64_t pre = std::clamp<std::int64_t>(
          plo - first, 0, static_cast<std::int64_t>(n_));
      const std::int64_t post_start = std::clamp<std::int64_t>(
          phi - first + 1, 0, static_cast<std::int64_t>(n_));
      if (pre > 0) {
        c[cl.vary_axis] = plo;
        const float lo_val = src.view.at(c);
        for (std::int64_t i = 0; i < pre; ++i) out[i] = lo_val;
      }
      if (post_start > pre) {
        c[cl.vary_axis] = first + pre;
        const float* p = src.view.data + src.view.offset_of(c);
        const std::size_t body = static_cast<std::size_t>(post_start - pre);
        if (stride == 1) {
          std::memcpy(out + pre, p, body * sizeof(float));
        } else {
          for (std::size_t i = 0; i < body; ++i)
            out[static_cast<std::size_t>(pre) + i] =
                p[static_cast<std::int64_t>(i) * stride];
        }
      }
      if (post_start < static_cast<std::int64_t>(n_)) {
        c[cl.vary_axis] = phi;
        const float hi_val = src.view.at(c);
        for (std::int64_t i = post_start; i < static_cast<std::int64_t>(n_);
             ++i)
          out[i] = hi_val;
      }
      return;
    }
    // Scaled gather along the row (up/down-sampling): factor the varying
    // coordinate out of the flat offset and advance it division-free.
    std::int64_t c[kMaxDims];
    for (int k = 0; k < prank; ++k) c[k] = fixed[k];
    const std::int64_t plo = src.domain.lo[cl.vary_axis];
    const std::int64_t phi = src.domain.hi[cl.vary_axis];
    const std::int64_t stride = src.view.stride[cl.vary_axis];
    c[cl.vary_axis] = 0;
    const float* p0 = src.view.data + src.view.offset_of(c);
    AffineStepper coord(y0_, vm.num, vm.den, vm.pre, vm.offset);
    for (std::size_t i = 0; i < n_; ++i, coord.step())
      out[i] = p0[clamp_i64(coord.value(), plo, phi) * stride];
    return;
  }

  if (!cl.any_dynamic) {
    // Every axis fixed: broadcast one element.
    const float v = src.view.at(fixed);
    for (std::size_t i = 0; i < n_; ++i) out[i] = v;
    return;
  }

  // General gather with dynamic axes.  The fixed axes are folded into one
  // base pointer; only dynamic and row-varying axes contribute per element.
  struct ActiveAxis {
    const float* dyn;  // null for an affine row-varying axis
    std::int64_t num, den, pre, offset;
    std::int64_t stride, lo, hi;
  };
  ActiveAxis act[kMaxDims];
  int nact = 0;
  std::int64_t c[kMaxDims] = {0, 0, 0, 0};
  for (int k = 0; k < prank; ++k) {
    const CompiledAxis& m = cl.axes[static_cast<std::size_t>(k)];
    if (m.kind == AxisMap::Kind::kDynamic || m.varies_row) {
      ActiveAxis& a = act[nact++];
      a.dyn = m.kind == AxisMap::Kind::kDynamic ? dyn_rows[k] : nullptr;
      a.num = m.num;
      a.den = m.den;
      a.pre = m.pre;
      a.offset = m.offset;
      a.stride = src.view.stride[k];
      a.lo = src.domain.lo[k];
      a.hi = src.domain.hi[k];
      c[k] = 0;
    } else {
      c[k] = fixed[k];
    }
  }
  const float* p0 = src.view.data + src.view.offset_of(c);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::int64_t y = y0_ + static_cast<std::int64_t>(i);
    std::int64_t off = 0;
    for (int t = 0; t < nact; ++t) {
      const ActiveAxis& a = act[t];
      const std::int64_t v =
          a.dyn ? static_cast<std::int64_t>(std::floor(a.dyn[i]))
                : floor_div(y * a.num + a.pre, a.den) + a.offset;
      off += clamp_i64(v, a.lo, a.hi) * a.stride;
    }
    out[i] = p0[off];
  }
}

void CompiledRowEvaluator::eval_row(const CompiledStage& cs,
                                    const StageEvalCtx& ctx,
                                    const unsigned char* load_clamped,
                                    const std::int64_t* base, std::int64_t y0,
                                    std::int64_t y1, float* out) {
  n_ = static_cast<std::size_t>(y1 - y0 + 1);
  base_ = base;
  y0_ = y0;
  stride_ = n_;
  rows_ = arena_.ensure(cs.ops.size() * n_);

  // Constant rows and the innermost coordinate ramp only depend on (stage,
  // n, y0): within one tile they are identical for every row, so fill them
  // once on the tile's first row and skip them afterwards.
  const bool reuse = &cs == last_cs_ && rows_ == last_rows_ &&
                     n_ == last_n_ && y0 == last_y0_;
  last_cs_ = &cs;
  last_rows_ = rows_;
  last_n_ = n_;
  last_y0_ = y0;

  const int nops = cs.num_slots();
  const std::int32_t root = cs.root;
  const int last = ctx.stage->rank() - 1;
  for (std::int32_t i = 0; i < nops; ++i) {
    const CompiledOp& o = cs.ops[static_cast<std::size_t>(i)];
    // The root writes straight into the caller's row; no reachable op
    // consumes the root's value (it would have to be its own ancestor).
    float* dst = i == root ? out
                           : rows_ + static_cast<std::size_t>(i) * stride_;
    switch (o.op) {
      case Op::kConst:
        if (reuse && i != root) break;
        for (std::size_t j = 0; j < n_; ++j) dst[j] = o.imm;
        break;
      case Op::kCoord:
        if (o.dim == last) {
          if (reuse && i != root) break;
          for (std::size_t j = 0; j < n_; ++j)
            dst[j] = static_cast<float>(y0 + static_cast<std::int64_t>(j));
        } else {
          const float v = static_cast<float>(base[o.dim]);
          for (std::size_t j = 0; j < n_; ++j) dst[j] = v;
        }
        break;
      case Op::kLoad:
        eval_load(cs.loads[static_cast<std::size_t>(o.load_id)],
                  ctx.srcs[static_cast<std::size_t>(o.load_id)],
                  load_clamped[o.load_id] != 0, dst);
        break;
      case Op::kSelect: {
        const float* a = slot_row(o.a);
        const float* b = slot_row(o.b);
        const float* c = slot_row(o.c);
        for (std::size_t j = 0; j < n_; ++j)
          dst[j] = a[j] != 0.0f ? b[j] : c[j];
        break;
      }
#define FUSEDP_UNARY_CASE(OP)                                              \
  case Op::OP: {                                                           \
    const float* a = slot_row(o.a);                                        \
    for (std::size_t j = 0; j < n_; ++j)                                   \
      dst[j] = apply_unary(Op::OP, a[j]);                                  \
  } break;
      FUSEDP_UNARY_CASE(kNeg)
      FUSEDP_UNARY_CASE(kAbs)
      FUSEDP_UNARY_CASE(kSqrt)
      FUSEDP_UNARY_CASE(kExp)
      FUSEDP_UNARY_CASE(kLog)
      FUSEDP_UNARY_CASE(kFloor)
#undef FUSEDP_UNARY_CASE
#define FUSEDP_BINARY_CASE(OP)                                             \
  case Op::OP: {                                                           \
    const float* a = slot_row(o.a);                                        \
    if (o.imm_side == 0) {                                                 \
      const float* b = slot_row(o.b);                                      \
      for (std::size_t j = 0; j < n_; ++j)                                 \
        dst[j] = apply_binary(Op::OP, a[j], b[j]);                         \
    } else if (o.imm_side == 1) {                                          \
      const float im = o.imm;                                              \
      for (std::size_t j = 0; j < n_; ++j)                                 \
        dst[j] = apply_binary(Op::OP, a[j], im);                           \
    } else {                                                               \
      const float im = o.imm;                                              \
      for (std::size_t j = 0; j < n_; ++j)                                 \
        dst[j] = apply_binary(Op::OP, im, a[j]);                           \
    }                                                                      \
  } break;
      FUSEDP_BINARY_CASE(kAdd)
      FUSEDP_BINARY_CASE(kSub)
      FUSEDP_BINARY_CASE(kMul)
      FUSEDP_BINARY_CASE(kDiv)
      FUSEDP_BINARY_CASE(kMin)
      FUSEDP_BINARY_CASE(kMax)
      FUSEDP_BINARY_CASE(kPow)
      FUSEDP_BINARY_CASE(kLt)
      FUSEDP_BINARY_CASE(kLe)
      FUSEDP_BINARY_CASE(kEq)
      FUSEDP_BINARY_CASE(kAnd)
      FUSEDP_BINARY_CASE(kOr)
#undef FUSEDP_BINARY_CASE
    }
  }
}

}  // namespace fusedp
