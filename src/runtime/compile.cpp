#include "runtime/compile.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <map>
#include <tuple>
#include <utility>

#include "ir/box.hpp"
#include "runtime/fastmath.hpp"
#include "support/fault.hpp"

namespace fusedp {

namespace {

std::int64_t clamp_i64(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

// Incremental floor_div(y * num + pre, den) + offset for y = y0, y0+1, ...
// Each step is one add plus a carry test instead of an integer division;
// the running value is exactly the closed form at every step (den > 0, any
// sign of num), so scaled gathers stay bit-identical to the direct formula.
class AffineStepper {
 public:
  AffineStepper(std::int64_t y0, std::int64_t num, std::int64_t den,
                std::int64_t pre, std::int64_t offset)
      : den_(den), dq_(floor_div(num, den)), dr_(num - dq_ * den) {
    const std::int64_t nmr = y0 * num + pre;
    const std::int64_t q = floor_div(nmr, den);
    r_ = nmr - q * den;  // in [0, den)
    q_ = q + offset;
  }
  std::int64_t value() const { return q_; }
  void step() {
    q_ += dq_;
    r_ += dr_;  // dr_ in [0, den): at most one carry
    if (r_ >= den_) {
      r_ -= den_;
      ++q_;
    }
  }

 private:
  std::int64_t den_, dq_, dr_, q_ = 0, r_ = 0;
};

// Value-numbering key: op + operand slots + the op-specific payload.  Two
// ops with equal keys compute identical rows, so the second one is
// eliminated.  Constants key on their bit pattern (so +0.0f and -0.0f stay
// distinct and bit-identity is preserved).
using VnKey = std::tuple<int, std::int32_t, std::int32_t, std::int32_t,
                         std::int32_t, std::int32_t, std::uint32_t>;

class StageCompiler {
 public:
  StageCompiler(const Stage& s, const CompileOptions& opts)
      : s_(s), opts_(opts) {
    cs_.stage_id = s.id;
    cs_.source_nodes = static_cast<std::int32_t>(s.nodes.size());
    cs_.loads.resize(s.loads.size());
    slot_.assign(s.nodes.size(), -1);
  }

  CompiledStage run() {
    if (s_.kind != StageKind::kMap || s_.body == kNoExpr) return std::move(cs_);
    lower(s_.body);
    cs_.root = slot_[static_cast<std::size_t>(s_.body)];
    compact();
    if (opts_.fuse_superops) {
      fuse_superops();
      compact();  // the fused-away inner ops are now dead
      fuse_pairs();
      compact();
    }
    allocate_registers();
    cs_.vector_loads = opts_.vector_loads;
    return std::move(cs_);
  }

 private:
  // Children of `n` in evaluation order (dynamic axis exprs for loads).
  int children(const ExprNode& n, ExprRef* out) const {
    switch (n.op) {
      case Op::kConst:
      case Op::kCoord:
        return 0;
      case Op::kLoad: {
        int cnt = 0;
        const Access& a = s_.loads[static_cast<std::size_t>(n.load_id)];
        for (const AxisMap& m : a.axes)
          if (m.kind == AxisMap::Kind::kDynamic && m.dyn != kNoExpr)
            out[cnt++] = m.dyn;
        return cnt;
      }
      case Op::kSelect:
        out[0] = n.a;
        out[1] = n.b;
        out[2] = n.c;
        return 3;
      default:
        out[0] = n.a;
        if (op_is_unary(n.op)) return 1;
        out[1] = n.b;
        return 2;
    }
  }

  // Iterative post-order DFS: children lowered before their parent.
  void lower(ExprRef root) {
    struct Frame {
      ExprRef r;
      int next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({root});
    ExprRef kids[kMaxDims];
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (slot_[static_cast<std::size_t>(f.r)] >= 0) {
        stack.pop_back();
        continue;
      }
      const ExprNode& n = s_.nodes[static_cast<std::size_t>(f.r)];
      const int nkids = children(n, kids);
      if (f.next < nkids) {
        const ExprRef child = kids[f.next++];
        if (slot_[static_cast<std::size_t>(child)] < 0)
          stack.push_back({child});
        continue;
      }
      slot_[static_cast<std::size_t>(f.r)] = emit(n);
      stack.pop_back();
    }
  }

  std::int32_t intern(const VnKey& key, const CompiledOp& op) {
    auto [it, inserted] = vn_.try_emplace(key, -1);
    if (!inserted) {
      ++cs_.cse_hits;
      return it->second;
    }
    cs_.ops.push_back(op);
    it->second = static_cast<std::int32_t>(cs_.ops.size()) - 1;
    return it->second;
  }

  std::int32_t emit_const(float v) {
    CompiledOp op;
    op.op = Op::kConst;
    op.imm = v;
    return intern({static_cast<int>(Op::kConst), -1, -1, -1, -1, -1,
                   std::bit_cast<std::uint32_t>(v)},
                  op);
  }

  bool is_const(std::int32_t slot) const {
    return cs_.ops[static_cast<std::size_t>(slot)].op == Op::kConst;
  }
  float const_of(std::int32_t slot) const {
    return cs_.ops[static_cast<std::size_t>(slot)].imm;
  }

  std::int32_t emit(const ExprNode& n) {
    switch (n.op) {
      case Op::kConst:
        return emit_const(n.imm);
      case Op::kCoord: {
        CompiledOp op;
        op.op = Op::kCoord;
        op.dim = n.dim;
        return intern(
            {static_cast<int>(Op::kCoord), -1, -1, -1, n.dim, -1, 0}, op);
      }
      case Op::kLoad: {
        CompiledOp op;
        op.op = Op::kLoad;
        op.load_id = n.load_id;
        const std::int32_t slot = intern(
            {static_cast<int>(Op::kLoad), -1, -1, -1, -1, n.load_id, 0}, op);
        fill_load(n.load_id);
        return slot;
      }
      case Op::kSelect: {
        const std::int32_t a = slot_[static_cast<std::size_t>(n.a)];
        const std::int32_t b = slot_[static_cast<std::size_t>(n.b)];
        const std::int32_t c = slot_[static_cast<std::size_t>(n.c)];
        // A constant condition picks one arm; both arms are pure, so
        // skipping the dead one is unobservable.
        if (is_const(a)) {
          ++cs_.folded;
          return const_of(a) != 0.0f ? b : c;
        }
        CompiledOp op;
        op.op = Op::kSelect;
        op.a = a;
        op.b = b;
        op.c = c;
        return intern({static_cast<int>(Op::kSelect), a, b, c, -1, -1, 0}, op);
      }
      default: {
        const std::int32_t a = slot_[static_cast<std::size_t>(n.a)];
        if (op_is_unary(n.op)) {
          if (is_const(a)) {
            ++cs_.folded;
            return emit_const(apply_unary(n.op, const_of(a)));
          }
          CompiledOp op;
          op.op = n.op;
          op.a = a;
          return intern({static_cast<int>(n.op), a, -1, -1, -1, -1, 0}, op);
        }
        const std::int32_t b = slot_[static_cast<std::size_t>(n.b)];
        if (is_const(a) && is_const(b)) {
          ++cs_.folded;
          return emit_const(apply_binary(n.op, const_of(a), const_of(b)));
        }
        CompiledOp op;
        op.op = n.op;
        if (is_const(b)) {  // dst = a op imm
          op.a = a;
          op.imm = const_of(b);
          op.imm_side = 1;
          return intern({static_cast<int>(n.op), a, -1, -1, 1, -1,
                         std::bit_cast<std::uint32_t>(op.imm)},
                        op);
        }
        if (is_const(a)) {  // dst = imm op b
          op.a = b;
          op.imm = const_of(a);
          op.imm_side = 2;
          return intern({static_cast<int>(n.op), b, -1, -1, 2, -1,
                         std::bit_cast<std::uint32_t>(op.imm)},
                        op);
        }
        op.a = a;
        op.b = b;
        return intern({static_cast<int>(n.op), a, b, -1, -1, -1, 0}, op);
      }
    }
  }

  // Reference counts per slot, counting every operand field, load dynamic
  // axes, and the root (the caller reads it).
  std::vector<std::int32_t> count_uses() const {
    std::vector<std::int32_t> uses(cs_.ops.size(), 0);
    auto touch = [&](std::int32_t s) {
      if (s >= 0) ++uses[static_cast<std::size_t>(s)];
    };
    for (const CompiledOp& op : cs_.ops) {
      touch(op.a);
      touch(op.b);
      touch(op.c);
      touch(op.d);
      if (op.op == Op::kLoad) {
        const CompiledLoad& cl =
            cs_.loads[static_cast<std::size_t>(op.load_id)];
        for (std::int32_t k = 0; k < cl.prank; ++k)
          touch(cl.axes[static_cast<std::size_t>(k)].dyn_slot);
      }
    }
    if (cs_.root >= 0) ++uses[static_cast<std::size_t>(cs_.root)];
    return uses;
  }

  // Peephole fusion over the linear program.  A single-use binary op from
  // {add, sub, mul, min, max} feeding another collapses into one fused
  // chain op (kBinChain — mul feeding add is the classic
  // multiply-accumulate; pure add chains are the bread and butter of box
  // stencils); a single-use comparison feeding a kSelect condition
  // collapses into one compare-and-blend.  Fused ops perform the same
  // rounded float operations in the same order as the pair they replace
  // (contraction into a real FMA only happens at execution time under
  // allow_fma, and only for mul→add/sub), so default-mode results are
  // bit-identical.  The fused-away inner op loses its only reference; the
  // compact() that follows removes it.
  void fuse_superops() {
    const std::vector<std::int32_t> uses = count_uses();
    const std::int32_t n = cs_.num_slots();
    auto chainable = [](Op op) {
      return op == Op::kAdd || op == Op::kSub || op == Op::kMul ||
             op == Op::kMin || op == Op::kMax;
    };
    auto fusable_as = [&](std::int32_t s, bool chain) -> bool {
      if (s < 0) return false;
      const CompiledOp& m = cs_.ops[static_cast<std::size_t>(s)];
      if (m.super != SuperOp::kNone ||
          uses[static_cast<std::size_t>(s)] != 1)
        return false;
      return chain ? chainable(m.op)
                   : m.op == Op::kLt || m.op == Op::kLe || m.op == Op::kEq;
    };
    auto is_mul = [&](std::int32_t s) {
      return cs_.ops[static_cast<std::size_t>(s)].op == Op::kMul;
    };
    for (std::int32_t i = 0; i < n; ++i) {
      CompiledOp& o = cs_.ops[static_cast<std::size_t>(i)];
      if (o.super != SuperOp::kNone) continue;
      if (chainable(o.op)) {
        // Which operand becomes the fused inner op, and what is the other
        // operand z?  super_side records the inner op's side so operand
        // order (and with it NaN-payload propagation) is preserved exactly.
        // When both operands qualify, prefer a multiply so allow_fma can
        // contract the result.
        std::int32_t mslot = -1, zslot = -1;
        float zimm = 0.0f;
        std::uint8_t side = 0;
        if (o.imm_side == 0) {
          const bool fa = fusable_as(o.a, /*chain=*/true);
          const bool fb = fusable_as(o.b, /*chain=*/true);
          if (fa && (!fb || is_mul(o.a) || !is_mul(o.b))) {
            mslot = o.a;
            zslot = o.b;
            side = 1;  // dst = m op b
          } else if (fb) {
            mslot = o.b;
            zslot = o.a;
            side = 2;  // dst = a op m
          }
        } else if (fusable_as(o.a, /*chain=*/true)) {
          zimm = o.imm;
          mslot = o.a;
          side = o.imm_side == 1 ? 1 : 2;  // dst = m op imm / imm op m
        }
        if (mslot < 0) continue;
        const CompiledOp m = cs_.ops[static_cast<std::size_t>(mslot)];
        o.super = SuperOp::kBinChain;
        o.super_side = side;
        o.op2 = m.op;
        o.a = m.a;
        o.b = m.b;
        o.imm = m.imm;
        o.imm_side = m.imm_side;
        o.c = zslot;
        o.imm2 = zimm;
        ++cs_.fused;
      } else if (o.op == Op::kSelect && fusable_as(o.a, /*chain=*/false)) {
        const CompiledOp m = cs_.ops[static_cast<std::size_t>(o.a)];
        const std::int32_t t_arm = o.b;
        const std::int32_t f_arm = o.c;
        o.super = SuperOp::kCmpBlend;
        o.op2 = m.op;
        o.a = m.a;
        o.b = m.b;
        o.imm = m.imm;
        o.imm_side = m.imm_side;
        o.c = t_arm;
        o.d = f_arm;
        ++cs_.fused;
      }
    }
  }

  // Second fusion round: widens kBinChain ops whose remaining row operand z
  // is itself a single-use binary, folding a third op into the pass.  Two
  // shapes (both preserve every rounded operation and its operand order):
  //   * row-row chain + row-row z      -> kChainPair  (m op (c op3 d))
  //   * imm-mul chain + imm-mul z      -> kWeighted   ((a*i1) op (b*i2))
  // Runs on the compacted program so count_uses reflects the first round's
  // rewiring.
  void fuse_pairs() {
    const std::vector<std::int32_t> uses = count_uses();
    const std::int32_t n = cs_.num_slots();
    for (std::int32_t i = 0; i < n; ++i) {
      CompiledOp& o = cs_.ops[static_cast<std::size_t>(i)];
      if (o.super != SuperOp::kBinChain || o.c < 0) continue;
      const std::int32_t zs = o.c;
      if (uses[static_cast<std::size_t>(zs)] != 1) continue;
      const CompiledOp& z = cs_.ops[static_cast<std::size_t>(zs)];
      if (z.super != SuperOp::kNone) continue;
      if (o.imm_side == 0 && o.b >= 0) {
        // Row-row inner pair; z must be a row-row fusable binary.
        if (z.op != Op::kAdd && z.op != Op::kSub && z.op != Op::kMul &&
            z.op != Op::kMin && z.op != Op::kMax)
          continue;
        if (z.imm_side != 0 || z.b < 0) continue;
        o.super = SuperOp::kChainPair;
        o.op3 = z.op;
        o.c = z.a;
        o.d = z.b;
        ++cs_.fused;
      } else if (o.op2 == Op::kMul && o.imm_side != 0 && o.b < 0) {
        // Immediate-multiply inner; z must be an immediate multiply too.
        if (z.op != Op::kMul || z.imm_side == 0) continue;
        o.super = SuperOp::kWeighted;
        o.b = z.a;
        o.imm2 = z.imm;
        o.imm2_side = z.imm_side;
        o.c = -1;
        ++cs_.fused;
      }
    }
  }

  // Drops ops unreachable from the root (folding interns operand slots
  // before the parent collapses, leaving dead constants behind; superop
  // fusion orphans the inner op it absorbed) and renumbers the survivors.
  // Ops only reference smaller slots — fusion preserves this, since a fused
  // op inherits the inner op's operands, which are smaller still — so one
  // decreasing marking pass suffices.
  void compact() {
    const std::size_t n = cs_.ops.size();
    std::vector<char> live(n, 0);
    live[static_cast<std::size_t>(cs_.root)] = 1;
    for (std::int32_t i = static_cast<std::int32_t>(n) - 1; i >= 0; --i) {
      if (!live[static_cast<std::size_t>(i)]) continue;
      const CompiledOp& op = cs_.ops[static_cast<std::size_t>(i)];
      if (op.a >= 0) live[static_cast<std::size_t>(op.a)] = 1;
      if (op.b >= 0) live[static_cast<std::size_t>(op.b)] = 1;
      if (op.c >= 0) live[static_cast<std::size_t>(op.c)] = 1;
      if (op.d >= 0) live[static_cast<std::size_t>(op.d)] = 1;
      if (op.op == Op::kLoad) {
        const CompiledLoad& cl = cs_.loads[static_cast<std::size_t>(op.load_id)];
        for (std::int32_t k = 0; k < cl.prank; ++k)
          if (cl.axes[static_cast<std::size_t>(k)].dyn_slot >= 0)
            live[static_cast<std::size_t>(
                cl.axes[static_cast<std::size_t>(k)].dyn_slot)] = 1;
      }
    }
    std::vector<std::int32_t> remap(n, -1);
    std::vector<CompiledOp> kept;
    kept.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!live[i]) continue;
      remap[i] = static_cast<std::int32_t>(kept.size());
      kept.push_back(cs_.ops[i]);
    }
    if (kept.size() == n) return;
    for (CompiledOp& op : kept) {
      if (op.a >= 0) op.a = remap[static_cast<std::size_t>(op.a)];
      if (op.b >= 0) op.b = remap[static_cast<std::size_t>(op.b)];
      if (op.c >= 0) op.c = remap[static_cast<std::size_t>(op.c)];
      if (op.d >= 0) op.d = remap[static_cast<std::size_t>(op.d)];
    }
    for (CompiledLoad& cl : cs_.loads)
      for (std::int32_t k = 0; k < cl.prank; ++k) {
        std::int32_t& ds = cl.axes[static_cast<std::size_t>(k)].dyn_slot;
        if (ds >= 0) ds = remap[static_cast<std::size_t>(ds)];
      }
    cs_.ops = std::move(kept);
    cs_.root = remap[static_cast<std::size_t>(cs_.root)];
  }

  // Maps op results onto a reusable pool of row registers via linear scan
  // over the (topological) program order.  The destination register is
  // allocated before the op's dying operands are released, so an op's
  // output never aliases any of its inputs — kernels stay safe to annotate
  // with `omp simd`.
  //
  // Constant rows and the innermost coordinate ramp are pinned: they always
  // take a fresh register and are never released, because the row-reuse
  // skip in eval_row leaves them unwritten after a tile's first row — any
  // other op recycling their register would clobber them mid-tile.
  void allocate_registers() {
    const std::int32_t n = cs_.num_slots();
    cs_.reg.assign(static_cast<std::size_t>(n), -1);
    if (!opts_.reg_alloc) {
      // Identity assignment: one row per op, the PR-baseline program shape
      // (the root still writes the caller's row; its slot stays unused so
      // the arena footprint matches the unallocated layout exactly).
      for (std::int32_t i = 0; i < n; ++i)
        if (i != cs_.root) cs_.reg[static_cast<std::size_t>(i)] = i;
      cs_.num_regs = n;
      return;
    }
    const std::int32_t last_dim = s_.rank() - 1;
    std::vector<std::int32_t> last_use(static_cast<std::size_t>(n), -1);
    std::vector<char> pinned(static_cast<std::size_t>(n), 0);
    for (std::int32_t i = 0; i < n; ++i) {
      const CompiledOp& o = cs_.ops[static_cast<std::size_t>(i)];
      pinned[static_cast<std::size_t>(i)] =
          o.op == Op::kConst || (o.op == Op::kCoord && o.dim == last_dim);
    }
    // Operands of op i, deduplicated (a slot used twice dies once).
    std::int32_t opnd[2 + kMaxDims];
    auto operands_of = [&](const CompiledOp& o) {
      int cnt = 0;
      auto add = [&](std::int32_t s) {
        if (s < 0) return;
        for (int k = 0; k < cnt; ++k)
          if (opnd[k] == s) return;
        opnd[cnt++] = s;
      };
      add(o.a);
      add(o.b);
      add(o.c);
      add(o.d);
      if (o.op == Op::kLoad) {
        const CompiledLoad& cl =
            cs_.loads[static_cast<std::size_t>(o.load_id)];
        for (std::int32_t k = 0; k < cl.prank; ++k)
          add(cl.axes[static_cast<std::size_t>(k)].dyn_slot);
      }
      return cnt;
    };
    for (std::int32_t i = 0; i < n; ++i) {
      const int cnt = operands_of(cs_.ops[static_cast<std::size_t>(i)]);
      for (int k = 0; k < cnt; ++k)
        last_use[static_cast<std::size_t>(opnd[k])] = i;
    }
    std::vector<std::int32_t> free_regs;
    std::int32_t next = 0;
    for (std::int32_t i = 0; i < n; ++i) {
      if (i != cs_.root) {
        std::int32_t r;
        if (!pinned[static_cast<std::size_t>(i)] && !free_regs.empty()) {
          r = free_regs.back();
          free_regs.pop_back();
        } else {
          r = next++;
        }
        cs_.reg[static_cast<std::size_t>(i)] = r;
      }
      const int cnt = operands_of(cs_.ops[static_cast<std::size_t>(i)]);
      for (int k = 0; k < cnt; ++k) {
        const std::int32_t s = opnd[k];
        if (last_use[static_cast<std::size_t>(s)] == i &&
            !pinned[static_cast<std::size_t>(s)] && s != cs_.root &&
            cs_.reg[static_cast<std::size_t>(s)] >= 0)
          free_regs.push_back(cs_.reg[static_cast<std::size_t>(s)]);
      }
    }
    cs_.num_regs = next;
  }

  void fill_load(std::int32_t load_id) {
    CompiledLoad& cl = cs_.loads[static_cast<std::size_t>(load_id)];
    if (cl.prank > 0) return;  // a CSE'd duplicate already filled it
    const Access& a = s_.loads[static_cast<std::size_t>(load_id)];
    const int last = s_.rank() - 1;
    cl.prank = static_cast<std::int32_t>(a.axes.size());
    cl.border = a.border;
    for (int k = 0; k < cl.prank; ++k) {
      const AxisMap& m = a.axes[static_cast<std::size_t>(k)];
      CompiledAxis& ca = cl.axes[static_cast<std::size_t>(k)];
      ca.kind = m.kind;
      ca.src_dim = m.src_dim;
      ca.num = m.num;
      ca.den = m.den;
      ca.pre = m.pre;
      ca.offset = m.offset;
      if (m.kind == AxisMap::Kind::kDynamic) {
        ca.dyn_slot = slot_[static_cast<std::size_t>(m.dyn)];
        cl.any_dynamic = true;
      } else if (m.kind == AxisMap::Kind::kAffine && m.num != 0 &&
                 m.src_dim == last) {
        ca.varies_row = true;
        cl.vary_axis = k;  // last one wins, matching RowEvaluator
      }
    }
    if (cl.vary_axis >= 0) {
      const CompiledAxis& vm = cl.axes[static_cast<std::size_t>(cl.vary_axis)];
      cl.vary_identity = vm.num == 1 && vm.den == 1 && vm.pre == 0;
    }
  }

  const Stage& s_;
  const CompileOptions opts_;
  CompiledStage cs_;
  std::vector<std::int32_t> slot_;
  std::map<VnKey, std::int32_t> vn_;
};

}  // namespace

CompiledStage compile_stage(const Stage& s, const CompileOptions& opts) {
  return StageCompiler(s, opts).run();
}

namespace {

// Stage-coordinate step of (stage, dim) for one grid step `step[cls]`;
// false when the step does not land on an integer coordinate (the group is
// then not translatable).
bool delta_of(const AlignResult& align, const std::int64_t* step, int ncls,
              int stage_id, int d, std::int64_t* out) {
  const DimAlign& da =
      align.stages[static_cast<std::size_t>(stage_id)].dim[static_cast<std::size_t>(d)];
  if (da.cls < 0 || da.cls >= ncls || step[da.cls] == 0) {
    *out = 0;
    return true;
  }
  const std::int64_t scaled = step[da.cls] * da.sd;
  if (scaled % da.sn != 0) return false;
  *out = scaled / da.sn;
  return true;
}

}  // namespace

RegionTemplate build_region_template(
    const Pipeline& pl, NodeSet stages, const AlignResult& align,
    const std::vector<int>& order, const std::vector<std::int64_t>& tile_sizes,
    const std::vector<std::int64_t>& tiles_per_dim) {
  RegionTemplate t;
  t.stages.assign(static_cast<std::size_t>(pl.num_stages()), StageRegions{});
  const int ncls = align.num_classes;
  if (order.empty() || ncls <= 0 || ncls > kMaxDims) return t;

  // Template regions of the nominal full tile at the grid origin,
  // unclamped: boundary effects are the executor's per-tile concern.
  Box t0;
  t0.rank = ncls;
  for (int d = 0; d < ncls; ++d) {
    t0.lo[d] = 0;
    t0.hi[d] = tile_sizes[static_cast<std::size_t>(d)] - 1;
  }
  compute_region_boxes(pl, stages, align, t0, /*clamp_to_domain=*/false, order,
                       t.stages.data());

  // Classes the grid never steps along (a single tile) translate by zero.
  std::int64_t step[kMaxDims] = {0, 0, 0, 0};
  for (int d = 0; d < ncls; ++d)
    if (tiles_per_dim[static_cast<std::size_t>(d)] > 1)
      step[d] = tile_sizes[static_cast<std::size_t>(d)];

  // Every member dimension must advance by an integral stage-coordinate
  // step per grid step...
  for (int s : order) {
    const Stage& st = pl.stage(s);
    for (int d = 0; d < st.rank(); ++d) {
      std::int64_t delta;
      if (!delta_of(align, step, ncls, s, d, &delta)) return t;
    }
  }

  // ...and every in-group access map must commute with that translation:
  // consumer step maps exactly onto the producer step (affine axes), and
  // axes whose footprint does not follow the tile (broadcast planes,
  // constant indices, data-dependent gathers spanning the full extent) may
  // only read producer dimensions that do not move.
  for (int c : order) {
    const Stage& cs = pl.stage(c);
    for (const Access& a : cs.loads) {
      if (a.producer.is_input || !stages.contains(a.producer.id)) continue;
      for (int k = 0; k < static_cast<int>(a.axes.size()); ++k) {
        const AxisMap& m = a.axes[static_cast<std::size_t>(k)];
        std::int64_t dp;
        if (!delta_of(align, step, ncls, a.producer.id, k, &dp)) return t;
        if (m.kind == AxisMap::Kind::kAffine && m.num != 0) {
          std::int64_t dc;
          if (!delta_of(align, step, ncls, c, m.src_dim, &dc)) return t;
          if ((dc * m.num) % m.den != 0 || dc * m.num / m.den != dp) return t;
        } else if (dp != 0) {
          return t;
        }
      }
    }
  }

  t.translatable = true;
  return t;
}

namespace {

// ---- SIMD superop kernels --------------------------------------------------
//
// One instantiation per operand shape, selected through a function-pointer
// table so the hot loop contains no per-element dispatch.  All shape flags
// are template parameters: the compiler sees straight-line loops it can
// vectorize.  Default mode performs exactly the two rounded operations of
// the unfused pair, in the same operand order; FMA instantiations contract
// to one rounding and exist only behind ExecOptions::allow_fma.

// Element operation of a fusable binary: exactly apply_binary's expression
// for that op (std::min/std::max included), so a fused chain produces the
// same bits as the two ops it replaced.
template <Op O>
inline float chain_bin(float a, float b) {
  if constexpr (O == Op::kAdd)
    return a + b;
  else if constexpr (O == Op::kSub)
    return a - b;
  else if constexpr (O == Op::kMul)
    return a * b;
  else if constexpr (O == Op::kMin)
    return std::min(a, b);
  else
    return std::max(a, b);
}

// dst = m op z (side 1) or z op m (side 2), m = inner OP2 of x with y/yimm.
// YI: y is the immediate `yimm` (the inner op was in immediate form); YS2
// mirrors the inner imm_side (imm OP2 x vs x OP2 imm — operand order
// matters for NaN-payload propagation and for kSub).  ZI: z is the
// immediate `zimm`; ZS2 mirrors super_side.  Each instantiation is one
// straight-line loop with no per-element dispatch.
template <Op OP2, bool YI, bool YS2, Op OP, bool ZI, bool ZS2>
void chain_kernel(float* dst, const float* x, const float* y, float yimm,
                  const float* z, float zimm, std::size_t n) {
  FUSEDP_SIMD
  for (std::size_t j = 0; j < n; ++j) {
    const float xv = x[j];
    const float yv = YI ? yimm : y[j];
    const float m = YS2 ? chain_bin<OP2>(yv, xv) : chain_bin<OP2>(xv, yv);
    const float zv = ZI ? zimm : z[j];
    dst[j] = ZS2 ? chain_bin<OP>(zv, m) : chain_bin<OP>(m, zv);
  }
}

using ChainFn = void (*)(float*, const float*, const float*, float,
                         const float*, float, std::size_t);

// Fusable chain ops; chain_op_index must agree with this order.
constexpr Op kChainOps[5] = {Op::kAdd, Op::kSub, Op::kMul, Op::kMin,
                             Op::kMax};

inline int chain_op_index(Op op) {
  switch (op) {
    case Op::kAdd: return 0;
    case Op::kSub: return 1;
    case Op::kMul: return 2;
    case Op::kMin: return 3;
    default:       return 4;  // kMax
  }
}

// Index layout: ((inner * 5) + outer) * 16 + bits, bits = YI | YS2<<1 |
// ZI<<2 | ZS2<<3.
template <std::size_t... I>
constexpr std::array<ChainFn, sizeof...(I)> make_chain_table(
    std::index_sequence<I...>) {
  return {{&chain_kernel<kChainOps[I / 80], (I & 1) != 0, (I & 2) != 0,
                         kChainOps[(I / 16) % 5], (I & 4) != 0,
                         (I & 8) != 0>...}};
}

constexpr std::array<ChainFn, 400> kChainKernels =
    make_chain_table(std::make_index_sequence<400>{});

// dst = (x OP2 y) OP (z OP3 w), outer operands swapped under ZS2 — the
// pair-pair superop, all row operands.
template <Op OP2, Op OP, bool ZS2, Op OP3>
void chainpair_kernel(float* dst, const float* x, const float* y,
                      const float* z, const float* w, std::size_t n) {
  FUSEDP_SIMD
  for (std::size_t j = 0; j < n; ++j) {
    const float m = chain_bin<OP2>(x[j], y[j]);
    const float p = chain_bin<OP3>(z[j], w[j]);
    dst[j] = ZS2 ? chain_bin<OP>(p, m) : chain_bin<OP>(m, p);
  }
}

using ChainPairFn = void (*)(float*, const float*, const float*,
                             const float*, const float*, std::size_t);

// Index layout: ((inner * 5 + outer) * 5 + second) * 2 + ZS2.
template <std::size_t... I>
constexpr std::array<ChainPairFn, sizeof...(I)> make_chainpair_table(
    std::index_sequence<I...>) {
  return {{&chainpair_kernel<kChainOps[I / 50], kChainOps[(I / 10) % 5],
                             (I & 1) != 0, kChainOps[(I / 2) % 5]>...}};
}

constexpr std::array<ChainPairFn, 250> kChainPairKernels =
    make_chainpair_table(std::make_index_sequence<250>{});

// dst = (x*i1) OP (y*i2) with each multiply's immediate side (MS1/MS2: imm
// on the left) preserved for NaN-payload order; S2 swaps the outer
// operands.
template <Op OP, bool MS1, bool MS2, bool S2>
void weighted_kernel(float* dst, const float* x, float i1, const float* y,
                     float i2, std::size_t n) {
  FUSEDP_SIMD
  for (std::size_t j = 0; j < n; ++j) {
    const float m = MS1 ? i1 * x[j] : x[j] * i1;
    const float w = MS2 ? i2 * y[j] : y[j] * i2;
    dst[j] = S2 ? chain_bin<OP>(w, m) : chain_bin<OP>(m, w);
  }
}

using WeightedFn = void (*)(float*, const float*, float, const float*, float,
                            std::size_t);

// Index layout: outer * 8 + (MS1 | MS2<<1 | S2<<2).
template <std::size_t... I>
constexpr std::array<WeightedFn, sizeof...(I)> make_weighted_table(
    std::index_sequence<I...>) {
  return {{&weighted_kernel<kChainOps[I / 8], (I & 1) != 0, (I & 2) != 0,
                            (I & 4) != 0>...}};
}

constexpr std::array<WeightedFn, 40> kWeightedKernels =
    make_weighted_table(std::make_index_sequence<40>{});

// allow_fma contraction of a mul→add/sub chain: one rounding instead of
// two.  The inner operand order (YS2) cannot affect the fma value, so only
// YI/ZI/ZS2/SUB instantiate.
template <bool YI, bool ZI, bool ZS2, bool SUB>
void fma_kernel(float* dst, const float* x, const float* y, float yimm,
                const float* z, float zimm, std::size_t n) {
  FUSEDP_SIMD
  for (std::size_t j = 0; j < n; ++j) {
    const float xv = x[j];
    const float yv = YI ? yimm : y[j];
    const float zv = ZI ? zimm : z[j];
    if constexpr (!SUB)
      dst[j] = std::fma(xv, yv, zv);
    else if constexpr (!ZS2)
      dst[j] = std::fma(xv, yv, -zv);  // m - z
    else
      dst[j] = std::fma(-xv, yv, zv);  // z - m
  }
}

template <std::size_t... I>
constexpr std::array<ChainFn, sizeof...(I)> make_fma_table(
    std::index_sequence<I...>) {
  return {{&fma_kernel<(I & 1) != 0, (I & 2) != 0, (I & 4) != 0,
                       (I & 8) != 0>...}};
}

constexpr std::array<ChainFn, 16> kFmaKernels =
    make_fma_table(std::make_index_sequence<16>{});

// dst = cmp(l, r) ? t : f.  IS mirrors imm_side of the fused comparison:
// 0 row-row, 1 row-imm, 2 imm-row.  Selecting on the comparison directly is
// bit-identical to materializing the 0/1 row and testing != 0.
template <Op CMP, int IS>
void blend_kernel(float* dst, const float* a, const float* b, float imm,
                  const float* t, const float* f, std::size_t n) {
  FUSEDP_SIMD
  for (std::size_t j = 0; j < n; ++j) {
    const float l = IS == 2 ? imm : a[j];
    const float r = IS == 1 ? imm : (IS == 2 ? a[j] : b[j]);
    bool c;
    if constexpr (CMP == Op::kLt)
      c = l < r;
    else if constexpr (CMP == Op::kLe)
      c = l <= r;
    else
      c = l == r;
    dst[j] = c ? t[j] : f[j];
  }
}

template <Op CMP>
void blend_dispatch(int is, float* dst, const float* a, const float* b,
                    float imm, const float* t, const float* f, std::size_t n) {
  if (is == 0)
    blend_kernel<CMP, 0>(dst, a, b, imm, t, f, n);
  else if (is == 1)
    blend_kernel<CMP, 1>(dst, a, b, imm, t, f, n);
  else
    blend_kernel<CMP, 2>(dst, a, b, imm, t, f, n);
}

}  // namespace

const float* CompiledRowEvaluator::eval_load(const CompiledLoad& cl,
                                             const LoadSrc& src, bool clamped,
                                             float* out, bool may_forward) {
  const int prank = cl.prank;

  if (!clamped) {
    // Interior kernel: every coordinate is provably inside src.domain and
    // the backing view, so border folding is skipped entirely.
    std::int64_t c[kMaxDims] = {0, 0, 0, 0};
    for (int k = 0; k < prank; ++k) {
      const CompiledAxis& m = cl.axes[static_cast<std::size_t>(k)];
      if (m.varies_row) continue;
      c[k] = (m.kind == AxisMap::Kind::kConstant || m.num == 0)
                 ? m.offset
                 : floor_div(base_[m.src_dim] * m.num + m.pre, m.den) +
                       m.offset;
    }
    if (cl.vary_axis < 0) {
      const float v = src.view.at(c);
      FUSEDP_SIMD
      for (std::size_t i = 0; i < n_; ++i) out[i] = v;
      return out;
    }
    const CompiledAxis& vm = cl.axes[static_cast<std::size_t>(cl.vary_axis)];
    const std::int64_t stride = src.view.stride[cl.vary_axis];
    if (cl.vary_identity) {
      c[cl.vary_axis] = y0_ + vm.offset;
      const float* p = src.view.data + src.view.offset_of(c);
      if (stride == 1) {
        // Contiguous interior row: forward the producer's storage directly
        // — consumers read through the per-slot row pointer, so no copy is
        // needed at all (the root still copies: it must write `out`).
        if (may_forward) return p;
        std::memcpy(out, p, n_ * sizeof(float));
      } else {
        FUSEDP_SIMD
        for (std::size_t i = 0; i < n_; ++i)
          out[i] = p[static_cast<std::int64_t>(i) * stride];
      }
      return out;
    }
    // Scaled gather: the varying coordinate is factored out of the flat
    // offset and advanced without per-element division.
    c[cl.vary_axis] = 0;
    const float* p0 = src.view.data + src.view.offset_of(c);
    if (vec_) {
      // Closed-form index kernels for the dominant scalings: the element
      // index is a direct function of i, so the loop has no carried state
      // and vectorizes.  The integer indices are exactly the stepper's.
      if (vm.den == 1) {
        // Pure stride: index = y*num + pre + offset.
        const float* p = p0 + (y0_ * vm.num + vm.pre + vm.offset) * stride;
        const std::int64_t st = vm.num * stride;
        FUSEDP_SIMD
        for (std::size_t i = 0; i < n_; ++i)
          out[i] = p[static_cast<std::int64_t>(i) * st];
        return out;
      }
      if (vm.num == 1 && vm.den == 2) {
        // Halving (pyramid downscale taps): index = floor((y+pre)/2)+offset
        // = q0 + (i + r0)/2 with r0 in {0, 1}.
        const std::int64_t t0 = y0_ + vm.pre;
        const std::int64_t q0 = floor_div(t0, 2);
        const std::size_t r0 = static_cast<std::size_t>(t0 - 2 * q0);
        const float* p = p0 + (q0 + vm.offset) * stride;
        FUSEDP_SIMD
        for (std::size_t i = 0; i < n_; ++i)
          out[i] = p[static_cast<std::int64_t>((i + r0) >> 1) * stride];
        return out;
      }
      if (vm.num == 1 && vm.den > 2) {
        // General upsampling (the bilateral slice's den=8 grid axes): the
        // index floor((y+pre)/den)+offset is piecewise constant over runs
        // of `den` elements, so the row is a sequence of broadcast fills
        // (the first run is den-r0 long, the rest full).  Each fill
        // vectorizes; the indices are exactly the stepper's.
        const std::int64_t t0 = y0_ + vm.pre;
        std::int64_t q = floor_div(t0, vm.den);
        std::size_t run = static_cast<std::size_t>(vm.den - (t0 - q * vm.den));
        const float* p = p0 + vm.offset * stride;
        std::size_t i = 0;
        while (i < n_) {
          const std::size_t end = std::min(n_, i + run);
          const float v = p[q * stride];
          FUSEDP_SIMD
          for (std::size_t j = i; j < end; ++j) out[j] = v;
          i = end;
          run = static_cast<std::size_t>(vm.den);
          ++q;
        }
        return out;
      }
    }
    AffineStepper coord(y0_, vm.num, vm.den, vm.pre, vm.offset);
    for (std::size_t i = 0; i < n_; ++i, coord.step())
      out[i] = p0[coord.value() * stride];
    return out;
  }

  if (cl.border != Border::kClamp) {
    // Non-clamp borders take a fully general gather (they are rare and only
    // differ near domain edges).
    const float* dyn[kMaxDims] = {nullptr, nullptr, nullptr, nullptr};
    for (int k = 0; k < prank; ++k)
      if (cl.axes[static_cast<std::size_t>(k)].kind == AxisMap::Kind::kDynamic)
        dyn[k] = row(cl.axes[static_cast<std::size_t>(k)].dyn_slot);
    std::int64_t c[kMaxDims];
    for (std::size_t i = 0; i < n_; ++i) {
      const std::int64_t y = y0_ + static_cast<std::int64_t>(i);
      bool zero = false;
      for (int k = 0; k < prank && !zero; ++k) {
        const CompiledAxis& m = cl.axes[static_cast<std::size_t>(k)];
        std::int64_t v;
        if (m.kind == AxisMap::Kind::kConstant || m.num == 0)
          v = m.offset;
        else if (m.kind == AxisMap::Kind::kDynamic)
          v = static_cast<std::int64_t>(std::floor(dyn[k][i]));
        else
          v = floor_div((m.varies_row ? y : base_[m.src_dim]) * m.num + m.pre,
                        m.den) +
              m.offset;
        if (cl.border == Border::kZero &&
            (v < src.domain.lo[k] || v > src.domain.hi[k])) {
          zero = true;
          break;
        }
        c[k] = fold_coord(v, src.domain.lo[k], src.domain.hi[k], cl.border);
      }
      out[i] = zero ? 0.0f : src.view.at(c);
    }
    return out;
  }

  // Clamp-to-edge: fixed coordinates once per row, then the varying /
  // dynamic axes per element (mirrors RowEvaluator::eval_load).
  std::int64_t fixed[kMaxDims] = {0, 0, 0, 0};
  const float* dyn_rows[kMaxDims] = {nullptr, nullptr, nullptr, nullptr};
  for (int k = 0; k < prank; ++k) {
    const CompiledAxis& m = cl.axes[static_cast<std::size_t>(k)];
    switch (m.kind) {
      case AxisMap::Kind::kConstant:
        fixed[k] = clamp_i64(m.offset, src.domain.lo[k], src.domain.hi[k]);
        break;
      case AxisMap::Kind::kDynamic:
        dyn_rows[k] = row(m.dyn_slot);
        break;
      case AxisMap::Kind::kAffine:
        if (!m.varies_row) {
          const std::int64_t v =
              m.num == 0
                  ? m.offset
                  : floor_div(base_[m.src_dim] * m.num + m.pre, m.den) +
                        m.offset;
          fixed[k] = clamp_i64(v, src.domain.lo[k], src.domain.hi[k]);
        }
        break;
    }
  }

  if (!cl.any_dynamic && cl.vary_axis >= 0) {
    const CompiledAxis& vm = cl.axes[static_cast<std::size_t>(cl.vary_axis)];
    if (cl.vary_identity) {
      // Contiguous-in-producer along the row, clamped at the edges.
      std::int64_t c[kMaxDims];
      for (int k = 0; k < prank; ++k) c[k] = fixed[k];
      const std::int64_t plo = src.domain.lo[cl.vary_axis];
      const std::int64_t phi = src.domain.hi[cl.vary_axis];
      const std::int64_t stride = src.view.stride[cl.vary_axis];
      const std::int64_t first = y0_ + vm.offset;
      const std::int64_t pre = std::clamp<std::int64_t>(
          plo - first, 0, static_cast<std::int64_t>(n_));
      const std::int64_t post_start = std::clamp<std::int64_t>(
          phi - first + 1, 0, static_cast<std::int64_t>(n_));
      if (pre > 0) {
        c[cl.vary_axis] = plo;
        const float lo_val = src.view.at(c);
        for (std::int64_t i = 0; i < pre; ++i) out[i] = lo_val;
      }
      if (post_start > pre) {
        c[cl.vary_axis] = first + pre;
        const float* p = src.view.data + src.view.offset_of(c);
        const std::size_t body = static_cast<std::size_t>(post_start - pre);
        if (stride == 1) {
          std::memcpy(out + pre, p, body * sizeof(float));
        } else {
          FUSEDP_SIMD
          for (std::size_t i = 0; i < body; ++i)
            out[static_cast<std::size_t>(pre) + i] =
                p[static_cast<std::int64_t>(i) * stride];
        }
      }
      if (post_start < static_cast<std::int64_t>(n_)) {
        c[cl.vary_axis] = phi;
        const float hi_val = src.view.at(c);
        for (std::int64_t i = post_start; i < static_cast<std::int64_t>(n_);
             ++i)
          out[i] = hi_val;
      }
      return out;
    }
    // Scaled gather along the row (up/down-sampling): factor the varying
    // coordinate out of the flat offset and advance it division-free.
    std::int64_t c[kMaxDims];
    for (int k = 0; k < prank; ++k) c[k] = fixed[k];
    const std::int64_t plo = src.domain.lo[cl.vary_axis];
    const std::int64_t phi = src.domain.hi[cl.vary_axis];
    const std::int64_t stride = src.view.stride[cl.vary_axis];
    c[cl.vary_axis] = 0;
    const float* p0 = src.view.data + src.view.offset_of(c);
    if (vec_ && vm.num > 0) {
      // The index is non-decreasing in i, so the row splits into a
      // clamped-to-lo prefix, a clamp-free interior and a clamped-to-hi
      // suffix; the interior takes the same closed-form kernels as the
      // unclamped path.  Segment bounds invert the exact index formula, so
      // every element reads the same producer cell the clamping loop would.
      std::int64_t i_lo = 0, i_hi1 = 0;
      bool closed = false;
      if (vm.den == 1) {
        const std::int64_t k0 = vm.pre + vm.offset;
        i_lo = ceil_div(plo - k0, vm.num) - y0_;
        i_hi1 = floor_div(phi - k0, vm.num) - y0_ + 1;
        closed = true;
      } else if (vm.num == 1 && vm.den >= 2) {
        // floor((y0+i+pre)/den)+offset crosses plo at the first i with
        // y0+i+pre >= den*(plo-offset) and exceeds phi at the first i with
        // y0+i+pre >= den*(phi-offset+1); for den = 2 this is exactly the
        // former specialized bound.
        i_lo = vm.den * (plo - vm.offset) - y0_ - vm.pre;
        i_hi1 = vm.den * (phi - vm.offset + 1) - y0_ - vm.pre;
        closed = true;
      }
      if (closed) {
        const std::int64_t nn = static_cast<std::int64_t>(n_);
        i_lo = std::clamp<std::int64_t>(i_lo, 0, nn);
        i_hi1 = std::clamp<std::int64_t>(i_hi1, i_lo, nn);
        if (i_lo > 0) {
          const float lo_val = p0[plo * stride];
          for (std::int64_t i = 0; i < i_lo; ++i) out[i] = lo_val;
        }
        if (vm.den == 1) {
          const float* p =
              p0 + ((y0_ + i_lo) * vm.num + vm.pre + vm.offset) * stride;
          const std::int64_t st = vm.num * stride;
          const std::int64_t body = i_hi1 - i_lo;
          float* outb = out + i_lo;
          FUSEDP_SIMD
          for (std::int64_t i = 0; i < body; ++i) outb[i] = p[i * st];
        } else if (vm.den == 2) {
          const std::int64_t t0 = y0_ + i_lo + vm.pre;
          const std::int64_t q0 = floor_div(t0, 2);
          const std::int64_t r0 = t0 - 2 * q0;
          const float* p = p0 + (q0 + vm.offset) * stride;
          const std::int64_t body = i_hi1 - i_lo;
          float* outb = out + i_lo;
          FUSEDP_SIMD
          for (std::int64_t i = 0; i < body; ++i)
            outb[i] = p[((i + r0) >> 1) * stride];
        } else {
          // den > 2 interior: run-segmented broadcast fills, as in the
          // unclamped kernel (the interior is clamp-free by construction).
          const std::int64_t t0 = y0_ + i_lo + vm.pre;
          std::int64_t q = floor_div(t0, vm.den);
          std::size_t run =
              static_cast<std::size_t>(vm.den - (t0 - q * vm.den));
          const float* p = p0 + vm.offset * stride;
          const std::size_t body = static_cast<std::size_t>(i_hi1 - i_lo);
          float* outb = out + i_lo;
          std::size_t i = 0;
          while (i < body) {
            const std::size_t end = std::min(body, i + run);
            const float v = p[q * stride];
            FUSEDP_SIMD
            for (std::size_t j = i; j < end; ++j) outb[j] = v;
            i = end;
            run = static_cast<std::size_t>(vm.den);
            ++q;
          }
        }
        if (i_hi1 < nn) {
          const float hi_val = p0[phi * stride];
          for (std::int64_t i = i_hi1; i < nn; ++i) out[i] = hi_val;
        }
        return out;
      }
    }
    AffineStepper coord(y0_, vm.num, vm.den, vm.pre, vm.offset);
    for (std::size_t i = 0; i < n_; ++i, coord.step())
      out[i] = p0[clamp_i64(coord.value(), plo, phi) * stride];
    return out;
  }

  if (!cl.any_dynamic) {
    // Every axis fixed: broadcast one element.
    const float v = src.view.at(fixed);
    FUSEDP_SIMD
    for (std::size_t i = 0; i < n_; ++i) out[i] = v;
    return out;
  }

  // General gather with dynamic axes.  The fixed axes are folded into one
  // base pointer; only dynamic and row-varying axes contribute per element.
  struct ActiveAxis {
    const float* dyn;  // null for an affine row-varying axis
    std::int64_t num, den, pre, offset;
    std::int64_t stride, lo, hi;
  };
  ActiveAxis act[kMaxDims];
  int nact = 0;
  std::int64_t c[kMaxDims] = {0, 0, 0, 0};
  for (int k = 0; k < prank; ++k) {
    const CompiledAxis& m = cl.axes[static_cast<std::size_t>(k)];
    if (m.kind == AxisMap::Kind::kDynamic || m.varies_row) {
      ActiveAxis& a = act[nact++];
      a.dyn = m.kind == AxisMap::Kind::kDynamic ? dyn_rows[k] : nullptr;
      a.num = m.num;
      a.den = m.den;
      a.pre = m.pre;
      a.offset = m.offset;
      a.stride = src.view.stride[k];
      a.lo = src.domain.lo[k];
      a.hi = src.domain.hi[k];
      c[k] = 0;
    } else {
      c[k] = fixed[k];
    }
  }
  const float* p0 = src.view.data + src.view.offset_of(c);
  if (vec_) {
    // Loop interchange: one branchless pass per active axis accumulates the
    // flat offsets into a scratch row, then a single tight gather reads the
    // producer.  Index math (floor, clamp, strides) is element-for-element
    // the same as the fallback loop below.
    offs_.resize(n_);
    std::int64_t* off = offs_.data();
    for (int t = 0; t < nact; ++t) {
      const ActiveAxis& a = act[t];
      const std::int64_t lo = a.lo, hi = a.hi, st = a.stride;
      if (a.dyn) {
        const float* d = a.dyn;
        FUSEDP_SIMD
        for (std::size_t i = 0; i < n_; ++i) {
          std::int64_t v = static_cast<std::int64_t>(std::floor(d[i]));
          v = v < lo ? lo : (v > hi ? hi : v);
          off[i] = (t == 0 ? 0 : off[i]) + v * st;
        }
      } else if (a.den == 1) {
        const std::int64_t k0 = a.pre + a.offset;
        FUSEDP_SIMD
        for (std::size_t i = 0; i < n_; ++i) {
          std::int64_t v = (y0_ + static_cast<std::int64_t>(i)) * a.num + k0;
          v = v < lo ? lo : (v > hi ? hi : v);
          off[i] = (t == 0 ? 0 : off[i]) + v * st;
        }
      } else if (a.num == 1) {
        // Upsampled axis (the bilateral slice reads its den=8 grid axes
        // here): floor((y+pre)/den)+offset is constant over runs of `den`
        // elements, so clamp once per run and fill with a vectorizable
        // inner loop instead of the serial stepper.  Index math matches
        // the fallback element for element.
        const std::int64_t t0 = y0_ + a.pre;
        std::int64_t q = floor_div(t0, a.den);
        std::size_t run = static_cast<std::size_t>(a.den - (t0 - q * a.den));
        std::size_t i = 0;
        while (i < n_) {
          const std::size_t end = std::min(n_, i + run);
          const std::int64_t v = clamp_i64(q + a.offset, lo, hi) * st;
          if (t == 0) {
            FUSEDP_SIMD
            for (std::size_t j = i; j < end; ++j) off[j] = v;
          } else {
            FUSEDP_SIMD
            for (std::size_t j = i; j < end; ++j) off[j] += v;
          }
          i = end;
          run = static_cast<std::size_t>(a.den);
          ++q;
        }
      } else {
        AffineStepper coord(y0_, a.num, a.den, a.pre, a.offset);
        for (std::size_t i = 0; i < n_; ++i, coord.step()) {
          const std::int64_t v = clamp_i64(coord.value(), lo, hi);
          off[i] = (t == 0 ? 0 : off[i]) + v * st;
        }
      }
    }
    for (std::size_t i = 0; i < n_; ++i) out[i] = p0[off[i]];
    return out;
  }
  for (std::size_t i = 0; i < n_; ++i) {
    const std::int64_t y = y0_ + static_cast<std::int64_t>(i);
    std::int64_t off = 0;
    for (int t = 0; t < nact; ++t) {
      const ActiveAxis& a = act[t];
      const std::int64_t v =
          a.dyn ? static_cast<std::int64_t>(std::floor(a.dyn[i]))
                : floor_div(y * a.num + a.pre, a.den) + a.offset;
      off += clamp_i64(v, a.lo, a.hi) * a.stride;
    }
    out[i] = p0[off];
  }
  return out;
}

void CompiledRowEvaluator::eval_row(const CompiledStage& cs,
                                    const StageEvalCtx& ctx,
                                    const unsigned char* load_clamped,
                                    const std::int64_t* base, std::int64_t y0,
                                    std::int64_t y1, float* out,
                                    bool allow_fma,
                                    bool fast_transcendentals) {
  n_ = static_cast<std::size_t>(y1 - y0 + 1);
  base_ = base;
  y0_ = y0;
  vec_ = cs.vector_loads;
  rows_ = guard_.carve(arena_, static_cast<std::size_t>(cs.num_regs),
                       pad_row_floats(n_), stride_);
  rowp_.resize(cs.ops.size());
  // Test-only synthetic overrun: scribbles into register 0's guard line,
  // proving the post-tile canary check catches an in-arena smash.
  if (guard_.enabled() && cs.num_regs > 0)
    FUSEDP_FAULT_CORRUPT("eval.guard_overrun", rows_[stride_ - 1]);

  // Constant rows and the innermost coordinate ramp only depend on (stage,
  // n, y0): within one tile they are identical for every row, so fill them
  // once on the tile's first row and skip them afterwards.  Their registers
  // are pinned by the allocator, so nothing overwrites them mid-tile; a
  // different stage running in between invalidates the key (last_cs_).
  const bool reuse = &cs == last_cs_ && rows_ == last_rows_ &&
                     n_ == last_n_ && y0 == last_y0_;
  last_cs_ = &cs;
  last_rows_ = rows_;
  last_n_ = n_;
  last_y0_ = y0;

  const std::int32_t nops = cs.num_slots();
  const std::int32_t root = cs.root;
  const int last = ctx.stage->rank() - 1;
  for (std::int32_t i = 0; i < nops; ++i) {
    const CompiledOp& o = cs.ops[static_cast<std::size_t>(i)];
    // The root writes straight into the caller's row; no reachable op
    // consumes the root's value (it would have to be its own ancestor).
    float* dst =
        i == root
            ? out
            : rows_ + static_cast<std::size_t>(cs.reg[static_cast<std::size_t>(
                          i)]) * stride_;
    rowp_[static_cast<std::size_t>(i)] = dst;

    if (o.super == SuperOp::kBinChain) {
      const float* x = row(o.a);
      const float* y = o.b >= 0 ? row(o.b) : nullptr;
      const float* z = o.c >= 0 ? row(o.c) : nullptr;
      if (allow_fma && o.op2 == Op::kMul &&
          (o.op == Op::kAdd || o.op == Op::kSub)) {
        const unsigned key = (o.b < 0 ? 1u : 0u) | (o.c < 0 ? 2u : 0u) |
                             (o.super_side == 2 ? 4u : 0u) |
                             (o.op == Op::kSub ? 8u : 0u);
        kFmaKernels[key](dst, x, y, o.imm, z, o.imm2, n_);
      } else {
        const unsigned key =
            static_cast<unsigned>(
                (chain_op_index(o.op2) * 5 + chain_op_index(o.op)) * 16) |
            (o.b < 0 ? 1u : 0u) | (o.imm_side == 2 ? 2u : 0u) |
            (o.c < 0 ? 4u : 0u) | (o.super_side == 2 ? 8u : 0u);
        kChainKernels[key](dst, x, y, o.imm, z, o.imm2, n_);
      }
      continue;
    }
    if (o.super == SuperOp::kChainPair) {
      const unsigned key =
          static_cast<unsigned>(((chain_op_index(o.op2) * 5 +
                                  chain_op_index(o.op)) *
                                     5 +
                                 chain_op_index(o.op3)) *
                                2) |
          (o.super_side == 2 ? 1u : 0u);
      kChainPairKernels[key](dst, row(o.a), row(o.b), row(o.c), row(o.d),
                             n_);
      continue;
    }
    if (o.super == SuperOp::kWeighted) {
      const unsigned key =
          static_cast<unsigned>(chain_op_index(o.op) * 8) |
          (o.imm_side == 2 ? 1u : 0u) | (o.imm2_side == 2 ? 2u : 0u) |
          (o.super_side == 2 ? 4u : 0u);
      kWeightedKernels[key](dst, row(o.a), o.imm, row(o.b), o.imm2, n_);
      continue;
    }
    if (o.super == SuperOp::kCmpBlend) {
      const float* a = row(o.a);
      const float* b = o.b >= 0 ? row(o.b) : nullptr;
      const float* t = row(o.c);
      const float* f = row(o.d);
      const int is = o.imm_side;
      if (o.op2 == Op::kLt)
        blend_dispatch<Op::kLt>(is, dst, a, b, o.imm, t, f, n_);
      else if (o.op2 == Op::kLe)
        blend_dispatch<Op::kLe>(is, dst, a, b, o.imm, t, f, n_);
      else
        blend_dispatch<Op::kEq>(is, dst, a, b, o.imm, t, f, n_);
      continue;
    }

    switch (o.op) {
      case Op::kConst:
        if (reuse && i != root) break;
        FUSEDP_SIMD
        for (std::size_t j = 0; j < n_; ++j) dst[j] = o.imm;
        break;
      case Op::kCoord:
        if (o.dim == last) {
          if (reuse && i != root) break;
          FUSEDP_SIMD
          for (std::size_t j = 0; j < n_; ++j)
            dst[j] = static_cast<float>(y0 + static_cast<std::int64_t>(j));
        } else {
          const float v = static_cast<float>(base[o.dim]);
          FUSEDP_SIMD
          for (std::size_t j = 0; j < n_; ++j) dst[j] = v;
        }
        break;
      case Op::kLoad:
        rowp_[static_cast<std::size_t>(i)] =
            eval_load(cs.loads[static_cast<std::size_t>(o.load_id)],
                      ctx.srcs[static_cast<std::size_t>(o.load_id)],
                      load_clamped[o.load_id] != 0, dst,
                      /*may_forward=*/cs.vector_loads && i != root);
        break;
      case Op::kSelect: {
        const float* a = row(o.a);
        const float* b = row(o.b);
        const float* c = row(o.c);
        FUSEDP_SIMD
        for (std::size_t j = 0; j < n_; ++j)
          dst[j] = a[j] != 0.0f ? b[j] : c[j];
        break;
      }
// SIMD-safe unary ops.  kExp/kLog default to unannotated scalar libm loops
// (bit-exactness policy: no vector math library); with the opt-in
// fast_transcendentals flag they dispatch to the branch-free polynomial
// kernels in runtime/fastmath.hpp, which inline into omp-simd loops.
#define FUSEDP_UNARY_CASE(OP)                                              \
  case Op::OP: {                                                           \
    const float* a = row(o.a);                                             \
    FUSEDP_SIMD                                                            \
    for (std::size_t j = 0; j < n_; ++j)                                   \
      dst[j] = apply_unary(Op::OP, a[j]);                                  \
  } break;
#define FUSEDP_UNARY_CASE_LIBM(OP, FAST)                                   \
  case Op::OP: {                                                           \
    const float* a = row(o.a);                                             \
    if (fast_transcendentals) {                                            \
      FUSEDP_SIMD                                                          \
      for (std::size_t j = 0; j < n_; ++j) dst[j] = FAST(a[j]);            \
    } else {                                                               \
      for (std::size_t j = 0; j < n_; ++j)                                 \
        dst[j] = apply_unary(Op::OP, a[j]);                                \
    }                                                                      \
  } break;
      FUSEDP_UNARY_CASE(kNeg)
      FUSEDP_UNARY_CASE(kAbs)
      FUSEDP_UNARY_CASE(kSqrt)
      FUSEDP_UNARY_CASE_LIBM(kExp, fastmath::fast_exp)
      FUSEDP_UNARY_CASE_LIBM(kLog, fastmath::fast_log)
      FUSEDP_UNARY_CASE(kFloor)
#undef FUSEDP_UNARY_CASE
#undef FUSEDP_UNARY_CASE_LIBM
#define FUSEDP_BINARY_BODY(OP, SIMD_PRAGMA)                                \
  case Op::OP: {                                                           \
    const float* a = row(o.a);                                             \
    if (o.imm_side == 0) {                                                 \
      const float* b = row(o.b);                                           \
      SIMD_PRAGMA                                                          \
      for (std::size_t j = 0; j < n_; ++j)                                 \
        dst[j] = apply_binary(Op::OP, a[j], b[j]);                         \
    } else if (o.imm_side == 1) {                                          \
      const float im = o.imm;                                              \
      SIMD_PRAGMA                                                          \
      for (std::size_t j = 0; j < n_; ++j)                                 \
        dst[j] = apply_binary(Op::OP, a[j], im);                           \
    } else {                                                               \
      const float im = o.imm;                                              \
      SIMD_PRAGMA                                                          \
      for (std::size_t j = 0; j < n_; ++j)                                 \
        dst[j] = apply_binary(Op::OP, im, a[j]);                           \
    }                                                                      \
  } break;
#define FUSEDP_BINARY_CASE(OP) FUSEDP_BINARY_BODY(OP, FUSEDP_SIMD)
      FUSEDP_BINARY_CASE(kAdd)
      FUSEDP_BINARY_CASE(kSub)
      FUSEDP_BINARY_CASE(kMul)
      FUSEDP_BINARY_CASE(kDiv)
      FUSEDP_BINARY_CASE(kMin)
      FUSEDP_BINARY_CASE(kMax)
      case Op::kPow: {
        // Scalar libm by default (bit-exactness), vectorizable polynomial
        // kernel under fast_transcendentals — same imm-side forms as the
        // generic binary body.
        const float* a = row(o.a);
        if (fast_transcendentals) {
          if (o.imm_side == 0) {
            const float* b = row(o.b);
            FUSEDP_SIMD
            for (std::size_t j = 0; j < n_; ++j)
              dst[j] = fastmath::fast_pow(a[j], b[j]);
          } else if (o.imm_side == 1) {
            const float im = o.imm;
            FUSEDP_SIMD
            for (std::size_t j = 0; j < n_; ++j)
              dst[j] = fastmath::fast_pow(a[j], im);
          } else {
            const float im = o.imm;
            FUSEDP_SIMD
            for (std::size_t j = 0; j < n_; ++j)
              dst[j] = fastmath::fast_pow(im, a[j]);
          }
        } else {
          if (o.imm_side == 0) {
            const float* b = row(o.b);
            for (std::size_t j = 0; j < n_; ++j)
              dst[j] = apply_binary(Op::kPow, a[j], b[j]);
          } else if (o.imm_side == 1) {
            const float im = o.imm;
            for (std::size_t j = 0; j < n_; ++j)
              dst[j] = apply_binary(Op::kPow, a[j], im);
          } else {
            const float im = o.imm;
            for (std::size_t j = 0; j < n_; ++j)
              dst[j] = apply_binary(Op::kPow, im, a[j]);
          }
        }
      } break;
      FUSEDP_BINARY_CASE(kLt)
      FUSEDP_BINARY_CASE(kLe)
      FUSEDP_BINARY_CASE(kEq)
      FUSEDP_BINARY_CASE(kAnd)
      FUSEDP_BINARY_CASE(kOr)
#undef FUSEDP_BINARY_CASE
#undef FUSEDP_BINARY_BODY
    }
  }

  // Test-only planted miscompile: flips the low mantissa bit of one output
  // element of the compiled backend, exactly once per arming.  The
  // differential verifier must catch it with a full divergence record.
  FUSEDP_FAULT_CORRUPT("compile.row_value", out[0]);
}

}  // namespace fusedp
