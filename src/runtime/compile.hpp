// Plan-time stage compilation for the overlapped-tiling executor.
//
// The per-tile interpreter cost the executor used to pay — re-walking the
// raw expression DAG with memoization stamps, re-classifying every load's
// axes per row, and clamp-to-edge bounds checks on every load even for
// tiles that never touch a border — is paid once per ExecutablePlan here
// instead:
//
//  * compile_stage() lowers a stage body into a CompiledStage: a
//    topologically linearized op program with constant folding,
//    common-subexpression elimination and dead-node elimination, plus a
//    load table whose per-axis structure (fixed / row-varying / dynamic,
//    scale, offsets) is classified up front.
//  * build_region_template() precomputes a group's per-tile regions once:
//    all full (non-cleanup) tiles of a group have identical owned/required
//    shapes up to translation whenever every member dimension's tile step
//    maps to an integral stage-coordinate step.  The executor translates
//    the template per tile and falls back to the exact clamped computation
//    only for boundary and cleanup tiles.
//  * CompiledRowEvaluator executes the linear program one innermost-dim row
//    at a time.  Each load dispatches on a per-tile mask to either the
//    exact border-folding kernel or an unclamped interior kernel with no
//    per-element min/max.
//
// Everything here is bit-identical to eval_scalar_at by construction
// (folding uses the same apply_unary/apply_binary the interpreter uses);
// tests/test_compile.cpp asserts this on every registered pipeline.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "analysis/regions.hpp"
#include "runtime/eval.hpp"

namespace fusedp {

// One op of a linearized stage program.  Operand fields `a`/`b`/`c` are op
// slots (indices into CompiledStage::ops), not ExprRefs.
//
// Binary ops with one constant operand are emitted in immediate form: the
// row operand sits in `a`, the constant in `imm`, and `imm_side` records
// which side of the operator the constant occupies (operand order is
// preserved exactly — float ops are not bit-commutative for NaN payloads).
// This skips materializing a whole row per constant and halves the row
// reads of such ops.
struct CompiledOp {
  Op op = Op::kConst;
  float imm = 0.0f;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t c = -1;
  std::int32_t dim = -1;      // kCoord: dimension index
  std::int32_t load_id = -1;  // kLoad: index into CompiledStage::loads
  std::uint8_t imm_side = 0;  // 0: none, 1: dst = a op imm, 2: dst = imm op a
};

// Compile-time classification of one producer axis of a load.
struct CompiledAxis {
  AxisMap::Kind kind = AxisMap::Kind::kAffine;
  std::int32_t src_dim = 0;
  std::int32_t num = 1;
  std::int32_t den = 1;
  std::int64_t pre = 0;
  std::int64_t offset = 0;
  std::int32_t dyn_slot = -1;  // kDynamic: op slot holding the index row
  bool varies_row = false;     // affine on the innermost consumer dim
};

// A load with its axes pre-classified so the row kernel does no per-row
// axis dispatch.
struct CompiledLoad {
  std::int32_t prank = 0;
  Border border = Border::kClamp;
  bool any_dynamic = false;   // has a data-dependent axis: never unclamped
  std::int32_t vary_axis = -1;  // unique affine axis varying along the row
  bool vary_identity = false;   // vary axis is num==1, den==1, pre==0
  std::array<CompiledAxis, kMaxDims> axes;
};

struct CompiledStage {
  std::int32_t stage_id = -1;
  std::vector<CompiledOp> ops;  // topological: evaluate in order
  std::int32_t root = -1;       // slot producing the stage value
  // Indexed like Stage::loads; entries for loads unreachable from the body
  // stay default-initialized and are never evaluated.
  std::vector<CompiledLoad> loads;

  // Compilation statistics (tests + plan printing).
  std::int32_t source_nodes = 0;  // arena nodes before lowering
  std::int32_t folded = 0;        // ops removed by constant folding
  std::int32_t cse_hits = 0;      // ops removed as common subexpressions

  int num_slots() const { return static_cast<int>(ops.size()); }
  bool valid() const { return root >= 0; }
};

// Lowers `s` (kMap only; reductions have no body and yield an invalid
// CompiledStage).
CompiledStage compile_stage(const Stage& s);

// Per-group template of the overlapped-tiling regions, computed once at
// plan time for the nominal full tile at the grid origin (unclamped).
struct RegionTemplate {
  // True when every full tile's owned/required boxes are exact translates
  // of `stages`: every member stage dimension advances by the integral step
  // (tile_size * sd / sn) per tile, and every in-group access map commutes
  // with that translation.
  bool translatable = false;
  // Indexed by stage id; valid only for group members.
  std::vector<StageRegions> stages;
};

RegionTemplate build_region_template(const Pipeline& pl, NodeSet stages,
                                     const AlignResult& align,
                                     const std::vector<int>& order,
                                     const std::vector<std::int64_t>& tile_sizes,
                                     const std::vector<std::int64_t>& tiles_per_dim);

// Growth-only scratch: reallocation never copies or zero-fills.  Safe for
// the executor because every element of a tile's required region is written
// by the evaluator before anything reads it.
class ScratchArena {
 public:
  float* ensure(std::size_t n) {
    if (n > cap_) {
      data_.reset();  // free before allocating the replacement
      data_ = std::make_unique_for_overwrite<float[]>(n);
      cap_ = n;
    }
    return data_.get();
  }
  float* data() { return data_.get(); }
  std::size_t capacity() const { return cap_; }

 private:
  std::unique_ptr<float[]> data_;
  std::size_t cap_ = 0;
};

// Executes a CompiledStage one innermost-dimension row at a time.
// `load_clamped[i]` selects, per load, the exact border-folding kernel (1)
// or the unclamped interior kernel (0); the executor passes 0 only when the
// load's access box over the evaluated region provably stays inside the
// producer's domain, so both kernels read identical data.
class CompiledRowEvaluator {
 public:
  // Evaluates over {base[0..rank-2] fixed, last dim in [y0, y1]} (inclusive)
  // and writes the y1-y0+1 results to `out`.  `ctx.srcs` must be resolved
  // exactly as for RowEvaluator.
  void eval_row(const CompiledStage& cs, const StageEvalCtx& ctx,
                const unsigned char* load_clamped, const std::int64_t* base,
                std::int64_t y0, std::int64_t y1, float* out);

 private:
  void eval_load(const CompiledLoad& cl, const LoadSrc& src, bool clamped,
                 float* out);
  const float* slot_row(std::int32_t slot) const {
    return rows_ + static_cast<std::size_t>(slot) * stride_;
  }

  ScratchArena arena_;  // num_slots x row-length op results
  float* rows_ = nullptr;
  std::size_t stride_ = 0;
  const std::int64_t* base_ = nullptr;
  std::int64_t y0_ = 0;
  std::size_t n_ = 0;

  // Row-reuse key: consecutive eval_row calls for the same stage, arena,
  // span and innermost range (every row of one tile) can skip refilling
  // slots whose contents do not depend on the outer coordinates — constant
  // rows and the innermost-dim coordinate ramp.
  const CompiledStage* last_cs_ = nullptr;
  float* last_rows_ = nullptr;
  std::int64_t last_y0_ = 0;
  std::size_t last_n_ = 0;
};

}  // namespace fusedp
