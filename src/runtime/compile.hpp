// Plan-time stage compilation for the overlapped-tiling executor.
//
// The per-tile interpreter cost the executor used to pay — re-walking the
// raw expression DAG with memoization stamps, re-classifying every load's
// axes per row, and clamp-to-edge bounds checks on every load even for
// tiles that never touch a border — is paid once per ExecutablePlan here
// instead:
//
//  * compile_stage() lowers a stage body into a CompiledStage: a
//    topologically linearized op program with constant folding,
//    common-subexpression elimination and dead-node elimination, plus a
//    load table whose per-axis structure (fixed / row-varying / dynamic,
//    scale, offsets) is classified up front.
//  * A superop fusion pass peephole-fuses adjacent ops into wider kernels:
//    a single-use binary op from {add, sub, mul, min, max} feeding another
//    becomes one fused two-op pass (SuperOp::kBinChain — the canonical
//    instance is mul feeding add: a multiply-accumulate), and a single-use
//    comparison feeding a kSelect condition becomes one compare-and-blend
//    pass (SuperOp::kCmpBlend).  Default-mode superops are IEEE-bit-identical
//    to the unfused ops (the multiply and the accumulate stay two rounded
//    operations; the whole build compiles with -ffp-contract=off).  True
//    FMA contraction changes rounding and is therefore opt-in only, via
//    ExecOptions::allow_fma.
//  * Linear-scan row-register allocation maps op results onto a small
//    reusable pool of 64-byte-aligned, cache-line-padded row registers
//    carved from one arena, instead of one full row per op.  The per-row
//    working set of a stage shrinks to a handful of L1-resident rows.
//    Constant rows and the innermost coordinate ramp are pinned (their
//    registers are never recycled) so they can be filled once per tile.
//  * build_region_template() precomputes a group's per-tile regions once:
//    all full (non-cleanup) tiles of a group have identical owned/required
//    shapes up to translation whenever every member dimension's tile step
//    maps to an integral stage-coordinate step.  The executor translates
//    the template per tile and falls back to the exact clamped computation
//    only for boundary and cleanup tiles.
//  * CompiledRowEvaluator executes the linear program one innermost-dim row
//    at a time.  Each load dispatches on a per-tile mask to either the
//    exact border-folding kernel or an unclamped interior kernel with no
//    per-element min/max; unclamped stride-1 identity loads are forwarded
//    as direct pointers into the producer's data (no copy at all).
//
// Everything here is bit-identical to eval_scalar_at by construction
// (folding uses the same apply_unary/apply_binary the interpreter uses);
// tests/test_compile.cpp asserts this on every registered pipeline.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "analysis/regions.hpp"
#include "runtime/eval.hpp"
#include "support/vec.hpp"

namespace fusedp {

// Fused two-op kernels formed by the peephole pass over the linear program.
enum class SuperOp : std::uint8_t {
  kNone = 0,
  // Fused binary chain: dst = m ⊕ z (super_side 1) or z ⊕ m (super_side
  // 2), where ⊕ is `op` and m is the fused inner binary `op2` of `a` with
  // `b` (row) or `imm` (imm_side relative to the inner op).  z is row `c`,
  // or the immediate `imm2` when c < 0.  Both ops come from {add, sub, mul,
  // min, max}; the canonical instance is the multiply-accumulate
  // (op2 = mul, op = add/sub), the only combination allow_fma contracts.
  kBinChain,
  // Fused pair-pair: dst = (a op2 b) op (c op3 d) — super_side 2 swaps the
  // outer operands.  Formed by upgrading a row-row kBinChain whose
  // remaining row operand is itself a single-use row-row binary (e.g.
  // Sxx*Syy - Sxy*Sxy evaluates in one pass).
  kChainPair,
  // Fused weighted pair: dst = (a*imm) op (b*imm2), each multiply's
  // immediate side in imm_side / imm2_side.  The backbone of weighted taps
  // (c1*u + c2*v) in pyramid/interpolate-style stages.
  kWeighted,
  // Compare-and-blend: dst = cmp(l, r) ? c : d, where cmp is `op2` (kLt /
  // kLe / kEq) over row `a` and row `b` or `imm` (imm_side relative to the
  // comparison).
  kCmpBlend,
};

// One op of a linearized stage program.  Operand fields `a`/`b`/`c`/`d` are
// op slots (indices into CompiledStage::ops), not ExprRefs.
//
// Binary ops with one constant operand are emitted in immediate form: the
// row operand sits in `a`, the constant in `imm`, and `imm_side` records
// which side of the operator the constant occupies (operand order is
// preserved exactly — float ops are not bit-commutative for NaN payloads).
// This skips materializing a whole row per constant and halves the row
// reads of such ops.
struct CompiledOp {
  Op op = Op::kConst;
  Op op2 = Op::kConst;  // kBinChain: inner op; kCmpBlend: the comparison
  Op op3 = Op::kConst;  // kChainPair: the second pair's op
  SuperOp super = SuperOp::kNone;
  float imm = 0.0f;
  float imm2 = 0.0f;  // kBinChain: immediate outer operand (c < 0);
                      // kWeighted: the second multiply's immediate
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t c = -1;
  std::int32_t d = -1;        // kCmpBlend: false arm
  std::int32_t dim = -1;      // kCoord: dimension index
  std::int32_t load_id = -1;  // kLoad: index into CompiledStage::loads
  std::uint8_t imm_side = 0;  // 0: none, 1: dst = a op imm, 2: dst = imm op a
  std::uint8_t imm2_side = 0;   // kWeighted: imm side of the second multiply
  std::uint8_t super_side = 0;  // kBinChain: which side the inner op occupies
};

// Compile-time classification of one producer axis of a load.
struct CompiledAxis {
  AxisMap::Kind kind = AxisMap::Kind::kAffine;
  std::int32_t src_dim = 0;
  std::int32_t num = 1;
  std::int32_t den = 1;
  std::int64_t pre = 0;
  std::int64_t offset = 0;
  std::int32_t dyn_slot = -1;  // kDynamic: op slot holding the index row
  bool varies_row = false;     // affine on the innermost consumer dim
};

// A load with its axes pre-classified so the row kernel does no per-row
// axis dispatch.
struct CompiledLoad {
  std::int32_t prank = 0;
  Border border = Border::kClamp;
  bool any_dynamic = false;   // has a data-dependent axis: never unclamped
  std::int32_t vary_axis = -1;  // unique affine axis varying along the row
  bool vary_identity = false;   // vary axis is num==1, den==1, pre==0
  std::array<CompiledAxis, kMaxDims> axes;
};

struct CompiledStage {
  std::int32_t stage_id = -1;
  std::vector<CompiledOp> ops;  // topological: evaluate in order
  std::int32_t root = -1;       // slot producing the stage value
  // Indexed like Stage::loads; entries for loads unreachable from the body
  // stay default-initialized and are never evaluated.
  std::vector<CompiledLoad> loads;
  // Row-register assignment: reg[i] is the register op i writes, -1 for the
  // root (it writes the caller's row).  num_regs is the pool size; without
  // register allocation the assignment is the identity (one row per op).
  std::vector<std::int32_t> reg;
  std::int32_t num_regs = 0;
  // Enable the vectorized interior load kernels: unclamped stride-1
  // identity loads forward direct producer pointers instead of copying,
  // and the common scalings (den==1 strided, num==1/den==2 halving) take
  // closed-form SIMD gathers instead of the serial incremental stepper.
  // The index math is identical either way, so loaded bits are identical.
  bool vector_loads = false;

  // Compilation statistics (tests + plan printing).
  std::int32_t source_nodes = 0;  // arena nodes before lowering
  std::int32_t folded = 0;        // ops removed by constant folding
  std::int32_t cse_hits = 0;      // ops removed as common subexpressions
  std::int32_t fused = 0;         // superops formed by the peephole pass

  int num_slots() const { return static_cast<int>(ops.size()); }
  bool valid() const { return root >= 0; }
};

// Backend selection for compile_stage/lower.  The default produces the
// vectorized backend (superop fusion + row-register allocation); disabling
// both reproduces the plain one-row-per-op program, kept as the A/B
// baseline for bench_vector.  Outputs are bit-identical either way.
struct CompileOptions {
  bool fuse_superops = true;
  bool reg_alloc = true;
  bool vector_loads = true;  // forwarding + closed-form interior gathers
};

// Lowers `s` (kMap only; reductions have no body and yield an invalid
// CompiledStage).
CompiledStage compile_stage(const Stage& s, const CompileOptions& opts = {});

// Per-group template of the overlapped-tiling regions, computed once at
// plan time for the nominal full tile at the grid origin (unclamped).
struct RegionTemplate {
  // True when every full tile's owned/required boxes are exact translates
  // of `stages`: every member stage dimension advances by the integral step
  // (tile_size * sd / sn) per tile, and every in-group access map commutes
  // with that translation.
  bool translatable = false;
  // Indexed by stage id; valid only for group members.
  std::vector<StageRegions> stages;
};

RegionTemplate build_region_template(const Pipeline& pl, NodeSet stages,
                                     const AlignResult& align,
                                     const std::vector<int>& order,
                                     const std::vector<std::int64_t>& tile_sizes,
                                     const std::vector<std::int64_t>& tiles_per_dim);

// Executes a CompiledStage one innermost-dimension row at a time.
// `load_clamped[i]` selects, per load, the exact border-folding kernel (1)
// or the unclamped interior kernel (0); the executor passes 0 only when the
// load's access box over the evaluated region provably stays inside the
// producer's domain, so both kernels read identical data.
//
// `allow_fma` contracts mul→add/sub kBinChain superops into a single fused
// multiply-add (one rounding instead of two).  Off (the default) keeps
// results bit-identical to eval_scalar_at; on, results differ by at most
// the removed intermediate rounding per fused op.
class CompiledRowEvaluator {
 public:
  // Evaluates over {base[0..rank-2] fixed, last dim in [y0, y1]} (inclusive)
  // and writes the y1-y0+1 results to `out`.  `ctx.srcs` must be resolved
  // exactly as for RowEvaluator.
  void eval_row(const CompiledStage& cs, const StageEvalCtx& ctx,
                const unsigned char* load_clamped, const std::int64_t* base,
                std::int64_t y0, std::int64_t y1, float* out,
                bool allow_fma = false, bool fast_transcendentals = false);

  // Guard-arena mode (ExecOptions::guard_arena): canary lines around every
  // row register; check_guards() throws a coded Error on a smash — the
  // regalloc-aliasing/overrun class ASan cannot see inside one arena block.
  void set_guard_arena(bool on) { guard_.set_enabled(on); }
  void check_guards() const { guard_.check("CompiledRowEvaluator"); }

  // Arena high-water (floats) for the observability layer's scratch-bytes
  // accounting.
  std::size_t arena_floats() const { return arena_.capacity(); }

 private:
  // Evaluates a load into `out`; returns the row the load's value lives in.
  // For unclamped stride-1 identity loads with `may_forward`, that is a
  // pointer directly into the producer's data and `out` is untouched.
  const float* eval_load(const CompiledLoad& cl, const LoadSrc& src,
                         bool clamped, float* out, bool may_forward);
  const float* row(std::int32_t slot) const {
    return rowp_[static_cast<std::size_t>(slot)];
  }

  ScratchArena arena_;  // num_regs x padded-row-length registers
  RowGuard guard_;
  std::vector<const float*> rowp_;  // per-slot result row (register or
                                    // forwarded producer pointer)
  float* rows_ = nullptr;
  std::vector<std::int64_t> offs_;  // dynamic-gather flat-offset scratch row
  std::size_t stride_ = 0;  // padded row length (floats)
  const std::int64_t* base_ = nullptr;
  std::int64_t y0_ = 0;
  std::size_t n_ = 0;
  bool vec_ = false;  // CompiledStage::vector_loads of the current program

  // Row-reuse key: consecutive eval_row calls for the same stage, arena,
  // span and innermost range (every row of one tile) can skip refilling
  // registers whose contents do not depend on the outer coordinates —
  // constant rows and the innermost-dim coordinate ramp.  Those registers
  // are pinned by the allocator, so no other op recycles them mid-tile.
  const CompiledStage* last_cs_ = nullptr;
  float* last_rows_ = nullptr;
  std::int64_t last_y0_ = 0;
  std::size_t last_n_ = 0;
};

}  // namespace fusedp
