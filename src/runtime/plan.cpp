#include "runtime/plan.hpp"

#include <algorithm>

#include "support/checked.hpp"

namespace fusedp {

ExecutablePlan lower(const Pipeline& pl, const Grouping& grouping,
                     const CompileOptions& copts) {
  std::string why;
  FUSEDP_CHECK_CODE(validate_grouping(pl, grouping, &why),
                    ErrorCode::kInvalidSchedule, "invalid grouping: " + why);

  ExecutablePlan plan;
  plan.pipeline = &pl;
  plan.materialized.assign(static_cast<std::size_t>(pl.num_stages()), false);

  for (const GroupSchedule& gs : grouping.groups) {
    GroupPlan gp;
    gp.stages = gs.stages;
    gp.align = solve_alignment(pl, gs.stages);
    FUSEDP_CHECK(gp.align.constant, "unfusable group slipped validation");
    gp.stage_order = pl.graph().topo_order_of(gs.stages);

    gp.is_reduction = gs.stages.size() == 1 &&
                      pl.stage(gs.stages.first()).kind == StageKind::kReduction;
    gp.model_cost = gs.cost;

    const int n = gp.align.num_classes;
    gp.tile_sizes.assign(static_cast<std::size_t>(n), 0);
    for (int d = 0; d < n; ++d) {
      const std::int64_t ext =
          gp.align.class_extent[static_cast<std::size_t>(d)];
      const std::int64_t gran =
          gp.align.class_granularity[static_cast<std::size_t>(d)];
      std::int64_t t = ext;  // untiled unless the schedule says otherwise
      if (d < static_cast<int>(gs.tile_sizes.size()) &&
          gs.tile_sizes[static_cast<std::size_t>(d)] > 0)
        t = gs.tile_sizes[static_cast<std::size_t>(d)];
      // Classes missing from some member stage must stay untiled; tiling
      // them would redundantly recompute (and concurrently rewrite) the
      // class-less stages once per tile along the class.
      if (!gp.align.class_common.empty() &&
          !gp.align.class_common[static_cast<std::size_t>(d)])
        t = ext;
      t = std::clamp<std::int64_t>(t, 1, ext);
      t = ceil_div(t, gran) * gran;  // keep tile edges on integer coords
      gp.tile_sizes[static_cast<std::size_t>(d)] = t;
    }
    if (gp.is_reduction) {
      // Reductions run whole-domain; the tile grid is a single tile.
      for (int d = 0; d < n; ++d)
        gp.tile_sizes[static_cast<std::size_t>(d)] =
            gp.align.class_extent[static_cast<std::size_t>(d)];
    }
    gp.tiles_per_dim.assign(static_cast<std::size_t>(n), 1);
    gp.total_tiles = 1;
    for (int d = 0; d < n; ++d) {
      gp.tiles_per_dim[static_cast<std::size_t>(d)] =
          ceil_div(gp.align.class_extent[static_cast<std::size_t>(d)],
                   gp.tile_sizes[static_cast<std::size_t>(d)]);
      // Tile-count math over user extents: wrap here would make the
      // executor's tile loop nonsense, so overflow is a coded error.
      gp.total_tiles = mul_or_throw(
          gp.total_tiles, gp.tiles_per_dim[static_cast<std::size_t>(d)],
          "plan tile count", ErrorCode::kInvalidSchedule);
    }

    if (!gp.is_reduction)
      gp.region_template =
          build_region_template(pl, gp.stages, gp.align, gp.stage_order,
                                gp.tile_sizes, gp.tiles_per_dim);

    gs.stages.for_each([&](int s) {
      if (is_liveout_of(pl, gs.stages, s))
        plan.materialized[static_cast<std::size_t>(s)] = true;
    });
    plan.groups.push_back(std::move(gp));
  }

  // Lower each map stage's body once per plan.
  plan.compiled.resize(static_cast<std::size_t>(pl.num_stages()));
  for (int s = 0; s < pl.num_stages(); ++s)
    if (pl.stage(s).kind == StageKind::kMap)
      plan.compiled[static_cast<std::size_t>(s)] =
          compile_stage(pl.stage(s), copts);

  // Order groups topologically (producers before consumers).
  std::vector<NodeSet> sets;
  sets.reserve(plan.groups.size());
  for (const GroupPlan& g : plan.groups) sets.push_back(g.stages);
  std::vector<GroupPlan> ordered;
  std::vector<bool> placed(plan.groups.size(), false);
  while (ordered.size() < plan.groups.size()) {
    bool progress = false;
    for (std::size_t i = 0; i < plan.groups.size(); ++i) {
      if (placed[i]) continue;
      const NodeSet preds =
          pl.graph().predecessors_of_set(plan.groups[i].stages);
      bool ready = true;
      for (std::size_t j = 0; j < plan.groups.size(); ++j)
        if (!placed[j] && j != i && preds.intersects(plan.groups[j].stages))
          ready = false;
      if (ready) {
        ordered.push_back(std::move(plan.groups[i]));
        placed[i] = true;
        progress = true;
      }
    }
    FUSEDP_CHECK(progress, "group graph has a cycle");
  }
  plan.groups = std::move(ordered);
  return plan;
}

}  // namespace fusedp
