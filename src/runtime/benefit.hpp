// Cost-aware never-pessimize fusion gate.
//
// The vector backend (superop fusion + register allocation + SIMD loads) is
// bit-identical to the plain compiled form, but not unconditionally faster:
// groups whose rows are dominated by scalar-libm transcendentals or by
// data-dependent gathers can see the vector bookkeeping cost more than the
// kernels save (BENCH_vector.json has carried exactly such losses).  In the
// spirit of the source paper's cost-model discipline — fusion decisions are
// benefit-gated, never assumed — this module:
//
//   1. statically profiles each group's compiled programs
//      (analyze_group_benefit) and flags the groups whose vector benefit is
//      in doubt, with a cause (libm-fallback / gather-bound) shared with
//      bench_vector's regression attribution;
//   2. micro-measures the flagged groups at plan time — a few short row
//      evaluations of each member stage over synthetic buffers, vector
//      compilation vs. plain — and demotes the group to the plain form when
//      the vector choice loses by more than a small margin.
//
// Both compiled forms compute bit-identical values, so the gate changes
// speed only; the verdicts are persisted on GroupPlan::verdict for the plan
// printer, benches and tests.
#pragma once

#include "runtime/plan.hpp"

namespace fusedp {

// Static per-group profile of the compiled programs.
struct GroupBenefit {
  bool suspect = false;            // micro-measurement warranted
  BenefitCause cause = BenefitCause::kNone;
  std::int32_t libm_ops = 0;       // kExp/kLog/kPow op slots
  std::int32_t dynamic_loads = 0;  // loads with a data-dependent axis
  std::int32_t upsampled_axes = 0; // row-varying affine axes with den > 1
  std::int32_t total_ops = 0;
  std::int32_t fused = 0;          // fused superops across member stages
};

// Profiles `g` against the plan's compiled stages.  `fast_transcendentals`
// mirrors the executor flag: with the approximate kernels enabled the libm
// suspicion disappears (the transcendental rows vectorize).
GroupBenefit analyze_group_benefit(const ExecutablePlan& plan,
                                   const GroupPlan& g,
                                   bool fast_transcendentals);

// Applies the gate to every non-reduction group of `plan`: statically
// suspect groups are micro-measured and, when the vector compilation loses
// to the plain form by more than ~5%, their member stages are recompiled
// with the plain CompileOptions.  Fills GroupPlan::verdict either way.
// `allow_fma`/`fast_transcendentals` are the executor's row-kernel flags,
// passed through so the measurement runs the same kernels the executor
// will.
void apply_never_pessimize(ExecutablePlan& plan, bool allow_fma,
                           bool fast_transcendentals);

}  // namespace fusedp
