// Renders an ExecutablePlan as pseudo-code resembling the C++ PolyMage
// generates (paper Figure 3): parallel fused tile-space loops, per-tile
// scratch buffers, intra-tile stage loops, and live-out publication.
#pragma once

#include <string>

#include "runtime/plan.hpp"

namespace fusedp {

std::string plan_to_string(const ExecutablePlan& plan);

}  // namespace fusedp
