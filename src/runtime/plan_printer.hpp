// Renders an ExecutablePlan as pseudo-code resembling the C++ PolyMage
// generates (paper Figure 3): parallel fused tile-space loops, per-tile
// scratch buffers, intra-tile stage loops, and live-out publication.
//
// With a RunTrace (observe layer), each group header also carries a
// measured column — wall ms and redundant-recompute share joined against
// the plan's predicted cost — so one printout answers both "what will run"
// and "what did it cost last time".
#pragma once

#include <string>

#include "observe/observe.hpp"
#include "runtime/plan.hpp"

namespace fusedp {

std::string plan_to_string(const ExecutablePlan& plan,
                           const observe::RunTrace* trace = nullptr);

}  // namespace fusedp
