#include "runtime/benefit.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "ir/pipeline.hpp"
#include "support/buffer.hpp"

namespace fusedp {

const char* benefit_cause_name(BenefitCause c) {
  switch (c) {
    case BenefitCause::kNone: return "none";
    case BenefitCause::kLibmFallback: return "libm-fallback";
    case BenefitCause::kGatherBound: return "gather-bound";
    case BenefitCause::kFusionPessimized: return "fusion-pessimized";
  }
  return "?";
}

GroupBenefit analyze_group_benefit(const ExecutablePlan& plan,
                                   const GroupPlan& g,
                                   bool fast_transcendentals) {
  GroupBenefit b;
  for (int s : g.stage_order) {
    const CompiledStage& cs = plan.compiled[static_cast<std::size_t>(s)];
    if (!cs.valid()) continue;
    b.total_ops += cs.num_slots();
    b.fused += cs.fused;
    for (const CompiledOp& o : cs.ops) {
      if (o.op == Op::kExp || o.op == Op::kLog || o.op == Op::kPow)
        ++b.libm_ops;
    }
    for (const CompiledLoad& cl : cs.loads) {
      if (cl.prank == 0) continue;  // unreachable load, never evaluated
      if (cl.any_dynamic) ++b.dynamic_loads;
      for (int k = 0; k < cl.prank; ++k) {
        const CompiledAxis& m = cl.axes[static_cast<std::size_t>(k)];
        if (m.kind == AxisMap::Kind::kAffine && m.varies_row && m.den > 1)
          ++b.upsampled_axes;
      }
    }
  }
  // Suspicion rules.  Scalar libm calls inside the vector backend leave the
  // transcendental rows serial while the vector bookkeeping still costs;
  // dynamic gathers bound throughput on address math rather than the fused
  // arithmetic the vector form accelerates.  Everything else has never
  // measured below the plain form, so it is not worth the micro-run.
  if (b.libm_ops > 0 && !fast_transcendentals) {
    b.suspect = true;
    b.cause = BenefitCause::kLibmFallback;
  } else if (b.dynamic_loads > 0) {
    b.suspect = true;
    b.cause = BenefitCause::kGatherBound;
  }
  return b;
}

namespace {

std::int64_t fdiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b, r = a % b;
  return r != 0 && ((r < 0) != (b < 0)) ? q - 1 : q;
}

// Synthetic evaluation context for one stage: per-load buffers sized from
// the compiled axis ranges over the measured rows, filled with a positive
// deterministic pattern (safe under log/pow/div).  All loads run through
// the clamped kernels, so any access the program computes stays in bounds
// regardless of the synthetic extents.
struct StageHarness {
  std::vector<Buffer> bufs;  // storage behind ctx.srcs
  StageEvalCtx ctx;
  std::vector<unsigned char> clamped;
  std::vector<float> out;
  std::int64_t base[kMaxDims] = {0, 0, 0, 0};
  std::int64_t y0 = 0, y1 = 0;
};

bool build_harness(const Stage& st, const CompiledStage& cs,
                   StageHarness& h) {
  const int rank = st.rank();
  if (rank < 1 || rank > kMaxDims) return false;
  const Box& dom = st.domain;
  for (int d = 0; d < rank; ++d) h.base[d] = dom.lo[d];
  const std::int64_t w = std::min<std::int64_t>(256, dom.extent(rank - 1));
  if (w < 1) return false;
  h.y0 = dom.lo[rank - 1];
  h.y1 = h.y0 + w - 1;
  h.ctx.stage = &st;
  h.ctx.srcs.resize(cs.loads.size());
  h.bufs.resize(cs.loads.size());
  h.clamped.assign(cs.loads.size(), 1u);
  for (std::size_t li = 0; li < cs.loads.size(); ++li) {
    const CompiledLoad& cl = cs.loads[li];
    if (cl.prank == 0) continue;  // unreachable: never evaluated
    std::vector<std::int64_t> extents;
    std::int64_t lo[kMaxDims] = {0, 0, 0, 0};
    for (int k = 0; k < cl.prank; ++k) {
      const CompiledAxis& m = cl.axes[static_cast<std::size_t>(k)];
      std::int64_t vlo = 0, vhi = 0;
      if (m.kind == AxisMap::Kind::kDynamic) {
        vlo = 0;
        vhi = 15;  // dyn rows are clamped into the domain either way
      } else if (m.kind == AxisMap::Kind::kConstant || m.num == 0) {
        vlo = vhi = m.offset;
      } else {
        const std::int64_t c0 = m.varies_row ? h.y0 : h.base[m.src_dim];
        const std::int64_t c1 = m.varies_row ? h.y1 : h.base[m.src_dim];
        const std::int64_t v0 = fdiv(c0 * m.num + m.pre, m.den) + m.offset;
        const std::int64_t v1 = fdiv(c1 * m.num + m.pre, m.den) + m.offset;
        vlo = std::min(v0, v1);
        vhi = std::max(v0, v1);
      }
      lo[k] = vlo;
      extents.push_back(std::clamp<std::int64_t>(vhi - vlo + 1, 1, 1024));
    }
    h.bufs[li].reset(extents);
    float* d = h.bufs[li].data();
    const std::int64_t vol = h.bufs[li].volume();
    for (std::int64_t i = 0; i < vol; ++i) {
      const float t = static_cast<float>(i) * 0.6180339887f;
      d[i] = 0.25f + 0.5f * (t - std::floor(t));
    }
    LoadSrc& src = h.ctx.srcs[li];
    src.view = h.bufs[li].view();
    src.domain.rank = cl.prank;
    for (int k = 0; k < cl.prank; ++k) {
      src.view.origin[k] = lo[k];
      src.domain.lo[k] = lo[k];
      src.domain.hi[k] = lo[k] + src.view.extent[k] - 1;
    }
  }
  h.out.assign(static_cast<std::size_t>(w), 0.0f);
  return true;
}

double measure_stage_ms(const CompiledStage& cs, StageHarness& h,
                        bool allow_fma, bool fast_transcendentals) {
  CompiledRowEvaluator ev;
  const std::int64_t w = h.y1 - h.y0 + 1;
  const int calls = std::max(4, static_cast<int>(16384 / w));
  // Warm-up covers the evaluator's arena growth and icache.
  ev.eval_row(cs, h.ctx, h.clamped.data(), h.base, h.y0, h.y1, h.out.data(),
              allow_fma, fast_transcendentals);
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < calls; ++c)
      ev.eval_row(cs, h.ctx, h.clamped.data(), h.base, h.y0, h.y1,
                  h.out.data(), allow_fma, fast_transcendentals);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best / calls;
}

}  // namespace

void apply_never_pessimize(ExecutablePlan& plan, bool allow_fma,
                           bool fast_transcendentals) {
  const Pipeline& pl = *plan.pipeline;
  const CompileOptions plain{/*fuse_superops=*/false, /*reg_alloc=*/false,
                             /*vector_loads=*/false};
  // Demotion needs a real, repeatable loss: micro-runs on short rows are
  // noisy, and a wrong demotion costs real speedup while a wrong keep costs
  // only what the micro-run already showed to be small.
  constexpr double kDemoteMargin = 1.05;
  for (GroupPlan& g : plan.groups) {
    if (g.is_reduction) continue;
    const GroupBenefit b = analyze_group_benefit(plan, g,
                                                 fast_transcendentals);
    g.verdict.cause = b.cause;
    if (!b.suspect) continue;
    double vec_ms = 0.0, sca_ms = 0.0;
    bool measured = false;
    for (int s : g.stage_order) {
      const CompiledStage& cs = plan.compiled[static_cast<std::size_t>(s)];
      if (!cs.valid()) continue;
      const Stage& st = pl.stage(s);
      StageHarness h;
      if (!build_harness(st, cs, h)) continue;
      const CompiledStage plain_cs = compile_stage(st, plain);
      vec_ms += measure_stage_ms(cs, h, allow_fma, fast_transcendentals);
      sca_ms += measure_stage_ms(plain_cs, h, allow_fma,
                                 fast_transcendentals);
      measured = true;
    }
    if (!measured) continue;
    g.verdict.measured = true;
    g.verdict.vector_ms = vec_ms;
    g.verdict.scalar_ms = sca_ms;
    if (vec_ms > sca_ms * kDemoteMargin) {
      for (int s : g.stage_order) {
        CompiledStage& cs = plan.compiled[static_cast<std::size_t>(s)];
        if (cs.valid()) cs = compile_stage(pl.stage(s), plain);
      }
      g.verdict.demoted = true;
    }
  }
}

}  // namespace fusedp
