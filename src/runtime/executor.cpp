#include "runtime/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <iterator>
#include <mutex>
#include <new>

#include "runtime/benefit.hpp"
#include "support/fault.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fusedp {

namespace {

BufferView view_of_region(float* data, const Box& region) {
  BufferView v;
  v.data = data;
  v.rank = region.rank;
  std::int64_t stride = 1;
  for (int d = region.rank - 1; d >= 0; --d) {
    v.origin[d] = region.lo[d];
    v.extent[d] = region.extent(d);
    v.stride[d] = stride;
    stride *= region.extent(d);
  }
  return v;
}

// Iterates the outer dims of `box` (all but the last); calls fn(coords) with
// coords[last] set to box.lo[last].
template <typename Fn>
void for_each_row(const Box& box, Fn&& fn) {
  std::int64_t c[kMaxDims];
  for (int d = 0; d < box.rank; ++d) c[d] = box.lo[d];
  const int last = box.rank - 1;
  for (;;) {
    fn(c);
    int d = last - 1;
    for (; d >= 0; --d) {
      if (++c[d] <= box.hi[d]) break;
      c[d] = box.lo[d];
    }
    if (d < 0) break;
  }
}

}  // namespace

namespace {

BufferView dense_view_over(float* data, const Box& domain) {
  BufferView v;
  v.data = data;
  v.rank = domain.rank;
  std::int64_t stride = 1;
  for (int d = domain.rank - 1; d >= 0; --d) {
    v.origin[d] = domain.lo[d];
    v.extent[d] = domain.extent(d);
    v.stride[d] = stride;
    stride *= domain.extent(d);
  }
  return v;
}

}  // namespace

namespace {

// Reuses `b` when it already matches `extents`, else allocates a fresh
// buffer and moves it in.  The temporary keeps `b` intact if the
// allocation throws, so a failed prepare() never leaves a buffer in a
// moved-from or reallocated-but-unzeroed state.
void ensure_buffer(Buffer& b, const std::vector<std::int64_t>& extents) {
  bool match = !b.empty() && b.rank() == static_cast<int>(extents.size());
  for (int d = 0; match && d < b.rank(); ++d)
    if (b.extent(d) != extents[static_cast<std::size_t>(d)]) match = false;
  if (match) return;
  FUSEDP_FAULT_POINT("workspace.prepare");
  Buffer fresh(extents);
  b = std::move(fresh);
}

}  // namespace

// Charges the governor for what prepare() is about to hold.  `target_floats`
// is the simulated post-prepare footprint; the delta over the current charge
// is admitted before a single float is allocated, so a budget rejection
// propagates with the workspace bit-for-bit unchanged.
void Workspace::admit(std::int64_t target_floats) {
  const std::int64_t current =
      allocated_floats() * static_cast<std::int64_t>(sizeof(float));
  const std::int64_t target =
      target_floats * static_cast<std::int64_t>(sizeof(float));
  // Admission only ever grows the charge here; shrinks are settled by
  // resync_charge() after the allocations have actually happened.
  charge_.adjust_to(std::max(current, std::max(target, charge_.bytes())));
}

// Settles the charge to the bytes actually held — after a successful
// prepare (simulation and reality agree, but re-deriving is cheap and
// self-correcting) and after a failed one (part-done allocations).  Only
// ever shrinks or holds the charge post-admit, so it cannot throw.
void Workspace::resync_charge() noexcept {
  try {
    charge_.adjust_to(allocated_floats() *
                      static_cast<std::int64_t>(sizeof(float)));
  } catch (...) {
    // Unreachable growth rejection; keep the (over-)charge rather than leak
    // accounting.
  }
}

// Exception safety: views_ are invalidated up front and only re-published
// after every allocation has succeeded, so a bad_alloc mid-prepare leaves
// the workspace with no half-initialized (dangling or stale) views — it
// stays destructible and a later prepare()/run() starts from a clean slate.
void Workspace::prepare(const ExecutablePlan& plan) {
  const Pipeline& pl = *plan.pipeline;
  const std::size_t n = static_cast<std::size_t>(pl.num_stages());
  // Simulate the post-prepare footprint: materialized stages end up at
  // their domain volume (reused or freshly allocated); everything else —
  // stale buffers from a previous plan, pooled slots — is kept as-is.
  std::int64_t target = 0;
  for (int s = 0; s < pl.num_stages(); ++s) {
    const std::size_t si = static_cast<std::size_t>(s);
    if (plan.materialized[si])
      target += pl.stage(s).domain.volume();
    else if (si < buffers_.size())
      target += buffers_[si].volume();
  }
  for (const Buffer& b : slots_) target += b.volume();
  admit(target);  // throws kResourceExhausted before any allocation

  views_.assign(n, BufferView{});
  buffers_.resize(n);
  try {
    for (int s = 0; s < pl.num_stages(); ++s) {
      if (!plan.materialized[static_cast<std::size_t>(s)]) continue;
      ensure_buffer(buffers_[static_cast<std::size_t>(s)],
                    pl.stage(s).domain.extents());
    }
  } catch (...) {
    resync_charge();
    throw;
  }
  for (int s = 0; s < pl.num_stages(); ++s)
    if (plan.materialized[static_cast<std::size_t>(s)])
      views_[static_cast<std::size_t>(s)] =
          buffers_[static_cast<std::size_t>(s)].view();
  resync_charge();
}

void Workspace::prepare(const ExecutablePlan& plan,
                        const StorageAssignment& storage) {
  const Pipeline& pl = *plan.pipeline;
  const std::size_t n = static_cast<std::size_t>(pl.num_stages());
  std::int64_t target = 0;
  for (std::size_t i = 0; i < storage.slot_floats.size(); ++i) {
    const std::int64_t have = i < slots_.size() ? slots_[i].volume() : 0;
    target += std::max(have, storage.slot_floats[i]);
  }
  for (int s = 0; s < pl.num_stages(); ++s) {
    const std::size_t si = static_cast<std::size_t>(s);
    if (plan.materialized[si] && storage.slot[si] < 0)
      target += pl.stage(s).domain.volume();
    else if (si < buffers_.size())
      target += buffers_[si].volume();
  }
  admit(target);

  views_.assign(n, BufferView{});
  buffers_.resize(n);
  slots_.resize(storage.slot_floats.size());
  try {
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (slots_[i].empty() || slots_[i].volume() < storage.slot_floats[i]) {
        FUSEDP_FAULT_POINT("workspace.prepare");
        Buffer fresh({storage.slot_floats[i]});
        slots_[i] = std::move(fresh);
      }
    for (int s = 0; s < pl.num_stages(); ++s) {
      if (!plan.materialized[static_cast<std::size_t>(s)]) continue;
      if (storage.slot[static_cast<std::size_t>(s)] < 0)
        ensure_buffer(buffers_[static_cast<std::size_t>(s)],
                      pl.stage(s).domain.extents());
    }
  } catch (...) {
    resync_charge();
    throw;
  }
  for (int s = 0; s < pl.num_stages(); ++s) {
    if (!plan.materialized[static_cast<std::size_t>(s)]) continue;
    const int slot = storage.slot[static_cast<std::size_t>(s)];
    if (slot < 0) {
      views_[static_cast<std::size_t>(s)] =
          buffers_[static_cast<std::size_t>(s)].view();
    } else {
      views_[static_cast<std::size_t>(s)] = dense_view_over(
          slots_[static_cast<std::size_t>(slot)].data(), pl.stage(s).domain);
    }
  }
  resync_charge();
}

std::int64_t Workspace::allocated_floats() const {
  std::int64_t total = 0;
  for (const Buffer& b : buffers_) total += b.volume();
  for (const Buffer& b : slots_) total += b.volume();
  return total;
}

Executor::Executor(const Pipeline& pl, const Grouping& grouping,
                   ExecOptions opts)
    : pl_(&pl),
      plan_(lower(pl, grouping,
                  CompileOptions{/*fuse_superops=*/opts.vector_backend &&
                                     opts.superop_fusion,
                                 /*reg_alloc=*/opts.vector_backend,
                                 /*vector_loads=*/opts.vector_backend})),
      opts_(opts) {
  FUSEDP_CHECK_CODE(opts_.num_threads >= 1, ErrorCode::kInvalidArgument,
                    "need at least one thread");
  // Cost-aware never-pessimize gate: vector-backend groups whose static
  // profile casts doubt on the vector benefit are micro-measured and demoted
  // back to the plain compiled form when they lose (runtime/benefit.hpp).
  if (opts_.never_pessimize && opts_.compiled && opts_.vector_backend &&
      opts_.mode == EvalMode::kRow) {
    apply_never_pessimize(plan_, opts_.allow_fma, opts_.fast_transcendentals);
  }
  if (opts_.pooled_storage) storage_ = assign_storage(plan_);
}

namespace {

std::string joined_stage_names(const Pipeline& pl, const GroupPlan& g) {
  std::string names;
  for (int s : g.stage_order) {
    if (!names.empty()) names += ",";
    names += pl.stage(s).name;
  }
  return names;
}

}  // namespace

namespace {

// Serial-side deadline probe, used before reduction groups (which have no
// tile boundaries to sample at).
void check_deadline(const Deadline* deadline) {
  if (deadline != nullptr && deadline->expired())
    throw Error("run deadline exceeded", ErrorCode::kDeadlineExceeded);
}

}  // namespace

void Executor::run(const std::vector<Buffer>& inputs, Workspace& ws,
                   observe::Observer* obs, const Deadline* deadline) const {
  RunKnobs knobs;
  knobs.obs = obs;
  knobs.deadline = deadline;
  run(inputs, ws, knobs);
}

void Executor::run(const std::vector<Buffer>& inputs, Workspace& ws,
                   const RunKnobs& knobs) const {
  observe::Observer* obs = knobs.obs;
  const Deadline* deadline = knobs.deadline;
  const int lanes = knobs.lanes > 0 ? knobs.lanes : opts_.num_threads;
  FUSEDP_CHECK_CODE(static_cast<int>(inputs.size()) == pl_->num_inputs(),
                    ErrorCode::kInvalidArgument, "input count mismatch");
  for (int i = 0; i < pl_->num_inputs(); ++i)
    FUSEDP_CHECK_CODE(inputs[static_cast<std::size_t>(i)].volume() ==
                          pl_->input(i).domain.volume(),
                      ErrorCode::kInvalidArgument,
                      "input " + pl_->input(i).name + " extent mismatch");
  if (opts_.pooled_storage)
    ws.prepare(plan_, storage_);
  else
    ws.prepare(plan_);

  if (obs == nullptr) {
    // Unobserved fast path: no clock reads, no records, bit-identical work.
    for (const GroupPlan& g : plan_.groups) {
      if (g.is_reduction) {
        check_deadline(deadline);
        run_reduction(g, inputs, ws);
      } else {
        run_group(g, inputs, ws, nullptr, nullptr, false, deadline, lanes,
                  knobs.priority);
      }
    }
    return;
  }

  observe::RunMeta meta;
  meta.pipeline = pl_->name();
  meta.num_groups = static_cast<int>(plan_.groups.size());
  meta.num_threads = lanes;
  obs->on_run_begin(meta);
  const bool want_tiles = obs->want_tile_events();

  WallTimer epoch;
  int gi = 0;
  for (const GroupPlan& g : plan_.groups) {
    observe::GroupRecord rec;
    rec.index = gi++;
    rec.stages = joined_stage_names(*pl_, g);
    rec.is_reduction = g.is_reduction;
    rec.total_tiles = g.total_tiles;
    rec.predicted_cost = g.model_cost;
    for (int s : g.stage_order) {
      const CompiledStage& cs = plan_.compiled[static_cast<std::size_t>(s)];
      if (!cs.valid()) continue;
      rec.row_registers += cs.num_regs;
      rec.fused_superops += cs.fused;
    }
    rec.t_begin = epoch.seconds();
    if (g.is_reduction) {
      check_deadline(deadline);
      run_reduction(g, inputs, ws);
      const std::int64_t vol = pl_->stage(g.stages.first()).domain.volume();
      rec.tiles_run = 1;
      rec.computed_elems = vol;
      rec.owned_elems = vol;
    } else {
      run_group(g, inputs, ws, &rec, &epoch, want_tiles, deadline, lanes,
                knobs.priority);
    }
    rec.t_end = epoch.seconds();
    rec.seconds = rec.t_end - rec.t_begin;
    obs->on_group_end(rec);
  }

  observe::RunRecord rr;
  rr.meta = std::move(meta);
  rr.seconds = epoch.seconds();
  obs->on_run_end(rr);
}

void Executor::run_reduction(const GroupPlan& g,
                             const std::vector<Buffer>& inputs,
                             Workspace& ws) const {
  const int sid = g.stages.first();
  const Stage& st = pl_->stage(sid);
  ReductionCtx ctx;
  for (const Access& a : st.loads) {
    if (a.producer.is_input) {
      ctx.inputs.push_back(inputs[static_cast<std::size_t>(a.producer.id)].view());
    } else {
      FUSEDP_CHECK(ws.has(a.producer.id),
                   "reduction input not materialized");
      ctx.inputs.push_back(ws.stage_view(a.producer.id));
    }
  }
  const BufferView out = ws.stage_view(sid);
  std::fill(out.data, out.data + out.volume(), 0.0f);
  ctx.out = out;
  ctx.num_threads = opts_.num_threads;
  st.reduction(ctx);
}

namespace {

// Translates a captured worker exception into a coded fusedp::Error on the
// serial side.  fusedp errors pass through unchanged.
[[noreturn]] void rethrow_tile_error(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const Error&) {
    throw;
  } catch (const std::bad_alloc&) {
    throw Error("tile execution failed: allocation failed",
                ErrorCode::kAllocationFailed);
  } catch (const std::exception& e) {
    throw Error(std::string("tile execution failed: ") + e.what(),
                ErrorCode::kInternal);
  }
}

}  // namespace

namespace {

// Per-thread observability log: appended to without synchronization inside
// the parallel region (one slot per thread), merged serially at group end.
struct ThreadLog {
  std::vector<observe::TileEvent> tiles;
  std::int64_t tiles_run = 0;
  std::int64_t interior_tiles = 0;
  std::int64_t computed_elems = 0;
  std::int64_t owned_elems = 0;
  std::int64_t scratch_bytes = 0;
  std::int64_t steals = 0;    // pool backend: cross-lane steals by this lane
  double queue_wait = 0.0;    // pool backend: dispatch-queue wait (seconds)
};

}  // namespace

void Executor::run_group(const GroupPlan& g, const std::vector<Buffer>& inputs,
                         Workspace& ws, observe::GroupRecord* rec,
                         const WallTimer* epoch, bool want_tiles,
                         const Deadline* deadline, int lanes,
                         TaskPriority priority) const {
  const Pipeline& pl = *pl_;
  const int ncls = g.align.num_classes;
  const std::int64_t total = g.total_tiles;
  const bool observing = rec != nullptr;
  const int nlanes = std::max(1, lanes);
  std::vector<ThreadLog> logs;
  if (observing) logs.resize(static_cast<std::size_t>(nlanes));

  // An exception escaping an OpenMP structured block is std::terminate, so
  // nothing may propagate out of the parallel region or the worksharing
  // loop body.  Instead: a once-latch captures the first exception, a
  // cancellation flag makes the remaining tiles no-ops (the loop itself
  // must still run to completion on every thread), and the serial side
  // rethrows after the region joins.
  std::exception_ptr first_error = nullptr;
  std::mutex error_mu;
  std::atomic<bool> cancelled{false};
  auto capture_current_exception = [&]() noexcept {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error == nullptr) first_error = std::current_exception();
    }
    cancelled.store(true, std::memory_order_relaxed);
  };

  std::size_t max_loads = 0;
  for (int s : g.stage_order)
    max_loads = std::max(max_loads, pl.stage(s).loads.size());

  // One lane's whole life, shared verbatim by the OpenMP worksharing path
  // and the pool claim loop: construct per-lane state, run tiles handed out
  // by `drive` (which owns the iteration policy), record arena high-water.
  // The tile body is identical on both paths, so outputs are bit-identical
  // by construction — only who hands out the indices differs.
  auto lane_main = [&](int tid, auto&& drive) {
    ThreadLog* log =
        observing && tid < static_cast<int>(logs.size())
            ? &logs[static_cast<std::size_t>(tid)]
            : nullptr;
    // Per-thread state: scratch per stage + evaluators + reused region
    // storage.  Construction allocates, so it is guarded too; a thread
    // whose state failed to initialize simply skips its tiles.
    std::vector<ScratchArena> scratch;
    std::vector<char> in_global;
    std::vector<BufferView> tile_view;
    std::vector<StageRegions> regions;
    std::vector<unsigned char> load_clamped;
    RowEvaluator rowev;
    CompiledRowEvaluator crowev;
    rowev.set_guard_arena(opts_.guard_arena);
    crowev.set_guard_arena(opts_.guard_arena);
    StageEvalCtx ctx;
    bool thread_ok = true;
    try {
      scratch.resize(static_cast<std::size_t>(pl.num_stages()));
      in_global.assign(static_cast<std::size_t>(pl.num_stages()), 0);
      tile_view.resize(static_cast<std::size_t>(pl.num_stages()));
      regions.resize(static_cast<std::size_t>(pl.num_stages()));
      load_clamped.assign(max_loads, 1);
    } catch (...) {
      capture_current_exception();
      thread_ok = false;
    }

    auto run_tile = [&](std::int64_t t, int worker, bool stolen,
                        double queue_wait) {
      if (!thread_ok || cancelled.load(std::memory_order_relaxed)) return;
      const double t_begin = log != nullptr ? epoch->seconds() : 0.0;
      try {
        // Cooperative cancellation: one steady_clock read per tile when a
        // deadline is armed.  The throw rides the same latch as any tile
        // fault — remaining tiles become no-ops, the region joins, and the
        // serial side rethrows the coded error with the workspace intact.
        if (deadline != nullptr && deadline->expired())
          throw Error("run deadline exceeded at tile " + std::to_string(t),
                      ErrorCode::kDeadlineExceeded);
        FUSEDP_FAULT_POINT("executor.tile_eval");
        // Decode tile index into a reference-space box.
        Box tile;
        tile.rank = ncls;
        bool full = true;
        std::int64_t rem = t;
        for (int d = ncls - 1; d >= 0; --d) {
          const std::int64_t nd = g.tiles_per_dim[static_cast<std::size_t>(d)];
          const std::int64_t idx = rem % nd;
          rem /= nd;
          const std::int64_t ts = g.tile_sizes[static_cast<std::size_t>(d)];
          tile.lo[d] = idx * ts;
          const std::int64_t nominal_hi = tile.lo[d] + ts - 1;
          const std::int64_t edge =
              g.align.class_extent[static_cast<std::size_t>(d)] - 1;
          tile.hi[d] = std::min(nominal_hi, edge);
          if (nominal_hi > edge) full = false;  // cleanup tile
        }

        // Interior fast path: full tiles of a translatable group shift the
        // plan-time region template instead of re-deriving the regions —
        // unless the shifted footprint pokes past a stage domain (boundary
        // tile), which falls back to the exact clamped computation.
        bool interior = false;
        if (opts_.compiled && full && g.region_template.translatable) {
          interior = true;
          for (int s : g.stage_order) {
            const Stage& st = pl.stage(s);
            const StageAlign& sa =
                g.align.stages[static_cast<std::size_t>(s)];
            const StageRegions& tr =
                g.region_template.stages[static_cast<std::size_t>(s)];
            StageRegions& r = regions[static_cast<std::size_t>(s)];
            r.owned.rank = r.required.rank = st.rank();
            for (int d = 0; d < st.rank(); ++d) {
              const DimAlign& da = sa.dim[static_cast<std::size_t>(d)];
              // Exactly divisible: translatability proved it at plan time.
              const std::int64_t delta =
                  (da.cls >= 0 && da.cls < ncls)
                      ? tile.lo[da.cls] * da.sd / da.sn
                      : 0;
              r.owned.lo[d] = tr.owned.lo[d] + delta;
              r.owned.hi[d] = tr.owned.hi[d] + delta;
              r.required.lo[d] = tr.required.lo[d] + delta;
              r.required.hi[d] = tr.required.hi[d] + delta;
            }
            if (!st.domain.contains(r.required)) {
              interior = false;
              break;
            }
          }
        }
        if (!interior) {
          if (opts_.compiled) {
            compute_region_boxes(pl, g.stages, g.align, tile, /*clamp=*/true,
                                 g.stage_order, regions.data());
          } else {
            // Legacy interpreted path keeps the original per-tile region
            // derivation (allocating, with volume accounting) so the A/B
            // baseline pays the true pre-compilation cost.
            const GroupRegions gr = compute_group_regions(
                pl, g.stages, g.align, tile, /*clamp=*/true, &g.stage_order);
            for (int s : g.stage_order)
              regions[static_cast<std::size_t>(s)] =
                  gr.stages[static_cast<std::size_t>(s)];
          }
        }

        for (int s : g.stage_order) {
          const StageRegions& reg = regions[static_cast<std::size_t>(s)];
          const Box& req = reg.required;
          if (req.empty()) continue;
          const Stage& st = pl.stage(s);
          const bool materialized =
              plan_.materialized[static_cast<std::size_t>(s)];
          // Write directly into the global buffer when the computed region is
          // exactly the owned slice (no halo): avoids a scratch copy.
          const bool direct = materialized && req == reg.owned;

          BufferView out_view;
          if (direct) {
            out_view = ws.stage_view(s);
          } else {
            auto& mem = scratch[static_cast<std::size_t>(s)];
            const std::size_t need = static_cast<std::size_t>(req.volume());
            if (need > mem.capacity()) {
              FUSEDP_FAULT_POINT("executor.scratch_alloc");
            }
            out_view = view_of_region(mem.ensure(need), req);
          }
          in_global[static_cast<std::size_t>(s)] = direct ? 1 : 0;
          tile_view[static_cast<std::size_t>(s)] = out_view;

          // Resolve loads.
          ctx.stage = &st;
          ctx.srcs.clear();
          ctx.srcs.reserve(st.loads.size());
          for (const Access& a : st.loads) {
            LoadSrc src;
            if (a.producer.is_input) {
              src.view = inputs[static_cast<std::size_t>(a.producer.id)].view();
              src.domain = pl.input(a.producer.id).domain;
            } else if (g.stages.contains(a.producer.id) &&
                       !in_global[static_cast<std::size_t>(a.producer.id)]) {
              src.view = tile_view[static_cast<std::size_t>(a.producer.id)];
              src.domain = pl.stage(a.producer.id).domain;
            } else {
              FUSEDP_DCHECK(ws.has(a.producer.id),
                            "producer not materialized");
              src.view = ws.stage_view(a.producer.id);
              src.domain = pl.stage(a.producer.id).domain;
            }
            ctx.srcs.push_back(std::move(src));
          }

          // Evaluate over the required box, row by row.
          const int last = st.rank() - 1;
          if (opts_.mode == EvalMode::kRow && opts_.compiled) {
            const CompiledStage& cs =
                plan_.compiled[static_cast<std::size_t>(s)];
            // Per-load border mask: a load skips all border handling when
            // its unclamped access box over `req` provably stays inside the
            // producer's domain and inside the data this tile actually has
            // (an in-group producer's scratch only covers its required
            // region).  Boundary and cleanup tiles keep every load exact.
            const std::size_t nloads = st.loads.size();
            if (interior) {
              for (std::size_t li = 0; li < nloads; ++li) {
                const Access& a = st.loads[li];
                bool clamped = cs.loads[li].any_dynamic;
                if (!clamped) {
                  const Box need = map_access_box(pl, a, req);
                  clamped = !pl.producer_domain(a.producer).contains(need);
                  if (!clamped && !a.producer.is_input &&
                      g.stages.contains(a.producer.id) &&
                      !in_global[static_cast<std::size_t>(a.producer.id)])
                    clamped =
                        !regions[static_cast<std::size_t>(a.producer.id)]
                             .required.contains(need);
                }
                load_clamped[li] = clamped ? 1 : 0;
              }
            } else {
              std::fill_n(load_clamped.begin(), nloads,
                          static_cast<unsigned char>(1));
            }
            for_each_row(req, [&](std::int64_t* c) {
              float* out = &out_view.at(c);
              crowev.eval_row(cs, ctx, load_clamped.data(), c, req.lo[last],
                              req.hi[last], out, opts_.allow_fma,
                              opts_.fast_transcendentals);
            });
          } else if (opts_.mode == EvalMode::kRow) {
            for_each_row(req, [&](std::int64_t* c) {
              float* out = &out_view.at(c);
              rowev.eval_row(ctx, c, req.lo[last], req.hi[last], out);
            });
          } else {
            for_each_row(req, [&](std::int64_t* c) {
              float* out = &out_view.at(c);
              for (std::int64_t y = req.lo[last]; y <= req.hi[last]; ++y) {
                c[last] = y;
                out[y - req.lo[last]] = eval_scalar_at(ctx, st.body, c);
              }
              c[last] = req.lo[last];
            });
          }

          // Publish the owned slice of live-outs computed in scratch.
          if (materialized && !direct) {
            const Box owned = reg.owned;
            if (!owned.empty()) {
              BufferView dst = ws.stage_view(s);
              for_each_row(owned, [&](std::int64_t* c) {
                const float* srcp = &out_view.at(c);
                float* dstp = &dst.at(c);
                std::copy(srcp, srcp + owned.extent(last), dstp);
              });
            }
          }
        }

        // Guarded execution: sweep the canary lines around every row
        // register after the tile.  A smash throws a coded Error naming the
        // evaluator and register, captured like any other tile failure.
        if (opts_.guard_arena) {
          crowev.check_guards();
          rowev.check_guards();
        }

        if (log != nullptr) {
          std::int64_t computed = 0, owned = 0;
          for (int s : g.stage_order) {
            const StageRegions& r = regions[static_cast<std::size_t>(s)];
            if (!r.required.empty()) computed += r.required.volume();
            if (!r.owned.empty()) owned += r.owned.volume();
          }
          ++log->tiles_run;
          if (interior) ++log->interior_tiles;
          log->computed_elems += computed;
          log->owned_elems += owned;
          if (want_tiles) {
            observe::TileEvent ev;
            ev.index = t;
            ev.thread = tid;
            ev.t_begin = t_begin;
            ev.t_end = epoch->seconds();
            ev.computed_elems = computed;
            ev.owned_elems = owned;
            ev.interior = interior;
            ev.worker = worker;
            ev.stolen = stolen;
            ev.queue_wait = queue_wait;
            log->tiles.push_back(std::move(ev));
          }
        }
      } catch (...) {
        capture_current_exception();
      }
    };

    drive(run_tile);

    // Arena high-water per thread, read after the tile loop so growth-only
    // reallocation has settled.  No clock, no lock: each thread owns its
    // slot.
    if (log != nullptr) {
      std::int64_t floats = 0;
      for (const ScratchArena& a : scratch)
        floats += static_cast<std::int64_t>(a.capacity());
      floats += static_cast<std::int64_t>(crowev.arena_floats());
      floats += static_cast<std::int64_t>(rowev.arena_floats());
      log->scratch_bytes =
          floats * static_cast<std::int64_t>(sizeof(float));
    }
  };

  if (opts_.pool_backend) {
    // Persistent work-stealing pool: one lane per logical thread, lane 0
    // inline on this thread.  The executor keeps its own per-tile deadline
    // probe (inside run_tile, same error text as the OpenMP path) and only
    // hands the pool its cancellation latch, so a tile fault or deadline on
    // any lane turns every remaining claim — own or stolen — into a no-op.
    ParallelForOptions pfo;
    pfo.lanes = nlanes;
    pfo.priority = priority;
    pfo.cancel = &cancelled;
    WorkPool::instance().parallel_for(total, pfo, [&](LaneContext& lc) {
      lane_main(lc.lane(), [&](auto& run_tile) {
        for (std::int64_t t = lc.claim(); t >= 0; t = lc.claim())
          run_tile(t, lc.worker(), lc.last_claim_stolen(),
                   lc.queue_wait_seconds());
        if (observing && lc.lane() < static_cast<int>(logs.size())) {
          ThreadLog& l = logs[static_cast<std::size_t>(lc.lane())];
          l.steals += lc.steals();
          l.queue_wait += lc.queue_wait_seconds();
        }
      });
    });
  } else {
#ifdef _OPENMP
#pragma omp parallel num_threads(nlanes)
    {
      const int tid = omp_get_thread_num();
      lane_main(tid, [&](auto& run_tile) {
        // Two complete worksharing constructs: the branch condition is
        // uniform across the team, so every thread picks the same one.
        // Orphaned `omp for` binds to the enclosing parallel region.
        if (opts_.tile_schedule == TileSchedule::kDynamic) {
#pragma omp for schedule(dynamic)
          for (std::int64_t t = 0; t < total; ++t)
            run_tile(t, -1, false, 0.0);
        } else {
#pragma omp for schedule(static)
          for (std::int64_t t = 0; t < total; ++t)
            run_tile(t, -1, false, 0.0);
        }
      });
    }
#else
    lane_main(0, [&](auto& run_tile) {
      for (std::int64_t t = 0; t < total; ++t) run_tile(t, -1, false, 0.0);
    });
#endif
  }

  if (first_error != nullptr) rethrow_tile_error(first_error);

  if (observing) {
    for (ThreadLog& l : logs) {
      rec->tiles_run += l.tiles_run;
      rec->interior_tiles += l.interior_tiles;
      rec->computed_elems += l.computed_elems;
      rec->owned_elems += l.owned_elems;
      rec->scratch_bytes += l.scratch_bytes;
      rec->steals += l.steals;
      rec->queue_wait_seconds += l.queue_wait;
      rec->tiles.insert(rec->tiles.end(),
                        std::make_move_iterator(l.tiles.begin()),
                        std::make_move_iterator(l.tiles.end()));
    }
  }
}

std::vector<Buffer> run_reference(const Pipeline& pl,
                                  const std::vector<Buffer>& inputs) {
  Grouping g;
  for (int i = 0; i < pl.num_stages(); ++i) {
    GroupSchedule gs;
    gs.stages = NodeSet::single(i);
    g.groups.push_back(gs);
  }
  ExecOptions opts;
  opts.num_threads = 1;
  opts.mode = EvalMode::kScalar;
  // Golden purity: the reference never takes the compiled/template path.
  opts.compiled = false;
  Executor ex(pl, g, opts);
  Workspace ws;
  ex.run(inputs, ws);
  std::vector<Buffer> out;
  out.reserve(static_cast<std::size_t>(pl.num_stages()));
  for (int s = 0; s < pl.num_stages(); ++s)
    out.push_back(std::move(ws.stage_buffer(s)));
  return out;
}

std::vector<Buffer> run_pipeline(const Pipeline& pl, const Grouping& grouping,
                                 const std::vector<Buffer>& inputs,
                                 ExecOptions opts) {
  Executor ex(pl, grouping, opts);
  Workspace ws;
  ex.run(inputs, ws);
  std::vector<Buffer> out;
  out.reserve(pl.outputs().size());
  for (int s : pl.outputs()) out.push_back(std::move(ws.stage_buffer(s)));
  return out;
}

}  // namespace fusedp
