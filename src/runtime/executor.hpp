// The overlapped-tiling execution engine.
//
// Executes an ExecutablePlan: groups in topological order; within a group,
// the tile grid is traversed by an OpenMP parallel loop (tiles are
// independent thanks to redundant recomputation of the overlap, paper
// Figure 2); within a tile, member stages run in topological order into
// per-thread scratch buffers sized to their required regions, and live-out
// stages write their owned slice to full-size global buffers.  This is the
// loop structure of the code PolyMage generates (paper Figure 3).
#pragma once

#include "observe/observe.hpp"
#include "runtime/eval.hpp"
#include "runtime/governor.hpp"
#include "runtime/plan.hpp"
#include "runtime/pool.hpp"
#include "storage/liveness.hpp"
#include "support/timing.hpp"

namespace fusedp {

enum class EvalMode : std::uint8_t {
  kRow,     // row-vectorized evaluator (benchmarks)
  kScalar,  // per-point interpreter (golden reference)
};

// OpenMP worksharing policy for the tile loop.
enum class TileSchedule : std::uint8_t {
  kDynamic,  // schedule(dynamic): absorbs boundary/cleanup-tile imbalance
  kStatic,   // schedule(static): the historical default
};

struct ExecOptions {
  int num_threads = 1;
  EvalMode mode = EvalMode::kRow;
  // Use the plan-time CompiledStage programs plus the interior-tile fast
  // path (translated region template, unclamped row kernels).  Off falls
  // back to the per-tile interpreted path — the pre-compilation executor —
  // which the smoke bench uses as its A/B baseline and run_reference uses
  // for golden purity.  Outputs are bit-identical either way.
  bool compiled = true;
  // Vectorized compiled backend: superop fusion (multiply-accumulate,
  // compare-and-blend) plus row-register allocation onto an aligned
  // L1-resident pool.  Off compiles the plain one-row-per-op program — the
  // A/B baseline bench_vector measures against.  Outputs are bit-identical
  // either way (default-mode superops perform the same rounded operations
  // in the same order as the ops they replace).
  bool vector_backend = true;
  // Superop (peephole) fusion inside the vectorized backend.  The
  // differential verifier toggles this independently of vector_backend to
  // bisect a divergence between register allocation and superop formation;
  // ignored when vector_backend is off.
  bool superop_fusion = true;
  // Contract fused multiply-accumulate superops into true FMA (one rounding
  // instead of two).  Changes results by at most the removed intermediate
  // rounding per fused op, so it is opt-in; leave off for bit-exactness
  // with the scalar reference.  Fast only when the build targets an FMA-
  // capable ISA (-DFUSEDP_NATIVE=ON); otherwise std::fma falls back to the
  // correctly-rounded libm routine.
  bool allow_fma = false;
  // Approximate transcendentals: replace the scalar libm exp/log/pow calls
  // in the compiled row kernels with the vectorizable polynomial
  // approximations in runtime/fastmath.hpp.  Like allow_fma this is opt-in
  // and trades bit-exactness with the scalar reference for speed: results
  // differ by the approximation error (ULP-bounded, see fastmath.hpp and
  // docs/performance.md), so the differential verifier compares this
  // configuration through a tolerance rung instead of bit-equality.
  // Requires the vectorized compiled backend.
  bool fast_transcendentals = false;
  // Cost-aware never-pessimize gate: after lowering, statically suspect
  // groups (libm-bound or gather-bound, see runtime/benefit.hpp) are
  // micro-measured — a few short row runs of the vector-compiled stages
  // against the plain-compiled forms — and demoted back to the plain form
  // when the vector choice loses.  Both forms are bit-identical, so this
  // changes speed only, never values.  The verdicts are persisted on the
  // plan (GroupPlan::verdict) and shown by the plan printer.
  bool never_pessimize = true;
  TileSchedule tile_schedule = TileSchedule::kDynamic;
  // Share allocations between materialized intermediates with disjoint live
  // intervals (PolyMage-style storage optimization; see storage/liveness).
  bool pooled_storage = false;
  // Guarded execution: canary words around every evaluator row register,
  // checked after each tile.  Catches row-kernel overruns and regalloc
  // aliasing that ASan cannot see inside one arena allocation; a smash
  // surfaces as a coded Error (kInternal) naming the register.  Costs one
  // cache line per register plus a canary sweep per tile.
  bool guard_arena = false;
  // Run tile loops on the persistent process-wide WorkPool (work-stealing
  // lanes, runtime/pool.hpp) instead of a per-run OpenMP parallel region.
  // Outputs are bit-identical either way — tiles write disjoint owned
  // slices, so execution order is irrelevant — and PR 6's cooperative
  // deadline/cancellation and once-latch error semantics carry over exactly
  // (the executor keeps its own per-tile deadline probe and error text).
  // Off keeps the OpenMP region, which remains the A/B baseline.
  bool pool_backend = false;
};

// Per-run overrides for Executor::run.  The serving front door varies these
// per request (lanes and priority) over one shared Executor, which
// ExecOptions — fixed at plan time — cannot express.
struct RunKnobs {
  observe::Observer* obs = nullptr;
  const Deadline* deadline = nullptr;
  // Parallelism width for this run (pool lanes or OpenMP team size);
  // 0 means ExecOptions::num_threads.
  int lanes = 0;
  // Dispatch class for this run's pool tasks (pool backend only):
  // interactive lanes are dequeued ahead of bulk lanes.
  TaskPriority priority = TaskPriority::kInteractive;
};

// Holds the full-size buffers of materialized stages.  With pooling,
// non-output intermediates become dense views into shared slot storage;
// pipeline outputs always keep dedicated buffers.
//
// The workspace's full footprint is admitted at the ResourceGovernor
// *before* prepare() allocates anything: a budget rejection surfaces as a
// coded kResourceExhausted error with the workspace unchanged — still
// holding (and still charged for) whatever it allocated previously, still
// reusable for a leaner retry.
class Workspace {
 public:
  void prepare(const ExecutablePlan& plan);
  void prepare(const ExecutablePlan& plan, const StorageAssignment& storage);

  // Resolved view of a materialized stage (dedicated or pooled).
  BufferView stage_view(int id) const {
    return views_[static_cast<std::size_t>(id)];
  }
  // Dedicated buffer; only valid for unpooled stages (e.g. outputs).
  Buffer& stage_buffer(int id) { return buffers_[static_cast<std::size_t>(id)]; }
  const Buffer& stage_buffer(int id) const {
    return buffers_[static_cast<std::size_t>(id)];
  }
  bool has(int id) const {
    return views_[static_cast<std::size_t>(id)].data != nullptr;
  }
  std::int64_t allocated_floats() const;

 private:
  // Charges the governor for the post-prepare footprint (throws
  // kResourceExhausted on rejection, leaving the workspace untouched) and
  // re-syncs the charge to the true allocation afterwards.
  void admit(std::int64_t target_floats);
  void resync_charge() noexcept;

  std::vector<Buffer> buffers_;  // dedicated, indexed by stage id
  std::vector<Buffer> slots_;    // pooled storage
  std::vector<BufferView> views_;
  GovernedCharge charge_;  // this workspace's bytes held at the governor
};

class Executor {
 public:
  Executor(const Pipeline& pl, const Grouping& grouping, ExecOptions opts);

  // Runs the whole pipeline.  `inputs[i]` must match pipeline input i's
  // domain.  Results land in `ws` (prepare()d automatically).
  //
  // With an observer attached, per-tile wall time and work counters are
  // recorded into per-thread logs, merged lock-free at group end, and
  // delivered as observe::GroupRecord / RunRecord callbacks on this
  // (serial) thread.  With `obs == nullptr` no clock is read and no log is
  // allocated — the tile loop pays one pointer test — and outputs are
  // bit-identical either way (instrumentation never touches the compute).
  //
  // A non-null armed `deadline` is sampled cooperatively at every tile
  // boundary (and before each reduction group): once expired, remaining
  // tiles become no-ops via the cancellation latch and the run terminates
  // with a coded kDeadlineExceeded error.  The deadline is deliberately NOT
  // checked at entry, so even an already-expired request prepares `ws` and
  // fails through the tile path — the workspace stays reusable and an
  // immediate re-run without the deadline is bit-identical to an
  // undisturbed run.
  void run(const std::vector<Buffer>& inputs, Workspace& ws,
           observe::Observer* obs = nullptr,
           const Deadline* deadline = nullptr) const;

  // As above, with per-run overrides (lanes, priority) on top of the
  // observer and deadline.  Thread-safe for concurrent calls on one
  // Executor as long as each call uses a distinct Workspace.
  void run(const std::vector<Buffer>& inputs, Workspace& ws,
           const RunKnobs& knobs) const;

  const ExecutablePlan& plan() const { return plan_; }

  // Storage assignment used when opts.pooled_storage is set.
  const StorageAssignment& storage() const { return storage_; }

 private:
  // `rec`, when non-null, receives the merged per-thread measurements;
  // `epoch` is the run-relative clock (non-null iff rec is).
  void run_group(const GroupPlan& g, const std::vector<Buffer>& inputs,
                 Workspace& ws, observe::GroupRecord* rec,
                 const WallTimer* epoch, bool want_tiles,
                 const Deadline* deadline, int lanes,
                 TaskPriority priority) const;
  void run_reduction(const GroupPlan& g, const std::vector<Buffer>& inputs,
                     Workspace& ws) const;

  const Pipeline* pl_;
  ExecutablePlan plan_;
  ExecOptions opts_;
  StorageAssignment storage_;
};

// Convenience: executes the pipeline completely unfused and untiled with the
// scalar interpreter — the golden reference every schedule must match
// bit-for-bit.  Returns one buffer per stage.
std::vector<Buffer> run_reference(const Pipeline& pl,
                                  const std::vector<Buffer>& inputs);

// Runs `pl` under `grouping` and returns the buffers of the pipeline's
// output stages (in pl.outputs() order).
std::vector<Buffer> run_pipeline(const Pipeline& pl, const Grouping& grouping,
                                 const std::vector<Buffer>& inputs,
                                 ExecOptions opts = {});

}  // namespace fusedp
