// Persistent process-wide work-stealing thread pool.
//
// The OpenMP executor spins a parallel region up per run — the wrong shape
// for serving many small concurrent requests, where region setup/teardown
// and barrier costs dominate.  The WorkPool keeps a fixed set of plain
// std::thread workers alive for the life of the process (a leaky singleton,
// like the ResourceGovernor) and executes *jobs* on them:
//
//  * parallel_for(total, opts, body) runs `body` on `opts.lanes` lanes.
//    Lane 0 executes inline on the submitting thread (so a 1-lane job is a
//    plain loop with no cross-thread traffic at all); lanes 1..L-1 are
//    dispatched to workers.  The job's tile indices [0, total) are block-
//    partitioned into per-lane deques; a lane drains its own deque front-
//    to-back and, when empty, steals the upper half of the richest-seen
//    victim's remainder (classic range stealing).  A lane task that is
//    still queued when the job finishes simply returns — its tiles have
//    already been stolen by the active lanes — so a saturated pool degrades
//    to fewer lanes, never to a stall.
//
//  * submit(priority, fn) enqueues a fire-and-forget task — the serving
//    front door runs whole small requests this way.
//
// Priority: two dispatch queues, interactive ahead of bulk.  A worker out
// of local work always takes interactive tasks first — per-request priority
// preempts bulk work in the steal order (Benoit et al.'s bi-criteria
// placement: latency-class work is placed before throughput-class work),
// though never mid-tile (cooperative, task-granular preemption).
//
// Cancellation and errors mirror the OpenMP executor's semantics exactly:
// LaneContext::claim() samples the job's deadline and external cancel latch
// at task granularity (one steady_clock read per claim when armed), a lane
// body's exception is captured in a once-latch, cancels the job's remaining
// claims, and is rethrown on the submitting thread after every started lane
// has joined.  Executors layer their own per-tile capture on top, so tile
// outputs stay bit-identical to the OpenMP path in every failure mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

#include "support/timing.hpp"

namespace fusedp {

// Dispatch class of a job or task.  Interactive work is always dequeued
// before bulk work; within one job all lanes share the job's class.
enum class TaskPriority : std::uint8_t {
  kInteractive = 0,  // latency-sensitive: served first
  kBulk = 1,         // throughput: served when no interactive work waits
};

namespace detail {
struct PoolJob;
}

// Per-lane handle passed to a parallel_for body.  claim() hands out tile
// indices until the job is exhausted or cancelled; the metadata accessors
// feed the observability layer (worker id, queue wait, steal count).
class LaneContext {
 public:
  int lane() const { return lane_; }
  // Pool worker executing this lane; -1 = the submitting thread itself.
  int worker() const { return worker_; }
  // Seconds between job submission and this lane starting (dispatch-queue
  // wait).  0 for lane 0, which starts inline.
  double queue_wait_seconds() const { return queue_wait_; }

  // Next tile index to execute, or -1 when none remain (job exhausted,
  // cancelled, or deadline expired).  Never throws.
  std::int64_t claim();
  // True when the index returned by the latest claim() was stolen from
  // another lane's deque rather than drawn from this lane's own range.
  bool last_claim_stolen() const { return last_stolen_; }
  // Steal events by this lane so far.
  std::int64_t steals() const { return steals_; }

 private:
  friend class WorkPool;
  LaneContext(detail::PoolJob* job, int lane, int worker, double queue_wait)
      : job_(job), lane_(lane), worker_(worker), queue_wait_(queue_wait) {}

  detail::PoolJob* job_;  // nullptr: serial fast path (lanes == 1)
  int lane_;
  int worker_;
  double queue_wait_;
  bool last_stolen_ = false;
  std::int64_t steals_ = 0;
  // Serial fast-path state (job_ == nullptr): a plain cursor plus the
  // deadline/cancel probes, so a 1-lane job pays two branches per claim.
  std::int64_t next_ = 0;
  std::int64_t end_ = 0;
  const Deadline* deadline_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;
  bool deadline_hit_ = false;
};

struct ParallelForOptions {
  int lanes = 1;  // parallelism width; lane 0 runs on the caller
  TaskPriority priority = TaskPriority::kInteractive;
  // Sampled at every claim(); expiry cancels remaining claims and
  // parallel_for throws a coded kDeadlineExceeded after the join.
  const Deadline* deadline = nullptr;
  // External cancellation latch (e.g. the executor's once-latch flag):
  // once true, claims return -1.  parallel_for does NOT throw for an
  // external cancel — the owner of the latch owns the error.
  const std::atomic<bool>* cancel = nullptr;
};

struct PoolStats {
  int workers = 0;
  std::uint64_t jobs = 0;            // parallel_for calls
  std::uint64_t tasks_executed = 0;  // lane tasks + submitted tasks run
  std::uint64_t steal_events = 0;    // cross-lane steals
  std::uint64_t tiles_stolen = 0;    // tiles moved by those steals
};

class WorkPool {
 public:
  // The process-wide pool.  Starts with zero workers; ensure_workers grows
  // it on demand.  Leaky singleton: never destroyed, workers park on the
  // dispatch condvar for the life of the process.
  static WorkPool& instance();

  // Grows the worker set to at least `n` threads (never shrinks).
  void ensure_workers(int n);
  int workers() const;
  PoolStats stats() const;

  // Executes body(lane) on `opts.lanes` lanes over tiles [0, total).
  // Blocks until every started lane finished and no tile remains
  // unclaimed.  Rethrows the first exception any lane body threw; throws
  // Error(kDeadlineExceeded) if opts.deadline expired mid-job.  With
  // total <= 0 the body still runs once over an empty range (lane-level
  // setup/teardown stays observable, matching the OpenMP executor's
  // empty parallel region).
  void parallel_for(std::int64_t total, const ParallelForOptions& opts,
                    const std::function<void(LaneContext&)>& body);

  // Fire-and-forget task at a priority.  `fn` must not throw (wrap it);
  // an escaping exception terminates the process, same as a thread.
  void submit(TaskPriority priority, std::function<void()> fn);

  // Test hook: blocks until both dispatch queues are empty and every
  // worker is parked.
  void quiesce();

 private:
  WorkPool() = default;

  void worker_main(int id);
  // Pops the next task, interactive queue first.  Blocks; returns false
  // only on shutdown (which never happens for the singleton).
  bool pop_task(std::function<void()>* fn);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queues_[2];  // [interactive, bulk]
  std::vector<std::thread> threads_;
  int busy_ = 0;

  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steal_events_{0};
  std::atomic<std::uint64_t> tiles_stolen_{0};

  friend class LaneContext;
};

}  // namespace fusedp
