#include "runtime/pool.hpp"

#include <algorithm>
#include <exception>

#include "support/status.hpp"

namespace fusedp {

namespace detail {

// One lane's deque of tile indices: the contiguous range [next, end).
// Owner pops from the front (next++), thieves take the upper half by
// shrinking `end`.  A plain mutex per lane: lock traffic is one
// uncontended acquire per claim, far below tile-execution cost, and keeps
// the stealing protocol trivially correct under TSan.
struct LaneRange {
  std::mutex mu;
  std::int64_t next = 0;
  std::int64_t end = 0;
};

struct PoolJob {
  PoolJob(std::int64_t total, int lanes, const ParallelForOptions& opts,
          const std::function<void(LaneContext&)>* body_fn)
      : deadline(opts.deadline), external_cancel(opts.cancel), body(body_fn) {
    ranges.reserve(static_cast<std::size_t>(lanes));
    // Block partition; the first `total % lanes` lanes take one extra.
    const std::int64_t base = total / lanes;
    const std::int64_t extra = total % lanes;
    std::int64_t at = 0;
    for (int l = 0; l < lanes; ++l) {
      auto r = std::make_unique<LaneRange>();
      r->next = at;
      at += base + (l < extra ? 1 : 0);
      r->end = at;
      ranges.push_back(std::move(r));
    }
  }

  // Once-latch error capture, shared by every lane: the first exception
  // wins, later ones are dropped (their lanes were doing redundant work the
  // first failure already invalidated), and the cancelled flag turns every
  // remaining claim into a no-op.
  void capture_current_exception() noexcept {
    {
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error == nullptr) first_error = std::current_exception();
    }
    cancelled.store(true, std::memory_order_relaxed);
  }

  void capture_deadline() noexcept {
    {
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error == nullptr)
        first_error = std::make_exception_ptr(
            Error("parallel_for deadline exceeded",
                  ErrorCode::kDeadlineExceeded));
    }
    cancelled.store(true, std::memory_order_relaxed);
  }

  bool should_stop() const {
    if (cancelled.load(std::memory_order_relaxed)) return true;
    return external_cancel != nullptr &&
           external_cancel->load(std::memory_order_relaxed);
  }

  std::vector<std::unique_ptr<LaneRange>> ranges;
  const Deadline* deadline;
  const std::atomic<bool>* external_cancel;
  const std::function<void(LaneContext&)>* body;

  std::mutex err_mu;
  std::exception_ptr first_error;
  std::atomic<bool> cancelled{false};

  // Lifecycle: `active` counts lanes currently inside the body; `done`
  // flips once the job joined, so a lane task popped afterwards returns
  // without touching the (by then dead) body closure.
  std::mutex mu;
  std::condition_variable cv;
  int active = 0;
  bool done = false;

  WallTimer submitted;  // queue-wait epoch for lanes 1..L-1
};

}  // namespace detail

namespace {

// Worker-side identity for LaneContext::worker(); -1 on non-pool threads.
thread_local int tl_worker_id = -1;

}  // namespace

std::int64_t LaneContext::claim() {
  last_stolen_ = false;
  if (job_ == nullptr) {
    // Serial fast path: two predictable branches plus a cursor increment —
    // the per-tile cost a 1-lane job pays over a bare loop.
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed))
      return -1;
    if (deadline_ != nullptr && deadline_->expired()) {
      deadline_hit_ = true;
      return -1;
    }
    return next_ < end_ ? next_++ : -1;
  }

  detail::PoolJob& j = *job_;
  if (j.should_stop()) return -1;
  if (j.deadline != nullptr && j.deadline->expired()) {
    j.capture_deadline();
    return -1;
  }

  detail::LaneRange& own = *j.ranges[static_cast<std::size_t>(lane_)];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (own.next < own.end) return own.next++;
  }

  // Own deque empty: steal the upper half of the first victim (round-robin
  // from the right neighbor) with remaining work.  Never holds two lane
  // locks at once: the stolen range is detached under the victim's lock,
  // then installed under our own — a concurrent thief scanning us in
  // between sees an empty deque and moves on, which only costs it a retry.
  const int nlanes = static_cast<int>(j.ranges.size());
  for (int i = 1; i < nlanes; ++i) {
    detail::LaneRange& victim =
        *j.ranges[static_cast<std::size_t>((lane_ + i) % nlanes)];
    std::int64_t start = -1;
    std::int64_t count = 0;
    {
      std::lock_guard<std::mutex> lock(victim.mu);
      const std::int64_t rem = victim.end - victim.next;
      if (rem <= 0) continue;
      count = (rem + 1) / 2;
      victim.end -= count;
      start = victim.end;
    }
    {
      std::lock_guard<std::mutex> lock(own.mu);
      own.next = start + 1;
      own.end = start + count;
    }
    ++steals_;
    last_stolen_ = true;
    WorkPool& pool = WorkPool::instance();
    pool.steal_events_.fetch_add(1, std::memory_order_relaxed);
    pool.tiles_stolen_.fetch_add(static_cast<std::uint64_t>(count),
                                 std::memory_order_relaxed);
    return start;
  }
  return -1;
}

WorkPool& WorkPool::instance() {
  // Leaky singleton (never destroyed): workers may still be parked on the
  // dispatch condvar during static destruction, so the pool must outlive
  // every other static.  Reachable through this pointer, so not a leak.
  static WorkPool* pool = new WorkPool();
  return *pool;
}

void WorkPool::ensure_workers(int n) {
  if (n <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < n) {
    const int id = static_cast<int>(threads_.size());
    threads_.emplace_back([this, id] { worker_main(id); });
  }
}

int WorkPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

PoolStats WorkPool::stats() const {
  PoolStats s;
  s.workers = workers();
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.steal_events = steal_events_.load(std::memory_order_relaxed);
  s.tiles_stolen = tiles_stolen_.load(std::memory_order_relaxed);
  return s;
}

bool WorkPool::pop_task(std::function<void()>* fn) {
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock,
                [&] { return !queues_[0].empty() || !queues_[1].empty(); });
  std::deque<std::function<void()>>& q =
      !queues_[0].empty() ? queues_[0] : queues_[1];
  *fn = std::move(q.front());
  q.pop_front();
  ++busy_;
  return true;
}

void WorkPool::worker_main(int id) {
  tl_worker_id = id;
  for (;;) {
    std::function<void()> fn;
    if (!pop_task(&fn)) return;
    fn();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
    }
    idle_cv_.notify_all();
  }
}

void WorkPool::submit(TaskPriority priority, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[static_cast<std::size_t>(priority)].push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void WorkPool::quiesce() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] {
    return queues_[0].empty() && queues_[1].empty() && busy_ == 0;
  });
}

void WorkPool::parallel_for(std::int64_t total,
                            const ParallelForOptions& opts,
                            const std::function<void(LaneContext&)>& body) {
  jobs_.fetch_add(1, std::memory_order_relaxed);
  const int lanes =
      static_cast<int>(std::min<std::int64_t>(
          std::max(1, opts.lanes), std::max<std::int64_t>(total, 1)));
  if (lanes == 1) {
    // Serial fast path: no job object, no locks, no worker traffic.
    LaneContext lc(nullptr, /*lane=*/0, /*worker=*/-1, /*queue_wait=*/0.0);
    lc.end_ = std::max<std::int64_t>(total, 0);
    lc.deadline_ = opts.deadline;
    lc.cancel_ = opts.cancel;
    body(lc);
    if (lc.deadline_hit_)
      throw Error("parallel_for deadline exceeded",
                  ErrorCode::kDeadlineExceeded);
    return;
  }

  ensure_workers(lanes - 1);
  auto job = std::make_shared<detail::PoolJob>(total, lanes, opts, &body);

  auto run_lane = [](const std::shared_ptr<detail::PoolJob>& j, int lane,
                     int worker, double queue_wait) {
    {
      std::lock_guard<std::mutex> lock(j->mu);
      if (j->done) return;  // job already joined; tiles were stolen
      ++j->active;
    }
    LaneContext lc(j.get(), lane, worker, queue_wait);
    try {
      (*j->body)(lc);
    } catch (...) {
      j->capture_current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(j->mu);
      --j->active;
    }
    j->cv.notify_all();
  };

  for (int l = 1; l < lanes; ++l) {
    submit(opts.priority, [job, l, run_lane] {
      run_lane(job, l, tl_worker_id, job->submitted.seconds());
    });
  }
  run_lane(job, /*lane=*/0, /*worker=*/tl_worker_id, /*queue_wait=*/0.0);

  // Join: every lane that started has finished.  A lane exits only once
  // its claim() scan finds all deques empty (or the job cancelled), and a
  // lane never exits holding work in its own deque — so at active == 0 no
  // unclaimed tile remains, including the initial ranges of lane tasks
  // still sitting in the dispatch queue (their work was stolen).  `done`
  // flips under the same lock acquisition the final wait holds, closing
  // the race against a straggler task starting after the join.
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] { return job->active == 0; });
    job->done = true;
  }
  if (job->first_error != nullptr) std::rethrow_exception(job->first_error);
}

}  // namespace fusedp
