// Vectorizable polynomial approximations of the transcendental kernels
// (exp, log, pow, rsqrt) used by the compiled row evaluator when
// ExecOptions::fast_transcendentals is on.
//
// Design constraints:
//   * Branch-free bodies (selects only), so every function inlines cleanly
//     into an omp-simd row loop — this is the whole point: the scalar libm
//     calls these replace are the only non-vectorizable ops left in the
//     compiled backend ("bit-exactness policy" in vec.hpp; that policy now
//     applies only when fast_transcendentals is off).
//   * Full-range input handling: +-0, denormals, NaN, +-Inf and the
//     overflow/underflow boundaries all produce IEEE-consistent results
//     (documented deviations: see each function).
//   * float-only arithmetic, no libm in the hot path, no lookup tables.
//
// Accuracy (measured by tests/test_fastmath.cpp, asserted bounds are 2x
// the observed worst case):
//   fast_exp    <= 2 ulp on [-87.3, 88.7]; gradual underflow to denormals
//                 below that; exact 1.0f at +-0.
//   fast_log    <= 2 ulp on normals and denormals; exact +0.0f at 1.0f.
//   fast_pow    relative error <= |b*ln a| * 2^-22 (error of the log feeds
//               the exp multiplicatively); <= 1e-5 relative for the
//               |b*log2(a)| <= 16 range covering the image pipelines.
//   fast_rsqrt  relative error <= 5e-6 (Newton-refined estimate).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace fusedp::fastmath {

// e^x via 2^k * e^r range reduction (k = round(x/ln2), r in [-ln2/2, ln2/2])
// and a degree-5 minimax polynomial for e^r.  The 2^k scale is applied in
// two halves so k = 128 (just under the overflow boundary) and the gradual
// underflow range down to 2^-149 both stay representable.  Deviation from
// libm: inputs below -104 flush to +0 (libm agrees: exp(-104) == 0.0f).
inline float fast_exp(float x) {
  constexpr float kLog2e = 1.44269504088896341f;
  constexpr float kLn2Hi = 0.693359375f;
  constexpr float kLn2Lo = -2.12194440e-4f;
  constexpr float kHi = 88.72283935546875f;   // exp(kHi) is the last finite
  constexpr float kLo = -104.0f;              // below: result underflows to 0
  const bool nan = std::isnan(x);
  float cx = nan ? 0.0f : x;
  cx = cx < kLo ? kLo : (cx > kHi ? kHi : cx);
  const float kf = std::floor(cx * kLog2e + 0.5f);
  const float r = (cx - kf * kLn2Hi) - kf * kLn2Lo;
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = p * (r * r) + r + 1.0f;
  // 2^k = 2^(k-k/2) * 2^(k/2); both halves have in-range biased exponents
  // for every k in [-150, 128].
  const std::int32_t k = static_cast<std::int32_t>(kf);
  const std::int32_t kh = k >> 1;
  const float s1 = std::bit_cast<float>((k - kh + 127) << 23);
  const float s2 = std::bit_cast<float>((kh + 127) << 23);
  float res = (p * s1) * s2;
  res = x > kHi ? std::numeric_limits<float>::infinity() : res;
  res = x < kLo ? 0.0f : res;
  return nan ? x : res;
}

// Natural log via exponent/mantissa split (m in [sqrt(1/2), sqrt(2))) and
// the Cephes degree-8 polynomial for log(1+f).  Denormals are normalized by
// scaling with 2^23 first, so the full positive range is covered.
// Specials: log(+-0) = -Inf, log(x<0) = NaN, log(+Inf) = +Inf, NaN -> NaN,
// log(1) = +0 exactly.
inline float fast_log(float x) {
  constexpr float kLn2Hi = 0.693359375f;
  constexpr float kLn2Lo = -2.12194440e-4f;
  const bool nan = std::isnan(x);
  const bool inf = std::isinf(x) && x > 0.0f;
  const bool zero = x == 0.0f;
  const bool neg = x < 0.0f;
  const bool denorm = x > 0.0f && x < std::numeric_limits<float>::min();
  const float xs = denorm ? x * 8388608.0f : x;  // * 2^23
  const float ebias = denorm ? 23.0f : 0.0f;
  // Keep the bit math defined on lanes whose result a select overrides.
  const float xw = (nan || inf || zero || neg) ? 1.0f : xs;
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(xw);
  float e = static_cast<float>(static_cast<std::int32_t>(bits >> 23) - 126);
  float m = std::bit_cast<float>((bits & 0x007FFFFFu) | 0x3F000000u);
  const bool low = m < 0.70710678118654752f;
  m = low ? m + m : m;
  e = low ? e - 1.0f : e;
  const float f = m - 1.0f;
  const float z = f * f;
  float y = 7.0376836292e-2f;
  y = y * f + -1.1514610310e-1f;
  y = y * f + 1.1676998740e-1f;
  y = y * f + -1.2420140846e-1f;
  y = y * f + 1.4249322787e-1f;
  y = y * f + -1.6668057665e-1f;
  y = y * f + 2.0000714765e-1f;
  y = y * f + -2.4999993993e-1f;
  y = y * f + 3.3333331174e-1f;
  y = y * f * z;
  const float ef = e - ebias;
  y += ef * kLn2Lo;
  y -= 0.5f * z;
  float res = f + y + ef * kLn2Hi;
  res = zero ? -std::numeric_limits<float>::infinity() : res;
  res = neg ? std::numeric_limits<float>::quiet_NaN() : res;
  res = inf ? std::numeric_limits<float>::infinity() : res;
  return nan ? x : res;
}

// a^b as exp(b * log|a|) with libm-consistent special cases: pow(x, 0) = 1
// for every x (including NaN), pow(1, y) = 1 for every y, pow(0, y>0) = 0,
// pow(0, y<0) = +Inf, and a negative base yields +-|a|^b for integer b
// (sign from the exponent's parity) and NaN otherwise.  The relative error
// grows with |b * ln a| (see header comment); the campipe gamma constants
// (b = 1/2.2, a in [0, 1]) sit well under 1e-6.
inline float fast_pow(float a, float b) {
  const float aa = std::fabs(a);
  float res = fast_exp(b * fast_log(aa));
  // Negative base: defined only for integer exponents; odd ones flip sign.
  const float bi = std::floor(b);
  const bool b_int = bi == b && !std::isinf(b);
  const float bh = bi * 0.5f;
  const bool b_odd = b_int && bh != std::floor(bh);
  const float neg_res =
      b_int ? (b_odd ? -res : res) : std::numeric_limits<float>::quiet_NaN();
  res = a < 0.0f ? neg_res : res;
  res = a == 1.0f ? 1.0f : res;
  res = b == 0.0f ? 1.0f : res;
  return res;
}

// 1/sqrt(x) from the classic bit-shifted initial estimate plus two Newton
// steps.  Specials: rsqrt(+0) = +Inf, rsqrt(-0) = -Inf, rsqrt(x<0) = NaN,
// rsqrt(+Inf) = 0, NaN -> NaN.
inline float fast_rsqrt(float x) {
  const bool nan = std::isnan(x);
  const bool zero = x == 0.0f;
  const bool neg = x < 0.0f;
  const bool inf = std::isinf(x) && x > 0.0f;
  const float xw = (nan || zero || neg || inf) ? 1.0f : x;
  float y = std::bit_cast<float>(
      0x5F375A86u - (std::bit_cast<std::uint32_t>(xw) >> 1));
  y = y * (1.5f - 0.5f * xw * y * y);
  y = y * (1.5f - 0.5f * xw * y * y);
  float res = y;
  res = zero ? std::copysign(std::numeric_limits<float>::infinity(), x) : res;
  res = neg ? std::numeric_limits<float>::quiet_NaN() : res;
  res = inf ? 0.0f : res;
  return nan ? x : res;
}

}  // namespace fusedp::fastmath
