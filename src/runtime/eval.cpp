#include "runtime/eval.hpp"

#include <algorithm>
#include <cmath>

#include "ir/box.hpp"
#include "support/fault.hpp"

namespace fusedp {

namespace {

std::int64_t clamp_i64(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

float eval_scalar_at(const StageEvalCtx& ctx, ExprRef r,
                     const std::int64_t* c) {
  const Stage& s = *ctx.stage;
  const ExprNode& n = s.nodes[static_cast<std::size_t>(r)];
  switch (n.op) {
    case Op::kConst:
      return n.imm;
    case Op::kCoord:
      return static_cast<float>(c[n.dim]);
    case Op::kLoad: {
      const Access& a = s.loads[static_cast<std::size_t>(n.load_id)];
      const LoadSrc& src = ctx.srcs[static_cast<std::size_t>(n.load_id)];
      std::int64_t pc[kMaxDims];
      for (int k = 0; k < static_cast<int>(a.axes.size()); ++k) {
        const AxisMap& m = a.axes[static_cast<std::size_t>(k)];
        std::int64_t v = 0;
        switch (m.kind) {
          case AxisMap::Kind::kConstant:
            v = m.offset;
            break;
          case AxisMap::Kind::kAffine:
            v = (m.num == 0
                     ? m.offset
                     : floor_div(c[m.src_dim] * m.num + m.pre, m.den) +
                           m.offset);
            break;
          case AxisMap::Kind::kDynamic:
            v = static_cast<std::int64_t>(
                std::floor(eval_scalar_at(ctx, m.dyn, c)));
            break;
        }
        if (a.border == Border::kZero &&
            (v < src.domain.lo[k] || v > src.domain.hi[k]))
          return 0.0f;
        pc[k] = fold_coord(v, src.domain.lo[k], src.domain.hi[k], a.border);
      }
      return src.view.at(pc);
    }
    case Op::kSelect:
      // Both arms are evaluated (no short-circuit) to match RowEvaluator.
      {
        const float cond = eval_scalar_at(ctx, n.a, c);
        const float t = eval_scalar_at(ctx, n.b, c);
        const float f = eval_scalar_at(ctx, n.c, c);
        return cond != 0.0f ? t : f;
      }
    default:
      if (op_is_unary(n.op))
        return apply_unary(n.op, eval_scalar_at(ctx, n.a, c));
      if (op_is_binary(n.op)) {
        const float a = eval_scalar_at(ctx, n.a, c);
        const float b = eval_scalar_at(ctx, n.b, c);
        return apply_binary(n.op, a, b);
      }
      break;
  }
  FUSEDP_CHECK(false, "unhandled op");
  return 0.0f;
}

void RowEvaluator::eval_load(const StageEvalCtx& ctx, const ExprNode& n,
                             float* out) {
  const Stage& s = *ctx.stage;
  const Access& a = s.loads[static_cast<std::size_t>(n.load_id)];
  const LoadSrc& src = ctx.srcs[static_cast<std::size_t>(n.load_id)];
  const int prank = static_cast<int>(a.axes.size());
  const int last = s.rank() - 1;

  if (a.border != Border::kClamp) {
    // Non-clamp borders take a fully general gather (they are rare and only
    // differ near domain edges).
    const float* dyn[kMaxDims] = {nullptr, nullptr, nullptr, nullptr};
    for (int k = 0; k < prank; ++k)
      if (a.axes[static_cast<std::size_t>(k)].kind ==
          AxisMap::Kind::kDynamic)
        dyn[k] = eval_node(ctx, a.axes[static_cast<std::size_t>(k)].dyn);
    std::int64_t c[kMaxDims];
    for (std::size_t i = 0; i < n_; ++i) {
      const std::int64_t y = y0_ + static_cast<std::int64_t>(i);
      bool zero = false;
      for (int k = 0; k < prank && !zero; ++k) {
        const AxisMap& m = a.axes[static_cast<std::size_t>(k)];
        std::int64_t v;
        if (m.kind == AxisMap::Kind::kConstant || m.num == 0)
          v = m.offset;
        else if (m.kind == AxisMap::Kind::kDynamic)
          v = static_cast<std::int64_t>(std::floor(dyn[k][i]));
        else
          v = floor_div((m.src_dim == last ? y : base_[m.src_dim]) * m.num +
                            m.pre,
                        m.den) +
              m.offset;
        if (a.border == Border::kZero &&
            (v < src.domain.lo[k] || v > src.domain.hi[k])) {
          zero = true;
          break;
        }
        c[k] = fold_coord(v, src.domain.lo[k], src.domain.hi[k], a.border);
      }
      out[i] = zero ? 0.0f : src.view.at(c);
    }
    return;
  }

  // Classify axes: fixed coordinate, varying-affine along the row, or
  // dynamic rows.
  std::int64_t fixed[kMaxDims] = {0, 0, 0, 0};
  int vary_axis = -1;
  const float* dyn_rows[kMaxDims] = {nullptr, nullptr, nullptr, nullptr};
  bool any_dyn = false;
  for (int k = 0; k < prank; ++k) {
    const AxisMap& m = a.axes[static_cast<std::size_t>(k)];
    switch (m.kind) {
      case AxisMap::Kind::kConstant:
        fixed[k] = clamp_i64(m.offset, src.domain.lo[k], src.domain.hi[k]);
        break;
      case AxisMap::Kind::kDynamic:
        dyn_rows[k] = eval_node(ctx, m.dyn);
        any_dyn = true;
        break;
      case AxisMap::Kind::kAffine:
        if (m.num != 0 && m.src_dim == last) {
          FUSEDP_DCHECK(vary_axis == -1 || vary_axis == k,
                        "duplicate varying axis");
          vary_axis = k;
        } else {
          const std::int64_t v =
              m.num == 0
                  ? m.offset
                  : floor_div(base_[m.src_dim] * m.num + m.pre, m.den) +
                        m.offset;
          fixed[k] = clamp_i64(v, src.domain.lo[k], src.domain.hi[k]);
        }
        break;
    }
  }

  if (!any_dyn && vary_axis >= 0) {
    const AxisMap& vm = a.axes[static_cast<std::size_t>(vary_axis)];
    if (vm.num == 1 && vm.den == 1 && vm.pre == 0) {
      // Fast path: contiguous-in-producer along the row (possibly strided if
      // the varying producer axis is not innermost).
      std::int64_t c[kMaxDims];
      for (int k = 0; k < prank; ++k) c[k] = fixed[k];
      const std::int64_t plo = src.domain.lo[vary_axis];
      const std::int64_t phi = src.domain.hi[vary_axis];
      const std::int64_t stride = src.view.stride[vary_axis];
      // Row element i reads producer coordinate y0+i+offset, clamped.
      const std::int64_t first = y0_ + vm.offset;
      // Elements clamped to the low edge: i < plo - first.
      const std::int64_t pre =
          std::clamp<std::int64_t>(plo - first, 0, static_cast<std::int64_t>(n_));
      // Elements beyond the high edge start at i > phi - first.
      const std::int64_t post_start = std::clamp<std::int64_t>(
          phi - first + 1, 0, static_cast<std::int64_t>(n_));
      // Edge values are only read when clamping actually occurs: for
      // interior tiles the domain boundary lies outside the scratch view.
      if (pre > 0) {
        c[vary_axis] = plo;
        const float lo_val = src.view.at(c);
        for (std::int64_t i = 0; i < pre; ++i) out[i] = lo_val;
      }
      if (post_start > pre) {
        c[vary_axis] = first + pre;
        const float* p = src.view.data + src.view.offset_of(c);
        const std::size_t body = static_cast<std::size_t>(post_start - pre);
        if (stride == 1) {
          for (std::size_t i = 0; i < body; ++i)
            out[static_cast<std::size_t>(pre) + i] = p[i];
        } else {
          for (std::size_t i = 0; i < body; ++i)
            out[static_cast<std::size_t>(pre) + i] =
                p[static_cast<std::int64_t>(i) * stride];
        }
      }
      if (post_start < static_cast<std::int64_t>(n_)) {
        c[vary_axis] = phi;
        const float hi_val = src.view.at(c);
        for (std::int64_t i = post_start; i < static_cast<std::int64_t>(n_);
             ++i)
          out[i] = hi_val;
      }
      return;
    }
    // Scaled gather along the row (up/down-sampling).
    std::int64_t c[kMaxDims];
    for (int k = 0; k < prank; ++k) c[k] = fixed[k];
    for (std::size_t i = 0; i < n_; ++i) {
      const std::int64_t y = y0_ + static_cast<std::int64_t>(i);
      c[vary_axis] =
          clamp_i64(floor_div(y * vm.num + vm.pre, vm.den) + vm.offset,
                    src.domain.lo[vary_axis], src.domain.hi[vary_axis]);
      out[i] = src.view.at(c);
    }
    return;
  }

  if (!any_dyn && vary_axis < 0) {
    // Every axis fixed: broadcast one element.
    const float v = src.view.at(fixed);
    for (std::size_t i = 0; i < n_; ++i) out[i] = v;
    return;
  }

  // General gather with dynamic axes.
  std::int64_t c[kMaxDims];
  for (std::size_t i = 0; i < n_; ++i) {
    const std::int64_t y = y0_ + static_cast<std::int64_t>(i);
    for (int k = 0; k < prank; ++k) {
      const AxisMap& m = a.axes[static_cast<std::size_t>(k)];
      if (m.kind == AxisMap::Kind::kDynamic) {
        c[k] = clamp_i64(static_cast<std::int64_t>(std::floor(dyn_rows[k][i])),
                         src.domain.lo[k], src.domain.hi[k]);
      } else if (m.kind == AxisMap::Kind::kAffine && m.num != 0 &&
                 m.src_dim == last) {
        c[k] = clamp_i64(floor_div(y * m.num + m.pre, m.den) + m.offset,
                         src.domain.lo[k], src.domain.hi[k]);
      } else {
        c[k] = fixed[k];
      }
    }
    out[i] = src.view.at(c);
  }
}

const float* RowEvaluator::eval_node(const StageEvalCtx& ctx, ExprRef r) {
  const std::size_t idx = static_cast<std::size_t>(r);
  if (stamp_[idx] == serial_) return rows_ + idx * stride_;
  stamp_[idx] = serial_;
  float* out = rows_ + idx * stride_;
  const ExprNode& n = ctx.stage->nodes[idx];
  switch (n.op) {
    case Op::kConst:
      FUSEDP_SIMD
      for (std::size_t i = 0; i < n_; ++i) out[i] = n.imm;
      break;
    case Op::kCoord:
      if (n.dim == ctx.stage->rank() - 1) {
        FUSEDP_SIMD
        for (std::size_t i = 0; i < n_; ++i)
          out[i] = static_cast<float>(y0_ + static_cast<std::int64_t>(i));
      } else {
        const float v = static_cast<float>(base_[n.dim]);
        FUSEDP_SIMD
        for (std::size_t i = 0; i < n_; ++i) out[i] = v;
      }
      break;
    case Op::kLoad:
      eval_load(ctx, n, out);
      break;
    case Op::kSelect: {
      const float* c = eval_node(ctx, n.a);
      const float* t = eval_node(ctx, n.b);
      const float* f = eval_node(ctx, n.c);
      FUSEDP_SIMD
      for (std::size_t i = 0; i < n_; ++i) out[i] = c[i] != 0.0f ? t[i] : f[i];
      break;
    }
// kExp/kLog/kPow stay unannotated: scalar-libm by policy (bit-exactness).
#define FUSEDP_UNARY_CASE(OP, SIMD_PRAGMA)                                 \
  case Op::OP: {                                                           \
    const float* a = eval_node(ctx, n.a);                                  \
    SIMD_PRAGMA                                                            \
    for (std::size_t i = 0; i < n_; ++i)                                   \
      out[i] = apply_unary(Op::OP, a[i]);                                  \
  } break;
    FUSEDP_UNARY_CASE(kNeg, FUSEDP_SIMD)
    FUSEDP_UNARY_CASE(kAbs, FUSEDP_SIMD)
    FUSEDP_UNARY_CASE(kSqrt, FUSEDP_SIMD)
    FUSEDP_UNARY_CASE(kExp, )
    FUSEDP_UNARY_CASE(kLog, )
    FUSEDP_UNARY_CASE(kFloor, FUSEDP_SIMD)
#undef FUSEDP_UNARY_CASE
#define FUSEDP_BINARY_CASE(OP, SIMD_PRAGMA)                                \
  case Op::OP: {                                                           \
    const float* a = eval_node(ctx, n.a);                                  \
    const float* b = eval_node(ctx, n.b);                                  \
    SIMD_PRAGMA                                                            \
    for (std::size_t i = 0; i < n_; ++i)                                   \
      out[i] = apply_binary(Op::OP, a[i], b[i]);                           \
  } break;
    FUSEDP_BINARY_CASE(kAdd, FUSEDP_SIMD)
    FUSEDP_BINARY_CASE(kSub, FUSEDP_SIMD)
    FUSEDP_BINARY_CASE(kMul, FUSEDP_SIMD)
    FUSEDP_BINARY_CASE(kDiv, FUSEDP_SIMD)
    FUSEDP_BINARY_CASE(kMin, FUSEDP_SIMD)
    FUSEDP_BINARY_CASE(kMax, FUSEDP_SIMD)
    FUSEDP_BINARY_CASE(kPow, )
    FUSEDP_BINARY_CASE(kLt, FUSEDP_SIMD)
    FUSEDP_BINARY_CASE(kLe, FUSEDP_SIMD)
    FUSEDP_BINARY_CASE(kEq, FUSEDP_SIMD)
    FUSEDP_BINARY_CASE(kAnd, FUSEDP_SIMD)
    FUSEDP_BINARY_CASE(kOr, FUSEDP_SIMD)
#undef FUSEDP_BINARY_CASE
  }
  return out;
}

void RowEvaluator::eval_row(const StageEvalCtx& ctx, const std::int64_t* base,
                            std::int64_t y0, std::int64_t y1, float* out) {
  const std::size_t nnodes = ctx.stage->nodes.size();
  n_ = static_cast<std::size_t>(y1 - y0 + 1);
  base_ = base;
  y0_ = y0;
  y1_ = y1;
  rows_ = guard_.carve(arena_, nnodes, pad_row_floats(n_), stride_);
  // Test-only synthetic overrun: scribbles into row register 0's guard
  // line, proving the post-tile canary check catches an in-arena smash.
  if (guard_.enabled() && nnodes > 0)
    FUSEDP_FAULT_CORRUPT("eval.guard_overrun", rows_[stride_ - 1]);
  if (stamp_.size() < nnodes) stamp_.resize(nnodes, 0);
  ++serial_;
  if (serial_ == 0) {  // wrapped: invalidate all stamps
    std::fill(stamp_.begin(), stamp_.end(), 0);
    serial_ = 1;
  }
  const float* res = eval_node(ctx, ctx.stage->body);
  std::copy(res, res + n_, out);
}

}  // namespace fusedp
