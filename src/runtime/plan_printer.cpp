#include "runtime/plan_printer.hpp"

#include <sstream>

#include "ir/printer.hpp"

namespace fusedp {

std::string plan_to_string(const ExecutablePlan& plan) {
  const Pipeline& pl = *plan.pipeline;
  std::ostringstream out;
  out << "// executable plan for pipeline '" << pl.name() << "' ("
      << plan.groups.size() << " groups)\n";
  int gi = 0;
  for (const GroupPlan& g : plan.groups) {
    out << "\n// group " << gi++ << ": " << g.stages.to_string() << "\n";
    if (g.is_reduction) {
      const Stage& st = pl.stage(g.stages.first());
      out << "reduce " << st.name << st.domain.to_string()
          << "  // native, per-cell parallel\n";
      continue;
    }
    out << "#pragma omp parallel for schedule(dynamic)  // " << g.total_tiles
        << " independent overlapped tiles"
        << (g.region_template.translatable ? ", translatable region template"
                                           : "")
        << "\n";
    out << "for tile (";
    for (int d = 0; d < g.align.num_classes; ++d) {
      if (d) out << ", ";
      out << g.tiles_per_dim[static_cast<std::size_t>(d)];
    }
    out << ") of size [";
    for (int d = 0; d < g.align.num_classes; ++d) {
      if (d) out << "x";
      out << g.tile_sizes[static_cast<std::size_t>(d)];
    }
    out << "] {\n";
    // Group totals of the vector-backend statistics, so a reader can see at
    // a glance how much of the group's work runs in fused kernels and how
    // small its per-row register working set is.
    std::int32_t group_regs = 0, group_fused = 0;
    for (int s : g.stage_order) {
      const CompiledStage& cs = plan.compiled[static_cast<std::size_t>(s)];
      if (!cs.valid()) continue;
      group_regs += cs.num_regs;
      group_fused += cs.fused;
    }
    out << "// row registers: " << group_regs
        << " total, fused superops: " << group_fused << "\n";
    for (int s : g.stage_order) {
      const Stage& st = pl.stage(s);
      const bool mat = plan.materialized[static_cast<std::size_t>(s)];
      out << "  // " << st.name;
      if (st.rank() > 0) {
        out << ": scale";
        const StageAlign& sa = g.align.stages[static_cast<std::size_t>(s)];
        for (int d = 0; d < st.rank(); ++d) {
          const DimAlign& da = sa.dim[static_cast<std::size_t>(d)];
          out << " " << da.sn << "/" << da.sd;
        }
      }
      const CompiledStage& cs = plan.compiled[static_cast<std::size_t>(s)];
      if (cs.valid())
        out << "  // compiled: " << cs.num_slots() << " ops (from "
            << cs.source_nodes << " nodes, " << cs.folded << " folded, "
            << cs.cse_hits << " cse), " << cs.num_regs << " regs, "
            << cs.fused << " fused";
      out << "\n";
      out << "  for (required region of " << st.name << ")  "
          << (mat ? "compute -> buffer (via scratch + owned-slice publish "
                    "when the region carries a halo)"
                  : "compute -> per-thread scratch")
          << "\n";
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace fusedp
