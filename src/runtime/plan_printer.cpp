#include "runtime/plan_printer.hpp"

#include <sstream>

#include "ir/printer.hpp"

namespace fusedp {

namespace {

// Measured record for plan group `index`, if the trace has one.
const observe::GroupRecord* measured_group(const observe::RunTrace* trace,
                                           int index) {
  if (trace == nullptr) return nullptr;
  for (const observe::GroupRecord& r : trace->groups)
    if (r.index == index) return &r;
  return nullptr;
}

}  // namespace

std::string plan_to_string(const ExecutablePlan& plan,
                           const observe::RunTrace* trace) {
  const Pipeline& pl = *plan.pipeline;
  std::ostringstream out;
  out << "// executable plan for pipeline '" << pl.name() << "' ("
      << plan.groups.size() << " groups)\n";
  int gi = 0;
  for (const GroupPlan& g : plan.groups) {
    const int index = gi++;
    out << "\n// group " << index << ": " << g.stages.to_string();
    if (g.model_cost > 0.0) out << "  // predicted cost " << g.model_cost;
    if (const observe::GroupRecord* m = measured_group(trace, index)) {
      out << "  // measured " << m->seconds * 1e3 << " ms";
      if (m->computed_elems > 0)
        out << ", "
            << 100.0 *
                   static_cast<double>(m->computed_elems - m->owned_elems) /
                   static_cast<double>(m->computed_elems)
            << "% redundant";
    }
    out << "\n";
    if (g.is_reduction) {
      const Stage& st = pl.stage(g.stages.first());
      out << "reduce " << st.name << st.domain.to_string()
          << "  // native, per-cell parallel\n";
      continue;
    }
    out << "#pragma omp parallel for schedule(dynamic)  // " << g.total_tiles
        << " independent overlapped tiles"
        << (g.region_template.translatable ? ", translatable region template"
                                           : "")
        << "\n";
    out << "for tile (";
    for (int d = 0; d < g.align.num_classes; ++d) {
      if (d) out << ", ";
      out << g.tiles_per_dim[static_cast<std::size_t>(d)];
    }
    out << ") of size [";
    for (int d = 0; d < g.align.num_classes; ++d) {
      if (d) out << "x";
      out << g.tile_sizes[static_cast<std::size_t>(d)];
    }
    out << "] {\n";
    // Group totals of the vector-backend statistics, so a reader can see at
    // a glance how much of the group's work runs in fused kernels and how
    // small its per-row register working set is.
    std::int32_t group_regs = 0, group_fused = 0;
    for (int s : g.stage_order) {
      const CompiledStage& cs = plan.compiled[static_cast<std::size_t>(s)];
      if (!cs.valid()) continue;
      group_regs += cs.num_regs;
      group_fused += cs.fused;
    }
    out << "// row registers: " << group_regs
        << " total, fused superops: " << group_fused << "\n";
    if (g.verdict.measured) {
      out << "// never-pessimize: micro-measured " << g.verdict.vector_ms
          << " ms vector vs " << g.verdict.scalar_ms << " ms plain ("
          << benefit_cause_name(g.verdict.cause) << ") -> "
          << (g.verdict.demoted ? "demoted to plain compilation"
                                : "vector form kept")
          << "\n";
    } else if (g.verdict.cause != BenefitCause::kNone) {
      out << "// never-pessimize: suspect ("
          << benefit_cause_name(g.verdict.cause) << "), not measured\n";
    }
    for (int s : g.stage_order) {
      const Stage& st = pl.stage(s);
      const bool mat = plan.materialized[static_cast<std::size_t>(s)];
      out << "  // " << st.name;
      if (st.rank() > 0) {
        out << ": scale";
        const StageAlign& sa = g.align.stages[static_cast<std::size_t>(s)];
        for (int d = 0; d < st.rank(); ++d) {
          const DimAlign& da = sa.dim[static_cast<std::size_t>(d)];
          out << " " << da.sn << "/" << da.sd;
        }
      }
      const CompiledStage& cs = plan.compiled[static_cast<std::size_t>(s)];
      if (cs.valid())
        out << "  // compiled: " << cs.num_slots() << " ops (from "
            << cs.source_nodes << " nodes, " << cs.folded << " folded, "
            << cs.cse_hits << " cse), " << cs.num_regs << " regs, "
            << cs.fused << " fused";
      out << "\n";
      out << "  for (required region of " << st.name << ")  "
          << (mat ? "compute -> buffer (via scratch + owned-slice publish "
                    "when the region carries a halo)"
                  : "compute -> per-thread scratch")
          << "\n";
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace fusedp
