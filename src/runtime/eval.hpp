// Stage-body evaluators.
//
// Two implementations with identical semantics (tests assert bit-equality):
//  * eval_scalar_at — straightforward per-point AST interpretation; the
//    golden reference.
//  * RowEvaluator — evaluates the AST one innermost-dimension run at a time,
//    materializing each AST node into a contiguous row so the host compiler
//    auto-vectorizes the per-op loops.  This is FuseDP's stand-in for
//    PolyMage's generated C++ (see DESIGN.md).
//
// Loads clamp computed producer coordinates to the producer's domain
// (clamp-to-edge borders).  `LoadSrc::view` must cover every in-domain
// coordinate an access can produce from the evaluated region — the plan
// lowering guarantees this via required-region propagation.
#pragma once

#include <vector>

#include "ir/stage.hpp"
#include "support/buffer.hpp"
#include "support/vec.hpp"

namespace fusedp {

struct LoadSrc {
  BufferView view;
  Box domain;  // producer domain, for border clamping
};

struct StageEvalCtx {
  const Stage* stage = nullptr;
  std::vector<LoadSrc> srcs;  // indexed by ExprNode::load_id
};

// Evaluates expression `r` of the stage at point `c` (stage coordinates).
float eval_scalar_at(const StageEvalCtx& ctx, ExprRef r,
                     const std::int64_t* c);

class RowEvaluator {
 public:
  // Evaluates the stage body over {base[0..rank-2] fixed, last dim in
  // [y0, y1]} (inclusive) and writes the y1-y0+1 results to `out`.
  void eval_row(const StageEvalCtx& ctx, const std::int64_t* base,
                std::int64_t y0, std::int64_t y1, float* out);

  // Guard-arena mode (ExecOptions::guard_arena): canary lines around every
  // per-node row; check_guards() throws a coded Error on a smash.
  void set_guard_arena(bool on) { guard_.set_enabled(on); }
  void check_guards() const { guard_.check("RowEvaluator"); }

  // Arena high-water (floats) for the observability layer's scratch-bytes
  // accounting.
  std::size_t arena_floats() const { return arena_.capacity(); }

 private:
  const float* eval_node(const StageEvalCtx& ctx, ExprRef r);
  void eval_load(const StageEvalCtx& ctx, const ExprNode& n, float* out);

  // Per-AST-node result rows, carved from one 64-byte-aligned arena at a
  // cache-line-padded stride (same allocation scheme as the compiled
  // backend, so interpreted-vs-compiled comparisons measure execution
  // strategy, not allocator noise); `stamp_` implements per-row memoization
  // so shared subexpressions are evaluated once.
  ScratchArena arena_;
  RowGuard guard_;
  float* rows_ = nullptr;
  std::size_t stride_ = 0;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t serial_ = 0;
  const std::int64_t* base_ = nullptr;
  std::int64_t y0_ = 0, y1_ = 0;
  std::size_t n_ = 0;
};

}  // namespace fusedp
