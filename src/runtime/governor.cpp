#include "runtime/governor.hpp"

#include "support/memhook.hpp"
#include "support/status.hpp"

namespace fusedp {

namespace {

void hook_charge(std::int64_t bytes) { ResourceGovernor::instance().charge(bytes); }
void hook_uncharge(std::int64_t bytes) {
  ResourceGovernor::instance().uncharge(bytes);
}

}  // namespace

ResourceGovernor& ResourceGovernor::instance() {
  // Leaky singleton: never destroyed, so arenas releasing charges during
  // static destruction (or after main returns) stay safe.
  static ResourceGovernor* g = new ResourceGovernor();
  return *g;
}

ResourceGovernor::ResourceGovernor() {
  detail::mem_charge.store(&hook_charge, std::memory_order_release);
  detail::mem_uncharge.store(&hook_uncharge, std::memory_order_release);
}

void ResourceGovernor::set_budget(std::int64_t bytes,
                                  double max_queue_wait_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes < 0 ? 0 : bytes;
  if (max_queue_wait_seconds < 0) max_queue_wait_seconds = 0;
  max_wait_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(max_queue_wait_seconds));
}

std::int64_t ResourceGovernor::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

void ResourceGovernor::charge(std::int64_t bytes) {
  if (bytes <= 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  auto fits = [&] { return budget_ == 0 || used_ + bytes <= budget_; };
  if (!fits()) {
    // Bounded backoff: another request releasing memory wakes us; if the
    // budget still cannot admit us within the window, reject with a coded
    // error instead of blocking the Session indefinitely.
    ++waits_;
    const auto deadline = std::chrono::steady_clock::now() + max_wait_;
    while (!fits()) {
      if (released_.wait_until(lock, deadline) == std::cv_status::timeout &&
          !fits()) {
        ++rejections_;
        const std::int64_t used = used_, budget = budget_;
        lock.unlock();
        throw Error("memory budget exhausted: " + std::to_string(used) +
                        " bytes in use of " + std::to_string(budget) +
                        "-byte budget, requested " + std::to_string(bytes) +
                        " more",
                    ErrorCode::kResourceExhausted);
      }
    }
  }
  used_ += bytes;
  if (used_ > high_water_) high_water_ = used_;
}

void ResourceGovernor::uncharge(std::int64_t bytes) noexcept {
  if (bytes <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    used_ -= bytes;
    if (used_ < 0) used_ = 0;  // defensive: mismatched uncharge
  }
  released_.notify_all();
}

std::int64_t ResourceGovernor::used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

std::int64_t ResourceGovernor::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

std::uint64_t ResourceGovernor::rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejections_;
}

std::uint64_t ResourceGovernor::waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waits_;
}

void ResourceGovernor::reset_for_test() {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = 0;
  max_wait_ = std::chrono::milliseconds(50);
  high_water_ = used_;
  rejections_ = 0;
  waits_ = 0;
}

void GovernedCharge::adjust_to(std::int64_t target_bytes) {
  if (target_bytes < 0) target_bytes = 0;
  if (target_bytes > bytes_) {
    ResourceGovernor::instance().charge(target_bytes - bytes_);  // may throw
  } else if (target_bytes < bytes_) {
    ResourceGovernor::instance().uncharge(bytes_ - target_bytes);
  }
  bytes_ = target_bytes;
}

void GovernedCharge::release() noexcept {
  if (bytes_ > 0) {
    ResourceGovernor::instance().uncharge(bytes_);
    bytes_ = 0;
  }
}

}  // namespace fusedp
