// Bounded incremental grouping (paper Section 5, Algorithm 3).
//
// Runs the DP with a group-size limit l, coalesces the resulting groups into
// super-nodes of a quotient graph, multiplies l by `step`, and repeats until
// the limit covers the whole pipeline (the final iteration runs unbounded).
// This keeps DP time bounded on large graphs (paper Table 2: camera pipeline
// and pyramid blending).
#pragma once

#include "fusion/dp.hpp"

namespace fusedp {

struct IncOptions {
  // First-pass group limit.  2 keeps the first pass (on the full stage
  // graph, where parallel chains multiply the state space) small; later
  // passes run on ever-smaller condensed graphs.
  int initial_limit = 2;
  int step = 2;            // multiplicative growth of the limit
  std::uint64_t max_states = 50'000'000;
  // Wall-clock deadline over all iterations combined; <= 0 means none.
  // Each DP pass runs under the time remaining when it starts.
  double deadline_seconds = 0.0;
};

struct IncStats {
  std::uint64_t groupings_enumerated = 0;  // summed over iterations
  int max_succ = 0;
  int iterations = 0;
  double seconds = 0.0;
};

class IncFusion {
 public:
  IncFusion(const Pipeline& pl, const CostModel& model, IncOptions opts = {});

  Grouping run();
  const IncStats& stats() const { return stats_; }

 private:
  const Pipeline* pl_;
  const CostModel* model_;
  IncOptions opts_;
  IncStats stats_;
};

}  // namespace fusedp
