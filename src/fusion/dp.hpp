// The paper's dynamic-programming grouping (Section 3, Algorithm 1).
//
// State: G = a set of disjoint "open" groups, each a connected set of
// quotient-graph nodes.  The recurrence (Figure 5) either grows one group by
// a successor (Case I, with the cycle-validity check of Algorithm 1 lines
// 9-13), or finalizes all of G and restarts from every set-partition of the
// successor frontier (Case II).  Memoization over canonicalized states makes
// a linear n-stage pipeline cost O(n^2) states while effectively evaluating
// all 2^(n-1) groupings.
//
// The DP runs on a *quotient graph* so that the bounded incremental variant
// (Algorithm 3) can coalesce a previous grouping into super-nodes and rerun.
// A dummy source node (paper Section 3.1) is added when the pipeline has
// multiple sources; it participates in grouping with zero cost.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "fusion/grouping.hpp"
#include "support/timing.hpp"

namespace fusedp {

// Condensed view of the pipeline for the DP: node i of `graph` stands for
// the original stages in underlying[i].  `dummy` (if >= 0) is an artificial
// source with empty underlying set.
struct QuotientGraph {
  Digraph graph;
  std::vector<NodeSet> underlying;  // original stage sets per quotient node
  int dummy = -1;

  int num_nodes() const { return graph.num_nodes(); }
  NodeSet expand(NodeSet quotient_nodes) const;

  // One quotient node per pipeline stage (plus a dummy source if needed).
  static QuotientGraph identity(const Pipeline& pl);
  // One quotient node per group of `g` (plus a dummy source if needed).
  static QuotientGraph condense(const Pipeline& pl, const Grouping& g);
};

struct DpOptions {
  // Maximum number of original stages per group (paper's groupLimit l);
  // <= 0 means unbounded.
  int group_limit = 0;
  // Case II enumerates all set partitions of the successor frontier
  // (Bell(k) of them) up to this width; wider frontiers fall back to the
  // all-singletons partition.  Bell(6) = 203.
  int max_partition_width = 6;
  // Safety valve: abort (throw Error with kSearchBudgetExhausted) past this
  // many DP states.
  std::uint64_t max_states = 50'000'000;
  // Wall-clock deadline for the search, measured from run()/run_on() entry;
  // <= 0 means none.  Checked every few hundred states; exceeding it throws
  // Error with kDeadlineExceeded.  The autoschedule driver catches both
  // codes and falls back to a cheaper tier.
  double deadline_seconds = 0.0;
};

struct DpStats {
  std::uint64_t groupings_enumerated = 0;  // distinct states evaluated
  int max_succ = 0;                        // max |SUCC(G)| seen (Table 2)
  double seconds = 0.0;
};

class DpFusion {
 public:
  DpFusion(const Pipeline& pl, const CostModel& model, DpOptions opts = {});

  // Runs Algorithm 1 from {{source}} and returns the optimal grouping.
  Grouping run();
  // Same, but over an explicit quotient graph (used by Algorithm 3).
  Grouping run_on(const QuotientGraph& q);

  const DpStats& stats() const { return stats_; }

 private:
  struct Entry {
    double cost = kInfiniteCost;
    std::vector<std::uint64_t> final_groups;  // quotient-node sets
  };
  using Key = std::vector<std::uint64_t>;
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = 1469598103934665603ull;
      for (std::uint64_t v : k) {
        h ^= v;
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  const Entry& solve(const std::vector<NodeSet>& groups);
  double group_cost(NodeSet quotient_group);
  // Cheap monotone validity check used to prune Case I merges.
  bool merge_feasible(NodeSet quotient_group);
  // Complete cycle-validity: no path between members leaves the group.
  bool sandwich_free(NodeSet quotient_group);

  const Pipeline* pl_;
  const CostModel* model_;
  DpOptions opts_;
  DpStats stats_;
  WallTimer deadline_timer_;  // restarted at run_on() entry
  const QuotientGraph* q_ = nullptr;
  std::unordered_map<Key, Entry, KeyHash> memo_;
  std::unordered_map<std::uint64_t, double> cost_memo_;
  std::unordered_map<std::uint64_t, bool> feas_memo_;
  std::unordered_map<std::uint64_t, bool> sandwich_memo_;
};

}  // namespace fusedp
