#include "fusion/incremental.hpp"

#include "support/timing.hpp"

namespace fusedp {

IncFusion::IncFusion(const Pipeline& pl, const CostModel& model,
                     IncOptions opts)
    : pl_(&pl), model_(&model), opts_(opts) {}

Grouping IncFusion::run() {
  WallTimer timer;
  FUSEDP_CHECK_CODE(opts_.initial_limit >= 1 && opts_.step >= 2,
                    ErrorCode::kInvalidArgument, "bad incremental options");
  int limit = opts_.initial_limit;
  QuotientGraph q = QuotientGraph::identity(*pl_);
  Grouping current;

  for (;;) {
    ++stats_.iterations;
    DpOptions dopts;
    dopts.group_limit = limit >= pl_->num_stages() ? 0 : limit;
    dopts.max_states = opts_.max_states;
    if (opts_.deadline_seconds > 0) {
      const double remaining = opts_.deadline_seconds - timer.seconds();
      FUSEDP_CHECK_CODE(remaining > 0, ErrorCode::kDeadlineExceeded,
                        "incremental grouping deadline exceeded after " +
                            std::to_string(stats_.iterations - 1) +
                            " iterations");
      dopts.deadline_seconds = remaining;
    }
    DpFusion dp(*pl_, *model_, dopts);
    current = dp.run_on(q);
    stats_.groupings_enumerated += dp.stats().groupings_enumerated;
    stats_.max_succ = std::max(stats_.max_succ, dp.stats().max_succ);
    if (dopts.group_limit == 0) break;  // final unbounded pass done
    // Coalesce the grouping into super-nodes and raise the limit.
    q = QuotientGraph::condense(*pl_, current);
    limit *= opts_.step;
  }
  stats_.seconds = timer.seconds();
  return current;
}

}  // namespace fusedp
