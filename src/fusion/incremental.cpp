#include "fusion/incremental.hpp"

#include "support/timing.hpp"

namespace fusedp {

IncFusion::IncFusion(const Pipeline& pl, const CostModel& model,
                     IncOptions opts)
    : pl_(&pl), model_(&model), opts_(opts) {}

Grouping IncFusion::run() {
  WallTimer timer;
  FUSEDP_CHECK(opts_.initial_limit >= 1 && opts_.step >= 2,
               "bad incremental options");
  int limit = opts_.initial_limit;
  QuotientGraph q = QuotientGraph::identity(*pl_);
  Grouping current;

  for (;;) {
    ++stats_.iterations;
    DpOptions dopts;
    dopts.group_limit = limit >= pl_->num_stages() ? 0 : limit;
    dopts.max_states = opts_.max_states;
    DpFusion dp(*pl_, *model_, dopts);
    current = dp.run_on(q);
    stats_.groupings_enumerated += dp.stats().groupings_enumerated;
    stats_.max_succ = std::max(stats_.max_succ, dp.stats().max_succ);
    if (dopts.group_limit == 0) break;  // final unbounded pass done
    // Coalesce the grouping into super-nodes and raise the limit.
    q = QuotientGraph::condense(*pl_, current);
    limit *= opts_.step;
  }
  stats_.seconds = timer.seconds();
  return current;
}

}  // namespace fusedp
