#include "fusion/dp.hpp"

#include <algorithm>

#include "graph/partitions.hpp"
#include "support/timing.hpp"

namespace fusedp {

NodeSet QuotientGraph::expand(NodeSet quotient_nodes) const {
  NodeSet out;
  quotient_nodes.for_each([&](int n) {
    out = out | underlying[static_cast<std::size_t>(n)];
  });
  return out;
}

QuotientGraph QuotientGraph::identity(const Pipeline& pl) {
  QuotientGraph q;
  const int n = pl.num_stages();
  const NodeSet srcs = pl.graph().sources();
  const bool need_dummy = srcs.size() > 1;
  const int total = n + (need_dummy ? 1 : 0);
  FUSEDP_CHECK_CODE(total <= kMaxNodes, ErrorCode::kInvalidPipeline,
                    "pipeline too large for quotient graph");
  q.graph = Digraph(total);
  q.underlying.assign(static_cast<std::size_t>(total), NodeSet());
  for (int i = 0; i < n; ++i) {
    q.underlying[static_cast<std::size_t>(i)] = NodeSet::single(i);
    pl.graph().successors(i).for_each([&](int s) { q.graph.add_edge(i, s); });
  }
  if (need_dummy) {
    q.dummy = n;
    srcs.for_each([&](int s) { q.graph.add_edge(n, s); });
  }
  q.graph.finalize();
  return q;
}

QuotientGraph QuotientGraph::condense(const Pipeline& pl, const Grouping& g) {
  QuotientGraph q;
  const int n = static_cast<int>(g.groups.size());
  // Count quotient-level sources first to know whether a dummy is needed.
  auto group_index_of = [&](int stage) {
    for (int i = 0; i < n; ++i)
      if (g.groups[static_cast<std::size_t>(i)].stages.contains(stage))
        return i;
    FUSEDP_CHECK_CODE(false, ErrorCode::kInvalidSchedule,
                      "stage not covered by grouping");
    return -1;
  };
  std::vector<std::pair<int, int>> edges;
  std::vector<bool> has_pred(static_cast<std::size_t>(n), false);
  for (int s = 0; s < pl.num_stages(); ++s) {
    const int gs = group_index_of(s);
    pl.graph().successors(s).for_each([&](int t) {
      const int gt = group_index_of(t);
      if (gs != gt) {
        edges.emplace_back(gs, gt);
        has_pred[static_cast<std::size_t>(gt)] = true;
      }
    });
  }
  int nsources = 0;
  for (int i = 0; i < n; ++i)
    if (!has_pred[static_cast<std::size_t>(i)]) ++nsources;
  const bool need_dummy = nsources > 1;
  const int total = n + (need_dummy ? 1 : 0);
  FUSEDP_CHECK(total <= kMaxNodes, "grouping too large for quotient graph");
  q.graph = Digraph(total);
  q.underlying.assign(static_cast<std::size_t>(total), NodeSet());
  for (int i = 0; i < n; ++i)
    q.underlying[static_cast<std::size_t>(i)] =
        g.groups[static_cast<std::size_t>(i)].stages;
  for (auto [a, b] : edges)
    if (!q.graph.has_edge(a, b)) q.graph.add_edge(a, b);
  if (need_dummy) {
    q.dummy = n;
    for (int i = 0; i < n; ++i)
      if (!has_pred[static_cast<std::size_t>(i)]) q.graph.add_edge(n, i);
  }
  q.graph.finalize();
  return q;
}

DpFusion::DpFusion(const Pipeline& pl, const CostModel& model, DpOptions opts)
    : pl_(&pl), model_(&model), opts_(opts) {}

bool DpFusion::sandwich_free(NodeSet h) {
  // A group is valid iff no path between two of its members passes through
  // an outside node ("sandwich").  Per-group sandwich-freeness of every
  // group is equivalent to acyclicity of the final group quotient graph, so
  // this check is complete where Algorithm 1's local successor test
  // (lines 9-13) is only a special case.
  // The dummy source's edges are artificial (it is stripped from the final
  // grouping), so it must not contribute paths to the check.
  if (q_->dummy >= 0) h = h.without(q_->dummy);
  if (h.size() <= 1) return true;
  const auto it = sandwich_memo_.find(h.bits());
  if (it != sandwich_memo_.end()) return it->second;
  NodeSet reach;
  h.for_each([&](int n) { reach = reach | q_->graph.reachable_from(n); });
  bool ok = true;
  (reach - h).for_each([&](int t) {
    if (q_->graph.reachable_from(t).intersects(h)) ok = false;
  });
  sandwich_memo_.emplace(h.bits(), ok);
  return ok;
}

bool DpFusion::merge_feasible(NodeSet quotient_group) {
  const NodeSet stages = q_->expand(quotient_group);
  if (stages.size() <= 1) return true;
  const auto it = feas_memo_.find(stages.bits());
  if (it != feas_memo_.end()) return it->second;
  // Only *monotone* infeasibilities may prune here: a reduction in a
  // multi-stage group, a dynamic in-group access, or a scaling conflict can
  // never be fixed by adding more stages.  (Class-count overflow or
  // disconnectedness CAN resolve later and must not prune.)
  bool ok = true;
  stages.for_each([&](int s) {
    if (pl_->stage(s).kind == StageKind::kReduction) ok = false;
  });
  if (ok) ok = !solve_alignment(*pl_, stages).hard_conflict;
  feas_memo_.emplace(stages.bits(), ok);
  return ok;
}

double DpFusion::group_cost(NodeSet quotient_group) {
  const NodeSet stages = q_->expand(quotient_group);
  if (stages.empty()) return 0.0;  // dummy-only group
  const auto it = cost_memo_.find(stages.bits());
  if (it != cost_memo_.end()) return it->second;
  const double c = model_->cost(stages).cost;
  cost_memo_.emplace(stages.bits(), c);
  return c;
}

const DpFusion::Entry& DpFusion::solve(const std::vector<NodeSet>& groups) {
  Key key;
  key.reserve(groups.size());
  for (NodeSet g : groups) key.push_back(g.bits());
  std::sort(key.begin(), key.end());
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

  ++stats_.groupings_enumerated;
  FUSEDP_CHECK_CODE(
      stats_.groupings_enumerated <= opts_.max_states,
      ErrorCode::kSearchBudgetExhausted,
      "DP state budget exhausted; use bounded incremental grouping");
  // Deadline valve, next to the state valve: sampled every 256 states to
  // keep the clock read off the hot path.
  if (opts_.deadline_seconds > 0 &&
      (stats_.groupings_enumerated & 0xFF) == 0 &&
      deadline_timer_.seconds() > opts_.deadline_seconds)
    fail(ErrorCode::kDeadlineExceeded,
         "DP deadline of " + std::to_string(opts_.deadline_seconds) +
             "s exceeded after " +
             std::to_string(stats_.groupings_enumerated) + " states",
         __FILE__, __LINE__);

  // State validity: the open groups must admit an execution order (their
  // quotient must be acyclic).  Per-group sandwich-freeness alone is not
  // enough — two internally-valid groups can be mutually cyclic (each
  // reaching into the other).  Thanks to the readiness discipline below, a
  // cycle always materializes among *concurrently open* groups, so this
  // state-level check is complete.  The dummy source's artificial edges are
  // excluded.
  {
    std::vector<NodeSet> real;
    real.reserve(groups.size());
    for (NodeSet g : groups) {
      if (q_->dummy >= 0) g = g.without(q_->dummy);
      if (!g.empty()) real.push_back(g);
    }
    if (!q_->graph.quotient_is_acyclic(real)) {
      Entry bad;  // infeasible state
      return memo_.emplace(std::move(key), std::move(bad)).first->second;
    }
  }

  NodeSet all_nodes;
  for (NodeSet g : groups) all_nodes = all_nodes | g;
  const NodeSet frontier = q_->graph.successors_of_set(all_nodes);

  // Readiness: a frontier node may only be grouped once every one of its
  // producers is inside the current state or already finalized
  // (equivalently: no producer is still downstream of the state).  This
  // processes the DAG in topological waves; any valid final grouping is
  // still constructible by finalizing its groups in quotient-topological
  // order, but the exponential interleaving of far-apart open chains is
  // eliminated.  The topologically-first frontier node is always ready, so
  // progress is guaranteed.  Deferred nodes reappear as successors of the
  // group that completes their last producer.
  NodeSet reach;
  all_nodes.for_each(
      [&](int n) { reach = reach | q_->graph.reachable_from(n); });
  NodeSet ready;
  frontier.for_each([&](int sj) {
    const NodeSet pending = (q_->graph.predecessors(sj) - all_nodes) & reach;
    if (pending.empty()) ready = ready.with(sj);
  });

  Entry e;
  if (frontier.empty()) {
    // Base case (Figure 5): every group is final.
    e.cost = 0.0;
    for (NodeSet g : groups) {
      e.cost += group_cost(g);
      e.final_groups.push_back(g.bits());
    }
    return memo_.emplace(std::move(key), std::move(e)).first->second;
  }
  stats_.max_succ = std::max(stats_.max_succ, frontier.size());

  // Case I: grow some H_i by one of its successors.
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const NodeSet hi = groups[i];
    const NodeSet succ_full = q_->graph.successors_of_set(hi);
    const NodeSet candidates = (succ_full - all_nodes) & ready;
    candidates.for_each([&](int sj) {
      // Group-size bound (Algorithm 3's DP-GROUPING-BOUNDED).
      if (opts_.group_limit > 0) {
        const int sz = q_->expand(hi.with(sj)).size();
        if (sz > opts_.group_limit) return;
      }
      // Feasibility pruning: alignment constraints only get stricter as a
      // group grows, so a merge whose scaling/alignment already fails can
      // never be part of a finite-cost grouping (Algorithm 1 line 15's
      // validity check).  This is exact, not heuristic.
      if (!merge_feasible(hi.with(sj))) return;
      // Cycle-validity check: the complete sandwich-freeness condition
      // (Algorithm 1 lines 9-13 test only the immediate-successor special
      // case, which misses cycles formed by later growth).
      if (!sandwich_free(hi.with(sj))) return;
      std::vector<NodeSet> next = groups;
      next[i] = hi.with(sj);
      const Entry& sub = solve(next);
      if (sub.cost < e.cost) e = sub;
    });
  }

  // Case II: finalize all of G; restart from every partition of the
  // successor frontier.
  double cost_g = 0.0;
  for (NodeSet g : groups) cost_g += group_cost(g);
  FUSEDP_CHECK(!ready.empty(), "non-empty frontier must have a ready node");
  if (cost_g < kInfiniteCost) {
    double best_part = kInfiniteCost;
    const Entry* best_entry = nullptr;
    auto try_partition = [&](const std::vector<NodeSet>& parts) {
      for (const NodeSet& p : parts) {
        if (opts_.group_limit > 0 &&
            q_->expand(p).size() > opts_.group_limit)
          return;
        if (!sandwich_free(p)) return;
      }
      const Entry& sub = solve(parts);
      if (sub.cost < best_part) {
        best_part = sub.cost;
        best_entry = &sub;
      }
    };
    if (ready.size() <= opts_.max_partition_width) {
      for_each_partition(ready, try_partition);
    } else {
      // Wide-frontier fallback: full Bell-number enumeration is
      // intractable, so restart every ready node in its own group.
      // Multi-node sibling groups can still arise on narrower frontiers or
      // via Case I growth; this trades a slice of the search space for
      // bounded time (in the spirit of Section 5's bounded variant).
      std::vector<NodeSet> singletons;
      ready.for_each([&](int n) { singletons.push_back(NodeSet::single(n)); });
      try_partition(singletons);
    }
    if (best_entry != nullptr && cost_g + best_part < e.cost) {
      e.cost = cost_g + best_part;
      e.final_groups.clear();
      for (NodeSet g : groups) e.final_groups.push_back(g.bits());
      for (std::uint64_t fg : best_entry->final_groups)
        e.final_groups.push_back(fg);
    }
  }

  return memo_.emplace(std::move(key), std::move(e)).first->second;
}

Grouping DpFusion::run() {
  const QuotientGraph q = QuotientGraph::identity(*pl_);
  return run_on(q);
}

Grouping DpFusion::run_on(const QuotientGraph& q) {
  WallTimer timer;
  deadline_timer_.restart();
  q_ = &q;
  memo_.clear();
  cost_memo_.clear();
  feas_memo_.clear();
  sandwich_memo_.clear();

  int start = q.dummy;
  if (start < 0) {
    const NodeSet srcs = q.graph.sources();
    FUSEDP_CHECK(srcs.size() == 1, "expected single source or dummy");
    start = srcs.first();
  }
  const std::vector<NodeSet> initial = {NodeSet::single(start)};
  const Entry& best = solve(initial);
  FUSEDP_CHECK(best.cost < kInfiniteCost, "DP found no feasible grouping");

  Grouping out;
  for (std::uint64_t bits : best.final_groups) {
    const NodeSet stages = q.expand(NodeSet(bits));
    if (stages.empty()) continue;  // dummy-only group
    GroupSchedule gs;
    gs.stages = stages;
    out.groups.push_back(gs);
  }
  complete_grouping(*pl_, *model_, out);
  std::string why;
  if (!validate_grouping(*pl_, out, &why)) { std::string dump = out.to_string(*pl_); FUSEDP_CHECK(false, "DP grouping invalid: " + why + "\n" + dump); }
  stats_.seconds = timer.seconds();
  q_ = nullptr;
  return out;
}

}  // namespace fusedp
