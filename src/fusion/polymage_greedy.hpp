// PolyMage's prior fusion heuristic with auto-tuning — the paper's
// "PolyMage-A" baseline (Section 2.2).
//
// Greedy grouping: start with singleton groups; repeatedly find groups whose
// out-edges all land in a single child group (so merging cannot create a
// cycle), sort candidates by decreasing size, and merge a group with its
// child when (1) the merged group's dependences can be made constant by
// scaling/alignment and (2) the overlapped-recomputation fraction of the
// tile is below the overlap tolerance.
//
// One tile size (t1 x t2, applied to the two innermost dimensions of every
// group — PolyMage tiles two dimensions) and the overlap tolerance are
// auto-tuned: every configuration in the grid is timed via a caller-provided
// callback and the fastest wins.  The paper's grid is tile sizes
// {8,16,32,64,128,256} (powers of two only) x tolerances {0.2,0.4,0.5}.
#pragma once

#include <functional>

#include "fusion/grouping.hpp"

namespace fusedp {

struct PolyMageOptions {
  std::vector<std::int64_t> tile_candidates = {8, 16, 32, 64, 128, 256};
  std::vector<double> tolerances = {0.2, 0.4, 0.5};
};

struct PolyMageTuneResult {
  std::int64_t best_t1 = 0;
  std::int64_t best_t2 = 0;
  double best_tolerance = 0.0;
  double best_ms = 0.0;
  int configs_tried = 0;
};

class PolyMageGreedy {
 public:
  PolyMageGreedy(const Pipeline& pl, const CostModel& model,
                 PolyMageOptions opts = {});

  // Grouping for one (tile, tolerance) configuration.
  Grouping run(std::int64_t t1, std::int64_t t2, double tolerance) const;

  // Full auto-tuning loop: times every grid configuration with `time_fn`
  // (milliseconds for executing a grouping) and returns the fastest.
  Grouping tune(const std::function<double(const Grouping&)>& time_fn,
                PolyMageTuneResult* result = nullptr) const;

 private:
  bool merge_ok(NodeSet merged, std::int64_t t1, std::int64_t t2,
                double tolerance) const;
  // Like complete_grouping() but preserves the uniform tuned tile sizes.
  void complete_grouping_keep_tiles(Grouping& g) const;

  const Pipeline* pl_;
  const CostModel* model_;
  PolyMageOptions opts_;
};

}  // namespace fusedp
