#include "fusion/polymage_greedy.hpp"

#include <algorithm>

namespace fusedp {

PolyMageGreedy::PolyMageGreedy(const Pipeline& pl, const CostModel& model,
                               PolyMageOptions opts)
    : pl_(&pl), model_(&model), opts_(std::move(opts)) {}

namespace {

// Uniform PolyMage tiling: the two innermost reference dimensions get
// (t1, t2); any outer dimensions stay untiled (full extent) — matching the
// generated code in paper Figure 3 where the channel loop is not tiled.
std::vector<std::int64_t> uniform_tiles(const AlignResult& align,
                                        std::int64_t t1, std::int64_t t2) {
  const int n = align.num_classes;
  std::vector<std::int64_t> ts(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    const std::int64_t ext = align.class_extent[static_cast<std::size_t>(d)];
    const std::int64_t gran =
        align.class_granularity[static_cast<std::size_t>(d)];
    std::int64_t t = ext;
    if (d == n - 1)
      t = std::min(ext, t2);
    else if (d == n - 2)
      t = std::min(ext, t1);
    ts[static_cast<std::size_t>(d)] = ceil_div(std::max<std::int64_t>(t, 1),
                                               gran) * gran;
  }
  return ts;
}

}  // namespace

bool PolyMageGreedy::merge_ok(NodeSet merged, std::int64_t t1,
                              std::int64_t t2, double tolerance) const {
  // Condition 1: constant dependence vectors after scaling/alignment (also
  // rejects reductions mixed with other stages and dynamic accesses).
  const AlignResult align = solve_alignment(*pl_, merged);
  if (!align.constant) return false;
  int reductions = 0;
  merged.for_each([&](int s) {
    if (pl_->stage(s).kind == StageKind::kReduction) ++reductions;
  });
  if (reductions > 0 && merged.size() > 1) return false;

  // Condition 2: overlap fraction below tolerance for the given tile size.
  Box tile;
  tile.rank = align.num_classes;
  const std::vector<std::int64_t> ts = uniform_tiles(align, t1, t2);
  for (int d = 0; d < tile.rank; ++d) {
    tile.lo[d] = 0;
    tile.hi[d] = ts[static_cast<std::size_t>(d)] - 1;
  }
  const GroupRegions regions =
      compute_group_regions(*pl_, merged, align, tile, /*clamp=*/false);
  if (regions.owned_volume <= 0) return false;
  const double frac = static_cast<double>(regions.overlap_volume) /
                      static_cast<double>(regions.owned_volume);
  return frac < tolerance;
}

Grouping PolyMageGreedy::run(std::int64_t t1, std::int64_t t2,
                             double tolerance) const {
  std::vector<NodeSet> groups;
  for (int i = 0; i < pl_->num_stages(); ++i)
    groups.push_back(NodeSet::single(i));

  auto owner_of = [&](int stage) {
    for (std::size_t i = 0; i < groups.size(); ++i)
      if (groups[i].contains(stage)) return static_cast<int>(i);
    return -1;
  };

  bool merged_any = true;
  while (merged_any) {
    merged_any = false;
    // Candidates: groups whose successors all land in one child group.
    struct Cand {
      int group;
      int child;
      std::int64_t size;
    };
    std::vector<Cand> cands;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      const NodeSet succ = pl_->graph().successors_of_set(groups[i]);
      if (succ.empty()) continue;
      int child = -1;
      bool single = true;
      succ.for_each([&](int s) {
        const int o = owner_of(s);
        if (child < 0) child = o;
        if (o != child) single = false;
      });
      if (!single || child < 0) continue;
      std::int64_t vol = 0;
      groups[i].for_each([&](int s) { vol += pl_->stage(s).volume(); });
      cands.push_back({static_cast<int>(i), child, vol});
    }
    // Decreasing size order (paper: sorted by parameter estimates).
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.size > b.size; });
    // Indices into `groups` stay valid until the first merge; after a merge
    // we break and recompute the candidate list.
    for (const Cand& c : cands) {
      const NodeSet merged = groups[static_cast<std::size_t>(c.group)] |
                             groups[static_cast<std::size_t>(c.child)];
      if (!merge_ok(merged, t1, t2, tolerance)) continue;
      groups[static_cast<std::size_t>(c.group)] = merged;
      groups.erase(groups.begin() + c.child);
      merged_any = true;
      break;
    }
  }

  Grouping out;
  for (NodeSet g : groups) {
    GroupSchedule gs;
    gs.stages = g;
    const AlignResult align = solve_alignment(*pl_, g);
    if (align.constant) gs.tile_sizes = uniform_tiles(align, t1, t2);
    out.groups.push_back(gs);
  }
  complete_grouping_keep_tiles(out);
  return out;
}

void PolyMageGreedy::complete_grouping_keep_tiles(Grouping& g) const {
  g.total_cost = 0.0;
  for (GroupSchedule& gs : g.groups) {
    const GroupCost gc = model_->cost(gs.stages);
    if (gs.tile_sizes.empty()) gs.tile_sizes = gc.tile_sizes;
    gs.cost = gc.cost;
    g.total_cost += gc.cost;
  }
}

Grouping PolyMageGreedy::tune(
    const std::function<double(const Grouping&)>& time_fn,
    PolyMageTuneResult* result) const {
  FUSEDP_CHECK(static_cast<bool>(time_fn), "tune() needs a timing callback");
  double best_ms = kInfiniteCost;
  Grouping best;
  PolyMageTuneResult res;
  for (std::int64_t t1 : opts_.tile_candidates) {
    for (std::int64_t t2 : opts_.tile_candidates) {
      for (double tol : opts_.tolerances) {
        const Grouping g = run(t1, t2, tol);
        const double ms = time_fn(g);
        ++res.configs_tried;
        if (ms < best_ms) {
          best_ms = ms;
          best = g;
          res.best_t1 = t1;
          res.best_t2 = t2;
          res.best_tolerance = tol;
          res.best_ms = ms;
        }
      }
    }
  }
  if (result) *result = res;
  return best;
}

}  // namespace fusedp
