#include "fusion/manual.hpp"

#include <algorithm>

#include "analysis/scaling.hpp"

namespace fusedp {

Grouping grouping_from_names(
    const Pipeline& pl, const CostModel& model,
    const std::vector<std::vector<std::string>>& named_groups,
    const std::vector<std::vector<std::int64_t>>& tiles) {
  FUSEDP_CHECK(tiles.empty() || tiles.size() == named_groups.size(),
               "tiles/groups arity mismatch");
  auto stage_by_name = [&](const std::string& name) {
    for (const Stage& s : pl.stages())
      if (s.name == name) return s.id;
    FUSEDP_CHECK(false, "no stage named " + name + " in " + pl.name());
    return -1;
  };

  Grouping out;
  NodeSet covered;
  for (std::size_t i = 0; i < named_groups.size(); ++i) {
    GroupSchedule gs;
    for (const std::string& name : named_groups[i])
      gs.stages = gs.stages.with(stage_by_name(name));
    FUSEDP_CHECK(!covered.intersects(gs.stages),
                 "manual schedule repeats a stage");
    covered = covered | gs.stages;
    if (!tiles.empty() && !tiles[i].empty()) {
      // Right-align the given tile sizes against the group's reference rank.
      const AlignResult align = solve_alignment(pl, gs.stages);
      FUSEDP_CHECK(align.constant, "manual group not fusable");
      const int n = align.num_classes;
      const int given = static_cast<int>(tiles[i].size());
      gs.tile_sizes.assign(static_cast<std::size_t>(n), 0);
      for (int d = 0; d < n; ++d) {
        const std::int64_t ext =
            align.class_extent[static_cast<std::size_t>(d)];
        const std::int64_t gran =
            align.class_granularity[static_cast<std::size_t>(d)];
        std::int64_t t = ext;
        const int from_end = n - 1 - d;
        if (from_end < given)
          t = std::min(ext, tiles[i][static_cast<std::size_t>(
                                given - 1 - from_end)]);
        gs.tile_sizes[static_cast<std::size_t>(d)] =
            ceil_div(std::max<std::int64_t>(t, 1), gran) * gran;
      }
    }
    out.groups.push_back(std::move(gs));
  }
  for (int s = 0; s < pl.num_stages(); ++s) {
    if (covered.contains(s)) continue;
    GroupSchedule gs;
    gs.stages = NodeSet::single(s);
    out.groups.push_back(gs);
  }
  complete_grouping(pl, model, out);
  return out;
}

}  // namespace fusedp
