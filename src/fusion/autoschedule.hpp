// Deadline-bounded auto-scheduling with graceful degradation.
//
// Production schedulers treat schedule search as best-effort: a result must
// come back within budget even when the optimal search cannot finish
// (Halide's GPU auto-scheduler always keeps a naive schedule in reserve; the
// paper's Algorithm 3 exists to bound DP time).  auto_schedule() runs the
// search ladder
//
//     full DP  ->  bounded DP (Algorithm 3 passes with shrinking
//                  group_limit)  ->  PolyMage-greedy  ->  unfused
//
// under a wall-clock deadline and a DP state budget.  Budget or deadline
// exhaustion in one tier (Error codes kSearchBudgetExhausted /
// kDeadlineExceeded / kAllocationFailed) drops to the next; the final
// unfused tier cannot fail, so a valid schedule always comes back.  Which
// tier won and why the others lost is recorded in Diagnostics.
#pragma once

#include "fusion/dp.hpp"

namespace fusedp::observe {
class Observer;
}

namespace fusedp {

enum class ScheduleTier : std::uint8_t {
  kFullDp = 0,   // unbounded DP (Algorithm 1) finished in budget
  kBoundedDp,    // a group-size-bounded DP pass (Algorithm 3 building block)
  kGreedy,       // PolyMage-greedy heuristic
  kUnfused,      // singleton groups; the always-valid floor
};

const char* schedule_tier_name(ScheduleTier tier);

struct AutoScheduleOptions {
  // Wall-clock budget across all search tiers; <= 0 means no deadline.
  double deadline_seconds = 0.0;
  // DP state budget per DP attempt (full and bounded tiers).
  std::uint64_t max_states = 50'000'000;
  // First bounded-DP fallback group limit; halved per retry down to 2.
  int bounded_initial_limit = 8;
  // Configuration for the greedy tier.
  std::int64_t greedy_t1 = 64;
  std::int64_t greedy_t2 = 128;
  double greedy_tolerance = 0.4;
  // Optional observability sink: every ladder attempt (successful or not)
  // streams to it as an observe::ScheduleAttempt the moment it resolves, in
  // addition to being recorded in Diagnostics.
  observe::Observer* observer = nullptr;
};

// One search attempt (successful or not) for post-mortems and logging.
struct TierAttempt {
  ScheduleTier tier = ScheduleTier::kUnfused;
  int group_limit = 0;  // bounded-DP attempts only
  bool succeeded = false;
  ErrorCode code = ErrorCode::kInternal;  // failure code when !succeeded
  std::string detail;                     // error message / stats summary
  std::uint64_t states = 0;               // DP states enumerated
  double seconds = 0.0;
};

struct Diagnostics {
  ScheduleTier tier = ScheduleTier::kUnfused;  // tier that produced the result
  std::vector<TierAttempt> attempts;           // in ladder order
  std::uint64_t total_states = 0;
  double total_seconds = 0.0;

  // Human-readable multi-line report (printed by the CLI).
  std::string summary() const;
};

struct ScheduleResult {
  Grouping grouping;
  Diagnostics diagnostics;
};

// Never throws for budget/deadline/allocation exhaustion — those demote to
// the next tier.  Errors that no tier can fix (invalid pipeline) still
// propagate.  The returned grouping always passes validate_grouping().
ScheduleResult auto_schedule(const Pipeline& pl, const CostModel& model,
                             const AutoScheduleOptions& opts = {});
ScheduleResult auto_schedule(const Pipeline& pl, const MachineModel& machine,
                             const AutoScheduleOptions& opts = {});

}  // namespace fusedp
