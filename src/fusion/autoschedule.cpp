#include "fusion/autoschedule.hpp"

#include <algorithm>
#include <sstream>

#include "fusion/polymage_greedy.hpp"
#include "observe/observe.hpp"
#include "support/timing.hpp"

namespace fusedp {

namespace {

// Mirrors a TierAttempt into the plain-data observability record.
void emit_attempt(observe::Observer* obs, const TierAttempt& a) {
  if (obs == nullptr) return;
  observe::ScheduleAttempt sa;
  sa.tier = schedule_tier_name(a.tier);
  sa.group_limit = a.group_limit;
  sa.succeeded = a.succeeded;
  if (!a.succeeded) sa.code = error_code_name(a.code);
  sa.detail = a.detail;
  sa.states = a.states;
  sa.seconds = a.seconds;
  obs->on_schedule_attempt(sa);
}

// Codes a cheaper tier can still fix.  Anything else (invalid pipeline,
// internal invariant failures) propagates: retrying a different search
// strategy cannot repair bad input or a bug.
bool recoverable(ErrorCode code) {
  return code == ErrorCode::kSearchBudgetExhausted ||
         code == ErrorCode::kDeadlineExceeded ||
         code == ErrorCode::kAllocationFailed;
}

std::string attempt_label(const TierAttempt& a) {
  std::string s = schedule_tier_name(a.tier);
  if (a.tier == ScheduleTier::kBoundedDp)
    s += "(limit=" + std::to_string(a.group_limit) + ")";
  return s;
}

}  // namespace

const char* schedule_tier_name(ScheduleTier tier) {
  switch (tier) {
    case ScheduleTier::kFullDp: return "full-dp";
    case ScheduleTier::kBoundedDp: return "bounded-dp";
    case ScheduleTier::kGreedy: return "greedy";
    case ScheduleTier::kUnfused: return "unfused";
  }
  return "unknown";
}

std::string Diagnostics::summary() const {
  std::ostringstream out;
  out << "auto-schedule: tier=" << schedule_tier_name(tier) << ", "
      << attempts.size() << (attempts.size() == 1 ? " attempt" : " attempts")
      << ", " << total_states << " DP states, " << total_seconds << "s\n";
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const TierAttempt& a = attempts[i];
    out << "  [" << i + 1 << "] " << attempt_label(a) << ": ";
    if (a.succeeded)
      out << "ok (" << a.states << " states, " << a.seconds << "s)";
    else
      out << "failed [" << error_code_name(a.code) << "] " << a.detail;
    out << "\n";
  }
  return out.str();
}

ScheduleResult auto_schedule(const Pipeline& pl, const CostModel& model,
                             const AutoScheduleOptions& opts) {
  WallTimer ladder_timer;
  ScheduleResult result;
  Diagnostics& diag = result.diagnostics;

  const auto remaining = [&]() -> double {
    if (opts.deadline_seconds <= 0) return 0.0;  // no deadline
    return opts.deadline_seconds - ladder_timer.seconds();
  };
  const auto out_of_time = [&]() {
    return opts.deadline_seconds > 0 && remaining() <= 0;
  };

  // Runs one search attempt; returns true (and fills result.grouping) on
  // success, records the failure and returns false on a recoverable error.
  // Only DP tiers are gated by the ladder deadline — greedy and unfused are
  // model-driven (no search explosion) and must stay reachable even when
  // the deadline is already gone.
  const auto attempt = [&](ScheduleTier tier, int group_limit,
                           const auto& search) {
    TierAttempt a;
    a.tier = tier;
    a.group_limit = group_limit;
    WallTimer t;
    const bool deadline_gated =
        tier == ScheduleTier::kFullDp || tier == ScheduleTier::kBoundedDp;
    if (deadline_gated && out_of_time()) {
      a.code = ErrorCode::kDeadlineExceeded;
      a.detail = "skipped: ladder deadline already exhausted";
      emit_attempt(opts.observer, a);
      diag.attempts.push_back(std::move(a));
      return false;
    }
    try {
      result.grouping = search(a);
      a.succeeded = true;
    } catch (const Error& e) {
      if (!recoverable(e.code())) throw;
      a.code = e.code();
      a.detail = e.what();
    } catch (const std::bad_alloc&) {
      a.code = ErrorCode::kAllocationFailed;
      a.detail = "allocation failed during search";
    }
    a.seconds = t.seconds();
    diag.total_states += a.states;
    const bool ok = a.succeeded;
    if (ok) diag.tier = tier;
    emit_attempt(opts.observer, a);
    diag.attempts.push_back(std::move(a));
    return ok;
  };

  const auto run_dp = [&](TierAttempt& a, int group_limit) {
    DpOptions dopts;
    dopts.group_limit = group_limit;
    dopts.max_states = opts.max_states;
    // Clamp away from <= 0: remaining() can dip negative between the gate
    // check and here, and a non-positive value would mean "no deadline".
    if (opts.deadline_seconds > 0)
      dopts.deadline_seconds = std::max(remaining(), 1e-9);
    DpFusion dp(pl, model, dopts);
    try {
      Grouping g = dp.run();
      a.states = dp.stats().groupings_enumerated;
      return g;
    } catch (...) {
      a.states = dp.stats().groupings_enumerated;
      throw;
    }
  };

  // Tier 1: the full, unbounded DP (Algorithm 1).
  bool done = attempt(ScheduleTier::kFullDp, 0,
                      [&](TierAttempt& a) { return run_dp(a, 0); });

  // Tier 2: group-size-bounded DP passes (the building block of
  // Algorithm 3), shrinking the limit — and with it the state space —
  // until one fits the remaining budget.
  for (int limit = std::max(2, opts.bounded_initial_limit);
       !done && limit >= 2; limit /= 2) {
    if (limit >= pl.num_stages()) continue;  // would repeat the full DP
    done = attempt(ScheduleTier::kBoundedDp, limit,
                   [&](TierAttempt& a) { return run_dp(a, limit); });
  }

  // Tier 3: PolyMage-greedy — model-driven, no search explosion.
  if (!done)
    done = attempt(ScheduleTier::kGreedy, 0, [&](TierAttempt&) {
      const PolyMageGreedy greedy(pl, model);
      return greedy.run(opts.greedy_t1, opts.greedy_t2, opts.greedy_tolerance);
    });

  // Tier 4: unfused floor.  Cannot fail short of OOM on tiny allocations,
  // so no catch: at that point there is nothing left to degrade to.
  if (!done) {
    TierAttempt a;
    a.tier = ScheduleTier::kUnfused;
    WallTimer t;
    result.grouping = singleton_grouping(pl, model);
    a.succeeded = true;
    a.seconds = t.seconds();
    diag.tier = ScheduleTier::kUnfused;
    emit_attempt(opts.observer, a);
    diag.attempts.push_back(std::move(a));
  }

  diag.total_seconds = ladder_timer.seconds();
  std::string why;
  FUSEDP_CHECK(validate_grouping(pl, result.grouping, &why),
               "auto_schedule produced an invalid grouping: " + why);
  return result;
}

ScheduleResult auto_schedule(const Pipeline& pl, const MachineModel& machine,
                             const AutoScheduleOptions& opts) {
  const CostModel model(pl, machine);
  return auto_schedule(pl, model, opts);
}

}  // namespace fusedp
