#include "fusion/halide_auto.hpp"

#include <algorithm>

namespace fusedp {

HalideAuto::HalideAuto(const Pipeline& pl, const CostModel& model,
                       HalideAutoOptions opts)
    : pl_(&pl), model_(&model), opts_(std::move(opts)) {}

double HalideAuto::ops_per_point(int stage) const {
  const Stage& s = pl_->stage(stage);
  if (s.kind == StageKind::kReduction) return 8.0;  // nominal
  double ops = 0.0;
  for (const ExprNode& n : s.nodes) {
    switch (n.op) {
      case Op::kConst:
      case Op::kCoord:
        break;
      case Op::kLoad:
        ops += 1.0;
        break;
      case Op::kSqrt:
      case Op::kExp:
      case Op::kLog:
      case Op::kPow:
        ops += 8.0;  // transcendental weight
        break;
      default:
        ops += 1.0;
    }
  }
  return std::max(ops, 1.0);
}

HalideAuto::Scored HalideAuto::score_group(NodeSet group) const {
  Scored best;
  const AlignResult align = solve_alignment(*pl_, group);
  if (!align.constant) return best;
  int reductions = 0;
  group.for_each([&](int s) {
    if (pl_->stage(s).kind == StageKind::kReduction) ++reductions;
  });
  if (reductions > 0 && group.size() > 1) return best;
  if (group.size() > 1 && !pl_->graph().is_connected_undirected(group))
    return best;

  const int n = align.num_classes;
  const std::int64_t cache_floats = opts_.cache_bytes / 4;

  // Candidate tile configurations: powers of two on the two innermost
  // reference dimensions, full extent elsewhere (plus the untiled config).
  std::vector<std::vector<std::int64_t>> configs;
  auto push_config = [&](std::int64_t t1, std::int64_t t2) {
    std::vector<std::int64_t> ts(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      const std::int64_t ext = align.class_extent[static_cast<std::size_t>(d)];
      const std::int64_t gran =
          align.class_granularity[static_cast<std::size_t>(d)];
      std::int64_t t = ext;
      if (d == n - 1)
        t = std::min(ext, t2);
      else if (d == n - 2)
        t = std::min(ext, t1);
      ts[static_cast<std::size_t>(d)] =
          ceil_div(std::max<std::int64_t>(t, 1), gran) * gran;
    }
    configs.push_back(std::move(ts));
  };
  if (n == 1) {
    for (std::int64_t t : opts_.tile_candidates) push_config(t, t);
    push_config(1 << 30, 1 << 30);  // untiled
  } else {
    for (std::int64_t t1 : opts_.tile_candidates)
      for (std::int64_t t2 : opts_.tile_candidates) push_config(t1, t2);
    push_config(1 << 30, 1 << 30);
  }

  double group_ops = 0.0;
  group.for_each([&](int s) { group_ops += ops_per_point(s); });
  group_ops /= std::max(group.size(), 1);

  Scored fallback;  // best config ignoring the hard constraints
  for (const auto& ts : configs) {
    Box tile;
    tile.rank = n;
    std::int64_t n_tiles = 1;
    for (int d = 0; d < n; ++d) {
      tile.lo[d] = 0;
      tile.hi[d] = ts[static_cast<std::size_t>(d)] - 1;
      n_tiles *= ceil_div(align.class_extent[static_cast<std::size_t>(d)],
                          ts[static_cast<std::size_t>(d)]);
    }
    const GroupRegions regions =
        compute_group_regions(*pl_, group, align, tile, /*clamp=*/false);
    const double arith =
        static_cast<double>(regions.computed_volume) * group_ops;
    double mem_loads = static_cast<double>(regions.livein_volume);
    if (regions.computed_volume > cache_floats) {
      // Working set spills the cache: intermediates also stream from memory.
      mem_loads += static_cast<double>(regions.computed_volume);
    }
    mem_loads += static_cast<double>(regions.liveout_volume);  // stores
    const double per_tile = arith + opts_.load_cost * mem_loads;
    const double total = per_tile * static_cast<double>(n_tiles);
    if (total < fallback.cost) {
      fallback.cost = total;
      fallback.tiles = ts;
    }
    // Hard constraints: enough tiles to parallelize, innermost wide enough
    // to vectorize (waived when the dimension itself is too small).
    const bool vec_ok =
        ts[static_cast<std::size_t>(n - 1)] >= opts_.vector_width ||
        align.class_extent[static_cast<std::size_t>(n - 1)] <
            opts_.vector_width;
    const bool par_ok = n_tiles >= opts_.parallelism_threshold;
    if (vec_ok && par_ok && total < best.cost) {
      best.cost = total;
      best.tiles = ts;
    }
  }
  // Small groups (e.g. a 256-entry LUT) may satisfy no constraint set.
  return best.cost < kInfiniteCost ? best : fallback;
}

Grouping HalideAuto::run() const {
  std::vector<NodeSet> groups;
  std::vector<Scored> scores;
  for (int i = 0; i < pl_->num_stages(); ++i) {
    groups.push_back(NodeSet::single(i));
    scores.push_back(score_group(groups.back()));
  }

  for (;;) {
    double best_benefit = 0.0;
    int best_a = -1, best_b = -1;
    Scored best_merged;
    for (std::size_t a = 0; a < groups.size(); ++a) {
      const NodeSet succ = pl_->graph().successors_of_set(groups[a]);
      for (std::size_t b = 0; b < groups.size(); ++b) {
        if (a == b || !succ.intersects(groups[b])) continue;
        // Merging must not create a group-level cycle anywhere in the
        // current grouping (pairwise path checks are incomplete: two
        // internally-valid groups can be mutually cyclic through others).
        const NodeSet merged = groups[a] | groups[b];
        std::vector<NodeSet> candidate;
        candidate.reserve(groups.size() - 1);
        candidate.push_back(merged);
        for (std::size_t k = 0; k < groups.size(); ++k)
          if (k != a && k != b) candidate.push_back(groups[k]);
        if (!pl_->graph().quotient_is_acyclic(candidate)) continue;
        const Scored sm = score_group(merged);
        if (sm.cost == kInfiniteCost) continue;
        const double benefit = scores[a].cost + scores[b].cost - sm.cost;
        if (benefit > best_benefit) {
          best_benefit = benefit;
          best_a = static_cast<int>(a);
          best_b = static_cast<int>(b);
          best_merged = sm;
        }
      }
    }
    if (best_a < 0) break;
    groups[static_cast<std::size_t>(best_a)] =
        groups[static_cast<std::size_t>(best_a)] |
        groups[static_cast<std::size_t>(best_b)];
    scores[static_cast<std::size_t>(best_a)] = best_merged;
    groups.erase(groups.begin() + best_b);
    scores.erase(scores.begin() + best_b);
  }

  Grouping out;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    GroupSchedule gs;
    gs.stages = groups[i];
    gs.tile_sizes = scores[i].tiles;
    out.groups.push_back(gs);
  }
  complete_grouping(*pl_, *model_, out);
  return out;
}

}  // namespace fusedp
