// Plain-text (de)serialization of schedules, so a tuned grouping can be
// saved, versioned, and replayed without re-running the scheduler:
//
//   # fusedp-schedule v1 for <pipeline>
//   group blurx blury : 3 8 256
//   group sharpen masked : 3 16 256
//
// Stage are identified by name; tile sizes follow the colon (empty list =
// untiled).
#pragma once

#include <string>

#include "fusion/grouping.hpp"

namespace fusedp {

std::string grouping_to_text(const Pipeline& pl, const Grouping& g);

// Parses a schedule produced by grouping_to_text (or hand-written).
// Throws fusedp::Error (code kInvalidSchedule) on syntax errors, overlong
// lines, a version-header mismatch, non-numeric or overflowing tile sizes,
// unknown or repeated stage names, or an invalid resulting grouping —
// malformed input never crashes.
Grouping grouping_from_text(const Pipeline& pl, const std::string& text);

// Non-throwing variant for batch/scripted callers.
Result<Grouping> try_grouping_from_text(const Pipeline& pl,
                                        const std::string& text);

// File convenience wrappers.
void save_grouping(const Pipeline& pl, const Grouping& g,
                   const std::string& path);
Grouping load_grouping(const Pipeline& pl, const std::string& path);

}  // namespace fusedp
