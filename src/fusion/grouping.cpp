#include "fusion/grouping.hpp"

#include <sstream>

namespace fusedp {

std::string Grouping::to_string(const Pipeline& pl) const {
  std::ostringstream out;
  out << "grouping of " << pl.name() << " (" << groups.size()
      << " groups, cost " << total_cost << ")\n";
  for (const GroupSchedule& g : groups) {
    out << "  {";
    bool first = true;
    g.stages.for_each([&](int s) {
      if (!first) out << ", ";
      out << pl.stage(s).name;
      first = false;
    });
    out << "} tiles [";
    for (std::size_t i = 0; i < g.tile_sizes.size(); ++i) {
      if (i) out << "x";
      out << g.tile_sizes[i];
    }
    out << "] cost " << g.cost << "\n";
  }
  return out.str();
}

bool validate_grouping(const Pipeline& pl, const Grouping& g,
                       std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  NodeSet covered;
  std::vector<NodeSet> sets;
  for (const GroupSchedule& gs : g.groups) {
    if (gs.stages.empty()) return fail("empty group");
    if (covered.intersects(gs.stages))
      return fail("groups overlap at " + (covered & gs.stages).to_string());
    covered = covered | gs.stages;
    sets.push_back(gs.stages);
    if (!pl.graph().is_connected_undirected(gs.stages))
      return fail("group " + gs.stages.to_string() + " is disconnected");
    int reductions = 0;
    gs.stages.for_each([&](int s) {
      if (pl.stage(s).kind == StageKind::kReduction) ++reductions;
    });
    if (reductions > 0 && gs.stages.size() > 1)
      return fail("group " + gs.stages.to_string() + " fuses a reduction");
    if (!constant_dependence_vectors(pl, gs.stages))
      return fail("group " + gs.stages.to_string() +
                  " has non-constant dependences");
  }
  NodeSet all;
  for (int i = 0; i < pl.num_stages(); ++i) all = all.with(i);
  if (!(covered == all))
    return fail("stages not covered: " + (all - covered).to_string());
  if (!pl.graph().quotient_is_acyclic(sets))
    return fail("group quotient graph has a cycle");
  return true;
}

void complete_grouping(const Pipeline& pl, const CostModel& model,
                       Grouping& g) {
  (void)pl;
  g.total_cost = 0.0;
  for (GroupSchedule& gs : g.groups) {
    const GroupCost gc = model.cost(gs.stages);
    if (gs.tile_sizes.empty()) gs.tile_sizes = gc.tile_sizes;
    gs.cost = gc.cost;
    g.total_cost += gc.cost;
  }
}

Grouping singleton_grouping(const Pipeline& pl, const CostModel& model) {
  Grouping g;
  for (int i = 0; i < pl.num_stages(); ++i) {
    GroupSchedule gs;
    gs.stages = NodeSet::single(i);
    g.groups.push_back(gs);
  }
  complete_grouping(pl, model, g);
  return g;
}

}  // namespace fusedp
