#include "fusion/serialize.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "ir/box.hpp"
#include "support/fault.hpp"

namespace fusedp {

namespace {

// Hardening limits for schedule text coming from disk or users.  Well past
// anything grouping_to_text can emit, so they only reject hostile or
// corrupted input.
constexpr std::size_t kMaxLineLength = 4096;
constexpr std::size_t kMaxLines = 1 << 16;
constexpr long long kMaxTileSize = 1ll << 40;

[[noreturn]] void parse_fail(int lineno, const std::string& msg) {
  throw Error("schedule line " + std::to_string(lineno) + ": " + msg,
              ErrorCode::kInvalidSchedule);
}

}  // namespace

std::string grouping_to_text(const Pipeline& pl, const Grouping& g) {
  std::ostringstream out;
  out << "# fusedp-schedule v1 for " << pl.name() << "\n";
  for (const GroupSchedule& gs : g.groups) {
    out << "group";
    gs.stages.for_each([&](int s) { out << " " << pl.stage(s).name; });
    out << " :";
    for (std::int64_t t : gs.tile_sizes) out << " " << t;
    out << "\n";
  }
  return out.str();
}

Grouping grouping_from_text(const Pipeline& pl, const std::string& text) {
  FUSEDP_FAULT_POINT("serialize.parse");
  Grouping g;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  bool saw_content = false;
  NodeSet covered;
  while (std::getline(in, line)) {
    ++lineno;
    if (lineno > kMaxLines)
      parse_fail(static_cast<int>(lineno), "too many lines");
    if (line.size() > kMaxLineLength)
      parse_fail(static_cast<int>(lineno),
                 "line too long (" + std::to_string(line.size()) + " > " +
                     std::to_string(kMaxLineLength) + " bytes)");
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') {
      // A "# fusedp-schedule ..." header must name a version we read.
      // Other comments pass through.
      std::istringstream cs(line.substr(first + 1));
      std::string magic, version;
      cs >> magic >> version;
      if (magic == "fusedp-schedule" && version != "v1")
        parse_fail(static_cast<int>(lineno),
                   "unsupported schedule version '" + version +
                       "' (this reader understands v1)");
      continue;
    }
    saw_content = true;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok != "group")
      parse_fail(static_cast<int>(lineno),
                 "expected 'group', got '" + tok + "'");
    GroupSchedule gs;
    bool in_tiles = false;
    while (ls >> tok) {
      if (tok == ":") {
        if (in_tiles)
          parse_fail(static_cast<int>(lineno), "repeated ':' separator");
        in_tiles = true;
        continue;
      }
      if (in_tiles) {
        char* end = nullptr;
        errno = 0;
        const long long v = std::strtoll(tok.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || end == tok.c_str())
          parse_fail(static_cast<int>(lineno),
                     "tile size '" + tok + "' is not a number");
        if (errno == ERANGE || v > kMaxTileSize)
          parse_fail(static_cast<int>(lineno),
                     "tile size '" + tok + "' overflows");
        if (v <= 0)
          parse_fail(static_cast<int>(lineno),
                     "tile size '" + tok + "' must be positive");
        if (gs.tile_sizes.size() >= static_cast<std::size_t>(kMaxDims))
          parse_fail(static_cast<int>(lineno),
                     "more than " + std::to_string(kMaxDims) + " tile sizes");
        gs.tile_sizes.push_back(v);
      } else {
        int id = -1;
        for (const Stage& s : pl.stages())
          if (s.name == tok) id = s.id;
        if (id < 0)
          parse_fail(static_cast<int>(lineno), "no stage named '" + tok + "'");
        if (covered.contains(id))
          parse_fail(static_cast<int>(lineno),
                     "stage '" + tok + "' appears twice");
        covered = covered.with(id);
        gs.stages = gs.stages.with(id);
      }
    }
    if (gs.stages.empty())
      parse_fail(static_cast<int>(lineno), "empty group");
    g.groups.push_back(std::move(gs));
  }
  FUSEDP_CHECK_CODE(saw_content, ErrorCode::kInvalidSchedule,
                    "schedule text contains no groups");
  std::string why;
  FUSEDP_CHECK_CODE(validate_grouping(pl, g, &why),
                    ErrorCode::kInvalidSchedule,
                    "loaded schedule invalid: " + why);
  return g;
}

Result<Grouping> try_grouping_from_text(const Pipeline& pl,
                                        const std::string& text) {
  try {
    return grouping_from_text(pl, text);
  } catch (const Error& e) {
    return Result<Grouping>(e);
  } catch (const std::exception& e) {
    return Result<Grouping>::failure(ErrorCode::kInternal, e.what());
  }
}

void save_grouping(const Pipeline& pl, const Grouping& g,
                   const std::string& path) {
  std::ofstream out(path);
  FUSEDP_CHECK_CODE(out.good(), ErrorCode::kIoError,
                    "cannot open " + path + " for writing");
  out << grouping_to_text(pl, g);
  out.flush();
  FUSEDP_CHECK_CODE(out.good(), ErrorCode::kIoError, "failed writing " + path);
}

Grouping load_grouping(const Pipeline& pl, const std::string& path) {
  std::ifstream in(path);
  FUSEDP_CHECK_CODE(in.good(), ErrorCode::kIoError, "cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return grouping_from_text(pl, ss.str());
}

}  // namespace fusedp
