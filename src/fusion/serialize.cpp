#include "fusion/serialize.hpp"

#include <fstream>
#include <sstream>

namespace fusedp {

std::string grouping_to_text(const Pipeline& pl, const Grouping& g) {
  std::ostringstream out;
  out << "# fusedp-schedule v1 for " << pl.name() << "\n";
  for (const GroupSchedule& gs : g.groups) {
    out << "group";
    gs.stages.for_each([&](int s) { out << " " << pl.stage(s).name; });
    out << " :";
    for (std::int64_t t : gs.tile_sizes) out << " " << t;
    out << "\n";
  }
  return out.str();
}

Grouping grouping_from_text(const Pipeline& pl, const std::string& text) {
  Grouping g;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  NodeSet covered;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    FUSEDP_CHECK(tok == "group",
                 "schedule line " + std::to_string(lineno) +
                     ": expected 'group', got '" + tok + "'");
    GroupSchedule gs;
    bool in_tiles = false;
    while (ls >> tok) {
      if (tok == ":") {
        in_tiles = true;
        continue;
      }
      if (in_tiles) {
        char* end = nullptr;
        const long long v = std::strtoll(tok.c_str(), &end, 10);
        FUSEDP_CHECK(end && *end == '\0' && v > 0,
                     "schedule line " + std::to_string(lineno) +
                         ": bad tile size '" + tok + "'");
        gs.tile_sizes.push_back(v);
      } else {
        int id = -1;
        for (const Stage& s : pl.stages())
          if (s.name == tok) id = s.id;
        FUSEDP_CHECK(id >= 0, "schedule line " + std::to_string(lineno) +
                                  ": no stage named '" + tok + "'");
        FUSEDP_CHECK(!covered.contains(id),
                     "schedule line " + std::to_string(lineno) + ": stage '" +
                         tok + "' appears twice");
        covered = covered.with(id);
        gs.stages = gs.stages.with(id);
      }
    }
    FUSEDP_CHECK(!gs.stages.empty(), "schedule line " +
                                         std::to_string(lineno) +
                                         ": empty group");
    g.groups.push_back(std::move(gs));
  }
  std::string why;
  FUSEDP_CHECK(validate_grouping(pl, g, &why), "loaded schedule invalid: " + why);
  return g;
}

void save_grouping(const Pipeline& pl, const Grouping& g,
                   const std::string& path) {
  std::ofstream out(path);
  FUSEDP_CHECK(out.good(), "cannot open " + path + " for writing");
  out << grouping_to_text(pl, g);
  FUSEDP_CHECK(out.good(), "failed writing " + path);
}

Grouping load_grouping(const Pipeline& pl, const std::string& path) {
  std::ifstream in(path);
  FUSEDP_CHECK(in.good(), "cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return grouping_from_text(pl, ss.str());
}

}  // namespace fusedp
