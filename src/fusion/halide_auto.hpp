// Halide auto-scheduler-style greedy grouping — the paper's "H-auto"
// baseline (Section 2.3, after Mullapudi et al. 2016).
//
// Each stage starts in its own group.  The algorithm repeatedly enumerates
// pair-wise producer/consumer group merges, analytically estimates the
// benefit of each (best tile configuration per group, from a power-of-two
// candidate set only), and commits the highest-benefit merge until none is
// profitable.  Group cost = arithmetic cost + LOAD_COST x memory loads,
// with (i) at least PARALLELISM_THRESHOLD tiles, (ii) a footprint penalty
// past CACHE_SIZE, (iii) at least VECTOR_WIDTH points along the innermost
// dimension (paper's parameter values: VECTOR_WIDTH=16, threshold=cores,
// CACHE_SIZE=per-core L2, LOAD_COST=40).
#pragma once

#include "fusion/grouping.hpp"

namespace fusedp {

struct HalideAutoOptions {
  std::int64_t cache_bytes = 256 * 1024;
  int parallelism_threshold = 16;
  int vector_width = 16;
  double load_cost = 40.0;
  std::vector<std::int64_t> tile_candidates = {8, 16, 32, 64, 128, 256};
};

class HalideAuto {
 public:
  HalideAuto(const Pipeline& pl, const CostModel& model,
             HalideAutoOptions opts = {});

  Grouping run() const;

 private:
  struct Scored {
    double cost = kInfiniteCost;
    std::vector<std::int64_t> tiles;
  };
  // Best analytic cost over tile configurations for one group.
  Scored score_group(NodeSet group) const;
  // Arithmetic operations per output point of a stage (AST op count).
  double ops_per_point(int stage) const;

  const Pipeline* pl_;
  const CostModel* model_;
  HalideAutoOptions opts_;
};

}  // namespace fusedp
