#include "fusion/inlining.hpp"

#include <algorithm>
#include <optional>

namespace fusedp {

namespace {

// How one consumer-access axis maps a producer dimension.
struct AxisSubst {
  bool is_const = false;
  std::int64_t value = 0;  // constant coordinate
  int src_dim = 0;         // consumer dim for identity axes
};

// Checks that `a` reads the producer through identity/constant axes only,
// with matching extents along identity axes; fills `subst`.
bool substitutable_access(const Pipeline& pl, const Stage& consumer,
                          const Access& a,
                          std::vector<AxisSubst>* subst) {
  const Box& pd = pl.producer_domain(a.producer);
  subst->clear();
  for (int k = 0; k < pd.rank; ++k) {
    const AxisMap& m = a.axes[static_cast<std::size_t>(k)];
    AxisSubst s;
    if (m.kind == AxisMap::Kind::kConstant) {
      if (m.offset < pd.lo[k] || m.offset > pd.hi[k]) return false;
      s.is_const = true;
      s.value = m.offset;
    } else if (m.kind == AxisMap::Kind::kAffine && m.is_identity()) {
      if (consumer.domain.extent(m.src_dim) != pd.extent(k)) return false;
      s.src_dim = m.src_dim;
    } else {
      return false;
    }
    subst->push_back(s);
  }
  return true;
}

// Per-stage template used during the rebuild: an expression arena + load
// table in which references to inlined producers have been spliced away.
struct Template {
  std::vector<ExprNode> nodes;
  std::vector<Access> loads;
  ExprRef body = kNoExpr;
};

// Splices `tpl` (the template of an inlined producer) into `dst`, remapping
// template coordinates/axes through `subst`.  Returns the root of the
// spliced expression in dst's arena.
ExprRef splice(const Template& tpl, const std::vector<AxisSubst>& subst,
               Template& dst) {
  std::vector<ExprRef> remap(tpl.nodes.size(), kNoExpr);
  for (std::size_t i = 0; i < tpl.nodes.size(); ++i) {
    ExprNode n = tpl.nodes[i];
    switch (n.op) {
      case Op::kCoord: {
        const AxisSubst& s = subst[static_cast<std::size_t>(n.dim)];
        if (s.is_const) {
          n.op = Op::kConst;
          n.imm = static_cast<float>(s.value);
          n.dim = -1;
        } else {
          n.dim = s.src_dim;
        }
        break;
      }
      case Op::kLoad: {
        Access a = tpl.loads[static_cast<std::size_t>(n.load_id)];
        for (AxisMap& m : a.axes) {
          if (m.kind == AxisMap::Kind::kDynamic) {
            m.dyn = remap[static_cast<std::size_t>(m.dyn)];
          } else if (m.kind == AxisMap::Kind::kAffine && m.num != 0) {
            const AxisSubst& s = subst[static_cast<std::size_t>(m.src_dim)];
            if (s.is_const) {
              // floor((c*num + pre)/den) + offset is a compile-time constant.
              m.offset =
                  floor_div(s.value * m.num + m.pre, m.den) + m.offset;
              m.kind = AxisMap::Kind::kConstant;
              m.num = 1;
              m.den = 1;
              m.pre = 0;
            } else {
              m.src_dim = s.src_dim;
            }
          }
        }
        dst.loads.push_back(std::move(a));
        n.load_id = static_cast<std::int32_t>(dst.loads.size()) - 1;
        break;
      }
      default:
        if (n.a != kNoExpr) n.a = remap[static_cast<std::size_t>(n.a)];
        if (n.b != kNoExpr) n.b = remap[static_cast<std::size_t>(n.b)];
        if (n.c != kNoExpr) n.c = remap[static_cast<std::size_t>(n.c)];
        break;
    }
    dst.nodes.push_back(n);
    remap[i] = static_cast<ExprRef>(dst.nodes.size()) - 1;
  }
  return remap[static_cast<std::size_t>(tpl.body)];
}

}  // namespace

InlineResult inline_pointwise(const Pipeline& src, InlineOptions opts) {
  FUSEDP_CHECK(src.finalized(), "pipeline must be finalized");
  const int n = src.num_stages();

  // Decide which stages to inline (graph is a DAG, so a stage's decision
  // does not depend on its consumers').
  std::vector<bool> inlined(static_cast<std::size_t>(n), false);
  for (int s = 0; s < n; ++s) {
    const Stage& st = src.stage(s);
    if (st.kind != StageKind::kMap || st.is_output) continue;
    const NodeSet consumers = src.graph().successors(s);
    if (consumers.empty()) continue;
    const int ops = static_cast<int>(st.nodes.size());
    int use_sites = 0;
    consumers.for_each([&](int c) {
      for (const Access& a : src.stage(c).loads)
        if (!a.producer.is_input && a.producer.id == s) ++use_sites;
    });
    const bool single_site = use_sites == 1 && ops <= opts.max_ops;
    const bool trivial = ops <= opts.trivial_ops;
    if (!single_site && !trivial) continue;
    bool ok = true;
    std::vector<AxisSubst> subst;
    consumers.for_each([&](int c) {
      // Reductions read through native code, not expressions.
      if (src.stage(c).kind != StageKind::kMap) ok = false;
      for (const Access& a : src.stage(c).loads)
        if (!a.producer.is_input && a.producer.id == s &&
            !substitutable_access(src, src.stage(c), a, &subst))
          ok = false;
    });
    if (ok) inlined[static_cast<std::size_t>(s)] = true;
  }

  // Rebuild: process stages in id order (already topological in practice —
  // producers precede consumers because loads reference existing stages).
  InlineResult res;
  res.pipeline = std::make_unique<Pipeline>(src.name());
  Pipeline& out = *res.pipeline;
  for (const InputImage& in : src.inputs())
    out.add_input(in.name, in.domain.extents());

  std::vector<Template> templates(static_cast<std::size_t>(n));
  std::vector<int> new_id(static_cast<std::size_t>(n), -1);

  for (int s = 0; s < n; ++s) {
    const Stage& st = src.stage(s);
    // Build this stage's template with inlined producers spliced in.
    Template tpl;
    if (st.kind == StageKind::kMap) {
      std::vector<ExprRef> remap(st.nodes.size(), kNoExpr);
      for (std::size_t i = 0; i < st.nodes.size(); ++i) {
        ExprNode nn = st.nodes[i];
        if (nn.op == Op::kLoad) {
          const Access& a = st.loads[static_cast<std::size_t>(nn.load_id)];
          if (!a.producer.is_input &&
              inlined[static_cast<std::size_t>(a.producer.id)]) {
            std::vector<AxisSubst> subst;
            FUSEDP_CHECK(substitutable_access(src, st, a, &subst),
                         "inline decision inconsistent");
            remap[i] = splice(templates[static_cast<std::size_t>(a.producer.id)],
                              subst, tpl);
            continue;
          }
          Access copy = a;
          for (AxisMap& m : copy.axes)
            if (m.kind == AxisMap::Kind::kDynamic)
              m.dyn = remap[static_cast<std::size_t>(m.dyn)];
          tpl.loads.push_back(std::move(copy));
          nn.load_id = static_cast<std::int32_t>(tpl.loads.size()) - 1;
        } else {
          if (nn.a != kNoExpr) nn.a = remap[static_cast<std::size_t>(nn.a)];
          if (nn.b != kNoExpr) nn.b = remap[static_cast<std::size_t>(nn.b)];
          if (nn.c != kNoExpr) nn.c = remap[static_cast<std::size_t>(nn.c)];
        }
        tpl.nodes.push_back(nn);
        remap[i] = static_cast<ExprRef>(tpl.nodes.size()) - 1;
      }
      tpl.body = remap[static_cast<std::size_t>(st.body)];
    }
    if (inlined[static_cast<std::size_t>(s)]) {
      templates[static_cast<std::size_t>(s)] = std::move(tpl);
      ++res.stages_inlined;
      continue;
    }
    // Emit as a real stage, remapping surviving producer ids.
    Stage& ns = st.kind == StageKind::kMap
                    ? out.add_stage(st.name, st.domain.extents())
                    : out.add_reduction(st.name, st.domain.extents());
    new_id[static_cast<std::size_t>(s)] = ns.id;
    ns.is_output = st.is_output;
    if (st.kind == StageKind::kMap) {
      ns.nodes = std::move(tpl.nodes);
      ns.loads = std::move(tpl.loads);
      ns.body = tpl.body;
    } else {
      ns.loads = st.loads;
      ns.reduction = st.reduction;
    }
    for (Access& a : ns.loads) {
      if (a.producer.is_input) continue;
      const int np = new_id[static_cast<std::size_t>(a.producer.id)];
      FUSEDP_CHECK(np >= 0, "producer of surviving stage was inlined away");
      a.producer.id = np;
    }
  }
  out.finalize();
  return res;
}

}  // namespace fusedp
