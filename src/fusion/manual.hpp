// Helpers for expert ("H-manual") schedules: groupings written by hand as
// lists of stage names with explicit tile sizes, mirroring the hand-tuned
// Halide schedules shipped with the benchmarks.
#pragma once

#include <string>

#include "fusion/grouping.hpp"

namespace fusedp {

// Builds a grouping from stage-name lists.  Stages not mentioned in any
// list become singleton groups.  `tiles[i]` applies to `named_groups[i]`
// (reference-space, innermost last; may be shorter than the group's rank —
// it is right-aligned and outer dims stay untiled); pass an empty vector to
// let the cost model pick.
Grouping grouping_from_names(
    const Pipeline& pl, const CostModel& model,
    const std::vector<std::vector<std::string>>& named_groups,
    const std::vector<std::vector<std::int64_t>>& tiles);

}  // namespace fusedp
