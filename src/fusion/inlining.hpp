// Stage inlining — substituting cheap pointwise stages into their consumers.
//
// Paper Section 6.2 notes that Halide's expert camera-pipeline schedule wins
// partly through "aggressive inlining of several functions, which PolyMage-A
// and PolyMageDP currently do not support".  This module adds that missing
// piece as a pre-pass: a stage is inlined when
//   * it is a kMap stage and not a pipeline output, and
//   * every consumer reads it through axes that are either pure identity
//     (src permutation, no offset/scale) or constants (e.g. channel
//     selects), with matching extents along identity axes, and
//   * its expression is cheap (<= max_ops AST nodes) or it has exactly one
//     consumer.
// Under those conditions substitution is semantics-exact: the producer's
// body is evaluated at exactly the coordinates the original stage would
// have used, with its own loads' borders intact.
//
// Returns a new Pipeline (stage ids change; names are preserved) — run the
// scheduler on the inlined pipeline.
#pragma once

#include <memory>

#include "ir/pipeline.hpp"

namespace fusedp {

// Profitability: splicing duplicates the producer's expression at every
// load site, so anything non-trivial is only inlined when it has exactly
// one use site in the whole pipeline.
struct InlineOptions {
  int max_ops = 24;     // single-use-site stages up to this size
  int trivial_ops = 6;  // multi-site stages only when this trivial
};

struct InlineResult {
  std::unique_ptr<Pipeline> pipeline;
  int stages_inlined = 0;
};

InlineResult inline_pointwise(const Pipeline& src, InlineOptions opts = {});

}  // namespace fusedp
