// Grouping: the output of every fusion engine — a partition of the pipeline's
// stages into overlapped-tiled groups, each with its tile sizes.
#pragma once

#include <string>
#include <vector>

#include "graph/nodeset.hpp"
#include "ir/pipeline.hpp"
#include "model/cost.hpp"

namespace fusedp {

struct GroupSchedule {
  NodeSet stages;
  // Tile sizes per reference-space dimension of the group (see
  // AlignResult); empty means "untiled" (single tile covering the domain).
  std::vector<std::int64_t> tile_sizes;
  double cost = 0.0;
};

struct Grouping {
  std::vector<GroupSchedule> groups;
  double total_cost = 0.0;

  std::string to_string(const Pipeline& pl) const;
};

// Checks the structural invariants every scheduler must satisfy:
// groups are disjoint, cover all stages, each is connected, the group
// quotient graph is acyclic, and no group mixes a reduction with other
// stages.  Returns false and fills `why` (if non-null) on violation.
bool validate_grouping(const Pipeline& pl, const Grouping& g,
                       std::string* why = nullptr);

// Baseline "no fusion" grouping: every stage alone, tile sizes from the cost
// model.
Grouping singleton_grouping(const Pipeline& pl, const CostModel& model);

// Fills in tile sizes / cost for groups that lack them, using the model.
void complete_grouping(const Pipeline& pl, const CostModel& model,
                       Grouping& g);

}  // namespace fusedp
