// Test-only fault injection.
//
// The runtime and schedulers mark interesting failure sites with
// FUSEDP_FAULT_POINT("name"); tests arm one site (programmatically or via
// the FUSEDP_FAULT environment variable) and the next hit of that site
// throws a coded fusedp::Error.  This lets tests prove that every failure
// path — scratch allocation, workspace preparation, per-tile evaluation,
// schedule parsing — surfaces as exactly one coded error with the process
// and workspace left in a destructible, reusable state.
//
// Disarmed cost is a single relaxed atomic load per fault point, so the
// hooks stay compiled into release builds.  Arming is global (one point at
// a time) and fully thread-safe: hit bookkeeping is lock-free (atomic hit
// counter, atomic countdown, an atomic fired latch), so with `skip = n`
// exactly one thread fires on the (n+1)-th hit even when the point sits
// inside an OpenMP parallel loop or many concurrent Sessions hammer the
// same site (the chaos soak re-arms points while other threads are mid-
// hit; readers take the shared side of a shared_mutex so arm/disarm never
// races the point-name comparison).
//
// Environment arming (picked up at first hit check):
//   FUSEDP_FAULT=<point>          fire on the first hit of <point>
//   FUSEDP_FAULT=<point>:<skip>   ignore the first <skip> hits
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "support/status.hpp"

namespace fusedp {

class FaultInjector {
 public:
  // Arms `point`: the (skip+1)-th FUSEDP_FAULT_POINT(point) hit throws
  // Error(code).  Replaces any previously armed point.
  static void arm(const std::string& point,
                  ErrorCode code = ErrorCode::kFaultInjected, int skip = 0);
  // Arms `point` as a *silent corruption* fault: the (skip+1)-th
  // FUSEDP_FAULT_CORRUPT(point, f) hit flips the low mantissa bit of the
  // float `f` instead of throwing — a planted miscompile / memory smash
  // for the differential verifier and guard-arena tests to catch.  Throwing
  // points (FUSEDP_FAULT_POINT) ignore a corrupt arming and vice versa.
  static void arm_corrupt(const std::string& point, int skip = 0);
  static void disarm();

  // True iff some point is armed and has not fired yet.
  static bool armed();
  // Total hits of the armed point since arm() (fired or not); 0 if disarmed.
  static std::uint64_t hits();

  // Internal: used by FUSEDP_FAULT_POINT.  `active()` is the cheap inline
  // gate; `hit()` does the name match / countdown / throw.
  static bool active() { return active_.load(std::memory_order_relaxed); }
  static void hit(const char* point);
  // Internal: used by FUSEDP_FAULT_CORRUPT.  True exactly once when
  // `point` is corrupt-armed and its countdown expires.
  static bool corrupt_now(const char* point);

 private:
  static std::atomic<bool> active_;
};

#define FUSEDP_FAULT_POINT(name)                  \
  do {                                            \
    if (::fusedp::FaultInjector::active())        \
      ::fusedp::FaultInjector::hit(name);         \
  } while (0)

// Silent single-bit corruption of the float lvalue `f` when `name` is
// corrupt-armed.  Disarmed cost is one relaxed atomic load, like
// FUSEDP_FAULT_POINT.
#define FUSEDP_FAULT_CORRUPT(name, f)                        \
  do {                                                       \
    if (::fusedp::FaultInjector::active() &&                 \
        ::fusedp::FaultInjector::corrupt_now(name)) {        \
      std::uint32_t fault_bits_;                             \
      float fault_val_ = (f);                                \
      __builtin_memcpy(&fault_bits_, &fault_val_, 4);        \
      fault_bits_ ^= 1u;                                     \
      __builtin_memcpy(&fault_val_, &fault_bits_, 4);        \
      (f) = fault_val_;                                      \
    }                                                        \
  } while (0)

}  // namespace fusedp
