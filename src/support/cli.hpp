// Tiny flag/env helper shared by benches and examples.
//
// Flags look like `--name=value`; environment variables use the FUSEDP_
// prefix (e.g. FUSEDP_SCALE=4).  Flags win over env vars which win over
// defaults.
#pragma once

#include <cstdint>
#include <string>

namespace fusedp {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;

  // Env-var fallback: --name beats FUSEDP_<NAME> beats `def`.
  std::int64_t get_int_env(const std::string& name, std::int64_t def) const;
  std::string get_env(const std::string& name, const std::string& def) const;

 private:
  std::string find(const std::string& name) const;
  std::string args_;  // "\x1f"-joined argv for simple lookup
};

// Standalone env readers (for code without argv access).
std::int64_t env_int(const std::string& fusedp_suffix, std::int64_t def);
std::string env_str(const std::string& fusedp_suffix, const std::string& def);

}  // namespace fusedp
