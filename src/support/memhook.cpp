#include "support/memhook.hpp"

namespace fusedp::detail {

std::atomic<MemChargeFn> mem_charge{nullptr};
std::atomic<MemChargeFn> mem_uncharge{nullptr};

}  // namespace fusedp::detail
