#include "support/fingerprint.hpp"

#include <cstring>

#include "ir/pipeline.hpp"
#include "model/machine.hpp"

namespace fusedp {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
}  // namespace

void Fnv64::add_bytes(const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= kFnvPrime;
  }
}

void Fnv64::add_tag(char tag) { add_bytes(&tag, 1); }

namespace {
// Little-endian bytes of v, shared by the typed add_* methods below.
void raw_u64(Fnv64& h, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  h.add_bytes(b, 8);
}
}  // namespace

void Fnv64::add_str(const std::string& s) {
  add_tag('s');
  raw_u64(*this, s.size());
  add_bytes(s.data(), s.size());
}

// Each typed add_* leads with its own tag byte so the same bit pattern fed
// as different types cannot collide (e.g. add_i64(0) vs add_f64(0.0)).
void Fnv64::add_u64(std::uint64_t v) {
  add_tag('u');
  raw_u64(*this, v);
}

void Fnv64::add_i64(std::int64_t v) {
  add_tag('i');
  raw_u64(*this, static_cast<std::uint64_t>(v));
}

void Fnv64::add_i32(std::int32_t v) {
  add_tag('3');
  raw_u64(*this, static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
}

void Fnv64::add_f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  add_tag('d');
  raw_u64(*this, bits);
}

void Fnv64::add_f32(float v) {
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  add_tag('f');
  raw_u64(*this, bits);
}

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  // Table built on first use (256 u32s; thread-safe static init).
  static const auto table = [] {
    struct Table { std::uint32_t t[256]; };
    Table tbl{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      tbl.t[i] = c;
    }
    return tbl;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    c = table.t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::string& s) { return crc32(s.data(), s.size()); }

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xFu];
    v >>= 4;
  }
  return s;
}

bool parse_hex64(const std::string& s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  if (out != nullptr) *out = v;
  return true;
}

const char* build_git_sha() {
#ifdef FUSEDP_GIT_SHA
  return FUSEDP_GIT_SHA;
#else
  return "unknown";
#endif
}

namespace {

void add_box(Fnv64& h, const Box& b) {
  h.add_tag('B');
  h.add_i32(b.rank);
  for (int d = 0; d < b.rank; ++d) {
    h.add_i64(b.lo[d]);
    h.add_i64(b.hi[d]);
  }
}

void add_access(Fnv64& h, const Access& a) {
  h.add_tag('A');
  h.add_tag(a.producer.is_input ? 'i' : 's');
  h.add_i32(a.producer.id);
  h.add_i32(static_cast<std::int32_t>(a.border));
  h.add_u64(a.axes.size());
  for (const AxisMap& m : a.axes) {
    h.add_i32(static_cast<std::int32_t>(m.kind));
    h.add_i32(m.src_dim);
    h.add_i32(m.num);
    h.add_i32(m.den);
    h.add_i64(m.pre);
    h.add_i64(m.offset);
    h.add_i32(m.dyn);
  }
}

}  // namespace

std::uint64_t fingerprint(const Pipeline& pl) {
  Fnv64 h;
  h.add_str("fusedp-pipeline-v1");
  h.add_str(pl.name());
  h.add_u64(static_cast<std::uint64_t>(pl.num_inputs()));
  for (int i = 0; i < pl.num_inputs(); ++i) {
    const InputImage& in = pl.input(i);
    h.add_str(in.name);
    add_box(h, in.domain);
  }
  h.add_u64(static_cast<std::uint64_t>(pl.num_stages()));
  for (const Stage& s : pl.stages()) {
    h.add_tag('S');
    h.add_str(s.name);
    h.add_i32(s.id);
    h.add_i32(static_cast<std::int32_t>(s.kind));
    h.add_tag(s.is_output ? 'o' : '.');
    add_box(h, s.domain);
    h.add_i32(s.body);
    // The whole expression arena, node by node: referenced and dead nodes
    // alike (indices are stable, so hashing everything is deterministic and
    // avoids a reachability walk here).
    h.add_u64(s.nodes.size());
    for (const ExprNode& n : s.nodes) {
      h.add_i32(static_cast<std::int32_t>(n.op));
      h.add_f32(n.imm);
      h.add_i32(n.a);
      h.add_i32(n.b);
      h.add_i32(n.c);
      h.add_i32(n.dim);
      h.add_i32(n.load_id);
    }
    h.add_u64(s.loads.size());
    for (const Access& a : s.loads) add_access(h, a);
  }
  h.add_u64(pl.outputs().size());
  for (int o : pl.outputs()) h.add_i32(o);
  return h.digest();
}

std::uint64_t fingerprint(const MachineModel& m) {
  Fnv64 h;
  h.add_str("fusedp-machine-v1");
  h.add_str(m.name);
  h.add_i64(m.l1_bytes);
  h.add_i64(m.l2_bytes);
  h.add_i64(m.l3_bytes);
  h.add_i32(m.cores);
  h.add_i32(m.vector_width_floats);
  h.add_i64(m.innermost_tile);
  h.add_f64(m.weights.w1);
  h.add_f64(m.weights.w2);
  h.add_f64(m.weights.w3);
  h.add_f64(m.weights.w4);
  return h.digest();
}

}  // namespace fusedp
