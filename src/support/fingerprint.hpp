// Shared fingerprinting: the one place pipeline / MachineModel / options /
// build hashing lives, used by both the persistent schedule cache's keys
// (storage/findb) and the bench artifacts' provenance blocks.
//
// Two hash families with different jobs:
//  * Fnv64 — an incremental FNV-1a structural hasher.  Fingerprints answer
//    "is this the same pipeline / machine / option set?", so every field
//    that can change the chosen schedule is folded in, tagged, and
//    length-prefixed (no concatenation ambiguity).  Not cryptographic: a
//    hostile collision at worst causes a cache probe to return a schedule
//    that fails the hardened parser / grouping validation and degrades to a
//    fresh autoschedule — never a wrong plan.
//  * crc32 — record integrity for on-disk cache payloads (detects
//    truncation and bit-flips, IEEE 802.3 polynomial).
//
// Intentionally include-only on the IR/model layers: fingerprinting walks
// the plain-data headers (ir/pipeline.hpp, model/machine.hpp) without
// calling into their compiled code, so fusedp_support stays the bottom
// library.
#pragma once

#include <cstdint>
#include <string>

namespace fusedp {

class Pipeline;
struct MachineModel;

// Incremental FNV-1a (64-bit).  Every add_* tags the value with its type
// and, for variable-length data, its length, so distinct structures cannot
// collide by concatenation.
class Fnv64 {
 public:
  void add_bytes(const void* data, std::size_t n);
  void add_str(const std::string& s);
  void add_i64(std::int64_t v);
  void add_u64(std::uint64_t v);
  void add_i32(std::int32_t v);
  void add_f64(double v);   // hashed by bit pattern
  void add_f32(float v);    // hashed by bit pattern
  void add_tag(char tag);   // 1-byte structural separator

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

// IEEE 802.3 CRC-32 (polynomial 0xEDB88320), `seed` chains partial blocks.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);
std::uint32_t crc32(const std::string& s);

// 16-digit lowercase hex of a 64-bit hash (cache file stems, provenance).
std::string hex64(std::uint64_t v);
// Inverse of hex64; returns false on anything but exactly 16 hex digits.
bool parse_hex64(const std::string& s, std::uint64_t* out);

// The commit this binary was configured at ("unknown" outside a git
// checkout).  Baked into fusedp_support at configure time; bench provenance
// and cache record provenance both read it from here.
const char* build_git_sha();

// Structural fingerprint of a finalized pipeline: inputs (name + domain),
// stages in id order (name, kind, domain, liveout flag, expression arena,
// load table with axis maps and border modes) and the output list.  Native
// reduction bodies are opaque std::functions and are represented by the
// stage's declared loads/domain/name; code changes to them are covered by
// the git SHA recorded next to every cache entry.
std::uint64_t fingerprint(const Pipeline& pl);

// Fingerprint of everything the cost model reads from the machine: cache
// sizes, core count, vector width, INNERMOSTTILESIZE and the w1..w4
// weights.  Two machines with equal fingerprints choose identical
// schedules.
std::uint64_t fingerprint(const MachineModel& machine);

}  // namespace fusedp
