// Process-wide memory-metering hooks.
//
// The ResourceGovernor (src/runtime/governor.hpp) meters Workspace and
// ScratchArena bytes against a configurable budget, but ScratchArena is a
// header-only support primitive that cannot depend on the runtime layer.
// These hooks invert the dependency: the governor installs charge/uncharge
// function pointers here when it is first constructed, and the arenas call
// through them on every *growth* event (growth-only arenas grow a handful
// of times per process, so the accounting is far off any hot path).
//
// Uninstalled cost is one relaxed atomic load per growth.  charge may throw
// a coded Error (kResourceExhausted) — admission control happens *before*
// the allocation, so a rejected charge leaves the caller's state intact.
// uncharge never throws.
#pragma once

#include <atomic>
#include <cstdint>

namespace fusedp::detail {

using MemChargeFn = void (*)(std::int64_t bytes);

extern std::atomic<MemChargeFn> mem_charge;    // may throw kResourceExhausted
extern std::atomic<MemChargeFn> mem_uncharge;  // noexcept

// Charges `bytes` through the installed hook; returns the number of bytes
// actually charged (0 when no hook is installed) so the caller can later
// uncharge exactly what it charged, even if the governor was armed midway
// through the process lifetime.
inline std::int64_t charge_bytes(std::int64_t bytes) {
  MemChargeFn f = mem_charge.load(std::memory_order_acquire);
  if (f == nullptr || bytes <= 0) return 0;
  f(bytes);
  return bytes;
}

inline void uncharge_bytes(std::int64_t bytes) noexcept {
  MemChargeFn f = mem_uncharge.load(std::memory_order_acquire);
  if (f != nullptr && bytes > 0) f(bytes);
}

}  // namespace fusedp::detail
