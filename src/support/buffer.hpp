// Dense n-dimensional float buffers.
//
// All pipeline data in FuseDP is single-precision float (the paper's
// benchmarks are evaluated on 32-bit float data).  A Buffer owns a
// 64-byte-aligned allocation; BufferView is a non-owning strided window used
// for per-tile scratch regions.  Dimension order is outermost-first; the last
// dimension is contiguous (unit stride).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "support/checked.hpp"
#include "support/status.hpp"

namespace fusedp {

inline constexpr int kMaxRank = 4;

// A non-owning view over a strided n-D float region.
// `origin[d]` is the coordinate (in the producer stage's own coordinate
// space) that maps to local index 0 along dimension d; loads subtract it.
struct BufferView {
  float* data = nullptr;
  int rank = 0;
  std::int64_t origin[kMaxRank] = {0, 0, 0, 0};
  std::int64_t extent[kMaxRank] = {0, 0, 0, 0};
  std::int64_t stride[kMaxRank] = {0, 0, 0, 0};

  // Flat offset of global coordinate `c` (length `rank`).
  std::int64_t offset_of(const std::int64_t* c) const {
    std::int64_t off = 0;
    for (int d = 0; d < rank; ++d) off += (c[d] - origin[d]) * stride[d];
    return off;
  }
  float& at(const std::int64_t* c) { return data[offset_of(c)]; }
  float at(const std::int64_t* c) const { return data[offset_of(c)]; }
  std::int64_t volume() const {
    std::int64_t v = 1;
    for (int d = 0; d < rank; ++d) v *= extent[d];
    return v;
  }
};

// An owning, aligned, dense n-D float buffer (unit stride innermost).
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(const std::vector<std::int64_t>& extents) { reset(extents); }

  void reset(const std::vector<std::int64_t>& extents) {
    FUSEDP_CHECK_CODE(!extents.empty() && extents.size() <= kMaxRank,
                      ErrorCode::kInvalidArgument, "buffer rank out of range");
    rank_ = static_cast<int>(extents.size());
    std::int64_t vol = 1;
    for (int d = 0; d < rank_; ++d) {
      FUSEDP_CHECK(extents[d] > 0, "buffer extent must be positive");
      extent_[d] = extents[d];
      vol = mul_or_throw(vol, extents[d], "buffer volume",
                         ErrorCode::kAllocationFailed);
    }
    std::int64_t s = 1;
    for (int d = rank_ - 1; d >= 0; --d) {
      stride_[d] = s;
      s *= extent_[d];
    }
    storage_.assign(static_cast<std::size_t>(vol), 0.0f);
  }

  bool empty() const { return storage_.empty(); }
  int rank() const { return rank_; }
  std::int64_t extent(int d) const { return extent_[d]; }
  std::int64_t stride(int d) const { return stride_[d]; }
  std::int64_t volume() const { return static_cast<std::int64_t>(storage_.size()); }
  float* data() { return storage_.data(); }
  const float* data() const { return storage_.data(); }

  float& at(std::initializer_list<std::int64_t> c) {
    return storage_[flat(c)];
  }
  float at(std::initializer_list<std::int64_t> c) const {
    return storage_[flat(c)];
  }

  BufferView view() {
    BufferView v;
    v.data = storage_.data();
    v.rank = rank_;
    for (int d = 0; d < rank_; ++d) {
      v.origin[d] = 0;
      v.extent[d] = extent_[d];
      v.stride[d] = stride_[d];
    }
    return v;
  }
  BufferView view() const { return const_cast<Buffer*>(this)->view(); }

 private:
  std::size_t flat(std::initializer_list<std::int64_t> c) const {
    FUSEDP_DCHECK(static_cast<int>(c.size()) == rank_, "bad coordinate rank");
    std::int64_t off = 0;
    int d = 0;
    for (std::int64_t x : c) off += x * stride_[d++];
    return static_cast<std::size_t>(off);
  }

  int rank_ = 0;
  std::int64_t extent_[kMaxRank] = {0, 0, 0, 0};
  std::int64_t stride_[kMaxRank] = {0, 0, 0, 0};
  std::vector<float> storage_;
};

}  // namespace fusedp
