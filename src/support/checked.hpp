// Overflow-checked 64-bit integer arithmetic.
//
// Extent and footprint math (stage volumes, tile counts, scratch sizes)
// multiplies user-controlled extents together; with adversarial or simply
// huge pipelines the naive products wrap silently — signed overflow is UB,
// and the wrapped value would send the autoscheduler or the executor off a
// cliff much later, far from the cause.  These helpers detect the overflow
// at the arithmetic site and surface it as a coded error instead.
//
// Two flavours:
//  * checked_mul / checked_add — Result<int64> for callers on non-throwing
//    paths.
//  * mul_or_throw / add_or_throw / volume_or_throw — throw fusedp::Error
//    with a caller-chosen code (default kInvalidPipeline: oversized extents
//    are a property of the input) for callers that already speak
//    exceptions, with `what` naming the quantity that overflowed.
#pragma once

#include <cstdint>

#include "support/status.hpp"

namespace fusedp {

inline Result<std::int64_t> checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r))
    return Result<std::int64_t>::failure(
        ErrorCode::kInvalidPipeline,
        "integer overflow: " + std::to_string(a) + " * " + std::to_string(b));
  return r;
}

inline Result<std::int64_t> checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r))
    return Result<std::int64_t>::failure(
        ErrorCode::kInvalidPipeline,
        "integer overflow: " + std::to_string(a) + " + " + std::to_string(b));
  return r;
}

inline std::int64_t mul_or_throw(std::int64_t a, std::int64_t b,
                                 const char* what,
                                 ErrorCode code = ErrorCode::kInvalidPipeline) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r))
    throw Error(std::string(what) + " overflows int64 (" + std::to_string(a) +
                    " * " + std::to_string(b) + ")",
                code);
  return r;
}

inline std::int64_t add_or_throw(std::int64_t a, std::int64_t b,
                                 const char* what,
                                 ErrorCode code = ErrorCode::kInvalidPipeline) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r))
    throw Error(std::string(what) + " overflows int64 (" + std::to_string(a) +
                    " + " + std::to_string(b) + ")",
                code);
  return r;
}

// Product of `n` extents (e.g. a Box's), checked at every step.
inline std::int64_t volume_or_throw(const std::int64_t* extents, int n,
                                    const char* what,
                                    ErrorCode code = ErrorCode::kInvalidPipeline) {
  std::int64_t v = 1;
  for (int d = 0; d < n; ++d) v = mul_or_throw(v, extents[d], what, code);
  return v;
}

}  // namespace fusedp
