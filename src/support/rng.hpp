// Deterministic RNG (SplitMix64).  Used for synthetic input images and
// property-test DAG generation; determinism keeps golden tests and the
// schedule-independence invariant reproducible.
#pragma once

#include <cstdint>

namespace fusedp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n ? next_u64() % n : 0; }

  // Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace fusedp
