// Wall-clock timing.
#pragma once

#include <chrono>
#include <limits>

namespace fusedp {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  // Elapsed seconds since construction / last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// A per-request wall-clock deadline.  Default-constructed deadlines are
// unarmed (never expire); Deadline::after(s) arms one `s` seconds from now.
// The executor samples expired() cooperatively at tile boundaries — one
// steady_clock read per tile when armed, a single pointer test when no
// deadline is attached — and terminates the run with a coded
// kDeadlineExceeded error through the same cancellation latch that handles
// tile faults, so the Workspace stays reusable.
class Deadline {
 public:
  Deadline() = default;  // unarmed: never expires

  static Deadline after(double seconds) {
    Deadline d;
    d.armed_ = true;
    d.at_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  bool armed() const { return armed_; }
  bool expired() const { return armed_ && clock::now() >= at_; }
  // Seconds until expiry (negative once expired); +inf when unarmed.
  double remaining_seconds() const {
    if (!armed_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - clock::now()).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point at_{};
  bool armed_ = false;
};

}  // namespace fusedp
