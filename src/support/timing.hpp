// Wall-clock timing.
#pragma once

#include <chrono>

namespace fusedp {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  // Elapsed seconds since construction / last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fusedp
