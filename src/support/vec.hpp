// Vector-kernel support: aligned row storage and SIMD loop annotation.
//
// Every row-granular evaluator (RowEvaluator, CompiledRowEvaluator, the
// executor's per-tile scratch) allocates float rows from a growth-only
// arena whose base is 64-byte-aligned and whose per-row stride is padded to
// a whole number of cache lines.  That keeps each row register aligned for
// the widest vector loads the host supports and lets adjacent rows share no
// cache line.
//
// FUSEDP_SIMD marks a loop as dependence-free for the host compiler
// (`#pragma omp simd`).  It asserts vectorizability only — per-element IEEE
// semantics are unchanged, so annotated kernels stay bit-identical to their
// scalar form.  It must NOT be placed on loops calling exp/log/pow: those
// stay scalar-libm by policy (vector math libraries round differently).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>

#include "support/memhook.hpp"
#include "support/status.hpp"

#if defined(_OPENMP)
#define FUSEDP_SIMD _Pragma("omp simd")
#else
#define FUSEDP_SIMD
#endif

namespace fusedp {

inline constexpr std::size_t kRowAlignBytes = 64;
inline constexpr std::size_t kRowAlignFloats = kRowAlignBytes / sizeof(float);

// Rounds a row length up to a whole number of 64-byte lines, so row i of a
// multi-row arena starts at an aligned address.
inline std::size_t pad_row_floats(std::size_t n) {
  return (n + kRowAlignFloats - 1) & ~(kRowAlignFloats - 1);
}

// Growth-only aligned scratch: reallocation never copies or zero-fills.
// Safe for the evaluators because every element of a row/region is written
// before anything reads it.
//
// Growth is metered through the process memhooks (admission *before* the
// allocation), so a ResourceGovernor budget turns a would-be OOM into a
// coded kResourceExhausted throw that leaves the arena's existing block —
// and therefore the surrounding Workspace — fully usable.  Each arena
// uncharges exactly the bytes it charged, so arming the governor midway
// through the process never double-counts pre-existing arenas.
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(ScratchArena&& other) noexcept
      : data_(std::move(other.data_)),
        cap_(other.cap_),
        charged_(other.charged_) {
    other.cap_ = 0;
    other.charged_ = 0;
  }
  ScratchArena& operator=(ScratchArena&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::move(other.data_);
      cap_ = other.cap_;
      charged_ = other.charged_;
      other.cap_ = 0;
      other.charged_ = 0;
    }
    return *this;
  }
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;
  ~ScratchArena() { release(); }

  float* ensure(std::size_t n) {
    if (n > cap_) {
      const std::size_t bytes = pad_row_floats(n) * sizeof(float);
      // Admission first: a rejected charge throws before the old block is
      // freed, so the arena stays usable at its current capacity.  The old
      // and new charges briefly overlap — a deliberate overcount that keeps
      // the "budget covers the post-growth footprint" invariant simple.
      const std::int64_t add =
          detail::charge_bytes(static_cast<std::int64_t>(bytes));
      data_.reset();  // free before allocating the replacement
      void* p = std::aligned_alloc(kRowAlignBytes, bytes);
      if (p == nullptr) {
        detail::uncharge_bytes(add);
        detail::uncharge_bytes(charged_);
        charged_ = 0;
        cap_ = 0;
        throw std::bad_alloc();
      }
      detail::uncharge_bytes(charged_);
      charged_ = add;
      data_.reset(static_cast<float*>(p));
      cap_ = n;
    }
    return data_.get();
  }
  // Frees the block and returns its charge to the governor.
  void release() noexcept {
    data_.reset();
    cap_ = 0;
    detail::uncharge_bytes(charged_);
    charged_ = 0;
  }
  float* data() { return data_.get(); }
  std::size_t capacity() const { return cap_; }
  std::int64_t charged_bytes() const { return charged_; }

 private:
  struct FreeDeleter {
    void operator()(float* p) const { std::free(p); }
  };
  std::unique_ptr<float, FreeDeleter> data_;
  std::size_t cap_ = 0;
  std::int64_t charged_ = 0;  // bytes this arena holds at the governor
};

// ---------------------------------------------------------------------------
// Guarded row carving (ExecOptions::guard_arena).
//
// The row evaluators carve per-op/per-register rows from one ScratchArena
// block, so a kernel that writes past its row silently corrupts the
// *neighbouring register* — a bug class (regalloc aliasing, off-by-one row
// kernels) ASan cannot see because the whole arena is one valid allocation.
// RowGuard interposes one cache line of canary words after every row (plus
// a leading line before row 0); the executor checks all canaries after each
// tile and converts a smash into a coded error naming the register.

inline constexpr std::uint32_t kGuardCanaryBits = 0x5AFEC0DEu;
inline constexpr std::size_t kGuardFloats = kRowAlignFloats;  // one line

inline float guard_canary_value() {
  float f;
  std::memcpy(&f, &kGuardCanaryBits, sizeof(f));
  return f;
}

class RowGuard {
 public:
  void set_enabled(bool on) {
    if (on != enabled_) laid_out_ = false;
    enabled_ = on;
  }
  bool enabled() const { return enabled_; }

  // Carves `nrows` rows of `row_floats` (already cache-line padded) floats
  // from `arena` and sets `stride` to the per-row pitch.  Disabled, this is
  // exactly arena.ensure(nrows * row_floats).  Enabled, every row gains a
  // trailing canary line (stride grows by kGuardFloats) and canaries are
  // (re)stamped whenever the layout changes; row data is never touched, so
  // the evaluators' row-reuse optimizations are unaffected.
  float* carve(ScratchArena& arena, std::size_t nrows, std::size_t row_floats,
               std::size_t& stride) {
    if (!enabled_) {
      laid_out_ = false;
      stride = row_floats;
      return arena.ensure(nrows * row_floats);
    }
    const std::size_t gstride = row_floats + kGuardFloats;
    float* base = arena.ensure(kGuardFloats + nrows * gstride);
    const bool same = laid_out_ && base == base_ && nrows_ == nrows &&
                      gstride == stride_;
    base_ = base;
    nrows_ = nrows;
    stride_ = gstride;
    row_floats_ = row_floats;
    laid_out_ = true;
    if (!same) {
      const float canary = guard_canary_value();
      for (std::size_t i = 0; i < kGuardFloats; ++i) base[i] = canary;
      float* rows = base + kGuardFloats;
      for (std::size_t r = 0; r < nrows; ++r) {
        float* g = rows + r * gstride + row_floats;
        for (std::size_t i = 0; i < kGuardFloats; ++i) g[i] = canary;
      }
    }
    stride = gstride;
    return base + kGuardFloats;
  }

  // Verifies every canary word; throws a coded Error naming the smashed
  // register on violation.  No-op when disabled or nothing carved yet.
  void check(const char* where) const {
    if (!enabled_ || !laid_out_) return;
    const float* rows = base_ + kGuardFloats;
    for (std::size_t i = 0; i < kGuardFloats; ++i)
      if (!is_canary(base_[i])) fail_guard(where, -1, i, base_[i]);
    for (std::size_t r = 0; r < nrows_; ++r) {
      const float* g = rows + r * stride_ + row_floats_;
      for (std::size_t i = 0; i < kGuardFloats; ++i)
        if (!is_canary(g[i]))
          fail_guard(where, static_cast<std::int64_t>(r), i, g[i]);
    }
  }

 private:
  static bool is_canary(float f) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits == kGuardCanaryBits;
  }
  [[noreturn]] static void fail_guard(const char* where, std::int64_t reg,
                                      std::size_t word, float got) {
    std::uint32_t bits;
    std::memcpy(&bits, &got, sizeof(bits));
    throw Error(std::string(where) + ": guard-arena canary smashed " +
                    (reg < 0 ? std::string("before row register 0")
                             : "after row register " + std::to_string(reg)) +
                    " (word " + std::to_string(word) + ", bits 0x" +
                    [](std::uint32_t b) {
                      char buf[9];
                      static const char* hex = "0123456789abcdef";
                      for (int i = 7; i >= 0; --i, b >>= 4) buf[i] = hex[b & 15];
                      buf[8] = '\0';
                      return std::string(buf);
                    }(bits) +
                    "): a row kernel overran its register",
                ErrorCode::kInternal);
  }

  bool enabled_ = false;
  bool laid_out_ = false;
  float* base_ = nullptr;
  std::size_t nrows_ = 0;
  std::size_t stride_ = 0;      // row_floats_ + kGuardFloats
  std::size_t row_floats_ = 0;  // data floats per row
};

}  // namespace fusedp
