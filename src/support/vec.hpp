// Vector-kernel support: aligned row storage and SIMD loop annotation.
//
// Every row-granular evaluator (RowEvaluator, CompiledRowEvaluator, the
// executor's per-tile scratch) allocates float rows from a growth-only
// arena whose base is 64-byte-aligned and whose per-row stride is padded to
// a whole number of cache lines.  That keeps each row register aligned for
// the widest vector loads the host supports and lets adjacent rows share no
// cache line.
//
// FUSEDP_SIMD marks a loop as dependence-free for the host compiler
// (`#pragma omp simd`).  It asserts vectorizability only — per-element IEEE
// semantics are unchanged, so annotated kernels stay bit-identical to their
// scalar form.  It must NOT be placed on loops calling exp/log/pow: those
// stay scalar-libm by policy (vector math libraries round differently).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#if defined(_OPENMP)
#define FUSEDP_SIMD _Pragma("omp simd")
#else
#define FUSEDP_SIMD
#endif

namespace fusedp {

inline constexpr std::size_t kRowAlignBytes = 64;
inline constexpr std::size_t kRowAlignFloats = kRowAlignBytes / sizeof(float);

// Rounds a row length up to a whole number of 64-byte lines, so row i of a
// multi-row arena starts at an aligned address.
inline std::size_t pad_row_floats(std::size_t n) {
  return (n + kRowAlignFloats - 1) & ~(kRowAlignFloats - 1);
}

// Growth-only aligned scratch: reallocation never copies or zero-fills.
// Safe for the evaluators because every element of a row/region is written
// before anything reads it.
class ScratchArena {
 public:
  float* ensure(std::size_t n) {
    if (n > cap_) {
      data_.reset();  // free before allocating the replacement
      const std::size_t bytes = pad_row_floats(n) * sizeof(float);
      void* p = std::aligned_alloc(kRowAlignBytes, bytes);
      if (p == nullptr) throw std::bad_alloc();
      data_.reset(static_cast<float*>(p));
      cap_ = n;
    }
    return data_.get();
  }
  float* data() { return data_.get(); }
  std::size_t capacity() const { return cap_; }

 private:
  struct FreeDeleter {
    void operator()(float* p) const { std::free(p); }
  };
  std::unique_ptr<float, FreeDeleter> data_;
  std::size_t cap_ = 0;
};

}  // namespace fusedp
