// Measurement protocol from the paper (Section 6.1):
//   "All experiments were conducted with five sample runs with each sample
//    using 500 runs. We report the minimum of the average of each sample."
//
// measure_min_of_averages() runs `samples` samples of `runs` invocations each
// and returns the minimum per-sample average in milliseconds.  Sample/run
// counts are configurable (the paper's 5x500 is impractically slow in CI-like
// environments; benches read FUSEDP_SAMPLES / FUSEDP_RUNS).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace fusedp {

struct RunStats {
  double min_avg_ms = 0.0;  // paper's reported metric
  double best_ms = 0.0;     // fastest single run
  double worst_ms = 0.0;    // slowest single run
  std::vector<double> sample_avgs_ms;
};

RunStats measure_min_of_averages(const std::function<void()>& fn, int samples,
                                 int runs);

// Simple summary helpers.
double mean(const std::vector<double>& v);
double stddev(const std::vector<double>& v);

}  // namespace fusedp
