#include "support/status.hpp"

namespace fusedp {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kInvalidPipeline: return "invalid-pipeline";
    case ErrorCode::kInvalidSchedule: return "invalid-schedule";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kSearchBudgetExhausted: return "search-budget-exhausted";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kAllocationFailed: return "allocation-failed";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kFaultInjected: return "fault-injected";
    case ErrorCode::kResourceExhausted: return "resource-exhausted";
  }
  return "unknown";
}

void fail(const std::string& msg, const char* file, int line) {
  fail(ErrorCode::kInternal, msg, file, line);
}

void fail(ErrorCode code, const std::string& msg, const char* file, int line) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg,
              code);
}

}  // namespace fusedp
