#include "support/status.hpp"

namespace fusedp {

void fail(const std::string& msg, const char* file, int line) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}

}  // namespace fusedp
