#include "support/fault.hpp"

#include <cstdlib>
#include <mutex>
#include <shared_mutex>

namespace fusedp {

std::atomic<bool> FaultInjector::active_{false};

namespace {

// Armed-point state.  The name/code/mode fields are written only under the
// exclusive side of `mu` (arm/disarm); hit() takes the shared side, so any
// number of threads — e.g. many concurrent Sessions inside a chaos soak —
// can interrogate the armed point at once without a data race on the
// string.  The countdown, hit counter, and fired latch are atomics, so the
// hot path never serializes hits against each other: with `skip = n`
// exactly one thread observes the countdown crossing zero and wins the
// fired-latch exchange, even under concurrent arming from another thread
// (the writer blocks until in-flight readers drain).
std::shared_mutex mu;
std::string armed_point;
ErrorCode armed_code = ErrorCode::kFaultInjected;
bool corrupt_mode = false;  // arm_corrupt: flip a bit instead of throwing
std::atomic<std::int64_t> countdown{0};  // hits to ignore before firing
std::atomic<std::uint64_t> hit_count{0};
std::atomic<bool> fired{false};

// One-time FUSEDP_FAULT=<point>[:<skip>] pickup at process start.
const bool env_armed = [] {
  const char* spec = std::getenv("FUSEDP_FAULT");
  if (spec == nullptr || *spec == '\0') return false;
  std::string s(spec);
  int skip = 0;
  if (const auto colon = s.find(':'); colon != std::string::npos) {
    skip = std::atoi(s.c_str() + colon + 1);
    s.resize(colon);
  }
  FaultInjector::arm(s, ErrorCode::kFaultInjected, skip);
  return true;
}();

}  // namespace

void FaultInjector::arm(const std::string& point, ErrorCode code, int skip) {
  std::unique_lock<std::shared_mutex> lock(mu);
  armed_point = point;
  armed_code = code;
  corrupt_mode = false;
  countdown.store(skip, std::memory_order_relaxed);
  hit_count.store(0, std::memory_order_relaxed);
  fired.store(false, std::memory_order_release);
  active_.store(!point.empty(), std::memory_order_release);
}

void FaultInjector::arm_corrupt(const std::string& point, int skip) {
  std::unique_lock<std::shared_mutex> lock(mu);
  armed_point = point;
  armed_code = ErrorCode::kFaultInjected;
  corrupt_mode = true;
  countdown.store(skip, std::memory_order_relaxed);
  hit_count.store(0, std::memory_order_relaxed);
  fired.store(false, std::memory_order_release);
  active_.store(!point.empty(), std::memory_order_release);
}

void FaultInjector::disarm() {
  std::unique_lock<std::shared_mutex> lock(mu);
  armed_point.clear();
  corrupt_mode = false;
  hit_count.store(0, std::memory_order_relaxed);
  fired.store(false, std::memory_order_release);
  active_.store(false, std::memory_order_release);
}

bool FaultInjector::armed() {
  std::shared_lock<std::shared_mutex> lock(mu);
  return !armed_point.empty() && !fired.load(std::memory_order_acquire);
}

std::uint64_t FaultInjector::hits() {
  return hit_count.load(std::memory_order_relaxed);
}

void FaultInjector::hit(const char* point) {
  ErrorCode code;
  std::string name;
  {
    std::shared_lock<std::shared_mutex> lock(mu);
    if (corrupt_mode || armed_point != point) return;
    if (fired.load(std::memory_order_acquire)) return;
    hit_count.fetch_add(1, std::memory_order_relaxed);
    if (countdown.fetch_sub(1, std::memory_order_acq_rel) > 0) return;
    // Fire exactly once: the latch makes later hits of this arming (other
    // threads racing past the countdown, retries) pass through untouched.
    if (fired.exchange(true, std::memory_order_acq_rel)) return;
    code = armed_code;
    name = armed_point;
  }
  throw Error("injected fault at '" + name + "'", code);
}

bool FaultInjector::corrupt_now(const char* point) {
  std::shared_lock<std::shared_mutex> lock(mu);
  if (!corrupt_mode || armed_point != point) return false;
  if (fired.load(std::memory_order_acquire)) return false;
  hit_count.fetch_add(1, std::memory_order_relaxed);
  if (countdown.fetch_sub(1, std::memory_order_acq_rel) > 0) return false;
  return !fired.exchange(true, std::memory_order_acq_rel);  // corrupt once
}

}  // namespace fusedp
