#include "support/fault.hpp"

#include <cstdlib>
#include <mutex>

namespace fusedp {

std::atomic<bool> FaultInjector::active_{false};

namespace {

// Armed-point state.  Mutated only under `mu` (and only while tests are
// single-threaded in arm/disarm); read in hit(), which also locks — fault
// points are only slow once armed, never in production runs.
std::mutex mu;
std::string armed_point;
ErrorCode armed_code = ErrorCode::kFaultInjected;
std::int64_t countdown = 0;  // hits to ignore before firing
std::uint64_t hit_count = 0;
bool fired = false;
bool corrupt_mode = false;  // arm_corrupt: flip a bit instead of throwing

// One-time FUSEDP_FAULT=<point>[:<skip>] pickup at process start.
const bool env_armed = [] {
  const char* spec = std::getenv("FUSEDP_FAULT");
  if (spec == nullptr || *spec == '\0') return false;
  std::string s(spec);
  int skip = 0;
  if (const auto colon = s.find(':'); colon != std::string::npos) {
    skip = std::atoi(s.c_str() + colon + 1);
    s.resize(colon);
  }
  FaultInjector::arm(s, ErrorCode::kFaultInjected, skip);
  return true;
}();

}  // namespace

void FaultInjector::arm(const std::string& point, ErrorCode code, int skip) {
  std::lock_guard<std::mutex> lock(mu);
  armed_point = point;
  armed_code = code;
  countdown = skip;
  hit_count = 0;
  fired = false;
  corrupt_mode = false;
  active_.store(!point.empty(), std::memory_order_release);
}

void FaultInjector::arm_corrupt(const std::string& point, int skip) {
  std::lock_guard<std::mutex> lock(mu);
  armed_point = point;
  armed_code = ErrorCode::kFaultInjected;
  countdown = skip;
  hit_count = 0;
  fired = false;
  corrupt_mode = true;
  active_.store(!point.empty(), std::memory_order_release);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mu);
  armed_point.clear();
  fired = false;
  hit_count = 0;
  corrupt_mode = false;
  active_.store(false, std::memory_order_release);
}

bool FaultInjector::armed() {
  std::lock_guard<std::mutex> lock(mu);
  return !armed_point.empty() && !fired;
}

std::uint64_t FaultInjector::hits() {
  std::lock_guard<std::mutex> lock(mu);
  return hit_count;
}

void FaultInjector::hit(const char* point) {
  ErrorCode code;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (fired || corrupt_mode || armed_point != point) return;
    ++hit_count;
    if (countdown-- > 0) return;
    // Fire exactly once: later hits of this arming (other threads, retries)
    // pass through untouched.
    fired = true;
    code = armed_code;
    name = armed_point;
  }
  throw Error("injected fault at '" + name + "'", code);
}

bool FaultInjector::corrupt_now(const char* point) {
  std::lock_guard<std::mutex> lock(mu);
  if (fired || !corrupt_mode || armed_point != point) return false;
  ++hit_count;
  if (countdown-- > 0) return false;
  fired = true;  // corrupt exactly once per arming
  return true;
}

}  // namespace fusedp
