#include "support/image_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "support/rng.hpp"
#include "support/status.hpp"

namespace fusedp {

namespace {

std::uint8_t to_byte(float v) {
  v = std::clamp(v, 0.0f, 1.0f);
  return static_cast<std::uint8_t>(std::lround(v * 255.0f));
}

}  // namespace

void write_ppm(const std::string& path, const Buffer& img) {
  FUSEDP_CHECK(img.rank() == 2 || (img.rank() == 3 && img.extent(0) == 3),
               "write_ppm expects [H,W] or [3,H,W]");
  const bool gray = img.rank() == 2;
  const std::int64_t h = gray ? img.extent(0) : img.extent(1);
  const std::int64_t w = gray ? img.extent(1) : img.extent(2);
  std::ofstream out(path, std::ios::binary);
  FUSEDP_CHECK(out.good(), "cannot open " + path + " for writing");
  out << "P6\n" << w << " " << h << "\n255\n";
  std::vector<std::uint8_t> row(static_cast<std::size_t>(w) * 3);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      for (int c = 0; c < 3; ++c) {
        const float v = gray ? img.at({y, x}) : img.at({c, y, x});
        row[static_cast<std::size_t>(x) * 3 + static_cast<std::size_t>(c)] =
            to_byte(v);
      }
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  FUSEDP_CHECK(out.good(), "failed writing " + path);
}

Buffer read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FUSEDP_CHECK(in.good(), "cannot open " + path);
  std::string magic;
  in >> magic;
  FUSEDP_CHECK(magic == "P6", "not a P6 PPM: " + path);
  std::int64_t w = 0, h = 0, maxval = 0;
  in >> w >> h >> maxval;
  FUSEDP_CHECK(w > 0 && h > 0 && maxval == 255, "unsupported PPM header");
  in.get();  // single whitespace after header
  Buffer img({3, h, w});
  std::vector<std::uint8_t> row(static_cast<std::size_t>(w) * 3);
  for (std::int64_t y = 0; y < h; ++y) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    FUSEDP_CHECK(in.good(), "truncated PPM: " + path);
    for (std::int64_t x = 0; x < w; ++x)
      for (int c = 0; c < 3; ++c)
        img.at({c, y, x}) =
            static_cast<float>(row[static_cast<std::size_t>(x) * 3 +
                                   static_cast<std::size_t>(c)]) /
            255.0f;
  }
  return img;
}

Buffer make_synthetic_image(const std::vector<std::int64_t>& extents,
                            std::uint64_t seed) {
  Buffer img(extents);
  const int rank = img.rank();
  // Treat the last two dims as (y, x); earlier dims shift phase per plane.
  const std::int64_t h = rank >= 2 ? img.extent(rank - 2) : 1;
  const std::int64_t w = img.extent(rank - 1);
  Rng rng(seed);
  const float ph0 = rng.next_float() * 6.2831853f;
  const float ph1 = rng.next_float() * 6.2831853f;

  float* p = img.data();
  std::int64_t planes = img.volume() / (h * w);
  std::int64_t idx = 0;
  for (std::int64_t pl = 0; pl < planes; ++pl) {
    const float plane_shift = 0.13f * static_cast<float>(pl);
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x, ++idx) {
        const float fy = static_cast<float>(y) / static_cast<float>(h);
        const float fx = static_cast<float>(x) / static_cast<float>(w);
        float v = 0.35f + 0.25f * fy + 0.15f * fx + plane_shift * 0.1f;
        v += 0.12f * std::sin(23.0f * fx + ph0 + plane_shift) *
             std::cos(17.0f * fy + ph1);
        // Step edges give gradient/corner detectors something to find.
        if (((x / 97) + (y / 71)) % 2 == 0) v += 0.08f;
        if (x % 251 < 3 || y % 233 < 3) v -= 0.2f;
        p[idx] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  return img;
}

Buffer make_blend_mask(std::int64_t height, std::int64_t width) {
  Buffer m({height, width});
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      // Soft vertical split with a sinusoidal seam.
      const double seam =
          width / 2.0 + 0.08 * width * std::sin(6.0 * y / double(height));
      const double d = (static_cast<double>(x) - seam) / (0.04 * width);
      m.at({y, x}) = static_cast<float>(1.0 / (1.0 + std::exp(d)));
    }
  }
  return m;
}

}  // namespace fusedp
