#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/status.hpp"
#include "support/timing.hpp"

namespace fusedp {

RunStats measure_min_of_averages(const std::function<void()>& fn, int samples,
                                 int runs) {
  FUSEDP_CHECK(samples > 0 && runs > 0, "samples/runs must be positive");
  RunStats st;
  st.best_ms = std::numeric_limits<double>::infinity();
  st.worst_ms = 0.0;
  st.sample_avgs_ms.reserve(static_cast<std::size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    double total = 0.0;
    for (int r = 0; r < runs; ++r) {
      WallTimer t;
      fn();
      const double ms = t.millis();
      total += ms;
      st.best_ms = std::min(st.best_ms, ms);
      st.worst_ms = std::max(st.worst_ms, ms);
    }
    st.sample_avgs_ms.push_back(total / runs);
  }
  st.min_avg_ms =
      *std::min_element(st.sample_avgs_ms.begin(), st.sample_avgs_ms.end());
  return st;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

}  // namespace fusedp
