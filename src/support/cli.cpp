#include "support/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace fusedp {

namespace {

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    args_ += argv[i];
    args_ += '\x1f';
  }
}

std::string Cli::find(const std::string& name) const {
  const std::string key = "--" + name + "=";
  std::size_t pos = 0;
  while (pos < args_.size()) {
    std::size_t end = args_.find('\x1f', pos);
    if (end == std::string::npos) end = args_.size();
    const std::string tok = args_.substr(pos, end - pos);
    if (tok.rfind(key, 0) == 0) return tok.substr(key.size());
    if (tok == "--" + name) return "1";  // boolean flag
    pos = end + 1;
  }
  return {};
}

bool Cli::has(const std::string& name) const { return !find(name).empty(); }

std::string Cli::get(const std::string& name, const std::string& def) const {
  const std::string v = find(name);
  return v.empty() ? def : v;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const std::string v = find(name);
  return v.empty() ? def : std::strtoll(v.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  const std::string v = find(name);
  return v.empty() ? def : std::strtod(v.c_str(), nullptr);
}

std::int64_t Cli::get_int_env(const std::string& name, std::int64_t def) const {
  const std::string v = find(name);
  if (!v.empty()) return std::strtoll(v.c_str(), nullptr, 10);
  return env_int(upper(name), def);
}

std::string Cli::get_env(const std::string& name, const std::string& def) const {
  const std::string v = find(name);
  if (!v.empty()) return v;
  return env_str(upper(name), def);
}

std::int64_t env_int(const std::string& fusedp_suffix, std::int64_t def) {
  const char* e = std::getenv(("FUSEDP_" + fusedp_suffix).c_str());
  return e ? std::strtoll(e, nullptr, 10) : def;
}

std::string env_str(const std::string& fusedp_suffix, const std::string& def) {
  const char* e = std::getenv(("FUSEDP_" + fusedp_suffix).c_str());
  return e ? std::string(e) : def;
}

}  // namespace fusedp
