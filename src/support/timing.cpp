#include "support/timing.hpp"

// WallTimer is header-only; this TU anchors the library.
