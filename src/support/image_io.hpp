// Minimal image I/O and synthetic image generation.
//
// The paper's benchmarks ship photographic inputs; we synthesize
// deterministic procedural images at the paper's resolutions instead (see
// DESIGN.md "Input data").  PPM (P6) output lets examples write viewable
// results.
#pragma once

#include <cstdint>
#include <string>

#include "support/buffer.hpp"

namespace fusedp {

// Writes `img` as a binary PPM.  Accepts [3,H,W] (channel-first) or [H,W]
// (grayscale, replicated to RGB).  Values are clamped to [0,1] then scaled
// to 0..255.
void write_ppm(const std::string& path, const Buffer& img);

// Reads a binary P6 PPM into a [3,H,W] float buffer with values in [0,1].
Buffer read_ppm(const std::string& path);

// Deterministic synthetic test content: smooth gradients + sinusoidal
// texture + a few step edges, so that blurs/gradients/histograms all see
// non-trivial data.  `extents` is any rank 1..4 shape; `seed` perturbs phase.
Buffer make_synthetic_image(const std::vector<std::int64_t>& extents,
                            std::uint64_t seed = 1);

// A binary-ish soft mask in [0,1] (used by pyramid blending).
Buffer make_blend_mask(std::int64_t height, std::int64_t width);

}  // namespace fusedp
