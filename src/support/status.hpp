// Error handling primitives for FuseDP.
//
// The library throws `fusedp::Error` for construction/usage errors (invalid
// pipeline specs, schedule mismatches); hot paths use FUSEDP_DCHECK which
// compiles away in release builds.  Every Error carries an ErrorCode so
// callers (the CLI, the autoschedule fallback ladder, scripted users) can
// dispatch on the failure *kind* without parsing the message.  Result<T>
// offers the same taxonomy for non-throwing APIs.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace fusedp {

// The failure taxonomy.  Codes group failures by what the caller can do
// about them, not by where they were raised:
//  * kInvalidPipeline / kInvalidSchedule / kInvalidArgument — caller bug or
//    bad input; retrying cannot help.
//  * kSearchBudgetExhausted / kDeadlineExceeded — a search or execution hit
//    a resource valve; a cheaper tier (bounded DP, greedy, unfused — or a
//    degraded execution config) can still produce a valid result.
//    kDeadlineExceeded is also the terminal state of a run whose per-request
//    deadline expired mid-execution (Options::run_deadline_seconds).
//  * kAllocationFailed — out of memory; shrinking the problem may help.
//  * kResourceExhausted — the process-wide ResourceGovernor rejected an
//    allocation that would exceed the configured memory budget; retrying
//    later (after other requests release memory) or shrinking may help.
//  * kIoError — filesystem trouble loading/saving schedules.
//  * kFaultInjected — raised only by an armed test FaultInjector.
//  * kInternal — invariant violation inside FuseDP itself.
enum class ErrorCode : std::uint8_t {
  kInternal = 0,
  kInvalidPipeline,
  kInvalidSchedule,
  kInvalidArgument,
  kSearchBudgetExhausted,
  kDeadlineExceeded,
  kAllocationFailed,
  kIoError,
  kFaultInjected,
  kResourceExhausted,
};

// Stable lowercase name, e.g. "deadline-exceeded" (for logs and the CLI).
const char* error_code_name(ErrorCode code);

class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg, ErrorCode code = ErrorCode::kInternal)
      : std::runtime_error(std::move(msg)), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

[[noreturn]] void fail(const std::string& msg, const char* file, int line);
[[noreturn]] void fail(ErrorCode code, const std::string& msg,
                       const char* file, int line);

// Formats "<cond>" failure context and throws fusedp::Error (kInternal).
#define FUSEDP_CHECK(cond, msg)                              \
  do {                                                       \
    if (!(cond)) ::fusedp::fail((msg), __FILE__, __LINE__);  \
  } while (0)

// Same, but the thrown Error carries `code`.
#define FUSEDP_CHECK_CODE(cond, code, msg)                           \
  do {                                                               \
    if (!(cond)) ::fusedp::fail((code), (msg), __FILE__, __LINE__);  \
  } while (0)

#ifdef NDEBUG
#define FUSEDP_DCHECK(cond, msg) \
  do {                           \
  } while (0)
#else
#define FUSEDP_DCHECK(cond, msg) FUSEDP_CHECK(cond, msg)
#endif

// A value-or-coded-error holder for APIs that must not throw (tier drivers,
// batch parsers).  Deliberately tiny: construct from a T or an Error, test
// ok(), then take value() or error().  Accessing the wrong side is itself an
// internal error (throws), so misuse cannot silently read garbage.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}                    // NOLINT
  Result(Error error) : v_(std::move(error)) {}                // NOLINT

  static Result failure(ErrorCode code, std::string msg) {
    return Result(Error(std::move(msg), code));
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    FUSEDP_CHECK(ok(), "Result::value() on an error Result");
    return std::get<T>(v_);
  }
  T&& value() && {
    FUSEDP_CHECK(ok(), "Result::value() on an error Result");
    return std::get<T>(std::move(v_));
  }
  T value_or(T def) const {
    return ok() ? std::get<T>(v_) : std::move(def);
  }

  const Error& error() const {
    FUSEDP_CHECK(!ok(), "Result::error() on an ok Result");
    return std::get<Error>(v_);
  }
  ErrorCode code() const { return error().code(); }

 private:
  std::variant<T, Error> v_;
};

}  // namespace fusedp
