// Error handling primitives for FuseDP.
//
// The library throws `fusedp::Error` for construction/usage errors (invalid
// pipeline specs, schedule mismatches); hot paths use FUSEDP_DCHECK which
// compiles away in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace fusedp {

class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

[[noreturn]] void fail(const std::string& msg, const char* file, int line);

// Formats "<cond>" failure context and throws fusedp::Error.
#define FUSEDP_CHECK(cond, msg)                              \
  do {                                                       \
    if (!(cond)) ::fusedp::fail((msg), __FILE__, __LINE__);  \
  } while (0)

#ifdef NDEBUG
#define FUSEDP_DCHECK(cond, msg) \
  do {                           \
  } while (0)
#else
#define FUSEDP_DCHECK(cond, msg) FUSEDP_CHECK(cond, msg)
#endif

}  // namespace fusedp
