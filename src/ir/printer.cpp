#include "ir/printer.hpp"

#include <sstream>

namespace fusedp {

namespace {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kCoord: return "coord";
    case Op::kLoad: return "load";
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kPow: return "pow";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kEq: return "==";
    case Op::kAnd: return "&&";
    case Op::kOr: return "||";
    case Op::kSelect: return "select";
    case Op::kNeg: return "neg";
    case Op::kAbs: return "abs";
    case Op::kSqrt: return "sqrt";
    case Op::kExp: return "exp";
    case Op::kLog: return "log";
    case Op::kFloor: return "floor";
  }
  return "?";
}

void print_expr(const Stage& s, ExprRef r, std::ostringstream& out) {
  const ExprNode& n = s.nodes[static_cast<std::size_t>(r)];
  switch (n.op) {
    case Op::kConst:
      out << n.imm;
      return;
    case Op::kCoord:
      out << "xyzw"[n.dim % 4] << n.dim;
      return;
    case Op::kLoad: {
      const Access& a = s.loads[static_cast<std::size_t>(n.load_id)];
      out << (a.producer.is_input ? "in" : "f") << a.producer.id << "(";
      bool first = true;
      for (const AxisMap& m : a.axes) {
        if (!first) out << ", ";
        first = false;
        switch (m.kind) {
          case AxisMap::Kind::kConstant:
            out << m.offset;
            break;
          case AxisMap::Kind::kDynamic:
            out << "dyn";
            break;
          case AxisMap::Kind::kAffine:
            if (m.num != 1 || m.den != 1)
              out << m.num << "x" << m.src_dim << "/" << m.den;
            else
              out << "x" << m.src_dim;
            if (m.offset > 0) out << "+" << m.offset;
            if (m.offset < 0) out << m.offset;
            break;
        }
      }
      out << ")";
      return;
    }
    case Op::kSelect:
      out << "select(";
      print_expr(s, n.a, out);
      out << ", ";
      print_expr(s, n.b, out);
      out << ", ";
      print_expr(s, n.c, out);
      out << ")";
      return;
    default:
      break;
  }
  if (n.b == kNoExpr) {  // unary
    out << op_name(n.op) << "(";
    print_expr(s, n.a, out);
    out << ")";
  } else {
    out << "(";
    print_expr(s, n.a, out);
    out << " " << op_name(n.op) << " ";
    print_expr(s, n.b, out);
    out << ")";
  }
}

}  // namespace

std::string to_string(const ExprNode& n) { return op_name(n.op); }

std::string expr_to_string(const Stage& s, ExprRef r) {
  std::ostringstream out;
  print_expr(s, r, out);
  return out.str();
}

std::string stage_to_string(const Pipeline& pl, const Stage& s) {
  (void)pl;
  std::ostringstream out;
  out << "f" << s.id << " " << s.name << s.domain.to_string();
  if (s.is_output) out << " [out]";
  if (s.kind == StageKind::kReduction) {
    out << " = <reduction over " << s.loads.size() << " inputs>";
  } else {
    out << " = " << expr_to_string(s, s.body);
  }
  return out.str();
}

std::string pipeline_to_string(const Pipeline& pl) {
  std::ostringstream out;
  out << "pipeline " << pl.name() << " (" << pl.num_stages() << " stages)\n";
  for (const InputImage& in : pl.inputs())
    out << "  input " << in.name << " " << in.domain.to_string() << "\n";
  for (const Stage& s : pl.stages())
    out << "  " << stage_to_string(pl, s) << "\n";
  return out.str();
}

}  // namespace fusedp
