// Human-readable dumps of pipelines and expressions (debugging aid and
// example output).
#pragma once

#include <string>

#include "ir/pipeline.hpp"

namespace fusedp {

std::string to_string(const ExprNode& n);
std::string expr_to_string(const Stage& s, ExprRef r);
std::string stage_to_string(const Pipeline& pl, const Stage& s);
std::string pipeline_to_string(const Pipeline& pl);

}  // namespace fusedp
