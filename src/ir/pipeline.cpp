#include "ir/pipeline.hpp"

#include <algorithm>

namespace fusedp {

int Pipeline::add_input(const std::string& name,
                        const std::vector<std::int64_t>& extents) {
  FUSEDP_CHECK(!finalized_, "pipeline already finalized");
  inputs_.push_back({name, Box::dense(extents)});
  return static_cast<int>(inputs_.size()) - 1;
}

Stage& Pipeline::add_stage(const std::string& name,
                           const std::vector<std::int64_t>& extents) {
  FUSEDP_CHECK(!finalized_, "pipeline already finalized");
  FUSEDP_CHECK(static_cast<int>(stages_.size()) < kMaxNodes,
               "pipeline exceeds 64 stages");
  Stage s;
  s.name = name;
  s.id = static_cast<std::int32_t>(stages_.size());
  s.domain = Box::dense(extents);
  s.kind = StageKind::kMap;
  stages_.push_back(std::move(s));
  return stages_.back();
}

Stage& Pipeline::add_reduction(const std::string& name,
                               const std::vector<std::int64_t>& extents) {
  Stage& s = add_stage(name, extents);
  s.kind = StageKind::kReduction;
  return s;
}

void Pipeline::finalize() {
  FUSEDP_CHECK(!finalized_, "pipeline already finalized");
  FUSEDP_CHECK(!stages_.empty(), "pipeline has no stages");
  graph_ = Digraph(num_stages());
  for (const Stage& s : stages_) {
    if (s.kind == StageKind::kMap) {
      FUSEDP_CHECK(s.body != kNoExpr, "stage " + s.name + " has no body");
    } else {
      FUSEDP_CHECK(static_cast<bool>(s.reduction),
                   "reduction " + s.name + " has no implementation");
    }
    for (const Access& a : s.loads) {
      const Box& pd = producer_domain(a.producer);
      FUSEDP_CHECK(static_cast<int>(a.axes.size()) == pd.rank,
                   "stage " + s.name + ": access rank mismatch");
      for (const AxisMap& m : a.axes) {
        if (m.kind == AxisMap::Kind::kAffine) {
          FUSEDP_CHECK(m.src_dim >= 0 && m.src_dim < s.rank(),
                       "stage " + s.name + ": bad src_dim");
          FUSEDP_CHECK(m.num >= 0 && m.den >= 1,
                       "stage " + s.name + ": bad access scale");
        }
      }
      if (!a.producer.is_input && a.producer.id != s.id)
        graph_.add_edge(a.producer.id, s.id);
    }
  }
  graph_.finalize();

  // Live-outs: explicit is_output marks plus every sink.
  graph_.sinks().for_each(
      [&](int n) { stages_[static_cast<std::size_t>(n)].is_output = true; });
  outputs_.clear();
  for (const Stage& s : stages_)
    if (s.is_output) outputs_.push_back(s.id);
  finalized_ = true;
}

std::int64_t Pipeline::total_volume() const {
  std::int64_t v = 0;
  for (const Stage& s : stages_) v += s.volume();
  return v;
}

}  // namespace fusedp
