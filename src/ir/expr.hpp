// Expression AST for stage bodies.
//
// Nodes live in a per-stage arena (std::vector<ExprNode>) and are referenced
// by index, which keeps the tree trivially copyable and cache-friendly for
// the row-vectorized evaluator.  All values are float; comparisons produce
// 0.0f / 1.0f.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace fusedp {

using ExprRef = std::int32_t;
inline constexpr ExprRef kNoExpr = -1;

enum class Op : std::uint8_t {
  kConst,   // imm
  kCoord,   // coordinate of dimension `a` of the current stage, as float
  kLoad,    // loads_[load_id] with AxisMaps; child dyn exprs live in arena
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMin,
  kMax,
  kPow,
  kLt,      // a < b  -> 1.0f : 0.0f
  kLe,
  kEq,
  kAnd,     // logical on 0/1 floats
  kOr,
  kSelect,  // a ? b : c  (a nonzero)
  kNeg,
  kAbs,
  kSqrt,
  kExp,
  kLog,
  kFloor,
};

struct ExprNode {
  Op op = Op::kConst;
  float imm = 0.0f;
  ExprRef a = kNoExpr;  // operands (or dim index for kCoord via `dim`)
  ExprRef b = kNoExpr;
  ExprRef c = kNoExpr;
  std::int32_t dim = -1;      // kCoord: dimension index
  std::int32_t load_id = -1;  // kLoad: index into the stage's load table
};

// Arity / semantics helpers shared by every evaluator (scalar interpreter,
// row evaluator, compiled stage programs) so all implementations perform
// bit-identical float operations.  The compiler inlines apply_* with a
// constant Op down to the single operation, so per-op loops still
// auto-vectorize.
inline bool op_is_unary(Op op) {
  switch (op) {
    case Op::kNeg:
    case Op::kAbs:
    case Op::kSqrt:
    case Op::kExp:
    case Op::kLog:
    case Op::kFloor:
      return true;
    default:
      return false;
  }
}

inline bool op_is_binary(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMin:
    case Op::kMax:
    case Op::kPow:
    case Op::kLt:
    case Op::kLe:
    case Op::kEq:
    case Op::kAnd:
    case Op::kOr:
      return true;
    default:
      return false;
  }
}

inline float apply_unary(Op op, float a) {
  switch (op) {
    case Op::kNeg:   return -a;
    case Op::kAbs:   return std::fabs(a);
    case Op::kSqrt:  return std::sqrt(a);
    case Op::kExp:   return std::exp(a);
    case Op::kLog:   return std::log(a);
    case Op::kFloor: return std::floor(a);
    default:         return a;
  }
}

inline float apply_binary(Op op, float a, float b) {
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kDiv: return a / b;
    case Op::kMin: return std::min(a, b);
    case Op::kMax: return std::max(a, b);
    case Op::kPow: return std::pow(a, b);
    case Op::kLt:  return a < b ? 1.0f : 0.0f;
    case Op::kLe:  return a <= b ? 1.0f : 0.0f;
    case Op::kEq:  return a == b ? 1.0f : 0.0f;
    case Op::kAnd: return (a != 0.0f && b != 0.0f) ? 1.0f : 0.0f;
    case Op::kOr:  return (a != 0.0f || b != 0.0f) ? 1.0f : 0.0f;
    default:       return a;
  }
}

// How one producer dimension's index is computed from consumer coordinates:
//   Affine:   idx = floor_div(x[src_dim] * num + pre, den) + offset
//   Constant: idx = offset
//   Dynamic:  idx = clamp(floor(eval(dyn)), domain)   (data-dependent gather)
// `pre` (the intra-floor offset) expresses linear-upsampling taps such as
// floor((y+1)/2); it does not affect scaling/alignment, only the offset.
struct AxisMap {
  enum class Kind : std::uint8_t { kAffine, kConstant, kDynamic };
  Kind kind = Kind::kAffine;
  std::int32_t src_dim = 0;
  std::int32_t num = 1;
  std::int32_t den = 1;
  std::int64_t pre = 0;
  std::int64_t offset = 0;
  ExprRef dyn = kNoExpr;

  static AxisMap affine(int src_dim, std::int64_t offset = 0, int num = 1,
                        int den = 1, std::int64_t pre = 0) {
    AxisMap m;
    m.kind = Kind::kAffine;
    m.src_dim = src_dim;
    m.num = num;
    m.den = den;
    m.pre = pre;
    m.offset = offset;
    return m;
  }
  static AxisMap constant(std::int64_t value) {
    AxisMap m;
    m.kind = Kind::kConstant;
    m.offset = value;
    return m;
  }
  static AxisMap dynamic(ExprRef e) {
    AxisMap m;
    m.kind = Kind::kDynamic;
    m.dyn = e;
    return m;
  }

  bool is_identity() const {
    return kind == Kind::kAffine && num == 1 && den == 1 && offset == 0;
  }
};

// Identifies the producer of a load: either a pipeline input image or
// another stage.
struct ProducerRef {
  bool is_input = false;
  std::int32_t id = -1;
  bool operator==(const ProducerRef&) const = default;
};

// Out-of-domain handling for a load (applied per axis after index
// computation).  kZero yields 0.0f for any out-of-domain coordinate.
enum class Border : std::uint8_t {
  kClamp,   // clamp-to-edge (default; PolyMage's generated-code behaviour)
  kMirror,  // reflect-101: -1 -> 1, D -> D-2
  kWrap,    // periodic
  kZero,    // constant zero outside the domain
};

struct Access {
  ProducerRef producer;
  std::vector<AxisMap> axes;  // one per producer dimension
  Border border = Border::kClamp;
};

// Folds coordinate `v` into [lo, hi] according to `border`.  For kZero the
// caller must test in-range first (fold_coord then behaves like kClamp).
inline std::int64_t fold_coord(std::int64_t v, std::int64_t lo,
                               std::int64_t hi, Border border) {
  if (v >= lo && v <= hi) return v;
  const std::int64_t n = hi - lo + 1;
  switch (border) {
    case Border::kClamp:
    case Border::kZero:
      return v < lo ? lo : hi;
    case Border::kWrap: {
      std::int64_t m = (v - lo) % n;
      if (m < 0) m += n;
      return lo + m;
    }
    case Border::kMirror: {
      if (n == 1) return lo;
      // Reflect-101 has period 2(n-1).
      const std::int64_t period = 2 * (n - 1);
      std::int64_t m = (v - lo) % period;
      if (m < 0) m += period;
      if (m >= n) m = period - m;
      return lo + m;
    }
  }
  return lo;
}

}  // namespace fusedp
