// Pipeline: the image-processing DAG of stages (the paper's (S, E)).
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "ir/stage.hpp"

namespace fusedp {

struct InputImage {
  std::string name;
  Box domain;
};

class Pipeline {
 public:
  explicit Pipeline(std::string name) : name_(std::move(name)) {
    // Stage references handed out by add_stage() must stay valid while the
    // pipeline is being built; kMaxNodes bounds the stage count anyway.
    stages_.reserve(kMaxNodes);
  }

  const std::string& name() const { return name_; }

  int add_input(const std::string& name,
                const std::vector<std::int64_t>& extents);
  // Creates an empty kMap stage; fill via StageBuilder.
  Stage& add_stage(const std::string& name,
                   const std::vector<std::int64_t>& extents);
  Stage& add_reduction(const std::string& name,
                       const std::vector<std::int64_t>& extents);

  // Validates the DAG, builds the stage graph (with reachability closure) and
  // consumer lists.  Must be called once after all stages are defined;
  // stages marked is_output plus all sinks become live-outs.
  void finalize();
  bool finalized() const { return finalized_; }

  int num_stages() const { return static_cast<int>(stages_.size()); }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  const Stage& stage(int id) const { return stages_[static_cast<std::size_t>(id)]; }
  Stage& stage_mut(int id) { return stages_[static_cast<std::size_t>(id)]; }
  const InputImage& input(int id) const {
    return inputs_[static_cast<std::size_t>(id)];
  }
  const std::vector<Stage>& stages() const { return stages_; }
  const std::vector<InputImage>& inputs() const { return inputs_; }

  const Digraph& graph() const { return graph_; }
  // Stage ids whose output escapes the pipeline.
  const std::vector<int>& outputs() const { return outputs_; }
  bool is_liveout(int id) const { return stage(id).is_output; }

  // Producer box of `p` (input image or stage domain).
  const Box& producer_domain(ProducerRef p) const {
    return p.is_input ? inputs_[static_cast<std::size_t>(p.id)].domain
                      : stages_[static_cast<std::size_t>(p.id)].domain;
  }

  // Sum over stages of domain volume (elements); total intermediate +
  // live-out data the unfused pipeline materializes.
  std::int64_t total_volume() const;

 private:
  std::string name_;
  bool finalized_ = false;
  std::vector<InputImage> inputs_;
  std::vector<Stage> stages_;
  std::vector<int> outputs_;
  Digraph graph_;
};

}  // namespace fusedp
