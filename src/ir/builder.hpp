// Embedded DSL for defining stage bodies — the C++ analogue of the PolyMage
// Python frontend in paper Figure 1.
//
//   Pipeline pl("blur");
//   int img = pl.add_input("img", {3, R, C});
//   StageBuilder bx(pl, pl.add_stage("blurx", {3, R, C}));
//   bx.define((bx.in(img, {0, -1, 0}) + bx.in(img, {0, 0, 0}) +
//              bx.in(img, {0, 1, 0})) / 3.0f);
//
// Loads clamp out-of-domain indices to the producer domain (clamp-to-edge
// borders), which is also what the generated PolyMage code does for image
// boundaries.
#pragma once

#include <initializer_list>
#include <vector>

#include "ir/pipeline.hpp"

namespace fusedp {

class StageBuilder;

// Expression handle: a node reference bound to the stage arena it lives in.
struct Eh {
  Stage* s = nullptr;
  ExprRef r = kNoExpr;
};

class StageBuilder {
 public:
  StageBuilder(Pipeline& pl, Stage& st) : pl_(&pl), st_(&st) {}

  Stage& stage() { return *st_; }
  int stage_id() const { return st_->id; }

  // Border mode applied to subsequently created loads (default: clamp).
  void set_border(Border b) { border_ = b; }

  Eh cst(float v) {
    ExprNode n;
    n.op = Op::kConst;
    n.imm = v;
    return push(n);
  }

  // Coordinate of dimension `dim` of this stage, as a float.
  Eh coord(int dim) {
    FUSEDP_CHECK(dim >= 0 && dim < st_->rank(), "coord dim out of range");
    ExprNode n;
    n.op = Op::kCoord;
    n.dim = dim;
    return push(n);
  }

  // Fully general load.
  Eh load(ProducerRef p, std::vector<AxisMap> axes) {
    const Box& pd = pl_->producer_domain(p);
    FUSEDP_CHECK(static_cast<int>(axes.size()) == pd.rank,
                 "load axes must match producer rank");
    st_->loads.push_back({p, std::move(axes), border_});
    ExprNode n;
    n.op = Op::kLoad;
    n.load_id = static_cast<std::int32_t>(st_->loads.size()) - 1;
    return push(n);
  }

  // Stencil-style load: one offset per *producer* dimension, with trailing
  // dimensions aligned (producer dim d reads consumer dim
  // d + consumer_rank - producer_rank).  Requires producer rank <= stage
  // rank; use load() with explicit axes otherwise.
  Eh in(int input_id, std::initializer_list<std::int64_t> offsets) {
    return at({true, input_id}, offsets);
  }
  Eh at(const Stage& producer, std::initializer_list<std::int64_t> offsets) {
    return at({false, producer.id}, offsets);
  }
  Eh at(ProducerRef p, std::initializer_list<std::int64_t> offsets) {
    const Box& pd = pl_->producer_domain(p);
    FUSEDP_CHECK(static_cast<int>(offsets.size()) == pd.rank,
                 "offset count must match producer rank");
    const int shift = st_->rank() - pd.rank;
    FUSEDP_CHECK(shift >= 0, "producer rank exceeds stage rank; use load()");
    std::vector<AxisMap> axes;
    axes.reserve(offsets.size());
    int d = 0;
    for (std::int64_t off : offsets) axes.push_back(AxisMap::affine(d++ + shift, off));
    return load(p, std::move(axes));
  }

  // Downsampling load: producer index = 2*x + offset along dims in `scale2`,
  // identity elsewhere.  Same trailing alignment as at().
  Eh at_scaled(ProducerRef p, std::initializer_list<std::int64_t> offsets,
               std::initializer_list<int> num,
               std::initializer_list<int> den) {
    const Box& pd = pl_->producer_domain(p);
    FUSEDP_CHECK(static_cast<int>(offsets.size()) == pd.rank &&
                     static_cast<int>(num.size()) == pd.rank &&
                     static_cast<int>(den.size()) == pd.rank,
                 "at_scaled arity mismatch");
    const int shift = st_->rank() - pd.rank;
    FUSEDP_CHECK(shift >= 0, "producer rank exceeds stage rank; use load()");
    std::vector<AxisMap> axes;
    auto oi = offsets.begin();
    auto ni = num.begin();
    auto di = den.begin();
    for (int d = 0; d < pd.rank; ++d, ++oi, ++ni, ++di)
      axes.push_back(AxisMap::affine(d + shift, *oi, *ni, *di));
    return load(p, std::move(axes));
  }

  void define(Eh body) {
    FUSEDP_CHECK(body.s == st_, "expression built for a different stage");
    FUSEDP_CHECK(st_->kind == StageKind::kMap, "reductions have no body");
    st_->body = body.r;
  }

  void mark_output() { st_->is_output = true; }

  Eh push(ExprNode n) {
    st_->nodes.push_back(n);
    return Eh{st_, static_cast<ExprRef>(st_->nodes.size()) - 1};
  }

 private:
  Pipeline* pl_;
  Stage* st_;
  Border border_ = Border::kClamp;
};

namespace detail {

inline Eh binop(Op op, Eh a, Eh b) {
  FUSEDP_CHECK(a.s != nullptr && a.s == b.s, "operands from different stages");
  ExprNode n;
  n.op = op;
  n.a = a.r;
  n.b = b.r;
  a.s->nodes.push_back(n);
  return Eh{a.s, static_cast<ExprRef>(a.s->nodes.size()) - 1};
}

inline Eh imm(Eh like, float v) {
  ExprNode n;
  n.op = Op::kConst;
  n.imm = v;
  like.s->nodes.push_back(n);
  return Eh{like.s, static_cast<ExprRef>(like.s->nodes.size()) - 1};
}

inline Eh unop(Op op, Eh a) {
  ExprNode n;
  n.op = op;
  n.a = a.r;
  a.s->nodes.push_back(n);
  return Eh{a.s, static_cast<ExprRef>(a.s->nodes.size()) - 1};
}

}  // namespace detail

inline Eh operator+(Eh a, Eh b) { return detail::binop(Op::kAdd, a, b); }
inline Eh operator-(Eh a, Eh b) { return detail::binop(Op::kSub, a, b); }
inline Eh operator*(Eh a, Eh b) { return detail::binop(Op::kMul, a, b); }
inline Eh operator/(Eh a, Eh b) { return detail::binop(Op::kDiv, a, b); }
inline Eh operator+(Eh a, float v) { return a + detail::imm(a, v); }
inline Eh operator-(Eh a, float v) { return a - detail::imm(a, v); }
inline Eh operator*(Eh a, float v) { return a * detail::imm(a, v); }
inline Eh operator/(Eh a, float v) { return a / detail::imm(a, v); }
inline Eh operator+(float v, Eh a) { return detail::imm(a, v) + a; }
inline Eh operator-(float v, Eh a) { return detail::imm(a, v) - a; }
inline Eh operator*(float v, Eh a) { return detail::imm(a, v) * a; }
inline Eh operator/(float v, Eh a) { return detail::imm(a, v) / a; }
inline Eh operator-(Eh a) { return detail::unop(Op::kNeg, a); }

inline Eh min(Eh a, Eh b) { return detail::binop(Op::kMin, a, b); }
inline Eh max(Eh a, Eh b) { return detail::binop(Op::kMax, a, b); }
inline Eh min(Eh a, float v) { return min(a, detail::imm(a, v)); }
inline Eh max(Eh a, float v) { return max(a, detail::imm(a, v)); }
inline Eh pow(Eh a, Eh b) { return detail::binop(Op::kPow, a, b); }
inline Eh pow(Eh a, float v) { return pow(a, detail::imm(a, v)); }
inline Eh lt(Eh a, Eh b) { return detail::binop(Op::kLt, a, b); }
inline Eh le(Eh a, Eh b) { return detail::binop(Op::kLe, a, b); }
inline Eh lt(Eh a, float v) { return lt(a, detail::imm(a, v)); }
inline Eh le(Eh a, float v) { return le(a, detail::imm(a, v)); }
inline Eh eq(Eh a, Eh b) { return detail::binop(Op::kEq, a, b); }
inline Eh eq(Eh a, float v) { return eq(a, detail::imm(a, v)); }
inline Eh logical_and(Eh a, Eh b) { return detail::binop(Op::kAnd, a, b); }
inline Eh logical_or(Eh a, Eh b) { return detail::binop(Op::kOr, a, b); }

inline Eh select(Eh cond, Eh t, Eh f) {
  FUSEDP_CHECK(cond.s == t.s && t.s == f.s, "select operands differ in stage");
  ExprNode n;
  n.op = Op::kSelect;
  n.a = cond.r;
  n.b = t.r;
  n.c = f.r;
  cond.s->nodes.push_back(n);
  return Eh{cond.s, static_cast<ExprRef>(cond.s->nodes.size()) - 1};
}

inline Eh abs(Eh a) { return detail::unop(Op::kAbs, a); }
inline Eh sqrt(Eh a) { return detail::unop(Op::kSqrt, a); }
inline Eh exp(Eh a) { return detail::unop(Op::kExp, a); }
inline Eh log(Eh a) { return detail::unop(Op::kLog, a); }
inline Eh floor(Eh a) { return detail::unop(Op::kFloor, a); }
inline Eh clamp(Eh a, float lo, float hi) { return min(max(a, lo), hi); }

}  // namespace fusedp
