// Stage: one node of the pipeline DAG (the paper's `Function`).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/box.hpp"
#include "ir/expr.hpp"
#include "support/buffer.hpp"

namespace fusedp {

enum class StageKind : std::uint8_t {
  kMap,        // pointwise / stencil / resample: body AST per output element
  kReduction,  // scatter-style reduction (e.g. bilateral-grid histogram)
};

// Execution context handed to a reduction's native implementation.
struct ReductionCtx {
  // Full producer buffers, in the order of Stage::loads.
  std::vector<BufferView> inputs;
  BufferView out;  // zero-initialized output covering the full stage domain
  int num_threads = 1;
};

struct Stage {
  std::string name;
  std::int32_t id = -1;
  Box domain;  // dimension order outermost..innermost (last = contiguous)
  StageKind kind = StageKind::kMap;

  // Body AST (kMap); reductions have no body.
  ExprRef body = kNoExpr;
  std::vector<ExprNode> nodes;  // per-stage expression arena
  std::vector<Access> loads;    // load table (also declared reads for kRed.)

  // Native implementation for kReduction (runs over the whole stage at once,
  // parallelized internally with per-thread partial accumulators).
  std::function<void(const ReductionCtx&)> reduction;

  bool is_output = false;

  int rank() const { return domain.rank; }
  std::int64_t volume() const { return domain.volume(); }

  // True if any load carries a data-dependent (Dynamic) axis: such edges can
  // never have constant dependence vectors and therefore cannot be fused.
  bool has_dynamic_access_to(ProducerRef p) const {
    for (const Access& a : loads) {
      if (!(a.producer == p)) continue;
      for (const AxisMap& m : a.axes)
        if (m.kind == AxisMap::Kind::kDynamic) return true;
    }
    return false;
  }
};

}  // namespace fusedp
