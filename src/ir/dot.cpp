#include "ir/dot.hpp"

#include <sstream>

#include "fusion/grouping.hpp"

namespace fusedp {

namespace {

void emit_nodes_and_edges(const Pipeline& pl, std::ostringstream& out) {
  for (const InputImage& in : pl.inputs()) {
    // Inputs as plain boxes (index offset past stage ids).
    out << "  in" << (&in - pl.inputs().data()) << " [label=\"" << in.name
        << "\\n" << in.domain.to_string() << "\", shape=box, style=dashed];\n";
  }
  for (const Stage& s : pl.stages()) {
    out << "  s" << s.id << " [label=\"" << s.name;
    if (s.kind == StageKind::kReduction) out << "\\n(reduction)";
    if (s.is_output) out << "\\n[out]";
    out << "\"];\n";
  }
  for (const Stage& s : pl.stages()) {
    NodeSet seen;
    for (const Access& a : s.loads) {
      if (a.producer.is_input) {
        out << "  in" << a.producer.id << " -> s" << s.id << ";\n";
      } else if (!seen.contains(a.producer.id)) {
        seen = seen.with(a.producer.id);
        bool dyn = false, scaled = false;
        for (const AxisMap& m : a.axes) {
          if (m.kind == AxisMap::Kind::kDynamic) dyn = true;
          if (m.kind == AxisMap::Kind::kAffine && (m.num != 1 || m.den != 1))
            scaled = true;
        }
        out << "  s" << a.producer.id << " -> s" << s.id;
        if (dyn)
          out << " [style=dotted, label=\"dyn\"]";
        else if (scaled)
          out << " [label=\"scaled\"]";
        out << ";\n";
      }
    }
  }
}

}  // namespace

std::string pipeline_to_dot(const Pipeline& pl) {
  std::ostringstream out;
  out << "digraph \"" << pl.name() << "\" {\n  rankdir=TB;\n";
  emit_nodes_and_edges(pl, out);
  out << "}\n";
  return out.str();
}

std::string grouping_to_dot(const Pipeline& pl, const Grouping& g) {
  std::ostringstream out;
  out << "digraph \"" << pl.name() << "\" {\n  rankdir=TB;\n";
  int gi = 0;
  for (const GroupSchedule& gs : g.groups) {
    out << "  subgraph cluster_" << gi << " {\n    label=\"group " << gi
        << " tiles [";
    for (std::size_t i = 0; i < gs.tile_sizes.size(); ++i)
      out << (i ? "x" : "") << gs.tile_sizes[i];
    out << "]\";\n    style=rounded;\n";
    gs.stages.for_each([&](int s) { out << "    s" << s << ";\n"; });
    out << "  }\n";
    ++gi;
  }
  emit_nodes_and_edges(pl, out);
  out << "}\n";
  return out.str();
}

}  // namespace fusedp
