// Axis-aligned integer boxes (inclusive bounds) — the polyhedral-lite domain
// representation.  Every stage domain and every required/owned region in the
// overlapped-tiling analysis is a Box.
#pragma once

#include <cstdint>
#include <string>

#include "support/status.hpp"

namespace fusedp {

inline constexpr int kMaxDims = 4;

struct Box {
  int rank = 0;
  std::int64_t lo[kMaxDims] = {0, 0, 0, 0};
  std::int64_t hi[kMaxDims] = {-1, -1, -1, -1};  // inclusive

  Box() = default;
  // Dense box [0, e-1] per extent.
  static Box dense(const std::vector<std::int64_t>& extents) {
    Box b;
    FUSEDP_CHECK(!extents.empty() && extents.size() <= kMaxDims,
                 "box rank out of range");
    b.rank = static_cast<int>(extents.size());
    for (int d = 0; d < b.rank; ++d) {
      FUSEDP_CHECK(extents[static_cast<std::size_t>(d)] > 0,
                   "extent must be positive");
      b.lo[d] = 0;
      b.hi[d] = extents[static_cast<std::size_t>(d)] - 1;
    }
    return b;
  }

  bool empty() const {
    for (int d = 0; d < rank; ++d)
      if (lo[d] > hi[d]) return true;
    return rank == 0;
  }

  std::int64_t extent(int d) const { return hi[d] >= lo[d] ? hi[d] - lo[d] + 1 : 0; }

  std::int64_t volume() const {
    if (rank == 0) return 0;
    std::int64_t v = 1;
    for (int d = 0; d < rank; ++d) v *= extent(d);
    return v;
  }

  std::vector<std::int64_t> extents() const {
    std::vector<std::int64_t> e(static_cast<std::size_t>(rank));
    for (int d = 0; d < rank; ++d) e[static_cast<std::size_t>(d)] = extent(d);
    return e;
  }

  bool contains(const Box& o) const {
    if (o.rank != rank) return false;
    for (int d = 0; d < rank; ++d)
      if (o.lo[d] < lo[d] || o.hi[d] > hi[d]) return false;
    return true;
  }

  bool contains_point(const std::int64_t* c) const {
    for (int d = 0; d < rank; ++d)
      if (c[d] < lo[d] || c[d] > hi[d]) return false;
    return true;
  }

  // Smallest box containing both (rank must match).
  Box hull(const Box& o) const {
    FUSEDP_DCHECK(o.rank == rank, "rank mismatch in hull");
    if (empty()) return o;
    if (o.empty()) return *this;
    Box r = *this;
    for (int d = 0; d < rank; ++d) {
      r.lo[d] = std::min(lo[d], o.lo[d]);
      r.hi[d] = std::max(hi[d], o.hi[d]);
    }
    return r;
  }

  Box intersect(const Box& o) const {
    FUSEDP_DCHECK(o.rank == rank, "rank mismatch in intersect");
    Box r = *this;
    for (int d = 0; d < rank; ++d) {
      r.lo[d] = std::max(lo[d], o.lo[d]);
      r.hi[d] = std::min(hi[d], o.hi[d]);
    }
    return r;
  }

  bool operator==(const Box& o) const {
    if (o.rank != rank) return false;
    for (int d = 0; d < rank; ++d)
      if (lo[d] != o.lo[d] || hi[d] != o.hi[d]) return false;
    return true;
  }

  std::string to_string() const {
    std::string s = "[";
    for (int d = 0; d < rank; ++d) {
      if (d) s += " x ";
      s += std::to_string(lo[d]) + ".." + std::to_string(hi[d]);
    }
    return s + "]";
  }
};

// Floor division (rounds toward negative infinity) — used when mapping
// upsampled coordinates to producer coordinates.
inline std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  FUSEDP_DCHECK(b > 0, "floor_div expects positive divisor");
  std::int64_t q = a / b;
  if ((a % b) != 0 && a < 0) --q;
  return q;
}

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return -floor_div(-a, b);
}

}  // namespace fusedp
