// Graphviz DOT export of pipeline DAGs, optionally clustered by grouping —
// handy for inspecting what a scheduler decided.
#pragma once

#include <string>

#include "ir/pipeline.hpp"

namespace fusedp {

struct Grouping;  // fusion/grouping.hpp

// DAG alone.
std::string pipeline_to_dot(const Pipeline& pl);

// DAG with one subgraph cluster per group and tile sizes in cluster labels.
std::string grouping_to_dot(const Pipeline& pl, const Grouping& g);

}  // namespace fusedp
