#include "api/serve.hpp"

#include <algorithm>
#include <new>
#include <sstream>
#include <utility>

namespace fusedp {

Result<std::unique_ptr<PipelineService>> PipelineService::create(
    const Pipeline& pl, ServeOptions opts) {
  using R = Result<std::unique_ptr<PipelineService>>;
  if (opts.workers < 1) {
    std::ostringstream os;
    os << "ServeOptions::workers must be >= 1 (got " << opts.workers << ")";
    return R::failure(ErrorCode::kInvalidArgument, os.str());
  }
  if (opts.max_queue < 1) {
    std::ostringstream os;
    os << "ServeOptions::max_queue must be >= 1 (got " << opts.max_queue
       << ")";
    return R::failure(ErrorCode::kInvalidArgument, os.str());
  }
  if (opts.workspaces < 0) {
    std::ostringstream os;
    os << "ServeOptions::workspaces must be >= 0 (got " << opts.workspaces
       << ")";
    return R::failure(ErrorCode::kInvalidArgument, os.str());
  }
  if (opts.shard_threshold_pixels < 0)
    return R::failure(ErrorCode::kInvalidArgument,
                      "ServeOptions::shard_threshold_pixels must be >= 0");
  if (opts.default_deadline_seconds < 0.0)
    return R::failure(ErrorCode::kInvalidArgument,
                      "ServeOptions::default_deadline_seconds must be >= 0");

  // The service always executes on the pool, at `workers` wide.
  opts.session.pool_backend = true;
  opts.session.num_threads = opts.workers;
  if (opts.workspaces == 0) opts.workspaces = opts.workers;

  // Reuse the session facade's validation + scheduling (one search, one
  // coded failure path); the service then owns its plan via its own
  // Executor, since Session's single internal workspace cannot serve
  // concurrent requests.
  Result<Session> opened = Session::open(pl, opts.session);
  if (!opened.ok()) return R(opened.error());
  Grouping grouping = opened.value().grouping();

  try {
    std::unique_ptr<PipelineService> svc(
        new PipelineService(pl, std::move(opts), std::move(grouping)));
    return R(std::move(svc));
  } catch (const Error& e) {
    return R(e);
  } catch (const std::bad_alloc&) {
    return R::failure(ErrorCode::kAllocationFailed,
                      "PipelineService::create: allocation failed");
  }
}

PipelineService::PipelineService(const Pipeline& pl, ServeOptions opts,
                                 Grouping grouping)
    : pl_(&pl), opts_(std::move(opts)), grouping_(std::move(grouping)) {
  exec_ = std::make_unique<Executor>(pl, grouping_, opts_.session.exec());

  std::int64_t output_pixels = 0;
  for (int s : pl.outputs()) output_pixels += pl.stage(s).domain.volume();
  sharded_ =
      opts_.workers > 1 && output_pixels >= opts_.shard_threshold_pixels;

  free_ws_.reserve(static_cast<std::size_t>(opts_.workspaces));
  for (int i = 0; i < opts_.workspaces; ++i)
    free_ws_.push_back(std::make_unique<Workspace>());

  // Coalesced tasks need live workers to run at all (the pool starts
  // empty); sharded parallel_for would grow it lazily, but growing here
  // keeps first-request latency flat.
  WorkPool::instance().ensure_workers(opts_.workers);
}

PipelineService::~PipelineService() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

bool PipelineService::try_admit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ >= opts_.max_queue) {
    ++stats_.rejected;
    return false;
  }
  ++in_flight_;
  ++stats_.accepted;
  return true;
}

void PipelineService::release_admission() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  drain_cv_.notify_all();
}

std::unique_ptr<Workspace> PipelineService::checkout_workspace() {
  std::unique_lock<std::mutex> lock(mu_);
  ws_cv_.wait(lock, [&] { return !free_ws_.empty(); });
  std::unique_ptr<Workspace> ws = std::move(free_ws_.back());
  free_ws_.pop_back();
  return ws;
}

void PipelineService::return_workspace(std::unique_ptr<Workspace> ws) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_ws_.push_back(std::move(ws));
  }
  ws_cv_.notify_one();
}

Result<ServeReply> PipelineService::execute_admitted(
    const ServeRequest& req, const Deadline& deadline,
    const WallTimer& submitted) {
  std::unique_ptr<Workspace> ws = checkout_workspace();
  ServeReply reply;
  reply.queue_wait_seconds = submitted.seconds();

  RunKnobs knobs;
  knobs.lanes = sharded_ ? opts_.workers : 1;
  knobs.priority = req.priority;
  if (deadline.armed()) knobs.deadline = &deadline;

  Result<ServeReply> out = Result<ServeReply>::failure(
      ErrorCode::kInternal, "serve: request not executed");
  WallTimer run_timer;
  try {
    exec_->run(req.inputs, *ws, knobs);
    reply.seconds = run_timer.seconds();
    reply.outputs.reserve(pl_->outputs().size());
    // Copy outputs out of the pooled workspace: the workspace returns to
    // the pool (buffers intact, still governor-charged) for the next
    // checkout.
    for (int s : pl_->outputs())
      reply.outputs.push_back(ws->stage_buffer(s));
    out = Result<ServeReply>(std::move(reply));
  } catch (const Error& e) {
    out = Result<ServeReply>(e);
  } catch (const std::bad_alloc&) {
    out = Result<ServeReply>::failure(ErrorCode::kAllocationFailed,
                                      "serve: allocation failed");
  } catch (const std::exception& e) {
    out = Result<ServeReply>::failure(
        ErrorCode::kInternal, std::string("serve: ") + e.what());
  }
  return_workspace(std::move(ws));

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (out.ok())
      ++stats_.completed;
    else
      ++stats_.failed;
    if (sharded_)
      ++stats_.sharded;
    else
      ++stats_.coalesced;
  }
  return out;
}

Result<PipelineService::Ticket> PipelineService::submit(ServeRequest req) {
  using R = Result<Ticket>;
  if (!try_admit()) {
    std::ostringstream os;
    os << "serve queue full (" << opts_.max_queue << " requests in flight)";
    return R::failure(ErrorCode::kResourceExhausted, os.str());
  }

  const double dl_seconds = req.deadline_seconds < 0.0
                                ? opts_.default_deadline_seconds
                                : req.deadline_seconds;
  const Deadline deadline =
      dl_seconds > 0.0 ? Deadline::after(dl_seconds) : Deadline();

  auto pending = std::make_shared<detail::PendingReply>();
  auto request = std::make_shared<ServeRequest>(std::move(req));
  const WallTimer submitted;
  // The task owns the admission slot: release happens after fulfillment,
  // so ~PipelineService cannot return while any task still references
  // `this`.
  WorkPool::instance().submit(
      request->priority, [this, request, pending, deadline, submitted] {
        Result<ServeReply> r = Result<ServeReply>::failure(
            ErrorCode::kInternal, "serve: task failed before execution");
        try {
          r = execute_admitted(*request, deadline, submitted);
        } catch (...) {
          // execute_admitted is nothrow by construction; belt and braces
          // because an exception escaping a pool task is std::terminate.
          r = Result<ServeReply>::failure(ErrorCode::kInternal,
                                          "serve: unexpected task failure");
        }
        {
          std::lock_guard<std::mutex> lock(pending->mu);
          pending->result.emplace(std::move(r));
          pending->done = true;
        }
        pending->cv.notify_all();
        release_admission();
      });
  return R(Ticket(std::move(pending)));
}

Result<ServeReply> PipelineService::call(ServeRequest req) {
  Result<Ticket> t = submit(std::move(req));
  if (!t.ok()) return Result<ServeReply>(t.error());
  return std::move(t).value().wait();
}

Result<ServeReply> PipelineService::Ticket::wait() {
  FUSEDP_CHECK(p_ != nullptr, "Ticket::wait: empty or already-consumed ticket");
  std::unique_lock<std::mutex> lock(p_->mu);
  p_->cv.wait(lock, [&] { return p_->done; });
  FUSEDP_CHECK(p_->result.has_value(), "Ticket::wait: reply already consumed");
  Result<ServeReply> r = std::move(*p_->result);
  p_->result.reset();
  return r;
}

ServeStats PipelineService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fusedp
