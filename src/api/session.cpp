#include "api/session.hpp"

#include <algorithm>
#include <ctime>
#include <sstream>
#include <utility>

#include "fusion/dp.hpp"
#include "fusion/grouping.hpp"
#include "fusion/halide_auto.hpp"
#include "fusion/polymage_greedy.hpp"
#include "fusion/serialize.hpp"
#include "support/fault.hpp"
#include "support/fingerprint.hpp"
#include "support/timing.hpp"

namespace fusedp {

const char* scheduler_name(Scheduler s) {
  switch (s) {
    case Scheduler::kAuto: return "auto";
    case Scheduler::kDp: return "dp";
    case Scheduler::kGreedy: return "greedy";
    case Scheduler::kHalideAuto: return "halide-auto";
    case Scheduler::kUnfused: return "unfused";
  }
  return "?";
}

ExecOptions Options::exec() const {
  ExecOptions eo;
  eo.num_threads = num_threads;
  eo.mode = mode;
  eo.compiled = compiled;
  eo.vector_backend = vector_backend;
  eo.superop_fusion = superop_fusion;
  eo.allow_fma = allow_fma;
  eo.fast_transcendentals = fast_transcendentals;
  eo.never_pessimize = never_pessimize;
  eo.tile_schedule = tile_schedule;
  eo.pooled_storage = pooled_storage;
  eo.guard_arena = guard_arena;
  eo.pool_backend = pool_backend;
  return eo;
}

AutoScheduleOptions Options::autoschedule() const {
  AutoScheduleOptions ao;
  ao.deadline_seconds = deadline_seconds;
  ao.max_states = max_states;
  ao.bounded_initial_limit = bounded_initial_limit;
  ao.greedy_t1 = greedy_t1;
  ao.greedy_t2 = greedy_t2;
  ao.greedy_tolerance = greedy_tolerance;
  return ao;
}

std::uint64_t Options::schedule_fingerprint() const {
  Fnv64 h;
  h.add_str("fusedp-options-v1");
  h.add_i32(static_cast<std::int32_t>(scheduler));
  h.add_u64(max_states);
  h.add_i32(bounded_initial_limit);
  h.add_i64(greedy_t1);
  h.add_i64(greedy_t2);
  h.add_f64(greedy_tolerance);
  return h.digest();
}

findb::FindbOptions Options::findb_options() const {
  findb::FindbOptions fo;
  fo.dir = cache_dir;
  fo.mode = cache_mode;
  fo.lock_timeout_seconds = cache_lock_timeout_seconds;
  fo.max_entries = cache_max_entries;
  fo.max_bytes = cache_max_bytes;
  fo.memory_entries = cache_memory_entries;
  fo.git_sha = build_git_sha();
  return fo;
}

namespace {

Result<bool> invalid(const std::string& msg) {
  return Result<bool>::failure(ErrorCode::kInvalidArgument, msg);
}

}  // namespace

Result<bool> validate_options(const Options& opts) {
  if (opts.num_threads <= 0) {
    std::ostringstream os;
    os << "Options::num_threads must be >= 1 (got " << opts.num_threads << ")";
    return invalid(os.str());
  }
  if (opts.allow_fma && !opts.vector_backend)
    return invalid(
        "Options::allow_fma requires the vector backend "
        "(vector_backend = false): FMA contraction is a vector-backend "
        "superop transformation");
  if (opts.allow_fma && (!opts.compiled || opts.mode == EvalMode::kScalar))
    return invalid(
        "Options::allow_fma requires the compiled row backend "
        "(compiled = true, mode = kRow)");
  if (opts.fast_transcendentals && !opts.vector_backend)
    return invalid(
        "Options::fast_transcendentals requires the vector backend "
        "(vector_backend = false): the approximate exp/log/pow kernels are "
        "a vector-backend transformation");
  if (opts.fast_transcendentals &&
      (!opts.compiled || opts.mode == EvalMode::kScalar))
    return invalid(
        "Options::fast_transcendentals requires the compiled row backend "
        "(compiled = true, mode = kRow)");
  if (opts.deadline_seconds < 0.0)
    return invalid("Options::deadline_seconds must be >= 0 (0 = no deadline)");
  if (opts.run_deadline_seconds < 0.0)
    return invalid(
        "Options::run_deadline_seconds must be >= 0 (0 = no deadline)");
  if (opts.max_run_attempts < 1) {
    std::ostringstream os;
    os << "Options::max_run_attempts must be >= 1 (got "
       << opts.max_run_attempts << ")";
    return invalid(os.str());
  }
  const bool uses_dp =
      opts.scheduler == Scheduler::kAuto || opts.scheduler == Scheduler::kDp;
  if (uses_dp && opts.max_states == 0)
    return invalid(
        "Options::max_states = 0 leaves the DP search no budget at all; "
        "pick a positive budget or Scheduler::kGreedy/kUnfused");
  if (opts.scheduler == Scheduler::kAuto && opts.bounded_initial_limit < 2) {
    std::ostringstream os;
    os << "Options::bounded_initial_limit must be >= 2 (got "
       << opts.bounded_initial_limit
       << "): the bounded-DP ladder halves it down to 2";
    return invalid(os.str());
  }
  const bool uses_greedy =
      opts.scheduler == Scheduler::kAuto || opts.scheduler == Scheduler::kGreedy;
  if (uses_greedy && (opts.greedy_t1 <= 0 || opts.greedy_t2 <= 0))
    return invalid("Options::greedy_t1/greedy_t2 must be positive tile sizes");
  if (uses_greedy && opts.greedy_tolerance < 0.0)
    return invalid("Options::greedy_tolerance must be >= 0");
  if (opts.deadline_seconds > 0.0 && opts.scheduler != Scheduler::kAuto &&
      opts.cache_mode == findb::CacheMode::kOff) {
    std::ostringstream os;
    os << "Options::deadline_seconds only bounds the Scheduler::kAuto "
          "ladder; with scheduler = "
       << scheduler_name(opts.scheduler) << " a deadline cannot be honored";
    return invalid(os.str());
  }
  if (opts.cache_mode != findb::CacheMode::kOff && opts.cache_dir.empty())
    return invalid("Options::cache_dir must be set when cache_mode is " +
                   std::string(findb::cache_mode_name(opts.cache_mode)));
  if (opts.cache_lock_timeout_seconds < 0.0)
    return invalid("Options::cache_lock_timeout_seconds must be >= 0");
  if (opts.cache_mode != findb::CacheMode::kOff &&
      opts.cache_memory_entries < 0)
    return invalid("Options::cache_memory_entries must be >= 0 (0 = off)");
  return true;
}

namespace {

// Shared open() precondition checks.
Result<bool> check_openable(const Pipeline& pl, const Options& opts) {
  Result<bool> v = validate_options(opts);
  if (!v.ok()) return v;
  if (!pl.finalized())
    return Result<bool>::failure(
        ErrorCode::kInvalidPipeline,
        "Session::open: pipeline '" + pl.name() +
            "' is not finalized (call Pipeline::finalize() first)");
  if (pl.num_stages() == 0)
    return Result<bool>::failure(ErrorCode::kInvalidPipeline,
                                 "Session::open: pipeline '" + pl.name() +
                                     "' has no stages");
  return true;
}

}  // namespace

Session::Session(const Pipeline& pl, Options opts, Grouping grouping,
                 Diagnostics diag)
    : pl_(&pl),
      opts_(std::move(opts)),
      grouping_(std::move(grouping)),
      diag_(std::move(diag)) {}

observe::Observer* Session::effective_observer() const {
  if (tee_ != nullptr) return tee_.get();
  if (collector_ != nullptr) return collector_.get();
  return opts_.observer;
}

// The degradation ladder, leanest-last.  Every rung computes bit-identical
// outputs (the vector backend and superop fusion are bit-exact transforms;
// the unfused schedule changes only evaluation order across group
// boundaries, which the executor's overlapped-tiling semantics make
// value-neutral), so degrading trades only speed for robustness.
void Session::build_rungs() {
  rungs_.clear();
  ExecOptions base = opts_.exec();
  if (base.vector_backend && base.superop_fusion) {
    FallbackRung r;
    r.label = "no-superops";
    r.exec = base;
    r.exec.superop_fusion = false;
    r.exec.allow_fma = false;  // FMA contraction is a superop transform
    // Degraded runs must be bit-identical to the reference, so the
    // approximate kernels are dropped along with FMA.
    r.exec.fast_transcendentals = false;
    rungs_.push_back(std::move(r));
  }
  if (base.vector_backend) {
    FallbackRung r;
    r.label = "no-vector";
    r.exec = base;
    r.exec.vector_backend = false;
    r.exec.superop_fusion = false;
    r.exec.allow_fma = false;
    r.exec.fast_transcendentals = false;
    rungs_.push_back(std::move(r));
  }
  {
    FallbackRung r;
    r.label = "unfused";
    r.exec = base;
    r.exec.vector_backend = false;
    r.exec.superop_fusion = false;
    r.exec.allow_fma = false;
    r.exec.fast_transcendentals = false;
    r.unfused = true;
    rungs_.push_back(std::move(r));
  }
}

Executor* Session::attempt_executor(std::size_t i) {
  if (i == 0) return exec_.get();
  const std::size_t ri = i - 1;
  if (ri >= rungs_.size()) return nullptr;  // ladder exhausted
  FallbackRung& r = rungs_[ri];
  if (r.executor == nullptr) {
    if (r.unfused) {
      CostModel model(*pl_, opts_.machine);
      Grouping g = singleton_grouping(*pl_, model);
      r.executor = std::make_unique<Executor>(*pl_, g, r.exec);
    } else {
      r.executor = std::make_unique<Executor>(*pl_, grouping_, r.exec);
    }
  }
  return r.executor.get();
}

namespace {

// Inverse of schedule_tier_name, for labeling a cache-served schedule's
// diagnostics with the tier that originally found it.
ScheduleTier tier_from_rung(const std::string& rung) {
  if (rung == "full-dp") return ScheduleTier::kFullDp;
  if (rung == "bounded-dp") return ScheduleTier::kBoundedDp;
  if (rung == "unfused") return ScheduleTier::kUnfused;
  return ScheduleTier::kGreedy;  // "greedy" and anything unrecognized
}

}  // namespace

Result<Session> Session::open(const Pipeline& pl, Options opts) {
  if (Result<bool> pre = check_openable(pl, opts); !pre.ok())
    return pre.error();

  std::unique_ptr<observe::TraceCollector> collector;
  std::unique_ptr<observe::TeeObserver> tee;
  if (opts.collect_trace)
    collector = std::make_unique<observe::TraceCollector>(opts.trace_tiles);
  if (collector != nullptr && opts.observer != nullptr)
    tee = std::make_unique<observe::TeeObserver>(collector.get(),
                                                 opts.observer);
  observe::Observer* obs = tee != nullptr
                               ? static_cast<observe::Observer*>(tee.get())
                               : collector != nullptr
                                     ? static_cast<observe::Observer*>(
                                           collector.get())
                                     : opts.observer;

  // One clock for the whole open: the schedule-search deadline also bounds
  // the cache probe and its lock wait, so a wedged or slow cache directory
  // can never stall an open longer than a cache-off search would.
  const Deadline open_deadline = opts.deadline_seconds > 0.0
                                     ? Deadline::after(opts.deadline_seconds)
                                     : Deadline();
  const Deadline* odl = open_deadline.armed() ? &open_deadline : nullptr;

  std::vector<observe::CacheEvent> cache_events;
  auto emit = [&](observe::CacheEvent ev) {
    if (obs != nullptr) obs->on_cache_event(ev);
    cache_events.push_back(std::move(ev));
  };

  // --- Cache probe (storage/findb): hit => open with zero search ---------
  std::unique_ptr<findb::FindDb> db;
  findb::CacheKey key;
  Grouping cached_grouping;
  std::string cached_rung;
  bool cached_hit = false;
  double probe_seconds = 0.0;
  if (opts.cache_mode != findb::CacheMode::kOff) {
    try {
      db = std::make_unique<findb::FindDb>(opts.findb_options());
      key.pipeline_fp = fingerprint(pl);
      key.machine_fp = fingerprint(opts.machine);
      key.options_fp = opts.schedule_fingerprint();
      findb::ProbeResult pr = db->probe(key, odl);
      observe::CacheEvent ev;
      ev.action = "probe";
      ev.outcome = findb::probe_outcome_name(pr.outcome);
      ev.from_memory = pr.from_memory;
      ev.detail = pr.detail;
      ev.seconds = pr.seconds;
      probe_seconds = pr.seconds;
      if (pr.outcome == findb::ProbeOutcome::kHit) {
        // A hit is still untrusted bytes: the schedule text goes back
        // through the hardened parser and grouping validation against
        // *this* pipeline before anything executes.
        Result<Grouping> g =
            try_grouping_from_text(pl, pr.record.schedule_text);
        if (g.ok()) {
          cached_hit = true;
          cached_grouping = std::move(g).value();
          cached_rung = pr.record.rung;
          // The schedule text carries no costs; restore the record's
          // per-group predictions so reports stay populated on warm starts.
          if (pr.record.predicted.size() == cached_grouping.groups.size()) {
            double total = 0.0;
            for (std::size_t i = 0; i < cached_grouping.groups.size(); ++i) {
              cached_grouping.groups[i].cost = pr.record.predicted[i];
              total += pr.record.predicted[i];
            }
            cached_grouping.total_cost = total;
          }
        } else {
          ev.outcome = "invalid-schedule";
          ev.detail = g.error().what();
          if (opts.cache_mode == findb::CacheMode::kReadWrite)
            (void)db->evict(key);
        }
      }
      emit(std::move(ev));
    } catch (...) {
      // The cache must never break an open; an unexpected throw here
      // behaves exactly like a miss.
      observe::CacheEvent ev;
      ev.action = "probe";
      ev.outcome = "io-error";
      ev.detail = "unexpected exception during cache probe";
      emit(std::move(ev));
      cached_hit = false;
    }
  }

  if (cached_hit) {
    try {
      observe::ScheduleAttempt at;
      at.tier = "cache";
      at.succeeded = true;
      at.seconds = probe_seconds;
      std::ostringstream os;
      os << cached_grouping.groups.size() << " groups from cache (found by "
         << cached_rung << ")";
      at.detail = os.str();
      if (obs != nullptr) obs->on_schedule_attempt(at);

      Diagnostics diag;
      diag.tier = tier_from_rung(cached_rung);
      diag.total_seconds = probe_seconds;  // no search ran
      // opts is *copied* here (not moved): if Executor construction below
      // throws, the catch and the fresh-search fallback still need intact
      // opts/collector/tee/obs.  Only after the plan is built is it safe to
      // consume the open-scoped state.
      Session s(pl, opts, std::move(cached_grouping), std::move(diag));
      FUSEDP_FAULT_POINT("session.warm_plan");
      s.exec_ = std::make_unique<Executor>(pl, s.grouping_, s.opts_.exec());
      s.build_rungs();
      s.warm_start_ = true;
      s.collector_ = std::move(collector);
      s.tee_ = std::move(tee);
      s.cache_events_ = std::move(cache_events);
      return Result<Session>(std::move(s));
    } catch (const std::exception& e) {
      // The cached schedule parsed but failed plan construction (footprint
      // checks, lowering): coded event, evict, fall through to a fresh
      // search as if it had been a miss.  Nothing was moved out of the
      // open-scoped state above, so the fallback sees it untouched.
      observe::CacheEvent ev;
      ev.action = "probe";
      ev.outcome = "invalid-schedule";
      ev.detail = std::string("plan rejected cached schedule: ") + e.what();
      emit(std::move(ev));
      if (db != nullptr && opts.cache_mode == findb::CacheMode::kReadWrite)
        (void)db->evict(key);
      cached_hit = false;
    }
  }

  try {
    CostModel model(pl, opts.machine);
    Grouping grouping;
    Diagnostics diag;
    WallTimer sched_timer;
    switch (opts.scheduler) {
      case Scheduler::kAuto: {
        AutoScheduleOptions ao = opts.autoschedule();
        ao.observer = obs;
        // The probe already spent part of the open deadline; the search
        // gets what remains (an effectively-expired remainder makes the
        // ladder fall through to its cheap tiers, same as any late start).
        if (open_deadline.armed())
          ao.deadline_seconds = std::max(1e-9,
                                         open_deadline.remaining_seconds());
        ScheduleResult sr = auto_schedule(pl, model, ao);
        grouping = std::move(sr.grouping);
        diag = std::move(sr.diagnostics);
        break;
      }
      case Scheduler::kDp: {
        DpOptions dopts;
        dopts.max_states = opts.max_states;
        grouping = DpFusion(pl, model, dopts).run();
        diag.tier = ScheduleTier::kFullDp;
        break;
      }
      case Scheduler::kGreedy:
        grouping = PolyMageGreedy(pl, model)
                       .run(opts.greedy_t1, opts.greedy_t2,
                            opts.greedy_tolerance);
        diag.tier = ScheduleTier::kGreedy;
        break;
      case Scheduler::kHalideAuto:
        grouping = HalideAuto(pl, model).run();
        diag.tier = ScheduleTier::kGreedy;  // nearest tier label
        break;
      case Scheduler::kUnfused:
        grouping = singleton_grouping(pl, model);
        diag.tier = ScheduleTier::kUnfused;
        break;
    }
    diag.total_seconds = sched_timer.seconds();
    // kAuto streams its ladder attempts itself; synthesize the one-shot
    // record for the direct schedulers so traces always show how the
    // schedule came to be.
    if (obs != nullptr && opts.scheduler != Scheduler::kAuto) {
      observe::ScheduleAttempt at;
      at.tier = scheduler_name(opts.scheduler);
      at.succeeded = true;
      at.seconds = diag.total_seconds;
      std::ostringstream os;
      os << grouping.groups.size() << " groups, model cost "
         << grouping.total_cost;
      at.detail = os.str();
      obs->on_schedule_attempt(at);
    }

    // Persist the freshly found schedule so the next open warm-starts.
    // Store failures (lock contention, injected faults, a full disk) are
    // coded events, never open failures — the session is already good.
    if (db != nullptr && opts.cache_mode == findb::CacheMode::kReadWrite) {
      findb::CacheRecord rec;
      rec.pipeline = pl.name();
      rec.git_sha = build_git_sha();
      rec.rung = schedule_tier_name(diag.tier);
      rec.created_unix = static_cast<std::int64_t>(::time(nullptr));
      rec.predicted.reserve(grouping.groups.size());
      for (const GroupSchedule& gs : grouping.groups)
        rec.predicted.push_back(gs.cost);
      rec.schedule_text = grouping_to_text(pl, grouping);
      WallTimer store_timer;
      Result<bool> st = db->store(key, rec, odl);
      observe::CacheEvent ev;
      ev.action = "store";
      ev.outcome = st.ok() ? "stored" : "store-failed";
      if (!st.ok())
        ev.detail = std::string(error_code_name(st.code())) + ": " +
                    st.error().what();
      ev.seconds = store_timer.seconds();
      emit(std::move(ev));
    }

    Session s(pl, std::move(opts), std::move(grouping), std::move(diag));
    s.collector_ = std::move(collector);
    s.tee_ = std::move(tee);
    s.exec_ = std::make_unique<Executor>(pl, s.grouping_, s.opts_.exec());
    s.build_rungs();
    s.cache_events_ = std::move(cache_events);
    return Result<Session>(std::move(s));
  } catch (const Error& e) {
    return Result<Session>(e);
  } catch (const std::bad_alloc&) {
    return Result<Session>::failure(ErrorCode::kAllocationFailed,
                                    "Session::open: out of memory");
  } catch (const std::exception& e) {
    return Result<Session>::failure(ErrorCode::kInternal, e.what());
  }
}

Result<Session> Session::open(const Pipeline& pl, const Grouping& grouping,
                              Options opts) {
  if (Result<bool> pre = check_openable(pl, opts); !pre.ok())
    return pre.error();

  std::string why;
  if (!validate_grouping(pl, grouping, &why))
    return Result<Session>::failure(
        ErrorCode::kInvalidSchedule,
        "Session::open: grouping does not validate: " + why);

  std::unique_ptr<observe::TraceCollector> collector;
  std::unique_ptr<observe::TeeObserver> tee;
  if (opts.collect_trace)
    collector = std::make_unique<observe::TraceCollector>(opts.trace_tiles);
  if (collector != nullptr && opts.observer != nullptr)
    tee = std::make_unique<observe::TeeObserver>(collector.get(),
                                                 opts.observer);

  try {
    Grouping g = grouping;
    // Fill missing per-group predicted costs so the report's predicted
    // column is populated — but never touch tile sizes: a caller-provided
    // grouping executes exactly as given (complete_grouping would overwrite
    // deliberately-absent tile sizes and change the run).
    CostModel model(pl, opts.machine);
    double total = 0.0;
    for (GroupSchedule& gs : g.groups) {
      if (gs.cost == 0.0) {
        try {
          GroupCost gc = model.cost(gs.stages);
          if (gc.feasible()) gs.cost = gc.cost;
        } catch (const Error&) {
          // Model cannot score this group (e.g. a reduction); leave 0.
        }
      }
      total += gs.cost;
    }
    if (g.total_cost == 0.0) g.total_cost = total;

    Session s(pl, std::move(opts), std::move(g), Diagnostics{});
    s.collector_ = std::move(collector);
    s.tee_ = std::move(tee);
    s.exec_ = std::make_unique<Executor>(pl, s.grouping_, s.opts_.exec());
    s.build_rungs();
    // A caller-provided grouping overrides the cache: record that the cache
    // was configured but deliberately not consulted.
    if (s.opts_.cache_mode != findb::CacheMode::kOff) {
      observe::CacheEvent ev;
      ev.action = "probe";
      ev.outcome = "bypass";
      ev.detail = "caller-provided grouping";
      observe::Observer* sobs = s.effective_observer();
      if (sobs != nullptr) sobs->on_cache_event(ev);
      s.cache_events_.push_back(std::move(ev));
    }
    return Result<Session>(std::move(s));
  } catch (const Error& e) {
    return Result<Session>(e);
  } catch (const std::bad_alloc&) {
    return Result<Session>::failure(ErrorCode::kAllocationFailed,
                                    "Session::open: out of memory");
  } catch (const std::exception& e) {
    return Result<Session>::failure(ErrorCode::kInternal, e.what());
  }
}

Result<double> Session::execute(const std::vector<Buffer>& inputs) {
  if (static_cast<int>(inputs.size()) != pl_->num_inputs()) {
    std::ostringstream os;
    os << "Session::execute: pipeline '" << pl_->name() << "' takes "
       << pl_->num_inputs() << " input(s), got " << inputs.size();
    return Result<double>::failure(ErrorCode::kInvalidArgument, os.str());
  }
  for (int i = 0; i < pl_->num_inputs(); ++i) {
    const Box& dom = pl_->input(i).domain;
    const Buffer& b = inputs[static_cast<std::size_t>(i)];
    bool match = b.rank() == dom.rank;
    for (int d = 0; match && d < dom.rank; ++d)
      match = b.extent(d) == dom.extent(d);
    if (!match) {
      std::ostringstream os;
      os << "Session::execute: input " << i << " ('" << pl_->input(i).name
         << "') does not match the declared domain";
      return Result<double>::failure(ErrorCode::kInvalidArgument, os.str());
    }
  }
  const Deadline deadline =
      opts_.run_deadline_seconds > 0.0
          ? Deadline::after(opts_.run_deadline_seconds)
          : Deadline();
  const Deadline* dl = deadline.armed() ? &deadline : nullptr;

  // A failed attempt retries on the next rung of the degradation ladder
  // when the failure is transient or config-induced: an injected fault or
  // canary trip (the leaner rung sidesteps the faulty path), an allocation
  // failure or budget rejection (the leaner rung needs less memory).  An
  // expired deadline is terminal — no rung can un-expire the clock.
  auto retryable = [](ErrorCode c) {
    return c == ErrorCode::kInternal || c == ErrorCode::kAllocationFailed ||
           c == ErrorCode::kResourceExhausted ||
           c == ErrorCode::kFaultInjected;
  };

  observe::Observer* obs = effective_observer();
  observe::RunReport report;
  if (!cache_events_.empty())
    report.cache_outcome = cache_events_.front().outcome;
  report.warm_start = warm_start_;
  WallTimer total;
  Error last(std::string("Session::execute: no attempts"),
             ErrorCode::kInternal);
  for (int attempt = 1; attempt <= opts_.max_run_attempts; ++attempt) {
    observe::RunAttempt ra;
    ra.index = attempt;
    WallTimer t;
    bool stop = false;
    try {
      Executor* ex = attempt_executor(static_cast<std::size_t>(attempt - 1));
      if (ex == nullptr) break;  // ladder exhausted: report the last error
      ra.config = attempt == 1
                      ? "full"
                      : rungs_[static_cast<std::size_t>(attempt - 2)].label;
      ex->run(inputs, ws_, obs, dl);
      ra.succeeded = true;
      ra.seconds = t.seconds();
      if (obs != nullptr) obs->on_run_attempt(ra);
      report.attempts.push_back(ra);
      report.succeeded = true;
      report.degraded = attempt > 1;
      report.final_config = report.attempts.back().config;
      report.total_seconds = total.seconds();
      report_ = std::move(report);
      ran_ = true;
      return ra.seconds;
    } catch (const Error& e) {
      last = e;
    } catch (const std::bad_alloc&) {
      last = Error(std::string("Session::execute: out of memory"),
                   ErrorCode::kAllocationFailed);
    } catch (const std::exception& e) {
      last = Error(std::string(e.what()), ErrorCode::kInternal);
    }
    if (ra.config.empty()) ra.config = "full";
    ra.seconds = t.seconds();
    ra.code = error_code_name(last.code());
    ra.detail = last.what();
    if (obs != nullptr) obs->on_run_attempt(ra);
    report.attempts.push_back(std::move(ra));
    stop = !retryable(last.code());
    if (stop) break;
  }
  report.succeeded = false;
  if (!report.attempts.empty())
    report.final_config = report.attempts.back().config;
  report.total_seconds = total.seconds();
  report_ = std::move(report);
  return Result<double>(last);
}

Result<std::vector<Buffer>> Session::run(const std::vector<Buffer>& inputs) {
  Result<double> r = execute(inputs);
  if (!r.ok()) return r.error();
  std::vector<Buffer> out;
  out.reserve(pl_->outputs().size());
  for (int s : pl_->outputs()) out.push_back(ws_.stage_buffer(s));
  return out;
}

const Buffer& Session::output(int i) const {
  FUSEDP_CHECK_CODE(ran_, ErrorCode::kInvalidArgument,
                    "Session::output before a successful execute()");
  FUSEDP_CHECK_CODE(i >= 0 && i < num_outputs(), ErrorCode::kInvalidArgument,
                    "Session::output index out of range");
  return ws_.stage_buffer(pl_->outputs()[static_cast<std::size_t>(i)]);
}

int Session::num_outputs() const {
  return static_cast<int>(pl_->outputs().size());
}

const observe::RunTrace* Session::trace() const {
  return collector_ != nullptr ? collector_->last() : nullptr;
}

Result<int> Session::write_trace(const std::string& path) const {
  const observe::RunTrace* t = trace();
  if (t == nullptr)
    return Result<int>::failure(
        ErrorCode::kInvalidArgument,
        "Session::write_trace: no trace collected (set "
        "Options::collect_trace and execute at least once)");
  return observe::write_chrome_trace(*t, path);
}

Result<observe::Report> Session::report() const {
  const observe::RunTrace* t = trace();
  if (t == nullptr)
    return Result<observe::Report>::failure(
        ErrorCode::kInvalidArgument,
        "Session::report: no trace collected (set Options::collect_trace "
        "and execute at least once)");
  return observe::make_report(*t);
}

}  // namespace fusedp
