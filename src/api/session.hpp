// The FuseDP session facade: one object owning the plan -> schedule ->
// execute lifecycle behind a single validated Options struct.
//
//   fusedp::Pipeline pl = ...;            // build stages, pl.finalize()
//   fusedp::Options opts;
//   opts.num_threads = 8;
//   auto session = fusedp::Session::open(pl, opts);
//   if (!session.ok()) { /* session.error().code() says why */ }
//   auto out = session.value().run(inputs);
//
// Session::open schedules the pipeline (or validates a caller-provided
// Grouping), lowers it to an ExecutablePlan, and compiles the stage
// programs once; execute()/run() then replay the plan against fresh inputs
// without re-planning.  Every failure comes back as a coded Result — the
// facade never throws for bad options, bad schedules, or runtime faults.
//
// Observability: with Options::collect_trace the session attaches its own
// observe::TraceCollector and exposes the resulting RunTrace via trace(),
// write_trace() (Chrome trace_event JSON) and report() (the cost model's
// predicted per-group scores joined against measured wall times).  A user
// observe::Observer can be attached instead of or in addition to the
// collector.
//
// The pre-facade API (run_pipeline, Executor + Workspace, auto_schedule)
// remains supported; Session is a composition of those pieces, not a
// replacement semantics.  Outputs are bit-identical across both paths and
// across observer-on/off (the verifier's differ ladder pins this).
#pragma once

#include <memory>

#include "fusion/autoschedule.hpp"
#include "observe/trace.hpp"
#include "runtime/executor.hpp"
#include "storage/findb.hpp"

namespace fusedp {

// Which schedule search produces the session's grouping.
enum class Scheduler : std::uint8_t {
  kAuto = 0,    // deadline-bounded ladder: full DP -> bounded DP -> greedy
                // -> unfused (fusion/autoschedule)
  kDp,          // unbounded DP (paper Algorithm 1); may fail on budget
  kGreedy,      // PolyMage-greedy heuristic
  kHalideAuto,  // Halide-auto-inspired grouping
  kUnfused,     // singleton groups; always valid
};

const char* scheduler_name(Scheduler s);

// Everything that configures a session, in one struct: execution knobs
// (previously ExecOptions), schedule-search knobs (previously
// AutoScheduleOptions) and observability.  Session::open validates the
// whole struct up front and rejects inconsistent combinations with coded
// kInvalidArgument errors instead of silently misbehaving.
struct Options {
  // --- Execution (mirrors ExecOptions; see runtime/executor.hpp) ---
  int num_threads = 1;           // must be >= 1
  EvalMode mode = EvalMode::kRow;
  bool compiled = true;
  bool vector_backend = true;
  bool superop_fusion = true;
  bool allow_fma = false;        // requires the vector backend
  // Approximate exp/log/pow kernels (runtime/fastmath.hpp) instead of
  // scalar libm: ULP-bounded deviation from the bit-exact reference, so it
  // is opt-in like allow_fma and likewise requires the vectorized compiled
  // row backend.
  bool fast_transcendentals = false;
  // Plan-time micro-measured fusion gate (see ExecOptions::never_pessimize):
  // demotes vector/superop group compilations that lose to the plain form.
  // Value-neutral; on by default.
  bool never_pessimize = true;
  TileSchedule tile_schedule = TileSchedule::kDynamic;
  bool pooled_storage = false;
  bool guard_arena = false;
  // Execute tile loops on the persistent work-stealing WorkPool instead of
  // a per-run OpenMP region (see runtime/pool.hpp).  Bit-identical outputs;
  // the serving front door (api/serve.hpp) always uses the pool.
  bool pool_backend = false;

  // --- Scheduling ---
  Scheduler scheduler = Scheduler::kAuto;
  MachineModel machine = MachineModel::host();
  // kAuto ladder budgets (see AutoScheduleOptions).  deadline_seconds < 0
  // is rejected; 0 means "no deadline".  Only the kAuto ladder can bound
  // its own search, so with a direct scheduler (kDp/kGreedy/...) a nonzero
  // deadline is rejected unless the cache is on — and then it bounds only
  // the cache probe and lock wait: on a cache miss the direct scheduler
  // still runs unbounded, so the deadline is best-effort on that path.
  double deadline_seconds = 0.0;
  std::uint64_t max_states = 50'000'000;
  int bounded_initial_limit = 8;
  // Greedy tier / Scheduler::kGreedy configuration.
  std::int64_t greedy_t1 = 64;
  std::int64_t greedy_t2 = 128;
  double greedy_tolerance = 0.4;

  // --- Persistent schedule cache (storage/findb) ---
  // With cache_mode != kOff, Session::open probes an on-disk cache keyed by
  // (pipeline fingerprint, machine fingerprint, schedule-relevant options
  // fingerprint) before searching: a hit re-validates the cached schedule
  // text through the hardened parser and opens with zero DP search; any
  // cache failure (corruption, version skew, stale build, lock timeout) is
  // a coded, observable event that degrades to a fresh autoschedule.
  // kReadWrite additionally persists freshly found schedules and evicts
  // records that fail validation.  cache_dir must be set when the mode is
  // not kOff.  The schedule-search deadline (deadline_seconds) bounds the
  // cache probe and lock wait too, so a wedged cache cannot stall open.
  findb::CacheMode cache_mode = findb::CacheMode::kOff;
  std::string cache_dir;
  // Compaction budgets for the cache directory (kReadWrite stores only).
  std::int64_t cache_max_entries = 256;
  std::int64_t cache_max_bytes = std::int64_t{16} << 20;
  // Bound on waiting for the cache directory lock (seconds, >= 0).
  double cache_lock_timeout_seconds = 0.5;
  // In-process LRU hot tier, shared across sessions (records; 0 = off).
  int cache_memory_entries = 32;

  // --- Request governance ---
  // Per-request wall-clock deadline for execute()/run(), in seconds
  // (0 = none).  Checked cooperatively at tile boundaries: an overrunning
  // request terminates with kDeadlineExceeded and the session workspace
  // stays reusable.  Distinct from deadline_seconds, which bounds the
  // schedule *search*.
  double run_deadline_seconds = 0.0;
  // Execution-time degradation ladder: when > 1, a retryable failure
  // (injected fault, canary trip, allocation failure, resource-budget
  // rejection) retries the request on progressively leaner configurations —
  // superop fusion off, then the vector backend off, then an unfused
  // schedule — up to this many total attempts.  Every rung is bit-identical
  // by construction, so a degraded success returns the same pixels.
  // kDeadlineExceeded never retries (the clock that expired is still
  // expired).  Each attempt is streamed to the observer as a RunAttempt and
  // summarized in last_report().
  int max_run_attempts = 1;

  // --- Observability ---
  // Attach the session's own TraceCollector: schedule-ladder attempts and
  // per-group measurements accumulate into a RunTrace per execute(),
  // exposed via Session::trace() / write_trace() / report().
  bool collect_trace = false;
  // Keep per-tile events in the collected trace (timeline rendering).  Off
  // keeps per-group aggregation only; ignored unless collect_trace.
  bool trace_tiles = true;
  // Optional user sink, observed in addition to the collector (both see
  // every callback).  Not owned; must outlive the session.
  observe::Observer* observer = nullptr;

  // Projections onto the pre-facade option structs (back-compat shims; the
  // scheduler-observer field is filled in by Session::open).
  ExecOptions exec() const;
  AutoScheduleOptions autoschedule() const;

  // The schedule-relevant options digest used in the cache key: scheduler
  // choice plus every knob that can change which grouping a search returns
  // (state budgets, greedy tile parameters).  Deliberately excludes
  // deadlines and run-governance knobs: a different deadline can only
  // change *whether* the search finishes, and caching exists precisely to
  // make the finished result independent of future deadlines.  Execution
  // knobs (threads, backends) are also excluded — they change how a
  // grouping runs, not which grouping wins.
  std::uint64_t schedule_fingerprint() const;

  // The findb configuration implied by the cache_* fields.
  findb::FindbOptions findb_options() const;
};

// Validates `opts` as a whole; returns true or a coded kInvalidArgument
// error naming the offending field/combination.
Result<bool> validate_options(const Options& opts);

class Session {
 public:
  // Schedules `pl` with opts.scheduler and prepares the executable plan.
  // Fails with kInvalidPipeline (unfinalized/empty pipeline),
  // kInvalidArgument (bad options), or the scheduler's own coded error
  // (e.g. kSearchBudgetExhausted from Scheduler::kDp).
  static Result<Session> open(const Pipeline& pl, Options opts = {});
  // Uses a caller-provided grouping instead of searching; fails with
  // kInvalidSchedule if it does not validate against `pl`.  Missing
  // per-group costs are filled from the cost model (tile sizes are left
  // exactly as given).
  static Result<Session> open(const Pipeline& pl, const Grouping& grouping,
                              Options opts = {});

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  // Executes the pipeline; results land in the session workspace (see
  // output()).  Returns wall seconds for the run.  The workspace is reused
  // across calls, so repeated execute() measures a warm plan.
  //
  // Honors Options::run_deadline_seconds and, on retryable coded failures,
  // walks the degradation ladder up to Options::max_run_attempts attempts
  // (see last_report() for the attempt-by-attempt post-mortem).  On
  // success, the returned seconds are the successful attempt's wall time.
  Result<double> execute(const std::vector<Buffer>& inputs);

  // execute() + copy of the output buffers (pipeline output order).
  Result<std::vector<Buffer>> run(const std::vector<Buffer>& inputs);

  // The i-th pipeline output (pl.outputs() order); valid after a
  // successful execute()/run().
  const Buffer& output(int i) const;
  int num_outputs() const;

  const Pipeline& pipeline() const { return *pl_; }
  const Options& options() const { return opts_; }
  const Grouping& grouping() const { return grouping_; }
  const ExecutablePlan& plan() const { return exec_->plan(); }
  // Schedule-search post-mortem; empty attempts unless Scheduler::kAuto.
  // A warm start has empty attempts and zero total_states: no search ran.
  const Diagnostics& diagnostics() const { return diag_; }

  // True when the schedule came from the persistent cache (no search ran).
  bool warm_start() const { return warm_start_; }
  // Every cache interaction at open (probe, store, evictions), in order;
  // empty when Options::cache_mode was kOff.
  const std::vector<observe::CacheEvent>& cache_events() const {
    return cache_events_;
  }

  // The last run's trace; nullptr unless Options::collect_trace and at
  // least one execute() happened.
  const observe::RunTrace* trace() const;
  // Chrome trace_event JSON of the last run -> `path`.  kInvalidArgument
  // without a trace, kIoError on filesystem trouble; otherwise the number
  // of trace events written.
  Result<int> write_trace(const std::string& path) const;
  // Predicted-vs-measured per-group report of the last run.
  Result<observe::Report> report() const;

  // Attempt-by-attempt post-mortem of the most recent execute()/run():
  // every degradation-ladder attempt with its config, outcome, coded error
  // and wall time.  Empty before the first execute().
  const observe::RunReport& last_report() const { return report_; }

 private:
  Session(const Pipeline& pl, Options opts, Grouping grouping,
          Diagnostics diag);

  // One fallback rung of the degradation ladder (the primary attempt runs
  // on exec_).  Executors are built lazily on the first failure that
  // reaches the rung and cached for later requests.
  struct FallbackRung {
    std::string label;
    ExecOptions exec;
    bool unfused = false;  // re-schedule as singleton groups
    std::unique_ptr<Executor> executor;
  };

  void build_rungs();
  // The executor for 0-based attempt index `i` (0 = primary); nullptr once
  // the ladder is exhausted.  Lazily constructs fallback executors.
  Executor* attempt_executor(std::size_t i);

  const Pipeline* pl_;
  Options opts_;
  Grouping grouping_;
  Diagnostics diag_;
  // unique_ptrs keep observer addresses stable across Session moves.
  std::unique_ptr<observe::TraceCollector> collector_;
  std::unique_ptr<observe::TeeObserver> tee_;
  std::unique_ptr<Executor> exec_;
  std::vector<FallbackRung> rungs_;
  Workspace ws_;
  observe::RunReport report_;
  bool ran_ = false;
  bool warm_start_ = false;
  std::vector<observe::CacheEvent> cache_events_;

  observe::Observer* effective_observer() const;
};

}  // namespace fusedp
