// The serving front door: compile-once / execute-many for concurrent
// clients over the persistent work-stealing pool.
//
//   fusedp::ServeOptions so;
//   so.workers = 4;                       // pool lanes for this service
//   auto svc = fusedp::PipelineService::create(pl, so);
//   fusedp::ServeRequest req;
//   req.inputs = ...;
//   auto t = svc.value()->submit(std::move(req));   // async, admission-checked
//   auto reply = t.value().wait();                  // p50/p99 material
//
// A PipelineService schedules and compiles its pipeline exactly once
// (MIOpen's find-once/execute-many serving lifecycle), then serves
// requests against a pool of reusable Workspaces:
//
//  * Bounded admission: at most ServeOptions::max_queue requests may be
//    in flight (queued + executing).  The next submission is rejected
//    immediately with kResourceExhausted — callers shed load instead of
//    queueing unboundedly.  Memory stays governor-charged exactly as in
//    direct Executor use: each pooled Workspace holds its GovernedCharge
//    across checkouts, so the ResourceGovernor budget bounds the service's
//    total footprint too.
//
//  * Coalescing: a pipeline whose frames are below
//    ServeOptions::shard_threshold_pixels executes each request as ONE
//    single-lane pool task, so many small frames run concurrently on the
//    shared worker set — one pool epoch amortized over the batch, instead
//    of a parallel region (or a lane fan-out) per tiny frame.
//
//  * Sharding: frames at/above the threshold fan their tile grid across
//    all workers via the pool's work-stealing parallel_for.
//
//  * Priority: each request carries a TaskPriority; interactive requests
//    are dequeued ahead of bulk ones (preemption in the steal order, never
//    mid-tile), so a latency-sensitive frame overtakes queued bulk work.
//
// Every failure is a coded Result (admission bounce, governor rejection,
// deadline expiry, tile fault); nothing throws across this API.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>

#include "api/session.hpp"
#include "runtime/pool.hpp"

namespace fusedp {

struct ServeOptions {
  // Pool lanes this service uses: sharded frames split across this many
  // lanes; coalesced frames run up to this many concurrently.
  int workers = 1;
  // Admission bound: maximum requests in flight (queued + executing).
  // Submissions beyond it are rejected immediately with
  // kResourceExhausted, never queued.
  int max_queue = 64;
  // Reusable Workspaces in the checkout pool; 0 means `workers`.  A
  // request beyond this blocks (inside its queue-wait) until one frees.
  int workspaces = 0;
  // Frames with at least this many output pixels are sharded across all
  // workers; smaller frames coalesce as single-lane tasks.  The pipeline's
  // output domains are fixed at finalize time, so the decision is made
  // once, at create().
  std::int64_t shard_threshold_pixels = std::int64_t{1} << 20;
  // Default per-request deadline (seconds since submit, queue wait
  // included); 0 = none.  ServeRequest::deadline_seconds overrides.
  double default_deadline_seconds = 0.0;
  // Execution/scheduling options for the shared plan.  pool_backend is
  // forced on and num_threads is set to `workers` by create().
  Options session;
};

struct ServeRequest {
  std::vector<Buffer> inputs;  // pipeline input order
  TaskPriority priority = TaskPriority::kInteractive;
  // <0: use ServeOptions::default_deadline_seconds; 0: no deadline;
  // >0: seconds from submit (queue wait counts against it).
  double deadline_seconds = -1.0;
};

struct ServeReply {
  std::vector<Buffer> outputs;      // pipeline output order (copies)
  double seconds = 0.0;             // execution wall time
  double queue_wait_seconds = 0.0;  // admission -> execution start
};

struct ServeStats {
  std::int64_t accepted = 0;   // requests admitted
  std::int64_t rejected = 0;   // admission-control bounces
  std::int64_t completed = 0;  // successful replies
  std::int64_t failed = 0;     // coded failures (deadline, fault, governor)
  std::int64_t sharded = 0;    // executed across all workers
  std::int64_t coalesced = 0;  // executed as a single-lane pool task
};

namespace detail {

// Shared state behind a Ticket: fulfilled exactly once by the pool task,
// consumed exactly once by wait().
struct PendingReply {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::optional<Result<ServeReply>> result;
};

}  // namespace detail

class PipelineService {
 public:
  // Validates options, schedules + compiles the pipeline once (any
  // Session::open failure propagates), allocates the workspace pool and
  // grows the process WorkPool to `workers`.  The service address-pins
  // itself (tasks capture it), hence the unique_ptr.
  static Result<std::unique_ptr<PipelineService>> create(const Pipeline& pl,
                                                         ServeOptions opts = {});

  // Drains: blocks until every admitted request has completed.
  ~PipelineService();

  PipelineService(const PipelineService&) = delete;
  PipelineService& operator=(const PipelineService&) = delete;

  // Handle to an in-flight submission.  wait() blocks for the reply;
  // consume it once.
  class Ticket {
   public:
    Result<ServeReply> wait();

   private:
    friend class PipelineService;
    explicit Ticket(std::shared_ptr<detail::PendingReply> p)
        : p_(std::move(p)) {}
    std::shared_ptr<detail::PendingReply> p_;
  };

  // Asynchronous request: admission check, then a pool task at the
  // request's priority.  Fails fast with kResourceExhausted when the
  // service is at max_queue.  The deadline is armed here, so dispatch-queue
  // wait counts against it.
  Result<Ticket> submit(ServeRequest req);

  // Synchronous request: submit() + wait().  The calling thread blocks;
  // execution still happens on the pool (same path as submit, so small
  // frames coalesce and large frames shard identically).
  Result<ServeReply> call(ServeRequest req);

  ServeStats stats() const;
  // True when this pipeline's frames shard across all workers.
  bool sharded() const { return sharded_; }
  int workers() const { return opts_.workers; }
  const Grouping& grouping() const { return grouping_; }
  const ExecutablePlan& plan() const { return exec_->plan(); }

 private:
  PipelineService(const Pipeline& pl, ServeOptions opts, Grouping grouping);

  bool try_admit();
  void release_admission();
  // Blocks until a pooled workspace frees.  Progress is guaranteed even
  // with every pool worker blocked here: the requests holding workspaces
  // run their own lane-0 claim loops to completion (work conservation),
  // needing no further pool service.
  std::unique_ptr<Workspace> checkout_workspace();
  void return_workspace(std::unique_ptr<Workspace> ws);
  // The admitted request body: workspace checkout, pool execution at the
  // request's lane width/priority, output copy.  Never throws.
  Result<ServeReply> execute_admitted(const ServeRequest& req,
                                      const Deadline& deadline,
                                      const WallTimer& submitted);

  const Pipeline* pl_;
  ServeOptions opts_;
  Grouping grouping_;
  std::unique_ptr<Executor> exec_;
  bool sharded_ = false;

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;   // release_admission -> ~PipelineService
  std::condition_variable ws_cv_;      // return_workspace -> checkout
  int in_flight_ = 0;
  std::vector<std::unique_ptr<Workspace>> free_ws_;
  ServeStats stats_;
};

}  // namespace fusedp
