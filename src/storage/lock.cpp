#include "storage/lock.hpp"

#include <cerrno>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "support/fault.hpp"

namespace fusedp::storage {

FileLock& FileLock::operator=(FileLock&& o) noexcept {
  if (this != &o) {
    release();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void FileLock::release() {
  if (fd_ >= 0) {
    // close() drops the flock with it; no separate LOCK_UN needed.
    ::close(fd_);
    fd_ = -1;
  }
}

Result<FileLock> FileLock::acquire(const std::string& path, Type type,
                                   double timeout_seconds,
                                   const Deadline* deadline) {
  // The injected fault must come back as a coded Result like every real
  // lock failure — FindDb::probe's no-throw contract sits on top of this.
  try {
    FUSEDP_FAULT_POINT("lock.acquire");
  } catch (const Error& e) {
    return Result<FileLock>::failure(ErrorCode::kFaultInjected, e.what());
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0)
    return Result<FileLock>::failure(
        ErrorCode::kIoError, "FileLock: cannot open " + path + ": " +
                                 std::strerror(errno));
  const int op = type == Type::kExclusive ? LOCK_EX : LOCK_SH;
  const Deadline local =
      timeout_seconds > 0.0 ? Deadline::after(timeout_seconds) : Deadline();
  // Backoff starts fine-grained (lock holders are usually quick record
  // reads/writes) and grows to keep the spin cheap under long contention.
  double sleep_us = 100.0;
  for (;;) {
    if (::flock(fd, op | LOCK_NB) == 0) return Result<FileLock>(FileLock(fd));
    if (errno != EWOULDBLOCK && errno != EINTR) {
      const int err = errno;
      ::close(fd);
      return Result<FileLock>::failure(
          ErrorCode::kIoError,
          "FileLock: flock " + path + ": " + std::strerror(err));
    }
    const bool timed_out = local.armed() && local.expired();
    const bool deadline_hit =
        deadline != nullptr && deadline->armed() && deadline->expired();
    if (timed_out || deadline_hit || timeout_seconds <= 0.0) {
      ::close(fd);
      return Result<FileLock>::failure(
          ErrorCode::kDeadlineExceeded,
          std::string("FileLock: ") +
              (deadline_hit ? "deadline expired waiting for "
                            : "timed out waiting for ") +
              path);
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(sleep_us));
    if (sleep_us < 5000.0) sleep_us *= 2.0;
  }
}

}  // namespace fusedp::storage
