// Storage optimization: liveness-based reuse of materialized buffers.
//
// PolyMage applies storage optimizations on top of grouping (the paper
// leans on them in Section 6.2's Harris case study: its grouping alone took
// H-manual from 33 ms to 12.6 ms, and storage mappings accounted for part of
// the remaining gap).  This module implements the classic liveness variant:
// after lowering, every materialized intermediate has a live interval
// [producing group, last consuming group] in the plan's group order; buffers
// with disjoint intervals share one allocation (greedy first-fit on interval
// end, slots grown to the largest tenant).
//
// Pipeline outputs are never pooled (they outlive the run).
#pragma once

#include <vector>

#include "runtime/plan.hpp"

namespace fusedp {

struct LiveInterval {
  int stage = -1;
  int def_group = -1;   // index in plan.groups producing the stage
  int last_use = -1;    // last group index reading it (>= def_group)
};

struct StorageAssignment {
  // slot[stage] >= 0 for pooled intermediates; -1 for unpooled stages
  // (outputs, non-materialized, reduction outputs feeding dynamic reads in
  // the same group — anything that must keep its own allocation).
  std::vector<int> slot;
  std::vector<std::int64_t> slot_floats;  // capacity of each slot
  std::int64_t pooled_floats = 0;         // sum of slot capacities
  std::int64_t unpooled_floats = 0;       // what the same buffers need unpooled
  int num_slots = 0;

  double reuse_factor() const {
    return pooled_floats > 0 ? static_cast<double>(unpooled_floats) /
                                   static_cast<double>(pooled_floats)
                             : 1.0;
  }
};

// Live intervals of all materialized non-output stages, in plan group order.
std::vector<LiveInterval> compute_live_intervals(const ExecutablePlan& plan);

// Greedy slot assignment.  Two stages may share a slot iff their intervals
// do not overlap (def/use granularity is whole groups, so a buffer consumed
// by group i and one produced by group i never share).
StorageAssignment assign_storage(const ExecutablePlan& plan);

}  // namespace fusedp
