// Advisory file locking for the on-disk schedule cache (storage/findb).
//
// flock(2)-based, so it coordinates both threads within one process (flock
// locks attach to the open file description — each FileLock opens its own
// fd) and separate processes sharing a cache directory.  Acquisition is a
// bounded non-blocking retry loop: a held lock never blocks a caller past
// its timeout or past an armed Deadline (the autoschedule deadline bounds
// cache probe time too), and a timeout is a *coded* outcome the cache
// translates into "skip the cache, search fresh" — never a hang, never an
// uncoded failure.
//
// Advisory means a crashed or malicious writer cannot corrupt readers
// through the lock itself: the record checksums are what protect readers;
// the lock only keeps well-behaved writers from wasting each other's work.
// Locks release on close, so a killed process can never leave the cache
// directory wedged.
#pragma once

#include <string>

#include "support/status.hpp"
#include "support/timing.hpp"

namespace fusedp::storage {

class FileLock {
 public:
  enum class Type : std::uint8_t {
    kShared,     // concurrent readers
    kExclusive,  // single writer
  };

  // Opens (creating if needed) `path` and acquires the flock.  Retries
  // non-blockingly with a short backoff until `timeout_seconds` elapses or
  // `deadline` (when armed) expires — whichever comes first.  Returns:
  //   kDeadlineExceeded — lock held by someone else past the bound
  //   kIoError          — open/flock failed for filesystem reasons
  static Result<FileLock> acquire(const std::string& path, Type type,
                                  double timeout_seconds,
                                  const Deadline* deadline = nullptr);

  FileLock(FileLock&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  FileLock& operator=(FileLock&& o) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  ~FileLock() { release(); }

  void release();
  bool held() const { return fd_ >= 0; }

 private:
  explicit FileLock(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace fusedp::storage
