// The persistent schedule cache ("find-db"): compile once, serve forever.
//
// Autoscheduling is the expensive step of the pipeline-optimization flow —
// the full DP under a deadline — and without a cache every Session::open
// pays it again.  FindDb persists the winning schedule keyed by
// (pipeline fingerprint, machine fingerprint, schedule-relevant options
// fingerprint), exactly MIOpen's solver/find-db pattern: re-search is the
// fallback, never the default.
//
// On-disk layout: one record file per key under the cache directory,
//
//   <dir>/<pfp>-<mfp>-<ofp>.fdb        (hex64 fingerprints)
//   <dir>/findb.lock                   (advisory flock; shared=read,
//                                       exclusive=write/evict/compact)
//   <dir>/<stem>.fdb.tmp.<pid>.<seq>   (in-flight writes, ignored by reads)
//
// Record format (all text; documented in docs/robustness.md):
//
//   fusedp-findb v1
//   crc32 <8 hex digits over the payload bytes>
//   bytes <payload byte count>
//   <payload>
//
// The payload carries a provenance header (key fingerprints, git SHA,
// creation time, winning scheduler rung), per-group predicted costs and
// optional measured times, and the schedule text itself (the hardened
// fusedp-schedule v1 format that grouping_from_text re-validates on load).
//
// Trust model: the cache is an *optimization*, never an authority.  Every
// failure mode is a coded, non-fatal ProbeOutcome — checksum mismatch,
// truncated file, unknown version, stale git SHA, key mismatch, lock
// timeout, I/O error — and each degrades to "miss": the caller runs a
// fresh autoschedule.  A hit still re-parses the schedule text through the
// hardened parser and grouping validation before anything executes, so a
// hostile cache file can at worst cost one re-search.  Writes go through a
// temp file + fsync + atomic rename, so a crash mid-write leaves either
// the old record or debris a reader ignores — never a half-record that
// parses.
//
// An in-process LRU memory tier (shared across FindDb instances, keyed by
// dir+stem) serves hot pipelines without touching the filesystem at all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hpp"
#include "support/timing.hpp"

namespace fusedp::findb {

// Who may read/write the cache for a given Session (validated Options
// field; kOff callers never construct a FindDb at all).
enum class CacheMode : std::uint8_t {
  kOff = 0,
  kRead,       // probe only; never writes, never evicts
  kReadWrite,  // probe, store fresh results, evict bad entries on sight
};

const char* cache_mode_name(CacheMode mode);

// The cache key: three 64-bit structural fingerprints (support/fingerprint).
struct CacheKey {
  std::uint64_t pipeline_fp = 0;
  std::uint64_t machine_fp = 0;
  std::uint64_t options_fp = 0;

  // "<pfp>-<mfp>-<ofp>" in hex64 — the record's file stem.
  std::string stem() const;
  static bool parse_stem(const std::string& stem, CacheKey* out);
  bool operator==(const CacheKey&) const = default;
};

// One cached result: provenance + the winning schedule.
struct CacheRecord {
  std::string pipeline;   // pipeline name (informational)
  std::string git_sha;    // build that produced the schedule
  std::string rung;       // schedule tier that won ("full-dp", "greedy", ...)
  std::int64_t created_unix = 0;
  std::vector<double> predicted;    // per-group model cost, group order
  std::vector<double> measured_ms;  // optional measured per-group times
  std::string schedule_text;        // fusedp-schedule v1 text
};

// Every way a probe can resolve.  Everything except kHit means "search
// fresh"; the distinctions exist for observability and eviction policy.
enum class ProbeOutcome : std::uint8_t {
  kHit = 0,
  kMiss,         // no record on disk (or in memory)
  kCorrupt,      // checksum mismatch / unparseable record
  kTruncated,    // file shorter than its declared payload
  kVersionSkew,  // record written by an unknown format version
  kStaleSha,     // record from a different build of this code
  kKeyMismatch,  // record's embedded key differs from its file name
  kLockTimeout,  // could not take the directory lock in time
  kIoError,      // filesystem trouble (includes injected findb.read faults)
  kBypass,       // cache not consulted (mode off / caller-provided grouping)
};

const char* probe_outcome_name(ProbeOutcome outcome);
// True for the outcomes that indicate a damaged or invalid record that
// read-write mode should evict on sight.
bool outcome_evicts(ProbeOutcome outcome);

struct ProbeResult {
  ProbeOutcome outcome = ProbeOutcome::kMiss;
  bool from_memory = false;  // served by the in-process LRU tier
  CacheRecord record;        // valid iff outcome == kHit
  std::string detail;        // human-readable cause for non-hits
  double seconds = 0.0;      // wall time of the probe
};

struct FindbOptions {
  std::string dir;  // cache directory (created on first write)
  CacheMode mode = CacheMode::kRead;
  // Lock acquisition bound; an armed Deadline passed to probe()/store()
  // tightens it further.  0 disables waiting entirely (single attempt).
  double lock_timeout_seconds = 0.5;
  // Compaction budget: after a store, the oldest records are evicted until
  // both bounds hold.  <= 0 disables that bound.
  std::int64_t max_entries = 256;
  std::int64_t max_bytes = std::int64_t{16} << 20;
  // In-process LRU tier capacity (records); 0 disables the memory tier.
  int memory_entries = 32;
  // Expected build SHA; records carrying a different value are kStaleSha.
  // Empty disables the check (tests, cross-build tooling).
  std::string git_sha;
  // kReadWrite only: delete records that probe as corrupt/truncated/
  // version-skewed/stale/mismatched so they stop costing a probe each open.
  bool evict_bad = true;
};

// Running counters for one FindDb handle (monotonic; CLI `cache stats`
// aggregates per-directory truth by scanning instead).
struct CacheCounters {
  std::int64_t hits = 0;
  std::int64_t memory_hits = 0;
  std::int64_t misses = 0;
  std::int64_t bad_records = 0;   // corrupt/truncated/skew/stale/mismatch
  std::int64_t lock_timeouts = 0;
  std::int64_t io_errors = 0;
  std::int64_t stores = 0;
  std::int64_t store_failures = 0;
  std::int64_t evictions = 0;
};

// A scanned directory entry (CLI stats/verify).
struct EntryInfo {
  std::string file;  // basename
  CacheKey key;
  std::int64_t bytes = 0;
  std::int64_t mtime_unix = 0;
  bool valid = false;
  std::string problem;  // probe-outcome name + detail when !valid
  CacheRecord record;   // filled when valid
};

class FindDb {
 public:
  explicit FindDb(FindbOptions opts);

  // Looks `key` up: memory tier first, then disk under a shared lock.
  // Never throws; every failure is a coded outcome that callers treat as a
  // miss.  An armed `deadline` bounds lock wait and is checked before the
  // disk read, so a slow disk or a wedged lock cannot blow a caller's
  // schedule-search deadline.
  ProbeResult probe(const CacheKey& key, const Deadline* deadline = nullptr);

  // kReadWrite only: atomically persists `rec` under `key` (temp + fsync +
  // rename), refreshes the memory tier, then compacts the directory to the
  // entry/byte budget.  Returns the outcome as a coded Result; failures
  // (lock timeout, injected faults, full disk) leave any previous record
  // intact.
  Result<bool> store(const CacheKey& key, const CacheRecord& rec,
                     const Deadline* deadline = nullptr);

  // Removes one record / every record (+ temp debris).  Returns the number
  // of files removed.
  Result<int> evict(const CacheKey& key);
  Result<int> evict_all();

  // Scans the directory, validating every record (CLI stats/verify).
  // With `repair`, invalid records and temp debris are deleted (requires
  // kReadWrite).
  Result<std::vector<EntryInfo>> scan(bool repair = false);

  const CacheCounters& counters() const { return counters_; }
  const FindbOptions& options() const { return opts_; }

  // Drops the process-wide memory tier (tests; also `cache evict`).
  static void clear_memory_tier();

 private:
  ProbeResult probe_disk(const CacheKey& key, const Deadline* deadline);
  void note(ProbeOutcome outcome);
  // Best-effort removal of a bad record (kReadWrite + evict_bad only).
  void evict_bad_record(const CacheKey& key);
  // Enforces max_entries/max_bytes, oldest-mtime-first; also sweeps stale
  // temp files.  Caller holds the exclusive lock.
  void compact_locked();

  FindbOptions opts_;
  CacheCounters counters_;
};

// --- Record wire format (exposed for tests and fuzzing) -------------------

// Serializes a full record file (header + checksummed payload).
std::string encode_record(const CacheKey& key, const CacheRecord& rec);

// Parses the bytes of a record file.  On success fills `rec`; on failure
// returns the coded outcome with a human-readable `detail`.  When
// `expect_key` is non-null, the embedded key must match (kKeyMismatch).
ProbeOutcome decode_record(const std::string& bytes,
                           const CacheKey* expect_key, CacheRecord* rec,
                           std::string* detail);

}  // namespace fusedp::findb
