#include "storage/liveness.hpp"

#include <algorithm>

namespace fusedp {

std::vector<LiveInterval> compute_live_intervals(const ExecutablePlan& plan) {
  const Pipeline& pl = *plan.pipeline;
  std::vector<LiveInterval> out;
  for (int s = 0; s < pl.num_stages(); ++s) {
    if (!plan.materialized[static_cast<std::size_t>(s)]) continue;
    if (pl.stage(s).is_output) continue;  // outlives the run: never pooled
    LiveInterval li;
    li.stage = s;
    for (int gi = 0; gi < static_cast<int>(plan.groups.size()); ++gi) {
      const GroupPlan& g = plan.groups[static_cast<std::size_t>(gi)];
      if (g.stages.contains(s)) li.def_group = gi;
      // Does any stage of a *later* group read s from the global buffer?
      if (!g.stages.contains(s)) {
        bool reads = false;
        g.stages.for_each([&](int t) {
          for (const Access& a : pl.stage(t).loads)
            if (!a.producer.is_input && a.producer.id == s) reads = true;
        });
        if (reads) li.last_use = gi;
      }
    }
    FUSEDP_DCHECK(li.def_group >= 0, "materialized stage has no group");
    li.last_use = std::max(li.last_use, li.def_group);
    out.push_back(li);
  }
  return out;
}

StorageAssignment assign_storage(const ExecutablePlan& plan) {
  const Pipeline& pl = *plan.pipeline;
  StorageAssignment asg;
  asg.slot.assign(static_cast<std::size_t>(pl.num_stages()), -1);

  std::vector<LiveInterval> intervals = compute_live_intervals(plan);
  std::sort(intervals.begin(), intervals.end(),
            [](const LiveInterval& a, const LiveInterval& b) {
              if (a.def_group != b.def_group) return a.def_group < b.def_group;
              return a.stage < b.stage;
            });

  // First-fit over slots: a slot is free for [def, last] if its current
  // occupant interval ended strictly before `def` (group-granular liveness:
  // a buffer read during group i conflicts with one written during i).
  std::vector<int> slot_end;                  // last_use of latest tenant
  for (const LiveInterval& li : intervals) {
    const std::int64_t vol = pl.stage(li.stage).volume();
    asg.unpooled_floats += vol;
    int chosen = -1;
    for (int s = 0; s < static_cast<int>(slot_end.size()); ++s) {
      if (slot_end[static_cast<std::size_t>(s)] < li.def_group) {
        chosen = s;
        break;
      }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(slot_end.size());
      slot_end.push_back(li.last_use);
      asg.slot_floats.push_back(0);
    } else {
      slot_end[static_cast<std::size_t>(chosen)] = li.last_use;
    }
    asg.slot[static_cast<std::size_t>(li.stage)] = chosen;
    asg.slot_floats[static_cast<std::size_t>(chosen)] =
        std::max(asg.slot_floats[static_cast<std::size_t>(chosen)], vol);
  }
  asg.num_slots = static_cast<int>(asg.slot_floats.size());
  for (std::int64_t v : asg.slot_floats) asg.pooled_floats += v;
  return asg;
}

}  // namespace fusedp
