#include "storage/findb.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <list>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "storage/lock.hpp"
#include "support/fault.hpp"
#include "support/fingerprint.hpp"

namespace fusedp::findb {

namespace {

constexpr const char* kMagic = "fusedp-findb";
constexpr const char* kVersion = "v1";
constexpr const char* kLockFile = "findb.lock";
constexpr const char* kRecordExt = ".fdb";
// A hard ceiling on what we will even read into memory: the biggest honest
// record is a schedule for a few dozen stages plus provenance — megabytes
// mean someone else's file or an attack, and either way we refuse.
constexpr std::int64_t kMaxRecordBytes = std::int64_t{4} << 20;

std::string join(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

std::string errno_str() { return std::strerror(errno); }

// Makes a just-committed rename durable: without syncing the directory the
// new directory entry can be lost on power failure even though the file's
// bytes were fsync'd.  Best effort — the record is already visible to every
// live reader, so a failure here only narrows durability, never correctness
// (a lost entry reads as a clean miss on the next boot).
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

bool is_record_file(const std::string& name) {
  // "<16 hex>-<16 hex>-<16 hex>.fdb" and nothing else.
  const std::string ext = kRecordExt;
  if (name.size() != 50 + ext.size()) return false;
  if (name.compare(50, ext.size(), ext) != 0) return false;
  CacheKey k;
  return CacheKey::parse_stem(name.substr(0, 50), &k);
}

bool is_temp_file(const std::string& name) {
  return name.find(".fdb.tmp.") != std::string::npos;
}

// Reads a whole file.  Distinguishes "absent" from "unreadable".
enum class ReadFile { kOk, kAbsent, kError, kTooBig };
ReadFile read_file(const std::string& path, std::string* out,
                   std::string* err) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return ReadFile::kAbsent;
    *err = "open " + path + ": " + errno_str();
    return ReadFile::kError;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    *err = "fstat " + path + ": " + errno_str();
    ::close(fd);
    return ReadFile::kError;
  }
  if (st.st_size > kMaxRecordBytes) {
    *err = "record exceeds " + std::to_string(kMaxRecordBytes) + " bytes";
    ::close(fd);
    return ReadFile::kTooBig;
  }
  out->resize(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < out->size()) {
    const ssize_t n =
        ::read(fd, out->data() + got, out->size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      *err = "read " + path + ": " + errno_str();
      ::close(fd);
      return ReadFile::kError;
    }
    if (n == 0) break;  // concurrently truncated; CRC will catch it
    got += static_cast<std::size_t>(n);
  }
  out->resize(got);
  ::close(fd);
  return ReadFile::kOk;
}

bool ensure_dir(const std::string& dir, std::string* err) {
  struct stat st{};
  if (::stat(dir.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return true;
    *err = dir + " exists and is not a directory";
    return false;
  }
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return true;
  *err = "mkdir " + dir + ": " + errno_str();
  return false;
}

// --- payload line parsing helpers ---------------------------------------

// Pulls the next '\n'-terminated line out of `s` starting at `pos`.
bool next_line(const std::string& s, std::size_t* pos, std::string* line) {
  if (*pos >= s.size()) return false;
  const std::size_t nl = s.find('\n', *pos);
  if (nl == std::string::npos) {
    *line = s.substr(*pos);
    *pos = s.size();
  } else {
    *line = s.substr(*pos, nl - *pos);
    *pos = nl + 1;
  }
  return true;
}

bool split_kv(const std::string& line, const std::string& keyword,
              std::string* rest) {
  if (line.compare(0, keyword.size(), keyword) != 0) return false;
  if (line.size() == keyword.size()) {
    rest->clear();
    return true;
  }
  if (line[keyword.size()] != ' ') return false;
  *rest = line.substr(keyword.size() + 1);
  return true;
}

bool parse_doubles(const std::string& s, std::size_t expect,
                   std::vector<double>* out) {
  out->clear();
  std::istringstream is(s);
  double v;
  while (is >> v) out->push_back(v);
  return out->size() == expect;
}

// --- the in-process LRU memory tier -------------------------------------
//
// Process-wide so every Session (and every PipelineService worker) sharing
// a cache directory shares the hot tier.  Keyed by dir + "/" + stem, so two
// FindDb handles on different directories never alias.  A plain mutex: the
// critical section is a map lookup + list splice, far cheaper than the disk
// probe it replaces.

struct MemoryTier {
  std::mutex mu;
  // Most-recent first.
  std::list<std::pair<std::string, CacheRecord>> lru;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, CacheRecord>>::iterator>
      index;

  bool get(const std::string& key, CacheRecord* rec) {
    std::lock_guard<std::mutex> g(mu);
    auto it = index.find(key);
    if (it == index.end()) return false;
    lru.splice(lru.begin(), lru, it->second);
    *rec = it->second->second;
    return true;
  }

  void put(const std::string& key, const CacheRecord& rec, int capacity) {
    if (capacity <= 0) return;
    std::lock_guard<std::mutex> g(mu);
    auto it = index.find(key);
    if (it != index.end()) {
      it->second->second = rec;
      lru.splice(lru.begin(), lru, it->second);
      return;
    }
    lru.emplace_front(key, rec);
    index[key] = lru.begin();
    while (static_cast<int>(lru.size()) > capacity) {
      index.erase(lru.back().first);
      lru.pop_back();
    }
  }

  void erase(const std::string& key) {
    std::lock_guard<std::mutex> g(mu);
    auto it = index.find(key);
    if (it == index.end()) return;
    lru.erase(it->second);
    index.erase(it);
  }

  // Drops every entry belonging to one cache directory (keys are
  // dir + "/" + stem), leaving other directories' hot entries alone —
  // the tier is process-wide, but eviction must stay per-FindDb.
  void erase_prefix(const std::string& prefix) {
    std::lock_guard<std::mutex> g(mu);
    for (auto it = lru.begin(); it != lru.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        index.erase(it->first);
        it = lru.erase(it);
      } else {
        ++it;
      }
    }
  }

  void clear() {
    std::lock_guard<std::mutex> g(mu);
    lru.clear();
    index.clear();
  }
};

MemoryTier& memory_tier() {
  static MemoryTier* tier = new MemoryTier();  // leaked: outlives all users
  return *tier;
}

}  // namespace

const char* cache_mode_name(CacheMode mode) {
  switch (mode) {
    case CacheMode::kOff: return "off";
    case CacheMode::kRead: return "read";
    case CacheMode::kReadWrite: return "readwrite";
  }
  return "?";
}

const char* probe_outcome_name(ProbeOutcome outcome) {
  switch (outcome) {
    case ProbeOutcome::kHit: return "hit";
    case ProbeOutcome::kMiss: return "miss";
    case ProbeOutcome::kCorrupt: return "corrupt";
    case ProbeOutcome::kTruncated: return "truncated";
    case ProbeOutcome::kVersionSkew: return "version-skew";
    case ProbeOutcome::kStaleSha: return "stale-sha";
    case ProbeOutcome::kKeyMismatch: return "key-mismatch";
    case ProbeOutcome::kLockTimeout: return "lock-timeout";
    case ProbeOutcome::kIoError: return "io-error";
    case ProbeOutcome::kBypass: return "bypass";
  }
  return "?";
}

bool outcome_evicts(ProbeOutcome outcome) {
  switch (outcome) {
    case ProbeOutcome::kCorrupt:
    case ProbeOutcome::kTruncated:
    case ProbeOutcome::kVersionSkew:
    case ProbeOutcome::kStaleSha:
    case ProbeOutcome::kKeyMismatch:
      return true;
    default:
      return false;
  }
}

std::string CacheKey::stem() const {
  return hex64(pipeline_fp) + "-" + hex64(machine_fp) + "-" +
         hex64(options_fp);
}

bool CacheKey::parse_stem(const std::string& stem, CacheKey* out) {
  if (stem.size() != 50 || stem[16] != '-' || stem[33] != '-') return false;
  CacheKey k;
  if (!parse_hex64(stem.substr(0, 16), &k.pipeline_fp)) return false;
  if (!parse_hex64(stem.substr(17, 16), &k.machine_fp)) return false;
  if (!parse_hex64(stem.substr(34, 16), &k.options_fp)) return false;
  if (out != nullptr) *out = k;
  return true;
}

// --- wire format ---------------------------------------------------------

std::string encode_record(const CacheKey& key, const CacheRecord& rec) {
  std::ostringstream payload;
  payload << "pipeline " << rec.pipeline << "\n";
  payload << "key " << hex64(key.pipeline_fp) << " " << hex64(key.machine_fp)
          << " " << hex64(key.options_fp) << "\n";
  payload << "git_sha " << rec.git_sha << "\n";
  payload << "created_unix " << rec.created_unix << "\n";
  payload << "rung " << rec.rung << "\n";
  char buf[64];
  payload << "predicted " << rec.predicted.size();
  for (double v : rec.predicted) {
    std::snprintf(buf, sizeof(buf), " %.17g", v);
    payload << buf;
  }
  payload << "\n";
  payload << "measured_ms " << rec.measured_ms.size();
  for (double v : rec.measured_ms) {
    std::snprintf(buf, sizeof(buf), " %.17g", v);
    payload << buf;
  }
  payload << "\n";
  // Schedule text goes last, framed by an explicit line count so embedded
  // blank lines or a keyword-looking line cannot confuse the parser.
  std::int64_t lines = 0;
  for (char c : rec.schedule_text)
    if (c == '\n') ++lines;
  if (!rec.schedule_text.empty() && rec.schedule_text.back() != '\n') ++lines;
  payload << "schedule_lines " << lines << "\n";
  payload << rec.schedule_text;
  if (!rec.schedule_text.empty() && rec.schedule_text.back() != '\n')
    payload << "\n";

  const std::string body = payload.str();
  std::ostringstream file;
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", crc32(body));
  file << kMagic << " " << kVersion << "\n";
  file << "crc32 " << crc << "\n";
  file << "bytes " << body.size() << "\n";
  file << body;
  return file.str();
}

ProbeOutcome decode_record(const std::string& bytes,
                           const CacheKey* expect_key, CacheRecord* rec,
                           std::string* detail) {
  auto bad = [&](ProbeOutcome o, const std::string& why) {
    if (detail != nullptr) *detail = why;
    return o;
  };

  std::size_t pos = 0;
  std::string line, rest;

  // Container header: magic+version, crc, byte count.
  if (!next_line(bytes, &pos, &line))
    return bad(ProbeOutcome::kTruncated, "empty file");
  {
    std::istringstream is(line);
    std::string magic, version;
    is >> magic >> version;
    if (magic != kMagic)
      return bad(ProbeOutcome::kCorrupt, "bad magic: " + line);
    if (version != kVersion)
      return bad(ProbeOutcome::kVersionSkew,
                 "format version " + version + " (want " + kVersion + ")");
  }
  if (!next_line(bytes, &pos, &line) || !split_kv(line, "crc32", &rest))
    return bad(ProbeOutcome::kTruncated, "missing crc32 header");
  std::uint32_t want_crc = 0;
  {
    if (rest.size() != 8) return bad(ProbeOutcome::kCorrupt, "bad crc32 field");
    for (char c : rest) {
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else return bad(ProbeOutcome::kCorrupt, "bad crc32 field");
      want_crc = (want_crc << 4) | static_cast<std::uint32_t>(d);
    }
  }
  if (!next_line(bytes, &pos, &line) || !split_kv(line, "bytes", &rest))
    return bad(ProbeOutcome::kTruncated, "missing bytes header");
  std::int64_t want_bytes = -1;
  {
    std::istringstream is(rest);
    if (!(is >> want_bytes) || want_bytes < 0 || want_bytes > kMaxRecordBytes)
      return bad(ProbeOutcome::kCorrupt, "bad bytes field: " + rest);
  }

  // Truncation check comes before CRC so a partial write (crash mid-copy)
  // reports as kTruncated, not generically corrupt.
  const std::int64_t have =
      static_cast<std::int64_t>(bytes.size()) - static_cast<std::int64_t>(pos);
  if (have < want_bytes)
    return bad(ProbeOutcome::kTruncated,
               "payload " + std::to_string(have) + " of " +
                   std::to_string(want_bytes) + " bytes");
  // Strict framing: the declared byte count must account for the whole
  // file.  Trailing bytes past the CRC-covered body mean concatenated or
  // doctored content, and accepting them would let junk ride in on a
  // "clean" hit.
  if (have > want_bytes)
    return bad(ProbeOutcome::kCorrupt,
               std::to_string(have - want_bytes) +
                   " trailing bytes after the declared payload");
  const std::string body = bytes.substr(pos, static_cast<std::size_t>(want_bytes));
  if (crc32(body) != want_crc)
    return bad(ProbeOutcome::kCorrupt, "crc32 mismatch");

  // Payload fields, in fixed order.
  CacheRecord r;
  pos = 0;
  if (!next_line(body, &pos, &line) || !split_kv(line, "pipeline", &r.pipeline))
    return bad(ProbeOutcome::kCorrupt, "missing pipeline field");
  if (!next_line(body, &pos, &line) || !split_kv(line, "key", &rest))
    return bad(ProbeOutcome::kCorrupt, "missing key field");
  {
    std::istringstream is(rest);
    std::string p, m, o;
    CacheKey k;
    if (!(is >> p >> m >> o) || !parse_hex64(p, &k.pipeline_fp) ||
        !parse_hex64(m, &k.machine_fp) || !parse_hex64(o, &k.options_fp))
      return bad(ProbeOutcome::kCorrupt, "bad key field: " + rest);
    if (expect_key != nullptr && !(k == *expect_key))
      return bad(ProbeOutcome::kKeyMismatch,
                 "record key " + k.stem() + " != file key " +
                     expect_key->stem());
  }
  if (!next_line(body, &pos, &line) || !split_kv(line, "git_sha", &r.git_sha))
    return bad(ProbeOutcome::kCorrupt, "missing git_sha field");
  if (!next_line(body, &pos, &line) ||
      !split_kv(line, "created_unix", &rest))
    return bad(ProbeOutcome::kCorrupt, "missing created_unix field");
  {
    std::istringstream is(rest);
    if (!(is >> r.created_unix))
      return bad(ProbeOutcome::kCorrupt, "bad created_unix: " + rest);
  }
  if (!next_line(body, &pos, &line) || !split_kv(line, "rung", &r.rung))
    return bad(ProbeOutcome::kCorrupt, "missing rung field");

  auto parse_vec = [&](const char* keyword,
                       std::vector<double>* out) -> const char* {
    if (!next_line(body, &pos, &line) || !split_kv(line, keyword, &rest))
      return "missing field";
    std::istringstream is(rest);
    std::int64_t n = -1;
    if (!(is >> n) || n < 0 || n > (1 << 16)) return "bad count";
    std::string tail;
    std::getline(is, tail);
    if (!parse_doubles(tail, static_cast<std::size_t>(n), out))
      return "bad values";
    return nullptr;
  };
  if (const char* why = parse_vec("predicted", &r.predicted))
    return bad(ProbeOutcome::kCorrupt, std::string("predicted: ") + why);
  if (const char* why = parse_vec("measured_ms", &r.measured_ms))
    return bad(ProbeOutcome::kCorrupt, std::string("measured_ms: ") + why);

  if (!next_line(body, &pos, &line) ||
      !split_kv(line, "schedule_lines", &rest))
    return bad(ProbeOutcome::kCorrupt, "missing schedule_lines field");
  std::int64_t sched_lines = -1;
  {
    std::istringstream is(rest);
    if (!(is >> sched_lines) || sched_lines < 0 || sched_lines > (1 << 16))
      return bad(ProbeOutcome::kCorrupt, "bad schedule_lines: " + rest);
  }
  std::ostringstream sched;
  for (std::int64_t i = 0; i < sched_lines; ++i) {
    if (!next_line(body, &pos, &line))
      return bad(ProbeOutcome::kCorrupt, "schedule text shorter than declared");
    sched << line << "\n";
  }
  r.schedule_text = sched.str();

  if (rec != nullptr) *rec = std::move(r);
  return ProbeOutcome::kHit;
}

// --- FindDb --------------------------------------------------------------

FindDb::FindDb(FindbOptions opts) : opts_(std::move(opts)) {
  if (opts_.git_sha.empty()) opts_.git_sha = "";  // explicit: empty = no check
}

void FindDb::note(ProbeOutcome outcome) {
  switch (outcome) {
    case ProbeOutcome::kHit: ++counters_.hits; break;
    case ProbeOutcome::kMiss: ++counters_.misses; break;
    case ProbeOutcome::kLockTimeout: ++counters_.lock_timeouts; break;
    case ProbeOutcome::kIoError: ++counters_.io_errors; break;
    case ProbeOutcome::kBypass: break;
    default: ++counters_.bad_records; break;
  }
}

ProbeResult FindDb::probe(const CacheKey& key, const Deadline* deadline) {
  WallTimer timer;
  ProbeResult res;
  if (opts_.mode == CacheMode::kOff) {
    res.outcome = ProbeOutcome::kBypass;
    res.detail = "cache mode off";
    res.seconds = timer.seconds();
    return res;
  }

  const std::string mem_key = join(opts_.dir, key.stem());
  if (opts_.memory_entries > 0 &&
      memory_tier().get(mem_key, &res.record)) {
    res.outcome = ProbeOutcome::kHit;
    res.from_memory = true;
    ++counters_.hits;
    ++counters_.memory_hits;
    res.seconds = timer.seconds();
    return res;
  }

  res = probe_disk(key, deadline);
  note(res.outcome);
  if (res.outcome == ProbeOutcome::kHit && opts_.memory_entries > 0)
    memory_tier().put(mem_key, res.record, opts_.memory_entries);
  if (outcome_evicts(res.outcome) && opts_.mode == CacheMode::kReadWrite &&
      opts_.evict_bad)
    evict_bad_record(key);
  res.seconds = timer.seconds();
  return res;
}

ProbeResult FindDb::probe_disk(const CacheKey& key, const Deadline* deadline) {
  ProbeResult res;
  auto fail = [&](ProbeOutcome o, const std::string& why) {
    res.outcome = o;
    res.detail = why;
    return res;
  };

  // A probe against a deadline that is already gone must not touch the disk
  // at all — the caller needs every remaining microsecond for the search.
  if (deadline != nullptr && deadline->armed() && deadline->expired())
    return fail(ProbeOutcome::kLockTimeout, "deadline expired before probe");

  const std::string path = join(opts_.dir, key.stem() + kRecordExt);

  // Cheap existence test before paying for the lock.
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return fail(ProbeOutcome::kMiss, "");
    return fail(ProbeOutcome::kIoError, "stat " + path + ": " + errno_str());
  }

  auto lock = storage::FileLock::acquire(join(opts_.dir, kLockFile),
                                         storage::FileLock::Type::kShared,
                                         opts_.lock_timeout_seconds, deadline);
  if (!lock.ok()) {
    if (lock.code() == ErrorCode::kDeadlineExceeded)
      return fail(ProbeOutcome::kLockTimeout, lock.error().what());
    return fail(ProbeOutcome::kIoError, lock.error().what());
  }

  std::string bytes, err;
  try {
    FUSEDP_FAULT_POINT("findb.read");
    const ReadFile rf = read_file(path, &bytes, &err);
    if (rf == ReadFile::kAbsent) return fail(ProbeOutcome::kMiss, "");
    if (rf == ReadFile::kError) return fail(ProbeOutcome::kIoError, err);
    if (rf == ReadFile::kTooBig) return fail(ProbeOutcome::kCorrupt, err);
  } catch (const Error& e) {
    return fail(ProbeOutcome::kIoError,
                std::string("injected fault: ") + e.what());
  }

  std::string detail;
  const ProbeOutcome out = decode_record(bytes, &key, &res.record, &detail);
  if (out != ProbeOutcome::kHit) return fail(out, detail);

  // Build provenance: a schedule found by different code is not trusted,
  // even if the structural fingerprints happen to agree.
  if (!opts_.git_sha.empty() && res.record.git_sha != opts_.git_sha)
    return fail(ProbeOutcome::kStaleSha, "record built at " +
                                             res.record.git_sha + ", this is " +
                                             opts_.git_sha);

  res.outcome = ProbeOutcome::kHit;
  return res;
}

Result<bool> FindDb::store(const CacheKey& key, const CacheRecord& rec,
                           const Deadline* deadline) {
  if (opts_.mode != CacheMode::kReadWrite) {
    ++counters_.store_failures;
    return Result<bool>::failure(ErrorCode::kInvalidArgument,
                                 "FindDb::store: cache mode is not readwrite");
  }
  auto io_fail = [&](const std::string& why) {
    ++counters_.store_failures;
    return Result<bool>::failure(ErrorCode::kIoError, "FindDb::store: " + why);
  };

  std::string err;
  if (!ensure_dir(opts_.dir, &err)) return io_fail(err);

  auto lock = storage::FileLock::acquire(join(opts_.dir, kLockFile),
                                         storage::FileLock::Type::kExclusive,
                                         opts_.lock_timeout_seconds, deadline);
  if (!lock.ok()) {
    ++counters_.store_failures;
    ++counters_.lock_timeouts;
    return Result<bool>::failure(lock.code(), lock.error().what());
  }

  const std::string stem = key.stem();
  const std::string final_path = join(opts_.dir, stem + kRecordExt);
  // pid in the temp name keeps two processes from colliding even before
  // they hold the lock (belt and braces: we do hold it here).
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(seq.fetch_add(1, std::memory_order_relaxed));

  try {
    FUSEDP_FAULT_POINT("findb.write");
  } catch (const Error& e) {
    ++counters_.store_failures;
    return Result<bool>::failure(ErrorCode::kFaultInjected, e.what());
  }

  const std::string bytes = encode_record(key, rec);
  if (static_cast<std::int64_t>(bytes.size()) > kMaxRecordBytes) {
    // Never write a record the reader's size cap would refuse to load.
    ++counters_.store_failures;
    return Result<bool>::failure(
        ErrorCode::kInvalidArgument,
        "FindDb::store: record " + std::to_string(bytes.size()) +
            " bytes exceeds the " + std::to_string(kMaxRecordBytes) +
            "-byte cap");
  }
  const int fd =
      ::open(tmp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return io_fail("open " + tmp_path + ": " + errno_str());
  std::size_t put = 0;
  while (put < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + put, bytes.size() - put);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = "write " + tmp_path + ": " + errno_str();
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return io_fail(why);
    }
    put += static_cast<std::size_t>(n);
  }
  // fsync before rename: after the rename lands, the bytes must be durable,
  // or a crash could leave a named-but-empty record (which CRC would catch,
  // but why create the window).
  if (::fsync(fd) != 0) {
    const std::string why = "fsync " + tmp_path + ": " + errno_str();
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return io_fail(why);
  }
  ::close(fd);

  // The crash window under test: a process killed here leaves a fully
  // written temp file and no (or the previous) record — readers are
  // unaffected and compaction sweeps the debris.
  try {
    FUSEDP_FAULT_POINT("findb.commit");
  } catch (const Error& e) {
    ++counters_.store_failures;
    return Result<bool>::failure(ErrorCode::kFaultInjected, e.what());
  }

  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const std::string why = "rename to " + final_path + ": " + errno_str();
    ::unlink(tmp_path.c_str());
    return io_fail(why);
  }
  fsync_dir(opts_.dir);

  ++counters_.stores;
  if (opts_.memory_entries > 0)
    memory_tier().put(join(opts_.dir, stem), rec, opts_.memory_entries);
  compact_locked();
  return Result<bool>(true);
}

void FindDb::evict_bad_record(const CacheKey& key) {
  auto lock = storage::FileLock::acquire(join(opts_.dir, kLockFile),
                                         storage::FileLock::Type::kExclusive,
                                         opts_.lock_timeout_seconds, nullptr);
  if (!lock.ok()) return;  // best effort; next probe will retry
  if (::unlink(join(opts_.dir, key.stem() + kRecordExt).c_str()) == 0)
    ++counters_.evictions;
  memory_tier().erase(join(opts_.dir, key.stem()));
}

Result<int> FindDb::evict(const CacheKey& key) {
  if (opts_.mode != CacheMode::kReadWrite)
    return Result<int>::failure(ErrorCode::kInvalidArgument,
                                "FindDb::evict: cache mode is not readwrite");
  auto lock = storage::FileLock::acquire(join(opts_.dir, kLockFile),
                                         storage::FileLock::Type::kExclusive,
                                         opts_.lock_timeout_seconds, nullptr);
  if (!lock.ok())
    return Result<int>::failure(lock.code(), lock.error().what());
  int removed = 0;
  if (::unlink(join(opts_.dir, key.stem() + kRecordExt).c_str()) == 0)
    removed = 1;
  else if (errno != ENOENT)
    return Result<int>::failure(ErrorCode::kIoError,
                                "unlink: " + errno_str());
  memory_tier().erase(join(opts_.dir, key.stem()));
  counters_.evictions += removed;
  return Result<int>(removed);
}

Result<int> FindDb::evict_all() {
  if (opts_.mode != CacheMode::kReadWrite)
    return Result<int>::failure(
        ErrorCode::kInvalidArgument,
        "FindDb::evict_all: cache mode is not readwrite");
  auto lock = storage::FileLock::acquire(join(opts_.dir, kLockFile),
                                         storage::FileLock::Type::kExclusive,
                                         opts_.lock_timeout_seconds, nullptr);
  if (!lock.ok())
    return Result<int>::failure(lock.code(), lock.error().what());
  DIR* d = ::opendir(opts_.dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Result<int>(0);
    return Result<int>::failure(ErrorCode::kIoError,
                                "opendir " + opts_.dir + ": " + errno_str());
  }
  int removed = 0;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (!is_record_file(name) && !is_temp_file(name)) continue;
    if (::unlink(join(opts_.dir, name).c_str()) == 0) ++removed;
  }
  ::closedir(d);
  // Scope the memory-tier wipe to this cache directory: the tier is shared
  // process-wide, and sessions on *other* cache_dirs must keep their
  // still-valid hot entries.
  memory_tier().erase_prefix(join(opts_.dir, ""));
  counters_.evictions += removed;
  return Result<int>(removed);
}

Result<std::vector<EntryInfo>> FindDb::scan(bool repair) {
  using Out = std::vector<EntryInfo>;
  if (repair && opts_.mode != CacheMode::kReadWrite)
    return Result<Out>::failure(
        ErrorCode::kInvalidArgument,
        "FindDb::scan: repair requires readwrite mode");
  auto lock = storage::FileLock::acquire(
      join(opts_.dir, kLockFile),
      repair ? storage::FileLock::Type::kExclusive
             : storage::FileLock::Type::kShared,
      opts_.lock_timeout_seconds, nullptr);
  if (!lock.ok())
    return Result<Out>::failure(lock.code(), lock.error().what());

  DIR* d = ::opendir(opts_.dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Result<Out>(Out{});
    return Result<Out>::failure(ErrorCode::kIoError,
                                "opendir " + opts_.dir + ": " + errno_str());
  }
  Out entries;
  std::vector<std::string> debris;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (is_temp_file(name)) {
      debris.push_back(name);
      continue;
    }
    if (!is_record_file(name)) continue;
    EntryInfo info;
    info.file = name;
    CacheKey::parse_stem(name.substr(0, 50), &info.key);
    const std::string path = join(opts_.dir, name);
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0) {
      info.bytes = static_cast<std::int64_t>(st.st_size);
      info.mtime_unix = static_cast<std::int64_t>(st.st_mtime);
    }
    std::string bytes, err, detail;
    const ReadFile rf = read_file(path, &bytes, &err);
    if (rf != ReadFile::kOk) {
      info.problem = "io-error: " + err;
    } else {
      const ProbeOutcome out =
          decode_record(bytes, &info.key, &info.record, &detail);
      if (out == ProbeOutcome::kHit) {
        if (!opts_.git_sha.empty() && info.record.git_sha != opts_.git_sha) {
          info.problem = "stale-sha: record built at " + info.record.git_sha;
        } else {
          info.valid = true;
        }
      } else {
        info.problem = std::string(probe_outcome_name(out)) + ": " + detail;
      }
    }
    entries.push_back(std::move(info));
  }
  ::closedir(d);

  if (repair) {
    for (const std::string& name : debris)
      if (::unlink(join(opts_.dir, name).c_str()) == 0) ++counters_.evictions;
    for (const EntryInfo& info : entries) {
      if (info.valid) continue;
      if (::unlink(join(opts_.dir, info.file).c_str()) == 0) {
        ++counters_.evictions;
        memory_tier().erase(join(opts_.dir, info.file.substr(0, 50)));
      }
    }
  }

  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              return a.file < b.file;
            });
  return Result<Out>(std::move(entries));
}

void FindDb::compact_locked() {
  if (opts_.max_entries <= 0 && opts_.max_bytes <= 0) return;
  DIR* d = ::opendir(opts_.dir.c_str());
  if (d == nullptr) return;
  struct Item {
    std::string name;
    std::int64_t bytes;
    std::int64_t mtime;
  };
  std::vector<Item> items;
  std::int64_t total_bytes = 0;
  const std::int64_t now = static_cast<std::int64_t>(::time(nullptr));
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    const std::string path = join(opts_.dir, name);
    if (is_temp_file(name)) {
      // Temp debris older than a minute is from a dead writer: our own
      // in-flight temps are younger (we hold the exclusive lock) and live
      // writers rename within milliseconds.
      struct stat st{};
      if (::stat(path.c_str(), &st) == 0 &&
          now - static_cast<std::int64_t>(st.st_mtime) > 60)
        ::unlink(path.c_str());
      continue;
    }
    if (!is_record_file(name)) continue;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) continue;
    items.push_back({name, static_cast<std::int64_t>(st.st_size),
                     static_cast<std::int64_t>(st.st_mtime)});
    total_bytes += static_cast<std::int64_t>(st.st_size);
  }
  ::closedir(d);

  // Oldest-first; ties broken by name for determinism.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.name < b.name;
  });
  std::size_t victim = 0;
  std::int64_t count = static_cast<std::int64_t>(items.size());
  while (victim < items.size() &&
         ((opts_.max_entries > 0 && count > opts_.max_entries) ||
          (opts_.max_bytes > 0 && total_bytes > opts_.max_bytes))) {
    const Item& it = items[victim++];
    if (::unlink(join(opts_.dir, it.name).c_str()) == 0) {
      ++counters_.evictions;
      memory_tier().erase(join(opts_.dir, it.name.substr(0, 50)));
    }
    --count;
    total_bytes -= it.bytes;
  }
}

void FindDb::clear_memory_tier() { memory_tier().clear(); }

}  // namespace fusedp::findb
