// Umbrella header: the full FuseDP public API.
//
//   #include "fusedp.hpp"
//
//   fusedp::Pipeline pl("my_pipeline");
//   ... build stages with fusedp::StageBuilder ...
//   fusedp::CostModel model(pl, fusedp::MachineModel::host());
//   fusedp::IncFusion fusion(pl, model);
//   auto outputs = fusedp::run_pipeline(pl, fusion.run(), inputs, {});
#pragma once

#include "cachesim/cache.hpp"        // IWYU pragma: export
#include "cachesim/trace.hpp"        // IWYU pragma: export
#include "fusion/autoschedule.hpp"   // IWYU pragma: export
#include "fusion/dp.hpp"             // IWYU pragma: export
#include "fusion/halide_auto.hpp"    // IWYU pragma: export
#include "fusion/incremental.hpp"    // IWYU pragma: export
#include "fusion/manual.hpp"         // IWYU pragma: export
#include "fusion/polymage_greedy.hpp"// IWYU pragma: export
#include "ir/builder.hpp"            // IWYU pragma: export
#include "ir/printer.hpp"            // IWYU pragma: export
#include "pipelines/pipelines.hpp"   // IWYU pragma: export
#include "runtime/executor.hpp"      // IWYU pragma: export
#include "runtime/plan_printer.hpp"  // IWYU pragma: export
#include "support/image_io.hpp"      // IWYU pragma: export
#include "support/stats.hpp"         // IWYU pragma: export
