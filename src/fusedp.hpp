// Umbrella header: the full FuseDP public API.
//
//   #include "fusedp.hpp"
//
//   fusedp::Pipeline pl("my_pipeline");
//   ... build stages with fusedp::StageBuilder ...
//   auto session = fusedp::Session::open(pl, fusedp::Options{});
//   auto outputs = session.value().run(inputs);
//
// Session (api/session.hpp) is the recommended entry point: it owns the
// schedule -> plan -> execute lifecycle behind one validated Options struct
// and exposes traces and predicted-vs-measured reports.  The lower-level
// pieces (run_pipeline, Executor, auto_schedule, DpFusion, ...) stay
// exported for callers that wire the steps themselves.
#pragma once

#include "api/session.hpp"           // IWYU pragma: export
#include "cachesim/cache.hpp"        // IWYU pragma: export
#include "cachesim/trace.hpp"        // IWYU pragma: export
#include "fusion/autoschedule.hpp"   // IWYU pragma: export
#include "fusion/dp.hpp"             // IWYU pragma: export
#include "fusion/halide_auto.hpp"    // IWYU pragma: export
#include "fusion/incremental.hpp"    // IWYU pragma: export
#include "fusion/manual.hpp"         // IWYU pragma: export
#include "fusion/polymage_greedy.hpp"// IWYU pragma: export
#include "ir/builder.hpp"            // IWYU pragma: export
#include "ir/printer.hpp"            // IWYU pragma: export
#include "pipelines/pipelines.hpp"   // IWYU pragma: export
#include "runtime/executor.hpp"      // IWYU pragma: export
#include "runtime/plan_printer.hpp"  // IWYU pragma: export
#include "support/image_io.hpp"      // IWYU pragma: export
#include "support/stats.hpp"         // IWYU pragma: export
