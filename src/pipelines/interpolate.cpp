// Multiscale Interpolation (49 stages): alpha-premultiply, a 10-level
// downsampling pyramid (2 separable stages per level), a 9-level upsampling
// + interpolation chain (3 stages per level), and a final full-resolution
// reconstruct/normalize stage.
//
// Down/upsampling accesses use scaled AxisMaps (num=2 / den=2), so fusing
// across pyramid levels exercises the paper's scaling+alignment machinery.
#include "pipelines/pipelines.hpp"

#include <algorithm>

namespace fusedp {

namespace {

// Linear 2x upsampling taps of `p` along `dim` (rank-3 [4,H,W] stages):
// 0.5 * (p[dim/2] + p[(dim+1)/2]).
Eh up2(StageBuilder& b, const Stage& p, int dim) {
  auto tap = [&](std::int64_t pre) {
    std::vector<AxisMap> axes;
    for (int d = 0; d < 3; ++d)
      axes.push_back(d == dim ? AxisMap::affine(d, 0, 1, 2, pre)
                              : AxisMap::affine(d));
    return b.load({false, p.id}, std::move(axes));
  };
  return 0.5f * (tap(0) + tap(1));
}

// 1-2-1 2x downsampling taps of `p` along `dim`: (p[2x-1]+2p[2x]+p[2x+1])/4.
Eh down2(StageBuilder& b, const Stage& p, int dim) {
  auto tap = [&](std::int64_t off) {
    std::vector<AxisMap> axes;
    for (int d = 0; d < 3; ++d)
      axes.push_back(d == dim ? AxisMap::affine(d, off, 2, 1)
                              : AxisMap::affine(d));
    return b.load({false, p.id}, std::move(axes));
  };
  return (tap(-1) + 2.0f * tap(0) + tap(1)) / 4.0f;
}

}  // namespace

PipelineSpec make_interpolate(std::int64_t height, std::int64_t width) {
  PipelineSpec spec;
  spec.pipeline = std::make_unique<Pipeline>("interpolate");
  Pipeline& pl = *spec.pipeline;
  constexpr int kLevels = 10;

  const int img = pl.add_input("img", {4, height, width});

  std::int64_t hs[kLevels + 1], ws[kLevels + 1];
  hs[0] = height;
  ws[0] = width;
  for (int l = 1; l <= kLevels; ++l) {
    hs[l] = std::max<std::int64_t>(1, (hs[l - 1] + 1) / 2);
    ws[l] = std::max<std::int64_t>(1, (ws[l - 1] + 1) / 2);
  }

  // Stage 1: alpha-premultiply.
  StageBuilder pm(pl, pl.add_stage("premult", {4, height, width}));
  {
    const Eh c = pm.coord(0);
    const Eh v = pm.in(img, {0, 0, 0});
    const Eh alpha = pm.load({true, img}, {AxisMap::constant(3),
                                           AxisMap::affine(1),
                                           AxisMap::affine(2)});
    pm.define(select(lt(c, 3.0f), v * alpha, alpha));
  }

  // Downsampling pyramid: d[0] = premult; 2 stages per level.
  const Stage* down[kLevels + 1];
  down[0] = &pm.stage();
  for (int l = 1; l <= kLevels; ++l) {
    const std::string suffix = std::to_string(l);
    StageBuilder dx(pl, pl.add_stage("downx" + suffix, {4, hs[l - 1], ws[l]}));
    dx.define(down2(dx, *down[l - 1], 2));
    StageBuilder dy(pl, pl.add_stage("down" + suffix, {4, hs[l], ws[l]}));
    dy.define(down2(dy, dx.stage(), 1));
    down[l] = &dy.stage();
  }

  // Upsampling + interpolation: u[10] = down[10]; 3 stages per level 9..1.
  const Stage* up[kLevels + 1];
  up[kLevels] = down[kLevels];
  for (int l = kLevels - 1; l >= 1; --l) {
    const std::string suffix = std::to_string(l);
    StageBuilder ux(pl, pl.add_stage("upx" + suffix, {4, hs[l + 1], ws[l]}));
    ux.define(up2(ux, *up[l + 1], 2));
    StageBuilder uy(pl, pl.add_stage("upy" + suffix, {4, hs[l], ws[l]}));
    uy.define(up2(uy, ux.stage(), 1));
    StageBuilder it(pl, pl.add_stage("interp" + suffix, {4, hs[l], ws[l]}));
    {
      const Eh d = it.at(*down[l], {0, 0, 0});
      const Eh alpha = it.load({false, down[l]->id},
                               {AxisMap::constant(3), AxisMap::affine(1),
                                AxisMap::affine(2)});
      it.define(d + (1.0f - alpha) * it.at(uy.stage(), {0, 0, 0}));
    }
    up[l] = &it.stage();
  }

  // Stage 49: reconstruct level 0 inline (4-tap bilinear up of interp1) and
  // normalize by the reconstructed alpha.
  StageBuilder out(pl, pl.add_stage("out", {3, height, width}));
  {
    auto up_tap = [&](bool alpha_chan, std::int64_t py, std::int64_t px) {
      std::vector<AxisMap> axes;
      axes.push_back(alpha_chan ? AxisMap::constant(3) : AxisMap::affine(0));
      axes.push_back(AxisMap::affine(1, 0, 1, 2, py));
      axes.push_back(AxisMap::affine(2, 0, 1, 2, px));
      return out.load({false, up[1]->id}, std::move(axes));
    };
    const Eh upc = 0.25f * (up_tap(false, 0, 0) + up_tap(false, 0, 1) +
                            up_tap(false, 1, 0) + up_tap(false, 1, 1));
    const Eh upa = 0.25f * (up_tap(true, 0, 0) + up_tap(true, 0, 1) +
                            up_tap(true, 1, 0) + up_tap(true, 1, 1));
    const Eh pv = out.load({false, pm.stage_id()},
                           {AxisMap::affine(0), AxisMap::affine(1),
                            AxisMap::affine(2)});
    const Eh pa = out.load({false, pm.stage_id()},
                           {AxisMap::constant(3), AxisMap::affine(1),
                            AxisMap::affine(2)});
    const Eh numer = pv + (1.0f - pa) * upc;
    const Eh denom = pa + (1.0f - pa) * upa;
    out.define(numer / max(denom, 1e-6f));
  }

  pl.finalize();
  FUSEDP_CHECK(pl.num_stages() == 49, "interpolate must have 49 stages");

  spec.make_inputs = [height, width] {
    std::vector<Buffer> in;
    in.push_back(make_synthetic_image({4, height, width}, 19));
    return in;
  };
  // Expert schedule: per-level fusion (down pair / up triple), output alone.
  for (int l = 1; l <= kLevels; ++l) {
    spec.manual_groups.push_back(
        {"downx" + std::to_string(l), "down" + std::to_string(l)});
    spec.manual_tiles.push_back({32, 64});
  }
  for (int l = kLevels - 1; l >= 1; --l) {
    spec.manual_groups.push_back({"upx" + std::to_string(l),
                                  "upy" + std::to_string(l),
                                  "interp" + std::to_string(l)});
    spec.manual_tiles.push_back({32, 64});
  }
  return spec;
}

}  // namespace fusedp
