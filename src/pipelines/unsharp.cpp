// Unsharp Mask (4 stages): separable blur, sharpen, threshold mask.
#include "pipelines/pipelines.hpp"

namespace fusedp {

PipelineSpec make_unsharp(std::int64_t height, std::int64_t width) {
  PipelineSpec spec;
  spec.pipeline = std::make_unique<Pipeline>("unsharp");
  Pipeline& pl = *spec.pipeline;

  const int img = pl.add_input("img", {3, height, width});
  const float kWeight = 3.0f;
  const float kThreshold = 0.01f;

  StageBuilder bx(pl, pl.add_stage("blurx", {3, height, width}));
  bx.define((bx.in(img, {0, -1, 0}) + bx.in(img, {0, 0, 0}) +
             bx.in(img, {0, 1, 0})) /
            3.0f);

  StageBuilder by(pl, pl.add_stage("blury", {3, height, width}));
  by.define((by.at(bx.stage(), {0, 0, -1}) + by.at(bx.stage(), {0, 0, 0}) +
             by.at(bx.stage(), {0, 0, 1})) /
            3.0f);

  StageBuilder sh(pl, pl.add_stage("sharpen", {3, height, width}));
  sh.define((1.0f + kWeight) * sh.in(img, {0, 0, 0}) -
            kWeight * sh.at(by.stage(), {0, 0, 0}));

  StageBuilder mk(pl, pl.add_stage("masked", {3, height, width}));
  {
    const Eh orig = mk.in(img, {0, 0, 0});
    const Eh blur = mk.at(by.stage(), {0, 0, 0});
    const Eh sharp = mk.at(sh.stage(), {0, 0, 0});
    mk.define(select(lt(abs(orig - blur), kThreshold), orig, sharp));
  }

  pl.finalize();

  spec.make_inputs = [height, width] {
    std::vector<Buffer> in;
    in.push_back(make_synthetic_image({3, height, width}, 11));
    return in;
  };
  // Halide's expert schedule fuses the whole pipeline and tiles spatially.
  spec.manual_groups = {{"blurx", "blury", "sharpen", "masked"}};
  spec.manual_tiles = {{32, 256}};
  return spec;
}

}  // namespace fusedp
