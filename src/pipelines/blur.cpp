// Paper Figure 1: the two-stage 3x3 separable blur.
#include "pipelines/pipelines.hpp"

namespace fusedp {

PipelineSpec make_blur(std::int64_t height, std::int64_t width) {
  PipelineSpec spec;
  spec.pipeline = std::make_unique<Pipeline>("blur");
  Pipeline& pl = *spec.pipeline;

  const int img = pl.add_input("img", {3, height, width});

  StageBuilder bx(pl, pl.add_stage("blurx", {3, height, width}));
  bx.define((bx.in(img, {0, -1, 0}) + bx.in(img, {0, 0, 0}) +
             bx.in(img, {0, 1, 0})) /
            3.0f);

  StageBuilder by(pl, pl.add_stage("blury", {3, height, width}));
  by.define((by.at(bx.stage(), {0, 0, -1}) + by.at(bx.stage(), {0, 0, 0}) +
             by.at(bx.stage(), {0, 0, 1})) /
            3.0f);

  pl.finalize();

  spec.make_inputs = [height, width] {
    std::vector<Buffer> in;
    in.push_back(make_synthetic_image({3, height, width}, 7));
    return in;
  };
  spec.manual_groups = {{"blurx", "blury"}};
  spec.manual_tiles = {{64, 64}};
  return spec;
}

}  // namespace fusedp
