#include "pipelines/pipelines.hpp"

namespace fusedp {

const std::vector<BenchmarkInfo>& benchmark_list() {
  static const std::vector<BenchmarkInfo> kList = {
      {"unsharp", "Unsharp Mask", "UM", 4, "4256x2832x3"},
      {"harris", "Harris Corner", "HC", 11, "4256x2832"},
      {"bilateral", "Bilateral Grid", "BG", 7, "1536x2560"},
      {"interpolate", "Multiscale Interp.", "MI", 49, "1536x2560x3"},
      {"campipe", "Camera Pipeline", "CP", 32, "2592x1968"},
      {"pyramid", "Pyramid Blend", "PB", 44, "3840x2160x3"},
  };
  return kList;
}

PipelineSpec make_benchmark(const std::string& key, std::int64_t scale) {
  FUSEDP_CHECK_CODE(scale >= 1, ErrorCode::kInvalidArgument,
               "scale must be >= 1");
  // Paper sizes are quoted WxHxc; our extents are (height, width).  Sizes
  // are rounded to multiples of 4 after scaling so that Bayer deinterleave
  // and pyramid levels stay well-formed.
  auto dim = [&](std::int64_t v) {
    return std::max<std::int64_t>(64, v / scale / 4 * 4);
  };
  if (key == "unsharp") return make_unsharp(dim(2832), dim(4256));
  if (key == "harris") return make_harris(dim(2832), dim(4256));
  if (key == "bilateral") return make_bilateral(dim(2560), dim(1536));
  if (key == "interpolate") return make_interpolate(dim(2560), dim(1536));
  if (key == "campipe") return make_campipe(dim(1968), dim(2592));
  if (key == "pyramid") return make_pyramid_blend(dim(2160), dim(3840));
  if (key == "blur") return make_blur(dim(2048), dim(2048));
  FUSEDP_CHECK_CODE(false, ErrorCode::kInvalidArgument,
                    "unknown benchmark: " + key);
  return {};
}

}  // namespace fusedp
