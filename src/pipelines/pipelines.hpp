// The paper's six benchmark pipelines (Table 2) plus the blur example of
// Figure 1.  Stage counts match the paper:
//   Unsharp Mask 4, Harris Corner 11, Bilateral Grid 7 (one reduction),
//   Multiscale Interpolation 49 (10 pyramid levels), Camera Pipeline 32,
//   Pyramid Blending 44 (4-level Laplacian blend).
//
// Inputs are synthesized deterministically (see DESIGN.md).  Each spec also
// carries the benchmark's expert ("H-manual") schedule: the grouping
// structure of the hand-tuned Halide schedules for these apps.
#pragma once

#include <functional>
#include <memory>

#include "fusion/manual.hpp"
#include "ir/builder.hpp"
#include "support/image_io.hpp"

namespace fusedp {

struct PipelineSpec {
  std::unique_ptr<Pipeline> pipeline;
  std::function<std::vector<Buffer>()> make_inputs;
  // Expert schedule: stage-name groups + tile sizes (see grouping_from_names).
  std::vector<std::vector<std::string>> manual_groups;
  std::vector<std::vector<std::int64_t>> manual_tiles;

  Grouping manual_grouping(const CostModel& model) const {
    return grouping_from_names(*pipeline, model, manual_groups, manual_tiles);
  }
};

// Paper Figure 1: the two-stage blur.
PipelineSpec make_blur(std::int64_t height, std::int64_t width);

// Paper benchmarks; default extents are the paper's image sizes.
PipelineSpec make_unsharp(std::int64_t height = 2832, std::int64_t width = 4256);
PipelineSpec make_harris(std::int64_t height = 2832, std::int64_t width = 4256);
PipelineSpec make_bilateral(std::int64_t height = 2560, std::int64_t width = 1536);
PipelineSpec make_interpolate(std::int64_t height = 2560,
                              std::int64_t width = 1536);
PipelineSpec make_campipe(std::int64_t height = 1968, std::int64_t width = 2592);
PipelineSpec make_pyramid_blend(std::int64_t height = 2160,
                                std::int64_t width = 3840);

struct BenchmarkInfo {
  std::string key;        // registry name
  std::string title;      // paper's benchmark name
  std::string abbrev;     // UM / HC / BG / MI / CP / PB
  int paper_stages;       // Table 2 "Stages"
  std::string paper_size; // Table 2 image size
};

// The six paper benchmarks in Table 2/3/4 order.
const std::vector<BenchmarkInfo>& benchmark_list();

// Builds a benchmark by key ("unsharp", "harris", "bilateral",
// "interpolate", "campipe", "pyramid"), dividing the paper's extents by
// `scale` (>= 1).
PipelineSpec make_benchmark(const std::string& key, std::int64_t scale = 1);

}  // namespace fusedp
