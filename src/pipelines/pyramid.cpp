// Pyramid Blending (44 stages): Gaussian pyramids of two images and a mask
// (4 levels, separable), Laplacian bands, per-level mask-weighted blending,
// and pyramid collapse back to full resolution.
#include "pipelines/pipelines.hpp"

#include <algorithm>

namespace fusedp {

namespace {

constexpr int kLevels = 4;

// (p[2x-1] + 2 p[2x] + p[2x+1]) / 4 along `dim` of a rank-`rank` producer.
Eh down2(StageBuilder& b, const Stage& p, int rank, int dim) {
  auto tap = [&](std::int64_t off) {
    std::vector<AxisMap> axes;
    for (int d = 0; d < rank; ++d)
      axes.push_back(d == dim ? AxisMap::affine(d, off, 2, 1)
                              : AxisMap::affine(d));
    return b.load({false, p.id}, std::move(axes));
  };
  return (tap(-1) + 2.0f * tap(0) + tap(1)) / 4.0f;
}

// Bilinear 2x upsample of rank-3 `p` over dims 1 and 2 (4 taps).
Eh up4(StageBuilder& b, const Stage& p) {
  auto tap = [&](std::int64_t py, std::int64_t px) {
    return b.load({false, p.id},
                  {AxisMap::affine(0), AxisMap::affine(1, 0, 1, 2, py),
                   AxisMap::affine(2, 0, 1, 2, px)});
  };
  return 0.25f * (tap(0, 0) + tap(0, 1) + tap(1, 0) + tap(1, 1));
}

// Linear 2x upsample along one dim (2 taps) of rank-3 `p`.
Eh up2(StageBuilder& b, const Stage& p, int dim) {
  auto tap = [&](std::int64_t pre) {
    std::vector<AxisMap> axes;
    for (int d = 0; d < 3; ++d)
      axes.push_back(d == dim ? AxisMap::affine(d, 0, 1, 2, pre)
                              : AxisMap::affine(d));
    return b.load({false, p.id}, std::move(axes));
  };
  return 0.5f * (tap(0) + tap(1));
}

}  // namespace

PipelineSpec make_pyramid_blend(std::int64_t height, std::int64_t width) {
  PipelineSpec spec;
  spec.pipeline = std::make_unique<Pipeline>("pyramid");
  Pipeline& pl = *spec.pipeline;

  const int in_a = pl.add_input("imgA", {3, height, width});
  const int in_b = pl.add_input("imgB", {3, height, width});
  const int in_m = pl.add_input("mask", {height, width});

  std::int64_t hs[kLevels + 1], ws[kLevels + 1];
  hs[0] = height;
  ws[0] = width;
  for (int l = 1; l <= kLevels; ++l) {
    hs[l] = std::max<std::int64_t>(1, (hs[l - 1] + 1) / 2);
    ws[l] = std::max<std::int64_t>(1, (ws[l - 1] + 1) / 2);
  }

  // Gaussian pyramids (24 stages).  Level 0 is the input itself.
  const Stage* ga[kLevels + 1] = {nullptr};
  const Stage* gb[kLevels + 1] = {nullptr};
  const Stage* gm[kLevels + 1] = {nullptr};
  auto build_pyr3 = [&](const char* prefix, int input,
                        const Stage** levels) {
    for (int l = 1; l <= kLevels; ++l) {
      const std::string suffix = std::to_string(l);
      StageBuilder gx(pl, pl.add_stage(std::string(prefix) + "x" + suffix,
                                       {3, hs[l - 1], ws[l]}));
      if (l == 1) {
        auto tap = [&](std::int64_t off) {
          return gx.load({true, input},
                         {AxisMap::affine(0), AxisMap::affine(1),
                          AxisMap::affine(2, off, 2, 1)});
        };
        gx.define((tap(-1) + 2.0f * tap(0) + tap(1)) / 4.0f);
      } else {
        gx.define(down2(gx, *levels[l - 1], 3, 2));
      }
      StageBuilder gy(pl, pl.add_stage(std::string(prefix) + suffix,
                                       {3, hs[l], ws[l]}));
      gy.define(down2(gy, gx.stage(), 3, 1));
      levels[l] = &gy.stage();
    }
  };
  build_pyr3("ga", in_a, ga);
  build_pyr3("gb", in_b, gb);
  for (int l = 1; l <= kLevels; ++l) {
    const std::string suffix = std::to_string(l);
    StageBuilder gx(pl, pl.add_stage("gmx" + suffix, {hs[l - 1], ws[l]}));
    if (l == 1) {
      auto tap = [&](std::int64_t off) {
        return gx.load({true, in_m},
                       {AxisMap::affine(0), AxisMap::affine(1, off, 2, 1)});
      };
      gx.define((tap(-1) + 2.0f * tap(0) + tap(1)) / 4.0f);
    } else {
      gx.define(down2(gx, *gm[l - 1], 2, 1));
    }
    StageBuilder gy(pl, pl.add_stage("gm" + suffix, {hs[l], ws[l]}));
    gy.define(down2(gy, gx.stage(), 2, 0));
    gm[l] = &gy.stage();
  }

  // Laplacian bands for A and B (8 stages): lap_l = g_l - up(g_{l+1}).
  const Stage* lap_a[kLevels];
  const Stage* lap_b[kLevels];
  auto build_laps = [&](const char* prefix, int input, const Stage** g,
                        const Stage** laps) {
    for (int l = 0; l < kLevels; ++l) {
      StageBuilder lp(pl, pl.add_stage(std::string(prefix) + std::to_string(l),
                                       {3, hs[l], ws[l]}));
      const Eh fine = l == 0 ? lp.in(input, {0, 0, 0})
                             : lp.at(*g[l], {0, 0, 0});
      lp.define(fine - up4(lp, *g[l + 1]));
      laps[l] = &lp.stage();
    }
  };
  build_laps("lapA", in_a, ga, lap_a);
  build_laps("lapB", in_b, gb, lap_b);

  // Per-level blends (5 stages including the coarsest Gaussian blend).
  const Stage* blend[kLevels + 1];
  for (int l = 0; l < kLevels; ++l) {
    StageBuilder bl(pl, pl.add_stage("blend" + std::to_string(l),
                                     {3, hs[l], ws[l]}));
    const Eh m = l == 0 ? bl.in(in_m, {0, 0}) : bl.at(*gm[l], {0, 0});
    bl.define(bl.at(*lap_a[l], {0, 0, 0}) * m +
              bl.at(*lap_b[l], {0, 0, 0}) * (1.0f - m));
    blend[l] = &bl.stage();
  }
  {
    StageBuilder bl(pl, pl.add_stage("blend4", {3, hs[kLevels], ws[kLevels]}));
    const Eh m = bl.at(*gm[kLevels], {0, 0});
    bl.define(bl.at(*ga[kLevels], {0, 0, 0}) * m +
              bl.at(*gb[kLevels], {0, 0, 0}) * (1.0f - m));
    blend[kLevels] = &bl.stage();
  }

  // Collapse (7 stages): col_l = blend_l + up(col_{l+1}); col_4 = blend4.
  const Stage* col = blend[kLevels];
  for (int l = kLevels - 1; l >= 1; --l) {
    const std::string suffix = std::to_string(l);
    StageBuilder ux(pl,
                    pl.add_stage("colupx" + suffix, {3, hs[l + 1], ws[l]}));
    ux.define(up2(ux, *col, 2));
    StageBuilder cl(pl, pl.add_stage("col" + suffix, {3, hs[l], ws[l]}));
    cl.define(cl.at(*blend[l], {0, 0, 0}) + up2(cl, ux.stage(), 1));
    col = &cl.stage();
  }
  StageBuilder out(pl, pl.add_stage("out", {3, height, width}));
  out.define(out.at(*blend[0], {0, 0, 0}) + up4(out, *col));

  pl.finalize();
  FUSEDP_CHECK(pl.num_stages() == 44, "pyramid blend must have 44 stages");

  spec.make_inputs = [height, width] {
    std::vector<Buffer> in;
    in.push_back(make_synthetic_image({3, height, width}, 29));
    in.push_back(make_synthetic_image({3, height, width}, 31));
    in.push_back(make_blend_mask(height, width));
    return in;
  };
  // Expert schedule: separable pyramid stages fused per level; per-level
  // Laplacian+blend fused; the collapse chain fused with the output.
  for (int l = 1; l <= kLevels; ++l) {
    const std::string s = std::to_string(l);
    spec.manual_groups.push_back({"gax" + s, "ga" + s});
    spec.manual_tiles.push_back({32, 64});
    spec.manual_groups.push_back({"gbx" + s, "gb" + s});
    spec.manual_tiles.push_back({32, 64});
    spec.manual_groups.push_back({"gmx" + s, "gm" + s});
    spec.manual_tiles.push_back({32, 64});
  }
  for (int l = 0; l < kLevels; ++l) {
    const std::string s = std::to_string(l);
    spec.manual_groups.push_back({"lapA" + s, "lapB" + s, "blend" + s});
    spec.manual_tiles.push_back({32, 128});
  }
  return spec;
}

}  // namespace fusedp
