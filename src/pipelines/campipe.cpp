// Camera Pipeline (32 stages): hot-pixel suppression, Bayer deinterleave
// (2x downsampling with phase offsets), demosaic (half-resolution channel
// interpolations + parity-based full-resolution interleave), color
// correction, a tone-curve LUT applied via data-dependent gather, sharpening,
// and chroma denoise in YCbCr.
//
// The stage mix deliberately matches the paper's characterization:
// "stencil-like, interleaved, and data-dependent access patterns".
#include "pipelines/pipelines.hpp"

namespace fusedp {

namespace {

// Parity of a coordinate as a 0/1 float: c - 2*floor(c/2).  Exact for
// coordinates below 2^23.
Eh parity(StageBuilder& b, int dim) {
  const Eh c = b.coord(dim);
  return c - 2.0f * floor(c * 0.5f);
}

// Load of half-resolution producer `p` at (x/2 + ox, y/2 + oy).
Eh half_tap(StageBuilder& b, const Stage& p, std::int64_t ox, std::int64_t oy) {
  return b.load({false, p.id}, {AxisMap::affine(0, ox, 1, 2),
                                AxisMap::affine(1, oy, 1, 2)});
}

Eh blur121x(StageBuilder& b, const Stage& p) {
  return (b.at(p, {0, -1, 0}) + 2.0f * b.at(p, {0, 0, 0}) +
          b.at(p, {0, 1, 0})) /
         4.0f;
}

Eh blur121y(StageBuilder& b, const Stage& p) {
  return (b.at(p, {0, 0, -1}) + 2.0f * b.at(p, {0, 0, 0}) +
          b.at(p, {0, 0, 1})) /
         4.0f;
}

}  // namespace

PipelineSpec make_campipe(std::int64_t height, std::int64_t width) {
  PipelineSpec spec;
  spec.pipeline = std::make_unique<Pipeline>("campipe");
  Pipeline& pl = *spec.pipeline;

  const int raw = pl.add_input("raw", {height, width});
  const std::int64_t h2 = height / 2;
  const std::int64_t w2 = width / 2;

  // 1: hot-pixel suppression.
  StageBuilder hp(pl, pl.add_stage("hotpix", {height, width}));
  {
    const Eh v = hp.in(raw, {0, 0});
    const Eh mx = max(max(hp.in(raw, {-2, 0}), hp.in(raw, {2, 0})),
                      max(hp.in(raw, {0, -2}), hp.in(raw, {0, 2})));
    hp.define(min(v, mx));
  }
  const Stage& hot = hp.stage();

  // 2-5: deinterleave the Bayer mosaic (GR R / B GB).
  auto deinter = [&](const std::string& name, std::int64_t px,
                     std::int64_t py) -> const Stage& {
    StageBuilder b(pl, pl.add_stage(name, {h2, w2}));
    b.define(b.load({false, hot.id}, {AxisMap::affine(0, px, 2, 1),
                                      AxisMap::affine(1, py, 2, 1)}));
    return b.stage();
  };
  const Stage& d_gr = deinter("d_gr", 0, 0);
  const Stage& d_r = deinter("d_r", 0, 1);
  const Stage& d_b = deinter("d_b", 1, 0);
  const Stage& d_gb = deinter("d_gb", 1, 1);

  // 6-13: half-resolution demosaic interpolations.
  StageBuilder gr_(pl, pl.add_stage("g_r", {h2, w2}));
  gr_.define((gr_.at(d_gr, {0, 0}) + gr_.at(d_gr, {0, 1}) +
              gr_.at(d_gb, {0, 0}) + gr_.at(d_gb, {-1, 0})) /
             4.0f);
  const Stage& g_r = gr_.stage();

  StageBuilder gb_(pl, pl.add_stage("g_b", {h2, w2}));
  gb_.define((gb_.at(d_gb, {0, 0}) + gb_.at(d_gb, {0, -1}) +
              gb_.at(d_gr, {0, 0}) + gb_.at(d_gr, {1, 0})) /
             4.0f);
  const Stage& g_b = gb_.stage();

  StageBuilder rgr(pl, pl.add_stage("r_gr", {h2, w2}));
  rgr.define((rgr.at(d_r, {0, -1}) + rgr.at(d_r, {0, 0})) * 0.5f +
             0.25f * (2.0f * rgr.at(d_gr, {0, 0}) - rgr.at(g_r, {0, -1}) -
                      rgr.at(g_r, {0, 0})));
  StageBuilder bgr(pl, pl.add_stage("b_gr", {h2, w2}));
  bgr.define((bgr.at(d_b, {-1, 0}) + bgr.at(d_b, {0, 0})) * 0.5f +
             0.25f * (2.0f * bgr.at(d_gr, {0, 0}) - bgr.at(g_b, {-1, 0}) -
                      bgr.at(g_b, {0, 0})));
  StageBuilder rgb_(pl, pl.add_stage("r_gb", {h2, w2}));
  rgb_.define((rgb_.at(d_r, {0, 0}) + rgb_.at(d_r, {1, 0})) * 0.5f +
              0.25f * (2.0f * rgb_.at(d_gb, {0, 0}) - rgb_.at(g_r, {0, 0}) -
                       rgb_.at(g_r, {1, 0})));
  StageBuilder bgb(pl, pl.add_stage("b_gb", {h2, w2}));
  bgb.define((bgb.at(d_b, {0, 0}) + bgb.at(d_b, {0, 1})) * 0.5f +
             0.25f * (2.0f * bgb.at(d_gb, {0, 0}) - bgb.at(g_b, {0, 0}) -
                      bgb.at(g_b, {0, 1})));
  StageBuilder rb_(pl, pl.add_stage("r_b", {h2, w2}));
  rb_.define((rb_.at(d_r, {0, 0}) + rb_.at(d_r, {1, -1}) +
              rb_.at(d_r, {0, -1}) + rb_.at(d_r, {1, 0})) /
             4.0f);
  StageBuilder br_(pl, pl.add_stage("b_r", {h2, w2}));
  br_.define((br_.at(d_b, {0, 0}) + br_.at(d_b, {-1, 1}) +
              br_.at(d_b, {0, 1}) + br_.at(d_b, {-1, 0})) /
             4.0f);

  // 14-16: full-resolution channel planes, selected by pixel parity.
  auto interleave = [&](const std::string& name, const Stage& ee,
                        const Stage& eo, const Stage& oe,
                        const Stage& oo) -> const Stage& {
    StageBuilder b(pl, pl.add_stage(name, {height, width}));
    const Eh px = parity(b, 0);
    const Eh py = parity(b, 1);
    const Eh even_x = select(eq(py, 0.0f), half_tap(b, ee, 0, 0),
                             half_tap(b, eo, 0, 0));
    const Eh odd_x = select(eq(py, 0.0f), half_tap(b, oe, 0, 0),
                            half_tap(b, oo, 0, 0));
    b.define(select(eq(px, 0.0f), even_x, odd_x));
    return b.stage();
  };
  const Stage& r_full =
      interleave("r_full", rgr.stage(), d_r, rb_.stage(), rgb_.stage());
  const Stage& g_full = interleave("g_full", d_gr, g_r, g_b, d_gb);
  const Stage& b_full =
      interleave("b_full", bgr.stage(), br_.stage(), d_b, bgb.stage());

  // 17: interleave into one [3,H,W] image.
  StageBuilder dm(pl, pl.add_stage("demosaiced", {3, height, width}));
  {
    const Eh c = dm.coord(0);
    dm.define(select(eq(c, 0.0f), dm.at(r_full, {0, 0}),
                     select(eq(c, 1.0f), dm.at(g_full, {0, 0}),
                            dm.at(b_full, {0, 0}))));
  }

  // 18: color-correction matrix.
  StageBuilder cc(pl, pl.add_stage("corrected", {3, height, width}));
  {
    auto chan = [&](std::int64_t k) {
      return cc.load({false, dm.stage_id()},
                     {AxisMap::constant(k), AxisMap::affine(1),
                      AxisMap::affine(2)});
    };
    const Eh r = chan(0), g = chan(1), b = chan(2);
    const Eh c = cc.coord(0);
    const Eh row0 = 1.54f * r - 0.43f * g - 0.11f * b;
    const Eh row1 = -0.28f * r + 1.39f * g - 0.11f * b;
    const Eh row2 = -0.04f * r - 0.52f * g + 1.56f * b;
    cc.define(select(eq(c, 0.0f), row0, select(eq(c, 1.0f), row1, row2)));
  }

  // 19: tone curve LUT (rank-1 stage).
  StageBuilder lut(pl, pl.add_stage("curve", {256}));
  lut.define(pow(lut.coord(0) * (1.0f / 255.0f), 1.0f / 2.2f));

  // 20: apply the curve via data-dependent gather.
  StageBuilder cv(pl, pl.add_stage("curved", {3, height, width}));
  {
    const Eh v = cv.at(cc.stage(), {0, 0, 0});
    const Eh idx = clamp(v * 255.0f, 0.0f, 255.0f);
    cv.define(cv.load({false, lut.stage_id()}, {AxisMap::dynamic(idx.r)}));
  }

  // 21-23: sharpen.
  StageBuilder shx(pl, pl.add_stage("sharpen_x", {3, height, width}));
  shx.define(blur121x(shx, cv.stage()));
  StageBuilder shy(pl, pl.add_stage("sharpen_y", {3, height, width}));
  shy.define(blur121y(shy, shx.stage()));
  StageBuilder shp(pl, pl.add_stage("sharpened", {3, height, width}));
  shp.define(shp.at(cv.stage(), {0, 0, 0}) +
             0.6f * (shp.at(cv.stage(), {0, 0, 0}) -
                     shp.at(shy.stage(), {0, 0, 0})));

  // 24-26: YCbCr split.
  auto chan_of = [&](StageBuilder& b, const Stage& p, std::int64_t k) {
    return b.load({false, p.id}, {AxisMap::constant(k), AxisMap::affine(0),
                                  AxisMap::affine(1)});
  };
  StageBuilder ly(pl, pl.add_stage("luma", {height, width}));
  ly.define(0.299f * chan_of(ly, shp.stage(), 0) +
            0.587f * chan_of(ly, shp.stage(), 1) +
            0.114f * chan_of(ly, shp.stage(), 2));
  StageBuilder cb(pl, pl.add_stage("cb", {height, width}));
  cb.define((chan_of(cb, shp.stage(), 2) - cb.at(ly.stage(), {0, 0})) *
            0.564f);
  StageBuilder cr(pl, pl.add_stage("cr", {height, width}));
  cr.define((chan_of(cr, shp.stage(), 0) - cr.at(ly.stage(), {0, 0})) *
            0.713f);

  // 27-30: chroma denoise (1-2-1 blurs).
  auto blur2d = [&](const std::string& name, const Stage& p, bool along_y)
      -> const Stage& {
    StageBuilder b(pl, pl.add_stage(name, {height, width}));
    if (along_y)
      b.define((b.at(p, {0, -1}) + 2.0f * b.at(p, {0, 0}) + b.at(p, {0, 1})) /
               4.0f);
    else
      b.define((b.at(p, {-1, 0}) + 2.0f * b.at(p, {0, 0}) + b.at(p, {1, 0})) /
               4.0f);
    return b.stage();
  };
  const Stage& cb_bx = blur2d("cb_blur_x", cb.stage(), false);
  const Stage& cb_by = blur2d("cb_blur_y", cb_bx, true);
  const Stage& cr_bx = blur2d("cr_blur_x", cr.stage(), false);
  const Stage& cr_by = blur2d("cr_blur_y", cr_bx, true);

  // 31: recombine YCbCr -> RGB.
  StageBuilder rc(pl, pl.add_stage("recombined", {3, height, width}));
  {
    const Eh c = rc.coord(0);
    const Eh y = rc.at(ly.stage(), {0, 0});
    const Eh cbv = rc.at(cb_by, {0, 0});
    const Eh crv = rc.at(cr_by, {0, 0});
    const Eh r = y + 1.403f * crv;
    const Eh g = y - 0.344f * cbv - 0.714f * crv;
    const Eh b = y + 1.773f * cbv;
    rc.define(select(eq(c, 0.0f), r, select(eq(c, 1.0f), g, b)));
  }

  // 32: final contrast/brightness and clamp.
  StageBuilder fin(pl, pl.add_stage("final", {3, height, width}));
  fin.define(clamp(fin.at(rc.stage(), {0, 0, 0}) * 1.1f - 0.02f, 0.0f, 1.0f));

  pl.finalize();
  FUSEDP_CHECK(pl.num_stages() == 32, "campipe must have 32 stages");

  spec.make_inputs = [height, width] {
    std::vector<Buffer> in;
    in.push_back(make_synthetic_image({height, width}, 23));
    return in;
  };
  // Expert schedule: everything up to color correction fused in one tiled
  // group (the Halide schedule computes the demosaic chain per output tile);
  // the LUT stands alone; curved+sharpen fused; the YCbCr chain fused.
  spec.manual_groups = {
      {"hotpix", "d_gr", "d_r", "d_b", "d_gb", "g_r", "g_b", "r_gr", "b_gr",
       "r_gb", "b_gb", "r_b", "b_r", "r_full", "g_full", "b_full",
       "demosaiced", "corrected"},
      {"curve"},
      {"curved", "sharpen_x", "sharpen_y", "sharpened"},
      {"luma", "cb", "cr", "cb_blur_x", "cb_blur_y", "cr_blur_x", "cr_blur_y",
       "recombined", "final"}};
  spec.manual_tiles = {{32, 64}, {}, {32, 256}, {32, 256}};
  return spec;
}

}  // namespace fusedp
