// Bilateral Grid (7 stages): grid construction (a scatter reduction), three
// 1-2-1 blurs over the grid (z, y, x), and a trilinear slice back to image
// resolution (data-dependent access along z).
//
// The reduction accumulates each 8x8 input block into its own grid cell, so
// the result is deterministic for any thread count (cells are independent).
// PolyMage does not fuse reductions (paper Section 6.2), so `grid` always
// runs as its own group; the slice stages cannot fuse with the blurs either
// (dynamic z index => non-constant dependence).
#include "pipelines/pipelines.hpp"

#include <algorithm>
#include <cmath>

namespace fusedp {

namespace {

constexpr std::int64_t kSigmaS = 8;   // spatial bin size
constexpr float kInvSigmaR = 10.0f;   // intensity bins per unit
constexpr std::int64_t kZ = 12;       // intensity bins (0..11 after clamp)

// Grid construction, vectorized: instead of two scattered read-modify-write
// accumulations per pixel (whose 4-D offset arithmetic and data-dependent
// scatter defeat SIMD), each block row (gy) privatizes a stripe of
// [gw x kZ] (sum, count) bins.  Per image row the intensity bins are
// computed by one vectorizable pass, the bins are accumulated scalar (they
// stay L1-resident), and the stripe merges into the grid once per block
// row.  Bit-identical to the naive scatter: within every (gy, gx, z) cell
// the pixels accumulate in the same y-then-x order starting from +0.0f, and
// the grid is zero-filled on entry, so the final merge adds each chain's
// total to exactly 0.0f.  Cells are still independent across gy, so the
// result is deterministic for any thread count.
void grid_reduction(const ReductionCtx& ctx) {
  const BufferView& in = ctx.inputs[0];
  const BufferView& out = ctx.out;
  const std::int64_t gh = out.extent[2];
  const std::int64_t gw = out.extent[3];
  const std::int64_t h = in.extent[0];
  const std::int64_t w = in.extent[1];
  const std::size_t nbins = static_cast<std::size_t>(gw * kZ);
#ifdef _OPENMP
#pragma omp parallel num_threads(ctx.num_threads)
#endif
  {
    std::vector<float> sums(nbins), cnts(nbins);
    std::vector<std::int32_t> zrow(static_cast<std::size_t>(w));
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (std::int64_t gy = 0; gy < gh; ++gy) {
      std::fill(sums.begin(), sums.end(), 0.0f);
      std::fill(cnts.begin(), cnts.end(), 0.0f);
      const std::int64_t y1 = std::min((gy + 1) * kSigmaS, h);
      for (std::int64_t y = gy * kSigmaS; y < y1; ++y) {
        const std::int64_t yx0[2] = {y, 0};
        const float* prow = in.data + in.offset_of(yx0);
        const std::int64_t xs = in.stride[1];
        std::int32_t* zr = zrow.data();
#ifdef _OPENMP
#pragma omp simd
#endif
        for (std::int64_t x = 0; x < w; ++x) {
          std::int64_t z = static_cast<std::int64_t>(
              std::floor(prow[x * xs] * kInvSigmaR + 0.5f));
          z = std::clamp<std::int64_t>(z, 0, kZ - 1);
          zr[x] = static_cast<std::int32_t>(z);
        }
        for (std::int64_t x = 0; x < w; ++x) {
          const std::size_t bin =
              static_cast<std::size_t>((x / kSigmaS) * kZ + zr[x]);
          sums[bin] += prow[x * xs];
          cnts[bin] += 1.0f;
        }
      }
      for (std::int64_t z = 0; z < kZ; ++z) {
        const std::int64_t cs0[4] = {0, z, gy, 0};
        const std::int64_t cc0[4] = {1, z, gy, 0};
        float* ps = out.data + out.offset_of(cs0);
        float* pc = out.data + out.offset_of(cc0);
        const std::int64_t gs = out.stride[3];
        for (std::int64_t gx = 0; gx < gw; ++gx) {
          ps[gx * gs] += sums[static_cast<std::size_t>(gx * kZ + z)];
          pc[gx * gs] += cnts[static_cast<std::size_t>(gx * kZ + z)];
        }
      }
    }
  }
}

// 1-2-1 blur of 4-D grid `p` along dimension `dim` (1=z, 2=y, 3=x).
Eh blur121(StageBuilder& b, const Stage& p, int dim) {
  auto tap = [&](std::int64_t off) {
    std::vector<AxisMap> axes;
    for (int d = 0; d < 4; ++d)
      axes.push_back(AxisMap::affine(d, d == dim ? off : 0));
    return b.load({false, p.id}, std::move(axes));
  };
  return (tap(-1) + 2.0f * tap(0) + tap(1)) / 4.0f;
}

// Trilinear slice of grid channel `chan` at (I(y,x)*kInvSigmaR, y/8, x/8).
Eh slice(StageBuilder& b, int input_img, const Stage& grid, std::int64_t chan) {
  const Eh intensity = b.in(input_img, {0, 0});
  const Eh zf = intensity * kInvSigmaR;
  const Eh zi = floor(zf);
  const Eh wz = zf - zi;
  // Fractional spatial positions within the coarse grid.
  const Eh fy = b.coord(0) * (1.0f / kSigmaS);
  const Eh wy = fy - floor(fy);
  const Eh fx = b.coord(1) * (1.0f / kSigmaS);
  const Eh wx = fx - floor(fx);

  Eh acc = b.cst(0.0f);
  for (int zo = 0; zo <= 1; ++zo) {
    const Eh zidx = zo ? zi + 1.0f : zi;
    for (int yo = 0; yo <= 1; ++yo) {
      for (int xo = 0; xo <= 1; ++xo) {
        std::vector<AxisMap> axes;
        axes.push_back(AxisMap::constant(chan));
        axes.push_back(AxisMap::dynamic(zidx.r));
        axes.push_back(AxisMap::affine(0, yo, 1, kSigmaS));
        axes.push_back(AxisMap::affine(1, xo, 1, kSigmaS));
        const Eh tap = b.load({false, grid.id}, std::move(axes));
        Eh w = zo ? wz : 1.0f - wz;
        w = w * (yo ? wy : 1.0f - wy);
        w = w * (xo ? wx : 1.0f - wx);
        acc = acc + w * tap;
      }
    }
  }
  return acc;
}

}  // namespace

PipelineSpec make_bilateral(std::int64_t height, std::int64_t width) {
  PipelineSpec spec;
  spec.pipeline = std::make_unique<Pipeline>("bilateral");
  Pipeline& pl = *spec.pipeline;

  const int img = pl.add_input("img", {height, width});
  const std::int64_t gh = ceil_div(height, kSigmaS);
  const std::int64_t gw = ceil_div(width, kSigmaS);

  Stage& grid = pl.add_reduction("grid", {2, kZ, gh, gw});
  // Declared read (graph edge + live-in estimate): each grid cell gathers an
  // 8x8 input block.
  grid.loads.push_back(
      {{true, img},
       {AxisMap::affine(2, 0, static_cast<int>(kSigmaS)),
        AxisMap::affine(3, 0, static_cast<int>(kSigmaS))}});
  grid.reduction = grid_reduction;

  StageBuilder bz(pl, pl.add_stage("blurz", {2, kZ, gh, gw}));
  bz.define(blur121(bz, grid, 1));
  StageBuilder bgy(pl, pl.add_stage("blury", {2, kZ, gh, gw}));
  bgy.define(blur121(bgy, bz.stage(), 2));
  StageBuilder bgx(pl, pl.add_stage("blurx", {2, kZ, gh, gw}));
  bgx.define(blur121(bgx, bgy.stage(), 3));

  StageBuilder num(pl, pl.add_stage("slice_num", {height, width}));
  num.define(slice(num, img, bgx.stage(), 0));
  StageBuilder den(pl, pl.add_stage("slice_den", {height, width}));
  den.define(slice(den, img, bgx.stage(), 1));

  StageBuilder out(pl, pl.add_stage("out", {height, width}));
  out.define(out.at(num.stage(), {0, 0}) /
             max(out.at(den.stage(), {0, 0}), 1e-6f));

  pl.finalize();

  spec.make_inputs = [height, width] {
    std::vector<Buffer> in;
    in.push_back(make_synthetic_image({height, width}, 17));
    return in;
  };
  // Expert schedule: blurs fused; slice stages fused with the output.  (The
  // Halide schedule additionally fuses the histogram into the blurs, which
  // this runtime — like PolyMage — does not support for reductions.)
  spec.manual_groups = {{"blurz", "blury", "blurx"},
                        {"slice_num", "slice_den", "out"}};
  spec.manual_tiles = {{}, {64, 256}};
  return spec;
}

}  // namespace fusedp
