// Harris Corner Detection (11 stages): grayscale, Sobel gradients, products,
// 3x3 box sums, determinant/response.
#include "pipelines/pipelines.hpp"

namespace fusedp {

namespace {

// 3x3 box sum of `p` centered at (x, y).
Eh box3x3(StageBuilder& b, const Stage& p) {
  Eh acc = b.at(p, {-1, -1});
  for (int dx = -1; dx <= 1; ++dx)
    for (int dy = -1; dy <= 1; ++dy) {
      if (dx == -1 && dy == -1) continue;
      acc = acc + b.at(p, {dx, dy});
    }
  return acc;
}

}  // namespace

PipelineSpec make_harris(std::int64_t height, std::int64_t width) {
  PipelineSpec spec;
  spec.pipeline = std::make_unique<Pipeline>("harris");
  Pipeline& pl = *spec.pipeline;

  const int img = pl.add_input("img", {3, height, width});

  StageBuilder gray(pl, pl.add_stage("gray", {height, width}));
  {
    auto chan = [&](std::int64_t c) {
      return gray.load({true, img},
                       {AxisMap::constant(c), AxisMap::affine(0),
                        AxisMap::affine(1)});
    };
    gray.define(0.299f * chan(0) + 0.587f * chan(1) + 0.114f * chan(2));
  }
  const Stage& g = gray.stage();

  StageBuilder ix(pl, pl.add_stage("Ix", {height, width}));
  ix.define((ix.at(g, {-1, -1}) * -1.0f + ix.at(g, {-1, 1}) +
             ix.at(g, {0, -1}) * -2.0f + ix.at(g, {0, 1}) * 2.0f +
             ix.at(g, {1, -1}) * -1.0f + ix.at(g, {1, 1})) /
            12.0f);

  StageBuilder iy(pl, pl.add_stage("Iy", {height, width}));
  iy.define((iy.at(g, {-1, -1}) * -1.0f + iy.at(g, {1, -1}) +
             iy.at(g, {-1, 0}) * -2.0f + iy.at(g, {1, 0}) * 2.0f +
             iy.at(g, {-1, 1}) * -1.0f + iy.at(g, {1, 1})) /
            12.0f);

  StageBuilder ixx(pl, pl.add_stage("Ixx", {height, width}));
  ixx.define(ixx.at(ix.stage(), {0, 0}) * ixx.at(ix.stage(), {0, 0}));
  StageBuilder iyy(pl, pl.add_stage("Iyy", {height, width}));
  iyy.define(iyy.at(iy.stage(), {0, 0}) * iyy.at(iy.stage(), {0, 0}));
  StageBuilder ixy(pl, pl.add_stage("Ixy", {height, width}));
  ixy.define(ixy.at(ix.stage(), {0, 0}) * ixy.at(iy.stage(), {0, 0}));

  StageBuilder sxx(pl, pl.add_stage("Sxx", {height, width}));
  sxx.define(box3x3(sxx, ixx.stage()));
  StageBuilder syy(pl, pl.add_stage("Syy", {height, width}));
  syy.define(box3x3(syy, iyy.stage()));
  StageBuilder sxy(pl, pl.add_stage("Sxy", {height, width}));
  sxy.define(box3x3(sxy, ixy.stage()));

  StageBuilder det(pl, pl.add_stage("det", {height, width}));
  det.define(det.at(sxx.stage(), {0, 0}) * det.at(syy.stage(), {0, 0}) -
             det.at(sxy.stage(), {0, 0}) * det.at(sxy.stage(), {0, 0}));

  StageBuilder resp(pl, pl.add_stage("harris", {height, width}));
  {
    const Eh trace =
        resp.at(sxx.stage(), {0, 0}) + resp.at(syy.stage(), {0, 0});
    resp.define(resp.at(det.stage(), {0, 0}) - 0.04f * trace * trace);
  }

  pl.finalize();

  spec.make_inputs = [height, width] {
    std::vector<Buffer> in;
    in.push_back(make_synthetic_image({3, height, width}, 13));
    return in;
  };
  // Expert schedule: full fusion with spatial tiling (the Halide schedule
  // computes gray/Ix/Iy at tile granularity inside a tiled response loop).
  spec.manual_groups = {{"gray", "Ix", "Iy", "Ixx", "Iyy", "Ixy", "Sxx",
                         "Syy", "Sxy", "det", "harris"}};
  spec.manual_tiles = {{64, 256}};
  return spec;
}

}  // namespace fusedp
