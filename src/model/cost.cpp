#include "model/cost.hpp"

#include <algorithm>
#include <cmath>

#include "support/checked.hpp"

namespace fusedp {

namespace {

std::int64_t round_up_to_multiple(std::int64_t v, std::int64_t g) {
  return ceil_div(v, g) * g;
}

}  // namespace

std::vector<std::int64_t> CostModel::compute_tile_sizes(
    const ReuseInfo& reuse, const AlignResult& align,
    std::int64_t tile_footprint, std::int64_t num_buffers,
    std::int64_t innermost_tile) {
  const int n = align.num_classes;
  FUSEDP_CHECK(n >= 1, "group has no dimensions");
  std::vector<std::int64_t> ts(static_cast<std::size_t>(n), 1);
  const auto& sizes = reuse.dim_sizes;
  const auto& gran = align.class_granularity;

  const double tile_vol = std::max<double>(
      1.0, static_cast<double>(tile_footprint) /
               static_cast<double>(std::max<std::int64_t>(num_buffers, 1)));

  // Classes not common to all member stages stay untiled (full extent) —
  // tiling them would recompute the class-less stages once per tile.
  auto common = [&](int i) {
    return align.class_common.empty() ||
           align.class_common[static_cast<std::size_t>(i)];
  };
  double budget = tile_vol;
  for (int i = 0; i < n; ++i) {
    if (!common(i)) {
      ts[static_cast<std::size_t>(i)] = sizes[static_cast<std::size_t>(i)];
      budget /= static_cast<double>(std::max<std::int64_t>(
          sizes[static_cast<std::size_t>(i)], 1));
    }
  }

  // Innermost common dimension pinned for prefetching / vectorization.
  int last = n - 1;
  while (last >= 0 && !common(last)) --last;
  if (last < 0) return ts;  // nothing tileable
  ts[static_cast<std::size_t>(last)] =
      std::min(sizes[static_cast<std::size_t>(last)], innermost_tile);
  budget = std::max(budget / static_cast<double>(
                                 ts[static_cast<std::size_t>(last)]),
                    1.0);

  // Remaining common dims share the budget in proportion to reuse:
  // tau_i = tau * reuse_i / maxReuse, prod tau_i = budget.
  std::vector<int> free_dims;
  for (int i = 0; i < n; ++i)
    if (i != last && common(i)) free_dims.push_back(i);
  if (!free_dims.empty()) {
    double tau = budget;
    double max_reuse = 0.0;
    for (int i : free_dims)
      max_reuse =
          std::max(max_reuse, reuse.dim_reuse[static_cast<std::size_t>(i)]);
    for (int i : free_dims)
      tau /= reuse.dim_reuse[static_cast<std::size_t>(i)] / max_reuse;
    tau = std::pow(std::max(tau, 1.0),
                   1.0 / static_cast<double>(free_dims.size()));
    for (int i : free_dims) {
      const double scaled =
          tau * reuse.dim_reuse[static_cast<std::size_t>(i)] / max_reuse;
      std::int64_t t = static_cast<std::int64_t>(std::llround(scaled));
      t = std::clamp<std::int64_t>(t, 1, sizes[static_cast<std::size_t>(i)]);
      ts[static_cast<std::size_t>(i)] =
          round_up_to_multiple(t, gran[static_cast<std::size_t>(i)]);
    }
  }
  ts[static_cast<std::size_t>(last)] = round_up_to_multiple(
      std::max<std::int64_t>(ts[static_cast<std::size_t>(last)], 1),
      gran[static_cast<std::size_t>(last)]);
  return ts;
}

GroupCost CostModel::cost_for_cache(NodeSet group, const AlignResult& align,
                                    const ReuseInfo& reuse,
                                    std::int64_t cache_floats,
                                    std::int64_t total_footprint,
                                    std::int64_t num_buffers) const {
  GroupCost gc;
  // Line 15: tileFootprint <- min(totalFootprint / NCORES, cacheSize).
  gc.tile_footprint = std::min<std::int64_t>(
      std::max<std::int64_t>(total_footprint / m_.cores, 1), cache_floats);
  gc.tile_sizes = compute_tile_sizes(reuse, align, gc.tile_footprint,
                                     num_buffers, m_.innermost_tile);

  // Interior tile (unclamped) — boundary effects excluded from the model.
  Box tile;
  tile.rank = align.num_classes;
  for (int d = 0; d < tile.rank; ++d) {
    tile.lo[d] = 0;
    tile.hi[d] = gc.tile_sizes[static_cast<std::size_t>(d)] - 1;
  }
  const GroupRegions regions =
      compute_group_regions(*pl_, group, align, tile, /*clamp_to_domain=*/false);
  gc.overlap = regions.overlap_volume;

  gc.n_tiles = 1;
  for (int d = 0; d < tile.rank; ++d)
    gc.n_tiles = mul_or_throw(
        gc.n_tiles,
        ceil_div(align.class_extent[static_cast<std::size_t>(d)],
                 gc.tile_sizes[static_cast<std::size_t>(d)]),
        "group tile count");

  const double comp_vol =
      std::max<double>(1.0, static_cast<double>(regions.computed_volume));
  const double locality =
      static_cast<double>(regions.livein_volume + regions.liveout_volume) /
      comp_vol;
  const double cleanup = static_cast<double>(
      (gc.n_tiles + m_.cores - 1) % m_.cores);
  // Relative overlap: redundant recomputation as a fraction of the tile's
  // useful volume.  (Algorithm 2 line 23 divides by tileFootprint, but under
  // the paper's one-to-one iterations<->data assumption — Section 4.2 —
  // the footprint equals the owned volume; with granularity rounding and
  // mixed-rank groups ours can differ, and owned volume is the quantity the
  // trade-off is actually about.)
  const double rel_overlap =
      static_cast<double>(gc.overlap) /
      static_cast<double>(std::max<std::int64_t>(regions.owned_volume, 1));
  const CostWeights& w = m_.weights;
  gc.cost = w.w1 * locality - w.w2 * cleanup + w.w3 * rel_overlap +
            w.w4 * reuse.dim_size_stddev;
  return gc;
}

GroupCost CostModel::cost(NodeSet group) const {
  GroupCost infeasible;
  if (group.empty()) {
    infeasible.cost = 0.0;  // empty grouping costs nothing
    return infeasible;
  }

  const AlignResult align = solve_alignment(*pl_, group);
  if (!align.constant) return infeasible;
  if (group.size() > 1 && !pl_->graph().is_connected_undirected(group))
    return infeasible;

  const ReuseInfo reuse = compute_reuse(*pl_, group, align);

  // Footprints are summed over user-controlled extents; checked math turns
  // a silent wrap (UB, and a nonsense schedule later) into a coded error.
  std::int64_t total_footprint = 0;
  std::int64_t num_buffers = 0;
  group.for_each([&](int s) {
    const Box& dom = pl_->stage(s).domain;
    std::int64_t ext[kMaxDims];
    for (int d = 0; d < dom.rank; ++d) ext[d] = dom.extent(d);
    total_footprint = add_or_throw(
        total_footprint, volume_or_throw(ext, dom.rank, "stage volume"),
        "group footprint");
    ++num_buffers;
  });

  GroupCost l1 = cost_for_cache(group, align, reuse, m_.l1_floats(),
                                total_footprint, num_buffers);
  // Algorithm 2 lines 6-9: fall back to L2-sized tiles when the redundant
  // computation exceeds the tile's useful volume.  We additionally fall
  // back when the L1 tile degenerates — per-buffer volume so small that
  // non-innermost extents collapse to a few rows — which the paper's Table 5
  // discussion singles out as "too small to adversely affect prefetching
  // and overlap fraction".
  std::int64_t l1_tile_volume = num_buffers;
  for (std::int64_t t : l1.tile_sizes)
    l1_tile_volume = mul_or_throw(l1_tile_volume, t, "L1 tile volume");
  const std::int64_t per_buffer = l1.tile_footprint / std::max<std::int64_t>(num_buffers, 1);
  const std::int64_t innermost =
      l1.tile_sizes.empty() ? 1 : l1.tile_sizes.back();
  const bool degenerate = per_buffer < 4 * innermost;
  if (l1.overlap > l1_tile_volume || degenerate) {
    GroupCost l2 = cost_for_cache(group, align, reuse, m_.l2_floats(),
                                  total_footprint, num_buffers);
    l2.used_l2 = true;
    return l2;
  }
  return l1;
}

}  // namespace fusedp
