// Machine models for the cost function (paper Section 6.1).
//
// The cost model consumes L1/L2 sizes, core count, the innermost tile size
// (INNERMOSTTILESIZE) and the weights w1..w4 (paper Table 1).  Presets
// reproduce the two evaluation systems; host() inspects the running machine.
#pragma once

#include <cstdint>
#include <string>

namespace fusedp {

// Weights of the four cost terms (paper Section 4.1, Table 1).
//
// The paper's absolute values ({1.0, 100, 46875, 1.5} on Xeon) are tied to
// units internal to the PolyMage implementation; the paper states they were
// "set to fixed values for the entire evaluation after an empirical trial"
// (Section 6.1).  We followed the same procedure for this implementation's
// units (live-in/out and overlap measured in elements, overlap normalized by
// the tile footprint): w3/w1 is chosen so that fusion stops being profitable
// once redundant recomputation reaches roughly 1/5 of the tile, and w2 acts
// as a load-balance tie-breaker.  The paper's raw values are kept available
// via paper_xeon()/paper_opteron() for reference.
struct CostWeights {
  double w1 = 1.0;    // locality: (livein + liveout) / compute
  double w2 = 0.01;   // parallelism: cleanup-tile bonus term
  double w3 = 15.0;   // redundant computation: relative overlap
  double w4 = 1.5;    // dimension-extent mismatch

  static CostWeights paper_xeon() { return {1.0, 100.0, 46875.0, 1.5}; }
  static CostWeights paper_opteron() { return {0.3, 100.0, 46875.0, 2.0}; }
};

struct MachineModel {
  std::string name;
  std::int64_t l1_bytes = 32 * 1024;
  std::int64_t l2_bytes = 256 * 1024;
  std::int64_t l3_bytes = 20 * 1024 * 1024;
  int cores = 16;
  int vector_width_floats = 8;     // AVX/AVX2: 8 x f32
  std::int64_t innermost_tile = 256;  // INNERMOSTTILESIZE
  CostWeights weights;

  std::int64_t l1_floats() const { return l1_bytes / 4; }
  std::int64_t l2_floats() const { return l2_bytes / 4; }

  // Intel Xeon E5-2630 v3 (Haswell): 32 KB L1, 256 KB L2 per core,
  // IMTS = 256, weights {1.0, 100, 46875, 1.5}.
  static MachineModel xeon_haswell();
  // AMD Opteron 6386 SE: 16 KB L1, 2 MB L2 shared per 2 cores (model uses
  // 1 MB per core), IMTS = 128, weights {0.3, 100, 46875, 2.0}.
  static MachineModel amd_opteron();
  // Whatever this process runs on (cache sizes via sysconf; used by
  // examples so schedules fit the actual machine).
  static MachineModel host();
};

}  // namespace fusedp
