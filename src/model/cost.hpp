// The paper's cost function (Algorithm 2): COST, COSTFORCACHESIZE and
// COMPUTETILESIZES.
//
// COST(H) returns the cost of fusing the stages of H into one
// overlapped-tiled group, together with the tile sizes (in reference-space
// coordinates) that minimize it:
//
//   cost =  w1 * (livein_tile + liveout_tile) / compute_volume
//         - w2 * ((n_tiles + NCORES - 1) % NCORES)
//         + w3 * overlap / tileFootprint
//         + w4 * dimSizeStandardDeviation
//
// Tile sizes are first computed for the L1 capacity; if the resulting
// redundant-computation volume exceeds the tile's compute volume, L2-sized
// tiles are used instead (Algorithm 2 lines 3-9).  Groups whose dependence
// vectors cannot be made constant cost infinity.  Tile sizes are NOT
// restricted to powers of two — a key point of the paper.
#pragma once

#include <limits>
#include <vector>

#include "analysis/regions.hpp"
#include "analysis/reuse.hpp"
#include "analysis/scaling.hpp"
#include "model/machine.hpp"

namespace fusedp {

inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

struct GroupCost {
  double cost = kInfiniteCost;
  std::vector<std::int64_t> tile_sizes;  // per reference-space dimension
  std::int64_t overlap = 0;              // redundant elements per tile
  std::int64_t n_tiles = 0;
  std::int64_t tile_footprint = 0;       // elements
  bool used_l2 = false;

  bool feasible() const { return cost != kInfiniteCost; }
};

class CostModel {
 public:
  CostModel(const Pipeline& pl, MachineModel machine)
      : pl_(&pl), m_(std::move(machine)) {}

  const MachineModel& machine() const { return m_; }

  // Algorithm 2, COST(H).
  GroupCost cost(NodeSet group) const;

  // Algorithm 2, COMPUTETILESIZES: per-class tile sizes such that
  // numBuffers * prod(tileSizes) ~= tileFootprint, innermost pinned to
  // min(extent, INNERMOSTTILESIZE), remaining dims proportional to reuse.
  static std::vector<std::int64_t> compute_tile_sizes(
      const ReuseInfo& reuse, const AlignResult& align,
      std::int64_t tile_footprint, std::int64_t num_buffers,
      std::int64_t innermost_tile);

 private:
  GroupCost cost_for_cache(NodeSet group, const AlignResult& align,
                           const ReuseInfo& reuse, std::int64_t cache_floats,
                           std::int64_t total_footprint,
                           std::int64_t num_buffers) const;

  const Pipeline* pl_;
  MachineModel m_;
};

}  // namespace fusedp
