#include "model/machine.hpp"

#include <unistd.h>

#include <thread>

namespace fusedp {

MachineModel MachineModel::xeon_haswell() {
  MachineModel m;
  m.name = "xeon-haswell";
  m.l1_bytes = 32 * 1024;
  m.l2_bytes = 256 * 1024;
  m.l3_bytes = 20 * 1024 * 1024;
  m.cores = 16;
  m.vector_width_floats = 8;
  m.innermost_tile = 256;
  m.weights = {1.0, 0.01, 15.0, 1.5};
  return m;
}

MachineModel MachineModel::amd_opteron() {
  MachineModel m;
  m.name = "amd-opteron";
  m.l1_bytes = 16 * 1024;
  m.l2_bytes = 1024 * 1024;  // half of the 2 MB shared between 2 cores
  m.l3_bytes = 12 * 1024 * 1024;
  m.cores = 16;
  m.vector_width_floats = 8;
  m.innermost_tile = 128;
  m.weights = {0.3, 0.01, 15.0, 2.0};
  return m;
}

MachineModel MachineModel::host() {
  MachineModel m = xeon_haswell();
  m.name = "host";
#ifdef _SC_LEVEL1_DCACHE_SIZE
  if (const long l1 = sysconf(_SC_LEVEL1_DCACHE_SIZE); l1 > 0) m.l1_bytes = l1;
#endif
#ifdef _SC_LEVEL2_CACHE_SIZE
  if (const long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE); l2 > 0) m.l2_bytes = l2;
#endif
#ifdef _SC_LEVEL3_CACHE_SIZE
  if (const long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE); l3 > 0) m.l3_bytes = l3;
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) m.cores = static_cast<int>(hw);
  return m;
}

}  // namespace fusedp
