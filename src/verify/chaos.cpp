#include "verify/chaos.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "api/session.hpp"
#include "runtime/executor.hpp"
#include "runtime/governor.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"
#include "verify/pipegen.hpp"

namespace fusedp::verify {

namespace {

// Throwing fault points only: a corrupt fault would (correctly) break the
// bit-identity invariant this harness enforces on successes.
const char* const kFaultPoints[] = {
    "executor.tile_eval",
    "executor.scratch_alloc",
    "workspace.prepare",
};
constexpr std::size_t kNumFaultPoints =
    sizeof(kFaultPoints) / sizeof(kFaultPoints[0]);

// Cache-layer fault points: a failing disk read, a writer dying before the
// temp file is written, and a writer killed at the commit fence (temp fully
// written, rename never happens — the canonical crash-mid-write).  All must
// resolve to coded probe/store outcomes, never a failed open.
const char* const kCacheFaultPoints[] = {
    "findb.read",
    "findb.write",
    "findb.commit",
    "lock.acquire",
};
constexpr std::size_t kNumCacheFaultPoints =
    sizeof(kCacheFaultPoints) / sizeof(kCacheFaultPoints[0]);

// Hostile record damage: flip a byte or truncate a random *.fdb in `dir`,
// deliberately without taking the directory lock — a crashed or byzantine
// writer does not honor locks either; the CRC/byte-count headers are what
// keep readers safe.
void corrupt_random_record(const std::string& dir, Rng& rng) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> files;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".fdb") == 0)
      files.push_back(name);
  }
  ::closedir(d);
  if (files.empty()) return;
  const std::string path =
      dir + "/" +
      files[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(files.size())))];
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || st.st_size == 0) return;
  if (rng.next_bool()) {
    ::truncate(path.c_str(),
               static_cast<off_t>(rng.next_below(
                   static_cast<std::uint64_t>(st.st_size))));
  } else {
    const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) return;
    const off_t off = static_cast<off_t>(
        rng.next_below(static_cast<std::uint64_t>(st.st_size)));
    unsigned char b = 0;
    if (::pread(fd, &b, 1, off) == 1) {
      b ^= 0xFFu;
      (void)!::pwrite(fd, &b, 1, off);
    }
    ::close(fd);
  }
}

struct PoolEntry {
  std::unique_ptr<Pipeline> pl;
  std::vector<Buffer> inputs;
  std::vector<Buffer> ref_outputs;  // scalar golden, pl->outputs() order
};

bool outputs_match(const Session& s, const PoolEntry& e) {
  for (std::size_t i = 0; i < e.ref_outputs.size(); ++i) {
    const Buffer& got = s.output(static_cast<int>(i));
    const Buffer& want = e.ref_outputs[i];
    if (got.volume() != want.volume()) return false;
    if (std::memcmp(got.data(), want.data(),
                    static_cast<std::size_t>(want.volume()) *
                        sizeof(float)) != 0)
      return false;
  }
  return true;
}

void merge(ChaosStats& into, const ChaosStats& from) {
  into.requests += from.requests;
  into.successes += from.successes;
  into.degraded_successes += from.degraded_successes;
  into.deadline_exceeded += from.deadline_exceeded;
  into.resource_exhausted += from.resource_exhausted;
  into.fault_injected += from.fault_injected;
  into.allocation_failed += from.allocation_failed;
  into.other_coded += from.other_coded;
  into.attempts += from.attempts;
  into.cache_requests += from.cache_requests;
  into.cache_hits += from.cache_hits;
  into.cache_faults += from.cache_faults;
  into.cache_stores += from.cache_stores;
  into.mismatches += from.mismatches;
  into.uncoded += from.uncoded;
}

}  // namespace

ChaosStats run_chaos(const ChaosOptions& opts) {
  ChaosStats total;
  const int nworkers = opts.sessions < 1 ? 1 : opts.sessions;
  const int pool_n = opts.pipeline_pool < 1 ? 1 : opts.pipeline_pool;

  // Phase 1 (un-governed, serial): build the pipeline pool and its scalar
  // golden references.  The reference path is deliberately outside the
  // budget so a tight soak budget cannot starve the oracle itself.
  std::vector<PoolEntry> pool;
  pool.reserve(static_cast<std::size_t>(pool_n));
  PipeGenOptions pg;
  for (int i = 0; i < pool_n; ++i) {
    PoolEntry e;
    const std::uint64_t seed = opts.seed * 1000003u + static_cast<std::uint64_t>(i);
    e.pl = generate_pipeline(seed, pg);
    e.inputs = generate_inputs(*e.pl, seed ^ 0xabcdefu);
    std::vector<Buffer> all = run_reference(*e.pl, e.inputs);
    for (int s : e.pl->outputs())
      e.ref_outputs.push_back(std::move(all[static_cast<std::size_t>(s)]));
    pool.push_back(std::move(e));
  }

  // Phase 2: arm the budget and soak.
  ResourceGovernor& gov = ResourceGovernor::instance();
  gov.reset_for_test();  // re-baseline high-water to live charges
  gov.set_budget(opts.memory_budget_bytes);

  std::atomic<int> next_request{0};
  std::atomic<bool> stop{false};
  WallTimer clock;
  std::mutex stats_mu;

  auto worker = [&](int wid) {
    ChaosStats local;
    Rng rng(opts.seed ^ (0x51ed2701u + static_cast<std::uint64_t>(wid) * 0x9e37u));
    for (;;) {
      const int req = next_request.fetch_add(1, std::memory_order_relaxed);
      if (req >= opts.requests) break;
      if (stop.load(std::memory_order_relaxed)) break;
      if (opts.max_seconds > 0.0 && clock.seconds() > opts.max_seconds) {
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      const PoolEntry& e =
          pool[static_cast<std::size_t>(rng.next_below(
              static_cast<std::uint64_t>(pool.size())))];
      try {
        // Random per-request configuration.
        Options o;
        o.num_threads = rng.next_bool(0.25) ? 2 : 1;
        // Route a fraction of requests through the work-stealing pool, at
        // >= 2 lanes so stealing and cross-request pool sharing both soak.
        o.pool_backend = rng.next_bool(opts.pool_backend_rate);
        if (o.pool_backend) o.num_threads = 2;
        o.scheduler = Scheduler::kGreedy;
        o.tile_schedule = rng.next_bool() ? TileSchedule::kDynamic
                                          : TileSchedule::kStatic;
        o.vector_backend = !rng.next_bool(0.2);
        o.superop_fusion = o.vector_backend && !rng.next_bool(0.2);
        o.pooled_storage = rng.next_bool(0.3);
        o.guard_arena = rng.next_bool(0.25);
        o.max_run_attempts = opts.max_attempts;
        if (rng.next_bool(opts.deadline_rate))
          // Tight enough that a fraction genuinely expires mid-run, long
          // enough that another fraction finishes: both paths soak.
          o.run_deadline_seconds = 2e-5 + rng.next_double() * 3e-3;

        // Cache soak: route through the shared directory, then damage it.
        const bool use_cache =
            !opts.cache_dir.empty() && rng.next_bool(opts.cache_rate);
        if (use_cache) {
          o.cache_mode = findb::CacheMode::kReadWrite;
          o.cache_dir = opts.cache_dir;
          // Half the requests bypass the in-process hot tier so corrupted
          // bytes actually reach the decoder instead of being shadowed by
          // a previously validated memory copy.
          if (rng.next_bool(0.5)) o.cache_memory_entries = 0;
          // Short lock wait: contention must degrade, not serialize.
          o.cache_lock_timeout_seconds = 0.05;
          if (rng.next_bool(opts.cache_corrupt_rate))
            corrupt_random_record(opts.cache_dir, rng);
          if (rng.next_bool(opts.cache_fault_rate))
            FaultInjector::arm(
                kCacheFaultPoints[rng.next_below(kNumCacheFaultPoints)],
                ErrorCode::kFaultInjected,
                static_cast<int>(rng.next_below(8)));
        }

        // Concurrent fault arming: the injector is global and thread-safe;
        // the armed point may well fire in another worker's request, which
        // is exactly the cross-request interference the soak wants.
        if (rng.next_bool(opts.fault_rate)) {
          FaultInjector::arm(
              kFaultPoints[rng.next_below(kNumFaultPoints)],
              ErrorCode::kFaultInjected,
              static_cast<int>(rng.next_below(24)));
        }

        ++local.requests;
        if (use_cache) ++local.cache_requests;
        Result<Session> sr = Session::open(*e.pl, o);
        if (!sr.ok()) {
          // Coded open failure (e.g. allocation under a tight budget).
          ++local.other_coded;
          continue;
        }
        Session s = std::move(sr).value();
        if (use_cache) {
          if (s.warm_start()) ++local.cache_hits;
          for (const observe::CacheEvent& ev : s.cache_events()) {
            if (ev.action == "store" && ev.outcome == "stored")
              ++local.cache_stores;
            // Anything that is not a clean hit/miss/bypass is a coded
            // degradation the soak wants to see resolve to fresh search.
            if (ev.action == "probe" && ev.outcome != "hit" &&
                ev.outcome != "miss" && ev.outcome != "bypass")
              ++local.cache_faults;
          }
        }
        Result<double> r = s.execute(e.inputs);
        local.attempts +=
            static_cast<std::int64_t>(s.last_report().attempts.size());
        if (r.ok()) {
          ++local.successes;
          if (s.last_report().degraded) ++local.degraded_successes;
          if (opts.verify_outputs && !outputs_match(s, e)) ++local.mismatches;
        } else {
          switch (r.code()) {
            case ErrorCode::kDeadlineExceeded: ++local.deadline_exceeded; break;
            case ErrorCode::kResourceExhausted: ++local.resource_exhausted; break;
            case ErrorCode::kFaultInjected: ++local.fault_injected; break;
            case ErrorCode::kAllocationFailed: ++local.allocation_failed; break;
            default: ++local.other_coded; break;
          }
        }
      } catch (...) {
        // A request must never leak an exception through the facade.
        ++local.uncoded;
      }
    }
    std::lock_guard<std::mutex> lock(stats_mu);
    merge(total, local);
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w) threads.emplace_back(worker, w);
  for (std::thread& t : threads) t.join();

  total.seconds = clock.seconds();
  total.governor_high_water = gov.high_water();
  FaultInjector::disarm();
  gov.set_budget(0);  // restore: unlimited
  return total;
}

std::string ChaosStats::summary() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "chaos: %lld requests in %.2f s (%lld attempts): %lld ok (%lld "
      "degraded), %lld deadline, %lld resource, %lld fault, %lld alloc, "
      "%lld other; cache %lld probed / %lld warm / %lld degraded / %lld "
      "stored; %lld mismatches, %lld uncoded; high-water %lld bytes -> %s",
      static_cast<long long>(requests), seconds,
      static_cast<long long>(attempts), static_cast<long long>(successes),
      static_cast<long long>(degraded_successes),
      static_cast<long long>(deadline_exceeded),
      static_cast<long long>(resource_exhausted),
      static_cast<long long>(fault_injected),
      static_cast<long long>(allocation_failed),
      static_cast<long long>(other_coded),
      static_cast<long long>(cache_requests),
      static_cast<long long>(cache_hits),
      static_cast<long long>(cache_faults),
      static_cast<long long>(cache_stores),
      static_cast<long long>(mismatches), static_cast<long long>(uncoded),
      static_cast<long long>(governor_high_water),
      clean() ? "CLEAN" : "DIRTY");
  return buf;
}

std::string ChaosStats::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto field = [&](const char* k, std::int64_t v, bool last = false) {
    return pad + "\"" + k + "\": " + std::to_string(v) + (last ? "\n" : ",\n");
  };
  char secs[32];
  std::snprintf(secs, sizeof(secs), "%.3f", seconds);
  std::string out = "{\n";
  out += field("requests", requests);
  out += field("successes", successes);
  out += field("degraded_successes", degraded_successes);
  out += field("deadline_exceeded", deadline_exceeded);
  out += field("resource_exhausted", resource_exhausted);
  out += field("fault_injected", fault_injected);
  out += field("allocation_failed", allocation_failed);
  out += field("other_coded", other_coded);
  out += field("attempts", attempts);
  out += field("cache_requests", cache_requests);
  out += field("cache_hits", cache_hits);
  out += field("cache_faults", cache_faults);
  out += field("cache_stores", cache_stores);
  out += field("mismatches", mismatches);
  out += field("uncoded", uncoded);
  out += field("governor_high_water_bytes", governor_high_water);
  out += pad + "\"seconds\": " + secs + ",\n";
  out += pad + std::string("\"clean\": ") + (clean() ? "true" : "false") + "\n";
  out += std::string(static_cast<std::size_t>(indent >= 2 ? indent - 2 : 0),
                     ' ') +
         "}";
  return out;
}

}  // namespace fusedp::verify
