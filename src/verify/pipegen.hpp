// Deterministic random pipeline generation for differential verification.
//
// generate_pipeline(seed) emits a valid, finalized ir::Pipeline DAG drawn
// from the full op vocabulary the executor supports: stencils with mixed
// radii, 2x down- and up-sampling chains, all four border modes, selects and
// comparisons, weighted taps, multi-consumer fan-out, diamond reconvergence,
// mixed ranks (rank-3 channel stages collapsing to rank-2 via constant
// axes) and degenerate extents (1x1, 1xN, Nx1).  The same seed always
// produces the same pipeline, so any divergence the oracle finds is
// replayable from the seed alone.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/builder.hpp"
#include "support/buffer.hpp"

namespace fusedp::verify {

// Size/shape knobs.  Defaults are tuned so one seed exercises a non-trivial
// DAG yet runs in milliseconds; the fuzz harness shrinks them further.
struct PipeGenOptions {
  int min_stages = 3;
  int max_stages = 9;
  std::int64_t min_extent = 12;   // base resolution bounds (inclusive)
  std::int64_t max_extent = 64;
  int max_radius = 2;             // stencil tap offsets in [-r, r]
  double p_scaling = 0.3;         // chance a stage re-samples its producer
  double p_rank3 = 0.2;           // chance the pipeline carries channels
  double p_degenerate = 0.08;     // 1xN / Nx1 / 1x1 base shapes
  double p_select = 0.35;         // chance of a compare-and-select body
  double p_second_producer = 0.55;
  double p_extra_output = 0.2;    // chance a non-sink stage is live-out
};

// Builds the pipeline for `seed`.  Always returns a finalized pipeline that
// passes Pipeline::finalize() validation.
std::unique_ptr<Pipeline> generate_pipeline(std::uint64_t seed,
                                            const PipeGenOptions& opts = {});

// Deterministic synthetic input images matching pl's input domains.
std::vector<Buffer> generate_inputs(const Pipeline& pl, std::uint64_t seed);

}  // namespace fusedp::verify
