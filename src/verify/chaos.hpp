// Chaos soak: many concurrent Sessions under injected faults, random
// per-request deadlines and a constrained process-wide memory budget.
//
// The harness proves the request-governance invariants hold under fire:
// every request terminates in a coded state (success, deadline-exceeded,
// resource-exhausted, fault-injected, ...), no exception ever escapes the
// Session API uncoded, no crash / hang / leak, and every *successful*
// request — including ones that succeeded on a degradation-ladder rung —
// returns outputs bit-identical to the scalar golden reference.
//
// Fault points armed here are throwing points only (executor.tile_eval,
// executor.scratch_alloc, workspace.prepare); silent-corruption faults are
// the differential verifier's domain and would — correctly — break the
// bit-identity check this harness enforces.
//
// Shared by tools/fusedp_chaos.cpp (CLI, exit code) and
// bench/bench_chaos.cpp (BENCH_chaos.json artifact).
#pragma once

#include <cstdint>
#include <string>

namespace fusedp::verify {

struct ChaosOptions {
  int sessions = 8;         // concurrent worker threads
  int requests = 5000;      // total requests across all workers
  double fault_rate = 0.3;  // chance a request arms a throwing fault point
  double deadline_rate = 0.3;  // chance a request carries a tight deadline
  // Chance a request executes on the work-stealing pool backend (at 2
  // lanes) instead of the OpenMP region; the TSan leg raises this to soak
  // pool parallelism specifically.
  double pool_backend_rate = 0.25;
  // Process-wide Workspace+ScratchArena budget while the soak runs
  // (0 = unlimited).  References are computed before the budget is armed.
  std::int64_t memory_budget_bytes = 0;
  double max_seconds = 0.0;  // wall-clock cap, 0 = none
  std::uint64_t seed = 1;
  int pipeline_pool = 12;    // distinct generated pipelines to cycle over
  int max_attempts = 3;      // degradation-ladder depth per request
  bool verify_outputs = true;  // bit-compare successes vs scalar reference
};

struct ChaosStats {
  std::int64_t requests = 0;   // requests actually issued
  std::int64_t successes = 0;  // ok, outputs verified (when enabled)
  std::int64_t degraded_successes = 0;  // ok on a fallback rung
  std::int64_t deadline_exceeded = 0;
  std::int64_t resource_exhausted = 0;
  std::int64_t fault_injected = 0;
  std::int64_t allocation_failed = 0;
  std::int64_t other_coded = 0;  // any other coded terminal state
  std::int64_t attempts = 0;     // run attempts across all requests
  // Invariant violations: any non-zero entry fails the soak.
  std::int64_t mismatches = 0;  // success whose outputs differ from reference
  std::int64_t uncoded = 0;     // exception escaped the Session API
  double seconds = 0.0;
  std::int64_t governor_high_water = 0;  // bytes, while the soak ran

  // Every request reached a coded terminal state and verified.
  bool clean() const { return mismatches == 0 && uncoded == 0; }
  std::string summary() const;
  std::string to_json(int indent = 2) const;
};

// Runs the soak and restores the governor budget (to unlimited) on return.
ChaosStats run_chaos(const ChaosOptions& opts);

}  // namespace fusedp::verify
