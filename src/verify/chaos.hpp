// Chaos soak: many concurrent Sessions under injected faults, random
// per-request deadlines and a constrained process-wide memory budget.
//
// The harness proves the request-governance invariants hold under fire:
// every request terminates in a coded state (success, deadline-exceeded,
// resource-exhausted, fault-injected, ...), no exception ever escapes the
// Session API uncoded, no crash / hang / leak, and every *successful*
// request — including ones that succeeded on a degradation-ladder rung —
// returns outputs bit-identical to the scalar golden reference.
//
// Fault points armed here are throwing points only (executor.tile_eval,
// executor.scratch_alloc, workspace.prepare); silent-corruption faults are
// the differential verifier's domain and would — correctly — break the
// bit-identity check this harness enforces.
//
// Shared by tools/fusedp_chaos.cpp (CLI, exit code) and
// bench/bench_chaos.cpp (BENCH_chaos.json artifact).
#pragma once

#include <cstdint>
#include <string>

namespace fusedp::verify {

struct ChaosOptions {
  int sessions = 8;         // concurrent worker threads
  int requests = 5000;      // total requests across all workers
  double fault_rate = 0.3;  // chance a request arms a throwing fault point
  double deadline_rate = 0.3;  // chance a request carries a tight deadline
  // Chance a request executes on the work-stealing pool backend (at 2
  // lanes) instead of the OpenMP region; the TSan leg raises this to soak
  // pool parallelism specifically.
  double pool_backend_rate = 0.25;
  // Process-wide Workspace+ScratchArena budget while the soak runs
  // (0 = unlimited).  References are computed before the budget is armed.
  std::int64_t memory_budget_bytes = 0;
  double max_seconds = 0.0;  // wall-clock cap, 0 = none
  std::uint64_t seed = 1;
  int pipeline_pool = 12;    // distinct generated pipelines to cycle over
  int max_attempts = 3;      // degradation-ladder depth per request
  bool verify_outputs = true;  // bit-compare successes vs scalar reference

  // Persistent schedule-cache soak (storage/findb).  With a non-empty
  // cache_dir, a fraction of requests open through a shared cache directory
  // in readwrite mode while workers hostilely pre-corrupt records (bit
  // flips, truncation), arm findb fault points (read failures,
  // kill-mid-write at the commit fence) and race stores against probes.
  // Invariants on top of the base soak: every cache failure resolves to a
  // coded event plus a successful fresh autoschedule, and cache-served
  // (warm-start) schedules still produce bit-identical outputs.
  std::string cache_dir;             // empty = cache soak off
  double cache_rate = 0.7;           // chance a request opens via the cache
  double cache_corrupt_rate = 0.2;   // chance of pre-corrupting a record
  double cache_fault_rate = 0.1;     // chance of arming a findb.* fault
};

struct ChaosStats {
  std::int64_t requests = 0;   // requests actually issued
  std::int64_t successes = 0;  // ok, outputs verified (when enabled)
  std::int64_t degraded_successes = 0;  // ok on a fallback rung
  std::int64_t deadline_exceeded = 0;
  std::int64_t resource_exhausted = 0;
  std::int64_t fault_injected = 0;
  std::int64_t allocation_failed = 0;
  std::int64_t other_coded = 0;  // any other coded terminal state
  std::int64_t attempts = 0;     // run attempts across all requests
  // Cache soak counters (0 unless ChaosOptions::cache_dir is set).
  std::int64_t cache_requests = 0;  // requests that probed the cache
  std::int64_t cache_hits = 0;      // warm starts (schedule from cache)
  std::int64_t cache_faults = 0;    // coded degraded probes (corrupt, ...)
  std::int64_t cache_stores = 0;    // fresh schedules persisted
  // Invariant violations: any non-zero entry fails the soak.
  std::int64_t mismatches = 0;  // success whose outputs differ from reference
  std::int64_t uncoded = 0;     // exception escaped the Session API
  double seconds = 0.0;
  std::int64_t governor_high_water = 0;  // bytes, while the soak ran

  // Every request reached a coded terminal state and verified.
  bool clean() const { return mismatches == 0 && uncoded == 0; }
  std::string summary() const;
  std::string to_json(int indent = 2) const;
};

// Runs the soak and restores the governor budget (to unlimited) on return.
ChaosStats run_chaos(const ChaosOptions& opts);

}  // namespace fusedp::verify
