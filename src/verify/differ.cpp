#include "verify/differ.hpp"

#include <cmath>
#include <cstring>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "analysis/scaling.hpp"
#include "api/session.hpp"
#include "fusion/serialize.hpp"
#include "support/rng.hpp"

namespace fusedp::verify {

namespace {

// Tolerant equality for the fast-transcendentals rung.  The approximate
// exp/log/pow kernels are documented to a few ulp of relative error, but a
// pipeline can amplify that (subtraction of near-equal transcendental
// results), so the rung checks a mixed absolute/relative envelope instead
// of per-op ulp.  Special values must still agree in kind: NaN with NaN,
// infinities with matching sign — except at the overflow boundary, where
// the approximate exp may round a borderline argument across FLT_MAX; a
// non-finite on one side is accepted when the other side's magnitude is
// already astronomically large.
bool tolerably_equal(float want, float got) {
  std::uint32_t wb, gb;
  std::memcpy(&wb, &want, sizeof wb);
  std::memcpy(&gb, &got, sizeof gb);
  if (wb == gb) return true;
  const bool wn = std::isnan(want), gn = std::isnan(got);
  if (wn || gn) return wn && gn;
  const bool wi = std::isinf(want), gi = std::isinf(got);
  if (wi && gi) return (want > 0.0f) == (got > 0.0f);
  if (wi || gi) return std::fabs(wi ? got : want) > 1e30f;
  return std::fabs(got - want) <= 1e-3f + 1e-2f * std::fabs(want);
}

// Compares `got` against `want` over `dom` — bit-exact by default, or under
// tolerably_equal when `tolerant` — and on the first mismatch fills the
// coordinate/bit fields of `rec` and returns true.
bool compare_stage(const Box& dom, const BufferView& got,
                   const BufferView& want, DivergenceRecord* rec,
                   bool tolerant = false) {
  std::int64_t c[kMaxDims] = {0, 0, 0, 0};
  for (int d = 0; d < dom.rank; ++d) c[d] = dom.lo[d];
  const int last = dom.rank - 1;
  for (;;) {
    for (std::int64_t x = dom.lo[last]; x <= dom.hi[last]; ++x) {
      c[last] = x;
      const float w = want.at(c);
      const float g = got.at(c);
      std::uint32_t wb, gb;
      std::memcpy(&wb, &w, sizeof wb);
      std::memcpy(&gb, &g, sizeof gb);
      const bool differ = tolerant ? !tolerably_equal(w, g) : wb != gb;
      if (differ) {
        rec->rank = dom.rank;
        for (int d = 0; d < dom.rank; ++d) rec->coord[d] = c[d];
        rec->want_bits = wb;
        rec->got_bits = gb;
        rec->want = w;
        rec->got = g;
        return true;
      }
    }
    int d = last - 1;
    for (; d >= 0; --d) {
      if (++c[d] <= dom.hi[d]) break;
      c[d] = dom.lo[d];
    }
    if (d < 0) return false;
  }
}

int find_root(std::vector<int>& comp, int v) {
  while (comp[static_cast<std::size_t>(v)] != v)
    v = comp[static_cast<std::size_t>(v)] =
        comp[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])];
  return v;
}

Grouping grouping_from_components(const Pipeline& pl, std::vector<int>& comp) {
  const int n = pl.num_stages();
  std::vector<NodeSet> sets(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    const int r = find_root(comp, s);
    sets[static_cast<std::size_t>(r)] =
        sets[static_cast<std::size_t>(r)].with(s);
  }
  Grouping g;
  for (int r = 0; r < n; ++r) {
    if (sets[static_cast<std::size_t>(r)].empty()) continue;
    GroupSchedule gs;
    gs.stages = sets[static_cast<std::size_t>(r)];
    g.groups.push_back(std::move(gs));
  }
  return g;
}

bool grouping_ok(const Pipeline& pl, const Grouping& g) {
  if (!validate_grouping(pl, g)) return false;
  for (const GroupSchedule& gs : g.groups)
    if (gs.stages.size() > 1 && !constant_dependence_vectors(pl, gs.stages))
      return false;
  return true;
}

// A random valid grouping: start from singletons, merge random
// producer-consumer edges, keeping only merges the validator (plus the
// constant-dependence-vector fusability check) accepts.  Tile sizes are then
// drawn adversarially: untiled, all-ones, oversized, or non-divisible —
// lower() clamps and granularity-rounds whatever we pick, so every style is
// legal and each exercises a different cleanup-tile path.
Grouping random_grouping(const Pipeline& pl, Rng& rng) {
  const int n = pl.num_stages();
  std::vector<int> comp(static_cast<std::size_t>(n));
  std::iota(comp.begin(), comp.end(), 0);

  std::vector<std::pair<int, int>> edges;
  for (int s = 0; s < n; ++s)
    for (const Access& a : pl.stage(s).loads)
      if (!a.producer.is_input && a.producer.id != s)
        edges.emplace_back(a.producer.id, s);

  const int tries =
      edges.empty() ? 0 : 1 + static_cast<int>(rng.next_below(edges.size()));
  for (int t = 0; t < tries; ++t) {
    const auto& [p, c] = edges[rng.next_below(edges.size())];
    if (find_root(comp, p) == find_root(comp, c)) continue;
    const std::vector<int> saved = comp;
    comp[static_cast<std::size_t>(find_root(comp, p))] = find_root(comp, c);
    Grouping g = grouping_from_components(pl, comp);
    if (!grouping_ok(pl, g)) comp = saved;  // undo an unfusable merge
  }

  Grouping g = grouping_from_components(pl, comp);
  for (GroupSchedule& gs : g.groups) {
    switch (rng.next_below(5)) {
      case 0:
        break;  // untiled
      case 1:
        gs.tile_sizes.assign(kMaxDims, 1);
        break;
      case 2:
        for (int d = 0; d < kMaxDims; ++d)
          gs.tile_sizes.push_back(
              1 + static_cast<std::int64_t>(rng.next_below(17)));
        break;
      case 3:
        gs.tile_sizes.assign(kMaxDims, std::int64_t{1} << 20);  // oversized
        break;
      default: {
        static constexpr std::int64_t primes[] = {3, 5, 7, 13};
        for (int d = 0; d < kMaxDims; ++d)
          gs.tile_sizes.push_back(primes[rng.next_below(4)]);
        break;
      }
    }
  }
  return g;
}

Grouping singleton_untiled(const Pipeline& pl) {
  Grouping g;
  for (int s = 0; s < pl.num_stages(); ++s) {
    GroupSchedule gs;
    gs.stages = NodeSet::single(s);
    g.groups.push_back(std::move(gs));
  }
  return g;
}

// Per-stage comparison class for the fast-transcendentals rung.
//
// The approximate kernels perturb every transcendental result by a few ulp.
// Through continuous ops that perturbation stays inside tolerably_equal's
// envelope, but a discontinuous op (floor, comparisons, select, logical
// ops) or a data-dependent gather index downstream of a transcendental can
// amplify it to a full quantum jump — no fixed envelope covers that, and it
// is not a kernel bug.  So each stage is classified by a taint walk:
//   kBitExact  — no transcendental upstream: fastmath must change nothing;
//   kTolerance — transcendental-tainted through continuous ops only;
//   kSelfOnly  — a discontinuity saw tainted input somewhere upstream:
//                checked only by the bit-exact fastmath-vs-fastmath
//                self-consistency run, not against the libm reference.
enum class FastmathCmp : std::uint8_t { kBitExact, kTolerance, kSelfOnly };

std::vector<FastmathCmp> classify_fastmath(const Pipeline& pl) {
  const int n = pl.num_stages();
  std::vector<bool> taint(static_cast<std::size_t>(n), false);
  std::vector<bool> unsafe(static_cast<std::size_t>(n), false);
  std::vector<FastmathCmp> cls(static_cast<std::size_t>(n),
                               FastmathCmp::kBitExact);
  for (int s : pl.graph().topo_order()) {
    const Stage& st = pl.stage(s);
    bool in_taint = false, in_unsafe = false;
    for (const Access& a : st.loads) {
      if (a.producer.is_input) continue;
      in_taint = in_taint || taint[static_cast<std::size_t>(a.producer.id)];
      in_unsafe =
          in_unsafe || unsafe[static_cast<std::size_t>(a.producer.id)];
    }
    bool has_trans = false, has_disc = false, has_dyn = false;
    const CompiledStage cs = compile_stage(st);
    if (cs.valid()) {
      for (const CompiledOp& o : cs.ops) {
        switch (o.op) {
          case Op::kExp:
          case Op::kLog:
          case Op::kPow:
            has_trans = true;
            break;
          case Op::kFloor:
          case Op::kLt:
          case Op::kLe:
          case Op::kEq:
          case Op::kAnd:
          case Op::kOr:
          case Op::kSelect:
            has_disc = true;
            break;
          default:
            break;
        }
        // Superop-fused comparisons keep the cmp in op2.
        if (o.super == SuperOp::kCmpBlend) has_disc = true;
      }
      for (const CompiledLoad& cl : cs.loads)
        if (cl.any_dynamic) has_dyn = true;
    }
    const std::size_t si = static_cast<std::size_t>(s);
    taint[si] = in_taint || has_trans;
    // Conservative: a stage mixing tainted input with any discontinuity is
    // unsafe even if the discontinuity happens to precede the taint in its
    // own body.
    unsafe[si] = in_unsafe || (taint[si] && (has_disc || has_dyn));
    cls[si] = unsafe[si] ? FastmathCmp::kSelfOnly
              : taint[si] ? FastmathCmp::kTolerance
                          : FastmathCmp::kBitExact;
  }
  return cls;
}

// The backend ladder, cheapest-divergence-to-localize first: each config
// differs from its predecessor by one mechanism, so the first diverging
// label already names the guilty layer.
struct Cfg {
  const char* name;
  EvalMode mode;
  bool compiled, vec, super, pool;
};
constexpr Cfg kConfigs[] = {
    {"scalar-tiled", EvalMode::kScalar, false, false, false, false},
    {"row-interp", EvalMode::kRow, false, false, false, false},
    {"compiled-plain", EvalMode::kRow, true, false, false, false},
    {"vector-nosuper", EvalMode::kRow, true, true, false, false},
    {"vector", EvalMode::kRow, true, true, true, false},
    // Same mechanisms as "vector" but tiles claimed through the
    // work-stealing pool (>= 2 lanes, so stealing actually happens): a
    // divergence here indicts the pool executor path, nothing else.
    {"vector-pool", EvalMode::kRow, true, true, true, true},
};

// Runs every backend config over one grouping, comparing each materialized
// stage against `ref`.  Returns true (and fills res->record) on divergence.
bool run_configs(const Pipeline& pl, const std::vector<Buffer>& inputs,
                 const std::vector<Buffer>& ref, const std::vector<int>& topo,
                 const Grouping& g, std::uint64_t seed, Rng& rng,
                 int max_threads, DiffResult* res) {
  for (const Cfg& c : kConfigs) {
    ExecOptions opts;
    opts.mode = c.mode;
    opts.compiled = c.compiled;
    opts.vector_backend = c.vec;
    opts.superop_fusion = c.super;
    opts.pool_backend = c.pool;
    opts.num_threads =
        (c.pool ? 2 : 1) +
        static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(std::max(1, max_threads))));
    opts.tile_schedule =
        rng.next_bool() ? TileSchedule::kStatic : TileSchedule::kDynamic;
    opts.guard_arena = rng.next_bool(0.5);
    opts.pooled_storage = rng.next_bool(0.25);
    // The never-pessimize gate only changes which bit-identical compiled
    // form a group runs, so flipping it must be invisible to every rung;
    // randomizing it checks exactly that.
    opts.never_pessimize = rng.next_bool(0.5);

    ++res->runs;
    DivergenceRecord rec;
    rec.seed = seed;
    rec.pipeline = pl.name();
    rec.backend = c.name;
    rec.opts = opts;
    rec.schedule = grouping_to_text(pl, g);
    try {
      Executor ex(pl, g, opts);
      Workspace ws;
      ex.run(inputs, ws);
      // Pooled storage reuses dead intermediates' slots, so only output
      // buffers (always dedicated) are still intact after the run.
      const bool outputs_only = opts.pooled_storage;
      for (int s : topo) {
        if (!ws.has(s)) continue;
        if (outputs_only && !pl.is_liveout(s)) continue;
        const Box& dom = pl.stage(s).domain;
        if (compare_stage(dom, ws.stage_view(s),
                          ref[static_cast<std::size_t>(s)].view(), &rec)) {
          rec.stage = pl.stage(s).name;
          res->diverged = true;
          res->record = std::move(rec);
          return true;
        }
      }
    } catch (const std::exception& e) {
      rec.error = e.what();
      res->diverged = true;
      res->record = std::move(rec);
      return true;
    }
  }

  // Approximate-transcendentals rung: the full vector backend with
  // fast_transcendentals on.  Not bit-exact by design — the polynomial
  // exp/log/pow kernels replace libm — so stages are compared per their
  // classify_fastmath class: untainted stages bit-exact against the
  // reference, continuously-tainted stages under tolerably_equal's
  // envelope, discontinuity-amplified stages only via a second fastmath
  // run (different threads/schedule) that must match the first
  // bit-for-bit.  The "vector" rung just passed bit-exact with the same
  // mechanisms, so a failure here indicts the approximate kernels.
  {
    const std::vector<FastmathCmp> cls = classify_fastmath(pl);
    ExecOptions opts;
    opts.mode = EvalMode::kRow;
    opts.compiled = true;
    opts.vector_backend = true;
    opts.superop_fusion = true;
    opts.fast_transcendentals = true;
    opts.num_threads = 1 + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(
                                   std::max(1, max_threads))));
    opts.tile_schedule =
        rng.next_bool() ? TileSchedule::kStatic : TileSchedule::kDynamic;
    opts.never_pessimize = rng.next_bool(0.5);

    ++res->runs;
    DivergenceRecord rec;
    rec.seed = seed;
    rec.pipeline = pl.name();
    rec.backend = "vector-fastmath(tol)";
    rec.opts = opts;
    rec.schedule = grouping_to_text(pl, g);
    try {
      Executor ex(pl, g, opts);
      Workspace ws;
      ex.run(inputs, ws);
      for (int s : topo) {
        if (!ws.has(s)) continue;
        const std::size_t si = static_cast<std::size_t>(s);
        if (cls[si] == FastmathCmp::kSelfOnly) continue;
        const Box& dom = pl.stage(s).domain;
        if (compare_stage(dom, ws.stage_view(s), ref[si].view(), &rec,
                          cls[si] == FastmathCmp::kTolerance)) {
          rec.stage = pl.stage(s).name;
          res->diverged = true;
          res->record = std::move(rec);
          return true;
        }
      }

      // Self-consistency: a second fastmath run over a different schedule
      // and thread count must reproduce the first bit-for-bit — the
      // approximate kernels are pure functions of their inputs, so any
      // difference indicts the execution machinery, not the approximation.
      // This is the only check covering kSelfOnly stages.
      ExecOptions opts2 = opts;
      opts2.num_threads = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(
                                      std::max(1, max_threads))));
      opts2.tile_schedule = opts.tile_schedule == TileSchedule::kStatic
                                ? TileSchedule::kDynamic
                                : TileSchedule::kStatic;
      opts2.never_pessimize = rng.next_bool(0.5);
      ++res->runs;
      rec.backend = "vector-fastmath(self)";
      rec.opts = opts2;
      Executor ex2(pl, g, opts2);
      Workspace ws2;
      ex2.run(inputs, ws2);
      for (int s : topo) {
        if (!ws.has(s) || !ws2.has(s)) continue;
        const Box& dom = pl.stage(s).domain;
        if (compare_stage(dom, ws2.stage_view(s), ws.stage_view(s), &rec)) {
          rec.stage = pl.stage(s).name;
          res->diverged = true;
          res->record = std::move(rec);
          return true;
        }
      }
    } catch (const std::exception& e) {
      rec.error = e.what();
      res->diverged = true;
      res->record = std::move(rec);
      return true;
    }
  }

  // Final rung: the Session facade over the full vector backend, with the
  // trace collector attached.  The "vector" rung above just passed with the
  // same mechanisms, so a divergence here indicts the facade or the
  // observer instrumentation — which must be bit-invisible.
  {
    Options sopts;
    sopts.num_threads =
        1 + static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(std::max(1, max_threads))));
    sopts.tile_schedule =
        rng.next_bool() ? TileSchedule::kStatic : TileSchedule::kDynamic;
    sopts.guard_arena = rng.next_bool(0.5);
    sopts.pooled_storage = rng.next_bool(0.25);
    sopts.pool_backend = rng.next_bool(0.25);
    sopts.collect_trace = true;
    sopts.trace_tiles = rng.next_bool();

    ++res->runs;
    DivergenceRecord rec;
    rec.seed = seed;
    rec.pipeline = pl.name();
    rec.backend = "session";
    rec.opts = sopts.exec();
    rec.schedule = grouping_to_text(pl, g);
    Result<Session> session = Session::open(pl, g, sopts);
    if (!session.ok()) {
      rec.error = session.error().what();
      res->diverged = true;
      res->record = std::move(rec);
      return true;
    }
    Session s = std::move(session).value();
    if (Result<double> r = s.execute(inputs); !r.ok()) {
      rec.error = r.error().what();
      res->diverged = true;
      res->record = std::move(rec);
      return true;
    }
    // The session workspace only promises output buffers (pooling may have
    // recycled intermediates); outputs are exactly what the facade returns.
    const std::vector<int>& outs = pl.outputs();
    for (int i = 0; i < static_cast<int>(outs.size()); ++i) {
      const int st = outs[static_cast<std::size_t>(i)];
      const Box& dom = pl.stage(st).domain;
      if (compare_stage(dom, s.output(i).view(),
                        ref[static_cast<std::size_t>(st)].view(), &rec)) {
        rec.stage = pl.stage(st).name;
        res->diverged = true;
        res->record = std::move(rec);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::string DivergenceRecord::to_string() const {
  std::ostringstream os;
  os << "divergence seed=" << seed << " pipeline=" << pipeline
     << " backend=" << backend;
  if (!error.empty()) {
    os << "\n  error: " << error;
  } else {
    os << " stage=" << stage << " coord=(";
    for (int d = 0; d < rank; ++d) os << coord[d] << (d + 1 < rank ? "," : "");
    os << ")\n  want=0x" << std::hex << std::setw(8) << std::setfill('0')
       << want_bits << std::dec << " (" << want << ")  got=0x" << std::hex
       << std::setw(8) << std::setfill('0') << got_bits << std::dec << " ("
       << got << ")";
  }
  os << "\n  opts: threads=" << opts.num_threads
     << " mode=" << (opts.mode == EvalMode::kRow ? "row" : "scalar")
     << " compiled=" << opts.compiled << " vector=" << opts.vector_backend
     << " superops=" << opts.superop_fusion << " fma=" << opts.allow_fma
     << " fastmath=" << opts.fast_transcendentals
     << " never_pessimize=" << opts.never_pessimize << " sched="
     << (opts.tile_schedule == TileSchedule::kDynamic ? "dynamic" : "static")
     << " pooled=" << opts.pooled_storage << " guard=" << opts.guard_arena
     << " pool_backend=" << opts.pool_backend;
  std::string sched = schedule;
  for (char& ch : sched)
    if (ch == '\n') ch = ';';
  os << "\n  schedule: " << sched;
  os << "\n  replay: fusedp_verify --replay " << seed;
  return os.str();
}

DiffResult diff_pipeline(const Pipeline& pl,
                         const std::vector<Buffer>& inputs,
                         std::uint64_t seed, const DifferOptions& d) {
  DiffResult res;
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  const std::vector<int> topo = pl.graph().topo_order();
  Rng rng(seed ^ 0xD1FFC0DEu);

  std::vector<Grouping> groupings;
  groupings.push_back(singleton_untiled(pl));
  for (int i = 0; i < d.groupings_per_seed; ++i)
    groupings.push_back(random_grouping(pl, rng));

  for (const Grouping& g : groupings)
    if (run_configs(pl, inputs, ref, topo, g, seed, rng, d.max_threads, &res))
      return res;
  return res;
}

DiffResult diff_grouping(const Pipeline& pl, const Grouping& grouping,
                         const std::vector<Buffer>& inputs,
                         std::uint64_t seed, const DifferOptions& d) {
  DiffResult res;
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  const std::vector<int> topo = pl.graph().topo_order();
  Rng rng(seed ^ 0xD1FFC0DEu);
  run_configs(pl, inputs, ref, topo, grouping, seed, rng, d.max_threads,
              &res);
  return res;
}

DiffResult diff_seed(std::uint64_t seed, const DifferOptions& opts) {
  const auto pl = generate_pipeline(seed, opts.gen);
  const auto inputs = generate_inputs(*pl, seed);
  return diff_pipeline(*pl, inputs, seed, opts);
}

}  // namespace fusedp::verify
