#include "verify/pipegen.hpp"

#include <algorithm>
#include <string>

#include "support/image_io.hpp"
#include "support/rng.hpp"

namespace fusedp::verify {

namespace {

// Resolution-level extent: halved per level, floored so deep chains over
// small bases stay runnable.  Degenerate axes (extent 1) never scale.
std::int64_t level_extent(std::int64_t base, int lvl) {
  if (base <= 1) return base;
  return std::max<std::int64_t>(4, base >> lvl);
}

struct GenCtx {
  Pipeline* pl = nullptr;
  Rng* rng = nullptr;
  std::int64_t channels = 0;  // 0: no rank-3 anywhere in this pipeline
  // Per-stage metadata, indexed by stage id.
  std::vector<int> level;
  std::vector<const Stage*> stages;
  // Per-input levels are all 0.
};

// Emits one load of `p` from a stage of rank `srank` at level `slvl`, with
// offsets (dy, dx) on the spatial axes.  Handles every rank pairing the IR
// allows: trailing-aligned same/lower-rank producers, and rank-3 producers
// read from rank-2 stages via a constant channel axis.  Producer/consumer
// level mismatch becomes a 2^d up/down-sampling affine map; out-of-domain
// indices are folded by the load's border mode, so any offset is valid.
Eh make_tap(GenCtx& g, StageBuilder& b, ProducerRef p, int srank, int slvl,
            int plvl, std::int64_t dy, std::int64_t dx) {
  const Box& pd = g.pl->producer_domain(p);
  const int prank = pd.rank;
  int num = 1, den = 1;
  std::int64_t pre = 0;
  if (plvl < slvl) {
    num = 1 << (slvl - plvl);  // producer finer: downsampling access 2^d*x
  } else if (plvl > slvl) {
    den = 1 << (plvl - slvl);  // producer coarser: upsampling access x/2^d
    pre = static_cast<std::int64_t>(g.rng->next_below(
        static_cast<std::uint64_t>(den)));
  }
  std::vector<AxisMap> axes(static_cast<std::size_t>(prank));
  if (prank == 3) {
    // Channel axis: identity when the consumer also has channels, else a
    // constant slice (the rank-collapse case).
    axes[0] = srank == 3 ? AxisMap::affine(0, 0)
                         : AxisMap::constant(static_cast<std::int64_t>(
                               g.rng->next_below(static_cast<std::uint64_t>(
                                   g.channels > 0 ? g.channels : 1))));
  }
  axes[static_cast<std::size_t>(prank - 2)] =
      AxisMap::affine(srank - 2, dy, num, den, pre);
  axes[static_cast<std::size_t>(prank - 1)] =
      AxisMap::affine(srank - 1, dx, num, den, pre);
  return b.load(p, std::move(axes));
}

}  // namespace

std::unique_ptr<Pipeline> generate_pipeline(std::uint64_t seed,
                                            const PipeGenOptions& opts) {
  Rng rng(seed);
  auto pl = std::make_unique<Pipeline>("gen" + std::to_string(seed));

  GenCtx g;
  g.pl = pl.get();
  g.rng = &rng;

  // Base shape.  A degenerate pipeline pins one or both spatial extents to 1
  // (and disables re-sampling); otherwise both are uniform in
  // [min_extent, max_extent].
  const std::int64_t span = std::max<std::int64_t>(
      1, opts.max_extent - opts.min_extent + 1);
  std::int64_t base_h =
      opts.min_extent +
      static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(span)));
  std::int64_t base_w =
      opts.min_extent +
      static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(span)));
  const bool degenerate = rng.next_bool(opts.p_degenerate);
  if (degenerate) {
    switch (rng.next_below(3)) {
      case 0: base_h = 1; break;
      case 1: base_w = 1; break;
      default: base_h = base_w = 1; break;
    }
  }
  const bool allow_scaling =
      !degenerate && opts.p_scaling > 0.0 && std::min(base_h, base_w) >= 16;
  if (rng.next_bool(opts.p_rank3))
    g.channels = 2 + static_cast<std::int64_t>(rng.next_below(2));

  // Inputs: the primary image (rank 3 when the pipeline has channels) and,
  // sometimes, a secondary rank-2 plane (mask/weight-style).
  std::vector<int> input_ids;
  if (g.channels > 0) {
    input_ids.push_back(pl->add_input("img", {g.channels, base_h, base_w}));
  } else {
    input_ids.push_back(pl->add_input("img", {base_h, base_w}));
  }
  if (rng.next_bool(0.3))
    input_ids.push_back(pl->add_input("aux", {base_h, base_w}));

  const int span_stages = std::max(1, opts.max_stages - opts.min_stages + 1);
  const int n = opts.min_stages +
                static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(span_stages)));

  for (int i = 0; i < n; ++i) {
    // Primary producer: the input for the first stage, afterwards a random
    // earlier stage (or occasionally back to an input, which creates
    // independent chains that reconverge later).
    ProducerRef prim;
    if (i == 0 || rng.next_bool(0.2)) {
      prim = {true, static_cast<std::int32_t>(
                        rng.next_below(input_ids.size()))};
    } else {
      prim = {false, static_cast<std::int32_t>(
                         rng.next_below(static_cast<std::uint64_t>(i)))};
    }
    const int plvl =
        prim.is_input ? 0 : g.level[static_cast<std::size_t>(prim.id)];
    const int prank = pl->producer_domain(prim).rank;

    // Stage level: usually the producer's; with p_scaling, one level finer
    // (upsample) or coarser (downsample), clamped to [0, 2].
    int lvl = plvl;
    if (allow_scaling && rng.next_bool(opts.p_scaling)) {
      if (rng.next_bool(0.5) && lvl < 2) ++lvl;
      else if (lvl > 0) --lvl;
      else if (lvl < 2) ++lvl;
    }

    // Stage rank: follows the primary producer; a rank-3 producer sometimes
    // collapses to a rank-2 stage (constant channel axis), and a rank-2
    // producer in a channelled pipeline sometimes broadcasts up to rank 3.
    int srank = prank;
    if (prank == 3 && rng.next_bool(0.35)) srank = 2;
    else if (prank == 2 && g.channels > 0 && rng.next_bool(0.2)) srank = 3;

    const std::int64_t sh = level_extent(base_h, lvl);
    const std::int64_t sw = level_extent(base_w, lvl);
    std::vector<std::int64_t> extents =
        srank == 3 ? std::vector<std::int64_t>{g.channels, sh, sw}
                   : std::vector<std::int64_t>{sh, sw};
    StageBuilder b(*pl, pl->add_stage("s" + std::to_string(i), extents));

    // Border mode for every load of this stage.
    switch (rng.next_below(8)) {
      case 0: b.set_border(Border::kMirror); break;
      case 1: b.set_border(Border::kWrap); break;
      case 2: b.set_border(Border::kZero); break;
      default: b.set_border(Border::kClamp); break;  // the common case
    }

    // Optional second producer; the last stage takes one eagerly so
    // independent chains reconverge into a diamond.
    std::vector<std::pair<ProducerRef, int>> prods = {{prim, plvl}};
    const bool want_second =
        i > 0 && (i == n - 1 || rng.next_bool(opts.p_second_producer));
    if (want_second) {
      ProducerRef sec;
      if (rng.next_bool(0.15)) {
        sec = {true, static_cast<std::int32_t>(
                         rng.next_below(input_ids.size()))};
      } else {
        sec = {false, static_cast<std::int32_t>(
                          rng.next_below(static_cast<std::uint64_t>(i)))};
      }
      const int seclvl =
          sec.is_input ? 0 : g.level[static_cast<std::size_t>(sec.id)];
      // Keep the level gap resolvable by one power-of-two map.
      if (std::abs(seclvl - lvl) <= 1 && !(sec == prim))
        prods.emplace_back(sec, seclvl);
    }

    // Body: weighted stencil taps over each producer, then random post-ops.
    const int radius = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(opts.max_radius + 1)));
    Eh acc = b.cst(0.05f * static_cast<float>(i + 1));
    std::vector<Eh> taps;
    for (const auto& [p, pl_lvl] : prods) {
      const int ntaps = 1 + static_cast<int>(rng.next_below(3));
      for (int t = 0; t < ntaps; ++t) {
        const std::int64_t dy =
            static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(2 * radius + 1))) - radius;
        const std::int64_t dx =
            static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(2 * radius + 1))) - radius;
        Eh tap = make_tap(g, b, p, srank, lvl, pl_lvl, dy, dx);
        taps.push_back(tap);
        // Small weights keep values bounded across deep chains.
        const float w =
            0.0625f * static_cast<float>(1 + rng.next_below(6)) *
            (rng.next_bool(0.25) ? -1.0f : 1.0f);
        acc = acc + tap * w;
      }
    }

    // Compare-and-select: condition over taps or the accumulator.
    if (rng.next_bool(opts.p_select)) {
      Eh cond = taps.size() >= 2 && rng.next_bool(0.5)
                    ? (rng.next_bool(0.5) ? lt(taps[0], taps[1])
                                          : le(taps[0], taps[1]))
                    : lt(acc, 0.25f * static_cast<float>(1 + rng.next_below(3)));
      acc = select(cond, acc * 0.75f + 0.125f, 1.0f - acc * 0.5f);
    }

    // A short random post-op chain over the remaining unary/binary ops.
    // The transcendental shapes keep their inputs in safe ranges (clamped
    // exponents, positive log/pow bases) so values stay bounded through
    // deep chains while still exercising the libm — and, on the differ's
    // tolerance rung, the approximate — kernels.
    const int extras = static_cast<int>(rng.next_below(3));
    for (int e = 0; e < extras; ++e) {
      switch (rng.next_below(10)) {
        case 0: acc = min(acc, 1.5f); break;
        case 1: acc = max(acc, -1.5f); break;
        case 2: acc = abs(acc); break;
        case 3: acc = sqrt(abs(acc) + 0.25f); break;
        case 4: acc = floor(acc * 4.0f) * 0.25f; break;
        case 7: acc = exp(min(max(acc, -4.0f), 4.0f)) * 0.25f; break;
        case 8: acc = log(abs(acc) + 0.5f); break;
        case 9:
          acc = pow(abs(acc) + 0.25f,
                    0.5f + 0.5f * static_cast<float>(rng.next_below(4)));
          break;
        case 5:
          acc = acc + b.coord(srank - 1 -
                              static_cast<int>(rng.next_below(2))) *
                          0.001f;
          break;
        default:
          if (!taps.empty())
            acc = acc + eq(floor(taps[0] * 2.0f), 1.0f) * 0.125f;
          else
            acc = acc / 1.25f;
          break;
      }
    }
    b.define(acc * 0.5f);
    if (rng.next_bool(opts.p_extra_output)) b.mark_output();

    g.level.push_back(lvl);
    g.stages.push_back(&b.stage());
  }

  pl->finalize();
  return pl;
}

std::vector<Buffer> generate_inputs(const Pipeline& pl, std::uint64_t seed) {
  std::vector<Buffer> inputs;
  inputs.reserve(static_cast<std::size_t>(pl.num_inputs()));
  for (int i = 0; i < pl.num_inputs(); ++i) {
    const Box& dom = pl.input(i).domain;
    std::vector<std::int64_t> extents;
    for (int d = 0; d < dom.rank; ++d) extents.push_back(dom.extent(d));
    inputs.push_back(make_synthetic_image(
        extents, seed + 0x9E3779B9u * static_cast<std::uint64_t>(i + 1)));
  }
  return inputs;
}

}  // namespace fusedp::verify
