// Cross-backend differential oracle.
//
// Runs a pipeline through every execution backend — scalar-tiled
// interpreter, row interpreter, compiled scalar program, vectorized backend
// with and without superop fusion — over randomized valid groupings, tile
// sizes (including size-1, oversized and non-divisible), thread counts and
// both tile schedules, and compares every materialized stage bit-for-bit
// against the unfused scalar reference (run_reference).
//
// On mismatch the result carries a minimized DivergenceRecord: the earliest
// diverging stage in topo order, the exact coordinate, both bit patterns,
// the active ExecOptions and schedule text, and the generator seed —
// everything needed for a one-line replay (`fusedp_verify --replay SEED`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/executor.hpp"
#include "verify/pipegen.hpp"

namespace fusedp::verify {

struct DivergenceRecord {
  std::uint64_t seed = 0;
  std::string pipeline;   // generated pipeline name ("gen<seed>")
  std::string backend;    // diverging backend config label
  std::string stage;      // earliest diverging stage (topo order)
  int rank = 0;
  std::int64_t coord[kMaxDims] = {0, 0, 0, 0};
  std::uint32_t want_bits = 0;  // scalar reference
  std::uint32_t got_bits = 0;
  float want = 0.0f;
  float got = 0.0f;
  ExecOptions opts;       // full options of the diverging run
  std::string schedule;   // grouping_to_text of the diverging grouping
  // Non-empty when the run threw instead of producing wrong bits; the
  // record then localizes the failure, not a coordinate.
  std::string error;

  // Multi-line human-readable report incl. the replay command.
  std::string to_string() const;
};

struct DifferOptions {
  int groupings_per_seed = 3;  // random groupings beyond the singleton one
  int max_threads = 3;
  PipeGenOptions gen;
};

struct DiffResult {
  bool diverged = false;
  DivergenceRecord record;  // valid only when diverged
  int runs = 0;             // executor configurations exercised
};

// Generates pipeline + inputs for `seed` and cross-checks all backends.
DiffResult diff_seed(std::uint64_t seed, const DifferOptions& opts = {});

// Same oracle over a caller-provided pipeline; `seed` only labels the
// record and seeds config randomization.
DiffResult diff_pipeline(const Pipeline& pl,
                         const std::vector<Buffer>& inputs,
                         std::uint64_t seed, const DifferOptions& opts = {});

// Cross-checks one specific schedule (all backend configs, no random
// groupings) — fusedp_cli --verify runs its chosen grouping through this.
DiffResult diff_grouping(const Pipeline& pl, const Grouping& grouping,
                         const std::vector<Buffer>& inputs,
                         std::uint64_t seed, const DifferOptions& opts = {});

}  // namespace fusedp::verify
