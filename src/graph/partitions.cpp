#include "graph/partitions.hpp"

#include <array>

namespace fusedp {

namespace {

// Recursively assigns members[i..k-1] to existing parts or a fresh part.
void enumerate(const std::array<int, kMaxPartitionSetSize>& members, int k,
               int i, std::vector<NodeSet>& parts,
               const std::function<void(const std::vector<NodeSet>&)>& fn) {
  if (i == k) {
    fn(parts);
    return;
  }
  const int n = members[static_cast<std::size_t>(i)];
  for (std::size_t p = 0; p < parts.size(); ++p) {
    parts[p] = parts[p].with(n);
    enumerate(members, k, i + 1, parts, fn);
    parts[p] = parts[p].without(n);
  }
  parts.push_back(NodeSet::single(n));
  enumerate(members, k, i + 1, parts, fn);
  parts.pop_back();
}

}  // namespace

void for_each_partition(
    NodeSet s, const std::function<void(const std::vector<NodeSet>&)>& fn) {
  const int k = s.size();
  FUSEDP_CHECK(k <= kMaxPartitionSetSize, "partition set too large");
  std::array<int, kMaxPartitionSetSize> members{};
  {
    int i = 0;
    s.for_each([&](int n) { members[static_cast<std::size_t>(i++)] = n; });
  }
  std::vector<NodeSet> parts;
  parts.reserve(static_cast<std::size_t>(k));
  enumerate(members, k, 0, parts, fn);
}

std::uint64_t bell_number(int k) {
  FUSEDP_CHECK(k >= 0 && k <= 20, "bell_number supports k in [0,20]");
  // Bell triangle.
  std::array<std::array<std::uint64_t, 21>, 21> t{};
  t[0][0] = 1;
  for (int n = 1; n <= k; ++n) {
    t[static_cast<std::size_t>(n)][0] =
        t[static_cast<std::size_t>(n - 1)][static_cast<std::size_t>(n - 1)];
    for (int j = 1; j <= n; ++j)
      t[static_cast<std::size_t>(n)][static_cast<std::size_t>(j)] =
          t[static_cast<std::size_t>(n)][static_cast<std::size_t>(j - 1)] +
          t[static_cast<std::size_t>(n - 1)][static_cast<std::size_t>(j - 1)];
  }
  return t[static_cast<std::size_t>(k)][0];
}

}  // namespace fusedp
