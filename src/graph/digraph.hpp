// Small dense digraph over <= 64 nodes.
//
// Provides the graph queries the fusion engines need: successor/predecessor
// sets, transitive reachability (for Algorithm 1's cycle check), topological
// order, undirected connectivity of a node subset (group-connectivity
// validation), and source/sink sets.
#pragma once

#include <vector>

#include "graph/nodeset.hpp"

namespace fusedp {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int n);

  int num_nodes() const { return n_; }
  void add_edge(int from, int to);
  bool has_edge(int from, int to) const {
    return succ_[static_cast<std::size_t>(from)].contains(to);
  }

  NodeSet successors(int n) const { return succ_[static_cast<std::size_t>(n)]; }
  NodeSet predecessors(int n) const { return pred_[static_cast<std::size_t>(n)]; }

  // Union of successors of all members of `s`, excluding members of `s`.
  NodeSet successors_of_set(NodeSet s) const;
  NodeSet predecessors_of_set(NodeSet s) const;

  // All nodes reachable from n via >= 1 edge.  O(1) after finalize().
  NodeSet reachable_from(int n) const;
  bool is_reachable(int from, int to) const {
    return reachable_from(from).contains(to);
  }

  // Nodes with no predecessors / successors.
  NodeSet sources() const;
  NodeSet sinks() const;

  // True iff the nodes of `s` form a connected subgraph when edge directions
  // are ignored (the paper requires each group H_i to be connected).
  bool is_connected_undirected(NodeSet s) const;

  // Topological order of all nodes; throws if the graph has a cycle.
  std::vector<int> topo_order() const;

  // Topological order restricted to the members of `s`.
  std::vector<int> topo_order_of(NodeSet s) const;

  // True iff the quotient graph whose vertices are `groups` (disjoint node
  // sets covering a subset of nodes) is acyclic, considering only edges
  // between different groups.
  bool quotient_is_acyclic(const std::vector<NodeSet>& groups) const;

  // Must be called after all edges are added and before reachability queries.
  void finalize();
  bool finalized() const { return finalized_; }

 private:
  int n_ = 0;
  bool finalized_ = false;
  std::vector<NodeSet> succ_;
  std::vector<NodeSet> pred_;
  std::vector<NodeSet> reach_;  // transitive closure
};

}  // namespace fusedp
