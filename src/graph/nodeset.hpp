// NodeSet: a set of up-to-64 graph nodes as a bitmask.
//
// Every pipeline in the paper has <= 49 stages (Table 2); a 64-bit mask keeps
// the DP's memo keys and the PARTITIONS enumeration allocation-free.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "support/status.hpp"

namespace fusedp {

inline constexpr int kMaxNodes = 64;

class NodeSet {
 public:
  constexpr NodeSet() = default;
  constexpr explicit NodeSet(std::uint64_t bits) : bits_(bits) {}
  static constexpr NodeSet single(int n) { return NodeSet(1ull << n); }

  constexpr std::uint64_t bits() const { return bits_; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr int size() const { return std::popcount(bits_); }
  constexpr bool contains(int n) const { return (bits_ >> n) & 1ull; }

  constexpr NodeSet with(int n) const { return NodeSet(bits_ | (1ull << n)); }
  constexpr NodeSet without(int n) const {
    return NodeSet(bits_ & ~(1ull << n));
  }
  constexpr NodeSet operator|(NodeSet o) const { return NodeSet(bits_ | o.bits_); }
  constexpr NodeSet operator&(NodeSet o) const { return NodeSet(bits_ & o.bits_); }
  constexpr NodeSet operator-(NodeSet o) const { return NodeSet(bits_ & ~o.bits_); }
  constexpr bool operator==(const NodeSet&) const = default;
  constexpr bool intersects(NodeSet o) const { return (bits_ & o.bits_) != 0; }
  constexpr bool contains_all(NodeSet o) const {
    return (bits_ & o.bits_) == o.bits_;
  }

  // Lowest-numbered member; set must be non-empty.
  int first() const {
    FUSEDP_DCHECK(bits_ != 0, "first() on empty NodeSet");
    return std::countr_zero(bits_);
  }

  // Iterates members in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t b = bits_;
    while (b) {
      const int n = std::countr_zero(b);
      fn(n);
      b &= b - 1;
    }
  }

  std::string to_string() const {
    std::string s = "{";
    bool f = true;
    for_each([&](int n) {
      if (!f) s += ",";
      s += std::to_string(n);
      f = false;
    });
    return s + "}";
  }

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace fusedp
