#include "graph/digraph.hpp"

#include <algorithm>

namespace fusedp {

Digraph::Digraph(int n) : n_(n) {
  FUSEDP_CHECK(n >= 0 && n <= kMaxNodes, "digraph supports up to 64 nodes");
  succ_.assign(static_cast<std::size_t>(n), NodeSet());
  pred_.assign(static_cast<std::size_t>(n), NodeSet());
}

void Digraph::add_edge(int from, int to) {
  FUSEDP_CHECK(from >= 0 && from < n_ && to >= 0 && to < n_ && from != to,
               "bad edge");
  FUSEDP_CHECK(!finalized_, "graph already finalized");
  succ_[static_cast<std::size_t>(from)] =
      succ_[static_cast<std::size_t>(from)].with(to);
  pred_[static_cast<std::size_t>(to)] =
      pred_[static_cast<std::size_t>(to)].with(from);
}

NodeSet Digraph::successors_of_set(NodeSet s) const {
  NodeSet out;
  s.for_each([&](int n) { out = out | succ_[static_cast<std::size_t>(n)]; });
  return out - s;
}

NodeSet Digraph::predecessors_of_set(NodeSet s) const {
  NodeSet out;
  s.for_each([&](int n) { out = out | pred_[static_cast<std::size_t>(n)]; });
  return out - s;
}

NodeSet Digraph::reachable_from(int n) const {
  FUSEDP_DCHECK(finalized_, "call finalize() before reachability queries");
  return reach_[static_cast<std::size_t>(n)];
}

NodeSet Digraph::sources() const {
  NodeSet s;
  for (int i = 0; i < n_; ++i)
    if (pred_[static_cast<std::size_t>(i)].empty()) s = s.with(i);
  return s;
}

NodeSet Digraph::sinks() const {
  NodeSet s;
  for (int i = 0; i < n_; ++i)
    if (succ_[static_cast<std::size_t>(i)].empty()) s = s.with(i);
  return s;
}

bool Digraph::is_connected_undirected(NodeSet s) const {
  if (s.empty()) return true;
  NodeSet visited = NodeSet::single(s.first());
  // Breadth-first expansion within s until a fixed point.
  for (;;) {
    NodeSet next = visited;
    visited.for_each([&](int n) {
      next = next | (succ_[static_cast<std::size_t>(n)] & s);
      next = next | (pred_[static_cast<std::size_t>(n)] & s);
    });
    if (next == visited) break;
    visited = next;
  }
  return visited == s;
}

std::vector<int> Digraph::topo_order() const {
  NodeSet all;
  for (int i = 0; i < n_; ++i) all = all.with(i);
  return topo_order_of(all);
}

std::vector<int> Digraph::topo_order_of(NodeSet s) const {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(s.size()));
  NodeSet placed;
  NodeSet remaining = s;
  while (!remaining.empty()) {
    NodeSet ready;
    remaining.for_each([&](int n) {
      // Node is ready when every in-set predecessor is already placed.
      if (((pred_[static_cast<std::size_t>(n)] & s) - placed).empty())
        ready = ready.with(n);
    });
    FUSEDP_CHECK(!ready.empty(), "cycle detected in topo_order_of");
    ready.for_each([&](int n) { order.push_back(n); });
    placed = placed | ready;
    remaining = remaining - ready;
  }
  return order;
}

bool Digraph::quotient_is_acyclic(const std::vector<NodeSet>& groups) const {
  const int g = static_cast<int>(groups.size());
  // Build group-level adjacency, then Kahn's algorithm.
  std::vector<NodeSet> gsucc(static_cast<std::size_t>(g));
  std::vector<int> indeg(static_cast<std::size_t>(g), 0);
  for (int a = 0; a < g; ++a) {
    const NodeSet sa = successors_of_set(groups[static_cast<std::size_t>(a)]);
    for (int b = 0; b < g; ++b) {
      if (a == b) continue;
      if (sa.intersects(groups[static_cast<std::size_t>(b)])) {
        if (!gsucc[static_cast<std::size_t>(a)].contains(b)) {
          gsucc[static_cast<std::size_t>(a)] =
              gsucc[static_cast<std::size_t>(a)].with(b);
          ++indeg[static_cast<std::size_t>(b)];
        }
      }
    }
  }
  std::vector<int> stack;
  for (int i = 0; i < g; ++i)
    if (indeg[static_cast<std::size_t>(i)] == 0) stack.push_back(i);
  int seen = 0;
  while (!stack.empty()) {
    const int a = stack.back();
    stack.pop_back();
    ++seen;
    gsucc[static_cast<std::size_t>(a)].for_each([&](int b) {
      if (--indeg[static_cast<std::size_t>(b)] == 0) stack.push_back(b);
    });
  }
  return seen == g;
}

void Digraph::finalize() {
  FUSEDP_CHECK(!finalized_, "finalize() called twice");
  // Transitive closure in reverse topological order: reach(n) = succ(n) U
  // union of reach(s) for s in succ(n).
  finalized_ = true;  // topo_order uses only succ/pred
  const std::vector<int> order = topo_order();
  reach_.assign(static_cast<std::size_t>(n_), NodeSet());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int n = *it;
    NodeSet r = succ_[static_cast<std::size_t>(n)];
    succ_[static_cast<std::size_t>(n)].for_each(
        [&](int s) { r = r | reach_[static_cast<std::size_t>(s)]; });
    reach_[static_cast<std::size_t>(n)] = r;
  }
}

}  // namespace fusedp
