// Set-partition enumeration for the DP recurrence's PARTITIONS operator
// (paper Figure 5, Case II): all ways of splitting the successor frontier
// into new groups.
//
// Enumeration uses restricted-growth strings; the number of partitions of a
// k-element set is the Bell number B(k) (B(5)=52 — the paper reports
// max|SUCC(G)| <= 5 across all six benchmarks, Table 2).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/nodeset.hpp"

namespace fusedp {

// Invokes `fn` once per partition of the members of `s`.  Each partition is a
// vector of disjoint non-empty NodeSets whose union is `s`.  The vector
// passed to `fn` is reused between calls; copy it if you keep it.
// Enumeration order is deterministic.  `s` may have at most
// `kMaxPartitionSetSize` members (guards against pathological frontiers).
inline constexpr int kMaxPartitionSetSize = 12;

void for_each_partition(NodeSet s,
                        const std::function<void(const std::vector<NodeSet>&)>& fn);

// Number of partitions of a k-element set (Bell number); k <= 20.
std::uint64_t bell_number(int k);

}  // namespace fusedp
