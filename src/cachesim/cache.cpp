#include "cachesim/cache.hpp"

namespace fusedp {

Cache::Cache(std::int64_t size_bytes, int ways, int line_bytes)
    : size_(size_bytes), ways_(ways), line_(line_bytes) {
  FUSEDP_CHECK(size_bytes > 0 && ways > 0 && line_bytes > 0,
               "bad cache geometry");
  FUSEDP_CHECK(size_bytes % (static_cast<std::int64_t>(ways) * line_bytes) == 0,
               "cache size must be a multiple of ways * line");
  sets_ = size_bytes / (static_cast<std::int64_t>(ways) * line_bytes);
  FUSEDP_CHECK((sets_ & (sets_ - 1)) == 0, "set count must be a power of two");
  reset();
}

void Cache::reset() {
  const std::size_t n = static_cast<std::size_t>(sets_) *
                        static_cast<std::size_t>(ways_);
  tags_.assign(n, 0);
  lru_.assign(n, 0);
  valid_.assign(n, 0);
  clock_ = 0;
}

bool Cache::access(std::uint64_t addr) {
  const std::uint64_t block = addr / static_cast<std::uint64_t>(line_);
  const std::uint64_t set = block & static_cast<std::uint64_t>(sets_ - 1);
  const std::uint64_t tag = block >> __builtin_ctzll(
                                static_cast<std::uint64_t>(sets_));
  const std::size_t base = static_cast<std::size_t>(set) *
                           static_cast<std::size_t>(ways_);
  ++clock_;
  int victim = 0;
  std::uint64_t oldest = ~0ull;
  for (int w = 0; w < ways_; ++w) {
    const std::size_t i = base + static_cast<std::size_t>(w);
    if (valid_[i] && tags_[i] == tag) {
      lru_[i] = clock_;
      return true;
    }
    if (!valid_[i]) {
      victim = w;
      oldest = 0;
    } else if (lru_[i] < oldest) {
      victim = w;
      oldest = lru_[i];
    }
  }
  const std::size_t v = base + static_cast<std::size_t>(victim);
  tags_[v] = tag;
  valid_[v] = 1;
  lru_[v] = clock_;
  return false;
}

}  // namespace fusedp
