// Set-associative LRU cache simulator.
//
// Table 5 of the paper reports L1/L2 hit and L2 miss fractions from hardware
// counters; this environment has no PMU access, so we replay the executor's
// exact memory-access streams through a two-level simulated hierarchy
// instead (DESIGN.md, "Hardware substitution").
#pragma once

#include <cstdint>
#include <vector>

#include "support/status.hpp"

namespace fusedp {

class Cache {
 public:
  // size/line in bytes; ways = associativity.  size must be divisible by
  // line * ways.
  Cache(std::int64_t size_bytes, int ways, int line_bytes = 64);

  // True on hit; on miss the line is installed (allocate-on-miss for both
  // reads and writes, write-back semantics).
  bool access(std::uint64_t addr);

  void reset();
  std::int64_t size_bytes() const { return size_; }
  int ways() const { return ways_; }
  int line_bytes() const { return line_; }
  std::int64_t num_sets() const { return sets_; }

 private:
  std::int64_t size_;
  int ways_;
  int line_;
  std::int64_t sets_;
  // tags_[set * ways + way]; lru_[...] holds a per-set logical clock.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::vector<std::uint8_t> valid_;
  std::uint64_t clock_ = 0;
};

struct HierarchyStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;   // L1 misses that hit in L2
  std::uint64_t l2_misses = 0;

  double l1_hit_frac() const {
    return accesses ? static_cast<double>(l1_hits) / accesses : 0.0;
  }
  double l2_hit_frac() const {
    return accesses ? static_cast<double>(l2_hits) / accesses : 0.0;
  }
  double l2_miss_frac() const {
    return accesses ? static_cast<double>(l2_misses) / accesses : 0.0;
  }
};

// Two-level inclusive-enough hierarchy: every access goes to L1; L1 misses
// go to L2.
class CacheHierarchy {
 public:
  CacheHierarchy(Cache l1, Cache l2) : l1_(std::move(l1)), l2_(std::move(l2)) {}

  void access(std::uint64_t addr) {
    ++stats_.accesses;
    if (l1_.access(addr)) {
      ++stats_.l1_hits;
      return;
    }
    if (l2_.access(addr))
      ++stats_.l2_hits;
    else
      ++stats_.l2_misses;
  }

  void reset() {
    l1_.reset();
    l2_.reset();
    stats_ = {};
  }
  const HierarchyStats& stats() const { return stats_; }

 private:
  Cache l1_;
  Cache l2_;
  HierarchyStats stats_;
};

}  // namespace fusedp
