#include "cachesim/trace.hpp"

#include <algorithm>

#include "runtime/plan.hpp"

namespace fusedp {

namespace {

constexpr std::uint64_t kPageAlign = 4096;

std::uint64_t align_up(std::uint64_t v) {
  return (v + kPageAlign - 1) / kPageAlign * kPageAlign;
}

// Row-major flat offset of `c` within `box`.
std::int64_t offset_in(const Box& box, const std::int64_t* c) {
  std::int64_t off = 0;
  for (int d = 0; d < box.rank; ++d)
    off = off * box.extent(d) + (c[d] - box.lo[d]);
  return off;
}

}  // namespace

HierarchyStats simulate_grouping(const Pipeline& pl, const Grouping& grouping,
                                 CacheHierarchy& hier,
                                 const TraceOptions& opts) {
  for (const Stage& s : pl.stages()) {
    FUSEDP_CHECK(s.kind == StageKind::kMap,
                 "trace simulation does not support reductions");
    for (const Access& a : s.loads)
      for (const AxisMap& m : a.axes)
        FUSEDP_CHECK(m.kind != AxisMap::Kind::kDynamic,
                     "trace simulation does not support dynamic accesses");
  }
  const ExecutablePlan plan = lower(pl, grouping);
  hier.reset();

  // Address layout: inputs, then materialized stage buffers, then one
  // scratch region per stage (reused across tiles, as the executor's
  // per-thread scratch is).
  std::vector<std::uint64_t> input_base(
      static_cast<std::size_t>(pl.num_inputs()));
  std::vector<std::uint64_t> global_base(
      static_cast<std::size_t>(pl.num_stages()));
  std::vector<std::uint64_t> scratch_base(
      static_cast<std::size_t>(pl.num_stages()));
  std::uint64_t next = kPageAlign;
  for (int i = 0; i < pl.num_inputs(); ++i) {
    input_base[static_cast<std::size_t>(i)] = next;
    next = align_up(next +
                    static_cast<std::uint64_t>(pl.input(i).domain.volume()) * 4);
  }
  for (int s = 0; s < pl.num_stages(); ++s) {
    global_base[static_cast<std::size_t>(s)] = next;
    next = align_up(next + static_cast<std::uint64_t>(pl.stage(s).volume()) * 4);
  }
  for (int s = 0; s < pl.num_stages(); ++s) {
    scratch_base[static_cast<std::size_t>(s)] = next;
    next = align_up(next + static_cast<std::uint64_t>(pl.stage(s).volume()) * 4);
  }

  for (const GroupPlan& g : plan.groups) {
    const std::int64_t ntiles =
        std::min<std::int64_t>(g.total_tiles, opts.max_tiles_per_group);
    for (std::int64_t t = 0; t < ntiles; ++t) {
      Box tile;
      tile.rank = g.align.num_classes;
      std::int64_t rem = t;
      for (int d = tile.rank - 1; d >= 0; --d) {
        const std::int64_t nd = g.tiles_per_dim[static_cast<std::size_t>(d)];
        const std::int64_t idx = rem % nd;
        rem /= nd;
        tile.lo[d] = idx * g.tile_sizes[static_cast<std::size_t>(d)];
        tile.hi[d] = std::min(
            tile.lo[d] + g.tile_sizes[static_cast<std::size_t>(d)] - 1,
            g.align.class_extent[static_cast<std::size_t>(d)] - 1);
      }
      const GroupRegions regions = compute_group_regions(
          pl, g.stages, g.align, tile, /*clamp=*/true, &g.stage_order);

      for (int s : g.stage_order) {
        const StageRegions& reg = regions.stages[static_cast<std::size_t>(s)];
        const Box& req = reg.required;
        if (req.empty()) continue;
        const Stage& st = pl.stage(s);
        const bool materialized = plan.materialized[static_cast<std::size_t>(s)];
        const bool direct = materialized && req == reg.owned;

        // Walk the required box in the executor's order, emitting the loads
        // of each element then its store.
        std::int64_t c[kMaxDims];
        for (int d = 0; d < req.rank; ++d) c[d] = req.lo[d];
        for (;;) {
          for (const Access& a : st.loads) {
            const bool in_group = !a.producer.is_input &&
                                  g.stages.contains(a.producer.id);
            const Box& pdom = pl.producer_domain(a.producer);
            std::int64_t pc[kMaxDims];
            bool zero = false;
            for (int k = 0; k < pdom.rank; ++k) {
              const AxisMap& m = a.axes[static_cast<std::size_t>(k)];
              std::int64_t v;
              if (m.kind == AxisMap::Kind::kConstant || m.num == 0)
                v = m.offset;
              else
                v = floor_div(c[m.src_dim] * m.num + m.pre, m.den) + m.offset;
              if (a.border == Border::kZero &&
                  (v < pdom.lo[k] || v > pdom.hi[k])) {
                zero = true;  // constant-zero loads touch no memory
                break;
              }
              pc[k] = fold_coord(v, pdom.lo[k], pdom.hi[k], a.border);
            }
            if (zero) continue;
            std::uint64_t addr;
            if (a.producer.is_input) {
              addr = input_base[static_cast<std::size_t>(a.producer.id)] +
                     static_cast<std::uint64_t>(offset_in(pdom, pc)) * 4;
            } else if (in_group &&
                       !(plan.materialized[static_cast<std::size_t>(
                             a.producer.id)] &&
                         regions.stages[static_cast<std::size_t>(a.producer.id)]
                                 .required ==
                             regions.stages[static_cast<std::size_t>(
                                                a.producer.id)]
                                 .owned)) {
              const Box& preq =
                  regions.stages[static_cast<std::size_t>(a.producer.id)]
                      .required;
              addr = scratch_base[static_cast<std::size_t>(a.producer.id)] +
                     static_cast<std::uint64_t>(offset_in(preq, pc)) * 4;
            } else {
              addr = global_base[static_cast<std::size_t>(a.producer.id)] +
                     static_cast<std::uint64_t>(offset_in(pdom, pc)) * 4;
            }
            hier.access(addr);
          }
          // Store of the computed element.
          {
            std::uint64_t addr;
            if (direct)
              addr = global_base[static_cast<std::size_t>(s)] +
                     static_cast<std::uint64_t>(offset_in(st.domain, c)) * 4;
            else
              addr = scratch_base[static_cast<std::size_t>(s)] +
                     static_cast<std::uint64_t>(offset_in(req, c)) * 4;
            hier.access(addr);
          }
          int d = req.rank - 1;
          for (; d >= 0; --d) {
            if (++c[d] <= req.hi[d]) break;
            c[d] = req.lo[d];
          }
          if (d < 0) break;
        }

        // Publication of the owned slice (scratch -> global copy).
        if (materialized && !direct && !reg.owned.empty()) {
          std::int64_t oc[kMaxDims];
          for (int d = 0; d < reg.owned.rank; ++d) oc[d] = reg.owned.lo[d];
          for (;;) {
            hier.access(scratch_base[static_cast<std::size_t>(s)] +
                        static_cast<std::uint64_t>(offset_in(req, oc)) * 4);
            hier.access(global_base[static_cast<std::size_t>(s)] +
                        static_cast<std::uint64_t>(offset_in(st.domain, oc)) *
                            4);
            int d = reg.owned.rank - 1;
            for (; d >= 0; --d) {
              if (++oc[d] <= reg.owned.hi[d]) break;
              oc[d] = reg.owned.lo[d];
            }
            if (d < 0) break;
          }
        }
      }
    }
  }
  return hier.stats();
}

}  // namespace fusedp
