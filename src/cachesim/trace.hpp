// Access-trace generation: replays the executor's exact tiled loop structure
// (required regions, per-thread scratch reuse, owned-slice publication) as a
// memory-address stream through a simulated cache hierarchy.
//
// Dynamic (data-dependent) accesses would need real data values, which the
// trace walker does not compute; pipelines containing them are rejected.
// Table 5's subject (Unsharp Mask) is fully static.
#pragma once

#include "cachesim/cache.hpp"
#include "fusion/grouping.hpp"

namespace fusedp {

struct TraceOptions {
  // Number of consecutive tiles (as executed by one thread) to replay per
  // group.  Tiles are statistically homogeneous, so a short steady-state
  // window predicts whole-run hit rates.
  std::int64_t max_tiles_per_group = 8;
};

// Replays `grouping` through `hier` and returns its stats.  The hierarchy
// is reset first.
HierarchyStats simulate_grouping(const Pipeline& pl, const Grouping& grouping,
                                 CacheHierarchy& hier,
                                 const TraceOptions& opts = {});

}  // namespace fusedp
