#include "analysis/regions.hpp"

#include <algorithm>
#include <limits>

namespace fusedp {

namespace {

// Clamps both endpoints into `domain` without ever producing an empty box
// (unlike intersect): loads clamp out-of-domain coordinates to the border,
// so the border element itself must stay inside the clamped region.
Box clamp_endpoints(const Box& b, const Box& domain) {
  Box r = b;
  for (int d = 0; d < r.rank; ++d) {
    r.lo[d] = std::clamp(r.lo[d], domain.lo[d], domain.hi[d]);
    r.hi[d] = std::clamp(r.hi[d], domain.lo[d], domain.hi[d]);
  }
  return r;
}

// Image of interval [a, b] under the access's border folding, per axis —
// the region a producer must actually provide.  Always a superset of what
// the evaluator touches; falls back to the full domain extent when the
// interval reaches beyond a single mirror fold or crosses a wrap seam.
Box fold_box(const Box& b, const Box& domain, Border border) {
  if (border == Border::kClamp || border == Border::kZero)
    return clamp_endpoints(b, domain);
  Box r = b;
  for (int d = 0; d < r.rank; ++d) {
    const std::int64_t lo = domain.lo[d], hi = domain.hi[d];
    const std::int64_t n = hi - lo + 1;
    const std::int64_t a = b.lo[d], z = b.hi[d];
    if (a >= lo && z <= hi) continue;  // interior
    if (border == Border::kWrap) {
      if (z - a + 1 >= n || floor_div(a - lo, n) != floor_div(z - lo, n)) {
        r.lo[d] = lo;
        r.hi[d] = hi;  // covers the seam: conservatively the whole axis
      } else {
        r.lo[d] = fold_coord(a, lo, hi, border);
        r.hi[d] = fold_coord(z, lo, hi, border);
      }
      continue;
    }
    // Mirror (reflect-101).
    if (a < lo - (n - 1) || z > hi + (n - 1)) {
      r.lo[d] = lo;
      r.hi[d] = hi;  // beyond one fold
      continue;
    }
    std::int64_t flo = std::numeric_limits<std::int64_t>::max();
    std::int64_t fhi = std::numeric_limits<std::int64_t>::min();
    auto add = [&](std::int64_t x, std::int64_t y) {
      flo = std::min(flo, x);
      fhi = std::max(fhi, y);
    };
    if (a <= hi && z >= lo) add(std::max(a, lo), std::min(z, hi));
    if (a < lo) add(2 * lo - std::min(z, lo - 1), 2 * lo - a);
    if (z > hi) add(2 * hi - z, 2 * hi - std::max(a, hi + 1));
    r.lo[d] = std::clamp(flo, lo, hi);
    r.hi[d] = std::clamp(fhi, lo, hi);
  }
  return r;
}

}  // namespace

Box map_access_box(const Pipeline& pl, const Access& access,
                   const Box& consumer_box) {
  const Box& pd = pl.producer_domain(access.producer);
  Box out;
  out.rank = pd.rank;
  for (int k = 0; k < pd.rank; ++k) {
    const AxisMap& m = access.axes[static_cast<std::size_t>(k)];
    switch (m.kind) {
      case AxisMap::Kind::kConstant:
        out.lo[k] = m.offset;
        out.hi[k] = m.offset;
        break;
      case AxisMap::Kind::kDynamic:
        out.lo[k] = pd.lo[k];
        out.hi[k] = pd.hi[k];
        break;
      case AxisMap::Kind::kAffine: {
        if (m.num == 0) {  // broadcast: single plane at `offset`
          out.lo[k] = m.offset;
          out.hi[k] = m.offset;
          break;
        }
        const std::int64_t clo = consumer_box.lo[m.src_dim];
        const std::int64_t chi = consumer_box.hi[m.src_dim];
        out.lo[k] = floor_div(clo * m.num + m.pre, m.den) + m.offset;
        out.hi[k] = floor_div(chi * m.num + m.pre, m.den) + m.offset;
        break;
      }
    }
  }
  return out;
}

Box owned_box(const Stage& s, const AlignResult& align, const Box& tile) {
  const StageAlign& sa = align.stages[static_cast<std::size_t>(s.id)];
  Box b;
  b.rank = s.rank();
  for (int d = 0; d < s.rank(); ++d) {
    const DimAlign& da = sa.dim[static_cast<std::size_t>(d)];
    if (da.cls < 0 || da.cls >= tile.rank) {
      // Dimension not represented in the tile grid: own the full extent.
      b.lo[d] = s.domain.lo[d];
      b.hi[d] = s.domain.hi[d];
      continue;
    }
    const std::int64_t tlo = tile.lo[da.cls];
    const std::int64_t thi = tile.hi[da.cls];
    // x owned iff floor(x*sn/sd) in [tlo, thi]:
    //   x >= ceil(tlo*sd / sn) and x < ceil((thi+1)*sd / sn).
    b.lo[d] = ceil_div(tlo * da.sd, da.sn);
    b.hi[d] = ceil_div((thi + 1) * da.sd, da.sn) - 1;
  }
  return b;
}

bool is_liveout_of(const Pipeline& pl, NodeSet group, int stage_id) {
  if (pl.stage(stage_id).is_output) return true;
  const NodeSet consumers = pl.graph().successors(stage_id);
  return !(consumers - group).empty();
}

void compute_region_boxes(const Pipeline& pl, NodeSet group,
                          const AlignResult& align, const Box& tile,
                          bool clamp_to_domain, const std::vector<int>& order,
                          StageRegions* out) {
  // Seed with owned boxes.
  for (int s : order) {
    StageRegions& r = out[static_cast<std::size_t>(s)];
    r.owned = owned_box(pl.stage(s), align, tile);
    if (clamp_to_domain) r.owned = r.owned.intersect(pl.stage(s).domain);
    r.required = r.owned;
  }

  // Backward propagation: in reverse topological order, expand each
  // producer's required region by what its in-group consumers read.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int c = *it;
    const Stage& cs = pl.stage(c);
    const Box& creq = out[static_cast<std::size_t>(c)].required;
    if (creq.empty()) continue;
    for (const Access& a : cs.loads) {
      if (a.producer.is_input || !group.contains(a.producer.id)) continue;
      Box need = map_access_box(pl, a, creq);
      if (clamp_to_domain)
        need = fold_box(need, pl.stage(a.producer.id).domain, a.border);
      StageRegions& pr = out[static_cast<std::size_t>(a.producer.id)];
      pr.required = pr.required.hull(need);
    }
  }
}

GroupRegions compute_group_regions(const Pipeline& pl, NodeSet group,
                                   const AlignResult& align, const Box& tile,
                                   bool clamp_to_domain,
                                   const std::vector<int>* order_in) {
  GroupRegions out;
  out.stages.assign(static_cast<std::size_t>(pl.num_stages()), StageRegions{});

  const std::vector<int> order =
      order_in ? *order_in : pl.graph().topo_order_of(group);
  compute_region_boxes(pl, group, align, tile, clamp_to_domain, order,
                       out.stages.data());

  // Volumes.  The live-in volume counts, per (consumer stage, external
  // producer), the hull of everything read — i.e. the distinct data a tile
  // pulls in, not one copy per stencil tap.
  group.for_each([&](int s) {
    const StageRegions& r = out.stages[static_cast<std::size_t>(s)];
    out.computed_volume += r.required.volume();
    out.owned_volume += r.owned.volume();
    if (is_liveout_of(pl, group, s)) out.liveout_volume += r.owned.volume();
    const Stage& st = pl.stage(s);
    // Hull per external producer (inputs keyed negatively).
    std::int64_t hull_key[2 * kMaxNodes];
    Box hulls[2 * kMaxNodes];
    int nhulls = 0;
    for (const Access& a : st.loads) {
      if (!a.producer.is_input && group.contains(a.producer.id)) continue;
      Box need = map_access_box(pl, a, r.required);
      if (clamp_to_domain)
        need = fold_box(need, pl.producer_domain(a.producer), a.border)
                   .intersect(pl.producer_domain(a.producer));
      const std::int64_t key =
          a.producer.is_input ? -(a.producer.id + 1) : a.producer.id;
      int slot = -1;
      for (int i = 0; i < nhulls; ++i)
        if (hull_key[i] == key) slot = i;
      if (slot < 0) {
        slot = nhulls++;
        hull_key[slot] = key;
        hulls[slot] = need;
      } else {
        hulls[slot] = hulls[slot].hull(need);
      }
    }
    for (int i = 0; i < nhulls; ++i) out.livein_volume += hulls[i].volume();
  });
  out.overlap_volume = out.computed_volume - out.owned_volume;
  return out;
}

}  // namespace fusedp
