// Scaling and alignment of stage dimensions within a fusion group
// (paper Section 2.2).
//
// PolyMage can overlap-tile a group only if loops of its stages can be
// *scaled* and *aligned* so that all inter-stage dependences become constant
// (problem-size independent).  We solve this with a union-find over
// (stage, dim) pairs carrying rational relative scales: an affine access
// x_p = floor(x_c * num / den) + off unifies (consumer, src_dim) with
// (producer, dim) at factor num/den.  A conflict (two paths implying
// different factors), a data-dependent (Dynamic) in-group access, or more
// alignment classes than kMaxDims makes the group non-constant and therefore
// unfusable (COST returns infinity, Algorithm 2 line 2).
//
// Each alignment class becomes one dimension of the group's *reference
// space* — the iteration space the tile grid is laid over.  For stage s and
// its dimension d, `sn/sd` gives the stretch from stage coordinates into
// reference coordinates: ref = floor(x * sn / sd).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/nodeset.hpp"
#include "ir/pipeline.hpp"

namespace fusedp {

struct DimAlign {
  int cls = -1;            // reference-space dimension (alignment class)
  std::int64_t sn = 1;     // ref = floor(x * sn / sd)
  std::int64_t sd = 1;
};

struct StageAlign {
  std::array<DimAlign, kMaxDims> dim;
};

struct AlignResult {
  bool constant = false;   // dependences can be made constant
  // True only for *monotone* failures — a dynamic in-group access or a
  // scale conflict — which no superset group can repair.  (constant may be
  // false for repairable reasons, e.g. too many alignment classes in a
  // not-yet-connected group.)
  bool hard_conflict = false;
  int num_classes = 0;     // rank of the reference space
  int ref_stage = -1;      // stage whose dims anchor class ordering
  // Indexed by stage id (pipeline-wide); valid only for group members.
  std::vector<StageAlign> stages;
  // Aligned extent of each class: max over members of extent * sn / sd.
  std::vector<std::int64_t> class_extent;
  // Per class: LCM of member `sd` values.  Tile sizes are rounded up to this
  // so that tile boundaries land on integer coordinates of every member
  // (owned boxes then exactly partition every stage's domain).
  std::vector<std::int64_t> class_granularity;
  // Per class: true iff every member stage has a dimension in it.  Classes
  // missing from some stage (e.g. the channel axis of a group mixing rank-2
  // and rank-3 stages) must stay untiled — otherwise the class-less stages
  // would be redundantly recomputed once per tile along that class.
  std::vector<bool> class_common;
};

// Solves alignment for the group `group` of `pl`.  Never throws on
// non-alignable groups: returns constant == false.
AlignResult solve_alignment(const Pipeline& pl, NodeSet group);

// Convenience: Algorithm 2 line 2.  True iff the group's inter-stage
// dependences can be made constant by scaling/alignment (and it contains no
// dynamic in-group access and no reduction mixed with other stages).
bool constant_dependence_vectors(const Pipeline& pl, NodeSet group);

}  // namespace fusedp
