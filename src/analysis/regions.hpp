// Required-region propagation for overlapped tiling (paper Figure 2).
//
// Given a group, its alignment, and a tile box in the group's reference
// space, this computes for every member stage:
//   owned(s)    — the slice of s's domain this tile is responsible for
//                 (owned boxes of adjacent tiles exactly partition the
//                 domain), and
//   required(s) — owned(s) expanded by everything in-group consumers of s
//                 read (the trapezoid: owned + halo).
// required − owned is the redundant recomputation that makes tiles
// independent; its total volume is Algorithm 2's OVERLAPSIZE.
#pragma once

#include <vector>

#include "analysis/scaling.hpp"
#include "graph/nodeset.hpp"
#include "ir/pipeline.hpp"

namespace fusedp {

// Producer box read by `access` when the consumer evaluates `consumer_box`.
// Dynamic axes conservatively require the full producer extent along that
// axis; constant axes require a single plane.
Box map_access_box(const Pipeline& pl, const Access& access,
                   const Box& consumer_box);

struct StageRegions {
  Box owned;     // in the stage's own coordinates
  Box required;  // superset of owned
};

struct GroupRegions {
  // Indexed by stage id; valid only for group members.
  std::vector<StageRegions> stages;
  std::int64_t computed_volume = 0;   // sum of required volumes
  std::int64_t owned_volume = 0;      // sum of owned volumes
  std::int64_t overlap_volume = 0;    // computed - owned (OVERLAPSIZE)
  std::int64_t livein_volume = 0;     // external data read by this tile
  std::int64_t liveout_volume = 0;    // owned volume of live-out stages
};

// `tile` is a box in reference space (rank == align.num_classes).  When
// `clamp_to_domain` is true boxes are clipped to stage domains (execution);
// the cost model passes false so an interior tile's halo is measured without
// boundary effects.
// `order`, when provided, must be a topological order of the group's members
// (saves recomputing it on the executor's per-tile hot path).
GroupRegions compute_group_regions(const Pipeline& pl, NodeSet group,
                                   const AlignResult& align, const Box& tile,
                                   bool clamp_to_domain,
                                   const std::vector<int>* order = nullptr);

// Box-only variant for the executor's per-tile hot path: fills
// `out[stage_id]` (the caller provides an array of at least pl.num_stages()
// entries) for group members, skips all volume accounting, and performs no
// allocation.  Entries of non-member stages are left untouched.
void compute_region_boxes(const Pipeline& pl, NodeSet group,
                          const AlignResult& align, const Box& tile,
                          bool clamp_to_domain, const std::vector<int>& order,
                          StageRegions* out);

// Owned box of stage `s` for `tile`, before clamping: per stage dim d with
// alignment (cls, sn, sd), x is owned iff floor(x*sn/sd) is inside the
// tile's class-cls range.
Box owned_box(const Stage& s, const AlignResult& align, const Box& tile);

// A stage is live-out of `group` if it is a pipeline output or has a
// consumer outside the group.
bool is_liveout_of(const Pipeline& pl, NodeSet group, int stage_id);

}  // namespace fusedp
