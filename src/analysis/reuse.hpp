// Per-dimension reuse scores (paper Section 4.2).
//
// "Reuse along a particular dimension (both temporal and spatial, group and
// self) is determined by inspecting data accesses" [Wolf & Lam].  We score
// each reference-space dimension of a group by the stencil extent of the
// accesses along it: a producer read at k distinct offsets along a dimension
// contributes k-1 reuse (each element is consumed k times as the consumer
// slides), and every dimension gets a base score of 1.  The innermost
// dimension additionally earns spatial-reuse credit since consecutive
// iterations touch the same cache line.
#pragma once

#include <vector>

#include "analysis/scaling.hpp"

namespace fusedp {

struct ReuseInfo {
  std::vector<double> dim_reuse;          // per alignment class, >= 1
  std::vector<std::int64_t> dim_sizes;    // aligned extents per class
  double dim_size_stddev = 0.0;           // Algorithm 2's dimSizeStandardDeviation
};

ReuseInfo compute_reuse(const Pipeline& pl, NodeSet group,
                        const AlignResult& align);

}  // namespace fusedp
