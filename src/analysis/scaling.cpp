#include "analysis/scaling.hpp"

#include <algorithm>
#include <numeric>

namespace fusedp {

namespace {

// Rational number with small components; kept reduced.
struct Rat {
  std::int64_t n = 1;
  std::int64_t d = 1;
  static Rat make(std::int64_t n, std::int64_t d) {
    FUSEDP_DCHECK(n > 0 && d > 0, "scales must be positive");
    const std::int64_t g = std::gcd(n, d);
    return Rat{n / g, d / g};
  }
  Rat mul(Rat o) const { return make(n * o.n, d * o.d); }
  Rat div(Rat o) const { return make(n * o.d, d * o.n); }
  bool operator==(const Rat&) const = default;
};

// Union-find with multiplicative weights: weight_[e] is the factor w such
// that x_root = x_e * w.
class ScaledUnionFind {
 public:
  explicit ScaledUnionFind(int n)
      : parent_(static_cast<std::size_t>(n)),
        weight_(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }

  // Returns (root, factor w with x_root = x_e * w).  No path compression —
  // element counts are tiny (<= 64 stages * 4 dims) and chains stay short.
  std::pair<int, Rat> find(int e) const {
    int r = e;
    Rat w{1, 1};
    while (parent_[static_cast<std::size_t>(r)] != r) {
      w = w.mul(weight_[static_cast<std::size_t>(r)]);
      r = parent_[static_cast<std::size_t>(r)];
    }
    return {r, w};
  }

  // Enforce x_b = x_a * f.  Returns false on conflict.
  bool unite(int a, int b, Rat f) {
    auto [ra, wa] = find(a);
    auto [rb, wb] = find(b);
    if (ra == rb) {
      // x_ra = x_a * wa and x_ra = x_b * wb = x_a * f * wb.
      return wa == f.mul(wb);
    }
    // Attach rb under ra: x_ra = x_a*wa; x_rb = x_b*wb = x_a*f*wb
    // => x_rb * (wa / (f*wb)) = x_ra.
    parent_[static_cast<std::size_t>(rb)] = ra;
    weight_[static_cast<std::size_t>(rb)] = wa.div(f.mul(wb));
    return true;
  }

 private:
  std::vector<int> parent_;
  std::vector<Rat> weight_;
};

int elem(int stage, int dim) { return stage * kMaxDims + dim; }

}  // namespace

AlignResult solve_alignment(const Pipeline& pl, NodeSet group) {
  AlignResult res;
  res.stages.assign(static_cast<std::size_t>(pl.num_stages()), StageAlign{});
  if (group.empty()) return res;

  // Mixed reduction groups are never fusable.
  bool has_reduction = false;
  group.for_each([&](int s) {
    if (pl.stage(s).kind == StageKind::kReduction) has_reduction = true;
  });
  if (has_reduction && group.size() > 1) {
    res.hard_conflict = true;
    return res;
  }

  ScaledUnionFind uf(pl.num_stages() * kMaxDims);
  bool ok = true;
  group.for_each([&](int c) {
    const Stage& cs = pl.stage(c);
    for (const Access& a : cs.loads) {
      if (a.producer.is_input || !group.contains(a.producer.id)) continue;
      const int p = a.producer.id;
      for (int k = 0; k < static_cast<int>(a.axes.size()); ++k) {
        const AxisMap& m = a.axes[static_cast<std::size_t>(k)];
        if (m.kind == AxisMap::Kind::kDynamic) {
          ok = false;  // data-dependent in-group access
          return;
        }
        if (m.kind == AxisMap::Kind::kConstant) continue;
        if (m.num == 0) continue;  // broadcast along this axis
        // x_p = x_c * num/den  (offsets don't affect alignment).
        if (!uf.unite(elem(c, m.src_dim), elem(p, k),
                      Rat::make(m.num, m.den)))
          ok = false;
      }
      if (!ok) return;
    }
  });
  if (!ok) {
    res.hard_conflict = true;
    return res;
  }

  // Reference stage: max rank, then max volume, then smallest id.
  int ref = -1;
  group.for_each([&](int s) {
    if (ref < 0) {
      ref = s;
      return;
    }
    const Stage& a = pl.stage(s);
    const Stage& b = pl.stage(ref);
    if (a.rank() > b.rank() ||
        (a.rank() == b.rank() && a.volume() > b.volume()))
      ref = s;
  });
  res.ref_stage = ref;

  // Collect classes (union-find roots) and order them by their members'
  // position from the innermost end: a class whose members are innermost
  // dims (from-end -1, unit stride) must sort LAST, since the model pins
  // INNERMOSTTILESIZE and the executor runs rows along the final class.
  // Ordering by discovery or by reference-stage dim alone is wrong when a
  // group carries several "loose" classes (e.g. channel dims decoupled by
  // coordinate-based selects).
  std::vector<std::pair<int, int>> members;  // (stage, dim) in group
  group.for_each([&](int s) {
    for (int d = 0; d < pl.stage(s).rank(); ++d)
      members.emplace_back(s, d);
  });
  struct ClassInfo {
    int root;
    int from_end;  // max over members of (dim - rank); -1 = innermost
    int ref_dim;   // smallest reference-stage dim in the class, or kMaxDims
  };
  std::vector<ClassInfo> classes;
  for (auto [s, d] : members) {
    auto [root, w] = uf.find(elem(s, d));
    (void)w;
    const int from_end = d - pl.stage(s).rank();
    const int ref_dim = s == ref ? d : kMaxDims;
    bool found = false;
    for (ClassInfo& c : classes) {
      if (c.root != root) continue;
      c.from_end = std::max(c.from_end, from_end);
      c.ref_dim = std::min(c.ref_dim, ref_dim);
      found = true;
    }
    if (!found) classes.push_back({root, from_end, ref_dim});
  }
  std::stable_sort(classes.begin(), classes.end(),
                   [](const ClassInfo& a, const ClassInfo& b) {
                     if (a.from_end != b.from_end) return a.from_end < b.from_end;
                     return a.ref_dim < b.ref_dim;
                   });
  const int ncls = static_cast<int>(classes.size());
  if (ncls > kMaxDims) return res;  // cannot build a reference space

  // Canonical member per class: the one with maximal aligned extent; its
  // coordinates define the class coordinate.  We compute every member's
  // weight-to-root, then express scales relative to the canonical member.
  struct MemberW {
    int s, d;
    std::int64_t wn, wd;  // x_root = x * wn/wd
  };
  std::vector<std::vector<MemberW>> per_class(static_cast<std::size_t>(ncls));
  for (auto [s, d] : members) {
    auto [root, w] = uf.find(elem(s, d));
    int ci = -1;
    for (std::size_t i = 0; i < classes.size(); ++i)
      if (classes[i].root == root) ci = static_cast<int>(i);
    FUSEDP_DCHECK(ci >= 0, "class not found");
    per_class[static_cast<std::size_t>(ci)].push_back({s, d, w.n, w.d});
  }

  res.num_classes = ncls;
  res.class_extent.assign(static_cast<std::size_t>(ncls), 1);
  res.class_granularity.assign(static_cast<std::size_t>(ncls), 1);
  res.class_common.assign(static_cast<std::size_t>(ncls), false);
  for (int ci = 0; ci < ncls; ++ci) {
    auto& mem = per_class[static_cast<std::size_t>(ci)];
    if (mem.empty()) continue;
    NodeSet member_stages;
    for (const auto& m : mem) member_stages = member_stages.with(m.s);
    res.class_common[static_cast<std::size_t>(ci)] =
        member_stages.size() == group.size();
    // Pick canonical: maximize extent * wn/wd (compare via cross products).
    const MemberW* canon = &mem[0];
    auto scaled_extent = [&](const MemberW& m) {
      return static_cast<double>(pl.stage(m.s).domain.extent(m.d)) *
             static_cast<double>(m.wn) / static_cast<double>(m.wd);
    };
    for (const MemberW& m : mem)
      if (scaled_extent(m) > scaled_extent(*canon)) canon = &m;
    std::int64_t ext = 0;
    std::int64_t gran = 1;
    for (const MemberW& m : mem) {
      // sigma_m = w_m / w_canon : ref = floor(x * sn / sd).
      const std::int64_t sn0 = m.wn * canon->wd;
      const std::int64_t sd0 = m.wd * canon->wn;
      const std::int64_t g = std::gcd(sn0, sd0);
      const std::int64_t sn = sn0 / g, sd = sd0 / g;
      DimAlign& da = res.stages[static_cast<std::size_t>(m.s)]
                         .dim[static_cast<std::size_t>(m.d)];
      da.cls = ci;
      da.sn = sn;
      da.sd = sd;
      ext = std::max(ext, (pl.stage(m.s).domain.extent(m.d) * sn + sd - 1) / sd);
      gran = std::lcm(gran, sd);
    }
    res.class_extent[static_cast<std::size_t>(ci)] = std::max<std::int64_t>(ext, 1);
    res.class_granularity[static_cast<std::size_t>(ci)] = gran;
  }

  res.constant = true;
  return res;
}

bool constant_dependence_vectors(const Pipeline& pl, NodeSet group) {
  return solve_alignment(pl, group).constant;
}

}  // namespace fusedp
