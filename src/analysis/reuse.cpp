#include "analysis/reuse.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace fusedp {

ReuseInfo compute_reuse(const Pipeline& pl, NodeSet group,
                        const AlignResult& align) {
  ReuseInfo info;
  const int ncls = align.num_classes;
  info.dim_reuse.assign(static_cast<std::size_t>(ncls), 1.0);
  info.dim_sizes = align.class_extent;

  // Distinct access offsets along each (consumer stage, producer, class).
  // Key: (consumer, producer-id-with-input-flag, class); the offset identity
  // includes both the post-floor offset and the intra-floor `pre`.
  std::map<std::tuple<int, int, int>,
           std::set<std::pair<std::int64_t, std::int64_t>>>
      offsets;
  group.for_each([&](int c) {
    const Stage& cs = pl.stage(c);
    const StageAlign& ca = align.stages[static_cast<std::size_t>(c)];
    for (const Access& a : cs.loads) {
      const int pid = a.producer.is_input ? -(a.producer.id + 1) : a.producer.id;
      for (const AxisMap& m : a.axes) {
        if (m.kind != AxisMap::Kind::kAffine) continue;
        const int cls = ca.dim[static_cast<std::size_t>(m.src_dim)].cls;
        if (cls < 0) continue;
        offsets[{c, pid, cls}].insert({m.offset, m.pre});
      }
    }
  });
  for (const auto& [key, offs] : offsets) {
    const int cls = std::get<2>(key);
    info.dim_reuse[static_cast<std::size_t>(cls)] +=
        static_cast<double>(offs.size() - 1);
  }
  // Spatial reuse credit for the innermost (contiguous) dimension.
  if (ncls > 0) info.dim_reuse[static_cast<std::size_t>(ncls - 1)] += 1.0;

  // dimSizeStandardDeviation: mean over classes of the relative spread of
  // member aligned extents (0 when all fused stages have matching extents).
  double total = 0.0;
  int counted = 0;
  for (int cls = 0; cls < ncls; ++cls) {
    std::vector<double> exts;
    group.for_each([&](int s) {
      const Stage& st = pl.stage(s);
      const StageAlign& sa = align.stages[static_cast<std::size_t>(s)];
      for (int d = 0; d < st.rank(); ++d) {
        const DimAlign& da = sa.dim[static_cast<std::size_t>(d)];
        if (da.cls != cls) continue;
        exts.push_back(static_cast<double>(st.domain.extent(d)) *
                       static_cast<double>(da.sn) /
                       static_cast<double>(da.sd));
      }
    });
    if (exts.size() < 2) continue;
    double m = 0.0;
    for (double e : exts) m += e;
    m /= static_cast<double>(exts.size());
    double var = 0.0;
    for (double e : exts) var += (e - m) * (e - m);
    var /= static_cast<double>(exts.size());
    if (m > 0) {
      total += std::sqrt(var) / m;
      ++counted;
    }
  }
  info.dim_size_stddev = counted ? total / counted : 0.0;
  return info;
}

}  // namespace fusedp
