#include "observe/observe.hpp"

namespace fusedp::observe {

void TraceCollector::on_schedule_attempt(const ScheduleAttempt& attempt) {
  schedule_.push_back(attempt);
  // A run already in flight (or finished) also gets the attempt, so traces
  // of sessions that re-schedule stay self-describing.
  if (!runs_.empty()) runs_.back().schedule.push_back(attempt);
}

void TraceCollector::on_run_begin(const RunMeta& meta) {
  RunTrace t;
  t.meta = meta;
  t.schedule = schedule_;
  runs_.push_back(std::move(t));
}

void TraceCollector::on_group_end(const GroupRecord& group) {
  if (runs_.empty()) {
    // Group events without a preceding on_run_begin (a bare Executor with a
    // sink attached): synthesize an anonymous run so nothing is dropped.
    runs_.emplace_back();
    runs_.back().schedule = schedule_;
  }
  RunTrace& t = runs_.back();
  t.groups.push_back(group);
  if (!keep_tiles_) t.groups.back().tiles.clear();
}

void TraceCollector::on_run_end(const RunRecord& run) {
  if (runs_.empty()) runs_.emplace_back();
  RunTrace& t = runs_.back();
  t.meta = run.meta;
  t.seconds = run.seconds;
  t.complete = true;
}

}  // namespace fusedp::observe
