#include "observe/observe.hpp"

#include <cstdio>

namespace fusedp::observe {

void TraceCollector::on_schedule_attempt(const ScheduleAttempt& attempt) {
  schedule_.push_back(attempt);
  // A run already in flight (or finished) also gets the attempt, so traces
  // of sessions that re-schedule stay self-describing.
  if (!runs_.empty()) runs_.back().schedule.push_back(attempt);
}

void TraceCollector::on_run_begin(const RunMeta& meta) {
  RunTrace t;
  t.meta = meta;
  t.schedule = schedule_;
  t.cache = cache_;
  runs_.push_back(std::move(t));
}

void TraceCollector::on_cache_event(const CacheEvent& event) {
  // Cache events describe how the session's schedule was obtained, so like
  // schedule attempts they attach to every subsequent run's trace.
  cache_.push_back(event);
  if (!runs_.empty()) runs_.back().cache.push_back(event);
}

void TraceCollector::on_group_end(const GroupRecord& group) {
  if (runs_.empty()) {
    // Group events without a preceding on_run_begin (a bare Executor with a
    // sink attached): synthesize an anonymous run so nothing is dropped.
    runs_.emplace_back();
    runs_.back().schedule = schedule_;
    runs_.back().cache = cache_;
  }
  RunTrace& t = runs_.back();
  t.groups.push_back(group);
  if (!keep_tiles_) t.groups.back().tiles.clear();
}

void TraceCollector::on_run_end(const RunRecord& run) {
  if (runs_.empty()) runs_.emplace_back();
  RunTrace& t = runs_.back();
  t.meta = run.meta;
  t.seconds = run.seconds;
  t.complete = true;
}

void TraceCollector::on_run_attempt(const RunAttempt& attempt) {
  // Attempts attach to the most recent trace: a failed attempt annotates
  // the (incomplete) trace it aborted; a pre-run failure (e.g. rejected
  // workspace admission) synthesizes an anonymous trace to carry it.
  if (runs_.empty()) {
    runs_.emplace_back();
    runs_.back().schedule = schedule_;
    runs_.back().cache = cache_;
  }
  runs_.back().attempts.push_back(attempt);
}

std::string run_report_to_string(const RunReport& report) {
  std::string out = "run report: ";
  if (report.attempts.empty()) {
    out += "no attempts\n";
    return out;
  }
  out += report.succeeded ? "ok" : "failed";
  out += " after " + std::to_string(report.attempts.size()) + " attempt" +
         (report.attempts.size() == 1 ? "" : "s");
  if (report.degraded) out += " (degraded to " + report.final_config + ")";
  if (!report.cache_outcome.empty()) {
    out += ", cache " + report.cache_outcome;
    if (report.warm_start) out += " (warm start)";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", report.total_seconds);
  out += ", " + std::string(buf) + " s total\n";
  for (const RunAttempt& a : report.attempts) {
    std::snprintf(buf, sizeof(buf), "%.6f", a.seconds);
    out += "  attempt " + std::to_string(a.index) + " [" + a.config + "]: ";
    if (a.succeeded) {
      out += "ok";
    } else {
      out += "fail " + a.code;
      if (!a.detail.empty()) out += ": " + a.detail;
    }
    out += " (" + std::string(buf) + " s)\n";
  }
  return out;
}

}  // namespace fusedp::observe
