// The observability layer: pluggable sinks for what the system actually did.
//
// Every record here is plain data (strings, integers, seconds) so the
// interface sits below every other layer: the autoscheduler reports its
// ladder attempts, the plan/compiler report per-group static facts (tile
// grid, row registers, fused superops, the cost model's predicted score),
// and the executor reports measured reality (per-tile and per-group wall
// time, scratch/arena high-water, redundant-recompute counters).
//
// Cost discipline: producers check `observer != nullptr` before touching a
// clock, and per-tile events are appended to *per-thread* logs that the
// executor merges once, serially, at group end — no locks or atomics on the
// tile path, zero work and bit-identical outputs when no sink is attached
// (bench_vector guards the <2% envelope).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fusedp::observe {

// One autoschedule ladder attempt (mirrors fusion's TierAttempt as plain
// data, so this header does not depend on the fusion layer).
struct ScheduleAttempt {
  std::string tier;     // "full-dp" / "bounded-dp" / "greedy" / "unfused"
  int group_limit = 0;  // bounded-dp attempts only
  bool succeeded = false;
  std::string code;    // error-code name when !succeeded
  std::string detail;  // failure message / stats summary
  std::uint64_t states = 0;
  double seconds = 0.0;
};

// One executed tile.  Timestamps are seconds since the run began.
struct TileEvent {
  std::int64_t index = 0;  // flat index in the group's tile grid
  int thread = 0;
  double t_begin = 0.0;
  double t_end = 0.0;
  // Elements computed (required regions, including the recomputed overlap)
  // vs. elements owned (the tile's disjoint slice of useful work); the
  // difference is the redundant recomputation the paper's cost model trades
  // against locality.
  std::int64_t computed_elems = 0;
  std::int64_t owned_elems = 0;
  bool interior = false;  // took the translated-template fast path
  // Work-stealing pool attribution (pool backend only; OpenMP leaves the
  // defaults).  `worker` is the pool worker thread that ran the tile (-1 =
  // the submitting thread), `stolen` marks a tile claimed from another
  // lane's deque, and `queue_wait` is the seconds this tile's lane sat in
  // the dispatch queue before starting (0 for the inline lane).
  int worker = -1;
  bool stolen = false;
  double queue_wait = 0.0;
};

// One group's execution: static plan facts + merged measured counters.
struct GroupRecord {
  int index = -1;      // position in the plan's topological group order
  std::string stages;  // comma-joined member stage names
  bool is_reduction = false;
  std::int64_t total_tiles = 1;
  // Static plan/compiler facts.
  double predicted_cost = 0.0;  // cost model's score for this group
  std::int32_t row_registers = 0;
  std::int32_t fused_superops = 0;
  // Measured (serial wall clock around the group's parallel region).
  double t_begin = 0.0;  // seconds since run begin
  double t_end = 0.0;
  double seconds = 0.0;
  // Merged per-thread counters.
  std::int64_t tiles_run = 0;
  std::int64_t interior_tiles = 0;
  std::int64_t computed_elems = 0;
  std::int64_t owned_elems = 0;
  std::int64_t scratch_bytes = 0;  // arena high-water summed over threads
  // Pool-backend counters (0 under OpenMP): cross-lane steal events in this
  // group, and dispatch-queue wait summed over the group's lanes.
  std::int64_t steals = 0;
  double queue_wait_seconds = 0.0;
  // Per-tile events, in per-thread order (thread 0's tiles, then thread
  // 1's, ...); empty unless the sink asked for tiles.
  std::vector<TileEvent> tiles;
};

struct RunMeta {
  std::string pipeline;
  int num_groups = 0;
  int num_threads = 1;
};

struct RunRecord {
  RunMeta meta;
  double seconds = 0.0;  // whole-run wall time
};

// One persistent-schedule-cache interaction (storage/findb, reported by
// Session::open).  Outcomes mirror findb::ProbeOutcome names ("hit",
// "miss", "corrupt", "truncated", "version-skew", "stale-sha",
// "key-mismatch", "lock-timeout", "io-error", "bypass") plus "stored" /
// "store-failed" for writes and "invalid-schedule" for a hit whose
// schedule text failed re-validation.  Plain strings keep this header
// independent of the storage layer.
struct CacheEvent {
  std::string action;   // "probe" / "store" / "evict"
  std::string outcome;
  bool from_memory = false;  // served by the in-process LRU tier
  std::string detail;        // cause for non-hit outcomes
  double seconds = 0.0;      // wall time of the cache operation
};

// One rung of the Session's execution-time degradation ladder: a single
// Executor::run attempt under one configuration.  A request that succeeds
// first try produces exactly one attempt; a faulting or resource-starved
// request produces one attempt per rung tried (superops off → vector
// backend off → unfused), each streamed to the observer as it concludes.
struct RunAttempt {
  int index = 0;          // 1-based attempt number within the request
  std::string config;     // rung label: "full" / "no-superops" / ...
  bool succeeded = false;
  std::string code;    // error-code name when !succeeded
  std::string detail;  // failure message when !succeeded
  double seconds = 0.0;
};

// The per-request summary: every attempt in order plus the terminal state.
struct RunReport {
  std::vector<RunAttempt> attempts;
  bool succeeded = false;
  bool degraded = false;     // succeeded on a fallback rung
  std::string final_config;  // rung of the last attempt
  double total_seconds = 0.0;
  // How the session's schedule came to be: the cache probe outcome at open
  // ("hit"/"miss"/... ; empty when the cache was off) and whether the
  // schedule was served from the cache without any search.
  std::string cache_outcome;
  bool warm_start = false;
};

// Human-readable attempt ladder (one line per attempt) for `--report`.
std::string run_report_to_string(const RunReport& report);

// The sink interface.  Default implementations do nothing, so a sink
// overrides only what it wants.  Callbacks arrive on the serial (calling)
// thread; the executor never invokes a sink from inside a parallel region.
class Observer {
 public:
  virtual ~Observer() = default;

  // Collect per-tile events?  Off keeps per-group aggregation only and
  // spares the per-thread event vectors.
  virtual bool want_tile_events() const { return true; }

  virtual void on_schedule_attempt(const ScheduleAttempt& attempt) {
    (void)attempt;
  }
  virtual void on_run_begin(const RunMeta& meta) { (void)meta; }
  virtual void on_group_end(const GroupRecord& group) { (void)group; }
  virtual void on_run_end(const RunRecord& run) { (void)run; }
  // One degradation-ladder attempt concluded (success or coded failure).
  virtual void on_run_attempt(const RunAttempt& attempt) { (void)attempt; }
  // One schedule-cache interaction concluded (probe/store/evict).
  virtual void on_cache_event(const CacheEvent& event) { (void)event; }
};

// Everything one run produced, ready for export (chrome trace) or joining
// against the cost model (predicted-vs-measured report).
struct RunTrace {
  RunMeta meta;
  std::vector<ScheduleAttempt> schedule;  // ladder attempts, in order
  std::vector<CacheEvent> cache;          // cache interactions at open
  std::vector<GroupRecord> groups;        // in execution order
  // Degradation-ladder attempts observed against this trace (a failed
  // attempt leaves the trace incomplete; the retry's groups follow in the
  // next trace).
  std::vector<RunAttempt> attempts;
  double seconds = 0.0;
  bool complete = false;  // on_run_end seen
};

// The built-in sink: accumulates one RunTrace per run.  Schedule attempts
// observed before the first run attach to every subsequent run's trace
// (they describe the session's schedule, not one execution).
class TraceCollector : public Observer {
 public:
  explicit TraceCollector(bool keep_tiles = true) : keep_tiles_(keep_tiles) {}

  bool want_tile_events() const override { return keep_tiles_; }
  void on_schedule_attempt(const ScheduleAttempt& attempt) override;
  void on_run_begin(const RunMeta& meta) override;
  void on_group_end(const GroupRecord& group) override;
  void on_run_end(const RunRecord& run) override;
  void on_run_attempt(const RunAttempt& attempt) override;
  void on_cache_event(const CacheEvent& event) override;

  // The most recent (possibly still incomplete) run; nullptr before any.
  const RunTrace* last() const { return runs_.empty() ? nullptr : &runs_.back(); }
  const std::vector<RunTrace>& runs() const { return runs_; }
  void clear() { runs_.clear(); }

 private:
  bool keep_tiles_;
  std::vector<ScheduleAttempt> schedule_;
  std::vector<CacheEvent> cache_;
  std::vector<RunTrace> runs_;
};

// Fans every callback out to up to two sinks (the session's own collector
// plus a user observer).  Tile events are collected if either sink wants
// them.
class TeeObserver : public Observer {
 public:
  TeeObserver(Observer* a, Observer* b) : a_(a), b_(b) {}
  bool want_tile_events() const override {
    return (a_ != nullptr && a_->want_tile_events()) ||
           (b_ != nullptr && b_->want_tile_events());
  }
  void on_schedule_attempt(const ScheduleAttempt& at) override {
    if (a_ != nullptr) a_->on_schedule_attempt(at);
    if (b_ != nullptr) b_->on_schedule_attempt(at);
  }
  void on_run_begin(const RunMeta& m) override {
    if (a_ != nullptr) a_->on_run_begin(m);
    if (b_ != nullptr) b_->on_run_begin(m);
  }
  void on_group_end(const GroupRecord& g) override {
    if (a_ != nullptr) a_->on_group_end(g);
    if (b_ != nullptr) b_->on_group_end(g);
  }
  void on_run_end(const RunRecord& r) override {
    if (a_ != nullptr) a_->on_run_end(r);
    if (b_ != nullptr) b_->on_run_end(r);
  }
  void on_run_attempt(const RunAttempt& at) override {
    if (a_ != nullptr) a_->on_run_attempt(at);
    if (b_ != nullptr) b_->on_run_attempt(at);
  }
  void on_cache_event(const CacheEvent& ev) override {
    if (a_ != nullptr) a_->on_cache_event(ev);
    if (b_ != nullptr) b_->on_cache_event(ev);
  }

 private:
  Observer* a_;
  Observer* b_;
};

}  // namespace fusedp::observe
