#include "observe/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace fusedp::observe {

namespace {

// JSON string escaping for the small set of characters stage names and
// error messages can realistically contain.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// JSON has no Infinity/NaN literals; infeasible costs serialize as strings.
void append_number(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << '"' << (std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf")) << '"';
  }
}

double micros(double seconds) { return seconds * 1e6; }

}  // namespace

std::string chrome_trace_json(const RunTrace& trace) {
  std::ostringstream os;
  os.precision(9);
  bool first = true;
  auto event = [&](const std::string& body) {
    os << (first ? "\n    " : ",\n    ") << body;
    first = false;
  };
  auto meta_thread = [&](int tid, const std::string& name, int sort) {
    std::ostringstream e;
    e << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
      << tid << ", \"args\": {\"name\": \"" << json_escape(name) << "\"}}";
    event(e.str());
    std::ostringstream s;
    s << "{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 0, "
      << "\"tid\": " << tid << ", \"args\": {\"sort_index\": " << sort
      << "}}";
    event(s.str());
  };

  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";

  // Timeline layout: worker threads 0..T-1 keep their own tids; the group
  // spans live on tid T ("groups"), the schedule ladder on tid T+1.
  const int workers = trace.meta.num_threads > 0 ? trace.meta.num_threads : 1;
  const int groups_tid = workers;
  const int sched_tid = workers + 1;

  {
    std::ostringstream e;
    e << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
      << "\"args\": {\"name\": \"fusedp "
      << json_escape(trace.meta.pipeline) << "\"}}";
    event(e.str());
  }
  meta_thread(groups_tid, "groups", 0);
  meta_thread(sched_tid, "scheduler", 1);
  for (int t = 0; t < workers; ++t)
    meta_thread(t, "worker " + std::to_string(t), 2 + t);

  // Schedule-ladder attempts happened before the run; stack them leftward
  // from t=0 so the timeline reads search -> execution.
  double sched_total = 0.0;
  for (const ScheduleAttempt& a : trace.schedule) sched_total += a.seconds;
  double sched_t = -sched_total;
  for (const ScheduleAttempt& a : trace.schedule) {
    std::ostringstream e;
    e << "{\"name\": \"" << json_escape(a.tier)
      << (a.group_limit > 0 ? " limit=" + std::to_string(a.group_limit) : "")
      << "\", \"cat\": \"schedule\", \"ph\": \"X\", \"ts\": "
      << micros(sched_t) << ", \"dur\": " << micros(a.seconds)
      << ", \"pid\": 0, \"tid\": " << sched_tid << ", \"args\": {"
      << "\"succeeded\": " << (a.succeeded ? "true" : "false")
      << ", \"states\": " << a.states;
    if (!a.succeeded)
      e << ", \"code\": \"" << json_escape(a.code) << "\", \"detail\": \""
        << json_escape(a.detail) << "\"";
    e << "}}";
    event(e.str());
    sched_t += a.seconds;
  }

  for (const GroupRecord& g : trace.groups) {
    std::ostringstream e;
    e << "{\"name\": \"group " << g.index << " [" << json_escape(g.stages)
      << "]\", \"cat\": \"group\", \"ph\": \"X\", \"ts\": "
      << micros(g.t_begin) << ", \"dur\": " << micros(g.seconds)
      << ", \"pid\": 0, \"tid\": " << groups_tid << ", \"args\": {"
      << "\"tiles\": " << g.tiles_run
      << ", \"interior_tiles\": " << g.interior_tiles
      << ", \"computed_elems\": " << g.computed_elems
      << ", \"owned_elems\": " << g.owned_elems
      << ", \"scratch_bytes\": " << g.scratch_bytes
      << ", \"steals\": " << g.steals
      << ", \"queue_wait_us\": " << micros(g.queue_wait_seconds)
      << ", \"row_registers\": " << g.row_registers
      << ", \"fused_superops\": " << g.fused_superops
      << ", \"reduction\": " << (g.is_reduction ? "true" : "false")
      << ", \"predicted_cost\": ";
    append_number(e, g.predicted_cost);
    e << "}}";
    event(e.str());

    for (const TileEvent& t : g.tiles) {
      std::ostringstream te;
      te << "{\"name\": \"tile " << t.index << "\", \"cat\": \"tile\", "
         << "\"ph\": \"X\", \"ts\": " << micros(t.t_begin)
         << ", \"dur\": " << micros(t.t_end - t.t_begin)
         << ", \"pid\": 0, \"tid\": " << t.thread << ", \"args\": {"
         << "\"group\": " << g.index
         << ", \"computed_elems\": " << t.computed_elems
         << ", \"owned_elems\": " << t.owned_elems
         << ", \"interior\": " << (t.interior ? "true" : "false")
         << ", \"worker\": " << t.worker
         << ", \"stolen\": " << (t.stolen ? "true" : "false")
         << ", \"queue_wait_us\": " << micros(t.queue_wait) << "}}";
      event(te.str());
    }
  }

  os << "\n  ],\n  \"otherData\": {\"pipeline\": \""
     << json_escape(trace.meta.pipeline)
     << "\", \"num_groups\": " << trace.meta.num_groups
     << ", \"num_threads\": " << trace.meta.num_threads
     << ", \"total_seconds\": ";
  append_number(os, trace.seconds);
  os << "}\n}\n";
  return os.str();
}

Result<int> write_chrome_trace(const RunTrace& trace,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out)
    return Result<int>::failure(ErrorCode::kIoError,
                                "cannot open trace file: " + path);
  out << chrome_trace_json(trace);
  out.flush();
  if (!out)
    return Result<int>::failure(ErrorCode::kIoError,
                                "short write to trace file: " + path);
  int events = 0;
  for (const GroupRecord& g : trace.groups)
    events += 1 + static_cast<int>(g.tiles.size());
  events += static_cast<int>(trace.schedule.size());
  return events;
}

Report make_report(const RunTrace& trace) {
  Report rep;
  rep.pipeline = trace.meta.pipeline;
  rep.total_ms = trace.seconds * 1e3;
  for (const GroupRecord& g : trace.groups) {
    ReportRow row;
    row.group = g.index;
    row.stages = g.stages;
    row.tiles = g.tiles_run;
    row.predicted_cost = g.predicted_cost;
    row.measured_ms = g.seconds * 1e3;
    row.redundant_pct =
        g.computed_elems > 0
            ? 100.0 *
                  static_cast<double>(g.computed_elems - g.owned_elems) /
                  static_cast<double>(g.computed_elems)
            : 0.0;
    row.scratch_bytes = g.scratch_bytes;
    row.is_reduction = g.is_reduction;
    rep.rows.push_back(std::move(row));
  }

  // Pearson correlation over groups the model actually scored.
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  int n = 0;
  for (const ReportRow& r : rep.rows) {
    if (r.is_reduction || !std::isfinite(r.predicted_cost)) continue;
    const double x = r.predicted_cost, y = r.measured_ms;
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
    ++n;
  }
  if (n >= 2) {
    const double num = n * sxy - sx * sy;
    const double den =
        std::sqrt(n * sxx - sx * sx) * std::sqrt(n * syy - sy * sy);
    rep.correlation = den > 0 ? num / den
                              : std::numeric_limits<double>::quiet_NaN();
  } else {
    rep.correlation = std::numeric_limits<double>::quiet_NaN();
  }
  return rep;
}

std::string report_to_string(const Report& report) {
  std::ostringstream os;
  os << "predicted-vs-measured, pipeline '" << report.pipeline << "' ("
     << report.rows.size() << " groups, "
     << static_cast<int>(report.total_ms * 100) / 100.0 << " ms total)\n";
  char line[256];
  std::snprintf(line, sizeof line, "%5s  %9s  %12s  %12s  %10s  %10s  %s\n",
                "group", "tiles", "predicted", "measured-ms", "redundant%",
                "scratchKB", "stages");
  os << line;
  for (const ReportRow& r : report.rows) {
    char pred[32];
    if (r.is_reduction)
      std::snprintf(pred, sizeof pred, "%s", "reduce");
    else if (std::isfinite(r.predicted_cost))
      std::snprintf(pred, sizeof pred, "%12.4g", r.predicted_cost);
    else
      std::snprintf(pred, sizeof pred, "%s", "inf");
    std::snprintf(line, sizeof line,
                  "%5d  %9lld  %12s  %12.3f  %10.1f  %10lld  %s\n", r.group,
                  static_cast<long long>(r.tiles), pred, r.measured_ms,
                  r.redundant_pct,
                  static_cast<long long>(r.scratch_bytes / 1024),
                  r.stages.c_str());
    os << line;
  }
  if (std::isfinite(report.correlation)) {
    std::snprintf(line, sizeof line,
                  "predicted/measured correlation: %.3f\n",
                  report.correlation);
    os << line;
  }
  return os.str();
}

}  // namespace fusedp::observe
