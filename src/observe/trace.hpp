// Trace export and the predicted-vs-measured report.
//
// chrome_trace_json() renders a RunTrace in the Chrome trace_event "JSON
// Object Format" ({"traceEvents": [...]}) consumable by chrome://tracing
// and Perfetto: one complete ("X") event per group on a dedicated "groups"
// timeline, one per tile on its worker thread's timeline, schedule-ladder
// attempts on a "scheduler" timeline before the run, and thread-name
// metadata ("M") events.  Timestamps are microseconds relative to run
// begin.
//
// make_report() joins the cost model's per-group predicted scores (carried
// through the plan into each GroupRecord) against the measured wall times —
// the feedback loop guided-optimization systems expose to users.
#pragma once

#include "observe/observe.hpp"
#include "support/status.hpp"

namespace fusedp::observe {

// The full trace as a JSON string (always valid JSON, even for an empty or
// incomplete trace).
std::string chrome_trace_json(const RunTrace& trace);

// Writes chrome_trace_json(trace) to `path`.  Returns the number of trace
// events written, or a coded kIoError Result on filesystem trouble.
Result<int> write_chrome_trace(const RunTrace& trace, const std::string& path);

struct ReportRow {
  int group = -1;
  std::string stages;
  std::int64_t tiles = 0;
  double predicted_cost = 0.0;  // cost model score (unitless)
  double measured_ms = 0.0;     // serial wall time of the group
  double redundant_pct = 0.0;   // 100 * (computed - owned) / computed
  std::int64_t scratch_bytes = 0;
  bool is_reduction = false;
};

struct Report {
  std::string pipeline;
  std::vector<ReportRow> rows;  // in execution order
  double total_ms = 0.0;
  // Pearson correlation of (predicted cost, measured seconds) over the
  // non-reduction groups with finite cost; NaN when fewer than two such
  // groups.  A high value means Algorithm 2's ranking tracks reality.
  double correlation = 0.0;
};

Report make_report(const RunTrace& trace);

// Fixed-width table (one row per group, predicted vs measured columns plus
// the correlation footer) as printed by `fusedp run --report`.
std::string report_to_string(const Report& report);

}  // namespace fusedp::observe
