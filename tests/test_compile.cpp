// Tests for the plan-time stage compiler and the interior-tile fast path.
//
// The load-bearing invariant: the compiled executor (CompiledStage programs
// + translated region templates + unclamped interior kernels) is
// bit-identical to the unfused scalar reference on every registered
// pipeline, for arbitrary tile sizes — including degenerate size-1 tiles
// and tiles larger than the domain.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "fusion/incremental.hpp"
#include "ir/builder.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/compile.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

// ---------------------------------------------------------------------------
// compile_stage unit tests (via the builder DSL).

TEST(CompileStageTest, FoldsConstantSubtrees) {
  Pipeline pl("fold");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder b(pl, pl.add_stage("s", {16, 16}));
  // (2 + 3) * load: the constant add folds to 5.0f, which is then absorbed
  // as the immediate operand of the multiply (imm_side 2: dst = 5 * load).
  b.define((b.cst(2.0f) + b.cst(3.0f)) * b.in(img, {0, 0}));
  b.mark_output();
  pl.finalize();

  const CompiledStage cs = compile_stage(pl.stage(0));
  ASSERT_TRUE(cs.valid());
  EXPECT_GE(cs.folded, 1);
  EXPECT_LT(cs.num_slots(), cs.source_nodes);
  bool has_five = false;
  for (const CompiledOp& op : cs.ops) {
    if (op.op == Op::kConst && op.imm == 5.0f) has_five = true;
    if (op.op == Op::kMul && op.imm_side == 2 && op.imm == 5.0f)
      has_five = true;
  }
  EXPECT_TRUE(has_five);
  // No dead constant slot survives: the program is load + imm-multiply.
  EXPECT_EQ(cs.num_slots(), 2);
}

TEST(CompileStageTest, EliminatesCommonSubexpressions) {
  Pipeline pl("cse");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder b(pl, pl.add_stage("s", {16, 16}));
  // x+y built twice as distinct arena nodes: the second is a CSE hit.
  const Eh x = b.coord(0);
  const Eh y = b.coord(1);
  const Eh e1 = x + y;
  const Eh e2 = x + y;
  b.define(e1 * e2 + b.in(img, {0, 0}));
  b.mark_output();
  pl.finalize();

  const CompiledStage cs = compile_stage(pl.stage(0));
  ASSERT_TRUE(cs.valid());
  EXPECT_GE(cs.cse_hits, 1);
  EXPECT_LT(cs.num_slots(), cs.source_nodes);
}

TEST(CompileStageTest, FoldsSelectWithConstantCondition) {
  Pipeline pl("sel");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder b(pl, pl.add_stage("s", {16, 16}));
  const Eh t = b.in(img, {0, 1});
  const Eh f = b.in(img, {1, 0});
  b.define(select(b.cst(1.0f), t, f));
  b.mark_output();
  pl.finalize();

  const CompiledStage cs = compile_stage(pl.stage(0));
  ASSERT_TRUE(cs.valid());
  EXPECT_GE(cs.folded, 1);
  // The root is the taken arm's load, not a select.
  EXPECT_EQ(cs.ops[static_cast<std::size_t>(cs.root)].op, Op::kLoad);
  for (const CompiledOp& op : cs.ops) EXPECT_NE(op.op, Op::kSelect);
}

TEST(CompileStageTest, ClassifiesLoadAxes) {
  Pipeline pl("axes");
  const int img = pl.add_input("img", {8, 32, 32});
  StageBuilder b(pl, pl.add_stage("s", {32, 32}));
  // Constant plane, fixed-row affine, row-varying affine.
  b.define(b.load({true, img},
                  {AxisMap::constant(3), AxisMap::affine(0, -1),
                   AxisMap::affine(1, 2)}));
  b.mark_output();
  pl.finalize();

  const CompiledStage cs = compile_stage(pl.stage(0));
  ASSERT_TRUE(cs.valid());
  const CompiledLoad& cl = cs.loads[0];
  EXPECT_EQ(cl.prank, 3);
  EXPECT_FALSE(cl.any_dynamic);
  EXPECT_EQ(cl.vary_axis, 2);
  EXPECT_TRUE(cl.vary_identity);
  EXPECT_EQ(cl.axes[0].kind, AxisMap::Kind::kConstant);
  EXPECT_FALSE(cl.axes[1].varies_row);
  EXPECT_TRUE(cl.axes[2].varies_row);
}

TEST(CompileStageTest, ReductionsAreInvalid) {
  const PipelineSpec spec = make_bilateral(32, 32);
  const Pipeline& pl = *spec.pipeline;
  bool saw_reduction = false;
  for (int s = 0; s < pl.num_stages(); ++s) {
    const CompiledStage cs = compile_stage(pl.stage(s));
    if (pl.stage(s).kind == StageKind::kReduction) {
      saw_reduction = true;
      EXPECT_FALSE(cs.valid());
    } else {
      EXPECT_TRUE(cs.valid());
    }
  }
  EXPECT_TRUE(saw_reduction);
}

// ---------------------------------------------------------------------------
// Region template.

TEST(RegionTemplateTest, BlurGroupIsTranslatable) {
  const PipelineSpec spec = make_blur(64, 64);
  const Pipeline& pl = *spec.pipeline;
  Grouping g;
  GroupSchedule gs;
  for (int i = 0; i < pl.num_stages(); ++i) gs.stages = gs.stages.with(i);
  gs.tile_sizes = {8, 8, 16};
  g.groups.push_back(gs);
  const ExecutablePlan plan = lower(pl, g);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_TRUE(plan.groups[0].region_template.translatable);
  EXPECT_GT(plan.groups[0].total_tiles, 1);
}

// For every translatable group in a DP plan, the translated template must
// equal the exact (unclamped) region computation on every full tile.
class TemplateExactnessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TemplateExactnessTest, TranslatedTemplateMatchesExactRegions) {
  const PipelineSpec spec = make_benchmark(GetParam(), 16);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  IncFusion inc(pl, model);
  const ExecutablePlan plan = lower(pl, inc.run());

  for (const GroupPlan& g : plan.groups) {
    if (g.is_reduction || !g.region_template.translatable) continue;
    const int ncls = g.align.num_classes;
    for (std::int64_t t = 0; t < g.total_tiles; ++t) {
      Box tile;
      tile.rank = ncls;
      bool full = true;
      std::int64_t rem = t;
      for (int d = ncls - 1; d >= 0; --d) {
        const std::int64_t nd = g.tiles_per_dim[static_cast<std::size_t>(d)];
        const std::int64_t idx = rem % nd;
        rem /= nd;
        const std::int64_t ts = g.tile_sizes[static_cast<std::size_t>(d)];
        tile.lo[d] = idx * ts;
        tile.hi[d] = tile.lo[d] + ts - 1;
        if (tile.hi[d] > g.align.class_extent[static_cast<std::size_t>(d)] - 1)
          full = false;
      }
      if (!full) continue;
      const GroupRegions exact = compute_group_regions(
          pl, g.stages, g.align, tile, /*clamp=*/false, &g.stage_order);
      for (int s : g.stage_order) {
        const Stage& st = pl.stage(s);
        const StageAlign& sa = g.align.stages[static_cast<std::size_t>(s)];
        const StageRegions& tr =
            g.region_template.stages[static_cast<std::size_t>(s)];
        const StageRegions& ex = exact.stages[static_cast<std::size_t>(s)];
        for (int d = 0; d < st.rank(); ++d) {
          const DimAlign& da = sa.dim[static_cast<std::size_t>(d)];
          const std::int64_t delta =
              (da.cls >= 0 && da.cls < ncls)
                  ? tile.lo[da.cls] * da.sd / da.sn
                  : 0;
          ASSERT_EQ(tr.owned.lo[d] + delta, ex.owned.lo[d])
              << GetParam() << " stage " << st.name << " tile " << t;
          ASSERT_EQ(tr.owned.hi[d] + delta, ex.owned.hi[d]);
          ASSERT_EQ(tr.required.lo[d] + delta, ex.required.lo[d]);
          ASSERT_EQ(tr.required.hi[d] + delta, ex.required.hi[d]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TemplateExactnessTest,
                         ::testing::Values("unsharp", "harris", "bilateral",
                                           "interpolate", "campipe",
                                           "pyramid", "blur"));

// ---------------------------------------------------------------------------
// Bit-equality sweep: compiled executor vs the golden reference.

void expect_outputs_match(const Pipeline& pl, const Grouping& g,
                          const std::vector<Buffer>& inputs,
                          const std::vector<Buffer>& ref,
                          const ExecOptions& opts, const std::string& label) {
  const std::vector<Buffer> outs = run_pipeline(pl, g, inputs, opts);
  ASSERT_EQ(outs.size(), pl.outputs().size());
  for (std::size_t o = 0; o < outs.size(); ++o) {
    const Buffer& expect = ref[static_cast<std::size_t>(pl.outputs()[o])];
    const std::int64_t bad = testing::first_mismatch(outs[o], expect);
    ASSERT_LT(bad, 0) << label << ": output " << o << " differs at " << bad
                      << " (got " << outs[o].data()[bad] << ", want "
                      << expect.data()[bad] << ")";
  }
}

class CompiledSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CompiledSweepTest, BitIdenticalUnderRandomizedTileSizes) {
  const std::string key = GetParam();
  const PipelineSpec spec = make_benchmark(key, 24);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  IncFusion inc(pl, model);
  const Grouping dp = inc.run();

  Rng rng(std::hash<std::string>{}(key));
  for (int round = 0; round < 3; ++round) {
    Grouping g = dp;
    for (GroupSchedule& gs : g.groups)
      for (std::int64_t& t : gs.tile_sizes) {
        switch (rng.next_below(4)) {
          case 0: t = 1; break;  // degenerate: every tile is boundary-ish
          case 1: t = 1 + static_cast<std::int64_t>(rng.next_below(7)); break;
          case 2: t = 8 + static_cast<std::int64_t>(rng.next_below(56)); break;
          default: t = 4096; break;  // larger than any domain: single tile
        }
      }
    const std::string label = key + " round " + std::to_string(round);

    ExecOptions compiled_row;
    compiled_row.num_threads = 3;
    compiled_row.mode = EvalMode::kRow;
    compiled_row.compiled = true;
    expect_outputs_match(pl, g, inputs, ref, compiled_row,
                         label + " compiled/kRow");

    ExecOptions legacy_backend = compiled_row;
    legacy_backend.vector_backend = false;
    expect_outputs_match(pl, g, inputs, ref, legacy_backend,
                         label + " compiled/scalar-backend");

    ExecOptions compiled_scalar = compiled_row;
    compiled_scalar.mode = EvalMode::kScalar;
    expect_outputs_match(pl, g, inputs, ref, compiled_scalar,
                         label + " compiled/kScalar");

    ExecOptions interpreted = compiled_row;
    interpreted.compiled = false;
    interpreted.tile_schedule = TileSchedule::kStatic;
    expect_outputs_match(pl, g, inputs, ref, interpreted,
                         label + " interpreted/kRow");
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, CompiledSweepTest,
                         ::testing::Values("unsharp", "harris", "bilateral",
                                           "interpolate", "campipe",
                                           "pyramid", "blur"));

// Random DAGs (including 2x up/down-scaling accesses) through the compiled
// path, against the reference.
class CompiledRandomPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(CompiledRandomPipelineTest, CompiledMatchesReference) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const auto pl = testing::random_pipeline(7, 44 + GetParam(), 52, seed,
                                           /*scaling=*/GetParam() % 2 == 0);
  const CostModel model(*pl, MachineModel::xeon_haswell());
  IncFusion inc(*pl, model);
  const Grouping g = inc.run();
  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image(pl->input(0).domain.extents(), seed));
  const std::vector<Buffer> ref = run_reference(*pl, inputs);
  ExecOptions opts;
  opts.num_threads = 2;
  opts.compiled = true;
  expect_outputs_match(*pl, g, inputs, ref, opts, "random compiled");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledRandomPipelineTest,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Superop fusion unit tests.

const CompiledOp& root_op(const CompiledStage& cs) {
  return cs.ops[static_cast<std::size_t>(cs.root)];
}

TEST(SuperOpFusionTest, MulAddFusesToBinChain) {
  Pipeline pl("mac");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder b(pl, pl.add_stage("s", {16, 16}));
  b.define(b.in(img, {0, 0}) * b.in(img, {0, 1}) + b.in(img, {1, 0}));
  b.mark_output();
  pl.finalize();

  const CompiledStage cs = compile_stage(pl.stage(0));
  ASSERT_TRUE(cs.valid());
  EXPECT_EQ(cs.fused, 1);
  const CompiledOp& o = root_op(cs);
  EXPECT_EQ(o.super, SuperOp::kBinChain);
  EXPECT_EQ(o.op2, Op::kMul);
  EXPECT_EQ(o.op, Op::kAdd);
  // The fused multiply disappeared as a standalone slot: 3 loads + 1 root.
  EXPECT_EQ(cs.num_slots(), 4);
}

TEST(SuperOpFusionTest, AddChainFusesAcrossNonMulOps) {
  Pipeline pl("boxsum");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder b(pl, pl.add_stage("s", {16, 16}));
  // A box-filter style add chain: fusable even with no multiply in sight.
  b.define((b.in(img, {0, -1}) + b.in(img, {0, 0})) + b.in(img, {0, 1}));
  b.mark_output();
  pl.finalize();

  const CompiledStage cs = compile_stage(pl.stage(0));
  ASSERT_TRUE(cs.valid());
  EXPECT_GE(cs.fused, 1);
  const CompiledOp& o = root_op(cs);
  EXPECT_EQ(o.super, SuperOp::kBinChain);
  EXPECT_EQ(o.op2, Op::kAdd);
  EXPECT_EQ(o.op, Op::kAdd);
}

TEST(SuperOpFusionTest, ProductDifferenceFusesToChainPair) {
  Pipeline pl("det");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder b(pl, pl.add_stage("s", {16, 16}));
  // The Harris determinant shape: Sxx*Syy - Sxy*Sxy in a single pass.
  b.define(b.in(img, {0, 0}) * b.in(img, {0, 1}) -
           b.in(img, {1, 0}) * b.in(img, {1, 1}));
  b.mark_output();
  pl.finalize();

  const CompiledStage cs = compile_stage(pl.stage(0));
  ASSERT_TRUE(cs.valid());
  EXPECT_EQ(cs.fused, 2);  // one kBinChain upgrade + the pair absorption
  const CompiledOp& o = root_op(cs);
  EXPECT_EQ(o.super, SuperOp::kChainPair);
  EXPECT_EQ(o.op, Op::kSub);
  EXPECT_EQ(o.op2, Op::kMul);
  EXPECT_EQ(o.op3, Op::kMul);
  EXPECT_GE(o.a, 0);
  EXPECT_GE(o.b, 0);
  EXPECT_GE(o.c, 0);
  EXPECT_GE(o.d, 0);
}

TEST(SuperOpFusionTest, WeightedTapFusesToWeighted) {
  Pipeline pl("tap");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder b(pl, pl.add_stage("s", {16, 16}));
  // The weighted-tap backbone of pyramid/interpolate stages.
  b.define(b.in(img, {0, 0}) * 2.0f + b.in(img, {0, 1}) * 3.0f);
  b.mark_output();
  pl.finalize();

  const CompiledStage cs = compile_stage(pl.stage(0));
  ASSERT_TRUE(cs.valid());
  EXPECT_EQ(cs.fused, 2);
  const CompiledOp& o = root_op(cs);
  EXPECT_EQ(o.super, SuperOp::kWeighted);
  EXPECT_EQ(o.op, Op::kAdd);
  EXPECT_EQ(o.imm, 2.0f);
  EXPECT_EQ(o.imm2, 3.0f);
}

TEST(SuperOpFusionTest, ComparisonSelectFusesToCmpBlend) {
  Pipeline pl("blend");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder b(pl, pl.add_stage("s", {16, 16}));
  b.define(select(lt(b.in(img, {0, 0}), b.in(img, {0, 1})),
                  b.in(img, {1, 0}), b.in(img, {1, 1})));
  b.mark_output();
  pl.finalize();

  const CompiledStage cs = compile_stage(pl.stage(0));
  ASSERT_TRUE(cs.valid());
  EXPECT_GE(cs.fused, 1);
  const CompiledOp& o = root_op(cs);
  EXPECT_EQ(o.super, SuperOp::kCmpBlend);
  EXPECT_EQ(o.op2, Op::kLt);
}

TEST(SuperOpFusionTest, SharedSubtreeIsNotFused) {
  Pipeline pl("shared");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder b(pl, pl.add_stage("s", {16, 16}));
  // m is multiply-used: absorbing it into either consumer would duplicate
  // work, so it must stay a standalone op.
  const Eh m = b.in(img, {0, 0}) * b.in(img, {0, 1});
  b.define((m + b.in(img, {1, 0})) * m);
  b.mark_output();
  pl.finalize();

  const CompiledStage cs = compile_stage(pl.stage(0));
  ASSERT_TRUE(cs.valid());
  bool mul_survives = false;
  for (const CompiledOp& op : cs.ops)
    if (op.op == Op::kMul && op.super == SuperOp::kNone && op.imm_side == 0 &&
        op.b >= 0)
      mul_survives = true;
  EXPECT_TRUE(mul_survives);
}

TEST(SuperOpFusionTest, LegacyOptionsDisableFusion) {
  Pipeline pl("legacy");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder b(pl, pl.add_stage("s", {16, 16}));
  b.define(b.in(img, {0, 0}) * b.in(img, {0, 1}) + b.in(img, {1, 0}));
  b.mark_output();
  pl.finalize();

  CompileOptions legacy;
  legacy.fuse_superops = false;
  legacy.reg_alloc = false;
  legacy.vector_loads = false;
  const CompiledStage cs = compile_stage(pl.stage(0), legacy);
  ASSERT_TRUE(cs.valid());
  EXPECT_EQ(cs.fused, 0);
  EXPECT_FALSE(cs.vector_loads);
  for (const CompiledOp& op : cs.ops) EXPECT_EQ(op.super, SuperOp::kNone);
}

// ---------------------------------------------------------------------------
// Row-register allocation invariants.

void collect_operands(const CompiledOp& o, const CompiledStage& cs,
                      std::vector<std::int32_t>* out) {
  for (std::int32_t s : {o.a, o.b, o.c, o.d})
    if (s >= 0) out->push_back(s);
  if (o.op == Op::kLoad) {
    const CompiledLoad& cl = cs.loads[static_cast<std::size_t>(o.load_id)];
    for (int d = 0; d < cl.prank; ++d)
      if (cl.axes[static_cast<std::size_t>(d)].dyn_slot >= 0)
        out->push_back(cl.axes[static_cast<std::size_t>(d)].dyn_slot);
  }
}

TEST(RegisterAllocationTest, ReusesRegistersWithoutAliasing) {
  for (const char* key : {"unsharp", "harris", "bilateral", "campipe"}) {
    const PipelineSpec spec = make_benchmark(key, 16);
    const Pipeline& pl = *spec.pipeline;
    for (int s = 0; s < pl.num_stages(); ++s) {
      const CompiledStage cs = compile_stage(pl.stage(s));
      if (!cs.valid()) continue;
      ASSERT_EQ(cs.reg.size(), cs.ops.size()) << key;
      EXPECT_LE(cs.num_regs, cs.num_slots()) << key;
      for (std::size_t i = 0; i < cs.ops.size(); ++i) {
        const std::int32_t r = cs.reg[i];
        if (static_cast<std::int32_t>(i) == cs.root) {
          // The root writes the caller's row, never an arena register.
          EXPECT_EQ(r, -1) << key;
          continue;
        }
        ASSERT_GE(r, 0) << key;
        ASSERT_LT(r, cs.num_regs) << key;
        // A dst register never aliases any operand's register: kernels may
        // read and write in any order within the row.
        std::vector<std::int32_t> opnds;
        collect_operands(cs.ops[i], cs, &opnds);
        for (std::int32_t o : opnds)
          EXPECT_NE(r, cs.reg[static_cast<std::size_t>(o)])
              << key << " stage " << s << " slot " << i;
      }
    }
  }
}

TEST(RegisterAllocationTest, LegacyOptionsGiveIdentityAssignment) {
  const PipelineSpec spec = make_benchmark("harris", 16);
  const Pipeline& pl = *spec.pipeline;
  CompileOptions legacy;
  legacy.fuse_superops = false;
  legacy.reg_alloc = false;
  legacy.vector_loads = false;
  bool saw_reuse = false;
  for (int s = 0; s < pl.num_stages(); ++s) {
    const CompiledStage plain = compile_stage(pl.stage(s), legacy);
    if (!plain.valid()) continue;
    EXPECT_EQ(plain.num_regs, plain.num_slots());
    for (std::size_t i = 0; i < plain.reg.size(); ++i) {
      if (static_cast<std::int32_t>(i) == plain.root)
        EXPECT_EQ(plain.reg[i], -1);
      else
        EXPECT_EQ(plain.reg[i], static_cast<std::int32_t>(i));
    }
    const CompiledStage packed = compile_stage(pl.stage(s));
    if (packed.valid() && packed.num_regs < packed.num_slots())
      saw_reuse = true;
  }
  // At least one Harris stage is big enough for the allocator to win.
  EXPECT_TRUE(saw_reuse);
}

// ---------------------------------------------------------------------------
// Adversarial row lengths and unaligned tile origins.
//
// Innermost tile sizes of 1, vector_width±1 (7/9 for 8-lane AVX2 floats)
// and primes force every SIMD kernel through remainder lanes, and odd
// sizes make most tile origins unaligned.  Both backends must stay
// bit-identical to the scalar reference everywhere.

class AdversarialTileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AdversarialTileTest, BitIdenticalOnHostileRowLengths) {
  const std::string key = GetParam();
  const PipelineSpec spec = make_benchmark(key, 24);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  IncFusion inc(pl, model);
  const Grouping dp = inc.run();

  for (const std::int64_t inner : {1, 7, 9, 13, 31}) {
    Grouping g = dp;
    for (GroupSchedule& gs : g.groups)
      for (std::size_t d = 0; d < gs.tile_sizes.size(); ++d)
        gs.tile_sizes[d] = (d + 1 == gs.tile_sizes.size()) ? inner : 5;
    const std::string label = key + " inner=" + std::to_string(inner);

    ExecOptions vec;
    vec.num_threads = 2;
    vec.mode = EvalMode::kRow;
    vec.compiled = true;
    vec.vector_backend = true;
    expect_outputs_match(pl, g, inputs, ref, vec, label + " vector");

    ExecOptions legacy = vec;
    legacy.vector_backend = false;
    expect_outputs_match(pl, g, inputs, ref, legacy, label + " scalar-compiled");
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, AdversarialTileTest,
                         ::testing::Values("unsharp", "harris", "bilateral",
                                           "interpolate", "campipe",
                                           "pyramid", "blur"));

// ---------------------------------------------------------------------------
// allow_fma: contracted multiply-accumulate is NOT bit-identical, but must
// stay within a tight relative tolerance of the reference (FMA only skips
// one intermediate rounding, and may only tighten the error of each MAC).

TEST(AllowFmaTest, HarrisWithinToleranceOfReference) {
  const PipelineSpec spec = make_benchmark("harris", 24);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  IncFusion inc(pl, model);
  const Grouping g = inc.run();

  ExecOptions opts;
  opts.num_threads = 2;
  opts.mode = EvalMode::kRow;
  opts.compiled = true;
  opts.vector_backend = true;
  opts.allow_fma = true;
  const std::vector<Buffer> outs = run_pipeline(pl, g, inputs, opts);
  ASSERT_EQ(outs.size(), pl.outputs().size());
  for (std::size_t o = 0; o < outs.size(); ++o) {
    const Buffer& expect = ref[static_cast<std::size_t>(pl.outputs()[o])];
    ASSERT_EQ(outs[o].volume(), expect.volume());
    const float* got = outs[o].data();
    const float* want = expect.data();
    for (std::int64_t i = 0; i < outs[o].volume(); ++i) {
      ASSERT_TRUE(std::isfinite(got[i])) << "output " << o << " at " << i;
      const float tol = 1e-3f * (1.0f + std::fabs(want[i]));
      ASSERT_NEAR(got[i], want[i], tol) << "output " << o << " at " << i;
    }
  }
}

}  // namespace
}  // namespace fusedp
