// Tests for the machine model and Algorithm 2 (COST / COSTFORCACHESIZE /
// COMPUTETILESIZES).
#include <gtest/gtest.h>

#include "model/cost.hpp"
#include "pipelines/pipelines.hpp"

namespace fusedp {
namespace {

NodeSet all_stages(const Pipeline& pl) {
  NodeSet s;
  for (int i = 0; i < pl.num_stages(); ++i) s = s.with(i);
  return s;
}

TEST(MachineTest, Presets) {
  const MachineModel xeon = MachineModel::xeon_haswell();
  EXPECT_EQ(xeon.l1_bytes, 32 * 1024);
  EXPECT_EQ(xeon.l2_bytes, 256 * 1024);
  EXPECT_EQ(xeon.innermost_tile, 256);
  EXPECT_EQ(xeon.cores, 16);
  const MachineModel amd = MachineModel::amd_opteron();
  EXPECT_EQ(amd.l1_bytes, 16 * 1024);
  EXPECT_EQ(amd.innermost_tile, 128);
  EXPECT_LT(amd.weights.w1, xeon.weights.w1);  // paper Table 1 relation
  EXPECT_GT(amd.weights.w4, xeon.weights.w4);
  const MachineModel host = MachineModel::host();
  EXPECT_GT(host.l1_bytes, 0);
  EXPECT_GE(host.cores, 1);
}

TEST(MachineTest, PaperWeightsPreserved) {
  const CostWeights px = CostWeights::paper_xeon();
  EXPECT_DOUBLE_EQ(px.w1, 1.0);
  EXPECT_DOUBLE_EQ(px.w2, 100.0);
  EXPECT_DOUBLE_EQ(px.w3, 46875.0);
  EXPECT_DOUBLE_EQ(px.w4, 1.5);
  const CostWeights po = CostWeights::paper_opteron();
  EXPECT_DOUBLE_EQ(po.w1, 0.3);
  EXPECT_DOUBLE_EQ(po.w4, 2.0);
}

TEST(CostTest, InfeasibleGroupsCostInfinity) {
  const PipelineSpec spec = make_bilateral(128, 128);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  // grid (reduction) fused with blurz.
  EXPECT_FALSE(model.cost(NodeSet::single(0).with(1)).feasible());
  // blurx fused with slice_num (dynamic z).
  EXPECT_FALSE(model.cost(NodeSet::single(3).with(4)).feasible());
  // Disconnected pair slice_num + grid.
  EXPECT_FALSE(model.cost(NodeSet::single(0).with(4)).feasible());
  // Singletons are always feasible.
  for (int s = 0; s < spec.pipeline->num_stages(); ++s)
    EXPECT_TRUE(model.cost(NodeSet::single(s)).feasible()) << s;
}

TEST(CostTest, FusionBeatsNoFusionOnBlur) {
  const PipelineSpec spec = make_blur(1024, 1024);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  const double fused = model.cost(all_stages(*spec.pipeline)).cost;
  const double apart =
      model.cost(NodeSet::single(0)).cost + model.cost(NodeSet::single(1)).cost;
  EXPECT_LT(fused, apart)
      << "producer-consumer fusion with small overlap must win";
}

TEST(CostTest, InnermostTilePinned) {
  const PipelineSpec spec = make_unsharp(512, 2048);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  const GroupCost gc = model.cost(all_stages(*spec.pipeline));
  ASSERT_TRUE(gc.feasible());
  ASSERT_EQ(gc.tile_sizes.size(), 3u);
  EXPECT_EQ(gc.tile_sizes[2], 256);  // min(2048, INNERMOSTTILESIZE=256)
}

TEST(CostTest, InnermostClampedToExtent) {
  const PipelineSpec spec = make_unsharp(512, 100);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  const GroupCost gc = model.cost(all_stages(*spec.pipeline));
  ASSERT_TRUE(gc.feasible());
  EXPECT_EQ(gc.tile_sizes[2], 100);
}

TEST(CostTest, TileSizesNotRestrictedToPowersOfTwo) {
  // A key claim of the paper.  Across the benchmarks, at least one group
  // must receive a non-power-of-two tile size.
  bool found = false;
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 8);
    const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
    for (int s = 0; s < spec.pipeline->num_stages(); ++s) {
      const GroupCost gc = model.cost(NodeSet::single(s));
      for (std::int64_t t : gc.tile_sizes)
        if (t > 2 && (t & (t - 1)) != 0) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CostTest, TileSizesWithinExtentsAndPositive) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 8);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, MachineModel::xeon_haswell());
    for (int s = 0; s < pl.num_stages(); ++s) {
      const GroupCost gc = model.cost(NodeSet::single(s));
      ASSERT_TRUE(gc.feasible());
      const AlignResult align = solve_alignment(pl, NodeSet::single(s));
      ASSERT_EQ(gc.tile_sizes.size(),
                static_cast<std::size_t>(align.num_classes));
      for (int d = 0; d < align.num_classes; ++d) {
        EXPECT_GE(gc.tile_sizes[static_cast<std::size_t>(d)], 1);
        // Granularity rounding may exceed the extent by < one granule.
        EXPECT_LE(gc.tile_sizes[static_cast<std::size_t>(d)],
                  align.class_extent[static_cast<std::size_t>(d)] +
                      align.class_granularity[static_cast<std::size_t>(d)]);
      }
    }
  }
}

TEST(CostTest, ComputeTileSizesRespectsFootprint) {
  const PipelineSpec spec = make_unsharp(2832, 4256);
  const Pipeline& pl = *spec.pipeline;
  const NodeSet group = all_stages(pl);
  const AlignResult align = solve_alignment(pl, group);
  const ReuseInfo reuse = compute_reuse(pl, group, align);
  const std::int64_t footprint = 8192;  // L1 floats
  const auto ts = CostModel::compute_tile_sizes(reuse, align, footprint,
                                                /*buffers=*/4,
                                                /*imts=*/256);
  std::int64_t vol = 4;
  for (std::int64_t t : ts) vol *= t;
  // Tile volume * buffers should be within ~4x of the target footprint
  // (rounding, granularity, innermost pinning).
  EXPECT_LE(vol, footprint * 4);
}

TEST(CostTest, HigherReuseDimensionGetsLongerTile) {
  const PipelineSpec spec = make_unsharp(2832, 4256);
  const Pipeline& pl = *spec.pipeline;
  const NodeSet group = all_stages(pl);
  const AlignResult align = solve_alignment(pl, group);
  ReuseInfo reuse = compute_reuse(pl, group, align);
  // Force a strong reuse imbalance between c (dim 0) and x (dim 1).
  reuse.dim_reuse[0] = 1.0;
  reuse.dim_reuse[1] = 8.0;
  const auto ts = CostModel::compute_tile_sizes(reuse, align, 1 << 16, 4, 256);
  EXPECT_GT(ts[1], ts[0]);
}

TEST(CostTest, L2FallbackWhenOverlapDominates) {
  // A deep stencil chain on a tiny L1 makes the halo exceed the tile, which
  // must trigger the L2-size fallback (Algorithm 2 lines 6-9).
  const PipelineSpec spec = make_harris(2832, 4256);
  const Pipeline& pl = *spec.pipeline;
  MachineModel m = MachineModel::xeon_haswell();
  m.l1_bytes = 2 * 1024;  // pathologically small L1
  const CostModel model(pl, m);
  NodeSet group;
  for (int i = 0; i < pl.num_stages(); ++i) group = group.with(i);
  const GroupCost gc = model.cost(group);
  ASSERT_TRUE(gc.feasible());
  EXPECT_TRUE(gc.used_l2);
}

TEST(CostTest, EmptyGroupCostsZero) {
  const PipelineSpec spec = make_blur(64, 64);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  EXPECT_EQ(model.cost(NodeSet()).cost, 0.0);
}

}  // namespace
}  // namespace fusedp
