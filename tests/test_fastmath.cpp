// Accuracy and dispatch tests for the approximate transcendental kernels
// (runtime/fastmath.hpp) and the ExecOptions::fast_transcendentals /
// never_pessimize plumbing around them.
//
// The ulp/relative bounds asserted here are ~2-4x the measured worst case
// of each kernel (exp/log sampled at <= 1 ulp, pow/rsqrt at < 7e-6
// relative), so they fail on a real accuracy regression without being
// flaky across compilers.  Special values (+-0, denormals, NaN, +-Inf,
// the overflow/underflow boundaries) are pinned exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "fusion/incremental.hpp"
#include "model/cost.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/benefit.hpp"
#include "runtime/executor.hpp"
#include "runtime/fastmath.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

std::uint32_t bits_of(float x) {
  std::uint32_t b;
  std::memcpy(&b, &x, sizeof b);
  return b;
}

// Distance in representable floats, treating the number line monotonically
// across the sign (so ulp(-0, +0) == 0, and values straddling zero measure
// through it).
std::int64_t ulp_dist(float a, float b) {
  std::int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof ia);
  std::memcpy(&ib, &b, sizeof ib);
  if (ia < 0) ia = std::numeric_limits<std::int32_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int32_t>::min() - ib;
  const std::int64_t d = static_cast<std::int64_t>(ia) - ib;
  return d < 0 ? -d : d;
}

// ---------------------------------------------------------------------------
// fast_exp

TEST(FastExpTest, UlpSweepAgainstLibm) {
  // Dense-ish sweep over the full finite-result range, both signs.
  for (std::uint32_t i = 0; i < 0x7F800000u; i += 4099) {
    float x;
    std::memcpy(&x, &i, sizeof x);
    for (const float s : {x, -x}) {
      if (s > 88.7f || s < -104.0f) continue;
      const float got = fastmath::fast_exp(s);
      const float want = std::exp(s);
      ASSERT_LE(ulp_dist(got, want), 4) << "exp(" << s << ") got " << got
                                        << " want " << want;
    }
  }
}

TEST(FastExpTest, GradualUnderflowToDenormals) {
  // Between exp(-87.33) (smallest normal result) and exp(-103.97) (last
  // nonzero denormal), results leave the normal range; the two-part scale
  // must keep them within a few ulp of libm instead of flushing to zero.
  for (float x = -88.0f; x > -104.0f; x -= 0.173f) {
    const float got = fastmath::fast_exp(x);
    const float want = std::exp(x);
    ASSERT_LE(ulp_dist(got, want), 4) << "exp(" << x << ")";
  }
  EXPECT_EQ(fastmath::fast_exp(-150.0f), 0.0f);
  EXPECT_FALSE(std::signbit(fastmath::fast_exp(-150.0f)));
}

TEST(FastExpTest, SpecialValues) {
  EXPECT_EQ(bits_of(fastmath::fast_exp(0.0f)), bits_of(1.0f));
  EXPECT_EQ(bits_of(fastmath::fast_exp(-0.0f)), bits_of(1.0f));
  EXPECT_EQ(fastmath::fast_exp(kInf), kInf);
  EXPECT_EQ(fastmath::fast_exp(-kInf), 0.0f);
  EXPECT_TRUE(std::isnan(fastmath::fast_exp(kNaN)));
  // Denormal inputs: e^tiny == 1.0f exactly in float.
  EXPECT_EQ(fastmath::fast_exp(1e-40f), 1.0f);
  EXPECT_EQ(fastmath::fast_exp(-1e-40f), 1.0f);
  // Overflow boundary: the largest finite-exp argument stays finite, just
  // past it overflows to +inf (log(FLT_MAX) = 88.7228390...).
  EXPECT_TRUE(std::isfinite(fastmath::fast_exp(88.72283f)));
  EXPECT_EQ(fastmath::fast_exp(88.8f), kInf);
  EXPECT_EQ(fastmath::fast_exp(1000.0f), kInf);
}

// ---------------------------------------------------------------------------
// fast_log

TEST(FastLogTest, UlpSweepAgainstLibm) {
  for (std::uint32_t i = 0x00800000u; i < 0x7F800000u; i += 4099) {
    float x;
    std::memcpy(&x, &i, sizeof x);
    const float got = fastmath::fast_log(x);
    const float want = std::log(x);
    // Near x = 1 the result crosses zero and relative ulp explodes for any
    // approximation; pin a tight absolute envelope there instead.
    if (std::fabs(want) < 1e-5f) {
      ASSERT_NEAR(got, want, 1e-6f) << "log(" << x << ")";
    } else {
      ASSERT_LE(ulp_dist(got, want), 4) << "log(" << x << ") got " << got
                                        << " want " << want;
    }
  }
}

TEST(FastLogTest, DenormalArguments) {
  // The denormal path renormalizes by 2^23 before the exponent split.
  for (std::uint32_t i = 1; i < 0x00800000u; i += 977) {
    float x;
    std::memcpy(&x, &i, sizeof x);
    const float got = fastmath::fast_log(x);
    const float want = std::log(x);
    ASSERT_LE(ulp_dist(got, want), 4) << "log(denormal " << x << ")";
  }
}

TEST(FastLogTest, SpecialValues) {
  // log(1) must be +0.0f exactly — campipe's tone curve hits it.
  EXPECT_EQ(bits_of(fastmath::fast_log(1.0f)), bits_of(0.0f));
  EXPECT_EQ(fastmath::fast_log(0.0f), -kInf);
  EXPECT_EQ(fastmath::fast_log(-0.0f), -kInf);
  EXPECT_EQ(fastmath::fast_log(kInf), kInf);
  EXPECT_TRUE(std::isnan(fastmath::fast_log(-1.0f)));
  EXPECT_TRUE(std::isnan(fastmath::fast_log(-kInf)));
  EXPECT_TRUE(std::isnan(fastmath::fast_log(kNaN)));
}

// ---------------------------------------------------------------------------
// fast_pow

TEST(FastPowTest, RelativeErrorSweep) {
  // exp(b*log a) compounds both kernels' errors multiplicatively; away from
  // overflow the compound stays well under 2e-5 relative.
  for (float a = 1e-6f; a < 1e6f; a *= 1.37f) {
    for (float b = -8.0f; b <= 8.0f; b += 0.31f) {
      const double want = std::pow(static_cast<double>(a),
                                   static_cast<double>(b));
      if (!std::isfinite(want) || std::fabs(want) < 1e-30 ||
          std::fabs(want) > 1e30)
        continue;
      const float got = fastmath::fast_pow(a, b);
      ASSERT_NEAR(got, want, 2e-5 * std::fabs(want))
          << "pow(" << a << ", " << b << ")";
    }
  }
}

TEST(FastPowTest, CampipeGammaConstants) {
  // The campipe tone curve applies pow(x, 1/2.2) over [0, 1] — the exact
  // shape fast_transcendentals accelerates.  Check the full LUT domain.
  for (int i = 0; i <= 255; ++i) {
    const float x = static_cast<float>(i) / 255.0f;
    if (x == 0.0f) {
      EXPECT_EQ(fastmath::fast_pow(0.0f, 1.0f / 2.2f), 0.0f);
      continue;
    }
    const double want =
        std::pow(static_cast<double>(x), 1.0 / 2.2);
    EXPECT_NEAR(fastmath::fast_pow(x, 1.0f / 2.2f), want, 2e-5 * want)
        << "gamma at " << i;
  }
}

TEST(FastPowTest, BilateralRangeWeightConstants) {
  // Bilateral-style range weights: exp(-d^2 / (2 sigma^2)) for pixel
  // differences d in [0, 1] and the typical sigma ladder.
  for (const float sigma : {0.05f, 0.1f, 0.25f, 0.5f}) {
    for (float d = 0.0f; d <= 1.0f; d += 0.01f) {
      const float arg = -d * d / (2.0f * sigma * sigma);
      const float got = fastmath::fast_exp(arg);
      const float want = std::exp(arg);
      ASSERT_LE(ulp_dist(got, want), 4)
          << "range weight sigma=" << sigma << " d=" << d;
    }
  }
}

TEST(FastPowTest, NegativeBaseParity) {
  EXPECT_EQ(fastmath::fast_pow(-2.0f, 3.0f), -8.0f);
  EXPECT_EQ(fastmath::fast_pow(-2.0f, 2.0f), 4.0f);
  EXPECT_NEAR(fastmath::fast_pow(-3.0f, 5.0f), -243.0f, 243.0f * 2e-5f);
  EXPECT_TRUE(std::isnan(fastmath::fast_pow(-2.0f, 0.5f)));
  EXPECT_TRUE(std::isnan(fastmath::fast_pow(-2.0f, 2.5f)));
}

TEST(FastPowTest, SpecialValues) {
  EXPECT_EQ(fastmath::fast_pow(0.0f, 0.0f), 1.0f);   // IEEE pow(0,0) = 1
  EXPECT_EQ(fastmath::fast_pow(7.5f, 0.0f), 1.0f);
  EXPECT_EQ(fastmath::fast_pow(1.0f, kNaN), 1.0f);   // IEEE pow(1,y) = 1
  EXPECT_EQ(fastmath::fast_pow(1.0f, kInf), 1.0f);
  EXPECT_EQ(fastmath::fast_pow(0.0f, 2.0f), 0.0f);   // 0^positive = 0
  EXPECT_EQ(fastmath::fast_pow(0.0f, -2.0f), kInf);  // 0^negative = inf
  EXPECT_EQ(fastmath::fast_pow(2.0f, kInf), kInf);
  EXPECT_EQ(fastmath::fast_pow(2.0f, -kInf), 0.0f);
  EXPECT_TRUE(std::isnan(fastmath::fast_pow(2.0f, kNaN)));
  EXPECT_TRUE(std::isnan(fastmath::fast_pow(kNaN, 2.0f)));
}

// ---------------------------------------------------------------------------
// fast_rsqrt

TEST(FastRsqrtTest, RelativeErrorSweep) {
  for (std::uint32_t i = 0x00800000u; i < 0x7F800000u; i += 4099) {
    float x;
    std::memcpy(&x, &i, sizeof x);
    const double want = 1.0 / std::sqrt(static_cast<double>(x));
    if (!std::isfinite(want) || want < 1e-30) continue;
    ASSERT_NEAR(fastmath::fast_rsqrt(x), want, 2e-5 * want)
        << "rsqrt(" << x << ")";
  }
}

TEST(FastRsqrtTest, SpecialValues) {
  EXPECT_EQ(fastmath::fast_rsqrt(0.0f), kInf);
  EXPECT_EQ(fastmath::fast_rsqrt(-0.0f), -kInf);  // IEEE rsqrt(-0) = -inf
  EXPECT_EQ(fastmath::fast_rsqrt(kInf), 0.0f);
  EXPECT_TRUE(std::isnan(fastmath::fast_rsqrt(-1.0f)));
  EXPECT_TRUE(std::isnan(fastmath::fast_rsqrt(kNaN)));
}

// ---------------------------------------------------------------------------
// Executor-level: fast_transcendentals tolerance, never_pessimize identity.

std::vector<Buffer> run_with(const Pipeline& pl, const Grouping& g,
                             const std::vector<Buffer>& inputs,
                             bool fastmath, bool never_pessimize) {
  ExecOptions opts;
  opts.num_threads = 2;
  opts.mode = EvalMode::kRow;
  opts.compiled = true;
  opts.vector_backend = true;
  opts.fast_transcendentals = fastmath;
  opts.never_pessimize = never_pessimize;
  return run_pipeline(pl, g, inputs, opts);
}

// campipe (tone curve: pow) and bilateral (transcendental-free but
// gather-heavy) under fast_transcendentals: outputs must stay within the
// documented tolerance envelope of the bit-exact reference.
TEST(FastTranscendentalsTest, CampipeWithinToleranceOfReference) {
  const PipelineSpec spec = make_benchmark("campipe", 16);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  IncFusion inc(pl, CostModel(pl, MachineModel::xeon_haswell()));
  const Grouping g = inc.run();

  const std::vector<Buffer> outs =
      run_with(pl, g, inputs, /*fastmath=*/true, /*never_pessimize=*/true);
  ASSERT_EQ(outs.size(), pl.outputs().size());
  for (std::size_t o = 0; o < outs.size(); ++o) {
    const Buffer& expect = ref[static_cast<std::size_t>(pl.outputs()[o])];
    const float* got = outs[o].data();
    const float* want = expect.data();
    for (std::int64_t i = 0; i < outs[o].volume(); ++i) {
      ASSERT_TRUE(std::isfinite(got[i])) << "output " << o << " at " << i;
      const float tol = 1e-3f + 1e-2f * std::fabs(want[i]);
      ASSERT_NEAR(got[i], want[i], tol) << "output " << o << " at " << i;
    }
  }
}

// With fast_transcendentals OFF the vector backend must stay bit-identical
// to the reference regardless of the never_pessimize gate's decisions —
// both compiled forms produce identical bits, so demotion is invisible.
TEST(NeverPessimizeTest, GateIsBitInvisible) {
  for (const char* key : {"campipe", "bilateral"}) {
    const PipelineSpec spec = make_benchmark(key, 16);
    const Pipeline& pl = *spec.pipeline;
    const std::vector<Buffer> inputs = spec.make_inputs();
    IncFusion inc(pl, CostModel(pl, MachineModel::xeon_haswell()));
    const Grouping g = inc.run();

    const std::vector<Buffer> on =
        run_with(pl, g, inputs, /*fastmath=*/false, /*never_pessimize=*/true);
    const std::vector<Buffer> off = run_with(pl, g, inputs, /*fastmath=*/false,
                                             /*never_pessimize=*/false);
    ASSERT_EQ(on.size(), off.size());
    for (std::size_t o = 0; o < on.size(); ++o)
      EXPECT_TRUE(testing::buffers_equal(on[o], off[o]))
          << key << " output " << o << " differs at "
          << testing::first_mismatch(on[o], off[o]);
  }
}

// The gate must fill GroupPlan::verdict: campipe's tone-curve group carries
// scalar libm pow (fast_transcendentals off), so at least one group is
// statically suspect and micro-measured.
TEST(NeverPessimizeTest, VerdictsArePopulated) {
  const PipelineSpec spec = make_benchmark("campipe", 16);
  const Pipeline& pl = *spec.pipeline;
  IncFusion inc(pl, CostModel(pl, MachineModel::xeon_haswell()));
  const Grouping g = inc.run();

  ExecOptions opts;
  opts.num_threads = 1;
  opts.mode = EvalMode::kRow;
  opts.compiled = true;
  opts.vector_backend = true;
  const Executor ex(pl, g, opts);

  int measured = 0, libm_suspects = 0;
  for (const GroupPlan& gp : ex.plan().groups) {
    if (gp.verdict.measured) {
      ++measured;
      EXPECT_GT(gp.verdict.vector_ms, 0.0);
      EXPECT_GT(gp.verdict.scalar_ms, 0.0);
      EXPECT_NE(gp.verdict.cause, BenefitCause::kNone);
    }
    if (gp.verdict.cause == BenefitCause::kLibmFallback) ++libm_suspects;
  }
  EXPECT_GE(measured, 1);
  EXPECT_GE(libm_suspects, 1);

  // With never_pessimize off, no group is measured.
  opts.never_pessimize = false;
  const Executor ex2(pl, g, opts);
  for (const GroupPlan& gp : ex2.plan().groups)
    EXPECT_FALSE(gp.verdict.measured);
}

// With fast_transcendentals ON, campipe's libm suspicion disappears (the
// transcendental rows vectorize), so the static profile reports no
// libm-fallback cause.
TEST(NeverPessimizeTest, FastmathClearsLibmSuspicion) {
  const PipelineSpec spec = make_benchmark("campipe", 16);
  const Pipeline& pl = *spec.pipeline;
  IncFusion inc(pl, CostModel(pl, MachineModel::xeon_haswell()));
  const Grouping g = inc.run();

  ExecOptions opts;
  opts.num_threads = 1;
  opts.mode = EvalMode::kRow;
  opts.compiled = true;
  opts.vector_backend = true;
  opts.fast_transcendentals = true;
  const Executor ex(pl, g, opts);
  for (const GroupPlan& gp : ex.plan().groups)
    EXPECT_NE(gp.verdict.cause, BenefitCause::kLibmFallback);
}

}  // namespace
}  // namespace fusedp
