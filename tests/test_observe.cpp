// Observability subsystem tests: trace collection counters against the
// plan's ground truth, Chrome trace_event JSON schema, and the
// predicted-vs-measured report join.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>

#include "api/session.hpp"
#include "observe/trace.hpp"
#include "pipelines/pipelines.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

// --- a minimal JSON validator (syntax only) ---------------------------------
// Enough to assert the exported trace is well-formed JSON without an
// external parser dependency.

class MiniJson {
 public:
  explicit MiniJson(const std::string& s) : s_(s) {}

  bool valid() {
    i_ = 0;
    if (!value()) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    ws();
    if (peek() == '}') { ++i_; return true; }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++i_;
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    ws();
    if (peek() == ']') { ++i_; return true; }
    for (;;) {
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    return i_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++i_)
      if (i_ >= s_.size() || s_[i_] != *p) return false;
    return true;
  }
  void ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])) != 0)
      ++i_;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

  const std::string& s_;
  std::size_t i_ = 0;
};

std::size_t count_occurrences(const std::string& hay, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t p = hay.find(pat); p != std::string::npos;
       p = hay.find(pat, p + pat.size()))
    ++n;
  return n;
}

// Opens a traced session over `spec`, executes once, returns the session.
Session traced_session(const PipelineSpec& spec, int threads,
                       bool tiles = true) {
  Options o;
  o.num_threads = threads;
  o.collect_trace = true;
  o.trace_tiles = tiles;
  Result<Session> opened = Session::open(*spec.pipeline, o);
  EXPECT_TRUE(opened.ok()) << opened.error().what();
  Session s = std::move(opened).value();
  Result<double> r = s.execute(spec.make_inputs());
  EXPECT_TRUE(r.ok()) << r.error().what();
  return s;
}

// --- counter sanity against the plan ----------------------------------------

TEST(ObserveCountersTest, TileAndElementCountsMatchPlan) {
  const PipelineSpec spec = make_harris(96, 128);
  const Pipeline& pl = *spec.pipeline;
  Session s = traced_session(spec, 2);
  const observe::RunTrace* t = s.trace();
  ASSERT_NE(t, nullptr);
  ASSERT_TRUE(t->complete);
  EXPECT_EQ(t->meta.pipeline, pl.name());
  EXPECT_EQ(t->meta.num_threads, 2);

  const ExecutablePlan& plan = s.plan();
  ASSERT_EQ(t->groups.size(), plan.groups.size());
  EXPECT_EQ(t->meta.num_groups, static_cast<int>(plan.groups.size()));

  std::int64_t plan_tiles = 0, run_tiles = 0;
  for (std::size_t gi = 0; gi < plan.groups.size(); ++gi) {
    const GroupPlan& gp = plan.groups[gi];
    const observe::GroupRecord& rec = t->groups[gi];
    EXPECT_EQ(rec.index, static_cast<int>(gi));
    EXPECT_EQ(rec.is_reduction, gp.is_reduction);
    plan_tiles += gp.is_reduction ? 1 : gp.total_tiles;
    run_tiles += rec.tiles_run;
    // Every tile of every group ran exactly once.
    EXPECT_EQ(rec.tiles_run, gp.is_reduction ? 1 : gp.total_tiles) << gi;
    EXPECT_LE(rec.interior_tiles, rec.tiles_run) << gi;
    EXPECT_GE(rec.seconds, 0.0) << gi;
    EXPECT_GE(rec.t_end, rec.t_begin) << gi;
    if (gp.is_reduction) continue;
    // Owned boxes of adjacent tiles exactly partition each member stage's
    // domain (analysis/regions), so the merged owned counter must equal
    // the summed stage volumes — and the computed counter exceeds it by
    // exactly the redundant overlap recomputation.
    std::int64_t want_owned = 0;
    for (int st : gp.stage_order)
      want_owned += pl.stage(st).domain.volume();
    EXPECT_EQ(rec.owned_elems, want_owned) << gi;
    EXPECT_GE(rec.computed_elems, rec.owned_elems) << gi;
    EXPECT_GT(rec.scratch_bytes, 0) << gi;
    // Per-tile events were requested: they must sum to the group counters.
    ASSERT_EQ(static_cast<std::int64_t>(rec.tiles.size()), rec.tiles_run);
    std::int64_t ev_computed = 0, ev_owned = 0, ev_interior = 0;
    for (const observe::TileEvent& ev : rec.tiles) {
      ev_computed += ev.computed_elems;
      ev_owned += ev.owned_elems;
      ev_interior += ev.interior ? 1 : 0;
      EXPECT_GE(ev.t_end, ev.t_begin);
      EXPECT_GE(ev.thread, 0);
      EXPECT_LT(ev.thread, 2);
      EXPECT_GE(ev.index, 0);
      EXPECT_LT(ev.index, gp.total_tiles);
    }
    EXPECT_EQ(ev_computed, rec.computed_elems) << gi;
    EXPECT_EQ(ev_owned, rec.owned_elems) << gi;
    EXPECT_EQ(ev_interior, rec.interior_tiles) << gi;
  }
  EXPECT_EQ(run_tiles, plan_tiles);
}

TEST(ObserveCountersTest, TilesOffKeepsAggregatesOnly) {
  const PipelineSpec spec = make_blur(96, 96);
  Session s = traced_session(spec, 2, /*tiles=*/false);
  const observe::RunTrace* t = s.trace();
  ASSERT_NE(t, nullptr);
  for (const observe::GroupRecord& rec : t->groups) {
    EXPECT_TRUE(rec.tiles.empty());
    EXPECT_GT(rec.tiles_run, 0);
  }
}

TEST(ObserveCountersTest, ScheduleAttemptsStreamToTrace) {
  const PipelineSpec spec = make_harris(96, 128);
  Session s = traced_session(spec, 1);
  const observe::RunTrace* t = s.trace();
  ASSERT_NE(t, nullptr);
  ASSERT_FALSE(t->schedule.empty());  // kAuto emitted its ladder
  for (const observe::ScheduleAttempt& at : t->schedule) {
    EXPECT_FALSE(at.tier.empty());
    if (!at.succeeded) {
      EXPECT_FALSE(at.code.empty());
    }
  }
  // The winning attempt is last and succeeded.
  EXPECT_TRUE(t->schedule.back().succeeded);
}

TEST(ObserveCountersTest, MeasuredTimesMonotoneUnderRepeat) {
  const PipelineSpec spec = make_blur(96, 96);
  Options o;
  o.collect_trace = true;
  Result<Session> opened = Session::open(*spec.pipeline, o);
  ASSERT_TRUE(opened.ok());
  Session s = std::move(opened).value();
  const std::vector<Buffer> inputs = spec.make_inputs();
  ASSERT_TRUE(s.execute(inputs).ok());
  ASSERT_TRUE(s.execute(inputs).ok());
  ASSERT_TRUE(s.execute(inputs).ok());
  // One RunTrace per execute; within each, group windows are ordered and
  // bounded by the run's wall time.
  const observe::RunTrace* t = s.trace();
  ASSERT_NE(t, nullptr);
  double prev_end = 0.0;
  for (const observe::GroupRecord& rec : t->groups) {
    EXPECT_GE(rec.t_begin, prev_end - 1e-9);  // groups execute in order
    EXPECT_GE(rec.t_end, rec.t_begin);
    EXPECT_LE(rec.t_end, t->seconds + 1e-3);
    prev_end = rec.t_end;
  }
}

// --- chrome trace export ----------------------------------------------------

TEST(ChromeTraceTest, EmptyTraceIsValidJson) {
  observe::RunTrace empty;
  const std::string json = observe::chrome_trace_json(empty);
  MiniJson v(json);
  EXPECT_TRUE(v.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTraceTest, SchemaAndEventCounts) {
  const PipelineSpec spec = make_harris(96, 128);
  Session s = traced_session(spec, 2);
  const observe::RunTrace* t = s.trace();
  ASSERT_NE(t, nullptr);
  const std::string json = observe::chrome_trace_json(*t);

  MiniJson v(json);
  ASSERT_TRUE(v.valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

  // One complete ("X") event per group and per tile, plus one per schedule
  // attempt; metadata ("M") events name the process and each timeline.
  std::size_t tiles = 0;
  for (const observe::GroupRecord& g : t->groups) tiles += g.tiles.size();
  const std::size_t want_x = t->groups.size() + tiles + t->schedule.size();
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), want_x);
  EXPECT_GE(count_occurrences(json, "\"ph\": \"M\""), 3u);
  EXPECT_NE(json.find(t->meta.pipeline), std::string::npos);
}

TEST(ChromeTraceTest, WriteToFileRoundTrips) {
  const PipelineSpec spec = make_blur(64, 64);
  Session s = traced_session(spec, 1);
  const std::string path = ::testing::TempDir() + "fusedp_trace_test.json";
  Result<int> wrote = s.write_trace(path);
  ASSERT_TRUE(wrote.ok()) << wrote.error().what();
  EXPECT_GT(wrote.value(), 0);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  MiniJson v(contents);
  EXPECT_TRUE(v.valid());
}

TEST(ChromeTraceTest, UnwritablePathIsIoError) {
  const PipelineSpec spec = make_blur(64, 64);
  Session s = traced_session(spec, 1);
  Result<int> wrote = s.write_trace("/nonexistent-dir/trace.json");
  ASSERT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.error().code(), ErrorCode::kIoError);
}

// --- predicted-vs-measured report -------------------------------------------

TEST(ReportTest, JoinsPredictedAgainstMeasured) {
  const PipelineSpec spec = make_harris(96, 128);
  Session s = traced_session(spec, 2);
  Result<observe::Report> rep = s.report();
  ASSERT_TRUE(rep.ok());
  const observe::Report& r = rep.value();
  EXPECT_EQ(r.pipeline, spec.pipeline->name());
  ASSERT_EQ(r.rows.size(), s.plan().groups.size());
  double total = 0.0;
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    const observe::ReportRow& row = r.rows[i];
    EXPECT_EQ(row.group, static_cast<int>(i));
    EXPECT_FALSE(row.stages.empty());
    EXPECT_GE(row.measured_ms, 0.0);
    EXPECT_GE(row.redundant_pct, 0.0);
    EXPECT_LE(row.redundant_pct, 100.0);
    if (!row.is_reduction) {
      EXPECT_NEAR(row.predicted_cost,
                  s.plan().groups[i].model_cost, 1e-12);
    }
    total += row.measured_ms;
  }
  // total_ms is the whole-run wall time: it bounds the sum of per-group
  // windows from above (inter-group bookkeeping sits between them).
  EXPECT_GE(r.total_ms, total - 1e-6);
  EXPECT_GT(r.total_ms, 0.0);
}

TEST(ReportTest, RendersTable) {
  const PipelineSpec spec = make_harris(96, 128);
  Session s = traced_session(spec, 1);
  Result<observe::Report> rep = s.report();
  ASSERT_TRUE(rep.ok());
  const std::string table = observe::report_to_string(rep.value());
  EXPECT_NE(table.find("predicted"), std::string::npos);
  EXPECT_NE(table.find("measured-ms"), std::string::npos);
  EXPECT_NE(table.find(rep.value().pipeline), std::string::npos);
}

// --- user observers ---------------------------------------------------------

class CountingObserver : public observe::Observer {
 public:
  bool want_tile_events() const override { return false; }
  void on_schedule_attempt(const observe::ScheduleAttempt&) override {
    ++attempts;
  }
  void on_run_begin(const observe::RunMeta&) override { ++begins; }
  void on_group_end(const observe::GroupRecord&) override { ++groups; }
  void on_run_end(const observe::RunRecord&) override { ++ends; }

  int attempts = 0, begins = 0, groups = 0, ends = 0;
};

TEST(ObserverTest, UserObserverSeesEveryCallback) {
  const PipelineSpec spec = make_blur(96, 96);
  CountingObserver counting;
  Options o;
  o.observer = &counting;
  Result<Session> opened = Session::open(*spec.pipeline, o);
  ASSERT_TRUE(opened.ok());
  Session s = std::move(opened).value();
  ASSERT_TRUE(s.execute(spec.make_inputs()).ok());
  EXPECT_GT(counting.attempts, 0);
  EXPECT_EQ(counting.begins, 1);
  EXPECT_EQ(counting.ends, 1);
  EXPECT_EQ(counting.groups, static_cast<int>(s.plan().groups.size()));
  EXPECT_EQ(s.trace(), nullptr);  // no collector unless collect_trace
}

TEST(ObserverTest, TeeDeliversToUserAndCollector) {
  const PipelineSpec spec = make_blur(96, 96);
  CountingObserver counting;
  Options o;
  o.observer = &counting;
  o.collect_trace = true;
  Result<Session> opened = Session::open(*spec.pipeline, o);
  ASSERT_TRUE(opened.ok());
  Session s = std::move(opened).value();
  ASSERT_TRUE(s.execute(spec.make_inputs()).ok());
  EXPECT_EQ(counting.begins, 1);
  EXPECT_EQ(counting.ends, 1);
  ASSERT_NE(s.trace(), nullptr);
  EXPECT_TRUE(s.trace()->complete);
  // The collector still wants tiles even though the user observer doesn't.
  std::size_t tiles = 0;
  for (const observe::GroupRecord& g : s.trace()->groups) tiles += g.tiles.size();
  EXPECT_GT(tiles, 0u);
}

// --- direct executor-level bit-identity -------------------------------------

TEST(ObserverTest, ExecutorOutputsBitIdenticalWithObserver) {
  const PipelineSpec spec = make_unsharp(96, 96);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  const Grouping g = singleton_grouping(pl, model);
  const std::vector<Buffer> inputs = spec.make_inputs();

  ExecOptions eo;
  eo.num_threads = 2;
  Executor ex(pl, g, eo);
  Workspace plain, observed;
  ex.run(inputs, plain);
  observe::TraceCollector collector;
  ex.run(inputs, observed, &collector);

  for (int st : pl.outputs())
    EXPECT_TRUE(testing::buffers_equal(plain.stage_buffer(st),
                                       observed.stage_buffer(st)));
  ASSERT_NE(collector.last(), nullptr);
  EXPECT_TRUE(collector.last()->complete);
}

}  // namespace
}  // namespace fusedp
