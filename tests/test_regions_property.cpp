// Property tests for required-region soundness: for random stencils, border
// modes, and tile boxes, every coordinate the evaluator can touch must lie
// inside the propagated required region (brute-force per-point check).
#include <gtest/gtest.h>

#include "analysis/regions.hpp"
#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace fusedp {
namespace {

class RegionSoundness : public ::testing::TestWithParam<int> {};

TEST_P(RegionSoundness, EvaluatorCoordinatesStayInsideRequired) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const Border borders[] = {Border::kClamp, Border::kMirror, Border::kWrap,
                            Border::kZero};
  const Border border = borders[GetParam() % 4];

  // Two-stage pipeline with random (possibly scaled) stencil taps.
  const std::int64_t h = 20 + static_cast<std::int64_t>(rng.next_below(20));
  const std::int64_t w = 20 + static_cast<std::int64_t>(rng.next_below(20));
  const bool down = rng.next_bool(0.3);
  Pipeline pl("rs");
  const int img = pl.add_input("img", {h, w});
  StageBuilder a(pl, pl.add_stage("a", {h, w}));
  a.define(a.in(img, {0, 0}));
  const std::int64_t ch = down ? (h + 1) / 2 : h;
  const std::int64_t cw = down ? (w + 1) / 2 : w;
  StageBuilder b(pl, pl.add_stage("b", {ch, cw}));
  b.set_border(border);
  struct Tap {
    std::int64_t dy, dx;
  };
  std::vector<Tap> taps;
  Eh acc = b.cst(0.0f);
  for (int t = 0; t < 3; ++t) {
    Tap tap{static_cast<std::int64_t>(rng.next_below(13)) - 6,
            static_cast<std::int64_t>(rng.next_below(13)) - 6};
    taps.push_back(tap);
    acc = acc + (down ? b.at_scaled({false, 0}, {tap.dy, tap.dx}, {2, 2},
                                    {1, 1})
                      : b.at(a.stage(), {tap.dy, tap.dx}));
  }
  b.define(acc);
  pl.finalize();

  const NodeSet group = NodeSet::single(0).with(1);
  const AlignResult align = solve_alignment(pl, group);
  ASSERT_TRUE(align.constant);

  // Random tile box in reference space.
  Box tile;
  tile.rank = align.num_classes;
  for (int d = 0; d < tile.rank; ++d) {
    const std::int64_t ext = align.class_extent[static_cast<std::size_t>(d)];
    const std::int64_t g =
        align.class_granularity[static_cast<std::size_t>(d)];
    std::int64_t ts =
        (1 + static_cast<std::int64_t>(rng.next_below(10))) * g;
    const std::int64_t ti = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ceil_div(ext, ts))));
    tile.lo[d] = ti * ts;
    tile.hi[d] = std::min(tile.lo[d] + ts - 1, ext - 1);
  }
  const GroupRegions regions =
      compute_group_regions(pl, group, align, tile, /*clamp=*/true);
  const Box& breq = regions.stages[1].required;
  const Box& areq = regions.stages[0].required;
  if (breq.empty()) return;

  // Brute force: for every point of b's required region and every tap,
  // compute the folded coordinate the evaluator would read.
  for (std::int64_t y = breq.lo[0]; y <= breq.hi[0]; ++y) {
    for (std::int64_t x = breq.lo[1]; x <= breq.hi[1]; ++x) {
      for (const Tap& t : taps) {
        std::int64_t py = (down ? 2 * y : y) + t.dy;
        std::int64_t px = (down ? 2 * x : x) + t.dx;
        if (border == Border::kZero &&
            (py < 0 || py >= h || px < 0 || px >= w))
          continue;  // reads nothing
        py = fold_coord(py, 0, h - 1, border);
        px = fold_coord(px, 0, w - 1, border);
        const std::int64_t c[2] = {py, px};
        ASSERT_TRUE(areq.contains_point(c))
            << "seed " << GetParam() << " border " << static_cast<int>(border)
            << ": consumer (" << y << "," << x << ") tap (" << t.dy << ","
            << t.dx << ") reads (" << py << "," << px
            << ") outside producer required " << areq.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionSoundness, ::testing::Range(0, 24));

}  // namespace
}  // namespace fusedp
