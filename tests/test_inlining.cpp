// Tests for pointwise-stage inlining: semantics must be exactly preserved,
// and the structural conditions respected.
#include <gtest/gtest.h>

#include "fusion/dp.hpp"
#include "fusion/inlining.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

// Runs both pipelines on the same inputs and compares their (single) output
// bit-for-bit.
void expect_same_output(const Pipeline& a, const Pipeline& b,
                        const std::vector<Buffer>& inputs) {
  const std::vector<Buffer> ra = run_reference(a, inputs);
  const std::vector<Buffer> rb = run_reference(b, inputs);
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  for (std::size_t o = 0; o < a.outputs().size(); ++o) {
    const Buffer& ba = ra[static_cast<std::size_t>(a.outputs()[o])];
    const Buffer& bb = rb[static_cast<std::size_t>(b.outputs()[o])];
    const std::int64_t bad = testing::first_mismatch(ba, bb);
    ASSERT_LT(bad, 0) << "output " << o << " differs at " << bad;
  }
}

TEST(InlineTest, PointwiseChainCollapses) {
  Pipeline pl("chain");
  const int img = pl.add_input("img", {24, 32});
  StageBuilder a(pl, pl.add_stage("a", {24, 32}));
  a.define(a.in(img, {0, 0}) * 2.0f + 1.0f);
  StageBuilder b(pl, pl.add_stage("b", {24, 32}));
  b.define(b.at(a.stage(), {0, 0}) * 0.5f);
  StageBuilder c(pl, pl.add_stage("c", {24, 32}));
  c.define(c.at(b.stage(), {0, 0}) - 0.25f);
  pl.finalize();

  const InlineResult res = inline_pointwise(pl);
  EXPECT_EQ(res.stages_inlined, 2);
  EXPECT_EQ(res.pipeline->num_stages(), 1);
  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image({24, 32}, 3));
  expect_same_output(pl, *res.pipeline, inputs);
}

TEST(InlineTest, StencilConsumerBlocksInlining) {
  Pipeline pl("stencil");
  const int img = pl.add_input("img", {24, 32});
  StageBuilder a(pl, pl.add_stage("a", {24, 32}));
  a.define(a.in(img, {0, 0}) * 2.0f);
  StageBuilder b(pl, pl.add_stage("b", {24, 32}));
  b.define(b.at(a.stage(), {0, -1}) + b.at(a.stage(), {0, 1}));  // offsets!
  pl.finalize();
  const InlineResult res = inline_pointwise(pl);
  EXPECT_EQ(res.stages_inlined, 0)
      << "offset accesses change boundary semantics; must not inline";
  EXPECT_EQ(res.pipeline->num_stages(), 2);
}

TEST(InlineTest, ConstantChannelSelectIsSubstituted) {
  // gray reads img channels via constant axes; a pointwise producer of the
  // [3,H,W] image can still be inlined (coords become constants).
  Pipeline pl("chan");
  const int img = pl.add_input("img", {3, 16, 16});
  StageBuilder boost(pl, pl.add_stage("boost", {3, 16, 16}));
  boost.define(boost.in(img, {0, 0, 0}) * (boost.coord(0) + 1.0f));
  StageBuilder gray(pl, pl.add_stage("gray", {16, 16}));
  auto chan = [&](std::int64_t c) {
    return gray.load({false, boost.stage_id()},
                     {AxisMap::constant(c), AxisMap::affine(0),
                      AxisMap::affine(1)});
  };
  gray.define(0.5f * chan(0) + 0.3f * chan(1) + 0.2f * chan(2));
  pl.finalize();

  const InlineResult res = inline_pointwise(pl);
  EXPECT_EQ(res.stages_inlined, 1);
  ASSERT_EQ(res.pipeline->num_stages(), 1);
  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image({3, 16, 16}, 5));
  expect_same_output(pl, *res.pipeline, inputs);
}

TEST(InlineTest, OutputsAndReductionsKept) {
  const PipelineSpec spec = make_bilateral(64, 64);
  const InlineResult res = inline_pointwise(*spec.pipeline);
  // grid (reduction) and out (output) must survive.
  bool has_grid = false, has_out = false;
  for (const Stage& s : res.pipeline->stages()) {
    if (s.name == "grid") has_grid = true;
    if (s.name == "out") has_out = true;
  }
  EXPECT_TRUE(has_grid);
  EXPECT_TRUE(has_out);
  expect_same_output(*spec.pipeline, *res.pipeline, spec.make_inputs());
}

class InlineBenchmarkFidelity : public ::testing::TestWithParam<const char*> {};

TEST_P(InlineBenchmarkFidelity, InlinedPipelineMatchesOriginal) {
  const PipelineSpec spec = make_benchmark(GetParam(), 24);
  const InlineResult res = inline_pointwise(*spec.pipeline);
  EXPECT_LE(res.pipeline->num_stages(), spec.pipeline->num_stages());
  expect_same_output(*spec.pipeline, *res.pipeline, spec.make_inputs());
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, InlineBenchmarkFidelity,
                         ::testing::Values("unsharp", "harris", "bilateral",
                                           "campipe", "interpolate",
                                           "pyramid"));

TEST(InlineTest, InlinedPipelineSchedulesAndRuns) {
  const PipelineSpec spec = make_benchmark("campipe", 24);
  const InlineResult res = inline_pointwise(*spec.pipeline);
  const Pipeline& pl = *res.pipeline;
  EXPECT_GT(res.stages_inlined, 0) << "campipe has inlinable selects";
  const CostModel model(pl, MachineModel::xeon_haswell());
  DpFusion dp(pl, model);
  const Grouping g = dp.run();
  std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  ExecOptions opts;
  opts.num_threads = 2;
  const std::vector<Buffer> outs = run_pipeline(pl, g, inputs, opts);
  EXPECT_TRUE(testing::buffers_equal(
      outs[0], ref[static_cast<std::size_t>(pl.outputs()[0])]));
}

}  // namespace
}  // namespace fusedp
