// Fuzz target: the pipegen → cross-backend oracle loop.
//
// The input bytes pick a generator seed and shrink the generator/differ
// knobs; each execution builds a random pipeline and bit-compares every
// backend against the scalar reference.  Any divergence or crash is a real
// bug in an executor backend (or in the oracle itself), so a divergence
// aborts with the full record on stderr.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "verify/differ.hpp"

using namespace fusedp;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 8) return 0;
  std::uint64_t seed = 0;
  std::memcpy(&seed, data, sizeof seed);

  verify::DifferOptions opts;
  // Shrunken knobs keep one execution in the low milliseconds so the fuzzer
  // gets real throughput; coverage of big extents belongs to the soak run.
  opts.groupings_per_seed = size > 8 ? data[8] % 3 : 1;
  opts.max_threads = size > 9 ? 1 + data[9] % 2 : 1;
  opts.gen.min_stages = 2;
  opts.gen.max_stages = size > 10 ? 2 + data[10] % 6 : 5;
  opts.gen.min_extent = 4;
  opts.gen.max_extent = size > 11 ? 8 + data[11] % 25 : 24;

  const verify::DiffResult res = verify::diff_seed(seed, opts);
  if (res.diverged) {
    std::fprintf(stderr, "%s\n", res.record.to_string().c_str());
    std::abort();
  }
  return 0;
}

#include "fuzz_main.inc"
