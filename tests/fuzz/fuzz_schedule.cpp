// Fuzz target: the schedule-text parser (grouping_from_text).
//
// Feeds arbitrary bytes through the non-throwing parser against a fixed
// generated pipeline.  The contract under test: malformed input never
// crashes, never trips a sanitizer, and anything the parser accepts must
// survive a to_text/from_text round trip and lower() into an executable
// plan.  Build with -fsanitize=fuzzer under Clang (FUSEDP_SANITIZE) or as a
// standalone corpus-replay driver elsewhere.
#include <cstdint>
#include <cstdlib>
#include <string>

#include "fusion/serialize.hpp"
#include "runtime/plan.hpp"
#include "verify/pipegen.hpp"

using namespace fusedp;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // One fixed, nontrivial DAG: stable stage names give the fuzzer real
  // dictionary tokens to mutate toward.
  static const auto pl = verify::generate_pipeline(1);

  const std::string text(reinterpret_cast<const char*>(data), size);
  const Result<Grouping> parsed = try_grouping_from_text(*pl, text);
  if (!parsed.ok()) return 0;  // rejected cleanly: the common, boring case

  // Accepted input must round-trip and lower without throwing.
  const Grouping& g = parsed.value();
  const Result<Grouping> again =
      try_grouping_from_text(*pl, grouping_to_text(*pl, g));
  if (!again.ok()) std::abort();  // accepted text must re-parse
  lower(*pl, g);
  return 0;
}

#include "fuzz_main.inc"
