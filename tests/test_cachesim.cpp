// Tests for the set-associative LRU cache simulator and the tiled-execution
// trace replay used for Table 5.
#include <gtest/gtest.h>

#include "cachesim/trace.hpp"
#include "fusion/dp.hpp"
#include "pipelines/pipelines.hpp"

namespace fusedp {
namespace {

TEST(CacheTest, GeometryChecks) {
  const Cache c(32 * 1024, 8, 64);
  EXPECT_EQ(c.num_sets(), 64);
  EXPECT_THROW(Cache(1000, 3, 64), Error);
  EXPECT_THROW(Cache(0, 1, 64), Error);
}

TEST(CacheTest, ColdMissThenHit) {
  Cache c(1024, 2, 64);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_TRUE(c.access(64));
}

TEST(CacheTest, LruEvictionWithinSet) {
  // 2-way, 8 sets of 64B lines: addresses k*512 all map to set 0.
  Cache c(1024, 2, 64);
  EXPECT_FALSE(c.access(0 * 512));
  EXPECT_FALSE(c.access(1 * 512));
  EXPECT_TRUE(c.access(0 * 512));   // 0 now MRU
  EXPECT_FALSE(c.access(2 * 512));  // evicts 1 (LRU)
  EXPECT_TRUE(c.access(0 * 512));
  EXPECT_FALSE(c.access(1 * 512));  // 1 was evicted
}

TEST(CacheTest, FullyAssociativeKeepsWorkingSet) {
  Cache c(8 * 64, 8, 64);  // one set, 8 ways
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(c.access(static_cast<std::uint64_t>(i) * 64));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(c.access(static_cast<std::uint64_t>(i) * 64));
}

TEST(CacheTest, SequentialStreamHitRate) {
  // Streaming floats through 64B lines: 1 miss per 16 accesses.
  Cache c(32 * 1024, 8, 64);
  int misses = 0;
  for (std::uint64_t i = 0; i < 16 * 1024; ++i)
    if (!c.access(i * 4)) ++misses;
  EXPECT_EQ(misses, 1024);
}

TEST(HierarchyTest, StatsAccounting) {
  CacheHierarchy h(Cache(1024, 2, 64), Cache(8 * 1024, 4, 64));
  // Touch 32 lines (2KB): first pass misses both levels; second pass misses
  // L1 for the evicted lines but hits L2.
  for (int rep = 0; rep < 2; ++rep)
    for (std::uint64_t i = 0; i < 32; ++i) h.access(i * 64);
  const HierarchyStats& st = h.stats();
  EXPECT_EQ(st.accesses, 64u);
  EXPECT_EQ(st.l2_misses, 32u);             // only cold misses reach memory
  EXPECT_EQ(st.l1_hits + st.l2_hits, 32u);  // second pass serviced on-chip
  EXPECT_NEAR(st.l1_hit_frac() + st.l2_hit_frac() + st.l2_miss_frac(), 1.0,
              1e-12);
}

TEST(TraceTest, SmallTilesHitMoreInL1ThanHugeTiles) {
  // The crux of paper Table 5: L1-sized tiles show higher L1 hit fractions
  // than tiles that spill into L2/memory.
  const PipelineSpec spec = make_unsharp(256, 512);
  const Pipeline& pl = *spec.pipeline;

  auto stats_for = [&](std::int64_t t1, std::int64_t t2) {
    Grouping g;
    GroupSchedule gs;
    for (int i = 0; i < 4; ++i) gs.stages = gs.stages.with(i);
    gs.tile_sizes = {3, t1, t2};
    g.groups.push_back(gs);
    CacheHierarchy hier(Cache(32 * 1024, 8), Cache(256 * 1024, 8));
    return simulate_grouping(pl, g, hier);
  };
  const HierarchyStats small = stats_for(5, 256);
  const HierarchyStats huge = stats_for(128, 512);
  EXPECT_GT(small.l1_hit_frac(), huge.l1_hit_frac());
  EXPECT_LT(small.l2_miss_frac(), huge.l2_miss_frac());
  EXPECT_GT(small.accesses, 0u);
}

TEST(TraceTest, FusionReducesMemoryMisses) {
  const PipelineSpec spec = make_blur(256, 512);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());

  CacheHierarchy hier(Cache(32 * 1024, 8), Cache(256 * 1024, 8));
  DpFusion dp(pl, model);
  const HierarchyStats fused = simulate_grouping(pl, dp.run(), hier);
  const HierarchyStats apart =
      simulate_grouping(pl, singleton_grouping(pl, model), hier);
  EXPECT_LT(fused.l2_miss_frac(), apart.l2_miss_frac())
      << "fusing blur must keep the intermediate on-chip";
}

TEST(TraceTest, RejectsDynamicAndReductions) {
  const PipelineSpec spec = make_bilateral(64, 64);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  CacheHierarchy hier(Cache(32 * 1024, 8), Cache(256 * 1024, 8));
  EXPECT_THROW(simulate_grouping(*spec.pipeline,
                                 singleton_grouping(*spec.pipeline, model),
                                 hier),
               Error);
}

}  // namespace
}  // namespace fusedp
