// Replays every seed recorded in tests/corpus/divergence_seeds.txt through
// the differential oracle.  The corpus holds generator seeds that once
// exposed a cross-backend divergence; replaying them on every test run pins
// the fixes.  An empty corpus (the healthy state) still exercises the
// wiring: the file must exist and parse.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>

#include "verify/differ.hpp"

namespace fusedp {
namespace {

TEST(CorpusRegression, RecordedDivergenceSeedsStayClean) {
  const std::string path =
      std::string(FUSEDP_CORPUS_DIR) + "/divergence_seeds.txt";
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open()) << "missing corpus file: " << path;

  int replayed = 0;
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    char* end = nullptr;
    const std::uint64_t seed = std::strtoull(line.c_str() + first, &end, 10);
    ASSERT_NE(end, line.c_str() + first) << "unparsable corpus line: " << line;
    const verify::DiffResult res = verify::diff_seed(seed);
    EXPECT_FALSE(res.diverged)
        << "regressed corpus seed " << seed << "\n"
        << res.record.to_string();
    ++replayed;
  }
  // Zero entries is fine — the point of this test is that the corpus stays
  // wired into ctest so the first recorded divergence runs forever.
  SUCCEED() << replayed << " corpus seed(s) replayed";
}

}  // namespace
}  // namespace fusedp
