// The deadline/budget-bounded autoschedule driver: under any budget it must
// return a validate_grouping-passing schedule, report which fallback tier
// produced it and why the better tiers lost, and the schedule must execute
// bit-identical to the scalar reference.
#include <gtest/gtest.h>

#include "fusion/autoschedule.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

void expect_executes_bit_identical(const PipelineSpec& spec,
                                   const Grouping& g) {
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  ExecOptions opts;
  opts.num_threads = 2;
  const std::vector<Buffer> outs = run_pipeline(pl, g, inputs, opts);
  for (std::size_t o = 0; o < outs.size(); ++o) {
    const Buffer& expect = ref[static_cast<std::size_t>(pl.outputs()[o])];
    EXPECT_LT(testing::first_mismatch(outs[o], expect), 0) << "output " << o;
  }
}

TEST(AutoScheduleTest, AmpleBudgetUsesFullDp) {
  const PipelineSpec spec = make_harris(64, 96);
  const ScheduleResult res =
      auto_schedule(*spec.pipeline, MachineModel::xeon_haswell());
  EXPECT_EQ(res.diagnostics.tier, ScheduleTier::kFullDp);
  ASSERT_EQ(res.diagnostics.attempts.size(), 1u);
  EXPECT_TRUE(res.diagnostics.attempts[0].succeeded);
  std::string why;
  EXPECT_TRUE(validate_grouping(*spec.pipeline, res.grouping, &why)) << why;
}

TEST(AutoScheduleTest, TinyStateBudgetFallsBackAndStaysCorrect) {
  const PipelineSpec spec = make_harris(64, 96);
  AutoScheduleOptions opts;
  opts.max_states = 40;  // far below what the 11-stage full DP needs
  const ScheduleResult res =
      auto_schedule(*spec.pipeline, MachineModel::xeon_haswell(), opts);

  EXPECT_NE(res.diagnostics.tier, ScheduleTier::kFullDp);
  ASSERT_GE(res.diagnostics.attempts.size(), 2u);
  EXPECT_FALSE(res.diagnostics.attempts[0].succeeded);
  EXPECT_EQ(res.diagnostics.attempts[0].code,
            ErrorCode::kSearchBudgetExhausted);

  std::string why;
  ASSERT_TRUE(validate_grouping(*spec.pipeline, res.grouping, &why)) << why;
  expect_executes_bit_identical(spec, res.grouping);
}

TEST(AutoScheduleTest, ExpiredDeadlineFallsThroughToModelDrivenTier) {
  const PipelineSpec spec = make_harris(64, 96);
  AutoScheduleOptions opts;
  opts.deadline_seconds = 1e-9;  // effectively already expired
  const ScheduleResult res =
      auto_schedule(*spec.pipeline, MachineModel::xeon_haswell(), opts);

  // DP tiers must all have been denied (deadline), landing on greedy or —
  // if greedy ever learned to fail — unfused.  Both are model-driven and
  // exempt from the deadline gate, so a schedule always comes back.
  EXPECT_TRUE(res.diagnostics.tier == ScheduleTier::kGreedy ||
              res.diagnostics.tier == ScheduleTier::kUnfused);
  for (const TierAttempt& a : res.diagnostics.attempts) {
    if (!a.succeeded) {
      EXPECT_TRUE(a.code == ErrorCode::kDeadlineExceeded ||
                  a.code == ErrorCode::kSearchBudgetExhausted)
          << a.detail;
    }
  }

  std::string why;
  ASSERT_TRUE(validate_grouping(*spec.pipeline, res.grouping, &why)) << why;
  expect_executes_bit_identical(spec, res.grouping);
}

TEST(AutoScheduleTest, UnfusedFloorWhenEvenBoundedDpIsOverBudget) {
  // A state budget of 1 starves every DP attempt (bounded ones included);
  // the ladder must still land on a valid schedule.
  const PipelineSpec spec = make_unsharp(64, 64);
  AutoScheduleOptions opts;
  opts.max_states = 1;
  const ScheduleResult res =
      auto_schedule(*spec.pipeline, MachineModel::xeon_haswell(), opts);
  EXPECT_TRUE(res.diagnostics.tier == ScheduleTier::kGreedy ||
              res.diagnostics.tier == ScheduleTier::kUnfused);
  std::string why;
  ASSERT_TRUE(validate_grouping(*spec.pipeline, res.grouping, &why)) << why;
  expect_executes_bit_identical(spec, res.grouping);
}

TEST(AutoScheduleTest, DiagnosticsSummaryNamesTierAndFailures) {
  const PipelineSpec spec = make_harris(64, 96);
  AutoScheduleOptions opts;
  opts.max_states = 40;
  const ScheduleResult res =
      auto_schedule(*spec.pipeline, MachineModel::xeon_haswell(), opts);
  const std::string s = res.diagnostics.summary();
  EXPECT_NE(s.find("tier="), std::string::npos);
  EXPECT_NE(s.find("full-dp"), std::string::npos);
  EXPECT_NE(s.find("search-budget-exhausted"), std::string::npos);
}

TEST(AutoScheduleTest, BoundedTierMatchesFullDpWhenItFits) {
  // With a budget generous enough for a bounded pass but not the full DP,
  // the bounded tier should win and record its group limit.
  const PipelineSpec spec = make_campipe(64, 64);
  AutoScheduleOptions opts;
  opts.max_states = 20'000;
  const ScheduleResult res =
      auto_schedule(*spec.pipeline, MachineModel::xeon_haswell(), opts);
  std::string why;
  ASSERT_TRUE(validate_grouping(*spec.pipeline, res.grouping, &why)) << why;
  if (res.diagnostics.tier == ScheduleTier::kBoundedDp) {
    const TierAttempt& winner = res.diagnostics.attempts.back();
    EXPECT_GE(winner.group_limit, 2);
  }
  expect_executes_bit_identical(spec, res.grouping);
}

}  // namespace
}  // namespace fusedp
