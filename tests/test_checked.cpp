// Overflow-checked arithmetic and its wiring: extent math near INT64_MAX
// must surface as a coded error from the cost model and the autoscheduler,
// never as silent wraparound.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "fusion/autoschedule.hpp"
#include "ir/builder.hpp"
#include "support/checked.hpp"

namespace fusedp {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(Checked, MulAddHappyPath) {
  EXPECT_EQ(checked_mul(6, 7).value(), 42);
  EXPECT_EQ(checked_mul(-4, 5).value(), -20);
  EXPECT_EQ(checked_add(kMax - 1, 1).value(), kMax);
  EXPECT_EQ(checked_add(kMin + 1, -1).value(), kMin);
  EXPECT_EQ(mul_or_throw(1 << 20, 1 << 20, "test"), 1ll << 40);
}

TEST(Checked, OverflowIsAnError) {
  EXPECT_FALSE(checked_mul(kMax, 2).ok());
  EXPECT_FALSE(checked_mul(kMin, -1).ok());
  EXPECT_FALSE(checked_add(kMax, 1).ok());
  EXPECT_FALSE(checked_add(kMin, -1).ok());
  EXPECT_EQ(checked_mul(kMax, 2).error().code(), ErrorCode::kInvalidPipeline);
  try {
    mul_or_throw(kMax, 3, "tile footprint", ErrorCode::kInvalidSchedule);
    FAIL() << "expected overflow to throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidSchedule);
    EXPECT_NE(std::string(e.what()).find("tile footprint"),
              std::string::npos);
  }
}

TEST(Checked, VolumeOrThrow) {
  const std::int64_t small[] = {3, 5, 7};
  EXPECT_EQ(volume_or_throw(small, 3, "v"), 105);
  const std::int64_t big[] = {std::int64_t{1} << 32, std::int64_t{1} << 32};
  EXPECT_THROW(volume_or_throw(big, 2, "v"), Error);
}

TEST(Checked, AutoscheduleNearInt64MaxExtentsReturnsCodedError) {
  // Per-stage volume ~9e18 still fits int64, but any two-stage fusion
  // footprint overflows during cost evaluation.  The autoscheduler's
  // degradation ladder only demotes budget/deadline/allocation failures, so
  // the overflow must propagate as the coded kInvalidPipeline error instead
  // of wrapping into a nonsense schedule.
  const std::int64_t big = 3'000'000'000;  // 3e9^2 = 9e18 < INT64_MAX
  Pipeline pl("overflow");
  const int img = pl.add_input("img", {big, big});
  StageBuilder a(pl, pl.add_stage("a", {big, big}));
  a.define(a.in(img, {0, 0}) * 0.5f);
  StageBuilder b(pl, pl.add_stage("b", {big, big}));
  b.define(b.at(a.stage(), {0, 0}) + 1.0f);
  pl.finalize();

  try {
    auto_schedule(pl, MachineModel::host());
    FAIL() << "expected overflowing extents to surface as a coded error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidPipeline)
        << error_code_name(e.code()) << ": " << e.what();
  }
}

}  // namespace
}  // namespace fusedp
