// Degenerate extents through every backend: 1x1, 1xN, Nx1 domains,
// zero-margin (pointwise) stages, and pathological tile sizes.  Every
// combination must be bit-identical to the scalar reference — these shapes
// are where interior/boundary classification, row kernels, and cleanup-tile
// logic historically break.
#include <gtest/gtest.h>

#include "support/image_io.hpp"
#include "test_util.hpp"
#include "verify/differ.hpp"

namespace fusedp {
namespace {

// A 3-stage chain: radius-1 stencil -> pointwise (zero margin) -> select,
// over an arbitrary (possibly degenerate) 2-D shape.
std::unique_ptr<Pipeline> chain(std::int64_t h, std::int64_t w) {
  auto pl = std::make_unique<Pipeline>("degenerate");
  const int img = pl->add_input("img", {h, w});
  StageBuilder s0(*pl, pl->add_stage("stencil", {h, w}));
  s0.define((s0.in(img, {-1, 0}) + s0.in(img, {0, -1}) + s0.in(img, {0, 0}) +
             s0.in(img, {0, 1}) + s0.in(img, {1, 0})) *
            0.2f);
  StageBuilder s1(*pl, pl->add_stage("pointwise", {h, w}));
  s1.define(sqrt(abs(s1.at(s0.stage(), {0, 0})) + 0.25f));
  StageBuilder s2(*pl, pl->add_stage("mask", {h, w}));
  s2.define(select(lt(s2.at(s1.stage(), {0, 0}), 0.6f),
                   s2.at(s0.stage(), {0, 0}) * 2.0f,
                   s2.at(s1.stage(), {0, 0})));
  pl->finalize();
  return pl;
}

struct Shape {
  std::int64_t h, w;
};

class DegenerateShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(DegenerateShapes, AllBackendsAllTilingsBitExact) {
  const auto [h, w] = GetParam();
  const auto pl = chain(h, w);
  const std::vector<Buffer> inputs = {
      make_synthetic_image({h, w}, 7 + static_cast<std::uint64_t>(h * w))};
  const auto ref = run_reference(*pl, inputs);

  const std::vector<std::vector<std::int64_t>> tilings = {
      {},            // untiled
      {1, 1},        // size-1 tiles: every tile is a cleanup tile
      {3, 5},        // non-divisible
      {1 << 20, 1},  // oversized x degenerate mix
  };
  testing::for_each_valid_grouping(*pl, [&](const Grouping& base) {
    for (const auto& ts : tilings) {
      Grouping g = base;
      for (GroupSchedule& gs : g.groups) gs.tile_sizes = ts;
      for (const bool compiled : {false, true}) {
        for (const bool vec : {false, true}) {
          if (!compiled && vec) continue;
          for (const EvalMode mode : {EvalMode::kRow, EvalMode::kScalar}) {
            if (mode == EvalMode::kScalar && compiled) continue;
            ExecOptions opts;
            opts.mode = mode;
            opts.compiled = compiled;
            opts.vector_backend = vec;
            opts.num_threads = 2;
            opts.guard_arena = true;  // guards must cope with 1-wide rows
            const auto outs = run_pipeline(*pl, g, inputs, opts);
            ASSERT_EQ(outs.size(), 1u);
            EXPECT_TRUE(testing::buffers_equal(
                outs[0], ref[static_cast<std::size_t>(pl->outputs()[0])]))
                << h << "x" << w << " compiled=" << compiled
                << " vec=" << vec << " tiles=" << ts.size();
          }
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, DegenerateShapes,
                         ::testing::Values(Shape{1, 1}, Shape{1, 33},
                                           Shape{33, 1}, Shape{1, 256},
                                           Shape{2, 2}, Shape{17, 3}));

TEST(Degenerate, DifferSweepOverDegenerateGenerator) {
  // Force the generator into degenerate-only mode and cross-check.
  verify::DifferOptions opts;
  opts.gen.p_degenerate = 1.0;
  opts.gen.min_stages = 2;
  opts.gen.max_stages = 6;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const auto res = verify::diff_seed(seed, opts);
    EXPECT_FALSE(res.diverged) << res.record.to_string();
  }
}

TEST(Degenerate, ScalarUpsampleFromOneByOne) {
  // A 1x1 stage broadcast up to a full image: den=2 chains hit extent-1
  // producers.
  auto pl = std::make_unique<Pipeline>("broadcast");
  const int img = pl->add_input("img", {9, 9});
  StageBuilder s0(*pl, pl->add_stage("pinhole", {1, 1}));
  s0.define(s0.in(img, {0, 0}) * 0.5f);
  StageBuilder s1(*pl, pl->add_stage("spread", {9, 9}));
  s1.define(s1.at_scaled({false, s0.stage_id()}, {0, 0}, {1, 1}, {16, 16}) +
            s1.in(img, {0, 0}) * 0.25f);
  pl->finalize();
  const std::vector<Buffer> inputs = {make_synthetic_image({9, 9}, 3)};
  const auto ref = run_reference(*pl, inputs);
  testing::for_each_valid_grouping(*pl, [&](const Grouping& g) {
    const auto outs = run_pipeline(*pl, g, inputs);
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_TRUE(testing::buffers_equal(
        outs[0], ref[static_cast<std::size_t>(pl->outputs()[0])]));
  });
}

}  // namespace
}  // namespace fusedp
