#include "test_util.hpp"

#include <cstring>
#include <memory>

#include "analysis/scaling.hpp"

namespace fusedp::testing {

std::unique_ptr<Pipeline> random_pipeline(int n, std::int64_t h,
                                          std::int64_t w, std::uint64_t seed,
                                          bool allow_scaling) {
  Rng rng(seed);
  auto pl = std::make_unique<Pipeline>("random");
  const int img = pl->add_input("img", {h, w});

  // Track each stage's resolution level so scaled accesses stay consistent.
  std::vector<int> level;  // stage resolution: extents = (h, w) >> level
  std::vector<const Stage*> stages;
  for (int i = 0; i < n; ++i) {
    // Pick 1..2 producers from the input and previous stages.
    int prods[2] = {-1, -1};  // -1 = input image
    if (i > 0) {
      prods[0] = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i)));
      prods[1] = rng.next_bool(0.3)
                     ? -1
                     : static_cast<int>(
                           rng.next_below(static_cast<std::uint64_t>(i)));
    }
    int lvl = prods[0] < 0 ? 0 : level[static_cast<std::size_t>(prods[0])];
    if (allow_scaling && prods[0] >= 0 && rng.next_bool(0.25) && lvl < 3 &&
        (prods[1] < 0 || level[static_cast<std::size_t>(prods[1])] == lvl))
      ++lvl;  // this stage downsamples its producers
    // Only keep the second producer if resolutions are compatible.
    if (prods[1] >= 0 &&
        level[static_cast<std::size_t>(prods[1])] !=
            (prods[0] < 0 ? 0 : level[static_cast<std::size_t>(prods[0])]))
      prods[1] = -2;  // drop

    const std::int64_t sh = std::max<std::int64_t>(8, h >> lvl);
    const std::int64_t sw = std::max<std::int64_t>(8, w >> lvl);
    StageBuilder b(*pl, pl->add_stage("s" + std::to_string(i), {sh, sw}));
    Eh acc = b.cst(0.37f * static_cast<float>(i + 1));
    for (int p : prods) {
      if (p == -2) continue;
      const int plvl = p < 0 ? 0 : level[static_cast<std::size_t>(p)];
      const bool down = plvl < lvl;  // producer finer: access 2x+off
      const int taps = 1 + static_cast<int>(rng.next_below(3));
      for (int t = 0; t < taps; ++t) {
        const std::int64_t dy = static_cast<std::int64_t>(rng.next_below(3)) - 1;
        const std::int64_t dx = static_cast<std::int64_t>(rng.next_below(3)) - 1;
        Eh tap = p < 0 ? (down ? b.at_scaled({true, img}, {dy, dx}, {2, 2},
                                             {1, 1})
                               : b.in(img, {dy, dx}))
                       : (down ? b.at_scaled({false, p}, {dy, dx}, {2, 2},
                                             {1, 1})
                               : b.at(*stages[static_cast<std::size_t>(p)],
                                      {dy, dx}));
        acc = acc + tap * (0.1f + 0.05f * static_cast<float>(t));
      }
    }
    b.define(acc * 0.5f);
    level.push_back(lvl);
    stages.push_back(&b.stage());
  }
  pl->finalize();
  return pl;
}

namespace {

void enumerate_rec(const Pipeline& pl, std::vector<NodeSet>& groups,
                   NodeSet covered, int next,
                   const std::function<void(const Grouping&)>& fn) {
  const int n = pl.num_stages();
  if (next == n) {
    if (!pl.graph().quotient_is_acyclic(groups)) return;
    Grouping g;
    for (NodeSet s : groups) {
      if (!pl.graph().is_connected_undirected(s)) return;
      if (!constant_dependence_vectors(pl, s)) return;
      int reds = 0;
      s.for_each([&](int v) {
        if (pl.stage(v).kind == StageKind::kReduction) ++reds;
      });
      if (reds > 0 && s.size() > 1) return;
      GroupSchedule gs;
      gs.stages = s;
      g.groups.push_back(gs);
    }
    fn(g);
    return;
  }
  if (covered.contains(next)) {
    enumerate_rec(pl, groups, covered, next + 1, fn);
    return;
  }
  // Either start a new group at `next`, or add it to an existing group.
  for (std::size_t i = 0; i < groups.size(); ++i) {
    groups[i] = groups[i].with(next);
    enumerate_rec(pl, groups, covered.with(next), next + 1, fn);
    groups[i] = groups[i].without(next);
  }
  groups.push_back(NodeSet::single(next));
  enumerate_rec(pl, groups, covered.with(next), next + 1, fn);
  groups.pop_back();
}

}  // namespace

void for_each_valid_grouping(const Pipeline& pl,
                             const std::function<void(const Grouping&)>& fn) {
  std::vector<NodeSet> groups;
  enumerate_rec(pl, groups, NodeSet(), 0, fn);
}

bool buffers_equal(const Buffer& a, const Buffer& b) {
  return first_mismatch(a, b) < 0;
}

std::int64_t first_mismatch(const Buffer& a, const Buffer& b) {
  if (a.volume() != b.volume()) return 0;
  for (std::int64_t i = 0; i < a.volume(); ++i)
    if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(float)) != 0) return i;
  return -1;
}

}  // namespace fusedp::testing
