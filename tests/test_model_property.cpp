// Property sweeps over the cost model and graph utilities: machine x
// benchmark x grouping combinations must always produce well-formed costs,
// and quotient/topological utilities must satisfy their contracts on random
// DAGs.
#include <gtest/gtest.h>

#include "fusion/manual.hpp"
#include "model/cost.hpp"
#include "pipelines/pipelines.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

struct Combo {
  const char* bench;
  const char* machine;
};

class CostWellFormed
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(CostWellFormed, FiniteCostsHaveValidTiles) {
  const auto [bench, machine_name] = GetParam();
  const PipelineSpec spec = make_benchmark(bench, 16);
  const Pipeline& pl = *spec.pipeline;
  const MachineModel machine = std::string(machine_name) == "xeon"
                                   ? MachineModel::xeon_haswell()
                                   : MachineModel::amd_opteron();
  const CostModel model(pl, machine);

  // Singletons plus the expert groups: every feasible cost must carry
  // positive, extent-bounded (modulo granularity), granularity-aligned
  // tile sizes and at least one tile.
  std::vector<NodeSet> groups;
  for (int s = 0; s < pl.num_stages(); ++s)
    groups.push_back(NodeSet::single(s));
  const Grouping manual = spec.manual_grouping(model);
  for (const GroupSchedule& gs : manual.groups) groups.push_back(gs.stages);

  for (NodeSet g : groups) {
    const GroupCost gc = model.cost(g);
    if (!gc.feasible()) continue;
    const AlignResult align = solve_alignment(pl, g);
    ASSERT_TRUE(align.constant);
    ASSERT_EQ(static_cast<int>(gc.tile_sizes.size()), align.num_classes);
    EXPECT_GE(gc.n_tiles, 1);
    EXPECT_GE(gc.overlap, 0);
    EXPECT_GT(gc.tile_footprint, 0);
    for (int d = 0; d < align.num_classes; ++d) {
      const std::int64_t t = gc.tile_sizes[static_cast<std::size_t>(d)];
      const std::int64_t gr =
          align.class_granularity[static_cast<std::size_t>(d)];
      EXPECT_GE(t, 1);
      EXPECT_EQ(t % gr, 0) << "granularity";
      EXPECT_LE(t, align.class_extent[static_cast<std::size_t>(d)] + gr);
      if (!align.class_common.empty() &&
          !align.class_common[static_cast<std::size_t>(d)]) {
        EXPECT_GE(t, align.class_extent[static_cast<std::size_t>(d)])
            << "non-common classes must stay untiled";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CostWellFormed,
    ::testing::Combine(::testing::Values("unsharp", "harris", "bilateral",
                                         "interpolate", "campipe", "pyramid"),
                       ::testing::Values("xeon", "opteron")));

TEST(TopoProperty, RandomDagsRespectEdges) {
  Rng rng(271828);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 5 + static_cast<int>(rng.next_below(30));
    Digraph g(n);
    for (int a = 0; a < n; ++a)
      for (int b = a + 1; b < n; ++b)
        if (rng.next_bool(0.2)) g.add_edge(a, b);
    g.finalize();
    // Random subset.
    NodeSet s;
    for (int i = 0; i < n; ++i)
      if (rng.next_bool(0.6)) s = s.with(i);
    const std::vector<int> order = g.topo_order_of(s);
    ASSERT_EQ(static_cast<int>(order.size()), s.size());
    std::vector<int> pos(static_cast<std::size_t>(n), -1);
    for (std::size_t i = 0; i < order.size(); ++i)
      pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    s.for_each([&](int a) {
      (g.successors(a) & s).for_each([&](int b) {
        EXPECT_LT(pos[static_cast<std::size_t>(a)],
                  pos[static_cast<std::size_t>(b)]);
      });
    });
  }
}

TEST(QuotientProperty, AcyclicityMatchesBruteForce) {
  // quotient_is_acyclic must agree with exhaustive cycle search on tiny
  // random DAGs and random partitions.
  Rng rng(314159);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(4));
    Digraph g(n);
    for (int a = 0; a < n; ++a)
      for (int b = a + 1; b < n; ++b)
        if (rng.next_bool(0.4)) g.add_edge(a, b);
    g.finalize();
    // Random partition of nodes into groups.
    std::vector<NodeSet> groups;
    for (int i = 0; i < n; ++i) {
      if (!groups.empty() && rng.next_bool(0.5)) {
        const std::size_t k = rng.next_below(groups.size());
        groups[k] = groups[k].with(i);
      } else {
        groups.push_back(NodeSet::single(i));
      }
    }
    // Brute force: repeatedly contract-reachability between groups.
    const int gcount = static_cast<int>(groups.size());
    std::vector<std::vector<bool>> reach(
        static_cast<std::size_t>(gcount),
        std::vector<bool>(static_cast<std::size_t>(gcount), false));
    for (int a = 0; a < gcount; ++a)
      for (int b = 0; b < gcount; ++b) {
        if (a == b) continue;
        bool edge = false;
        groups[static_cast<std::size_t>(a)].for_each([&](int u) {
          if ((g.successors(u) & groups[static_cast<std::size_t>(b)]).size())
            edge = true;
        });
        reach[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = edge;
      }
    for (int k = 0; k < gcount; ++k)
      for (int a = 0; a < gcount; ++a)
        for (int b = 0; b < gcount; ++b)
          if (reach[static_cast<std::size_t>(a)][static_cast<std::size_t>(k)] &&
              reach[static_cast<std::size_t>(k)][static_cast<std::size_t>(b)])
            reach[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
                true;
    bool cyclic = false;
    for (int a = 0; a < gcount; ++a)
      if (reach[static_cast<std::size_t>(a)][static_cast<std::size_t>(a)])
        cyclic = true;
    EXPECT_EQ(g.quotient_is_acyclic(groups), !cyclic) << "trial " << trial;
  }
}

}  // namespace
}  // namespace fusedp
