// support/fingerprint: the hashes the persistent schedule cache keys on.
//
// The cache's correctness story leans on three properties proven here:
// determinism (same structure -> same fingerprint, across separate
// constructions), sensitivity (any schedule-relevant change -> different
// fingerprint, so stale records cannot be served), and deliberate
// *insensitivity* (knobs that cannot change which grouping wins — deadlines,
// thread counts — must NOT perturb the key, or the cache would never hit).
#include "support/fingerprint.hpp"

#include <gtest/gtest.h>

#include "api/session.hpp"
#include "model/machine.hpp"
#include "pipelines/pipelines.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value: CRC-32 of "123456789".
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0u);
  // One flipped bit anywhere must change the checksum.
  std::string s = "the quick brown fox";
  const std::uint32_t base = crc32(s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    std::string t = s;
    t[i] = static_cast<char>(t[i] ^ 0x01);
    EXPECT_NE(crc32(t), base) << "bit flip at byte " << i << " undetected";
  }
}

TEST(Crc32Test, SeedChainsPartialBlocks) {
  const std::string s = "123456789";
  std::uint32_t chained = 0;
  chained = crc32(s.data(), 3, chained);
  chained = crc32(s.data() + 3, s.size() - 3, chained);
  EXPECT_EQ(chained, crc32(s));
}

TEST(Hex64Test, RoundTrip) {
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{0xdeadbeefcafef00d},
                          ~std::uint64_t{0}}) {
    const std::string h = hex64(v);
    EXPECT_EQ(h.size(), 16u);
    std::uint64_t back = 1;
    ASSERT_TRUE(parse_hex64(h, &back)) << h;
    EXPECT_EQ(back, v);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(parse_hex64("", &out));
  EXPECT_FALSE(parse_hex64("123", &out));                   // too short
  EXPECT_FALSE(parse_hex64("00000000000000000", &out));     // too long
  EXPECT_FALSE(parse_hex64("000000000000000g", &out));      // non-hex digit
}

TEST(Fnv64Test, DeterministicAndStructural) {
  Fnv64 a, b;
  a.add_str("harris");
  a.add_i64(42);
  b.add_str("harris");
  b.add_i64(42);
  EXPECT_EQ(a.digest(), b.digest());

  // Length prefixes: ("ab","c") must not collide with ("a","bc").
  Fnv64 c, d;
  c.add_str("ab");
  c.add_str("c");
  d.add_str("a");
  d.add_str("bc");
  EXPECT_NE(c.digest(), d.digest());

  // Type tags: the same bytes as i64 vs f64 bit pattern differ.
  Fnv64 e, f;
  e.add_i64(0);
  f.add_f64(0.0);
  EXPECT_NE(e.digest(), f.digest());
}

TEST(PipelineFingerprintTest, DeterministicAcrossConstructions) {
  PipelineSpec a = make_benchmark("harris", 16);
  PipelineSpec b = make_benchmark("harris", 16);
  EXPECT_EQ(fingerprint(*a.pipeline), fingerprint(*b.pipeline));
}

TEST(PipelineFingerprintTest, SensitiveToStructure) {
  PipelineSpec harris = make_benchmark("harris", 16);
  PipelineSpec unsharp = make_benchmark("unsharp", 16);
  EXPECT_NE(fingerprint(*harris.pipeline), fingerprint(*unsharp.pipeline));
  // Same pipeline at a different extent is a different schedule problem.
  PipelineSpec harris8 = make_benchmark("harris", 8);
  EXPECT_NE(fingerprint(*harris.pipeline), fingerprint(*harris8.pipeline));
  // Distinct random pipelines (different seeds) fingerprint apart.
  auto p1 = testing::random_pipeline(5, 64, 64, 101);
  auto p2 = testing::random_pipeline(5, 64, 64, 202);
  auto p1again = testing::random_pipeline(5, 64, 64, 101);
  EXPECT_NE(fingerprint(*p1), fingerprint(*p2));
  EXPECT_EQ(fingerprint(*p1), fingerprint(*p1again));
}

TEST(MachineFingerprintTest, SensitiveToModelParameters) {
  MachineModel m = MachineModel::host();
  const std::uint64_t base = fingerprint(m);
  EXPECT_EQ(fingerprint(MachineModel::host()), base);

  MachineModel l2 = m;
  l2.l2_bytes *= 2;
  EXPECT_NE(fingerprint(l2), base);

  MachineModel cores = m;
  cores.cores += 1;
  EXPECT_NE(fingerprint(cores), base);
}

TEST(OptionsFingerprintTest, CoversScheduleKnobsOnly) {
  Options base;
  const std::uint64_t fp = base.schedule_fingerprint();
  EXPECT_EQ(Options{}.schedule_fingerprint(), fp);

  // Schedule-relevant knobs perturb the key.
  Options sched = base;
  sched.scheduler = Scheduler::kGreedy;
  EXPECT_NE(sched.schedule_fingerprint(), fp);
  Options t1 = base;
  t1.greedy_t1 = 32;
  EXPECT_NE(t1.schedule_fingerprint(), fp);
  Options states = base;
  states.max_states = 1000;
  EXPECT_NE(states.schedule_fingerprint(), fp);

  // Deliberately excluded knobs must NOT perturb it: a different deadline
  // or thread count would otherwise make every warm start a miss.
  Options deadline = base;
  deadline.deadline_seconds = 1.5;
  EXPECT_EQ(deadline.schedule_fingerprint(), fp);
  Options threads = base;
  threads.num_threads = 7;
  threads.run_deadline_seconds = 0.25;
  threads.max_run_attempts = 3;
  EXPECT_EQ(threads.schedule_fingerprint(), fp);
  Options cache = base;
  cache.cache_mode = findb::CacheMode::kReadWrite;
  cache.cache_dir = "/tmp/x";
  EXPECT_EQ(cache.schedule_fingerprint(), fp);
}

TEST(BuildShaTest, NonEmpty) {
  const char* sha = build_git_sha();
  ASSERT_NE(sha, nullptr);
  EXPECT_NE(std::string(sha), "");
}

}  // namespace
}  // namespace fusedp
