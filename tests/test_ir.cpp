// Unit tests for Box math and the pipeline IR / builder.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/printer.hpp"

namespace fusedp {
namespace {

TEST(BoxTest, DenseAndVolume) {
  const Box b = Box::dense({3, 4, 5});
  EXPECT_EQ(b.rank, 3);
  EXPECT_EQ(b.volume(), 60);
  EXPECT_EQ(b.extent(1), 4);
  EXPECT_FALSE(b.empty());
}

TEST(BoxTest, HullAndIntersect) {
  Box a = Box::dense({10, 10});
  a.lo[0] = 2; a.hi[0] = 5;
  Box b = Box::dense({10, 10});
  b.lo[0] = 4; b.hi[0] = 8; b.lo[1] = 3; b.hi[1] = 6;
  const Box h = a.hull(b);
  EXPECT_EQ(h.lo[0], 2);
  EXPECT_EQ(h.hi[0], 8);
  EXPECT_EQ(h.lo[1], 0);
  const Box i = a.intersect(b);
  EXPECT_EQ(i.lo[0], 4);
  EXPECT_EQ(i.hi[0], 5);
  EXPECT_EQ(i.lo[1], 3);
}

TEST(BoxTest, EmptyIntersectionAndHull) {
  Box a = Box::dense({4});
  Box b = Box::dense({4});
  a.hi[0] = 1;        // [0,1]
  b.lo[0] = 2;        // [2,3]
  EXPECT_TRUE(a.intersect(b).empty());
  const Box h = a.hull(b);
  EXPECT_EQ(h.lo[0], 0);
  EXPECT_EQ(h.hi[0], 3);
  Box empty;
  empty.rank = 1;
  empty.lo[0] = 5;
  empty.hi[0] = 4;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.hull(a).lo[0], a.lo[0]);  // hull with empty = other
}

TEST(BoxTest, FloorDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-1, 2), -1);
  EXPECT_EQ(floor_div(0, 2), 0);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(8, 2), 4);
}

TEST(PipelineTest, BuildAndFinalize) {
  Pipeline pl("p");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder a(pl, pl.add_stage("a", {16, 16}));
  a.define(a.in(img, {0, 0}) * 2.0f);
  StageBuilder b(pl, pl.add_stage("b", {16, 16}));
  b.define(b.at(a.stage(), {0, 0}) + 1.0f);
  pl.finalize();
  EXPECT_EQ(pl.num_stages(), 2);
  EXPECT_TRUE(pl.graph().has_edge(0, 1));
  ASSERT_EQ(pl.outputs().size(), 1u);
  EXPECT_EQ(pl.outputs()[0], 1);  // sink is the live-out
  EXPECT_FALSE(pl.stage(0).is_output);
  EXPECT_EQ(pl.total_volume(), 512);
}

TEST(PipelineTest, ExplicitOutputMark) {
  Pipeline pl("p");
  const int img = pl.add_input("img", {8, 8});
  StageBuilder a(pl, pl.add_stage("a", {8, 8}));
  a.define(a.in(img, {0, 0}));
  a.mark_output();
  StageBuilder b(pl, pl.add_stage("b", {8, 8}));
  b.define(b.at(a.stage(), {0, 0}));
  pl.finalize();
  EXPECT_EQ(pl.outputs().size(), 2u);  // a (marked) and b (sink)
}

TEST(PipelineTest, StageWithoutBodyRejected) {
  Pipeline pl("p");
  pl.add_input("img", {8, 8});
  pl.add_stage("a", {8, 8});
  EXPECT_THROW(pl.finalize(), Error);
}

TEST(PipelineTest, ReductionWithoutImplRejected) {
  Pipeline pl("p");
  pl.add_input("img", {8, 8});
  pl.add_reduction("r", {4});
  EXPECT_THROW(pl.finalize(), Error);
}

TEST(BuilderTest, TrailingAlignmentOfRanks) {
  Pipeline pl("p");
  const int img = pl.add_input("img", {3, 8, 8});
  // Rank-2 stage reading a rank-3 producer must use load() with explicit
  // axes; at() with a bare offset list requires producer rank <= stage rank.
  StageBuilder g(pl, pl.add_stage("gray", {8, 8}));
  g.define(g.load({true, img}, {AxisMap::constant(0), AxisMap::affine(0),
                                AxisMap::affine(1)}));
  // Rank-3 stage reading the rank-2 producer aligns trailing dims.
  StageBuilder c(pl, pl.add_stage("color", {3, 8, 8}));
  c.define(c.at(g.stage(), {0, 0}) * 0.5f);
  pl.finalize();
  const Access& acc = pl.stage(1).loads[0];
  EXPECT_EQ(acc.axes.size(), 2u);
  EXPECT_EQ(acc.axes[0].src_dim, 1);  // producer dim 0 <- stage dim 1
  EXPECT_EQ(acc.axes[1].src_dim, 2);
}

TEST(BuilderTest, MixedStageExpressionRejected) {
  Pipeline pl("p");
  const int img = pl.add_input("img", {8, 8});
  StageBuilder a(pl, pl.add_stage("a", {8, 8}));
  StageBuilder b(pl, pl.add_stage("b", {8, 8}));
  const Eh ea = a.in(img, {0, 0});
  const Eh eb = b.in(img, {0, 0});
  EXPECT_THROW(ea + eb, Error);
}

TEST(BuilderTest, OperatorsBuildExpectedTree) {
  Pipeline pl("p");
  const int img = pl.add_input("img", {8, 8});
  StageBuilder a(pl, pl.add_stage("a", {8, 8}));
  const Eh e = select(lt(a.in(img, {0, 0}), 0.5f), a.cst(1.0f),
                      abs(-a.in(img, {1, 0})));
  a.define(e);
  pl.finalize();
  const std::string s = expr_to_string(pl.stage(0), pl.stage(0).body);
  EXPECT_NE(s.find("select"), std::string::npos);
  EXPECT_NE(s.find("abs"), std::string::npos);
  EXPECT_NE(s.find("in0"), std::string::npos);
}

TEST(BuilderTest, AccessRankMismatchRejected) {
  Pipeline pl("p");
  const int img = pl.add_input("img", {3, 8, 8});
  StageBuilder a(pl, pl.add_stage("a", {3, 8, 8}));
  EXPECT_THROW(a.in(img, {0, 0}), Error);  // 2 offsets for rank-3 producer
}

TEST(PrinterTest, PipelineDumpMentionsAllStages) {
  Pipeline pl("demo");
  const int img = pl.add_input("img", {8, 8});
  StageBuilder a(pl, pl.add_stage("alpha", {8, 8}));
  a.define(a.in(img, {0, 0}));
  StageBuilder b(pl, pl.add_stage("beta", {8, 8}));
  b.define(b.at(a.stage(), {-1, 1}) / 2.0f);
  pl.finalize();
  const std::string s = pipeline_to_string(pl);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("[out]"), std::string::npos);
}

TEST(PipelineTest, MaxStagesEnforced) {
  Pipeline pl("big");
  const int img = pl.add_input("img", {8, 8});
  for (int i = 0; i < kMaxNodes; ++i) {
    StageBuilder s(pl, pl.add_stage("s" + std::to_string(i), {8, 8}));
    s.define(s.in(img, {0, 0}));
  }
  EXPECT_THROW(pl.add_stage("overflow", {8, 8}), Error);
}

}  // namespace
}  // namespace fusedp
