// storage/findb unit tests: record wire format, the corruption matrix at
// the decode layer, FindDb probe/store/evict/scan semantics, the memory
// tier, compaction budgets, lock timeouts and injected fault points.
//
// Every case drives the cache through a private temp directory and asserts
// the *coded* outcome: the cache must never throw, never serve damaged
// bytes, and never leave the directory in a state a later open cannot
// recover from.
#include "storage/findb.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "storage/lock.hpp"
#include "support/fault.hpp"
#include "support/fingerprint.hpp"

namespace fusedp {
namespace {

using findb::CacheKey;
using findb::CacheMode;
using findb::CacheRecord;
using findb::FindDb;
using findb::FindbOptions;
using findb::ProbeOutcome;
using findb::ProbeResult;

// A scoped temp directory; recursively removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/fusedp_findb_test_XXXXXX";
    char* p = ::mkdtemp(buf);
    EXPECT_NE(p, nullptr);
    path = p ? p : "";
  }
  ~TempDir() {
    if (!path.empty()) {
      std::string cmd = "rm -rf '" + path + "'";
      [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
  }
};

CacheKey test_key(std::uint64_t salt = 0) {
  return CacheKey{0x1111111111111111ull + salt, 0x2222222222222222ull,
                  0x3333333333333333ull};
}

CacheRecord test_record() {
  CacheRecord rec;
  rec.pipeline = "blur";
  rec.git_sha = "abcdef123456";
  rec.rung = "full-dp";
  rec.created_unix = 1700000000;
  rec.predicted = {1.5, 2.25, 0.125};
  rec.measured_ms = {0.4, 0.9};
  rec.schedule_text =
      "fusedp-schedule v1\n"
      "groups 1\n"
      "group 0 tile 32 256\n"
      "  stage blurx\n";
  return rec;
}

FindbOptions rw_options(const std::string& dir) {
  FindbOptions fo;
  fo.dir = dir;
  fo.mode = CacheMode::kReadWrite;
  fo.memory_entries = 0;  // exercise the disk path unless a test opts in
  return fo;
}

std::string record_path(const std::string& dir, const CacheKey& key) {
  return dir + "/" + key.stem() + ".fdb";
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << bytes;
}

TEST(CacheKeyTest, StemRoundTrip) {
  const CacheKey key = test_key();
  const std::string stem = key.stem();
  EXPECT_EQ(stem.size(), 50u);  // 16 + '-' + 16 + '-' + 16
  CacheKey back;
  ASSERT_TRUE(CacheKey::parse_stem(stem, &back));
  EXPECT_EQ(back, key);

  CacheKey out;
  EXPECT_FALSE(CacheKey::parse_stem("", &out));
  EXPECT_FALSE(CacheKey::parse_stem("not-a-stem", &out));
  // Right length, wrong separator positions.
  std::string bad = stem;
  bad[16] = '0';
  EXPECT_FALSE(CacheKey::parse_stem(bad, &out));
}

TEST(RecordFormatTest, EncodeDecodeRoundTrip) {
  const CacheKey key = test_key();
  const CacheRecord rec = test_record();
  const std::string bytes = findb::encode_record(key, rec);

  CacheRecord back;
  std::string detail;
  ASSERT_EQ(findb::decode_record(bytes, &key, &back, &detail),
            ProbeOutcome::kHit)
      << detail;
  EXPECT_EQ(back.pipeline, rec.pipeline);
  EXPECT_EQ(back.git_sha, rec.git_sha);
  EXPECT_EQ(back.rung, rec.rung);
  EXPECT_EQ(back.created_unix, rec.created_unix);
  EXPECT_EQ(back.predicted, rec.predicted);    // %.17g: bit-exact doubles
  EXPECT_EQ(back.measured_ms, rec.measured_ms);
  EXPECT_EQ(back.schedule_text, rec.schedule_text);
}

// The corruption matrix at the decode layer: each damage class must map to
// its own coded outcome, never a crash or a false kHit.
TEST(RecordFormatTest, CorruptionMatrix) {
  const CacheKey key = test_key();
  const std::string bytes = findb::encode_record(key, test_record());
  CacheRecord rec;
  std::string detail;

  // Truncation anywhere in the payload -> kTruncated (checked before CRC,
  // so a crash-partial write is distinguishable from a bit flip).
  for (std::size_t keep : {bytes.size() - 1, bytes.size() / 2}) {
    EXPECT_EQ(findb::decode_record(bytes.substr(0, keep), &key, &rec, &detail),
              ProbeOutcome::kTruncated)
        << "keep=" << keep << ": " << detail;
  }

  // A flipped bit in the payload -> kCorrupt (CRC catches it).
  {
    std::string flipped = bytes;
    flipped[bytes.size() - 2] ^= 0x40;
    EXPECT_EQ(findb::decode_record(flipped, &key, &rec, &detail),
              ProbeOutcome::kCorrupt)
        << detail;
  }

  // Unknown format version -> kVersionSkew.
  {
    std::string skewed = bytes;
    const std::size_t v = skewed.find(" v1\n");
    ASSERT_NE(v, std::string::npos);
    skewed.replace(v, 4, " v9\n");
    EXPECT_EQ(findb::decode_record(skewed, &key, &rec, &detail),
              ProbeOutcome::kVersionSkew)
        << detail;
  }

  // Wrong magic / arbitrary garbage -> kCorrupt.
  EXPECT_EQ(findb::decode_record("not a record at all\n", &key, &rec, &detail),
            ProbeOutcome::kCorrupt);
  EXPECT_EQ(findb::decode_record("", &key, &rec, &detail),
            ProbeOutcome::kTruncated);

  // Strict framing: bytes past the declared payload (concatenated records,
  // appended junk) must not ride in on a clean hit.
  EXPECT_EQ(findb::decode_record(bytes + "\n", &key, &rec, &detail),
            ProbeOutcome::kCorrupt)
      << detail;
  EXPECT_EQ(findb::decode_record(bytes + bytes, &key, &rec, &detail),
            ProbeOutcome::kCorrupt)
      << detail;

  // A record stored under a different key -> kKeyMismatch (detects renamed
  // / copied files).
  {
    const CacheKey other = test_key(99);
    EXPECT_EQ(findb::decode_record(bytes, &other, &rec, &detail),
              ProbeOutcome::kKeyMismatch)
        << detail;
  }
}

TEST(FindDbTest, StoreProbeRoundTrip) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindDb db(rw_options(dir.path));
  const CacheKey key = test_key();

  ProbeResult miss = db.probe(key);
  EXPECT_EQ(miss.outcome, ProbeOutcome::kMiss);

  auto stored = db.store(key, test_record());
  ASSERT_TRUE(stored.ok()) << stored.error().what();

  ProbeResult hit = db.probe(key);
  ASSERT_EQ(hit.outcome, ProbeOutcome::kHit) << hit.detail;
  EXPECT_FALSE(hit.from_memory);
  EXPECT_EQ(hit.record.schedule_text, test_record().schedule_text);
  EXPECT_EQ(db.counters().hits, 1);
  EXPECT_EQ(db.counters().misses, 1);
  EXPECT_EQ(db.counters().stores, 1);

  // No temp debris survives a clean store.
  std::string out = slurp(record_path(dir.path, key));
  EXPECT_FALSE(out.empty());
}

TEST(FindDbTest, ReadModeNeverWrites) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindbOptions fo = rw_options(dir.path);
  fo.mode = CacheMode::kRead;
  FindDb db(fo);
  auto stored = db.store(test_key(), test_record());
  ASSERT_FALSE(stored.ok());
  EXPECT_EQ(stored.error().code(), ErrorCode::kInvalidArgument);
  // The directory was never even created.
  EXPECT_EQ(db.probe(test_key()).outcome, ProbeOutcome::kMiss);
}

TEST(FindDbTest, OffModeBypasses) {
  TempDir dir;
  FindbOptions fo = rw_options(dir.path);
  fo.mode = CacheMode::kOff;
  FindDb db(fo);
  EXPECT_EQ(db.probe(test_key()).outcome, ProbeOutcome::kBypass);
}

TEST(FindDbTest, MemoryTierServesWithoutDisk) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindbOptions fo = rw_options(dir.path);
  fo.memory_entries = 8;
  FindDb db(fo);
  const CacheKey key = test_key();
  ASSERT_TRUE(db.store(key, test_record()).ok());

  // The store primed the memory tier: delete the file underneath and the
  // probe must still hit, from memory.
  ASSERT_EQ(std::remove(record_path(dir.path, key).c_str()), 0);
  ProbeResult hit = db.probe(key);
  ASSERT_EQ(hit.outcome, ProbeOutcome::kHit) << hit.detail;
  EXPECT_TRUE(hit.from_memory);
  EXPECT_EQ(db.counters().memory_hits, 1);

  // Clearing the tier exposes the missing file.
  FindDb::clear_memory_tier();
  EXPECT_EQ(db.probe(key).outcome, ProbeOutcome::kMiss);
}

TEST(FindDbTest, MemoryTierIsLru) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindbOptions fo = rw_options(dir.path);
  fo.memory_entries = 2;
  fo.max_entries = 0;  // no disk compaction in this test
  FindDb db(fo);
  ASSERT_TRUE(db.store(test_key(0), test_record()).ok());
  ASSERT_TRUE(db.store(test_key(1), test_record()).ok());
  // Touch key 0 so key 1 is the LRU victim when key 2 arrives.
  EXPECT_EQ(db.probe(test_key(0)).outcome, ProbeOutcome::kHit);
  ASSERT_TRUE(db.store(test_key(2), test_record()).ok());

  // Remove all files: only memory-tier residents can still hit.
  for (std::uint64_t s : {0u, 1u, 2u})
    std::remove(record_path(dir.path, test_key(s)).c_str());
  EXPECT_EQ(db.probe(test_key(0)).outcome, ProbeOutcome::kHit);
  EXPECT_EQ(db.probe(test_key(2)).outcome, ProbeOutcome::kHit);
  EXPECT_EQ(db.probe(test_key(1)).outcome, ProbeOutcome::kMiss);
  FindDb::clear_memory_tier();
}

// The FindDb-level corruption matrix: damage on disk -> coded outcome, and
// in readwrite mode the bad record is evicted on sight.
TEST(FindDbTest, CorruptRecordsAreCodedAndEvicted) {
  struct Case {
    const char* name;
    void (*damage)(const std::string& path);
    ProbeOutcome want;
  };
  const Case cases[] = {
      {"truncate",
       [](const std::string& p) {
         std::string b = slurp(p);
         spit(p, b.substr(0, b.size() / 2));
       },
       ProbeOutcome::kTruncated},
      {"bit-flip",
       [](const std::string& p) {
         std::string b = slurp(p);
         b[b.size() - 3] ^= 0x10;
         spit(p, b);
       },
       ProbeOutcome::kCorrupt},
      {"version-skew",
       [](const std::string& p) {
         std::string b = slurp(p);
         const std::size_t v = b.find(" v1\n");
         ASSERT_NE(v, std::string::npos);
         b.replace(v, 4, " v9\n");
         spit(p, b);
       },
       ProbeOutcome::kVersionSkew},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    TempDir dir;
    FindDb::clear_memory_tier();
    FindDb db(rw_options(dir.path));
    const CacheKey key = test_key();
    ASSERT_TRUE(db.store(key, test_record()).ok());
    c.damage(record_path(dir.path, key));

    ProbeResult pr = db.probe(key);
    EXPECT_EQ(pr.outcome, c.want) << pr.detail;
    EXPECT_TRUE(findb::outcome_evicts(pr.outcome));
    EXPECT_GE(db.counters().bad_records, 1);
    // evict_bad removed the damaged file; the next probe is a clean miss.
    EXPECT_EQ(db.probe(key).outcome, ProbeOutcome::kMiss);
  }
}

TEST(FindDbTest, StaleGitShaInvalidates) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindbOptions writer = rw_options(dir.path);
  writer.git_sha = "";  // writer accepts anything
  FindDb dbw(writer);
  ASSERT_TRUE(dbw.store(test_key(), test_record()).ok());

  FindbOptions reader = rw_options(dir.path);
  reader.git_sha = "feedfacecafe";  // != record's abcdef123456
  reader.evict_bad = false;         // keep the record for the second probe
  FindDb dbr(reader);
  ProbeResult pr = dbr.probe(test_key());
  EXPECT_EQ(pr.outcome, ProbeOutcome::kStaleSha) << pr.detail;

  // A reader built at the recorded SHA still hits.
  FindbOptions match = rw_options(dir.path);
  match.git_sha = "abcdef123456";
  FindDb dbm(match);
  EXPECT_EQ(dbm.probe(test_key()).outcome, ProbeOutcome::kHit);
}

TEST(FindDbTest, CompactionEnforcesEntryBudget) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindbOptions fo = rw_options(dir.path);
  fo.max_entries = 3;
  FindDb db(fo);
  for (std::uint64_t s = 0; s < 6; ++s)
    ASSERT_TRUE(db.store(test_key(s), test_record()).ok());

  auto scan = db.scan();
  ASSERT_TRUE(scan.ok()) << scan.error().what();
  EXPECT_LE(static_cast<std::int64_t>(scan.value().size()), fo.max_entries);
  // The newest record always survives its own store's compaction.
  bool newest_alive = false;
  for (const auto& e : scan.value())
    if (e.key == test_key(5)) newest_alive = true;
  EXPECT_TRUE(newest_alive);
  EXPECT_GE(db.counters().evictions, 3);
}

TEST(FindDbTest, CompactionEnforcesByteBudget) {
  TempDir dir;
  FindDb::clear_memory_tier();
  const std::int64_t one = static_cast<std::int64_t>(
      findb::encode_record(test_key(), test_record()).size());
  FindbOptions fo = rw_options(dir.path);
  fo.max_entries = 0;       // entry bound off
  fo.max_bytes = 2 * one;   // room for two records
  FindDb db(fo);
  for (std::uint64_t s = 0; s < 5; ++s)
    ASSERT_TRUE(db.store(test_key(s), test_record()).ok());
  auto scan = db.scan();
  ASSERT_TRUE(scan.ok());
  std::int64_t total = 0;
  for (const auto& e : scan.value()) total += e.bytes;
  EXPECT_LE(total, fo.max_bytes);
}

TEST(FindDbTest, EvictAndEvictAll) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindDb db(rw_options(dir.path));
  ASSERT_TRUE(db.store(test_key(0), test_record()).ok());
  ASSERT_TRUE(db.store(test_key(1), test_record()).ok());

  auto one = db.evict(test_key(0));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value(), 1);
  EXPECT_EQ(db.probe(test_key(0)).outcome, ProbeOutcome::kMiss);
  EXPECT_EQ(db.probe(test_key(1)).outcome, ProbeOutcome::kHit);

  auto all = db.evict_all();
  ASSERT_TRUE(all.ok());
  EXPECT_GE(all.value(), 1);
  EXPECT_EQ(db.probe(test_key(1)).outcome, ProbeOutcome::kMiss);
}

// The memory tier is shared process-wide across cache directories, but
// evict_all() must only drop the entries belonging to *its* directory —
// a concurrent session on another cache_dir keeps its hot tier.
TEST(FindDbTest, EvictAllScopesMemoryTierToOwnDir) {
  TempDir dir_a, dir_b;
  FindDb::clear_memory_tier();
  FindbOptions fa = rw_options(dir_a.path);
  FindbOptions fb = rw_options(dir_b.path);
  fa.memory_entries = fb.memory_entries = 8;
  FindDb db_a(fa), db_b(fb);
  const CacheKey key = test_key();
  ASSERT_TRUE(db_a.store(key, test_record()).ok());
  ASSERT_TRUE(db_b.store(key, test_record()).ok());

  auto all = db_a.evict_all();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(db_a.probe(key).outcome, ProbeOutcome::kMiss);

  // db_b still hits, and from *memory*: delete its file underneath first,
  // so a hit can only come from a hot tier evict_all left alone.
  ASSERT_EQ(std::remove(record_path(dir_b.path, key).c_str()), 0);
  ProbeResult hit = db_b.probe(key);
  ASSERT_EQ(hit.outcome, ProbeOutcome::kHit) << hit.detail;
  EXPECT_TRUE(hit.from_memory);
}

TEST(FindDbTest, ScanReportsAndRepairs) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindDb db(rw_options(dir.path));
  ASSERT_TRUE(db.store(test_key(0), test_record()).ok());
  ASSERT_TRUE(db.store(test_key(1), test_record()).ok());
  // Damage one record and drop an orphan temp file.
  {
    const std::string p = record_path(dir.path, test_key(1));
    std::string b = slurp(p);
    b[b.size() - 2] ^= 0x01;
    spit(p, b);
  }
  spit(dir.path + "/" + test_key(2).stem() + ".fdb.tmp.999.1", "debris");

  auto scan = db.scan();
  ASSERT_TRUE(scan.ok());
  int valid = 0, invalid = 0;
  for (const auto& e : scan.value()) (e.valid ? valid : invalid)++;
  EXPECT_EQ(valid, 1);
  EXPECT_EQ(invalid, 1);

  auto repaired = db.scan(/*repair=*/true);
  ASSERT_TRUE(repaired.ok());
  auto after = db.scan();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size(), 1u);
  for (const auto& e : after.value()) EXPECT_TRUE(e.valid);
}

TEST(FindDbTest, LockTimeoutIsCoded) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindDb seed(rw_options(dir.path));
  ASSERT_TRUE(seed.store(test_key(), test_record()).ok());

  // Hold the directory lock exclusively (flock coordinates across open
  // file descriptions, so this conflicts even within one process); a prober
  // with a tiny timeout must resolve to kLockTimeout, not block or throw.
  auto held = storage::FileLock::acquire(dir.path + "/findb.lock",
                                         storage::FileLock::Type::kExclusive,
                                         1.0);
  ASSERT_TRUE(held.ok()) << held.error().what();

  FindbOptions fo = rw_options(dir.path);
  fo.lock_timeout_seconds = 0.02;
  FindDb db(fo);
  ProbeResult pr = db.probe(test_key());
  EXPECT_EQ(pr.outcome, ProbeOutcome::kLockTimeout) << pr.detail;
  EXPECT_EQ(db.counters().lock_timeouts, 1);

  auto stored = db.store(test_key(7), test_record());
  ASSERT_FALSE(stored.ok());
  EXPECT_EQ(stored.error().code(), ErrorCode::kDeadlineExceeded);
}

TEST(FindDbTest, ExpiredDeadlineShortCircuitsProbe) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindDb db(rw_options(dir.path));
  ASSERT_TRUE(db.store(test_key(), test_record()).ok());

  Deadline dl = Deadline::after(0.0);  // already expired
  ProbeResult pr = db.probe(test_key(), &dl);
  EXPECT_EQ(pr.outcome, ProbeOutcome::kLockTimeout) << pr.detail;
}

TEST(FindDbFaultTest, ReadFaultIsCodedIoError) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindDb db(rw_options(dir.path));
  ASSERT_TRUE(db.store(test_key(), test_record()).ok());

  FaultInjector::arm("findb.read");
  ProbeResult pr = db.probe(test_key());
  FaultInjector::disarm();
  EXPECT_EQ(pr.outcome, ProbeOutcome::kIoError) << pr.detail;
  // The record itself is untouched; the next probe hits.
  EXPECT_EQ(db.probe(test_key()).outcome, ProbeOutcome::kHit);
}

TEST(FindDbFaultTest, WriteFaultLeavesNoRecord) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindDb db(rw_options(dir.path));

  FaultInjector::arm("findb.write");
  auto stored = db.store(test_key(), test_record());
  FaultInjector::disarm();
  ASSERT_FALSE(stored.ok());
  EXPECT_EQ(stored.error().code(), ErrorCode::kFaultInjected);
  EXPECT_EQ(db.probe(test_key()).outcome, ProbeOutcome::kMiss);
  EXPECT_EQ(db.counters().store_failures, 1);
}

// Kill-mid-write: the fault fires after the temp file is fully written and
// fsynced but before the rename — the canonical crash window.  The failed
// store must leave only ignorable debris, and overwrite of an existing
// record must keep the OLD record intact.
TEST(FindDbFaultTest, CommitFaultPreservesOldRecord) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindDb db(rw_options(dir.path));
  const CacheKey key = test_key();
  CacheRecord v1 = test_record();
  v1.rung = "greedy";
  ASSERT_TRUE(db.store(key, v1).ok());
  FindDb::clear_memory_tier();  // force the disk path below

  CacheRecord v2 = test_record();
  v2.rung = "full-dp";
  FaultInjector::arm("findb.commit");
  auto stored = db.store(key, v2);
  FaultInjector::disarm();
  ASSERT_FALSE(stored.ok());
  EXPECT_EQ(stored.error().code(), ErrorCode::kFaultInjected);

  ProbeResult pr = db.probe(key);
  ASSERT_EQ(pr.outcome, ProbeOutcome::kHit) << pr.detail;
  EXPECT_EQ(pr.record.rung, "greedy");  // the old record, not the new one
}

TEST(FindDbFaultTest, LockFaultIsCoded) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindDb db(rw_options(dir.path));
  ASSERT_TRUE(db.store(test_key(), test_record()).ok());

  FaultInjector::arm("lock.acquire");
  ProbeResult pr = db.probe(test_key());
  FaultInjector::disarm();
  // The injected lock failure degrades to a coded non-hit (io-error or
  // lock-timeout depending on where it lands) — never an exception.
  EXPECT_NE(pr.outcome, ProbeOutcome::kHit);
  EXPECT_EQ(db.probe(test_key()).outcome, ProbeOutcome::kHit);
}

TEST(FindDbTest, OversizedRecordRejected) {
  TempDir dir;
  FindDb::clear_memory_tier();
  FindDb db(rw_options(dir.path));
  CacheRecord rec = test_record();
  rec.schedule_text.assign(5u << 20, 'x');  // > kMaxRecordBytes
  auto stored = db.store(test_key(), rec);
  ASSERT_FALSE(stored.ok());
  EXPECT_EQ(db.probe(test_key()).outcome, ProbeOutcome::kMiss);
}

}  // namespace
}  // namespace fusedp
