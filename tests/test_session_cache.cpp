// Session::open through the persistent schedule cache (storage/findb):
// warm starts must be bit-identical to cache-off opens and skip the search
// entirely, and every injected cache failure — corruption, version skew,
// stale build, hostile schedule text, a wedged lock — must resolve to a
// coded CacheEvent plus a successful fresh autoschedule.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "api/session.hpp"
#include "pipelines/pipelines.hpp"
#include "storage/lock.hpp"
#include "support/fault.hpp"
#include "support/fingerprint.hpp"
#include "support/timing.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

using testing::buffers_equal;

struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/fusedp_session_cache_XXXXXX";
    char* p = ::mkdtemp(buf);
    EXPECT_NE(p, nullptr);
    path = p ? p : "";
  }
  ~TempDir() {
    if (!path.empty()) {
      std::string cmd = "rm -rf '" + path + "'";
      [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
  }
};

Options cache_options(const std::string& dir,
                      findb::CacheMode mode = findb::CacheMode::kReadWrite) {
  Options o;
  o.scheduler = Scheduler::kGreedy;  // deterministic and fast
  o.cache_mode = mode;
  o.cache_dir = dir;
  o.cache_memory_entries = 0;  // disk path: corruption must reach the decoder
  return o;
}

// The cache key Session::open computes for (pl, opts) — used to damage the
// record file a session wrote.
findb::CacheKey session_key(const Pipeline& pl, const Options& opts) {
  return findb::CacheKey{fingerprint(pl), fingerprint(opts.machine),
                         opts.schedule_fingerprint()};
}

std::string record_path(const std::string& dir, const findb::CacheKey& key) {
  return dir + "/" + key.stem() + ".fdb";
}

const observe::CacheEvent* first_probe(const Session& s) {
  for (const auto& ev : s.cache_events())
    if (ev.action == "probe") return &ev;
  return nullptr;
}

bool has_event(const Session& s, const std::string& action,
               const std::string& outcome) {
  for (const auto& ev : s.cache_events())
    if (ev.action == action && ev.outcome == outcome) return true;
  return false;
}

TEST(SessionCacheValidationTest, RejectsInconsistentCacheOptions) {
  PipelineSpec spec = make_benchmark("unsharp", 32);

  Options no_dir;
  no_dir.cache_mode = findb::CacheMode::kRead;  // mode on, dir missing
  auto r1 = Session::open(*spec.pipeline, no_dir);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error().code(), ErrorCode::kInvalidArgument);

  Options bad_timeout = cache_options("/tmp/x");
  bad_timeout.cache_lock_timeout_seconds = -1.0;
  auto r2 = Session::open(*spec.pipeline, bad_timeout);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.error().code(), ErrorCode::kInvalidArgument);

  Options bad_mem = cache_options("/tmp/x");
  bad_mem.cache_memory_entries = -1;
  auto r3 = Session::open(*spec.pipeline, bad_mem);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.error().code(), ErrorCode::kInvalidArgument);

  // With the cache ON, a deadline composes with any scheduler (it bounds
  // the probe); with the cache OFF that combination stays rejected.
  Options dl_cache = cache_options("/tmp/x");
  dl_cache.deadline_seconds = 1.0;
  EXPECT_TRUE(validate_options(dl_cache).ok());
  Options dl_off;
  dl_off.scheduler = Scheduler::kGreedy;
  dl_off.deadline_seconds = 1.0;
  EXPECT_FALSE(validate_options(dl_off).ok());
}

TEST(SessionCacheTest, WarmStartIsBitIdenticalToCacheOff) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  PipelineSpec spec = make_benchmark("harris", 16);
  const std::vector<Buffer> inputs = spec.make_inputs();

  // Reference: no cache at all.
  Options off;
  off.scheduler = Scheduler::kGreedy;
  auto ref = Session::open(*spec.pipeline, off);
  ASSERT_TRUE(ref.ok()) << ref.error().what();
  Session ref_s = std::move(ref).value();
  auto ref_out = ref_s.run(inputs);
  ASSERT_TRUE(ref_out.ok()) << ref_out.error().what();

  // Cold open: miss, fresh search, record stored.
  auto cold = Session::open(*spec.pipeline, cache_options(dir.path));
  ASSERT_TRUE(cold.ok()) << cold.error().what();
  EXPECT_FALSE(cold.value().warm_start());
  ASSERT_NE(first_probe(cold.value()), nullptr);
  EXPECT_EQ(first_probe(cold.value())->outcome, "miss");
  EXPECT_TRUE(has_event(cold.value(), "store", "stored"));

  // Warm open: hit, zero search, same grouping, same pixels.
  auto warm = Session::open(*spec.pipeline, cache_options(dir.path));
  ASSERT_TRUE(warm.ok()) << warm.error().what();
  Session warm_s = std::move(warm).value();
  EXPECT_TRUE(warm_s.warm_start());
  EXPECT_EQ(first_probe(warm_s)->outcome, "hit");
  EXPECT_EQ(warm_s.grouping().to_string(*spec.pipeline),
            cold.value().grouping().to_string(*spec.pipeline));
  EXPECT_EQ(warm_s.diagnostics().total_states, 0u);
  EXPECT_TRUE(warm_s.diagnostics().attempts.empty());

  auto warm_out = warm_s.run(inputs);
  ASSERT_TRUE(warm_out.ok()) << warm_out.error().what();
  ASSERT_EQ(warm_out.value().size(), ref_out.value().size());
  for (std::size_t i = 0; i < warm_out.value().size(); ++i)
    EXPECT_TRUE(buffers_equal(warm_out.value()[i], ref_out.value()[i]))
        << "output " << i << " differs from the cache-off reference";

  // The warm grouping kept the record's predicted costs.
  EXPECT_GT(warm_s.grouping().total_cost, 0.0);

  // RunReport surfaces the warm start.
  EXPECT_TRUE(warm_s.last_report().warm_start);
  EXPECT_EQ(warm_s.last_report().cache_outcome, "hit");
}

TEST(SessionCacheTest, WarmAutoOpenSkipsTheSearch) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  auto pl = testing::random_pipeline(6, 96, 96, 7);
  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image(pl->input(0).domain.extents(), 7));

  Options o = cache_options(dir.path);
  o.scheduler = Scheduler::kAuto;

  auto cold = Session::open(*pl, o);
  ASSERT_TRUE(cold.ok()) << cold.error().what();
  Session cold_s = std::move(cold).value();
  EXPECT_FALSE(cold_s.warm_start());
  // The ladder actually ran.
  EXPECT_FALSE(cold_s.diagnostics().attempts.empty());

  auto warm = Session::open(*pl, o);
  ASSERT_TRUE(warm.ok()) << warm.error().what();
  Session warm_s = std::move(warm).value();
  EXPECT_TRUE(warm_s.warm_start());
  // Zero DP search on the warm path: no ladder attempts, no states.
  EXPECT_TRUE(warm_s.diagnostics().attempts.empty());
  EXPECT_EQ(warm_s.diagnostics().total_states, 0u);
  EXPECT_EQ(warm_s.grouping().to_string(*pl),
            cold_s.grouping().to_string(*pl));

  auto a = cold_s.run(inputs);
  auto b = warm_s.run(inputs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(buffers_equal(a.value()[0], b.value()[0]));
}

// The corruption matrix through the full Session path: every damage class
// degrades to a coded probe event plus a fresh search whose outputs match
// the cache-off reference bit for bit.
TEST(SessionCacheTest, CorruptRecordsDegradeToFreshSearch) {
  struct Case {
    const char* name;
    void (*damage)(const std::string& path);
    const char* want_outcome;
  };
  const Case cases[] = {
      {"truncate",
       [](const std::string& p) {
         std::ifstream in(p, std::ios::binary);
         std::ostringstream ss;
         ss << in.rdbuf();
         std::string b = ss.str();
         std::ofstream out(p, std::ios::binary | std::ios::trunc);
         out << b.substr(0, b.size() / 2);
       },
       "truncated"},
      {"bit-flip",
       [](const std::string& p) {
         std::ifstream in(p, std::ios::binary);
         std::ostringstream ss;
         ss << in.rdbuf();
         std::string b = ss.str();
         b[b.size() - 3] = static_cast<char>(b[b.size() - 3] ^ 0x20);
         std::ofstream out(p, std::ios::binary | std::ios::trunc);
         out << b;
       },
       "corrupt"},
      {"version-skew",
       [](const std::string& p) {
         std::ifstream in(p, std::ios::binary);
         std::ostringstream ss;
         ss << in.rdbuf();
         std::string b = ss.str();
         const std::size_t v = b.find(" v1\n");
         ASSERT_NE(v, std::string::npos);
         b.replace(v, 4, " v9\n");
         std::ofstream out(p, std::ios::binary | std::ios::trunc);
         out << b;
       },
       "version-skew"},
  };

  PipelineSpec spec = make_benchmark("unsharp", 16);
  const std::vector<Buffer> inputs = spec.make_inputs();
  Options off;
  off.scheduler = Scheduler::kGreedy;
  auto ref = Session::open(*spec.pipeline, off);
  ASSERT_TRUE(ref.ok());
  Session ref_s = std::move(ref).value();
  auto ref_out = ref_s.run(inputs);
  ASSERT_TRUE(ref_out.ok());

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    TempDir dir;
    findb::FindDb::clear_memory_tier();
    const Options opts = cache_options(dir.path);

    auto cold = Session::open(*spec.pipeline, opts);
    ASSERT_TRUE(cold.ok()) << cold.error().what();
    c.damage(record_path(dir.path, session_key(*spec.pipeline, opts)));

    auto opened = Session::open(*spec.pipeline, opts);
    ASSERT_TRUE(opened.ok()) << opened.error().what();
    Session s = std::move(opened).value();
    EXPECT_FALSE(s.warm_start());
    ASSERT_NE(first_probe(s), nullptr);
    EXPECT_EQ(first_probe(s)->outcome, c.want_outcome)
        << first_probe(s)->detail;
    // readwrite evicted the bad record and re-stored a fresh one.
    EXPECT_TRUE(has_event(s, "store", "stored"));

    auto out = s.run(inputs);
    ASSERT_TRUE(out.ok()) << out.error().what();
    for (std::size_t i = 0; i < out.value().size(); ++i)
      EXPECT_TRUE(buffers_equal(out.value()[i], ref_out.value()[i]));

    // And the re-stored record serves the next open warm.
    auto again = Session::open(*spec.pipeline, opts);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again.value().warm_start());
  }
}

TEST(SessionCacheTest, StaleBuildShaInvalidates) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  PipelineSpec spec = make_benchmark("unsharp", 16);
  const Options opts = cache_options(dir.path);
  const findb::CacheKey key = session_key(*spec.pipeline, opts);

  // Plant a well-formed record claiming a different build.
  auto cold = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(cold.ok());
  findb::FindDb db(opts.findb_options());
  findb::ProbeResult pr = db.probe(key);
  ASSERT_EQ(pr.outcome, findb::ProbeOutcome::kHit) << pr.detail;
  findb::CacheRecord rec = pr.record;
  rec.git_sha = "0000000000000000";
  {
    std::ofstream f(record_path(dir.path, key),
                    std::ios::binary | std::ios::trunc);
    f << findb::encode_record(key, rec);
  }
  findb::FindDb::clear_memory_tier();

  auto s = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(s.ok()) << s.error().what();
  EXPECT_FALSE(s.value().warm_start());
  EXPECT_EQ(first_probe(s.value())->outcome, "stale-sha")
      << first_probe(s.value())->detail;
  EXPECT_TRUE(has_event(s.value(), "store", "stored"));
}

// A record that passes every integrity check but whose schedule text names
// stages this pipeline does not have: the hardened parser must reject it,
// the session must emit "invalid-schedule", evict, and search fresh.
TEST(SessionCacheTest, HostileScheduleTextIsRejected) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  PipelineSpec spec = make_benchmark("unsharp", 16);
  const Options opts = cache_options(dir.path);
  const findb::CacheKey key = session_key(*spec.pipeline, opts);

  auto cold = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(cold.ok());
  findb::FindDb db(opts.findb_options());
  findb::ProbeResult pr = db.probe(key);
  ASSERT_EQ(pr.outcome, findb::ProbeOutcome::kHit);
  findb::CacheRecord rec = pr.record;
  rec.schedule_text =
      "fusedp-schedule v1\n"
      "groups 1\n"
      "group 0 tile 32 256\n"
      "  stage no_such_stage\n";
  {
    std::ofstream f(record_path(dir.path, key),
                    std::ios::binary | std::ios::trunc);
    f << findb::encode_record(key, rec);
  }
  findb::FindDb::clear_memory_tier();

  auto s = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(s.ok()) << s.error().what();
  EXPECT_FALSE(s.value().warm_start());
  EXPECT_TRUE(has_event(s.value(), "probe", "invalid-schedule"));
  // The hostile record was evicted and replaced by a valid fresh one.
  auto again = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().warm_start());
}

// Regression: a cached schedule that parses cleanly but whose *plan
// construction* throws (footprint checks, lowering) must fall back to a
// fresh search with the open-scoped state intact.  The old fallback read
// moved-from Options and a dangling observer pointer — with collect_trace
// on, ASan flags the use-after-free and the trace was silently lost.
TEST(SessionCacheTest, WarmPlanFailureFallsBackWithTraceIntact) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  PipelineSpec spec = make_benchmark("unsharp", 16);
  const std::vector<Buffer> inputs = spec.make_inputs();
  Options opts = cache_options(dir.path);
  opts.collect_trace = true;  // the dangling-observer half of the old bug

  auto cold = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(cold.ok()) << cold.error().what();
  ASSERT_TRUE(has_event(cold.value(), "store", "stored"));

  // The next open hits the cache and parses the schedule, then the armed
  // fault makes plan construction throw at the warm-start site.
  FaultInjector::arm("session.warm_plan", ErrorCode::kInternal, /*skip=*/0);
  auto s = Session::open(*spec.pipeline, opts);
  FaultInjector::disarm();
  ASSERT_TRUE(s.ok()) << s.error().what();
  Session sess = std::move(s).value();
  EXPECT_FALSE(sess.warm_start());
  EXPECT_TRUE(has_event(sess, "probe", "invalid-schedule"));
  // The fallback re-stored a fresh record (proof the fresh-search path saw
  // intact, not moved-from, Options).
  EXPECT_TRUE(has_event(sess, "store", "stored"));
  // The trace collector survived the fallback: a run still produces a trace.
  auto out = sess.run(inputs);
  ASSERT_TRUE(out.ok()) << out.error().what();
  EXPECT_NE(sess.trace(), nullptr);

  // And the re-stored record warm-starts the next open as usual.
  auto again = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(again.ok()) << again.error().what();
  EXPECT_TRUE(again.value().warm_start());
}

// Satellite 2: one deadline bounds the probe AND the search — a wedged
// cache directory (lock held elsewhere) cannot stall Session::open past
// the schedule-search deadline even when the lock timeout is much larger.
TEST(SessionCacheTest, DeadlineBoundsCacheProbe) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  PipelineSpec spec = make_benchmark("unsharp", 16);

  // Seed a record so the probe actually reaches the lock.
  const Options seed = cache_options(dir.path);
  ASSERT_TRUE(Session::open(*spec.pipeline, seed).ok());
  findb::FindDb::clear_memory_tier();

  auto held = storage::FileLock::acquire(dir.path + "/findb.lock",
                                         storage::FileLock::Type::kExclusive,
                                         1.0);
  ASSERT_TRUE(held.ok()) << held.error().what();

  Options opts = cache_options(dir.path, findb::CacheMode::kRead);
  opts.deadline_seconds = 0.2;          // the real bound
  opts.cache_lock_timeout_seconds = 30.0;  // would stall without the fix
  WallTimer timer;
  auto s = Session::open(*spec.pipeline, opts);
  const double elapsed = timer.seconds();
  ASSERT_TRUE(s.ok()) << s.error().what();
  EXPECT_FALSE(s.value().warm_start());
  EXPECT_EQ(first_probe(s.value())->outcome, "lock-timeout")
      << first_probe(s.value())->detail;
  // Probe + greedy search both fit comfortably under a few seconds; 30 s
  // of lock wait would blow straight through this.
  EXPECT_LT(elapsed, 10.0);
}

TEST(SessionCacheTest, ReadModeNeverStores) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  PipelineSpec spec = make_benchmark("unsharp", 16);
  const Options opts = cache_options(dir.path, findb::CacheMode::kRead);

  auto s = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(first_probe(s.value())->outcome, "miss");
  for (const auto& ev : s.value().cache_events())
    EXPECT_NE(ev.action, "store");
  // Nothing was written: a second read-mode open still misses.
  auto again = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first_probe(again.value())->outcome, "miss");
}

TEST(SessionCacheTest, CallerProvidedGroupingBypasses) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  PipelineSpec spec = make_benchmark("unsharp", 16);
  const Options opts = cache_options(dir.path);

  auto base = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(base.ok());
  auto s = Session::open(*spec.pipeline, base.value().grouping(), opts);
  ASSERT_TRUE(s.ok()) << s.error().what();
  EXPECT_FALSE(s.value().warm_start());
  ASSERT_EQ(s.value().cache_events().size(), 1u);
  EXPECT_EQ(s.value().cache_events()[0].outcome, "bypass");
}

TEST(SessionCacheTest, MemoryTierServesSecondSessionInProcess) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  PipelineSpec spec = make_benchmark("unsharp", 16);
  Options opts = cache_options(dir.path);
  opts.cache_memory_entries = 8;  // memory tier ON for this test

  ASSERT_TRUE(Session::open(*spec.pipeline, opts).ok());
  // Remove the file: only the in-process tier can serve the second open.
  ASSERT_EQ(std::remove(
                record_path(dir.path, session_key(*spec.pipeline, opts))
                    .c_str()),
            0);
  auto warm = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().warm_start());
  EXPECT_TRUE(first_probe(warm.value())->from_memory);
  findb::FindDb::clear_memory_tier();
}

// Different schedule-relevant options must key different records: a greedy
// record must never serve a kUnfused open.
TEST(SessionCacheTest, OptionsChangeMissesTheCache) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  PipelineSpec spec = make_benchmark("unsharp", 16);

  ASSERT_TRUE(Session::open(*spec.pipeline, cache_options(dir.path)).ok());
  Options unfused = cache_options(dir.path);
  unfused.scheduler = Scheduler::kUnfused;
  auto s = Session::open(*spec.pipeline, unfused);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s.value().warm_start());
  EXPECT_EQ(first_probe(s.value())->outcome, "miss");
  // But execution knobs are not schedule-relevant: same record, warm.
  Options threads = cache_options(dir.path);
  threads.num_threads = 2;
  auto t = Session::open(*spec.pipeline, threads);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t.value().warm_start());
}

}  // namespace
}  // namespace fusedp
