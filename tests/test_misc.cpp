// Cross-cutting tests: determinism of schedulers, plan printing, pooled
// workspace reuse, and host-model sanity.
#include <gtest/gtest.h>

#include "fusion/halide_auto.hpp"
#include "fusion/incremental.hpp"
#include "fusion/polymage_greedy.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "runtime/plan_printer.hpp"
#include "support/stats.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

std::string grouping_key(const Pipeline& pl, const Grouping& g) {
  return g.to_string(pl);
}

TEST(DeterminismTest, SchedulersAreDeterministic) {
  for (const char* key : {"harris", "campipe"}) {
    const PipelineSpec spec = make_benchmark(key, 16);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, MachineModel::xeon_haswell());
    IncFusion a(pl, model), b(pl, model);
    EXPECT_EQ(grouping_key(pl, a.run()), grouping_key(pl, b.run())) << key;
    const HalideAuto ha(pl, model), hb(pl, model);
    EXPECT_EQ(grouping_key(pl, ha.run()), grouping_key(pl, hb.run())) << key;
    const PolyMageGreedy ga(pl, model);
    EXPECT_EQ(grouping_key(pl, ga.run(64, 64, 0.4)),
              grouping_key(pl, ga.run(64, 64, 0.4)))
        << key;
  }
}

TEST(PlanPrinterTest, MentionsStagesAndTiles) {
  const PipelineSpec spec = make_unsharp(256, 256);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  IncFusion inc(pl, model);
  const std::string s = plan_to_string(lower(pl, inc.run()));
  EXPECT_NE(s.find("omp parallel for"), std::string::npos);
  EXPECT_NE(s.find("blurx"), std::string::npos);
  EXPECT_NE(s.find("masked"), std::string::npos);
  EXPECT_NE(s.find("tile ("), std::string::npos);
}

TEST(PlanPrinterTest, ReductionRendered) {
  const PipelineSpec spec = make_bilateral(64, 64);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  const std::string s = plan_to_string(
      lower(*spec.pipeline, singleton_grouping(*spec.pipeline, model)));
  EXPECT_NE(s.find("reduce grid"), std::string::npos);
}

TEST(WorkspaceTest, SwitchingPooledModesIsSafe) {
  const PipelineSpec spec = make_unsharp(96, 96);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  const Grouping g = singleton_grouping(pl, model);
  const std::vector<Buffer> inputs = spec.make_inputs();
  ExecOptions plain, pooled;
  pooled.pooled_storage = true;
  Executor ep(pl, g, plain), eq(pl, g, pooled);
  Workspace ws;  // shared between both executors, alternating modes
  ep.run(inputs, ws);
  const Buffer first = ws.stage_buffer(pl.outputs()[0]);
  eq.run(inputs, ws);
  EXPECT_TRUE(
      testing::buffers_equal(first, ws.stage_buffer(pl.outputs()[0])));
  ep.run(inputs, ws);
  EXPECT_TRUE(
      testing::buffers_equal(first, ws.stage_buffer(pl.outputs()[0])));
}

TEST(HostModelTest, SaneDefaults) {
  const MachineModel m = MachineModel::host();
  EXPECT_GE(m.cores, 1);
  EXPECT_GE(m.l1_bytes, 4 * 1024);
  EXPECT_GE(m.l2_bytes, m.l1_bytes);
  EXPECT_GT(m.innermost_tile, 0);
}

TEST(GroupCostTest, FeasibleFlagConsistent) {
  const PipelineSpec spec = make_bilateral(96, 96);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  const GroupCost good = model.cost(NodeSet::single(1));
  EXPECT_TRUE(good.feasible());
  EXPECT_FALSE(good.tile_sizes.empty());
  const GroupCost bad = model.cost(NodeSet::single(0).with(1));
  EXPECT_FALSE(bad.feasible());
  EXPECT_EQ(bad.cost, kInfiniteCost);
}

TEST(RunStatsTest, ExecutionTimingSmoke) {
  // time_grouping-style protocol through the public API.
  const PipelineSpec spec = make_blur(64, 64);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  Executor ex(pl, singleton_grouping(pl, model), {});
  Workspace ws;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const RunStats st =
      measure_min_of_averages([&] { ex.run(inputs, ws); }, 2, 2);
  EXPECT_GT(st.min_avg_ms, 0.0);
  EXPECT_LE(st.best_ms, st.min_avg_ms + 1e-9);
}

TEST(UmbrellaHeaderTest, EverythingReachable) {
  // Compile-time smoke: the public names the README uses are visible via
  // the aggregated includes (this file includes them piecemeal; the
  // umbrella is exercised by examples/quickstart.cpp at build time).
  const PipelineSpec spec = make_blur(32, 32);
  EXPECT_EQ(spec.pipeline->name(), "blur");
}

}  // namespace
}  // namespace fusedp
