// Small in-process chaos soak: concurrent Sessions under injected faults,
// random deadlines and a tight memory budget.  Every request must end in a
// coded state (no uncoded escapes) and every successful request — degraded
// or not — must be bit-identical to the scalar reference.  The full-size
// acceptance soak lives in bench/bench_chaos.cpp; this keeps a scaled-down
// version in the tier-1 suite.
#include <gtest/gtest.h>

#include "runtime/governor.hpp"
#include "verify/chaos.hpp"

namespace fusedp {
namespace {

TEST(ChaosTest, SmallSoakIsCleanUnderFaultsDeadlinesAndBudget) {
  verify::ChaosOptions opts;
  opts.sessions = 4;
  opts.requests = 150;
  opts.fault_rate = 0.5;
  opts.deadline_rate = 0.5;
  // Below the unconstrained high-water mark so the governor actually
  // queues/rejects during the soak instead of idling.
  opts.memory_budget_bytes = 128 * 1024;
  opts.max_seconds = 60.0;  // safety valve on slow CI machines
  opts.seed = 7;
  opts.pipeline_pool = 6;

  const verify::ChaosStats stats = verify::run_chaos(opts);
  SCOPED_TRACE(stats.summary());

  EXPECT_TRUE(stats.clean());
  EXPECT_EQ(stats.mismatches, 0);
  EXPECT_EQ(stats.uncoded, 0);
  EXPECT_GT(stats.requests, 0);
  EXPECT_GT(stats.successes, 0);
  // Attempts >= requests: every request ran at least once.
  EXPECT_GE(stats.attempts, stats.requests);
  // The soak must leave the process governor unlimited for later tests.
  EXPECT_EQ(ResourceGovernor::instance().budget(), 0);
}

TEST(ChaosTest, FaultFreeSoakSucceedsEverywhere) {
  verify::ChaosOptions opts;
  opts.sessions = 2;
  opts.requests = 40;
  opts.fault_rate = 0.0;
  opts.deadline_rate = 0.0;
  opts.memory_budget_bytes = 0;  // unlimited
  opts.seed = 11;
  opts.pipeline_pool = 4;

  const verify::ChaosStats stats = verify::run_chaos(opts);
  SCOPED_TRACE(stats.summary());
  EXPECT_TRUE(stats.clean());
  EXPECT_EQ(stats.successes, stats.requests);
  EXPECT_EQ(stats.deadline_exceeded, 0);
  EXPECT_EQ(stats.resource_exhausted, 0);
  EXPECT_EQ(stats.fault_injected, 0);
}

TEST(ChaosTest, StatsSerializeToJson) {
  verify::ChaosStats stats;
  stats.requests = 10;
  stats.successes = 8;
  stats.deadline_exceeded = 2;
  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"requests\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"successes\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"clean\": true"), std::string::npos);
}

}  // namespace
}  // namespace fusedp
