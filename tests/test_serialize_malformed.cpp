// Malformed-schedule hardening: every broken input must surface as a coded
// fusedp::Error (kInvalidSchedule / kIoError) — never a crash, hang, or
// silent acceptance.  A table of hand-picked corruptions plus a mutation
// fuzz over valid schedule text.
#include <gtest/gtest.h>

#include "fusion/serialize.hpp"
#include "pipelines/pipelines.hpp"
#include "support/rng.hpp"

namespace fusedp {
namespace {

ErrorCode parse_code(const Pipeline& pl, const std::string& text) {
  try {
    grouping_from_text(pl, text);
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "parse unexpectedly succeeded for:\n" << text;
  return ErrorCode::kInternal;
}

TEST(SerializeMalformedTest, TableOfCorruptions) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const Pipeline& pl = *spec.pipeline;

  struct Case {
    const char* name;
    std::string text;
    ErrorCode want;
  };
  const Case cases[] = {
      {"empty input", "", ErrorCode::kInvalidSchedule},
      {"comments only", "# nothing here\n\n", ErrorCode::kInvalidSchedule},
      {"wrong keyword", "grp blurx :\n", ErrorCode::kInvalidSchedule},
      {"version mismatch",
       "# fusedp-schedule v2 for unsharp\n"
       "group blurx blury :\ngroup sharpen masked :\n",
       ErrorCode::kInvalidSchedule},
      {"unknown stage", "group nosuchstage :\n", ErrorCode::kInvalidSchedule},
      {"duplicate stage across group lines",
       "group blurx blury :\ngroup blurx :\ngroup sharpen masked :\n",
       ErrorCode::kInvalidSchedule},
      {"duplicate stage in one line", "group blurx blurx :\n",
       ErrorCode::kInvalidSchedule},
      {"negative tile", "group blurx : -3\n", ErrorCode::kInvalidSchedule},
      {"zero tile", "group blurx : 0\n", ErrorCode::kInvalidSchedule},
      {"non-numeric tile", "group blurx : 12x34\n",
       ErrorCode::kInvalidSchedule},
      {"overflowing tile",
       "group blurx : 99999999999999999999999999999\n",
       ErrorCode::kInvalidSchedule},
      {"huge but parseable tile", "group blurx : 4611686018427387904\n",
       ErrorCode::kInvalidSchedule},
      {"too many tile sizes", "group blurx : 1 2 3 4 5\n",
       ErrorCode::kInvalidSchedule},
      {"repeated colon", "group blurx : : 4\n", ErrorCode::kInvalidSchedule},
      {"empty group", "group :\n", ErrorCode::kInvalidSchedule},
      {"incomplete coverage", "group blurx blury :\n",
       ErrorCode::kInvalidSchedule},
      {"disconnected group",
       "group blurx masked :\ngroup blury :\ngroup sharpen :\n",
       ErrorCode::kInvalidSchedule},
      {"overlong line",
       "group " + std::string(8192, 'a') + " :\n",
       ErrorCode::kInvalidSchedule},
  };
  for (const Case& c : cases)
    EXPECT_EQ(parse_code(pl, c.text), c.want) << c.name;
}

TEST(SerializeMalformedTest, MissingFileIsIoError) {
  const PipelineSpec spec = make_unsharp(128, 128);
  try {
    load_grouping(*spec.pipeline, "/nonexistent/dir/sched.txt");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
  }
}

TEST(SerializeMalformedTest, TryParseReturnsCodedResult) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const Pipeline& pl = *spec.pipeline;
  const Result<Grouping> bad = try_grouping_from_text(pl, "group blurx : 0\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kInvalidSchedule);
  const Result<Grouping> good = try_grouping_from_text(
      pl, grouping_to_text(pl, singleton_grouping(
                                   pl, CostModel(pl, MachineModel::host()))));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().groups.size(),
            static_cast<std::size_t>(pl.num_stages()));
}

TEST(SerializeMalformedTest, MutationFuzzNeverCrashes) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  const std::string valid = grouping_to_text(pl, spec.manual_grouping(model));

  Rng rng(20260807);
  for (int iter = 0; iter < 500; ++iter) {
    std::string s = valid;
    const int mutations = 1 + static_cast<int>(rng.next_below(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.next_below(5)) {
        case 0:  // flip a byte to random printable/garbage
          if (!s.empty())
            s[rng.next_below(s.size())] =
                static_cast<char>(rng.next_below(256));
          break;
        case 1:  // truncate
          s.resize(rng.next_below(s.size() + 1));
          break;
        case 2:  // duplicate a chunk
          if (!s.empty()) {
            const std::size_t at = rng.next_below(s.size());
            s.insert(at, s.substr(at, rng.next_below(40)));
          }
          break;
        case 3:  // splice in a random token
          s.insert(rng.next_below(s.size() + 1),
                   iter % 2 ? " 184467440737095516199 " : " group ");
          break;
        case 4:  // delete a chunk
          if (!s.empty()) {
            const std::size_t at = rng.next_below(s.size());
            s.erase(at, rng.next_below(20));
          }
          break;
      }
    }
    // Must either parse cleanly or throw a coded Error — anything else
    // (crash, uncaught std exception) fails the test run itself.
    try {
      const Grouping g = grouping_from_text(pl, s);
      std::string why;
      EXPECT_TRUE(validate_grouping(pl, g, &why)) << why;
    } catch (const Error& e) {
      EXPECT_NE(error_code_name(e.code()), std::string("unknown"));
    }
  }
}

}  // namespace
}  // namespace fusedp
